// helios_sim: run custom experiments from the command line.
//
// A single run builds one harness::ExperimentSpec from the flags; grid
// runs (--protocols and/or --seeds lists) fan the cross-product out over
// a harness::SweepRunner with --jobs worker threads and can dump the
// aggregated deterministic JSON with --json_out.
//
// Examples:
//   helios_sim                                     # Helios-0, Table 2, 60 clients
//   helios_sim --protocol=helios2 --clients=120
//   helios_sim --protocol=2pc --topology=uniform --dcs=3 --rtt=80
//   helios_sim --protocol=helios0 --skew_ms=100,0,0,0,0 --theta=0.6
//   helios_sim --protocol=mf --measure_s=30 --check_serializability
//   helios_sim --protocols=helios0,helios2,2pc --seeds=1,2,3
//       --jobs=4 --json_out=sweep.json
//
// --trace_out / --metrics_out need a single run (they capture one
// experiment's timeline) and bypass the sweep engine.

#include <cstdio>
#include <vector>

#include "common/flags.h"
#include "common/table.h"
#include "harness/cli.h"
#include "harness/experiment.h"
#include "harness/experiment_spec.h"
#include "harness/job_pool.h"
#include "harness/sweep.h"
#include "sim/fault_plan.h"

using namespace helios;
namespace hns = helios::harness;
namespace cli = helios::harness::cli;

namespace {

void PrintDetail(const hns::ExperimentResult& r) {
  TablePrinter table({"DC", "latency ms (sd)", "p50", "p99", "ops/s",
                      "abort %", "committed"});
  for (const auto& dc : r.per_dc) {
    table.AddRow({dc.name,
                  TablePrinter::MeanStd(dc.latency_mean_ms,
                                        dc.latency_stddev_ms),
                  TablePrinter::Num(dc.latency_p50_ms, 1),
                  TablePrinter::Num(dc.latency_p99_ms, 1),
                  TablePrinter::Num(dc.throughput_ops_s, 0),
                  TablePrinter::Num(100.0 * dc.abort_rate, 2),
                  std::to_string(dc.committed)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("protocol:          %s\n", r.protocol.c_str());
  std::printf("avg latency:       %.1f ms (MAO optimum for topology: %.1f ms)\n",
              r.avg_latency_ms, r.optimal_avg_latency_ms);
  std::printf("total throughput:  %.0f ops/s\n", r.total_throughput_ops_s);
  std::printf("avg abort rate:    %.2f %%\n", 100.0 * r.avg_abort_rate);
  std::printf("simulated events:  %llu\n",
              static_cast<unsigned long long>(r.events_processed));
  if (r.serializability.has_value()) {
    std::printf("serializability:   %s\n",
                r.serializability->ok() ? "OK (conflict-serializable)"
                                        : r.serializability->ToString().c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags;
  flags.DefineString("protocol", "helios0",
                     "helios0|helios1|helios2|heliosb|mf|rc|2pc");
  flags.DefineString("protocols", "",
                     "comma-separated protocol list; builds a grid "
                     "(overrides --protocol)");
  flags.DefineString("topology", "table2", "table2 | example3 | uniform");
  flags.DefineInt("dcs", 5, "datacenters for --topology=uniform");
  flags.DefineDouble("rtt", 100.0, "pairwise RTT ms for --topology=uniform");
  flags.DefineInt("clients", 60, "total closed-loop clients");
  flags.DefineInt("measure_s", 15, "measurement window, seconds");
  flags.DefineInt("warmup_s", 4, "warm-up, seconds");
  flags.DefineInt("keys", 50000, "key-pool size");
  flags.DefineDouble("theta", 0.2, "Zipfian skew");
  flags.DefineDouble("read_only", 0.0, "read-only transaction fraction");
  flags.DefineString("skew_ms", "", "per-DC clock offsets, comma-separated ms");
  flags.DefineInt("seed", 42, "simulation seed");
  flags.DefineString("seeds", "",
                     "comma-separated seed list; builds a grid "
                     "(overrides --seed)");
  flags.DefineInt("log_interval_ms", 10, "log propagation period, ms");
  flags.DefineBool("check_serializability", false,
                   "verify the committed history after the run");
  flags.DefineInt("shards", 1,
                  "independent Helios deployments per datacenter "
                  "(src/shard; > 1 needs a Helios-family protocol)");
  flags.DefineString("shard_by", "hash",
                     "key partition across shards: hash | range");
  flags.DefineString("fault_plan", "",
                     "JSON fault-plan file applied to every run "
                     "(see docs/FAULTS.md)");
  flags.DefineString("crash", "",
                     "crash/recover one datacenter: <dc>:<t_down_ms>:<t_up_ms> "
                     "(sugar for a fault-plan crash+recover pair; "
                     "see docs/RECOVERY.md). Repeatable via commas: "
                     "1:5000:9000,2:6000:10000");
  flags.DefineString("stall", "",
                     "gray process stall: <dc>:<t_from_ms>:<t_until_ms> "
                     "(sugar for a fault-plan process_stall; repeatable "
                     "via commas; see docs/FAULTS.md)");
  flags.DefineString("slow", "",
                     "gray slow link: <a>:<b>:<factor>:<t_from_ms>:<t_until_ms> "
                     "(sugar for a fault-plan slow_link; repeatable via "
                     "commas)");
  flags.DefineBool("health", false,
                   "arm the phi-accrual failure detector and "
                   "suspicion-driven degraded commit");
  flags.DefineInt("client_timeout_us", 0,
                  "client commit timeout per attempt, microseconds "
                  "(0 = no timeout; crash runs need one so clients homed "
                  "at a crashed datacenter keep making progress)");
  flags.DefineInt("client_retries", 3,
                  "max timeout retries per transaction before it counts "
                  "as aborted");
  flags.DefineDouble("loss", 0.0,
                     "per-message loss probability on every WAN link");
  flags.DefineDouble("dup", 0.0,
                     "per-message duplication probability on every WAN link");
  flags.DefineString("losses", "",
                     "comma-separated loss-probability list; builds a grid "
                     "(overrides --loss)");
  flags.DefineString("reliable", "auto",
                     "reliable-delivery session layer: auto|on|off "
                     "(auto = on exactly when the fault plan can drop or "
                     "duplicate messages)");
  cli::AddCommonFlags(&flags, /*default_jobs=*/1);
  flags.DefineString("trace_out", "",
                     "write a Chrome trace_event JSON of the run here "
                     "(load in chrome://tracing or Perfetto); single run only");
  flags.DefineString("metrics_out", "",
                     "write the metrics snapshot here (.csv for CSV, "
                     "anything else for JSON); single run only");
  flags.DefineInt("trace_capacity", 0,
                  "trace ring-buffer capacity in events (0 = default)");
  cli::ParseOrExit(&flags, argc, argv);

  // The base spec every grid cell starts from.
  hns::ExperimentSpec base;
  base.WithTopology(flags.GetString("topology"))
      .WithClients(static_cast<int>(flags.GetInt("clients")))
      .WithMeasure(Seconds(flags.GetInt("measure_s")))
      .WithWarmup(Seconds(flags.GetInt("warmup_s")))
      .WithNumKeys(static_cast<uint64_t>(flags.GetInt("keys")))
      .WithZipfTheta(flags.GetDouble("theta"))
      .WithReadOnlyFraction(flags.GetDouble("read_only"))
      .WithSeed(static_cast<uint64_t>(flags.GetInt("seed")))
      .WithLogInterval(Millis(flags.GetInt("log_interval_ms")))
      .WithSerializabilityCheck(flags.GetBool("check_serializability"));
  if (flags.GetInt("shards") != 1 || flags.GetString("shard_by") != "hash") {
    base.WithShards(static_cast<int>(flags.GetInt("shards")))
        .WithShardBy(flags.GetString("shard_by"));
  }
  if (flags.GetString("topology") == "uniform") {
    base.WithUniformTopology(static_cast<int>(flags.GetInt("dcs")),
                             flags.GetDouble("rtt"));
  }
  if (!flags.GetString("skew_ms").empty()) {
    auto skew = cli::ParseMillisList(flags.GetString("skew_ms"));
    if (!skew.ok()) {
      return cli::FailWith(skew.status(), cli::kExitUsage);
    }
    base.WithClockOffsets(std::move(skew).value());
  }
  if (!flags.GetString("fault_plan").empty()) {
    auto text = cli::ReadWholeFile(flags.GetString("fault_plan"));
    if (!text.ok()) {
      return cli::FailWith(text.status(), cli::kExitUsage);
    }
    auto plan = sim::FaultPlan::FromJson(text.value());
    if (!plan.ok()) {
      std::fprintf(stderr, "bad --fault_plan: %s\n",
                   plan.status().ToString().c_str());
      return cli::kExitUsage;
    }
    base.WithFaultPlan(std::move(plan).value());
  }
  if (!flags.GetString("crash").empty()) {
    // Each entry is <dc>:<t_down_ms>:<t_up_ms>; the fault plan executes
    // the pair as a true amnesia crash followed by WAL recovery.
    for (const std::string& entry : cli::SplitCsv(flags.GetString("crash"))) {
      int dc = -1;
      long long down_ms = -1;
      long long up_ms = -1;
      if (std::sscanf(entry.c_str(), "%d:%lld:%lld", &dc, &down_ms, &up_ms) !=
              3 ||
          dc < 0 || down_ms < 0 || up_ms <= down_ms) {
        std::fprintf(stderr,
                     "bad --crash entry '%s' (want <dc>:<t_down_ms>:<t_up_ms> "
                     "with t_up > t_down)\n",
                     entry.c_str());
        return 2;
      }
      base.fault_plan.AddCrash(Millis(down_ms), dc);
      base.fault_plan.AddRecover(Millis(up_ms), dc);
    }
  }
  if (!flags.GetString("stall").empty()) {
    for (const std::string& entry : cli::SplitCsv(flags.GetString("stall"))) {
      int dc = -1;
      long long from_ms = -1;
      long long until_ms = -1;
      if (std::sscanf(entry.c_str(), "%d:%lld:%lld", &dc, &from_ms,
                      &until_ms) != 3 ||
          dc < 0 || from_ms < 0 || until_ms <= from_ms) {
        std::fprintf(stderr,
                     "bad --stall entry '%s' (want <dc>:<t_from_ms>:"
                     "<t_until_ms> with t_until > t_from)\n",
                     entry.c_str());
        return 2;
      }
      base.fault_plan.AddProcessStall(Millis(from_ms), Millis(until_ms), dc);
    }
  }
  if (!flags.GetString("slow").empty()) {
    for (const std::string& entry : cli::SplitCsv(flags.GetString("slow"))) {
      int a = -1;
      int b = -1;
      double factor = 0.0;
      long long from_ms = -1;
      long long until_ms = -1;
      if (std::sscanf(entry.c_str(), "%d:%d:%lf:%lld:%lld", &a, &b, &factor,
                      &from_ms, &until_ms) != 5 ||
          a < 0 || b < 0 || a == b || factor < 1.0 || from_ms < 0 ||
          until_ms <= from_ms) {
        std::fprintf(stderr,
                     "bad --slow entry '%s' (want <a>:<b>:<factor>:"
                     "<t_from_ms>:<t_until_ms> with factor >= 1 and "
                     "t_until > t_from)\n",
                     entry.c_str());
        return 2;
      }
      base.fault_plan.AddSlowLink(Millis(from_ms), Millis(until_ms), a, b,
                                  factor);
    }
  }
  if (flags.GetBool("health")) base.WithHealth(true);
  if (flags.GetInt("client_timeout_us") > 0) {
    base.WithClientTimeout(
        static_cast<Duration>(flags.GetInt("client_timeout_us")),
        static_cast<int>(flags.GetInt("client_retries")));
  }
  if (flags.GetDouble("dup") > 0.0) {
    base.WithDuplication(flags.GetDouble("dup"));
  }
  base.WithReliable(flags.GetString("reliable"));

  // Grid axes: protocols x seeds (each defaults to a single value).
  const std::string protocols_csv = flags.GetString("protocols").empty()
                                        ? flags.GetString("protocol")
                                        : flags.GetString("protocols");
  auto protocols_or = cli::ParseProtocolList(protocols_csv);
  if (!protocols_or.ok()) {
    return cli::FailWith(protocols_or.status(), cli::kExitUsage);
  }
  const std::vector<hns::Protocol> protocols = std::move(protocols_or).value();

  std::vector<uint64_t> seeds;
  if (flags.GetString("seeds").empty()) {
    seeds.push_back(base.seed);
  } else {
    auto seeds_or = cli::ParseSeedList(flags.GetString("seeds"));
    if (!seeds_or.ok()) {
      return cli::FailWith(seeds_or.status(), cli::kExitUsage);
    }
    seeds = std::move(seeds_or).value();
  }

  std::vector<double> losses;
  if (flags.GetString("losses").empty()) {
    losses.push_back(flags.GetDouble("loss"));
  } else {
    auto losses_or = cli::ParseDoubleList(flags.GetString("losses"));
    if (!losses_or.ok()) {
      return cli::FailWith(losses_or.status(), cli::kExitUsage);
    }
    losses = std::move(losses_or).value();
  }

  std::vector<hns::ExperimentSpec> specs;
  const bool grid =
      protocols.size() > 1 || seeds.size() > 1 || losses.size() > 1;
  for (hns::Protocol p : protocols) {
    for (uint64_t seed : seeds) {
      for (double loss : losses) {
        hns::ExperimentSpec spec = base;
        spec.WithProtocol(p).WithSeed(seed);
        if (loss > 0.0) spec.WithLoss(loss);
        if (grid) {
          std::string label = std::string(hns::ProtocolToken(p)) + " seed " +
                              std::to_string(seed);
          if (losses.size() > 1) {
            char buf[32];
            std::snprintf(buf, sizeof(buf), " loss %g", loss);
            label += buf;
          }
          spec.WithLabel(std::move(label));
        }
        specs.push_back(std::move(spec));
      }
    }
  }
  for (const auto& spec : specs) {
    if (const Status v = spec.Validate(); !v.ok()) {
      std::fprintf(stderr, "invalid spec %s: %s\n", spec.DisplayName().c_str(),
                   v.ToString().c_str());
      return 2;
    }
  }

  const std::string trace_out = flags.GetString("trace_out");
  const std::string metrics_out = flags.GetString("metrics_out");
  if (!trace_out.empty() || !metrics_out.empty()) {
    // Tracing captures one experiment's timeline; it bypasses the sweep.
    if (specs.size() != 1) {
      std::fprintf(stderr,
                   "--trace_out/--metrics_out need a single run, not a "
                   "%zu-cell grid\n",
                   specs.size());
      return 2;
    }
    specs[0].WithTrace(
        true, flags.GetInt("trace_capacity") > 0
                  ? static_cast<size_t>(flags.GetInt("trace_capacity"))
                  : 0);
    auto cfg_or = specs[0].ToConfig();
    if (!cfg_or.ok()) {
      return cli::FailWith(cfg_or.status(), cli::kExitUsage);
    }
    const hns::ExperimentConfig cfg = std::move(cfg_or).value();
    std::fprintf(stderr, "running %s...\n", specs[0].DisplayName().c_str());
    const hns::ExperimentResult r = hns::RunExperiment(cfg);
    PrintDetail(r);
    if (r.serializability.has_value() && !r.serializability->ok()) return 1;
    if (!trace_out.empty() && r.trace != nullptr) {
      const Status s = r.trace->WriteChromeTrace(trace_out);
      if (!s.ok()) {
        std::fprintf(stderr, "failed to write %s: %s\n", trace_out.c_str(),
                     s.ToString().c_str());
        return 1;
      }
      std::printf("trace:             %s (%llu events, %llu dropped)\n",
                  trace_out.c_str(),
                  static_cast<unsigned long long>(r.trace->size()),
                  static_cast<unsigned long long>(r.trace->dropped()));
    }
    if (!metrics_out.empty()) {
      const Status s = r.metrics.WriteFile(metrics_out);
      if (!s.ok()) {
        std::fprintf(stderr, "failed to write %s: %s\n", metrics_out.c_str(),
                     s.ToString().c_str());
        return 1;
      }
      std::printf("metrics:           %s\n", metrics_out.c_str());
    }
    return 0;
  }

  // Sweep path: one job or many, same engine.
  hns::SweepOptions options;
  options.jobs = hns::ResolveJobCount(static_cast<int>(flags.GetInt("jobs")));
  options.progress = [](const hns::SweepProgress& p) {
    std::fprintf(stderr, "[%d/%d] %s (%.1fs elapsed, eta %.0fs)\n", p.done,
                 p.total, p.last_label.c_str(), p.elapsed_seconds,
                 p.eta_seconds);
  };
  hns::SweepRunner runner(options);
  const hns::SweepResult sweep = runner.Run(specs);
  const std::string json_out = flags.GetString("json_out");
  if (!json_out.empty()) {
    if (const Status s = sweep.WriteJsonFile(json_out); !s.ok()) {
      std::fprintf(stderr, "failed to write %s: %s\n", json_out.c_str(),
                   s.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %s\n", json_out.c_str());
  }
  if (const Status s = sweep.status(); !s.ok()) {
    std::fprintf(stderr, "sweep failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "%s\n", sweep.TimingSummary().c_str());

  if (specs.size() == 1) {
    PrintDetail(sweep.jobs[0].result);
    return 0;
  }
  TablePrinter table({"Experiment", "avg latency (ms)", "ops/s", "abort %"});
  for (const auto& job : sweep.jobs) {
    table.AddRow({job.spec.DisplayName(),
                  TablePrinter::Num(job.result.avg_latency_ms, 1),
                  TablePrinter::Num(job.result.total_throughput_ops_s, 0),
                  TablePrinter::Num(100.0 * job.result.avg_abort_rate, 2)});
  }
  std::printf("%s", table.ToString().c_str());
  return 0;
}
