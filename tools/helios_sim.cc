// helios_sim: run a single custom experiment from the command line.
//
// Examples:
//   helios_sim                                     # Helios-0, Table 2, 60 clients
//   helios_sim --protocol=helios2 --clients=120
//   helios_sim --protocol=2pc --topology=uniform --dcs=3 --rtt=80
//   helios_sim --protocol=helios0 --skew_ms=100,0,0,0,0 --theta=0.6
//   helios_sim --protocol=mf --measure_s=30 --check_serializability

#include <cstdio>
#include <sstream>

#include "common/flags.h"
#include "common/table.h"
#include "harness/experiment.h"

using namespace helios;
namespace hns = helios::harness;

namespace {

Result<hns::Protocol> ParseProtocol(const std::string& name) {
  if (name == "helios0") return hns::Protocol::kHelios0;
  if (name == "helios1") return hns::Protocol::kHelios1;
  if (name == "helios2") return hns::Protocol::kHelios2;
  if (name == "heliosb") return hns::Protocol::kHeliosB;
  if (name == "mf") return hns::Protocol::kMessageFutures;
  if (name == "rc") return hns::Protocol::kReplicatedCommit;
  if (name == "2pc") return hns::Protocol::kTwoPcPaxos;
  return Status::InvalidArgument(
      "unknown protocol '" + name +
      "' (expected helios0|helios1|helios2|heliosb|mf|rc|2pc)");
}

std::vector<Duration> ParseSkewList(const std::string& csv) {
  std::vector<Duration> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    out.push_back(Millis(std::atoll(item.c_str())));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags;
  flags.DefineString("protocol", "helios0",
                     "helios0|helios1|helios2|heliosb|mf|rc|2pc");
  flags.DefineString("topology", "table2", "table2 | uniform");
  flags.DefineInt("dcs", 5, "datacenters for --topology=uniform");
  flags.DefineDouble("rtt", 100.0, "pairwise RTT ms for --topology=uniform");
  flags.DefineInt("clients", 60, "total closed-loop clients");
  flags.DefineInt("measure_s", 15, "measurement window, seconds");
  flags.DefineInt("warmup_s", 4, "warm-up, seconds");
  flags.DefineInt("keys", 50000, "key-pool size");
  flags.DefineDouble("theta", 0.2, "Zipfian skew");
  flags.DefineDouble("read_only", 0.0, "read-only transaction fraction");
  flags.DefineString("skew_ms", "", "per-DC clock offsets, comma-separated ms");
  flags.DefineInt("seed", 42, "simulation seed");
  flags.DefineInt("log_interval_ms", 10, "log propagation period, ms");
  flags.DefineBool("check_serializability", false,
                   "verify the committed history after the run");
  flags.DefineString("trace_out", "",
                     "write a Chrome trace_event JSON of the run here "
                     "(load in chrome://tracing or Perfetto)");
  flags.DefineString("metrics_out", "",
                     "write the metrics snapshot here (.csv for CSV, "
                     "anything else for JSON)");
  flags.DefineInt("trace_capacity", 0,
                  "trace ring-buffer capacity in events (0 = default)");
  flags.DefineBool("help", false, "show this help");

  const Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok() || flags.GetBool("help")) {
    if (!parsed.ok()) std::fprintf(stderr, "%s\n", parsed.ToString().c_str());
    std::fprintf(stderr, "usage: %s [flags]\n%s", argv[0],
                 flags.Help().c_str());
    return parsed.ok() ? 0 : 2;
  }

  auto protocol = ParseProtocol(flags.GetString("protocol"));
  if (!protocol.ok()) {
    std::fprintf(stderr, "%s\n", protocol.status().ToString().c_str());
    return 2;
  }

  hns::ExperimentConfig cfg;
  cfg.protocol = protocol.value();
  if (flags.GetString("topology") == "uniform") {
    cfg.topology = hns::UniformTopology(static_cast<int>(flags.GetInt("dcs")),
                                        flags.GetDouble("rtt"));
  } else if (flags.GetString("topology") != "table2") {
    std::fprintf(stderr, "unknown topology\n");
    return 2;
  }
  cfg.total_clients = static_cast<int>(flags.GetInt("clients"));
  cfg.measure = Seconds(flags.GetInt("measure_s"));
  cfg.warmup = Seconds(flags.GetInt("warmup_s"));
  cfg.workload.num_keys = static_cast<uint64_t>(flags.GetInt("keys"));
  cfg.workload.zipf_theta = flags.GetDouble("theta");
  cfg.workload.read_only_fraction = flags.GetDouble("read_only");
  cfg.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  cfg.log_interval = Millis(flags.GetInt("log_interval_ms"));
  cfg.check_serializability = flags.GetBool("check_serializability");
  const std::string trace_out = flags.GetString("trace_out");
  const std::string metrics_out = flags.GetString("metrics_out");
  if (!trace_out.empty() || !metrics_out.empty()) {
    cfg.trace.enabled = true;
    if (flags.GetInt("trace_capacity") > 0) {
      cfg.trace.ring_capacity =
          static_cast<size_t>(flags.GetInt("trace_capacity"));
    }
  }
  if (!flags.GetString("skew_ms").empty()) {
    cfg.clock_offsets = ParseSkewList(flags.GetString("skew_ms"));
    if (static_cast<int>(cfg.clock_offsets.size()) != cfg.topology.size()) {
      std::fprintf(stderr, "--skew_ms needs %d comma-separated values\n",
                   cfg.topology.size());
      return 2;
    }
  }

  std::fprintf(stderr, "running %s on %s with %d clients for %llds...\n",
               hns::ProtocolName(cfg.protocol),
               flags.GetString("topology").c_str(), cfg.total_clients,
               static_cast<long long>(flags.GetInt("measure_s")));
  const hns::ExperimentResult r = hns::RunExperiment(cfg);

  TablePrinter table({"DC", "latency ms (sd)", "p50", "p99", "ops/s",
                      "abort %", "committed"});
  for (const auto& dc : r.per_dc) {
    table.AddRow({dc.name,
                  TablePrinter::MeanStd(dc.latency_mean_ms,
                                        dc.latency_stddev_ms),
                  TablePrinter::Num(dc.latency_p50_ms, 1),
                  TablePrinter::Num(dc.latency_p99_ms, 1),
                  TablePrinter::Num(dc.throughput_ops_s, 0),
                  TablePrinter::Num(100.0 * dc.abort_rate, 2),
                  std::to_string(dc.committed)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("protocol:          %s\n", r.protocol.c_str());
  std::printf("avg latency:       %.1f ms (MAO optimum for topology: %.1f ms)\n",
              r.avg_latency_ms, r.optimal_avg_latency_ms);
  std::printf("total throughput:  %.0f ops/s\n", r.total_throughput_ops_s);
  std::printf("avg abort rate:    %.2f %%\n", 100.0 * r.avg_abort_rate);
  std::printf("simulated events:  %llu\n",
              static_cast<unsigned long long>(r.events_processed));
  if (r.serializability.has_value()) {
    std::printf("serializability:   %s\n",
                r.serializability->ok() ? "OK (conflict-serializable)"
                                        : r.serializability->ToString().c_str());
    if (!r.serializability->ok()) return 1;
  }
  if (!trace_out.empty() && r.trace != nullptr) {
    const Status s = r.trace->WriteChromeTrace(trace_out);
    if (!s.ok()) {
      std::fprintf(stderr, "failed to write %s: %s\n", trace_out.c_str(),
                   s.ToString().c_str());
      return 1;
    }
    std::printf("trace:             %s (%llu events, %llu dropped)\n",
                trace_out.c_str(),
                static_cast<unsigned long long>(r.trace->size()),
                static_cast<unsigned long long>(r.trace->dropped()));
  }
  if (!metrics_out.empty()) {
    const Status s = r.metrics.WriteFile(metrics_out);
    if (!s.ok()) {
      std::fprintf(stderr, "failed to write %s: %s\n", metrics_out.c_str(),
                   s.ToString().c_str());
      return 1;
    }
    std::printf("metrics:           %s\n", metrics_out.c_str());
  }
  return 0;
}
