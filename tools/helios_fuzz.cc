// helios_fuzz: randomized scenario exploration with invariant oracles and
// automatic shrinking (docs/TESTING.md).
//
// Samples deterministic scenarios with check::ScenarioGenerator, fans them
// out over harness::SweepRunner, and judges every run with the
// check::RunOracles invariant suite (serializability, session guarantees,
// exactly-once commit, WAL-replay equivalence, metrics sanity). On the
// first failing scenario it greedily shrinks the spec to a minimal repro,
// writes it as self-contained JSON, and exits nonzero.
//
// Examples:
//   helios_fuzz --scenarios=200                     # the acceptance sweep
//   helios_fuzz --scenarios=50 --time_budget=120s   # CI smoke budget
//   helios_fuzz --protocols=helios1 --master_seed=7
//   helios_fuzz --replay=repro.json                 # re-judge one repro
//
// Every scenario is a pure function of (--master_seed, index): a failure
// report names the index, and --start_index re-explores from there.

#include <chrono>
#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "check/oracles.h"
#include "check/runner.h"
#include "check/scenario_gen.h"
#include "check/shrink.h"
#include "common/flags.h"
#include "harness/cli.h"
#include "harness/job_pool.h"
#include "harness/sweep.h"

using namespace helios;
namespace hns = helios::harness;
namespace cli = helios::harness::cli;

namespace {

/// "120s", "2m" or plain seconds; 0 / empty = unlimited.
Result<double> ParseTimeBudget(const std::string& text) {
  if (text.empty()) return 0.0;
  size_t pos = 0;
  double value = 0.0;
  try {
    value = std::stod(text, &pos);
  } catch (...) {
    return Status::InvalidArgument("bad --time_budget '" + text + "'");
  }
  const std::string suffix = text.substr(pos);
  if (suffix == "m") return value * 60.0;
  if (suffix.empty() || suffix == "s") return value;
  return Status::InvalidArgument("bad --time_budget suffix '" + suffix + "'");
}

int ReplayOne(const std::string& path, const check::OracleOptions& oracles) {
  auto text = cli::ReadWholeFile(path);
  if (!text.ok()) {
    return cli::FailWith(text.status(), cli::kExitUsage);
  }
  auto spec = hns::ExperimentSpec::FromJson(text.value());
  if (!spec.ok()) {
    std::fprintf(stderr, "bad repro %s: %s\n", path.c_str(),
                 spec.status().ToString().c_str());
    return cli::kExitUsage;
  }
  if (const Status v = spec.value().Validate(); !v.ok()) {
    std::fprintf(stderr, "invalid repro %s: %s\n", path.c_str(),
                 v.ToString().c_str());
    return cli::kExitUsage;
  }
  std::fprintf(stderr, "replaying %s...\n",
               spec.value().DisplayName().c_str());
  const check::ScenarioVerdict verdict =
      check::RunScenario(spec.value(), oracles);
  std::fputs(verdict.report.Summary().c_str(), stderr);
  if (verdict.ok()) {
    std::fprintf(stderr, "PASS: every oracle holds\n");
    return 0;
  }
  std::fprintf(stderr, "FAIL: %s\n", verdict.status().ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags;
  flags.DefineInt("scenarios", 100, "number of scenarios to explore");
  flags.DefineInt("master_seed", 1,
                  "master seed; scenario i is a pure function of "
                  "(master_seed, i)");
  flags.DefineInt("start_index", 0, "first scenario index");
  flags.DefineString("protocols", "helios1,helios2,rc,2pc",
                     "comma-separated protocols to draw scenarios from");
  flags.DefineInt("jobs", 0,
                  "concurrent jobs (0 = one per hardware thread)");
  flags.DefineString("time_budget", "",
                     "stop exploring after this much wall-clock "
                     "(e.g. 120s, 2m; empty = run all scenarios)");
  flags.DefineString("repro_out", "repro.json",
                     "write the (shrunk) failing spec here");
  flags.DefineString("replay", "",
                     "replay one spec JSON through the oracles and exit "
                     "(no generation, no shrinking)");
  flags.DefineBool("shrink", true, "minimize the first failing scenario");
  flags.DefineInt("max_shrink_runs", 250,
                  "shrinking budget in candidate simulations");
  flags.DefineBool("crashes", true, "explore crash/recover faults");
  flags.DefineBool("partitions", true, "explore network partitions");
  flags.DefineBool("message_faults", true,
                   "explore message loss/duplication/reordering/delay");
  flags.DefineBool("clock_skew", true, "explore clock-skew vectors");
  flags.DefineBool("gray", true,
                   "explore gray faults (slow links, asymmetric partitions, "
                   "process/fsync stalls) with the health subsystem armed");
  flags.DefineString("shards", "1",
                     "comma-separated shard counts to draw from (src/shard); "
                     "counts > 1 apply to Helios-family scenarios only");
  flags.DefineBool("help", false, "show this help");
  cli::ParseOrExit(&flags, argc, argv);

  const check::OracleOptions oracles;
  if (!flags.GetString("replay").empty()) {
    return ReplayOne(flags.GetString("replay"), oracles);
  }

  auto budget = ParseTimeBudget(flags.GetString("time_budget"));
  if (!budget.ok()) {
    return cli::FailWith(budget.status(), cli::kExitUsage);
  }

  check::GeneratorOptions gen_options;
  gen_options.master_seed = static_cast<uint64_t>(flags.GetInt("master_seed"));
  gen_options.crashes = flags.GetBool("crashes");
  gen_options.partitions = flags.GetBool("partitions");
  gen_options.message_faults = flags.GetBool("message_faults");
  gen_options.clock_skew = flags.GetBool("clock_skew");
  gen_options.gray_faults = flags.GetBool("gray");
  auto protocols = cli::ParseProtocolList(flags.GetString("protocols"));
  if (!protocols.ok()) {
    return cli::FailWith(protocols.status(), cli::kExitUsage);
  }
  gen_options.protocols = std::move(protocols).value();
  {
    std::vector<int> shard_counts;
    const std::string text = flags.GetString("shards");
    size_t pos = 0;
    while (pos <= text.size()) {
      const size_t comma = std::min(text.find(',', pos), text.size());
      const std::string token = text.substr(pos, comma - pos);
      pos = comma + 1;
      if (token.empty()) continue;
      int value = 0;
      try {
        value = std::stoi(token);
      } catch (...) {
        value = 0;
      }
      if (value < 1) {
        return cli::FailWith(
            Status::InvalidArgument("bad --shards entry '" + token + "'"),
            cli::kExitUsage);
      }
      shard_counts.push_back(value);
    }
    if (!shard_counts.empty()) gen_options.shard_counts = shard_counts;
  }
  const check::ScenarioGenerator generator(gen_options);

  const int total = static_cast<int>(flags.GetInt("scenarios"));
  const int jobs = hns::ResolveJobCount(static_cast<int>(flags.GetInt("jobs")));
  uint64_t next_index = static_cast<uint64_t>(flags.GetInt("start_index"));
  const auto started = std::chrono::steady_clock::now();
  const auto elapsed_s = [&started] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         started)
        .count();
  };

  // Oracle failures keyed by scenario label; the sweep's Status only
  // carries a message, the shrinker needs the oracle name.
  std::mutex mu;
  std::map<std::string, std::string> failed_oracle;

  hns::SweepOptions sweep_options;
  sweep_options.jobs = jobs;
  sweep_options.cancel_on_failure = true;
  sweep_options.configure = [](const hns::ExperimentSpec&,
                               hns::ExperimentConfig* config) {
    check::ConfigureForChecking(config);
  };
  sweep_options.check = [&](const hns::ExperimentSpec& spec,
                            hns::ExperimentResult* result) {
    const check::OracleReport report =
        check::RunOracles(spec, *result, oracles);
    // The heavy artifacts (WAL copies, store snapshots, traces) have
    // served their purpose; drop them before the next scenario queues.
    result->capture.reset();
    result->trace.reset();
    result->metrics_registry.reset();
    if (report.ok()) return Status::Ok();
    {
      std::lock_guard<std::mutex> lock(mu);
      failed_oracle[spec.label] = report.FirstFailureName();
    }
    return report.status();
  };
  sweep_options.progress = [total, &next_index,
                            &elapsed_s](const hns::SweepProgress& p) {
    // next_index counts completed batches; p counts within the batch.
    std::fprintf(stderr, "[%llu scenarios, %.0fs] %s: %s\n",
                 static_cast<unsigned long long>(next_index) + p.done,
                 elapsed_s(), p.last_label.c_str(),
                 p.last_status.ok() ? "ok"
                                    : p.last_status.ToString().c_str());
    (void)total;
  };

  int explored = 0;
  hns::ExperimentSpec failing;
  bool found_failure = false;
  while (explored < total) {
    if (budget.value() > 0.0 && elapsed_s() >= budget.value()) {
      std::fprintf(stderr,
                   "time budget exhausted after %d/%d scenarios (%.0fs); "
                   "no invariant violations found\n",
                   explored, total, elapsed_s());
      return 0;
    }
    const int batch =
        std::min(total - explored, std::max(2 * jobs, 8));
    std::vector<hns::ExperimentSpec> specs;
    specs.reserve(static_cast<size_t>(batch));
    for (int i = 0; i < batch; ++i) {
      specs.push_back(generator.Scenario(next_index + static_cast<uint64_t>(i)));
    }
    hns::SweepRunner runner(sweep_options);
    const hns::SweepResult sweep = runner.Run(specs);
    for (const hns::SweepJobResult& job : sweep.jobs) {
      if (job.ran && !job.status.ok()) {
        failing = job.spec;
        found_failure = true;
        break;
      }
    }
    if (found_failure) break;
    explored += batch;
    next_index += static_cast<uint64_t>(batch);
  }

  if (!found_failure) {
    std::fprintf(stderr,
                 "explored %d scenarios in %.0fs: every oracle holds\n",
                 explored, elapsed_s());
    return 0;
  }

  std::string oracle;
  {
    std::lock_guard<std::mutex> lock(mu);
    auto it = failed_oracle.find(failing.label);
    if (it != failed_oracle.end()) oracle = it->second;
  }
  std::fprintf(stderr, "\nFAILURE: scenario %s violates %s\n",
               failing.DisplayName().c_str(),
               oracle.empty() ? "an invariant" : oracle.c_str());

  hns::ExperimentSpec repro = failing;
  if (flags.GetBool("shrink")) {
    check::ShrinkOptions shrink_options;
    shrink_options.max_runs = static_cast<int>(flags.GetInt("max_shrink_runs"));
    shrink_options.oracles = oracles;
    std::fprintf(stderr, "shrinking (budget %d runs)...\n",
                 shrink_options.max_runs);
    const check::ShrinkResult shrunk = check::Shrink(failing, shrink_options);
    if (shrunk.oracle.empty()) {
      // Should not happen for a deterministic failure; keep the original.
      std::fprintf(stderr,
                   "warning: failure did not reproduce under the shrinker; "
                   "writing the unshrunk spec\n");
    } else {
      repro = shrunk.spec;
      std::fprintf(stderr,
                   "shrunk to %d fault-plan events, %d clients, %lldms "
                   "window in %d runs (oracle: %s)\n",
                   shrunk.fault_events, repro.clients,
                   static_cast<long long>(ToMillis(repro.measure)),
                   shrunk.runs, shrunk.oracle.c_str());
    }
  }

  const std::string repro_out = flags.GetString("repro_out");
  if (const Status s = cli::WriteWholeFile(repro_out, repro.ToJson() + "\n");
      !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
  } else {
    std::fprintf(stderr, "repro written to %s (replay with --replay=%s)\n",
                 repro_out.c_str(), repro_out.c_str());
  }
  return 1;
}
