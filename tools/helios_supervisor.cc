// helios_supervisor: crash-restart supervisor and chaos driver for a live
// heliosd cluster.
//
// Launches one heliosd child process per (datacenter, shard) cell in the
// cluster spec (loopback TCP, per-cell file WALs; an unsharded spec is
// the classic one-child-per-DC layout), lets the daemons offer themselves
// open-loop load, and executes a sim::FaultPlan's timed events against
// real processes — the same JSON schema the deterministic simulator's
// chaos harness runs, reinterpreted on the wall clock. Plan node indices
// address whole datacenters: in a sharded cluster every shard child of
// the named DC is killed / relaunched / stalled / partitioned together
// (shards are not individually addressable, matching the simulator):
//
//   node_events:      up=false -> SIGKILL the child (true amnesia crash);
//                     up=true  -> relaunch it (WAL recovery + catch-up).
//   partition_events: administratively refuse the TCP connection in both
//                     directions, via the `partition`/`heal` stdin
//                     commands of both endpoint daemons.
//   gray_faults:      process_stall -> SIGSTOP the child for the window,
//                     SIGCONT at its end (a real "alive but frozen" fault:
//                     the kernel keeps its sockets open, peers see silence,
//                     not a reset). asym_partition -> the `partition` stdin
//                     command at the *a* endpoint only, so a->b dies while
//                     b->a keeps flowing (the half-open link). slow_link /
//                     fsync_stall cannot be modeled from outside a process
//                     and are rejected at load time, as are wildcard
//                     endpoints and unbounded windows.
//   link_faults:      not supported live (a kernel can't be asked to lose
//                     5% of loopback packets per-flow from here); rejected
//                     at load time.
//
// After the load window plus a settle period, every surviving daemon is
// asked to `quit` cleanly; the supervisor then diffs the store dumps of
// all survivors pairwise within each shard plane (the planes are
// independent Helios clusters holding disjoint data, so only same-shard
// dumps must be identical — the log replicates values, timestamps, and
// writer ids deterministically) and, for every child that was killed and
// relaunched, asserts its metrics JSON shows a nonzero `recovery.*` (WAL
// records replayed and a completed catch-up). Exit 0 on convergence, 1
// on any divergence, crash, or missing recovery.

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "harness/cli.h"
#include "sim/fault_plan.h"
#include "transport/cluster_spec.h"

namespace {

using helios::Status;
using helios::transport::ClusterSpec;
namespace cli = helios::harness::cli;

using Clock = std::chrono::steady_clock;

struct Child {
  pid_t pid = -1;
  int stdin_fd = -1;   ///< Command pipe into the daemon.
  int stdout_fd = -1;  ///< Readiness / ack stream out of it.
  std::string pending;  ///< Partial line buffered from stdout_fd.
  bool running = false;
  bool was_killed = false;     ///< SIGKILLed by the plan at least once.
  bool was_relaunched = false; ///< Relaunched after a kill.
  std::string dump_path;
  std::string metrics_path;
};

/// Reads one '\n'-terminated line from the child's stdout, waiting up to
/// `timeout_ms`. Returns false on EOF/timeout.
bool ReadLine(Child* child, int timeout_ms, std::string* line) {
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(timeout_ms);
  for (;;) {
    const size_t nl = child->pending.find('\n');
    if (nl != std::string::npos) {
      *line = child->pending.substr(0, nl);
      child->pending.erase(0, nl + 1);
      return true;
    }
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - Clock::now());
    if (left.count() <= 0) return false;
    struct pollfd pfd{child->stdout_fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, static_cast<int>(left.count()));
    if (ready <= 0) {
      if (ready < 0 && errno == EINTR) continue;
      if (ready == 0) return false;
      continue;
    }
    char chunk[512];
    const ssize_t n = ::read(child->stdout_fd, chunk, sizeof(chunk));
    if (n <= 0) return false;
    child->pending.append(chunk, static_cast<size_t>(n));
  }
}

void CloseChildFds(Child* child) {
  if (child->stdin_fd >= 0) ::close(child->stdin_fd);
  if (child->stdout_fd >= 0) ::close(child->stdout_fd);
  child->stdin_fd = -1;
  child->stdout_fd = -1;
}

void SendCommand(Child* child, const std::string& cmd) {
  if (!child->running || child->stdin_fd < 0) return;
  // A child that died behind our back (crash, OOM kill) leaves a pipe
  // that would take the write and drop it on the floor — or SIGPIPE a
  // supervisor that forgot to ignore it. Reap-check first so the failure
  // is a crisp message instead of a silently ignored command. WNOHANG
  // returns 0 for a merely SIGSTOPped child, so stalled daemons still
  // queue commands for when they thaw.
  int status = 0;
  const pid_t reaped = ::waitpid(child->pid, &status, WNOHANG);
  if (reaped == child->pid) {
    std::fprintf(stderr,
                 "supervisor: child pid %d died unexpectedly (status %d); "
                 "dropping command '%s'\n",
                 static_cast<int>(child->pid), status, cmd.c_str());
    CloseChildFds(child);
    child->running = false;
    return;
  }
  const std::string line = cmd + "\n";
  (void)!::write(child->stdin_fd, line.data(), line.size());
}

struct LaunchOptions {
  std::string heliosd;
  std::string cluster_path;
  std::string out_dir;
  double load_rate = 0.0;
  double load_duration_s = 0.0;
  int64_t max_inflight = 0;
  int64_t queue_watermark = 0;
  int64_t seed = 1;
  int shards = 1;  ///< From the cluster spec; > 1 adds --shard per child.
};

bool Launch(const LaunchOptions& opts, int dc, int shard, bool with_load,
            Child* child) {
  int to_child[2];
  int from_child[2];
  if (::pipe(to_child) != 0 || ::pipe(from_child) != 0) return false;
  const pid_t pid = ::fork();
  if (pid < 0) return false;
  if (pid == 0) {
    ::dup2(to_child[0], STDIN_FILENO);
    ::dup2(from_child[1], STDOUT_FILENO);
    ::close(to_child[0]);
    ::close(to_child[1]);
    ::close(from_child[0]);
    ::close(from_child[1]);
    std::vector<std::string> args = {
        opts.heliosd,
        "--cluster=" + opts.cluster_path,
        "--dc=" + std::to_string(dc),
        "--dump_out=" + child->dump_path,
        "--metrics_out=" + child->metrics_path,
        "--max_inflight=" + std::to_string(opts.max_inflight),
        "--queue_watermark=" + std::to_string(opts.queue_watermark),
        "--seed=" + std::to_string(opts.seed),
    };
    if (opts.shards > 1) {
      args.push_back("--shard=" + std::to_string(shard));
    }
    if (with_load && opts.load_rate > 0.0) {
      args.push_back("--load_rate=" + std::to_string(opts.load_rate));
      args.push_back("--load_duration_s=" +
                     std::to_string(opts.load_duration_s));
    }
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);
    ::execv(opts.heliosd.c_str(), argv.data());
    std::perror("execv heliosd");
    ::_exit(127);
  }
  ::close(to_child[0]);
  ::close(from_child[1]);
  child->pid = pid;
  child->stdin_fd = to_child[1];
  child->stdout_fd = from_child[0];
  child->pending.clear();
  child->running = true;

  // Readiness: the daemon prints its listening line only after any WAL
  // recovery completed and the socket is bound.
  std::string line;
  if (!ReadLine(child, /*timeout_ms=*/10000, &line) ||
      line.find("listening") == std::string::npos) {
    if (opts.shards > 1) {
      std::fprintf(stderr,
                   "supervisor: dc %d shard %d failed to become ready\n", dc,
                   shard);
    } else {
      std::fprintf(stderr, "supervisor: dc %d failed to become ready\n", dc);
    }
    return false;
  }
  return true;
}

void KillChild(Child* child) {
  if (!child->running) return;
  ::kill(child->pid, SIGKILL);
  int status = 0;
  ::waitpid(child->pid, &status, 0);
  CloseChildFds(child);
  child->running = false;
  child->was_killed = true;
}

/// Waits for a clean exit; returns false on crash / nonzero status.
bool WaitClean(Child* child, int dc) {
  if (!child->running) return true;
  int status = 0;
  ::waitpid(child->pid, &status, 0);
  CloseChildFds(child);
  child->running = false;
  if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    std::fprintf(stderr, "supervisor: dc %d exited abnormally (status %d)\n",
                 dc, status);
    return false;
  }
  return true;
}

/// Pulls recovery.<field> counters out of a heliosd metrics document.
bool ReadRecoveryCounters(const std::string& path, uint64_t* recoveries,
                          uint64_t* records_replayed) {
  auto text = cli::ReadWholeFile(path);
  if (!text.ok()) return false;
  auto parsed = helios::json::Parse(text.value());
  if (!parsed.ok()) return false;
  for (const auto& [key, value] : parsed.value().members) {
    if (key != "recovery") continue;
    for (const auto& [rkey, rvalue] : value.members) {
      if (rkey == "recoveries") {
        (void)helios::json::ReadUint64(rkey, rvalue, recoveries);
      } else if (rkey == "records_replayed") {
        (void)helios::json::ReadUint64(rkey, rvalue, records_replayed);
      }
    }
    return true;
  }
  return false;
}

/// First line where the two dumps differ, for the failure report.
std::string FirstDiff(const std::string& a, const std::string& b) {
  size_t pos_a = 0;
  size_t pos_b = 0;
  int line_no = 1;
  while (pos_a < a.size() || pos_b < b.size()) {
    const size_t nl_a = a.find('\n', pos_a);
    const size_t nl_b = b.find('\n', pos_b);
    const std::string line_a =
        a.substr(pos_a, nl_a == std::string::npos ? std::string::npos
                                                  : nl_a - pos_a);
    const std::string line_b =
        b.substr(pos_b, nl_b == std::string::npos ? std::string::npos
                                                  : nl_b - pos_b);
    if (line_a != line_b) {
      return "line " + std::to_string(line_no) + ": '" + line_a +
             "' vs '" + line_b + "'";
    }
    if (nl_a == std::string::npos || nl_b == std::string::npos) break;
    pos_a = nl_a + 1;
    pos_b = nl_b + 1;
    ++line_no;
  }
  return "identical";
}

}  // namespace

int main(int argc, char** argv) {
  helios::FlagSet flags;
  flags.DefineString("cluster", "", "Cluster spec JSON file (required)");
  flags.DefineString("heliosd", "./heliosd", "Path to the heliosd binary");
  flags.DefineString("plan", "",
                     "FaultPlan JSON of timed kill/relaunch/partition "
                     "events (times are microseconds after load start)");
  flags.DefineString("out_dir", "/tmp",
                     "Directory for per-DC dump and metrics files");
  flags.DefineDouble("load_rate", 200.0,
                     "Per-DC self-offered load, txn/s (0 = none)");
  flags.DefineDouble("load_duration_s", 2.0, "Load window length");
  flags.DefineDouble("settle_s", 2.0,
                     "Post-load convergence wait before quiescing");
  flags.DefineInt("max_inflight", 0, "heliosd admission: max in-flight");
  flags.DefineInt("queue_watermark", 0, "heliosd admission: loop backlog");
  flags.DefineInt("seed", 1, "Load seed");
  flags.DefineBool("help", false, "Show usage");
  cli::ParseOrExit(&flags, argc, argv);

  const std::string cluster_path = flags.GetString("cluster");
  if (cluster_path.empty()) {
    std::fprintf(stderr, "--cluster is required\n%s", flags.Help().c_str());
    return cli::kExitUsage;
  }
  auto text = cli::ReadWholeFile(cluster_path);
  if (!text.ok()) return cli::FailWith(text.status(), cli::kExitUsage);
  auto spec = ClusterSpec::FromJson(text.value());
  if (!spec.ok()) return cli::FailWith(spec.status(), cli::kExitUsage);
  Status valid = spec.value().Validate();
  if (!valid.ok()) return cli::FailWith(valid, cli::kExitUsage);
  const ClusterSpec& cluster = spec.value();
  const int n = cluster.num_datacenters();

  // The chaos schedule, reusing the simulator's declarative plan format.
  helios::sim::FaultPlan plan;
  if (!flags.GetString("plan").empty()) {
    auto plan_text = cli::ReadWholeFile(flags.GetString("plan"));
    if (!plan_text.ok()) {
      return cli::FailWith(plan_text.status(), cli::kExitUsage);
    }
    auto parsed = helios::sim::FaultPlan::FromJson(plan_text.value());
    if (!parsed.ok()) return cli::FailWith(parsed.status(), cli::kExitUsage);
    plan = parsed.value();
    valid = plan.Validate(n);
    if (!valid.ok()) return cli::FailWith(valid, cli::kExitUsage);
    if (plan.HasMessageFaults()) {
      return cli::FailWith(
          Status::InvalidArgument(
              "link_faults are not supported against live processes; use "
              "node_events / partition_events"),
          cli::kExitUsage);
    }
    for (const helios::sim::GrayFault& g : plan.gray_faults) {
      // Stalls and half-open links map onto real processes (SIGSTOP /
      // one-sided refusal); in-flight latency scaling and storage
      // slowness do not — they live inside the victim, which this
      // supervisor only controls from outside.
      if (g.kind == helios::sim::GrayFaultKind::kSlowLink ||
          g.kind == helios::sim::GrayFaultKind::kFsyncStall) {
        return cli::FailWith(
            Status::InvalidArgument(
                std::string("gray fault kind '") +
                helios::sim::GrayFaultKindName(g.kind) +
                "' is not supported against live processes; use "
                "process_stall / asym_partition"),
            cli::kExitUsage);
      }
      if (g.a == helios::sim::kAnyDc ||
          (g.kind == helios::sim::GrayFaultKind::kAsymPartition &&
           g.b == helios::sim::kAnyDc)) {
        return cli::FailWith(
            Status::InvalidArgument(
                "gray faults need concrete endpoints live (no wildcards)"),
            cli::kExitUsage);
      }
      if (g.active_until >= helios::sim::kMaxSimTime) {
        return cli::FailWith(
            Status::InvalidArgument(
                "gray faults need a finite window live (a daemon left "
                "SIGSTOPped forever would wedge the convergence check)"),
            cli::kExitUsage);
      }
    }
  }

  // One time-ordered stream of plan events. Window-shaped gray faults
  // unroll into a start and an end edge.
  enum class EventKind { kNode, kPartition, kGrayStart, kGrayEnd };
  struct TimedEvent {
    helios::sim::SimTime at = 0;
    EventKind kind = EventKind::kNode;
    helios::sim::NodeEvent node;
    helios::sim::PartitionEvent partition;
    helios::sim::GrayFault gray;
  };
  std::vector<TimedEvent> events;
  for (const auto& e : plan.node_events) {
    TimedEvent t;
    t.at = e.at;
    t.kind = EventKind::kNode;
    t.node = e;
    events.push_back(t);
  }
  for (const auto& e : plan.partition_events) {
    TimedEvent t;
    t.at = e.at;
    t.kind = EventKind::kPartition;
    t.partition = e;
    events.push_back(t);
  }
  for (const auto& g : plan.gray_faults) {
    TimedEvent start;
    start.at = g.active_from;
    start.kind = EventKind::kGrayStart;
    start.gray = g;
    events.push_back(start);
    TimedEvent end;
    end.at = g.active_until;
    end.kind = EventKind::kGrayEnd;
    end.gray = g;
    events.push_back(end);
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const TimedEvent& a, const TimedEvent& b) {
                     return a.at < b.at;
                   });

  LaunchOptions opts;
  opts.heliosd = flags.GetString("heliosd");
  opts.cluster_path = cluster_path;
  opts.out_dir = flags.GetString("out_dir");
  opts.load_rate = flags.GetDouble("load_rate");
  opts.load_duration_s = flags.GetDouble("load_duration_s");
  opts.max_inflight = flags.GetInt("max_inflight");
  opts.queue_watermark = flags.GetInt("queue_watermark");
  opts.seed = flags.GetInt("seed");
  opts.shards = cluster.shards;
  const int shards = cluster.shards;

  ::signal(SIGPIPE, SIG_IGN);

  // One child per (dc, shard) cell, dc-major. Unsharded output file
  // names stay exactly as before (dc0.dump, not dc0.s0.dump).
  const auto child_index = [shards](int dc, int s) {
    return static_cast<size_t>(dc * shards + s);
  };
  std::vector<Child> children(static_cast<size_t>(n * shards));
  for (int dc = 0; dc < n; ++dc) {
    for (int s = 0; s < shards; ++s) {
      Child& child = children[child_index(dc, s)];
      const std::string stem =
          opts.out_dir + "/dc" + std::to_string(dc) +
          (shards > 1 ? ".s" + std::to_string(s) : "");
      child.dump_path = stem + ".dump";
      child.metrics_path = stem + ".metrics.json";
      if (!Launch(opts, dc, s, /*with_load=*/true, &child)) {
        for (Child& c : children) KillChild(&c);
        return cli::kExitFailure;
      }
    }
  }
  std::printf("supervisor: %d daemons up, load %.0f txn/s for %.1fs\n",
              n * shards, opts.load_rate, opts.load_duration_s);

  const Clock::time_point t0 = Clock::now();
  for (const TimedEvent& event : events) {
    std::this_thread::sleep_until(t0 + std::chrono::microseconds(event.at));
    if (event.kind == EventKind::kNode) {
      // Plan node indices address whole datacenters; every shard child
      // of the DC shares its fate (a machine crash takes all its
      // colocated shard daemons with it).
      if (!event.node.up) {
        std::printf("supervisor: SIGKILL dc %d at t=%.2fs\n",
                    event.node.node,
                    static_cast<double>(event.at) / 1e6);
        for (int s = 0; s < shards; ++s) {
          KillChild(&children[child_index(event.node.node, s)]);
        }
      } else {
        std::printf("supervisor: relaunch dc %d at t=%.2fs\n",
                    event.node.node,
                    static_cast<double>(event.at) / 1e6);
        // Relaunched daemons offer no load of their own: the survivors
        // keep the cluster busy while this one recovers.
        for (int s = 0; s < shards; ++s) {
          Child& child = children[child_index(event.node.node, s)];
          if (!Launch(opts, event.node.node, s, /*with_load=*/false,
                      &child)) {
            for (Child& c : children) KillChild(&c);
            return cli::kExitFailure;
          }
          child.was_relaunched = true;
        }
      }
    } else if (event.kind == EventKind::kPartition) {
      const int a = event.partition.a;
      const int b = event.partition.b;
      const char* verb = event.partition.partitioned ? "partition" : "heal";
      std::printf("supervisor: %s %d <-> %d at t=%.2fs\n", verb, a, b,
                  static_cast<double>(event.at) / 1e6);
      // Outbound refusal at both endpoints = a full bidirectional cut,
      // applied on every shard plane (the link between two sites carries
      // all of their planes).
      for (int s = 0; s < shards; ++s) {
        SendCommand(&children[child_index(a, s)],
                    std::string(verb) + " " + std::to_string(b));
        SendCommand(&children[child_index(b, s)],
                    std::string(verb) + " " + std::to_string(a));
      }
    } else if (event.gray.kind ==
               helios::sim::GrayFaultKind::kProcessStall) {
      const bool start = event.kind == EventKind::kGrayStart;
      std::printf("supervisor: %s dc %d at t=%.2fs\n",
                  start ? "SIGSTOP" : "SIGCONT", event.gray.a,
                  static_cast<double>(event.at) / 1e6);
      // A frozen-not-dead process: the kernel keeps its listening socket
      // and peer connections open, so from outside the daemon is silent
      // yet every probe still connects — the textbook gray failure.
      for (int s = 0; s < shards; ++s) {
        Child& child = children[child_index(event.gray.a, s)];
        if (child.running) {
          ::kill(child.pid, start ? SIGSTOP : SIGCONT);
        }
      }
    } else if (event.gray.kind ==
               helios::sim::GrayFaultKind::kAsymPartition) {
      const bool start = event.kind == EventKind::kGrayStart;
      const char* verb = start ? "partition" : "heal";
      std::printf("supervisor: %s %d -> %d (one-way) at t=%.2fs\n", verb,
                  event.gray.a, event.gray.b,
                  static_cast<double>(event.at) / 1e6);
      // Refusal at the *a* endpoint only: a->b messages die while b->a
      // still flows, the half-open link a bidirectional cut can't model.
      for (int s = 0; s < shards; ++s) {
        SendCommand(&children[child_index(event.gray.a, s)],
                    std::string(verb) + " " + std::to_string(event.gray.b));
      }
    }
  }

  // Let the load window finish, then give replication and catch-up time
  // to quiesce before comparing stores.
  const auto settle_end =
      t0 +
      std::chrono::milliseconds(
          static_cast<int64_t>((opts.load_duration_s +
                                flags.GetDouble("settle_s")) *
                               1000.0));
  std::this_thread::sleep_until(settle_end);

  bool ok = true;
  for (Child& child : children) SendCommand(&child, "quit");
  for (int dc = 0; dc < n; ++dc) {
    for (int s = 0; s < shards; ++s) {
      if (!WaitClean(&children[child_index(dc, s)], dc)) ok = false;
    }
  }

  // Convergence: within each shard plane, every daemon alive at the end
  // must dump an identical store (values, commit timestamps, and writer
  // ids all replicate). Planes hold disjoint data and are never compared
  // against each other.
  size_t total_survivors = 0;
  for (int s = 0; s < shards; ++s) {
    std::vector<int> survivors;
    for (int dc = 0; dc < n; ++dc) {
      const Child& child = children[child_index(dc, s)];
      if (child.was_killed && !child.was_relaunched) continue;  // Down.
      survivors.push_back(dc);
    }
    total_survivors += survivors.size();
    std::map<int, std::string> dumps;
    for (int dc : survivors) {
      auto dump = cli::ReadWholeFile(children[child_index(dc, s)].dump_path);
      if (!dump.ok()) {
        std::fprintf(stderr, "supervisor: missing dump for dc %d shard %d\n",
                     dc, s);
        ok = false;
        continue;
      }
      dumps[dc] = dump.value();
    }
    for (size_t i = 1; i < survivors.size(); ++i) {
      const int a = survivors[0];
      const int b = survivors[i];
      if (dumps.count(a) == 0 || dumps.count(b) == 0) continue;
      if (dumps[a] != dumps[b]) {
        std::fprintf(
            stderr,
            "supervisor: store divergence dc %d vs dc %d (shard %d): %s\n",
            a, b, s, FirstDiff(dumps[a], dumps[b]).c_str());
        ok = false;
      }
    }
  }

  // Every relaunched child must show real recovery work.
  for (int dc = 0; dc < n; ++dc) {
    for (int s = 0; s < shards; ++s) {
      const Child& child = children[child_index(dc, s)];
      if (!child.was_relaunched) continue;
      const std::string who =
          "dc " + std::to_string(dc) +
          (shards > 1 ? " shard " + std::to_string(s) : "");
      uint64_t recoveries = 0;
      uint64_t replayed = 0;
      if (!ReadRecoveryCounters(child.metrics_path, &recoveries,
                                &replayed)) {
        std::fprintf(stderr, "supervisor: no metrics for relaunched %s\n",
                     who.c_str());
        ok = false;
        continue;
      }
      if (recoveries == 0 || replayed == 0) {
        std::fprintf(stderr,
                     "supervisor: %s relaunched but recovery.* empty "
                     "(recoveries=%llu records_replayed=%llu)\n",
                     who.c_str(),
                     static_cast<unsigned long long>(recoveries),
                     static_cast<unsigned long long>(replayed));
        ok = false;
      }
      std::printf("supervisor: %s recovery recoveries=%llu replayed=%llu\n",
                  who.c_str(), static_cast<unsigned long long>(recoveries),
                  static_cast<unsigned long long>(replayed));
    }
  }

  if (ok) {
    std::printf("supervisor: converged (%zu survivors, %d datacenters)\n",
                total_survivors, n);
    return cli::kExitOk;
  }
  std::fprintf(stderr, "supervisor: FAILED\n");
  return cli::kExitFailure;
}
