// bench_compare: the CI perf regression gate (docs/PERFORMANCE.md).
//
// Compares a freshly measured bench_perf report against the committed
// baseline and exits nonzero if any metric present in both is worse than
// baseline by more than the tolerance band. Direction comes from the
// metric name (harness::MetricLowerIsBetter): "_us"/"_ms"/"_s" suffixes
// are latencies, everything else is a rate.
//
//   bench_compare --baseline=BENCH_1.json --current=bench_now.json
//   bench_compare --baseline=... --current=... --tolerance=0.5
//
// The band is deliberately wide (default 0.5 = anything under 1.5x worse
// passes): CI machines are noisy and shared, and the gate is for
// step-function regressions, not percent-level drift.

#include <cstdio>
#include <string>

#include "common/flags.h"
#include "harness/cli.h"
#include "harness/perf_report.h"

using namespace helios;
namespace hns = helios::harness;
namespace cli = helios::harness::cli;

namespace {

Result<hns::PerfReport> LoadReport(const std::string& path) {
  auto text = cli::ReadWholeFile(path);
  if (!text.ok()) return text.status();
  auto report = hns::PerfReport::FromJson(text.value());
  if (!report.ok()) {
    return Status::InvalidArgument(path + ": " +
                                   report.status().ToString());
  }
  return report;
}

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags;
  flags.DefineString("baseline", "", "committed baseline BENCH_*.json");
  flags.DefineString("current", "", "freshly measured report to check");
  flags.DefineDouble("tolerance", 0.5,
                     "allowed relative slowdown per metric "
                     "(0.5 = fail only when >1.5x worse than baseline)");
  flags.DefineBool("help", false, "show this help");
  cli::ParseOrExit(&flags, argc, argv);

  if (flags.GetString("baseline").empty() ||
      flags.GetString("current").empty()) {
    std::fprintf(stderr, "--baseline and --current are required\n");
    return cli::kExitUsage;
  }

  auto baseline = LoadReport(flags.GetString("baseline"));
  if (!baseline.ok()) {
    return cli::FailWith(baseline.status(), cli::kExitUsage);
  }
  auto current = LoadReport(flags.GetString("current"));
  if (!current.ok()) {
    return cli::FailWith(current.status(), cli::kExitUsage);
  }

  const double tolerance = flags.GetDouble("tolerance");
  const auto regressions =
      hns::ComparePerfReports(baseline.value(), current.value(), tolerance);

  size_t compared = 0;
  for (const hns::PerfEntry& entry : baseline.value().entries) {
    const hns::PerfEntry* cur = current.value().Find(entry.id);
    if (cur == nullptr) continue;
    for (const auto& [name, _] : entry.metrics) {
      if (cur->Find(name) != nullptr) ++compared;
    }
  }
  std::fprintf(stderr, "compared %zu metrics (tolerance %.0f%%)\n", compared,
               tolerance * 100.0);

  if (regressions.empty()) {
    std::fprintf(stderr, "no regressions beyond the tolerance band\n");
    return cli::kExitOk;
  }
  for (const hns::PerfRegression& r : regressions) {
    std::fprintf(stderr,
                 "REGRESSION %s %s: baseline %.2f -> current %.2f "
                 "(%.2fx worse)\n",
                 r.entry.c_str(), r.metric.c_str(), r.baseline, r.current,
                 r.worse_by);
  }
  return cli::kExitFailure;
}
