// json_verify: exit 0 iff every argument names a file containing exactly
// one well-formed JSON value (RFC 8259). Used by the CI bench-smoke job to
// check that --json_out sweep documents parse; shares the checker the unit
// tests use (tests/json_check.h).
//
// With --schema=bench, each file must additionally satisfy the
// helios-bench-perf-v1 shape (harness::PerfReport::FromJson): the schema
// tag, an entries array of {id, metrics}, numeric metric values, and no
// unknown keys. This is how CI validates committed BENCH_*.json documents.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "harness/perf_report.h"
#include "tests/json_check.h"

int main(int argc, char** argv) {
  bool bench_schema = false;
  int first_file = 1;
  if (argc > 1 && std::strncmp(argv[1], "--schema=", 9) == 0) {
    const char* schema = argv[1] + 9;
    if (std::strcmp(schema, "bench") != 0) {
      std::fprintf(stderr, "unknown --schema '%s' (supported: bench)\n",
                   schema);
      return 2;
    }
    bench_schema = true;
    first_file = 2;
  }
  if (first_file >= argc) {
    std::fprintf(stderr, "usage: %s [--schema=bench] FILE...\n", argv[0]);
    return 2;
  }
  int rc = 0;
  for (int i = first_file; i < argc; ++i) {
    std::ifstream in(argv[i], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "%s: cannot open\n", argv[i]);
      rc = 1;
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();
    helios::testing::JsonChecker checker(text);
    if (!checker.Valid()) {
      std::fprintf(stderr, "%s: INVALID JSON at byte %zu\n", argv[i],
                   checker.error_pos());
      rc = 1;
      continue;
    }
    if (bench_schema) {
      auto report = helios::harness::PerfReport::FromJson(text);
      if (!report.ok()) {
        std::fprintf(stderr, "%s: bad bench report: %s\n", argv[i],
                     report.status().ToString().c_str());
        rc = 1;
        continue;
      }
      std::printf("%s: valid %s (%zu entries)\n", argv[i],
                  helios::harness::kPerfReportSchema,
                  report.value().entries.size());
    } else {
      std::printf("%s: valid JSON (%zu bytes)\n", argv[i], text.size());
    }
  }
  return rc;
}
