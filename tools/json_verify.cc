// json_verify: exit 0 iff every argument names a file containing exactly
// one well-formed JSON value (RFC 8259). Used by the CI bench-smoke job to
// check that --json_out sweep documents parse; shares the checker the unit
// tests use (tests/json_check.h).

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "tests/json_check.h"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s FILE...\n", argv[0]);
    return 2;
  }
  int rc = 0;
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "%s: cannot open\n", argv[i]);
      rc = 1;
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();
    helios::testing::JsonChecker checker(text);
    if (checker.Valid()) {
      std::printf("%s: valid JSON (%zu bytes)\n", argv[i], text.size());
    } else {
      std::fprintf(stderr, "%s: INVALID JSON at byte %zu\n", argv[i],
                   checker.error_pos());
      rc = 1;
    }
  }
  return rc;
}
