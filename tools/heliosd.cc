// heliosd: one Helios datacenter as a standalone daemon.
//
// Wraps transport::LiveDatacenter — the HeliosNode engine on a real-time
// event loop with TCP peering — into the process shape a real deployment
// runs: every datacenter is its own OS process, configured from a shared
// cluster-spec JSON (transport/cluster_spec.h), journaling to its own
// file WAL, and supervised from outside (tools/helios_supervisor.cc or an
// init system).
//
// Startup is crash-consistent: if the WAL named in the spec has contents,
// the node restores from it (truncating a torn tail) *before* the
// listening socket serves anything, then catches the missed log suffix up
// from its peers; clients see "recovering" rejections instead of stale
// data. Shutdown on SIGTERM/SIGINT (or the `quit` command, or stdin EOF)
// is clean: stop serving, fsync the WAL, write the store dump and metrics
// files, exit 0.
//
// Control protocol (one command per stdin line; each answered with
// "ok <cmd>" or "err <reason>" on stdout):
//   partition <peer>   refuse the outbound connection to <peer>
//   heal <peer>        lift the refusal
//   dump <path>        write the deterministic store dump to <path>
//   metrics <path>     write the metrics JSON to <path>
//   quit               clean shutdown
//
// Readiness: "heliosd dc=<i> listening port=<p>" on stdout once the
// socket is bound (and any WAL recovery has completed). In a sharded
// spec (cluster "shards" > 1) each process serves one (dc, shard) cell —
// selected by --dc and --shard, listening on PortOf(dc, shard),
// journaling to WalPathFor(dc, shard), and peering only with its own
// shard plane — and the readiness line gains " shard=<k>".
//
// With --load_rate > 0 the daemon also offers itself open-loop Poisson
// load (blind writes, workload::OpenLoopLoadGen) — the overload and
// chaos harnesses use this to generate traffic without a separate client
// binary; the resulting load stats land in the metrics JSON.

#include <poll.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "harness/cli.h"
#include "transport/cluster_spec.h"
#include "transport/live_datacenter.h"
#include "workload/open_loop.h"

namespace {

using helios::Duration;
using helios::Status;
using helios::transport::ClusterSpec;
using helios::transport::LiveDatacenter;
using helios::transport::OverloadStats;
namespace cli = helios::harness::cli;

std::atomic<bool> g_shutdown{false};

void OnSignal(int) { g_shutdown.store(true); }

void InstallSignalHandlers() {
  struct sigaction sa{};
  sa.sa_handler = OnSignal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // No SA_RESTART: interrupt the poll() below.
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
  ::signal(SIGPIPE, SIG_IGN);
}

struct LoadResult {
  bool ran = false;
  /// The load thread sets this after filling `stats`; readers (the
  /// `metrics` command can race a still-running load) skip stats until
  /// then.
  std::atomic<bool> done{false};
  helios::workload::OpenLoopStats stats;
};

std::string MetricsJson(int dc, int shard, int shards, LiveDatacenter& node,
                        const LoadResult& load) {
  namespace json = helios::json;
  const OverloadStats overload = node.overload_snapshot();
  const helios::RecoveryStats recovery = node.recovery_snapshot();

  std::string overload_doc;
  {
    json::ObjectWriter w(&overload_doc);
    w.Field("admitted", overload.admitted);
    w.Field("inflight", overload.inflight);
    w.Field("queue_depth", overload.queue_depth);
    w.Field("shed", overload.shed);
    w.Close();
  }
  std::string recovery_doc;
  {
    json::ObjectWriter w(&recovery_doc);
    w.Field("catchup_records", recovery.catchup_records);
    w.Field("duration_us", recovery.duration_us);
    w.Field("records_replayed", recovery.records_replayed);
    w.Field("recoveries", recovery.recoveries);
    w.Close();
  }
  std::string transport_doc;
  {
    json::ObjectWriter w(&transport_doc);
    w.Field("messages_received", node.transport().messages_received());
    w.Field("messages_sent", node.transport().messages_sent());
    w.Field("reconnects", node.transport().reconnects());
    w.Field("redial_cooldown_remaining_ms",
            node.transport().redial_cooldown_remaining_ms());
    w.Field("sends_blocked", node.transport().sends_blocked());
    w.Close();
  }
  const helios::transport::HealthSnapshot health = node.health_snapshot();
  std::string health_doc;
  if (health.enabled) {
    json::ObjectWriter w(&health_doc);
    int64_t suspected = 0;
    for (size_t p = 0; p < health.phi.size(); ++p) {
      if (static_cast<int>(p) == dc) continue;
      w.Field(("phi_dc" + std::to_string(p)).c_str(), health.phi[p]);
      suspected += health.suspected[p] ? 1 : 0;
    }
    w.Field("suspected", suspected);
    w.Close();
  }

  std::string out;
  json::ObjectWriter w(&out);
  w.Field("dc", static_cast<int64_t>(dc));
  if (health.enabled) w.Raw("health", health_doc);
  if (load.ran && load.done.load()) {
    std::string load_doc;
    json::ObjectWriter lw(&load_doc);
    lw.Field("aborted", load.stats.aborted);
    lw.Field("arrivals", load.stats.arrivals);
    lw.Field("busy_rejected", load.stats.busy_rejected);
    lw.Field("committed", load.stats.committed);
    lw.Field("dropped", load.stats.dropped);
    lw.Field("goodput_per_sec", load.stats.goodput_per_sec());
    lw.Field("issued", load.stats.issued);
    lw.Field("latency_p50_ms", load.stats.commit_latency_ms.count() > 0
                                   ? load.stats.commit_latency_ms.Median()
                                   : 0.0);
    lw.Field("latency_p99_ms",
             load.stats.commit_latency_ms.count() > 0
                 ? load.stats.commit_latency_ms.Percentile(99.0)
                 : 0.0);
    lw.Field("retries", load.stats.retries);
    lw.Field("undrained", load.stats.undrained);
    lw.Close();
    w.Raw("load", load_doc);
  }
  w.Raw("overload", overload_doc);
  w.Raw("recovery", recovery_doc);
  if (shards > 1) w.Field("shard", static_cast<int64_t>(shard));
  w.Raw("transport", transport_doc);
  w.Close();
  return out;
}

/// Parses "cmd arg" lines; returns false once the daemon should exit.
bool HandleCommand(const std::string& line, LiveDatacenter& node, int dc,
                   int shard, int shards, const LoadResult& load) {
  const size_t space = line.find(' ');
  const std::string cmd = line.substr(0, space);
  const std::string arg =
      space == std::string::npos ? "" : line.substr(space + 1);
  if (cmd == "quit") return false;
  if (cmd == "partition" || cmd == "heal") {
    char* end = nullptr;
    const long peer = std::strtol(arg.c_str(), &end, 10);
    if (end == arg.c_str() || *end != '\0') {
      std::printf("err %s: bad peer '%s'\n", cmd.c_str(), arg.c_str());
    } else {
      node.BlockPeer(static_cast<helios::DcId>(peer), cmd == "partition");
      std::printf("ok %s %ld\n", cmd.c_str(), peer);
    }
  } else if (cmd == "dump") {
    node.SyncWal();
    const Status s = cli::WriteWholeFile(arg, node.DumpStore());
    if (s.ok()) {
      std::printf("ok dump\n");
    } else {
      std::printf("err dump: %s\n", s.message().c_str());
    }
  } else if (cmd == "metrics") {
    const Status s =
        cli::WriteWholeFile(arg, MetricsJson(dc, shard, shards, node, load));
    if (s.ok()) {
      std::printf("ok metrics\n");
    } else {
      std::printf("err metrics: %s\n", s.message().c_str());
    }
  } else {
    std::printf("err unknown command '%s'\n", cmd.c_str());
  }
  std::fflush(stdout);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  helios::FlagSet flags;
  flags.DefineString("cluster", "", "Cluster spec JSON file (required)");
  flags.DefineInt("dc", -1, "This process's datacenter index (required)");
  flags.DefineInt("shard", 0,
                  "This process's shard index (sharded cluster specs)");
  flags.DefineString("dump_out", "",
                     "Write the store dump here on clean shutdown");
  flags.DefineString("metrics_out", "",
                     "Write the metrics JSON here on clean shutdown");
  flags.DefineDouble("load_rate", 0.0,
                     "Self-offered open-loop load, txn/s (0 = none)");
  flags.DefineDouble("load_duration_s", 1.0,
                     "How long to offer load once started");
  flags.DefineInt("load_retries", 6,
                  "Busy-rejection retry budget for the load generator");
  flags.DefineInt("max_inflight", 0,
                  "Admission control: max in-flight commits (0 = unlimited)");
  flags.DefineInt("queue_watermark", 0,
                  "Admission control: max loop backlog (0 = unlimited)");
  flags.DefineInt("seed", 1, "Load generator seed");
  flags.DefineBool("help", false, "Show usage");
  cli::ParseOrExit(&flags, argc, argv);

  const std::string cluster_path = flags.GetString("cluster");
  const int dc = static_cast<int>(flags.GetInt("dc"));
  if (cluster_path.empty() || dc < 0) {
    std::fprintf(stderr, "--cluster and --dc are required\n%s",
                 flags.Help().c_str());
    return cli::kExitUsage;
  }
  auto text = cli::ReadWholeFile(cluster_path);
  if (!text.ok()) return cli::FailWith(text.status(), cli::kExitUsage);
  auto spec = ClusterSpec::FromJson(text.value());
  if (!spec.ok()) return cli::FailWith(spec.status(), cli::kExitUsage);
  const Status valid = spec.value().Validate();
  if (!valid.ok()) return cli::FailWith(valid, cli::kExitUsage);
  if (dc >= spec.value().num_datacenters()) {
    std::fprintf(stderr, "--dc %d out of range (spec has %d datacenters)\n",
                 dc, spec.value().num_datacenters());
    return cli::kExitUsage;
  }
  const int shard = static_cast<int>(flags.GetInt("shard"));
  if (shard < 0 || shard >= spec.value().shards) {
    std::fprintf(stderr, "--shard %d out of range (spec has %d shard%s)\n",
                 shard, spec.value().shards,
                 spec.value().shards == 1 ? "" : "s");
    return cli::kExitUsage;
  }
  const ClusterSpec& cluster = spec.value();

  InstallSignalHandlers();

  LiveDatacenter node(static_cast<helios::DcId>(dc), cluster.MakeConfig(),
                      cluster.inbound_delay);
  helios::transport::AdmissionConfig admission;
  admission.max_inflight =
      static_cast<uint64_t>(flags.GetInt("max_inflight"));
  admission.queue_watermark =
      static_cast<uint64_t>(flags.GetInt("queue_watermark"));
  node.SetAdmissionControl(admission);

  // Recover-then-serve: the WAL replay happens before the socket exists,
  // so no peer or client ever observes pre-crash state. In a sharded
  // spec each (dc, shard) cell journals to its own derived WAL path.
  const std::string wal_path = cluster.WalPathFor(dc, shard);
  if (!wal_path.empty()) {
    const Status s = node.EnableWal(wal_path, cluster.wal_options);
    if (!s.ok()) return cli::FailWith(s, cli::kExitFailure);
  }

  Status s = node.Listen(cluster.PortOf(dc, shard));
  if (!s.ok()) return cli::FailWith(s, cli::kExitFailure);
  if (cluster.shards > 1) {
    std::printf("heliosd dc=%d listening port=%u shard=%d\n", dc,
                node.port(), shard);
  } else {
    std::printf("heliosd dc=%d listening port=%u\n", dc, node.port());
  }
  std::fflush(stdout);

  // Peers are the same shard plane at every other datacenter: shard
  // planes are independent live Helios clusters and never interconnect.
  s = node.ConnectPeers(cluster.ports(shard));
  if (!s.ok()) return cli::FailWith(s, cli::kExitFailure);
  node.Start();

  // Self-offered load (for the overload / chaos harnesses).
  LoadResult load;
  std::thread load_thread;
  if (flags.GetDouble("load_rate") > 0.0) {
    helios::workload::OpenLoopOptions opts;
    opts.rate_per_sec = flags.GetDouble("load_rate");
    opts.duration = std::chrono::milliseconds(
        static_cast<int64_t>(flags.GetDouble("load_duration_s") * 1000.0));
    opts.seed = static_cast<uint64_t>(flags.GetInt("seed")) +
                static_cast<uint64_t>(dc + shard * cluster.num_datacenters()) *
                    0x9E3779B97F4A7C15ULL;
    opts.backoff.max_retries =
        static_cast<int>(flags.GetInt("load_retries"));
    load.ran = true;
    load_thread = std::thread([&node, &load, opts]() {
      helios::workload::OpenLoopLoadGen gen(
          opts, [&node](std::vector<helios::WriteEntry> writes,
                        helios::CommitCallback done) {
            node.Commit({}, std::move(writes), std::move(done));
          });
      load.stats = gen.Run();
      load.done.store(true);
    });
  }

  // Command loop: poll stdin so SIGTERM (no SA_RESTART) interrupts the
  // wait instead of leaving the daemon parked in a blocking read.
  std::string buffer;
  bool run = true;
  while (run && !g_shutdown.load()) {
    struct pollfd pfd{STDIN_FILENO, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 200);
    if (ready < 0) continue;  // EINTR: loop re-checks g_shutdown.
    if (ready == 0) continue;
    char chunk[4096];
    const ssize_t n = ::read(STDIN_FILENO, chunk, sizeof(chunk));
    if (n <= 0) break;  // Supervisor went away: clean shutdown.
    buffer.append(chunk, static_cast<size_t>(n));
    size_t nl;
    while (run && (nl = buffer.find('\n')) != std::string::npos) {
      const std::string line = buffer.substr(0, nl);
      buffer.erase(0, nl + 1);
      if (!line.empty()) {
        run = HandleCommand(line, node, dc, shard, cluster.shards, load);
      }
    }
  }

  if (load_thread.joinable()) load_thread.join();
  node.Stop();  // Syncs the WAL.
  const std::string dump_out = flags.GetString("dump_out");
  if (!dump_out.empty()) {
    (void)cli::WriteWholeFile(dump_out, node.DumpStore());
  }
  const std::string metrics_out = flags.GetString("metrics_out");
  if (!metrics_out.empty()) {
    (void)cli::WriteWholeFile(
        metrics_out, MetricsJson(dc, shard, cluster.shards, node, load));
  }
  std::printf("heliosd dc=%d exiting\n", dc);
  return cli::kExitOk;
}
