// Quickstart: stand up a three-datacenter Helios deployment on the
// simulated WAN, plan optimal commit offsets with the MAO linear program,
// run a handful of transactions, and read the results back.
//
//   $ ./build/examples/quickstart

#include <cstdio>
#include <string>

#include "core/helios_cluster.h"
#include "harness/experiment.h"
#include "harness/topology.h"
#include "lp/mao.h"
#include "sim/network.h"
#include "sim/scheduler.h"

using namespace helios;

int main() {
  // 1. Describe the deployment: three datacenters with the paper's
  //    Section 3.2 round-trip times (A-B 30ms, A-C 20ms, B-C 40ms).
  const harness::Topology topo = harness::PaperExampleTopology();

  // 2. Plan commit latencies with the MAO linear program and turn them
  //    into commit offsets (Eq. 5). This is the step that makes Helios
  //    commit faster than master/slave or majority replication.
  const auto latencies = lp::SolveMao(topo.rtt_ms).value();
  std::printf("planned commit latencies: A=%.0fms B=%.0fms C=%.0fms (avg %.1f)\n",
              latencies[0], latencies[1], latencies[2],
              lp::AverageLatency(latencies));

  // 3. Build the simulated world and the Helios cluster.
  sim::Scheduler scheduler;
  sim::Network network(&scheduler, topo.size(), /*seed=*/1);
  harness::ConfigureNetwork(topo, &network);

  core::HeliosConfig config;
  config.num_datacenters = topo.size();
  config.commit_offsets = harness::PlanCommitOffsets(topo, std::nullopt);
  config.log_interval = Millis(5);
  core::HeliosCluster cluster(&scheduler, &network, std::move(config));

  cluster.LoadInitialAll("greeting", "hello");
  cluster.Start();

  // 4. A client at datacenter A: read, then read-modify-write commit.
  scheduler.At(Millis(50), [&] {
    cluster.ClientRead(0, "greeting", [&](Result<VersionedValue> r) {
      std::printf("[%.1fms] client@A read greeting = \"%s\"\n",
                  ToMillis(scheduler.Now()), r.value().value.c_str());
      ReadEntry read{"greeting", r.value().ts, r.value().writer};
      const sim::SimTime start = scheduler.Now();
      cluster.ClientCommit(
          0, {read}, {{"greeting", "hello, geo-replicated world"}},
          [&, start](const CommitOutcome& outcome) {
            std::printf("[%.1fms] client@A commit %s (txn %s, latency %.1fms)\n",
                        ToMillis(scheduler.Now()),
                        outcome.committed ? "OK" : "ABORTED",
                        outcome.id.ToString().c_str(),
                        ToMillis(scheduler.Now() - start));
          });
    });
  });

  // 5. Meanwhile a client at datacenter B writes a different key — commits
  //    proceed independently when there is no conflict.
  scheduler.At(Millis(60), [&] {
    const sim::SimTime start = scheduler.Now();
    cluster.ClientCommit(1, {}, {{"counter", "1"}},
                         [&, start](const CommitOutcome& outcome) {
                           std::printf(
                               "[%.1fms] client@B commit %s (latency %.1fms)\n",
                               ToMillis(scheduler.Now()),
                               outcome.committed ? "OK" : "ABORTED",
                               ToMillis(scheduler.Now() - start));
                         });
  });

  // 6. Later, read the replicated value at the farthest datacenter.
  scheduler.At(Millis(400), [&] {
    cluster.ClientRead(2, "greeting", [&](Result<VersionedValue> r) {
      std::printf("[%.1fms] client@C read greeting = \"%s\"\n",
                  ToMillis(scheduler.Now()), r.value().value.c_str());
    });
  });

  scheduler.RunUntil(Seconds(1));
  std::printf("done after %llu simulated events\n",
              static_cast<unsigned long long>(scheduler.events_processed()));
  return 0;
}
