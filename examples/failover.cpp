// failover: demonstrates Helios's liveness machinery (Section 4.4) during
// a datacenter outage.
//
// A five-datacenter Helios-1 deployment (tolerating one outage, grace time
// 400ms) keeps committing when Singapore goes dark: surviving datacenters
// use the inferred knowledge bound (eta, Eqs. 2-3) instead of waiting for
// the dead datacenter's log, paying roughly one grace time of extra
// latency. When Singapore comes back, the replicated log catches it up and
// latency returns to normal.
//
//   $ ./build/examples/failover

#include <cstdio>
#include <functional>
#include <memory>
#include <string>

#include "common/random.h"
#include "core/helios_cluster.h"
#include "harness/experiment.h"
#include "harness/topology.h"
#include "sim/network.h"
#include "sim/scheduler.h"

using namespace helios;

int main() {
  const harness::Topology topo = harness::Table2Topology();
  sim::Scheduler scheduler;
  sim::Network network(&scheduler, topo.size(), /*seed=*/7);
  harness::ConfigureNetwork(topo, &network);

  core::HeliosConfig config;
  config.num_datacenters = topo.size();
  config.commit_offsets = harness::PlanCommitOffsets(topo, std::nullopt);
  config.fault_tolerance = 1;
  config.grace_time = Millis(400);
  core::HeliosCluster cluster(&scheduler, &network, std::move(config));
  cluster.LoadInitialAll("account", "1000");
  cluster.Start();

  // One client at Virginia committing continuously; we print a sample of
  // its commits so the latency change around the outage is visible.
  auto counter = std::make_shared<int>(0);
  auto rng = std::make_shared<Rng>(5);
  auto loop = std::make_shared<std::function<void()>>();
  *loop = [&, counter, rng, loop] {
    if (scheduler.Now() > Seconds(24)) return;
    const sim::SimTime start = scheduler.Now();
    cluster.ClientCommit(
        0, {}, {{"k" + std::to_string(rng->Uniform(100)), "v"}},
        [&, counter, loop, start](const CommitOutcome& o) {
          const int i = ++*counter;
          if (i % 10 == 0) {
            std::printf("[%6.2fs] commit #%d at V: %s, latency %6.1fms\n",
                        static_cast<double>(start) / 1e6, i,
                        o.committed ? "OK" : "abort",
                        ToMillis(scheduler.Now() - start));
          }
          (*loop)();
        });
  };
  scheduler.At(Millis(1), *loop);

  scheduler.At(Seconds(8), [&] {
    std::printf("--- [8.00s] SINGAPORE GOES DARK (crash + partition) ---\n");
    cluster.CrashDatacenter(4);
  });

  // While Singapore is down, write something it will need to learn later.
  scheduler.At(Seconds(12), [&] {
    cluster.ClientCommit(1, {}, {{"during-outage", "survived"}},
                         [&](const CommitOutcome& o) {
                           std::printf(
                               "[ 12.0+s] Oregon committed a write during the "
                               "outage: %s\n",
                               o.committed ? "OK" : "abort");
                         });
  });

  scheduler.At(Seconds(16), [&] {
    std::printf("--- [16.00s] SINGAPORE RECOVERS ---\n");
    cluster.RecoverDatacenter(4);
  });

  // After recovery, verify Singapore caught up through the log exchange.
  scheduler.At(Seconds(22), [&] {
    auto v = cluster.node(4).store().Read("during-outage");
    std::printf("[ 22.00s] Singapore's replica of 'during-outage': %s\n",
                v.ok() ? v.value().value.c_str() : v.status().ToString().c_str());
  });

  scheduler.RunUntil(Seconds(26));

  const auto counters = cluster.AggregateCounters();
  std::printf(
      "\ntotals: %llu commits, %llu aborts, %llu refusals issued "
      "(grace-time invalidations)\n",
      static_cast<unsigned long long>(counters.commits),
      static_cast<unsigned long long>(counters.total_aborts()),
      static_cast<unsigned long long>(counters.refusals_issued));
  std::printf(
      "\nWith Helios-0 the same outage would block every datacenter's "
      "commits until\nSingapore returned — run the HeliosLivenessTest cases "
      "to see both behaviours.\n");
  return 0;
}
