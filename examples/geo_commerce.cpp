// geo_commerce: an e-commerce-style workload — the class of application the
// paper's introduction motivates — on the five-datacenter Table 2 topology.
//
// Order placement is a serializable read-modify-write transaction (read the
// stock level, decrement it, append an order row); regional dashboards use
// read-only snapshot transactions (Appendix B) that never contend with the
// order stream. The example shows per-region order latency, that oversold
// stock never happens (serializability at work), and that the dashboards
// are cheap and local.
//
//   $ ./build/examples/geo_commerce

#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "common/random.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/helios_cluster.h"
#include "harness/experiment.h"
#include "harness/topology.h"
#include "sim/network.h"
#include "sim/scheduler.h"

using namespace helios;

namespace {

constexpr int kProducts = 40;
constexpr int kInitialStock = 500;

std::string StockKey(int product) {
  return "stock/p" + std::to_string(product);
}

}  // namespace

int main() {
  const harness::Topology topo = harness::Table2Topology();
  sim::Scheduler scheduler;
  sim::Network network(&scheduler, topo.size(), /*seed=*/2026);
  harness::ConfigureNetwork(topo, &network);

  core::HeliosConfig config;
  config.num_datacenters = topo.size();
  config.commit_offsets = harness::PlanCommitOffsets(topo, std::nullopt);
  config.fault_tolerance = 1;  // Survive one regional outage.
  core::HeliosCluster cluster(&scheduler, &network, std::move(config));

  for (int p = 0; p < kProducts; ++p) {
    cluster.LoadInitialAll(StockKey(p), std::to_string(kInitialStock));
  }
  cluster.Start();

  // Per-region storefront: loop placing orders for random products.
  struct RegionStats {
    StatAccumulator latency_ms;
    int orders = 0;
    int rejected = 0;
  };
  auto stats = std::make_shared<std::map<DcId, RegionStats>>();
  auto rng = std::make_shared<Rng>(99);
  auto orders_placed = std::make_shared<uint64_t>(0);

  auto place_order = std::make_shared<std::function<void(DcId)>>();
  *place_order = [&, place_order, stats, rng, orders_placed](DcId region) {
    if (scheduler.Now() > Seconds(20)) return;
    const int product = static_cast<int>(rng->Uniform(kProducts));
    cluster.ClientRead(region, StockKey(product), [&, place_order, stats, rng,
                                                   orders_placed, region,
                                                   product](
                                                      Result<VersionedValue>
                                                          r) {
      if (!r.ok()) return;
      const int stock = std::atoi(r.value().value.c_str());
      if (stock <= 0) {
        // Sold out: no transaction needed.
        (*stats)[region].rejected++;
        scheduler.After(Millis(5), [place_order, region] {
          (*place_order)(region);
        });
        return;
      }
      ReadEntry read{StockKey(product), r.value().ts, r.value().writer};
      const uint64_t order_id = ++*orders_placed;
      const sim::SimTime start = scheduler.Now();
      cluster.ClientCommit(
          region, {read},
          {{StockKey(product), std::to_string(stock - 1)},
           {"order/" + std::to_string(order_id),
            "product=" + std::to_string(product) +
                ";region=" + std::to_string(region)}},
          [&, place_order, stats, region, start](const CommitOutcome& o) {
            RegionStats& s = (*stats)[region];
            if (o.committed) {
              s.orders++;
              s.latency_ms.Add(ToMillis(scheduler.Now() - start));
            } else {
              s.rejected++;  // Lost the race for the last items: retry-able.
            }
            (*place_order)(region);
          });
    });
  };

  for (DcId region = 0; region < topo.size(); ++region) {
    for (int c = 0; c < 3; ++c) {
      scheduler.At(Millis(c + 1), [place_order, region] {
        (*place_order)(region);
      });
    }
  }

  // A dashboard in Ireland polls total remaining stock with read-only
  // snapshot transactions.
  auto dashboard_runs = std::make_shared<int>(0);
  auto dashboard = std::make_shared<std::function<void()>>();
  *dashboard = [&, dashboard, dashboard_runs] {
    if (scheduler.Now() > Seconds(20)) return;
    std::vector<Key> keys;
    for (int p = 0; p < kProducts; ++p) keys.push_back(StockKey(p));
    cluster.ClientReadOnly(
        3, keys, [&, dashboard, dashboard_runs](
                     std::vector<Result<VersionedValue>> rows) {
          long total = 0;
          for (const auto& row : rows) {
            if (row.ok()) total += std::atol(row.value().value.c_str());
          }
          if (++*dashboard_runs % 4 == 1) {
            std::printf("[%5.1fs] dashboard@I: %ld units in stock\n",
                        static_cast<double>(scheduler.Now()) / 1e6, total);
          }
          scheduler.After(Seconds(1), *dashboard);
        });
  };
  scheduler.At(Millis(500), *dashboard);

  scheduler.RunUntil(Seconds(25));

  TablePrinter table(
      {"Region", "orders", "rejected", "avg latency ms", "p99 ms"});
  long total_orders = 0;
  for (DcId region = 0; region < topo.size(); ++region) {
    RegionStats& s = (*stats)[region];
    total_orders += s.orders;
    table.AddRow({topo.names[region], std::to_string(s.orders),
                  std::to_string(s.rejected),
                  TablePrinter::Num(s.latency_ms.mean(), 1),
                  TablePrinter::Num(s.latency_ms.max(), 1)});
  }
  std::printf("\n%s", table.ToString().c_str());

  // Conservation check: serializability means stock is never oversold —
  // initial stock == remaining stock + committed orders, on every replica.
  long remaining = 0;
  for (int p = 0; p < kProducts; ++p) {
    remaining += std::atol(
        cluster.node(0).store().Read(StockKey(p)).value().value.c_str());
  }
  const long expected = static_cast<long>(kProducts) * kInitialStock;
  std::printf("\nconservation: %ld initial = %ld remaining + %ld orders %s\n",
              expected, remaining, total_orders,
              (remaining + total_orders == expected) ? "[OK]" : "[VIOLATED]");
  return remaining + total_orders == expected ? 0 : 1;
}
