// planner: a command-line commit-latency planner for arbitrary topologies.
//
// Feeds an RTT matrix through the paper's planning pipeline: the Lemma 1
// lower bound, the MAO linear program (Problem 1), commit-offset assignment
// (Eq. 5), the analytic master/slave and majority alternatives (Table 1),
// and the Appendix A.2 throughput-optimal assignment.
//
// Usage:
//   planner                          # the paper's Table 2 topology
//   planner N rtt(0,1) rtt(0,2) ... # upper-triangular RTTs in ms, e.g.
//   planner 3 30 20 40              # the Section 3.2 example

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/table.h"
#include "harness/topology.h"
#include "lp/mao.h"

using namespace helios;

int main(int argc, char** argv) {
  harness::Topology topo = harness::Table2Topology();
  if (argc > 1) {
    const int n = std::atoi(argv[1]);
    const int pairs = n * (n - 1) / 2;
    if (n < 2 || argc != 2 + pairs) {
      std::fprintf(stderr,
                   "usage: %s [N rtt(0,1) rtt(0,2) ... rtt(N-2,N-1)]\n"
                   "       (N >= 2 followed by the %d upper-triangular RTTs)\n",
                   argv[0], pairs);
      return 2;
    }
    topo = harness::Topology(n);
    for (int i = 0; i < n; ++i) topo.names[i] = "DC" + std::to_string(i);
    int arg = 2;
    for (int a = 0; a < n; ++a) {
      for (int b = a + 1; b < n; ++b) {
        topo.Set(a, b, std::atof(argv[arg++]), 0.0);
      }
    }
  }
  const lp::RttMatrix& rtt = topo.rtt_ms;
  const int n = topo.size();

  std::printf("Topology (%d datacenters):\n", n);
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      std::printf("  RTT(%s, %s) = %.0fms\n", topo.names[a].c_str(),
                  topo.names[b].c_str(), rtt.Get(a, b));
    }
  }

  auto mao = lp::SolveMao(rtt);
  if (!mao.ok()) {
    std::fprintf(stderr, "MAO solve failed: %s\n",
                 mao.status().ToString().c_str());
    return 1;
  }

  std::vector<std::string> header = {"Strategy"};
  for (const auto& name : topo.names) header.push_back(name);
  header.push_back("Avg");
  TablePrinter table(header);
  auto add = [&](const std::string& name, const std::vector<double>& l) {
    std::vector<std::string> row = {name};
    for (double v : l) row.push_back(TablePrinter::Num(v, 1));
    row.push_back(TablePrinter::Num(lp::AverageLatency(l), 2));
    table.AddRow(std::move(row));
  };
  for (int master = 0; master < n; ++master) {
    add("Master/Slave (" + topo.names[master] + ")",
        lp::MasterSlaveLatencies(rtt, master));
  }
  add("Majority", lp::MajorityLatencies(rtt));
  table.AddSeparator();
  add("Optimal (MAO)", mao.value());
  auto tput = lp::OptimizeThroughput(rtt, /*overhead_ms=*/1.0);
  if (tput.ok()) add("Throughput-optimal", tput.value().latencies);

  std::printf("\nAchievable commit latencies (ms):\n%s",
              table.ToString().c_str());

  // Commit offsets Helios would run with.
  const auto offsets = lp::CommitOffsetsFromLatencies(rtt, mao.value());
  const Status rule1 = lp::ValidateOffsets(offsets);
  std::printf("\nCommit offsets co[a][b] = L_a - RTT(a,b)/2 (ms), Rule 1 %s:\n",
              rule1.ok() ? "satisfied" : "VIOLATED");
  std::vector<std::string> oheader = {"from\\to"};
  for (const auto& name : topo.names) oheader.push_back(name);
  TablePrinter otable(oheader);
  for (int a = 0; a < n; ++a) {
    std::vector<std::string> row = {topo.names[a]};
    for (int b = 0; b < n; ++b) {
      row.push_back(a == b ? "-" : TablePrinter::Num(offsets[a][b], 1));
    }
    otable.AddRow(std::move(row));
  }
  std::printf("%s", otable.ToString().c_str());

  if (tput.ok()) {
    std::printf(
        "\nThroughput objective (1ms execution overhead): MAO rate %.1f "
        "txn/s per client,\nthroughput-optimal rate %.1f txn/s per client.\n",
        lp::ThroughputRate(mao.value(), 1.0), tput.value().rate_per_client);
  }
  return 0;
}
