// live_demo: three REAL Helios datacenters in one process — separate
// event-loop threads, talking over actual localhost TCP sockets with the
// CRC-framed wire format, with a 40ms-RTT WAN emulated by a 20ms inbound
// delay at every node.
//
// This is the deployment shape of a real install (one process per region);
// everything the simulator benchmarks runs unchanged here.
//
//   $ ./build/examples/live_demo

#include <chrono>
#include <cstdio>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "harness/experiment.h"
#include "harness/topology.h"
#include "transport/live_datacenter.h"

using namespace helios;
using namespace std::chrono_literals;

int main() {
  const int n = 3;
  core::HeliosConfig cfg;
  cfg.num_datacenters = n;
  cfg.log_interval = Millis(5);
  // Plan MAO offsets for a 40ms-RTT triangle (inbound delay 20ms each way).
  cfg.commit_offsets =
      harness::PlanCommitOffsets(harness::UniformTopology(n, 40.0),
                                 std::nullopt);

  std::printf("starting %d live datacenters on localhost...\n", n);
  std::vector<std::unique_ptr<transport::LiveDatacenter>> dcs;
  for (DcId dc = 0; dc < n; ++dc) {
    dcs.push_back(std::make_unique<transport::LiveDatacenter>(
        dc, cfg, /*inbound_delay=*/Millis(20)));
    const Status s = dcs.back()->Listen(0);
    if (!s.ok()) {
      std::fprintf(stderr, "listen failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("  DC%d listening on 127.0.0.1:%u\n", dc, dcs.back()->port());
  }
  std::vector<uint16_t> ports;
  for (auto& dc : dcs) ports.push_back(dc->port());
  for (auto& dc : dcs) {
    const Status s = dc->ConnectPeers(ports);
    if (!s.ok()) {
      std::fprintf(stderr, "connect failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  for (auto& dc : dcs) dc->LoadInitial("balance", "100");
  for (auto& dc : dcs) dc->Start();
  std::printf("cluster up; emulated one-way latency 20ms\n\n");

  // A few real transactions, timed with the wall clock.
  for (int i = 0; i < 5; ++i) {
    const DcId home = i % n;
    auto read = dcs[home]->ReadSync("balance");
    if (!read.ok()) {
      std::fprintf(stderr, "read failed\n");
      return 1;
    }
    const int balance = std::atoi(read.value().value.c_str());
    const auto t0 = std::chrono::steady_clock::now();
    const CommitOutcome o = dcs[home]->CommitSync(
        {{"balance", read.value().ts, read.value().writer}},
        {{"balance", std::to_string(balance + 10)}});
    const double ms = std::chrono::duration_cast<std::chrono::microseconds>(
                          std::chrono::steady_clock::now() - t0)
                          .count() /
                      1000.0;
    std::printf("txn %d at DC%d: %s in %6.1fms (balance %d -> %d)\n", i,
                home, o.committed ? "COMMITTED" : "aborted ", ms, balance,
                balance + 10);
    std::this_thread::sleep_for(150ms);  // Let the write replicate.
  }

  // Show convergence.
  std::this_thread::sleep_for(300ms);
  std::printf("\nfinal balance at every datacenter:");
  for (auto& dc : dcs) {
    auto r = dc->ReadSync("balance");
    std::printf(" %s", r.ok() ? r.value().value.c_str() : "?");
  }
  std::printf("\n");

  // Conflicting concurrent writes from two regions: at most one commits.
  std::printf("\nfiring conflicting concurrent commits from DC0 and DC1...\n");
  std::promise<CommitOutcome> pa;
  std::promise<CommitOutcome> pb;
  dcs[0]->Commit({}, {{"conflict", "from-0"}},
                 [&](const CommitOutcome& o) { pa.set_value(o); });
  dcs[1]->Commit({}, {{"conflict", "from-1"}},
                 [&](const CommitOutcome& o) { pb.set_value(o); });
  const CommitOutcome oa = pa.get_future().get();
  const CommitOutcome ob = pb.get_future().get();
  std::printf("  DC0: %s, DC1: %s -> %s\n",
              oa.committed ? "committed" : "aborted",
              ob.committed ? "committed" : "aborted",
              (oa.committed + ob.committed <= 1) ? "serializable [OK]"
                                                 : "DOUBLE COMMIT [BUG]");

  for (auto& dc : dcs) dc->Stop();
  std::printf("\nshut down cleanly.\n");
  return (oa.committed + ob.committed <= 1) ? 0 : 1;
}
