// bank_audit: serializable money transfers with a concurrent snapshot
// auditor.
//
// Accounts live at five datacenters; clients in every region transfer
// money between random accounts with read-modify-write transactions. An
// auditor in another region continuously runs read-only snapshot
// transactions (Appendix B) over ALL accounts and asserts the invariant
// that money is conserved — which only holds if (a) transfers are atomic
// and (b) the snapshot is consistent. A single torn transfer or a
// non-atomic snapshot would show up as a wrong total.
//
//   $ ./build/examples/bank_audit

#include <cstdio>
#include <functional>
#include <memory>
#include <string>

#include "common/random.h"
#include "core/helios_cluster.h"
#include "harness/experiment.h"
#include "harness/topology.h"
#include "sim/network.h"
#include "sim/scheduler.h"

using namespace helios;

namespace {

constexpr int kAccounts = 100;
constexpr long kInitialBalance = 1000;

std::string Account(int i) { return "acct/" + std::to_string(i); }

}  // namespace

int main() {
  const harness::Topology topo = harness::Table2Topology();
  sim::Scheduler scheduler;
  sim::Network network(&scheduler, topo.size(), /*seed=*/4242);
  harness::ConfigureNetwork(topo, &network);

  core::HeliosConfig config;
  config.num_datacenters = topo.size();
  config.commit_offsets = harness::PlanCommitOffsets(topo, std::nullopt);
  core::HeliosCluster cluster(&scheduler, &network, std::move(config));
  for (int i = 0; i < kAccounts; ++i) {
    cluster.LoadInitialAll(Account(i), std::to_string(kInitialBalance));
  }
  cluster.Start();

  auto rng = std::make_shared<Rng>(17);
  auto transfers_done = std::make_shared<int>(0);
  auto transfers_aborted = std::make_shared<int>(0);

  // Transfer loop: read two accounts, move a random amount between them.
  auto transfer = std::make_shared<std::function<void(DcId)>>();
  *transfer = [&, rng, transfer, transfers_done, transfers_aborted](DcId dc) {
    if (scheduler.Now() > Seconds(15)) return;
    const int from = static_cast<int>(rng->Uniform(kAccounts));
    int to = static_cast<int>(rng->Uniform(kAccounts));
    if (to == from) to = (to + 1) % kAccounts;
    cluster.ClientRead(dc, Account(from), [&, rng, transfer, transfers_done,
                                           transfers_aborted, dc, from,
                                           to](Result<VersionedValue> rf) {
      if (!rf.ok()) return;
      cluster.ClientRead(dc, Account(to), [&, rng, transfer, transfers_done,
                                           transfers_aborted, dc, from, to,
                                           rf](Result<VersionedValue> rt) {
        if (!rt.ok()) return;
        const long bal_from = std::atol(rf.value().value.c_str());
        const long bal_to = std::atol(rt.value().value.c_str());
        const long amount =
            std::min<long>(bal_from, 1 + static_cast<long>(rng->Uniform(50)));
        std::vector<ReadEntry> reads = {
            {Account(from), rf.value().ts, rf.value().writer},
            {Account(to), rt.value().ts, rt.value().writer}};
        std::vector<WriteEntry> writes = {
            {Account(from), std::to_string(bal_from - amount)},
            {Account(to), std::to_string(bal_to + amount)}};
        cluster.ClientCommit(dc, std::move(reads), std::move(writes),
                             [&, transfer, transfers_done, transfers_aborted,
                              dc](const CommitOutcome& o) {
                               ++(o.committed ? *transfers_done
                                              : *transfers_aborted);
                               (*transfer)(dc);
                             });
      });
    });
  };
  for (DcId dc = 0; dc < topo.size(); ++dc) {
    for (int c = 0; c < 2; ++c) {
      scheduler.At(Millis(1 + c), [transfer, dc] { (*transfer)(dc); });
    }
  }

  // Auditor at Ireland: snapshot-read every account, check conservation.
  auto audits = std::make_shared<int>(0);
  auto violations = std::make_shared<int>(0);
  auto audit = std::make_shared<std::function<void()>>();
  *audit = [&, audit, audits, violations] {
    if (scheduler.Now() > Seconds(16)) return;
    std::vector<Key> keys;
    for (int i = 0; i < kAccounts; ++i) keys.push_back(Account(i));
    cluster.ClientReadOnly(
        3, keys,
        [&, audit, audits, violations](std::vector<Result<VersionedValue>> rows) {
          long total = 0;
          for (const auto& row : rows) {
            if (row.ok()) total += std::atol(row.value().value.c_str());
          }
          ++*audits;
          const long expected = static_cast<long>(kAccounts) * kInitialBalance;
          if (total != expected) {
            ++*violations;
            std::printf("[%5.2fs] AUDIT VIOLATION: total %ld != %ld\n",
                        static_cast<double>(scheduler.Now()) / 1e6, total,
                        expected);
          } else if (*audits % 20 == 1) {
            std::printf("[%5.2fs] audit #%d OK: total = %ld\n",
                        static_cast<double>(scheduler.Now()) / 1e6, *audits,
                        total);
          }
          scheduler.After(Millis(200), *audit);
        });
  };
  scheduler.At(Millis(300), *audit);

  scheduler.RunUntil(Seconds(18));

  std::printf(
      "\n%d transfers committed, %d aborted (retried), %d audits, "
      "%d violations\n",
      *transfers_done, *transfers_aborted, *audits, *violations);
  if (*violations == 0 && *audits > 10 && *transfers_done > 100) {
    std::printf(
        "money was conserved under every concurrent snapshot — transfers "
        "are atomic\nand read-only transactions see consistent states "
        "(Appendix B).\n");
    return 0;
  }
  std::printf("UNEXPECTED RESULT\n");
  return 1;
}
