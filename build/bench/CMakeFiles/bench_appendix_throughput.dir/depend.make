# Empty dependencies file for bench_appendix_throughput.
# This may be replaced when dependencies are built.
