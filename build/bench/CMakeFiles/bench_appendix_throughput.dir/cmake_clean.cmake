file(REMOVE_RECURSE
  "CMakeFiles/bench_appendix_throughput.dir/bench_appendix_throughput.cc.o"
  "CMakeFiles/bench_appendix_throughput.dir/bench_appendix_throughput.cc.o.d"
  "bench_appendix_throughput"
  "bench_appendix_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_appendix_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
