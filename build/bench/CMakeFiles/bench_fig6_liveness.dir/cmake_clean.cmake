file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_liveness.dir/bench_fig6_liveness.cc.o"
  "CMakeFiles/bench_fig6_liveness.dir/bench_fig6_liveness.cc.o.d"
  "bench_fig6_liveness"
  "bench_fig6_liveness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_liveness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
