file(REMOVE_RECURSE
  "CMakeFiles/bench_appendix_analysis.dir/bench_appendix_analysis.cc.o"
  "CMakeFiles/bench_appendix_analysis.dir/bench_appendix_analysis.cc.o.d"
  "bench_appendix_analysis"
  "bench_appendix_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_appendix_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
