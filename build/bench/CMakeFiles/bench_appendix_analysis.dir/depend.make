# Empty dependencies file for bench_appendix_analysis.
# This may be replaced when dependencies are built.
