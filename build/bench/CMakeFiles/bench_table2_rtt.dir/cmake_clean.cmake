file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_rtt.dir/bench_table2_rtt.cc.o"
  "CMakeFiles/bench_table2_rtt.dir/bench_table2_rtt.cc.o.d"
  "bench_table2_rtt"
  "bench_table2_rtt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_rtt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
