file(REMOVE_RECURSE
  "CMakeFiles/helios_sim.dir/network.cc.o"
  "CMakeFiles/helios_sim.dir/network.cc.o.d"
  "CMakeFiles/helios_sim.dir/scheduler.cc.o"
  "CMakeFiles/helios_sim.dir/scheduler.cc.o.d"
  "libhelios_sim.a"
  "libhelios_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/helios_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
