file(REMOVE_RECURSE
  "CMakeFiles/helios_core.dir/config_validation.cc.o"
  "CMakeFiles/helios_core.dir/config_validation.cc.o.d"
  "CMakeFiles/helios_core.dir/helios_cluster.cc.o"
  "CMakeFiles/helios_core.dir/helios_cluster.cc.o.d"
  "CMakeFiles/helios_core.dir/helios_node.cc.o"
  "CMakeFiles/helios_core.dir/helios_node.cc.o.d"
  "CMakeFiles/helios_core.dir/history.cc.o"
  "CMakeFiles/helios_core.dir/history.cc.o.d"
  "CMakeFiles/helios_core.dir/rtt_estimator.cc.o"
  "CMakeFiles/helios_core.dir/rtt_estimator.cc.o.d"
  "libhelios_core.a"
  "libhelios_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/helios_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
