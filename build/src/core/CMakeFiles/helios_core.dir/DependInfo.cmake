
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/config_validation.cc" "src/core/CMakeFiles/helios_core.dir/config_validation.cc.o" "gcc" "src/core/CMakeFiles/helios_core.dir/config_validation.cc.o.d"
  "/root/repo/src/core/helios_cluster.cc" "src/core/CMakeFiles/helios_core.dir/helios_cluster.cc.o" "gcc" "src/core/CMakeFiles/helios_core.dir/helios_cluster.cc.o.d"
  "/root/repo/src/core/helios_node.cc" "src/core/CMakeFiles/helios_core.dir/helios_node.cc.o" "gcc" "src/core/CMakeFiles/helios_core.dir/helios_node.cc.o.d"
  "/root/repo/src/core/history.cc" "src/core/CMakeFiles/helios_core.dir/history.cc.o" "gcc" "src/core/CMakeFiles/helios_core.dir/history.cc.o.d"
  "/root/repo/src/core/rtt_estimator.cc" "src/core/CMakeFiles/helios_core.dir/rtt_estimator.cc.o" "gcc" "src/core/CMakeFiles/helios_core.dir/rtt_estimator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/helios_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/helios_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/helios_store.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/helios_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/rdict/CMakeFiles/helios_rdict.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/helios_lp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
