file(REMOVE_RECURSE
  "libhelios_paxos.a"
)
