file(REMOVE_RECURSE
  "CMakeFiles/helios_paxos.dir/paxos.cc.o"
  "CMakeFiles/helios_paxos.dir/paxos.cc.o.d"
  "libhelios_paxos.a"
  "libhelios_paxos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/helios_paxos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
