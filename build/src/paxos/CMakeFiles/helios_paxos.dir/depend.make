# Empty dependencies file for helios_paxos.
# This may be replaced when dependencies are built.
