file(REMOVE_RECURSE
  "libhelios_baselines.a"
)
