# Empty dependencies file for helios_baselines.
# This may be replaced when dependencies are built.
