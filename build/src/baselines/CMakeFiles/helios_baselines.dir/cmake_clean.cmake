file(REMOVE_RECURSE
  "CMakeFiles/helios_baselines.dir/replicated_commit.cc.o"
  "CMakeFiles/helios_baselines.dir/replicated_commit.cc.o.d"
  "CMakeFiles/helios_baselines.dir/two_pc_paxos.cc.o"
  "CMakeFiles/helios_baselines.dir/two_pc_paxos.cc.o.d"
  "libhelios_baselines.a"
  "libhelios_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/helios_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
