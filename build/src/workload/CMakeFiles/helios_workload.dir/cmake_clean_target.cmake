file(REMOVE_RECURSE
  "libhelios_workload.a"
)
