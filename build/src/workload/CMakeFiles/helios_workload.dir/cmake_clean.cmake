file(REMOVE_RECURSE
  "CMakeFiles/helios_workload.dir/client.cc.o"
  "CMakeFiles/helios_workload.dir/client.cc.o.d"
  "CMakeFiles/helios_workload.dir/tycsb.cc.o"
  "CMakeFiles/helios_workload.dir/tycsb.cc.o.d"
  "libhelios_workload.a"
  "libhelios_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/helios_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
