
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/client.cc" "src/workload/CMakeFiles/helios_workload.dir/client.cc.o" "gcc" "src/workload/CMakeFiles/helios_workload.dir/client.cc.o.d"
  "/root/repo/src/workload/tycsb.cc" "src/workload/CMakeFiles/helios_workload.dir/tycsb.cc.o" "gcc" "src/workload/CMakeFiles/helios_workload.dir/tycsb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/helios_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/helios_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/helios_store.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/helios_txn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
