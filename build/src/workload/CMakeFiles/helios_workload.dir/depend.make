# Empty dependencies file for helios_workload.
# This may be replaced when dependencies are built.
