# Empty compiler generated dependencies file for helios_txn.
# This may be replaced when dependencies are built.
