file(REMOVE_RECURSE
  "libhelios_txn.a"
)
