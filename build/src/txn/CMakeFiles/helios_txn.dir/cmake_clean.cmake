file(REMOVE_RECURSE
  "CMakeFiles/helios_txn.dir/pool.cc.o"
  "CMakeFiles/helios_txn.dir/pool.cc.o.d"
  "CMakeFiles/helios_txn.dir/transaction.cc.o"
  "CMakeFiles/helios_txn.dir/transaction.cc.o.d"
  "libhelios_txn.a"
  "libhelios_txn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/helios_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
