# Empty dependencies file for helios_wire.
# This may be replaced when dependencies are built.
