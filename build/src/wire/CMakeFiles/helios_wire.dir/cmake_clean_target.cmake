file(REMOVE_RECURSE
  "libhelios_wire.a"
)
