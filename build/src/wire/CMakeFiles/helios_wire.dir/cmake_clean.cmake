file(REMOVE_RECURSE
  "CMakeFiles/helios_wire.dir/codec.cc.o"
  "CMakeFiles/helios_wire.dir/codec.cc.o.d"
  "CMakeFiles/helios_wire.dir/serialization.cc.o"
  "CMakeFiles/helios_wire.dir/serialization.cc.o.d"
  "libhelios_wire.a"
  "libhelios_wire.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/helios_wire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
