# Empty compiler generated dependencies file for helios_common.
# This may be replaced when dependencies are built.
