file(REMOVE_RECURSE
  "CMakeFiles/helios_common.dir/flags.cc.o"
  "CMakeFiles/helios_common.dir/flags.cc.o.d"
  "CMakeFiles/helios_common.dir/random.cc.o"
  "CMakeFiles/helios_common.dir/random.cc.o.d"
  "CMakeFiles/helios_common.dir/stats.cc.o"
  "CMakeFiles/helios_common.dir/stats.cc.o.d"
  "CMakeFiles/helios_common.dir/status.cc.o"
  "CMakeFiles/helios_common.dir/status.cc.o.d"
  "CMakeFiles/helios_common.dir/table.cc.o"
  "CMakeFiles/helios_common.dir/table.cc.o.d"
  "CMakeFiles/helios_common.dir/types.cc.o"
  "CMakeFiles/helios_common.dir/types.cc.o.d"
  "libhelios_common.a"
  "libhelios_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/helios_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
