file(REMOVE_RECURSE
  "CMakeFiles/helios_wal.dir/wal.cc.o"
  "CMakeFiles/helios_wal.dir/wal.cc.o.d"
  "libhelios_wal.a"
  "libhelios_wal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/helios_wal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
