# Empty dependencies file for helios_wal.
# This may be replaced when dependencies are built.
