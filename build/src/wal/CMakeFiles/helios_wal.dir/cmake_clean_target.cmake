file(REMOVE_RECURSE
  "libhelios_wal.a"
)
