# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("sim")
subdirs("store")
subdirs("txn")
subdirs("rdict")
subdirs("lp")
subdirs("core")
subdirs("wire")
subdirs("transport")
subdirs("wal")
subdirs("paxos")
subdirs("baselines")
subdirs("workload")
subdirs("harness")
