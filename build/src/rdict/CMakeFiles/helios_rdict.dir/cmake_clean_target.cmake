file(REMOVE_RECURSE
  "libhelios_rdict.a"
)
