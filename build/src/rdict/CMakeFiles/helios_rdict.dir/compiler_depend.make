# Empty compiler generated dependencies file for helios_rdict.
# This may be replaced when dependencies are built.
