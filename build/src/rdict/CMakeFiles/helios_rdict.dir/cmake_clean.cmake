file(REMOVE_RECURSE
  "CMakeFiles/helios_rdict.dir/replicated_log.cc.o"
  "CMakeFiles/helios_rdict.dir/replicated_log.cc.o.d"
  "CMakeFiles/helios_rdict.dir/timetable.cc.o"
  "CMakeFiles/helios_rdict.dir/timetable.cc.o.d"
  "libhelios_rdict.a"
  "libhelios_rdict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/helios_rdict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
