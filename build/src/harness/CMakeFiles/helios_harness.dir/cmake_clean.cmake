file(REMOVE_RECURSE
  "CMakeFiles/helios_harness.dir/experiment.cc.o"
  "CMakeFiles/helios_harness.dir/experiment.cc.o.d"
  "CMakeFiles/helios_harness.dir/topology.cc.o"
  "CMakeFiles/helios_harness.dir/topology.cc.o.d"
  "libhelios_harness.a"
  "libhelios_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/helios_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
