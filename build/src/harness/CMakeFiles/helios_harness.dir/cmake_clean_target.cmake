file(REMOVE_RECURSE
  "libhelios_harness.a"
)
