# Empty compiler generated dependencies file for helios_harness.
# This may be replaced when dependencies are built.
