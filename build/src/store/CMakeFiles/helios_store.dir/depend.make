# Empty dependencies file for helios_store.
# This may be replaced when dependencies are built.
