file(REMOVE_RECURSE
  "CMakeFiles/helios_store.dir/lock_table.cc.o"
  "CMakeFiles/helios_store.dir/lock_table.cc.o.d"
  "CMakeFiles/helios_store.dir/mv_store.cc.o"
  "CMakeFiles/helios_store.dir/mv_store.cc.o.d"
  "libhelios_store.a"
  "libhelios_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/helios_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
