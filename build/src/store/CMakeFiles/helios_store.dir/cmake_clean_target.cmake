file(REMOVE_RECURSE
  "libhelios_store.a"
)
