# Empty compiler generated dependencies file for helios_transport.
# This may be replaced when dependencies are built.
