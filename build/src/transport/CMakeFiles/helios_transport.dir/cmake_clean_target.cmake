file(REMOVE_RECURSE
  "libhelios_transport.a"
)
