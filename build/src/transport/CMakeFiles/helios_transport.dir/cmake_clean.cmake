file(REMOVE_RECURSE
  "CMakeFiles/helios_transport.dir/live_datacenter.cc.o"
  "CMakeFiles/helios_transport.dir/live_datacenter.cc.o.d"
  "CMakeFiles/helios_transport.dir/realtime_loop.cc.o"
  "CMakeFiles/helios_transport.dir/realtime_loop.cc.o.d"
  "CMakeFiles/helios_transport.dir/tcp_transport.cc.o"
  "CMakeFiles/helios_transport.dir/tcp_transport.cc.o.d"
  "libhelios_transport.a"
  "libhelios_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/helios_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
