file(REMOVE_RECURSE
  "CMakeFiles/helios_lp.dir/latency_model.cc.o"
  "CMakeFiles/helios_lp.dir/latency_model.cc.o.d"
  "CMakeFiles/helios_lp.dir/mao.cc.o"
  "CMakeFiles/helios_lp.dir/mao.cc.o.d"
  "CMakeFiles/helios_lp.dir/simplex.cc.o"
  "CMakeFiles/helios_lp.dir/simplex.cc.o.d"
  "libhelios_lp.a"
  "libhelios_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/helios_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
