# Empty compiler generated dependencies file for helios_lp.
# This may be replaced when dependencies are built.
