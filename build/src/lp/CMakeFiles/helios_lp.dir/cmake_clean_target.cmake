file(REMOVE_RECURSE
  "libhelios_lp.a"
)
