# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/rdict_test[1]_include.cmake")
include("/root/repo/build/tests/helios_test[1]_include.cmake")
include("/root/repo/build/tests/store_test[1]_include.cmake")
include("/root/repo/build/tests/txn_test[1]_include.cmake")
include("/root/repo/build/tests/lp_test[1]_include.cmake")
include("/root/repo/build/tests/paxos_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/history_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/harness_test[1]_include.cmake")
include("/root/repo/build/tests/wire_test[1]_include.cmake")
include("/root/repo/build/tests/latency_model_test[1]_include.cmake")
include("/root/repo/build/tests/flags_test[1]_include.cmake")
include("/root/repo/build/tests/lp_property_test[1]_include.cmake")
include("/root/repo/build/tests/helios_sweep_test[1]_include.cmake")
include("/root/repo/build/tests/partition_test[1]_include.cmake")
include("/root/repo/build/tests/rdict_property_test[1]_include.cmake")
include("/root/repo/build/tests/transport_test[1]_include.cmake")
include("/root/repo/build/tests/wal_test[1]_include.cmake")
include("/root/repo/build/tests/rtt_estimator_test[1]_include.cmake")
include("/root/repo/build/tests/failure_injection_test[1]_include.cmake")
include("/root/repo/build/tests/config_validation_test[1]_include.cmake")
