file(REMOVE_RECURSE
  "CMakeFiles/helios_sweep_test.dir/helios_sweep_test.cc.o"
  "CMakeFiles/helios_sweep_test.dir/helios_sweep_test.cc.o.d"
  "helios_sweep_test"
  "helios_sweep_test.pdb"
  "helios_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/helios_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
