# Empty dependencies file for helios_sweep_test.
# This may be replaced when dependencies are built.
