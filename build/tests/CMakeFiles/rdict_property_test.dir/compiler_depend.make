# Empty compiler generated dependencies file for rdict_property_test.
# This may be replaced when dependencies are built.
