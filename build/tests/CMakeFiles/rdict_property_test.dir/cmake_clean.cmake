file(REMOVE_RECURSE
  "CMakeFiles/rdict_property_test.dir/rdict_property_test.cc.o"
  "CMakeFiles/rdict_property_test.dir/rdict_property_test.cc.o.d"
  "rdict_property_test"
  "rdict_property_test.pdb"
  "rdict_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdict_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
