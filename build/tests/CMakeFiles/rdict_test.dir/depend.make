# Empty dependencies file for rdict_test.
# This may be replaced when dependencies are built.
