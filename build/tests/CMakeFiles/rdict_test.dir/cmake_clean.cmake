file(REMOVE_RECURSE
  "CMakeFiles/rdict_test.dir/rdict_test.cc.o"
  "CMakeFiles/rdict_test.dir/rdict_test.cc.o.d"
  "rdict_test"
  "rdict_test.pdb"
  "rdict_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdict_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
