file(REMOVE_RECURSE
  "CMakeFiles/config_validation_test.dir/config_validation_test.cc.o"
  "CMakeFiles/config_validation_test.dir/config_validation_test.cc.o.d"
  "config_validation_test"
  "config_validation_test.pdb"
  "config_validation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/config_validation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
