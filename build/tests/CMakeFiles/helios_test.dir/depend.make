# Empty dependencies file for helios_test.
# This may be replaced when dependencies are built.
