file(REMOVE_RECURSE
  "CMakeFiles/helios_test.dir/helios_test.cc.o"
  "CMakeFiles/helios_test.dir/helios_test.cc.o.d"
  "helios_test"
  "helios_test.pdb"
  "helios_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/helios_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
