file(REMOVE_RECURSE
  "CMakeFiles/geo_commerce.dir/geo_commerce.cpp.o"
  "CMakeFiles/geo_commerce.dir/geo_commerce.cpp.o.d"
  "geo_commerce"
  "geo_commerce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geo_commerce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
