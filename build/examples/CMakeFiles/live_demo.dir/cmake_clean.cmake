file(REMOVE_RECURSE
  "CMakeFiles/live_demo.dir/live_demo.cpp.o"
  "CMakeFiles/live_demo.dir/live_demo.cpp.o.d"
  "live_demo"
  "live_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/live_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
