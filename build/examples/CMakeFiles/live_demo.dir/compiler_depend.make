# Empty compiler generated dependencies file for live_demo.
# This may be replaced when dependencies are built.
