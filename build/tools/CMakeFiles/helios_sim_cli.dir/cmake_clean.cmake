file(REMOVE_RECURSE
  "CMakeFiles/helios_sim_cli.dir/helios_sim.cc.o"
  "CMakeFiles/helios_sim_cli.dir/helios_sim.cc.o.d"
  "helios_sim"
  "helios_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/helios_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
