# Empty dependencies file for helios_sim_cli.
# This may be replaced when dependencies are built.
