// bench_perf: the machine-readable performance baseline (docs/PERFORMANCE.md).
//
// Measures the hot paths the wire/codec redesign targets and emits one
// PerfReport JSON document (schema helios-bench-perf-v1, committed as
// BENCH_*.json at the repo root) that tools/bench_compare gates CI on:
//
//   sim.events.<protocol>  full-simulator throughput: simulated events and
//                          committed transactions per wall-clock second
//   sim.shard.scaling      disjoint-key workload, 1 shard vs 2 range-aligned
//                          shards, in simulated txns/s; gates the sharding
//                          capacity win (docs/SHARDING.md)
//   wire.encode.legacy     allocate-per-call envelope framing (the old
//                          Encoder/FrameEnvelope API, kept as the "before"
//                          leg of the redesign)
//   wire.encode.reuse      wire::Framer into caller-owned reused buffers
//                          (the "after" leg; speedup_vs_legacy is the
//                          before/after ratio on identical bytes)
//   wire.decode            UnframeEnvelope on the same corpus
//   wal.append             WalWriter record framing + buffered write
//   live.tcp               TcpTransport loopback round trips: ops/sec and
//                          p50/p99 latency
//
// Flags follow the shared harness::cli spellings; --json_out defaults to
// BENCH_1.json. HELIOS_BENCH_SCALE scales the simulator window like every
// other bench, so CI can run a short-budget pass.

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/flags.h"
#include "core/envelope.h"
#include "harness/cli.h"
#include "harness/experiment_spec.h"
#include "harness/perf_report.h"
#include "transport/tcp_transport.h"
#include "wal/wal.h"
#include "wire/serialization.h"

using namespace helios;
namespace hns = helios::harness;
namespace cli = helios::harness::cli;

namespace {

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// A gossip envelope shaped like steady-state traffic: a warm timetable,
/// a batch of preparing/finished records with small read/write sets, a
/// ping and an RTT row. One corpus shared by every wire leg so legacy,
/// reuse, and decode all touch identical bytes.
core::Envelope MakeCorpusEnvelope(int n, int records, uint64_t salt) {
  core::Envelope env(n);
  env.log.from = static_cast<DcId>(salt % static_cast<uint64_t>(n));
  for (DcId row = 0; row < n; ++row) {
    for (DcId col = 0; col < n; ++col) {
      env.log.table.Set(row, col,
                        static_cast<Timestamp>(1000000 + salt * 131 +
                                               static_cast<uint64_t>(row) * 17 +
                                               static_cast<uint64_t>(col)));
    }
  }
  for (int i = 0; i < records; ++i) {
    rdict::LogRecord rec;
    const uint64_t seq = salt * 1000 + static_cast<uint64_t>(i);
    rec.origin = static_cast<DcId>(i % n);
    rec.ts = static_cast<Timestamp>(2000000 + seq);
    TxnId id;
    id.origin = rec.origin;
    id.seq = seq;
    std::vector<ReadEntry> reads;
    std::vector<WriteEntry> writes;
    for (int k = 0; k < 4; ++k) {
      ReadEntry r;
      r.key = "user" + std::to_string((seq * 7 + static_cast<uint64_t>(k)) % 50000);
      r.version_ts = static_cast<Timestamp>(1500000 + seq - static_cast<uint64_t>(k));
      r.version_writer = TxnId{static_cast<DcId>(k % n), seq / 2};
      reads.push_back(std::move(r));
      writes.push_back(WriteEntry{
          "user" + std::to_string((seq * 11 + static_cast<uint64_t>(k)) % 50000),
          std::string(16, static_cast<char>('a' + k))});
    }
    rec.body = MakeTxnBody(id, std::move(reads), std::move(writes));
    if (i % 2 == 0) {
      rec.type = rdict::RecordType::kPreparing;
    } else {
      rec.type = rdict::RecordType::kFinished;
      rec.committed = true;
      rec.version_ts = rec.ts + 5;
    }
    env.log.records.push_back(std::move(rec));
  }
  std::sort(env.log.records.begin(), env.log.records.end(),
            [](const rdict::LogRecord& a, const rdict::LogRecord& b) {
              return rdict::RecordOrder()(a, b);
            });
  env.refusals.push_back(
      core::Refusal{1, TxnId{1, salt}, static_cast<Timestamp>(2000000)});
  env.ping_id = static_cast<uint32_t>(salt + 1);
  env.pong_for = static_cast<uint32_t>(salt);
  env.pong_hold_us = 250;
  env.rtt_row_us.assign(static_cast<size_t>(n), 80000);
  return env;
}

void BenchSim(const std::vector<hns::Protocol>& protocols,
              const std::vector<uint64_t>& seeds, int clients,
              int measure_s, int jobs, hns::PerfReport* report) {
  for (hns::Protocol p : protocols) {
    std::vector<hns::ExperimentSpec> specs;
    for (uint64_t seed : seeds) {
      specs.push_back(hns::ExperimentSpec()
                          .WithProtocol(p)
                          .WithClients(clients)
                          .WithWarmup(bench::Scaled(Seconds(1)))
                          .WithMeasure(bench::Scaled(Seconds(measure_s)))
                          .WithSeed(seed)
                          .WithLabel(std::string(hns::ProtocolToken(p)) +
                                     " seed " + std::to_string(seed)));
    }
    hns::SweepOptions options;
    options.jobs = jobs;
    hns::SweepRunner runner(options);
    const auto t0 = std::chrono::steady_clock::now();
    const hns::SweepResult sweep = runner.Run(specs);
    const double wall = SecondsSince(t0);
    if (!sweep.status().ok()) {
      std::fprintf(stderr, "sim bench failed: %s\n",
                   sweep.status().ToString().c_str());
      std::exit(cli::kExitFailure);
    }
    uint64_t events = 0;
    uint64_t committed = 0;
    for (const hns::SweepJobResult& job : sweep.jobs) {
      events += job.result.events_processed;
      for (const auto& dc : job.result.per_dc) committed += dc.committed;
    }
    hns::PerfEntry& entry =
        report->Add(std::string("sim.events.") + hns::ProtocolToken(p));
    entry.Set("events_per_sec", static_cast<double>(events) / wall);
    entry.Set("txns_per_sec", static_cast<double>(committed) / wall);
    entry.Set("wall_s", wall);
    std::fprintf(stderr,
                 "sim.events.%s: %.0f events/s, %.0f committed txns/s "
                 "(%.2fs wall, %d run%s)\n",
                 hns::ProtocolToken(p), static_cast<double>(events) / wall,
                 static_cast<double>(committed) / wall, wall,
                 static_cast<int>(specs.size()),
                 specs.size() == 1 ? "" : "s");
  }
}

/// Shard-scaling leg: the same disjoint-key workload (key_partitions=2,
/// so every transaction stays inside one contiguous half of the
/// keyspace) run unsharded and with 2 range-aligned shards. Reported in
/// *simulated* txns/s — committed transactions per simulated second —
/// which is deterministic and machine-independent: it measures the
/// modeled capacity win of a second independent log/apply plane
/// (docs/SHARDING.md), not host speed. `speedup_2shard` is the gated
/// headline: sharding must keep scaling disjoint-key write throughput.
void BenchShardScaling(int measure_s, int jobs, hns::PerfReport* report) {
  const Duration measure = bench::Scaled(Seconds(measure_s));
  const hns::ExperimentSpec base =
      hns::ExperimentSpec()
          .WithProtocol(hns::Protocol::kHelios1)
          .WithClients(300)
          .WithNumKeys(20000)
          .WithKeyPartitions(2)
          .WithWarmup(bench::Scaled(Seconds(1)))
          .WithMeasure(measure)
          .WithSeed(42);
  std::vector<hns::ExperimentSpec> specs = {
      hns::ExperimentSpec(base).WithLabel("shard scaling: 1 shard"),
      hns::ExperimentSpec(base)
          .WithShards(2)
          .WithShardBy("range")
          .WithLabel("shard scaling: 2 shards"),
  };
  hns::SweepOptions options;
  options.jobs = jobs;
  hns::SweepRunner runner(options);
  const hns::SweepResult sweep = runner.Run(specs);
  if (!sweep.status().ok()) {
    std::fprintf(stderr, "shard bench failed: %s\n",
                 sweep.status().ToString().c_str());
    std::exit(cli::kExitFailure);
  }
  const double sim_seconds = static_cast<double>(measure) / 1e6;
  std::vector<double> txns_per_sim_s;
  for (const hns::SweepJobResult& job : sweep.jobs) {
    uint64_t committed = 0;
    for (const auto& dc : job.result.per_dc) committed += dc.committed;
    txns_per_sim_s.push_back(static_cast<double>(committed) / sim_seconds);
  }
  hns::PerfEntry& entry = report->Add("sim.shard.scaling");
  entry.Set("txns_per_sec_1shard", txns_per_sim_s[0]);
  entry.Set("txns_per_sec_2shard", txns_per_sim_s[1]);
  entry.Set("speedup_2shard", txns_per_sim_s[1] / txns_per_sim_s[0]);
  std::fprintf(stderr,
               "sim.shard.scaling: 1 shard %.0f txns/sim-s, 2 shards %.0f "
               "txns/sim-s (%.2fx)\n",
               txns_per_sim_s[0], txns_per_sim_s[1],
               txns_per_sim_s[1] / txns_per_sim_s[0]);
}

/// One corpus, three legs: legacy allocate-per-call framing (the old
/// Encoder/FrameEnvelope API, kept exactly as the "before" measurement),
/// wire::Framer reuse (the redesign), and decode.
void BenchWireCorpus(const std::string& name,
                     const std::vector<core::Envelope>& corpus, int iters,
                     hns::PerfReport* report) {
  uint64_t legacy_bytes = 0;
  uint64_t frames = 0;
  const auto t_legacy = std::chrono::steady_clock::now();
  for (int it = 0; it < iters; ++it) {
    for (const core::Envelope& env : corpus) {
      const std::vector<uint8_t> frame = wire::FrameEnvelope(env);
      legacy_bytes += frame.size();
      ++frames;
    }
  }
  const double legacy_wall = SecondsSince(t_legacy);

  // Reuse leg: one Framer, zero steady-state allocations.
  wire::Framer framer;
  uint64_t reuse_bytes = 0;
  const auto t_reuse = std::chrono::steady_clock::now();
  for (int it = 0; it < iters; ++it) {
    for (const core::Envelope& env : corpus) {
      reuse_bytes += framer.Frame(env).size();
    }
  }
  const double reuse_wall = SecondsSince(t_reuse);
  if (reuse_bytes != legacy_bytes) {
    std::fprintf(stderr, "wire bench: legacy and reuse byte counts diverge "
                         "(%llu vs %llu)\n",
                 static_cast<unsigned long long>(legacy_bytes),
                 static_cast<unsigned long long>(reuse_bytes));
    std::exit(cli::kExitFailure);
  }

  // Decode leg over the same frames.
  std::vector<std::vector<uint8_t>> frames_bytes;
  for (const core::Envelope& env : corpus) {
    frames_bytes.push_back(wire::FrameEnvelope(env));
  }
  uint64_t decoded_records = 0;
  const auto t_decode = std::chrono::steady_clock::now();
  for (int it = 0; it < iters; ++it) {
    for (const std::vector<uint8_t>& bytes : frames_bytes) {
      auto env = wire::UnframeEnvelope(bytes);
      if (!env.ok()) {
        std::fprintf(stderr, "wire bench: decode failed: %s\n",
                     env.status().ToString().c_str());
        std::exit(cli::kExitFailure);
      }
      decoded_records += env.value().log.records.size();
    }
  }
  const double decode_wall = SecondsSince(t_decode);

  const double per_frame =
      static_cast<double>(legacy_bytes) / static_cast<double>(frames);
  const double legacy_rate = static_cast<double>(frames) / legacy_wall;
  const double reuse_rate = static_cast<double>(frames) / reuse_wall;
  const double decode_rate = static_cast<double>(frames) / decode_wall;

  hns::PerfEntry& legacy = report->Add("wire.encode." + name + ".legacy");
  legacy.Set("encodes_per_sec", legacy_rate);
  legacy.Set("mb_per_sec",
             static_cast<double>(legacy_bytes) / legacy_wall / 1e6);

  hns::PerfEntry& reuse = report->Add("wire.encode." + name + ".reuse");
  reuse.Set("encodes_per_sec", reuse_rate);
  reuse.Set("mb_per_sec", static_cast<double>(reuse_bytes) / reuse_wall / 1e6);
  reuse.Set("speedup_vs_legacy", reuse_rate / legacy_rate);

  hns::PerfEntry& decode = report->Add("wire.decode." + name);
  decode.Set("decodes_per_sec", decode_rate);

  std::fprintf(stderr,
               "wire.%s: %.0f-byte frames; legacy %.0f/s, reuse %.0f/s "
               "(%.2fx), decode %.0f/s (%llu records)\n",
               name.c_str(), per_frame, legacy_rate, reuse_rate,
               reuse_rate / legacy_rate, decode_rate,
               static_cast<unsigned long long>(decoded_records));
}

void BenchWire(int iters, hns::PerfReport* report) {
  // Heartbeat: the common steady-state gossip shape — every log interval
  // each node sends N-1 envelopes that usually carry no new records, just
  // the timetable and liveness metadata. Allocation overhead dominates
  // here, which is exactly what the reuse API removes.
  std::vector<core::Envelope> heartbeat;
  for (uint64_t i = 0; i < 16; ++i) {
    heartbeat.push_back(MakeCorpusEnvelope(5, 0, i));
  }
  // Batch: a loaded partial-log exchange (32 records with bodies) where
  // byte encoding itself dominates.
  std::vector<core::Envelope> batch;
  for (uint64_t i = 0; i < 16; ++i) {
    batch.push_back(MakeCorpusEnvelope(5, 32, i));
  }
  BenchWireCorpus("heartbeat", heartbeat, iters * 8, report);
  BenchWireCorpus("batch", batch, iters, report);
}

void BenchWal(int entries, hns::PerfReport* report) {
  const std::string path =
      "/tmp/helios_bench_perf_" + std::to_string(::getpid()) + ".wal";
  wal::WalWriter writer;
  if (const Status s = writer.Open(path); !s.ok()) {
    std::fprintf(stderr, "wal bench: %s\n", s.ToString().c_str());
    std::exit(cli::kExitFailure);
  }
  const core::Envelope corpus = MakeCorpusEnvelope(5, 32, 7);
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < entries; ++i) {
    const rdict::LogRecord& rec =
        corpus.log.records[static_cast<size_t>(i) % corpus.log.records.size()];
    if (const Status s = writer.AppendRecord(rec); !s.ok()) {
      std::fprintf(stderr, "wal bench: %s\n", s.ToString().c_str());
      std::exit(cli::kExitFailure);
    }
    (void)writer.Sync(false);
  }
  const double wall = SecondsSince(t0);
  const double bytes = static_cast<double>(writer.bytes_written());
  writer.Close();
  std::remove(path.c_str());

  hns::PerfEntry& entry = report->Add("wal.append");
  entry.Set("appends_per_sec", static_cast<double>(entries) / wall);
  entry.Set("mb_per_sec", bytes / wall / 1e6);
  std::fprintf(stderr, "wal.append: %.0f appends/s, %.1f MB/s\n",
               static_cast<double>(entries) / wall, bytes / wall / 1e6);
}

void BenchLiveTcp(int ops, hns::PerfReport* report) {
  // Two transports on loopback; B echoes every payload back to A. Each op
  // is one framed-envelope round trip, timed end to end.
  std::mutex mu;
  std::condition_variable cv;
  uint64_t replies = 0;

  transport::TcpTransport* b_ptr = nullptr;
  transport::TcpTransport a([&](std::vector<uint8_t>) {
    {
      std::lock_guard<std::mutex> lock(mu);
      ++replies;
    }
    cv.notify_one();
  });
  transport::TcpTransport b([&](std::vector<uint8_t> payload) {
    (void)b_ptr->Send(0, payload);
  });
  b_ptr = &b;

  if (!a.Listen(0).ok() || !b.Listen(0).ok() ||
      !a.Connect(1, b.port()).ok() || !b.Connect(0, a.port()).ok()) {
    std::fprintf(stderr, "live bench: loopback setup failed; skipping\n");
    return;
  }

  wire::Framer framer;
  const core::Envelope env = MakeCorpusEnvelope(5, 32, 3);
  const wire::Buffer& frame = framer.Frame(env);

  std::vector<double> lat_us;
  lat_us.reserve(static_cast<size_t>(ops));
  const auto t_all = std::chrono::steady_clock::now();
  for (int i = 0; i < ops; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    if (const Status s = a.Send(1, frame.data(), frame.size()); !s.ok()) {
      std::fprintf(stderr, "live bench: %s\n", s.ToString().c_str());
      std::exit(cli::kExitFailure);
    }
    {
      std::unique_lock<std::mutex> lock(mu);
      const uint64_t want = static_cast<uint64_t>(i) + 1;
      cv.wait(lock, [&] { return replies >= want; });
    }
    lat_us.push_back(SecondsSince(t0) * 1e6);
  }
  const double wall = SecondsSince(t_all);
  a.Shutdown();
  b.Shutdown();

  std::sort(lat_us.begin(), lat_us.end());
  const auto pct = [&lat_us](double p) {
    const size_t idx = static_cast<size_t>(p * static_cast<double>(lat_us.size() - 1));
    return lat_us[idx];
  };
  hns::PerfEntry& entry = report->Add("live.tcp");
  entry.Set("ops_per_sec", static_cast<double>(ops) / wall);
  entry.Set("p50_us", pct(0.50));
  entry.Set("p99_us", pct(0.99));
  std::fprintf(stderr, "live.tcp: %.0f round trips/s, p50 %.1fus, p99 %.1fus\n",
               static_cast<double>(ops) / wall, pct(0.50), pct(0.99));
}

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags;
  cli::AddCommonFlags(&flags, /*default_jobs=*/1);
  flags.DefineString("protocols", "helios0",
                     "comma-separated protocols for the simulator leg");
  flags.DefineString("seeds", "42",
                     "comma-separated seeds for the simulator leg");
  flags.DefineInt("sim_clients", 50, "clients for the simulator leg");
  flags.DefineInt("sim_seconds", 8,
                  "simulated measurement window, seconds "
                  "(scaled by HELIOS_BENCH_SCALE)");
  flags.DefineInt("wire_iters", 20000,
                  "passes over the 16-envelope wire corpus");
  flags.DefineInt("wal_entries", 200000, "WAL records to append");
  flags.DefineInt("live_ops", 2000, "TCP loopback round trips");
  flags.DefineBool("skip_sim", false, "skip the simulator leg");
  flags.DefineBool("skip_live", false, "skip the TCP loopback leg");
  cli::ParseOrExit(&flags, argc, argv);

  auto protocols = cli::ParseProtocolList(flags.GetString("protocols"));
  if (!protocols.ok()) {
    return cli::FailWith(protocols.status(), cli::kExitUsage);
  }
  auto seeds = cli::ParseSeedList(flags.GetString("seeds"));
  if (!seeds.ok()) {
    return cli::FailWith(seeds.status(), cli::kExitUsage);
  }

  hns::PerfReport report;
  if (!flags.GetBool("skip_sim")) {
    BenchSim(protocols.value(), seeds.value(),
             static_cast<int>(flags.GetInt("sim_clients")),
             static_cast<int>(flags.GetInt("sim_seconds")),
             static_cast<int>(flags.GetInt("jobs")), &report);
    BenchShardScaling(static_cast<int>(flags.GetInt("sim_seconds")),
                      static_cast<int>(flags.GetInt("jobs")), &report);
  }
  BenchWire(static_cast<int>(flags.GetInt("wire_iters")), &report);
  BenchWal(static_cast<int>(flags.GetInt("wal_entries")), &report);
  if (!flags.GetBool("skip_live")) {
    BenchLiveTcp(static_cast<int>(flags.GetInt("live_ops")), &report);
  }

  const std::string json_out = flags.GetString("json_out").empty()
                                   ? "BENCH_1.json"
                                   : flags.GetString("json_out");
  if (const Status s = cli::WriteWholeFile(json_out, report.ToJson() + "\n");
      !s.ok()) {
    return cli::FailWith(s, cli::kExitFailure);
  }
  std::fprintf(stderr, "perf report: %s\n", json_out.c_str());
  return cli::kExitOk;
}
