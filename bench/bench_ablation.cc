// Ablation studies for the design choices DESIGN.md calls out. These go
// beyond the paper's figures but probe the same mechanisms:
//
//  A) Log propagation interval (theta): the paper propagates the log
//     "continuously"; real systems batch. Latency should grow roughly
//     linearly with the interval while message counts fall.
//  B) Grace time (GT, Section 4.4): smaller GT means faster failover but
//     more spurious refusals under jitter; larger GT means slower failover.
//     We measure refusals and normal-operation latency across GT values.
//  C) Contention (Zipfian theta): abort-rate growth for the optimistic
//     log-based protocols vs the lock-based baselines.
//  D) Read-only fraction (Appendix B): read-only snapshot transactions
//     commit locally and never contend, so throughput rises and average
//     read-write latency stays flat as their share grows.
//  E) Wire cost: encoded envelope sizes vs the log interval (batching
//     amortizes the timetable; per-record overhead dominates large
//     batches), using the wire-format serializer and bandwidth accounting.

#include <cstdio>
#include <iterator>
#include <vector>

#include "bench/bench_common.h"
#include "common/table.h"
#include "core/helios_cluster.h"
#include "harness/experiment.h"
#include "harness/topology.h"
#include "sim/network.h"
#include "sim/scheduler.h"
#include "wire/serialization.h"
#include "workload/client.h"

using helios::Duration;
using helios::Millis;
using helios::Seconds;
using helios::TablePrinter;
namespace harness = helios::harness;
namespace bench = helios::bench;

namespace {

harness::ExperimentSpec SmallRun(harness::Protocol p) {
  return harness::ExperimentSpec()
      .WithProtocol(p)
      .WithClients(60)
      .WithWarmup(bench::Scaled(Seconds(3)))
      .WithMeasure(bench::Scaled(Seconds(10)));
}

// Studies A, C, and D are plain RunExperiment grids, so they are declared
// here as one combined spec list and executed as a single parallel sweep;
// the slices below carve the flat result vector back into studies. B, E,
// and F drive clusters directly (they read cluster counters or mutate the
// network mid-run) and stay serial.
const Duration kLogIntervals[] = {Millis(2),  Millis(5),  Millis(10),
                                  Millis(25), Millis(50), Millis(100)};
const double kThetas[] = {0.0, 0.3, 0.5, 0.7};
const harness::Protocol kContentionProtocols[] = {
    harness::Protocol::kHelios0, harness::Protocol::kMessageFutures,
    harness::Protocol::kReplicatedCommit, harness::Protocol::kTwoPcPaxos};
const double kReadOnlyFractions[] = {0.0, 0.25, 0.5, 0.75};

std::vector<harness::ExperimentSpec> SweepableSpecs() {
  std::vector<harness::ExperimentSpec> specs;
  for (Duration interval : kLogIntervals) {
    specs.push_back(
        SmallRun(harness::Protocol::kHelios0)
            .WithLogInterval(interval)
            .WithLabel("A: log interval " +
                       TablePrinter::Num(helios::ToMillis(interval), 0) +
                       "ms"));
  }
  for (harness::Protocol p : kContentionProtocols) {
    for (double theta : kThetas) {
      specs.push_back(SmallRun(p)
                          .WithMeasure(bench::Scaled(Seconds(8)))
                          .WithZipfTheta(theta)
                          .WithLabel(std::string("C: ") +
                                     harness::ProtocolName(p) + " theta " +
                                     TablePrinter::Num(theta, 1)));
    }
  }
  for (double fraction : kReadOnlyFractions) {
    specs.push_back(SmallRun(harness::Protocol::kHelios0)
                        .WithReadOnlyFraction(fraction)
                        .WithLabel("D: read-only " +
                                   TablePrinter::Num(fraction, 2)));
  }
  return specs;
}

void LogIntervalAblation(const harness::ExperimentResult* results) {
  bench::PrintHeading(
      "Ablation A: log propagation interval vs Helios-0 commit latency");
  TablePrinter table({"interval (ms)", "avg latency (ms)", "throughput",
                      "envelopes sent/s"});
  size_t i = 0;
  for (Duration interval : kLogIntervals) {
    const auto& r = results[i++];
    table.AddRow({TablePrinter::Num(helios::ToMillis(interval), 0),
                  TablePrinter::Num(r.avg_latency_ms, 1),
                  TablePrinter::Num(r.total_throughput_ops_s, 0), "-"});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "Latency grows with the propagation interval (a commit waits for the "
      "next tick\nplus the flight time), which is why the paper propagates "
      "continuously.\n");
}

void GraceTimeAblation() {
  bench::PrintHeading(
      "Ablation B: grace time GT vs refusals and latency (Helios-1)");
  TablePrinter table({"GT (ms)", "avg latency (ms)", "refusals issued",
                      "liveness aborts"});
  for (Duration gt : {Millis(50), Millis(150), Millis(400), Millis(1000),
                      Millis(3000)}) {
    std::fprintf(stderr, "grace time %lldms...\n",
                 static_cast<long long>(gt / 1000));
    // Run directly so we can read the cluster counters.
    helios::sim::Scheduler scheduler;
    helios::sim::Network network(&scheduler, 5, 31);
    const auto topo = harness::Table2Topology();
    harness::ConfigureNetwork(topo, &network);
    helios::core::HeliosConfig hc;
    hc.num_datacenters = 5;
    hc.fault_tolerance = 1;
    hc.grace_time = gt;
    hc.commit_offsets = harness::PlanCommitOffsets(topo, std::nullopt);
    helios::core::HeliosCluster cluster(&scheduler, &network, std::move(hc));
    helios::workload::WorkloadConfig wl;
    wl.num_keys = 10000;
    for (uint64_t i = 0; i < wl.num_keys; ++i) {
      cluster.LoadInitialAll(helios::workload::TYcsbGenerator::KeyName(i),
                             "init");
    }
    cluster.Start();
    std::vector<std::unique_ptr<helios::workload::ClosedLoopClient>> clients;
    const auto measure = bench::Scaled(Seconds(10));
    for (int c = 0; c < 30; ++c) {
      clients.push_back(std::make_unique<helios::workload::ClosedLoopClient>(
          c, c % 5, &cluster, &scheduler, wl, 5, Seconds(2),
          Seconds(2) + measure, Seconds(2) + measure));
      clients.back()->Start();
    }
    scheduler.RunUntil(Seconds(2) + measure + Seconds(3));
    helios::workload::ClientMetrics all;
    for (const auto& c : clients) all.Merge(c->metrics());
    const auto counters = cluster.AggregateCounters();
    table.AddRow({TablePrinter::Num(helios::ToMillis(gt), 0),
                  TablePrinter::Num(all.commit_latency_ms.mean(), 1),
                  std::to_string(counters.refusals_issued),
                  std::to_string(counters.aborts_liveness)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "Small GT risks refusing (and aborting) slow-arriving transactions; "
      "large GT\nonly hurts during outages (failover waits ~GT — see "
      "bench_fig6_liveness).\n");
}

void ContentionAblation(const harness::ExperimentResult* results) {
  bench::PrintHeading("Ablation C: abort rate (%) vs Zipfian skew theta");
  std::vector<std::string> header = {"Protocol"};
  for (double t : kThetas) header.push_back(TablePrinter::Num(t, 1));
  TablePrinter table(header);
  size_t i = 0;
  for (harness::Protocol p : kContentionProtocols) {
    std::vector<std::string> row = {harness::ProtocolName(p)};
    for (size_t t = 0; t < std::size(kThetas); ++t) {
      row.push_back(TablePrinter::Num(100.0 * results[i++].avg_abort_rate, 1));
    }
    table.AddRow(std::move(row));
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "The optimistic log-based protocols abort on any overlap with a "
      "preparing\ntransaction, so their abort rate climbs fastest with "
      "skew; wound-wait 2PC\nmostly converts conflicts into waits.\n");
}

void ReadOnlyAblation(const harness::ExperimentResult* results) {
  bench::PrintHeading(
      "Ablation D (Appendix B): read-only snapshot transaction share");
  TablePrinter table({"read-only share", "rw avg latency (ms)",
                      "rw throughput (ops/s)", "read-only txns/s"});
  size_t i = 0;
  for (double fraction : kReadOnlyFractions) {
    const auto& r = results[i++];
    // Recompute read-only rate from per-dc committed metrics is not
    // exposed; derive from throughput change instead. Report rw metrics.
    table.AddRow({TablePrinter::Num(fraction, 2),
                  TablePrinter::Num(r.avg_latency_ms, 1),
                  TablePrinter::Num(r.total_throughput_ops_s, 0), "-"});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "Read-only transactions are served from the local snapshot in "
      "~1-2ms and never\nabort or block read-write traffic (Appendix B): "
      "the read-write latency stays\nflat as their share grows.\n");
}

void WireSizeAblation() {
  bench::PrintHeading(
      "Ablation E: on-wire envelope size vs log interval (wire format)");
  TablePrinter table({"interval (ms)", "envelopes", "total MB",
                      "avg bytes/envelope"});
  for (Duration interval : {Millis(5), Millis(20), Millis(80)}) {
    std::fprintf(stderr, "wire sizes at interval %lldms...\n",
                 static_cast<long long>(interval / 1000));
    helios::sim::Scheduler scheduler;
    helios::sim::Network network(&scheduler, 5, 41);
    const auto topo = harness::Table2Topology();
    harness::ConfigureNetwork(topo, &network);
    network.set_bandwidth_bytes_per_sec(1'000'000'000);  // 8 Gbit/s links.
    helios::core::HeliosConfig hc;
    hc.num_datacenters = 5;
    hc.log_interval = interval;
    hc.commit_offsets = harness::PlanCommitOffsets(topo, std::nullopt);
    helios::core::HeliosCluster cluster(&scheduler, &network, std::move(hc));
    cluster.set_envelope_sizer([](const helios::core::Envelope& env) {
      return helios::wire::EncodedEnvelopeSize(env);
    });
    helios::workload::WorkloadConfig wl;
    wl.num_keys = 10000;
    for (uint64_t i = 0; i < wl.num_keys; ++i) {
      cluster.LoadInitialAll(helios::workload::TYcsbGenerator::KeyName(i),
                             "init");
    }
    cluster.Start();
    std::vector<std::unique_ptr<helios::workload::ClosedLoopClient>> clients;
    for (int c = 0; c < 30; ++c) {
      clients.push_back(std::make_unique<helios::workload::ClosedLoopClient>(
          c, c % 5, &cluster, &scheduler, wl, 5, 0, Seconds(8), Seconds(8)));
      clients.back()->Start();
    }
    scheduler.RunUntil(Seconds(10));
    const auto counters = cluster.AggregateCounters();
    const double mb = static_cast<double>(network.bytes_sent()) / 1e6;
    table.AddRow({TablePrinter::Num(helios::ToMillis(interval), 0),
                  std::to_string(counters.envelopes_sent),
                  TablePrinter::Num(mb, 1),
                  TablePrinter::Num(
                      counters.envelopes_sent == 0
                          ? 0.0
                          : static_cast<double>(network.bytes_sent()) /
                                static_cast<double>(counters.envelopes_sent),
                      0)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "Each envelope carries the receiver's whole unacknowledged window "
      "(~RTT of\nrecords — the Replicated Dictionary retransmits until "
      "acknowledged), so bytes\nscale with the transaction rate times the "
      "window, not with the tick count:\nlonger intervals slash total "
      "bytes mostly because the higher commit latency\nthrottles the "
      "closed-loop clients.\n");
}

void AdaptiveOffsetsAblation() {
  bench::PrintHeading(
      "Ablation F: online RTT estimation + offset replanning after a WAN "
      "improvement");
  // The Virginia-Singapore link IMPROVES from 268ms to 120ms at t=12s
  // (e.g. a new cable path). A static MAO plan keeps waiting out the old
  // pairwise budget — Lemma 1 says L_V + L_S >= RTT(V,S), and the stale
  // offsets still enforce the 268ms split. Replanning from the live
  // estimates at t=21s lets the whole deployment cash in the improvement.
  // (When a link *degrades*, the new lower bound is unavoidable and
  // replanning can only re-split the burden between the two endpoints.)
  helios::sim::Scheduler scheduler;
  helios::sim::Network network(&scheduler, 5, 51);
  const auto topo = harness::Table2Topology();
  harness::ConfigureNetwork(topo, &network);
  helios::core::HeliosConfig hc;
  hc.num_datacenters = 5;
  hc.estimate_rtts = true;
  hc.commit_offsets = harness::PlanCommitOffsets(topo, std::nullopt);
  helios::core::HeliosCluster cluster(&scheduler, &network, std::move(hc));
  helios::workload::WorkloadConfig wl;
  wl.num_keys = 10000;
  for (uint64_t i = 0; i < wl.num_keys; ++i) {
    cluster.LoadInitialAll(helios::workload::TYcsbGenerator::KeyName(i),
                           "init");
  }
  cluster.Start();

  // 3-second windows of commit latency, per datacenter and averaged.
  std::map<int, std::vector<helios::StatAccumulator>> buckets;
  auto rng = std::make_shared<helios::Rng>(3);
  auto loop = std::make_shared<std::function<void(helios::DcId)>>();
  *loop = [&, rng, loop](helios::DcId dc) {
    if (scheduler.Now() > Seconds(36)) return;
    const helios::sim::SimTime start = scheduler.Now();
    cluster.ClientCommit(
        dc, {},
        {{helios::workload::TYcsbGenerator::KeyName(rng->Uniform(wl.num_keys)),
          "v"}},
        [&, loop, start, dc](const helios::CommitOutcome& o) {
          if (o.committed) {
            auto& window = buckets[static_cast<int>(start / Seconds(3))];
            if (window.empty()) window.resize(5);
            window[static_cast<size_t>(dc)].Add(
                helios::ToMillis(scheduler.Now() - start));
          }
          (*loop)(dc);
        });
  };
  for (helios::DcId dc = 0; dc < 5; ++dc) {
    scheduler.At(Millis(dc), [loop, dc] { (*loop)(dc); });
  }
  scheduler.At(Seconds(12), [&] {
    network.SetRtt(0, 4, Millis(120), Millis(4));  // V-S improves.
  });
  bool replanned_ok = false;
  double replanned_avg = 0.0;
  scheduler.At(Seconds(21), [&] {
    auto r = cluster.ReplanOffsetsFromEstimates();
    replanned_ok = r.ok();
    if (r.ok()) replanned_avg = r.value();
  });
  scheduler.RunUntil(Seconds(38));

  TablePrinter table({"window", "V", "S", "all-DC avg", ""});
  for (int w = 1; w <= 11; ++w) {
    auto it = buckets.find(w);
    if (it == buckets.end()) continue;
    double sum = 0.0;
    for (const auto& acc : it->second) sum += acc.mean();
    std::string note;
    if (w == 4) note = "<- V-S RTT drops 268 -> 120ms";
    if (w == 7) note = "<- replan from live estimates";
    table.AddRow({std::to_string(w * 3) + "-" + std::to_string(w * 3 + 3) +
                      "s",
                  TablePrinter::Num(it->second[0].mean(), 1),
                  TablePrinter::Num(it->second[4].mean(), 1),
                  TablePrinter::Num(sum / 5.0, 1), note});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "replan %s (new planned MAO average: %.1fms vs 90.6ms before the "
      "improvement).\nThe static plan cannot exploit the faster link: its "
      "offsets still enforce the\nold 268ms V-S budget. Replanning from "
      "the gossiped live estimates lowers both\nendpoints' waits to the "
      "new lower bound.\n",
      replanned_ok ? "succeeded" : "FAILED", replanned_avg);
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::ParseBenchArgsOrDie(argc, argv);
  const std::vector<harness::ExperimentResult> results =
      bench::RunSweepOrDie(SweepableSpecs(), args);
  const harness::ExperimentResult* cursor = results.data();
  LogIntervalAblation(cursor);
  cursor += std::size(kLogIntervals);
  GraceTimeAblation();
  ContentionAblation(cursor);
  cursor += std::size(kContentionProtocols) * std::size(kThetas);
  ReadOnlyAblation(cursor);
  WireSizeAblation();
  AdaptiveOffsetsAblation();
  return 0;
}
