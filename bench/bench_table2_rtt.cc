// Reproduces Table 2: the RTT matrix between the five datacenters
// (V, O, C, I, S) with standard deviations.
//
// The paper measured these over 24 hours on EC2; here they calibrate the
// simulated WAN, and this bench *measures them back* by sampling round
// trips through the network model — verifying that the substrate
// reproduces the means and the jitter the protocols experience.

#include <cstdio>

#include "bench/bench_common.h"
#include "common/stats.h"
#include "common/table.h"
#include "harness/topology.h"
#include "sim/network.h"
#include "sim/scheduler.h"

int main() {
  using helios::TablePrinter;
  namespace sim = helios::sim;

  helios::bench::PrintHeading(
      "Table 2: measured RTTs between datacenters, ms (stddev)");

  const auto topo = helios::harness::Table2Topology();
  const int n = topo.size();
  sim::Scheduler scheduler;
  sim::Network network(&scheduler, n, /*seed=*/20260706);
  helios::harness::ConfigureNetwork(topo, &network);

  const int kSamples = 5000;
  std::vector<std::string> header = {""};
  for (const auto& name : topo.names) header.push_back(name);
  TablePrinter table(header);

  for (int a = 0; a < n; ++a) {
    std::vector<std::string> row = {topo.names[a]};
    for (int b = 0; b < n; ++b) {
      if (a == b) {
        row.push_back("-");
        continue;
      }
      helios::StatAccumulator acc;
      for (int s = 0; s < kSamples; ++s) {
        acc.Add(helios::ToMillis(network.SampleRtt(a, b)));
      }
      row.push_back(TablePrinter::MeanStd(acc.mean(), acc.stddev()));
    }
    table.AddRow(std::move(row));
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nConfigured from the paper's Table 2 (V-O 66(10.5), V-C 78(9.5), "
      "V-I 84(8.5),\nV-S 268(6.5), O-C 19(1), O-I 175(7), O-S 210(4.2), "
      "C-I 175(6.5), C-S 182(6),\nI-S 194(4)); measured values above come "
      "back through the simulated links.\n");
  return 0;
}
