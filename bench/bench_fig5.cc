// Reproduces Figure 5: Helios-0 commit latency (a) and throughput (b)
// under clock-synchronization errors and RTT-estimation errors.
//
// Scenarios, matching Section 5.4:
//   - NTP            : synchronized clocks, true RTT estimates (baseline);
//   - V +100ms       : Virginia's clock 100ms ahead of everyone;
//   - V -100ms       : Virginia's clock 100ms behind;
//   - random skew    : {+24, -60, +120, -10, +55} ms for V, O, C, I, S;
//   - RTT estimate 1 : a fifth of the pairwise RTTs +25ms, a fifth +75ms,
//                      a fifth -25ms, a fifth -75ms, the rest exact;
//   - RTT estimate 2 : all RTTs estimated as zero (every datacenter gets
//                      an assigned commit latency of 0).

#include <cstdio>
#include <optional>
#include <vector>

#include "bench/bench_common.h"
#include "common/table.h"
#include "harness/experiment.h"

int main(int argc, char** argv) {
  using helios::Duration;
  using helios::Millis;
  using helios::TablePrinter;
  namespace harness = helios::harness;
  namespace bench = helios::bench;
  namespace lp = helios::lp;

  const auto args = bench::ParseBenchArgsOrDie(argc, argv);
  const auto topo = harness::Table2Topology();

  struct Scenario {
    std::string name;
    std::vector<Duration> clock_offsets;
    std::optional<lp::RttMatrix> estimate;
  };

  // RTT estimate 1: deterministic rotation of {+25, +75, -25, -75, 0} over
  // the 10 pairs.
  lp::RttMatrix estimate1 = topo.rtt_ms;
  {
    const double deltas[5] = {25.0, 75.0, -25.0, -75.0, 0.0};
    int idx = 0;
    for (int a = 0; a < topo.size(); ++a) {
      for (int b = a + 1; b < topo.size(); ++b) {
        const double noisy =
            std::max(0.0, topo.rtt_ms.Get(a, b) + deltas[idx++ % 5]);
        estimate1.Set(a, b, noisy);
      }
    }
  }
  lp::RttMatrix estimate2(topo.size());  // All zero.

  std::vector<Scenario> scenarios = {
      {"NTP (synchronized)", {}, std::nullopt},
      {"V +100ms", {Millis(100), 0, 0, 0, 0}, std::nullopt},
      {"V -100ms", {-Millis(100), 0, 0, 0, 0}, std::nullopt},
      {"skew {+24,-60,+120,-10,+55}",
       {Millis(24), -Millis(60), Millis(120), -Millis(10), Millis(55)},
       std::nullopt},
      {"RTT estimation 1", {}, estimate1},
      {"RTT estimation 2 (all zero)", {}, estimate2},
  };

  std::vector<std::string> header = {"Scenario"};
  for (const auto& name : topo.names) header.push_back(name);
  header.push_back("Avg");

  std::vector<harness::ExperimentSpec> specs;
  for (const auto& s : scenarios) {
    harness::ExperimentSpec spec = bench::Fig3Spec(harness::Protocol::kHelios0)
                                       .WithClockOffsets(s.clock_offsets)
                                       .WithLabel("Helios-0: " + s.name);
    if (s.estimate.has_value()) spec.WithRttEstimate(*s.estimate);
    specs.push_back(std::move(spec));
  }
  const std::vector<harness::ExperimentResult> results =
      bench::RunSweepOrDie(specs, args);

  bench::PrintHeading(
      "Figure 5(a): Helios-0 commit latency (ms) under sync/estimation errors");
  {
    TablePrinter table(header);
    for (size_t i = 0; i < scenarios.size(); ++i) {
      std::vector<std::string> row = {scenarios[i].name};
      for (const auto& dc : results[i].per_dc) {
        row.push_back(TablePrinter::MeanStd(dc.latency_mean_ms,
                                            dc.latency_stddev_ms));
      }
      row.push_back(TablePrinter::Num(results[i].avg_latency_ms, 1));
      table.AddRow(std::move(row));
    }
    std::printf("%s", table.ToString().c_str());
  }

  bench::PrintHeading("Figure 5(b): Helios-0 throughput (ops/s), same scenarios");
  {
    TablePrinter table(header);
    for (size_t i = 0; i < scenarios.size(); ++i) {
      std::vector<std::string> row = {scenarios[i].name};
      for (const auto& dc : results[i].per_dc) {
        row.push_back(TablePrinter::Num(dc.throughput_ops_s, 0));
      }
      row.push_back(TablePrinter::Num(results[i].total_throughput_ops_s, 0));
      table.AddRow(std::move(row));
    }
    std::printf("%s", table.ToString().c_str());
  }

  const double base = results[0].avg_latency_ms;
  std::printf(
      "\nDeltas vs synchronized: V+100 %+0.1fms, V-100 %+0.1fms, random "
      "%+0.1fms,\nest.1 %+0.1f%%, est.2 %+0.1f%%.\n",
      results[1].avg_latency_ms - base, results[2].avg_latency_ms - base,
      results[3].avg_latency_ms - base,
      100.0 * (results[4].avg_latency_ms - base) / base,
      100.0 * (results[5].avg_latency_ms - base) / base);
  std::printf(
      "Paper reference points: V+100 raises V's own latency by ~62ms while "
      "most others\nimprove; V-100 lowers V by ~37ms but raises the average "
      "by ~64ms; the random\nvector adds ~60ms average; RTT estimation "
      "errors cost only +4.5%% and +9%%.\n");
  return 0;
}
