// Reproduces the Appendix A.2 throughput trade-off: minimizing average
// commit latency is not the same as maximizing throughput.
//
// Paper example (RTTs 30/20/40): the MAO assignment 5/25/15 yields
// 1000*N*(1/5+1/25+1/15) = 306.66*N txns/s, while the feasible assignment
// 1/29/19 yields 1087.11*N — 3.5x more — because closed-loop clients at a
// low-latency datacenter cycle much faster.
//
// This bench prints the analytic comparison, runs the throughput
// optimizer, and then *validates the effect end-to-end* by running the
// simulator with both offset assignments.

#include <cstdio>

#include "bench/bench_common.h"
#include "common/table.h"
#include "harness/experiment.h"
#include "lp/mao.h"

int main(int argc, char** argv) {
  using helios::TablePrinter;
  namespace harness = helios::harness;
  namespace bench = helios::bench;
  namespace lp = helios::lp;

  const auto args = bench::ParseBenchArgsOrDie(argc, argv);
  const auto topo = harness::PaperExampleTopology();
  const lp::RttMatrix& rtt = topo.rtt_ms;
  const double kOverheadMs = 1.0;

  bench::PrintHeading(
      "Appendix A.2: latency-optimal vs throughput-optimal assignment "
      "(RTT 30/20/40)");

  const auto mao = lp::SolveMao(rtt).value();
  const auto paper_alt = std::vector<double>{1.0, 29.0, 19.0};
  const auto optimized = lp::OptimizeThroughput(rtt, kOverheadMs).value();

  TablePrinter table(
      {"Assignment", "L_A", "L_B", "L_C", "avg lat", "rate/client (txn/s)"});
  auto add = [&](const std::string& name, const std::vector<double>& l) {
    table.AddRow({name, TablePrinter::Num(l[0], 1), TablePrinter::Num(l[1], 1),
                  TablePrinter::Num(l[2], 1),
                  TablePrinter::Num(lp::AverageLatency(l), 2),
                  TablePrinter::Num(lp::ThroughputRate(l, kOverheadMs), 1)});
  };
  add("MAO (latency-optimal)", mao);
  add("Paper's alternative (1/29/19)", paper_alt);
  add("Throughput optimizer", optimized.latencies);
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\n(rates include a %.1fms execution overhead; the paper's idealized "
      "306.66 vs\n1087.11 txns/s used none)\n",
      kOverheadMs);

  // End-to-end validation: run both assignments through the simulator.
  bench::PrintHeading("End-to-end: simulated throughput under both assignments");
  const std::vector<std::pair<std::string, std::vector<double>>> assignments = {
      {"MAO (5/25/15)", mao}, {"Throughput-optimal", optimized.latencies}};
  std::vector<harness::ExperimentSpec> specs;
  for (const auto& [name, latencies] : assignments) {
    // RunExperiment plans offsets from an RTT estimate; to force specific
    // latencies we exploit Eq. 5's inverse: an estimate with
    // RTT'(a,b) = L_a + L_b reproduces exactly these latencies under MAO
    // when they are all tight.
    lp::RttMatrix estimate(rtt.size());
    for (int a = 0; a < rtt.size(); ++a) {
      for (int b = a + 1; b < rtt.size(); ++b) {
        estimate.Set(a, b, latencies[a] + latencies[b]);
      }
    }
    specs.push_back(harness::ExperimentSpec()
                        .WithTopology("example3")
                        .WithProtocol(harness::Protocol::kHelios0)
                        .WithClients(30)
                        .WithWarmup(bench::Scaled(helios::Seconds(3)))
                        .WithMeasure(bench::Scaled(helios::Seconds(12)))
                        .WithLogInterval(helios::Millis(2))
                        .WithRttEstimate(estimate)
                        .WithLabel("A.2: " + name));
  }
  const std::vector<harness::ExperimentResult> results =
      bench::RunSweepOrDie(specs, args);
  TablePrinter sim_table(
      {"Assignment", "avg latency (ms)", "throughput (ops/s)"});
  for (size_t i = 0; i < assignments.size(); ++i) {
    sim_table.AddRow({assignments[i].first,
                      TablePrinter::Num(results[i].avg_latency_ms, 1),
                      TablePrinter::Num(results[i].total_throughput_ops_s, 0)});
  }
  std::printf("%s", sim_table.ToString().c_str());
  std::printf(
      "\nThe throughput-optimal assignment trades a higher *average* "
      "latency for a\nmuch faster fastest-datacenter, and closed-loop "
      "clients there lift the\ncumulative throughput — the Appendix A.2 "
      "effect.\n");
  return 0;
}
