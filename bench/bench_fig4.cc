// Reproduces Figure 4: cumulative throughput (a), average commit latency
// (b), and abort rate (c) as the number of clients grows from 15 to 285.
//
// The paper's observations to reproduce:
//   - Helios variants converge to a peak of 6000-7000 ops/s (an I/O
//     bottleneck), Helios-0/1 converging earliest;
//   - 2PC/Paxos saturates far lower (<= ~1700-2200 ops/s in our model) and
//     its latency grows steadily from the start (coordinator thrashing);
//   - Replicated Commit's latency stays flat but its throughput trails;
//   - abort rates grow with the client count.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "common/table.h"
#include "harness/experiment.h"

int main(int argc, char** argv) {
  using helios::TablePrinter;
  namespace harness = helios::harness;
  namespace bench = helios::bench;

  const auto args = bench::ParseBenchArgsOrDie(argc, argv);

  std::vector<int> client_counts = {15, 75, 135, 195, 255};
  if (bench::BenchScale() >= 1.0) {
    client_counts = {15, 60, 105, 150, 195, 240, 285};
  }

  // The full protocol x client-count grid, flattened in row-major order;
  // the sweep engine fans it out across --jobs threads.
  std::vector<harness::ExperimentSpec> specs;
  for (harness::Protocol p : bench::AllProtocols()) {
    for (int clients : client_counts) {
      specs.push_back(
          harness::ExperimentSpec()
              .WithProtocol(p)
              .WithClients(clients)
              .WithWarmup(bench::Scaled(helios::Seconds(3)))
              .WithMeasure(bench::Scaled(helios::Seconds(10)))
              .WithLabel(std::string(harness::ProtocolName(p)) + "/" +
                         std::to_string(clients) + " clients"));
    }
  }
  const std::vector<harness::ExperimentResult> flat =
      bench::RunSweepOrDie(specs, args);

  struct Series {
    std::string protocol;
    std::vector<harness::ExperimentResult> points;
  };
  std::vector<Series> series;
  {
    size_t i = 0;
    for (harness::Protocol p : bench::AllProtocols()) {
      Series s;
      s.protocol = harness::ProtocolName(p);
      for (size_t c = 0; c < client_counts.size(); ++c) {
        s.points.push_back(flat[i++]);
      }
      series.push_back(std::move(s));
    }
  }

  std::vector<std::string> header = {"Protocol"};
  for (int c : client_counts) header.push_back(std::to_string(c));

  bench::PrintHeading("Figure 4(a): cumulative throughput (ops/s) vs clients");
  {
    TablePrinter table(header);
    for (const auto& s : series) {
      std::vector<std::string> row = {s.protocol};
      for (const auto& r : s.points) {
        row.push_back(TablePrinter::Num(r.total_throughput_ops_s, 0));
      }
      table.AddRow(std::move(row));
    }
    std::printf("%s", table.ToString().c_str());
  }

  bench::PrintHeading("Figure 4(b): average commit latency (ms) vs clients");
  {
    TablePrinter table(header);
    for (const auto& s : series) {
      std::vector<std::string> row = {s.protocol};
      for (const auto& r : s.points) {
        row.push_back(TablePrinter::Num(r.avg_latency_ms, 0));
      }
      table.AddRow(std::move(row));
    }
    std::printf("%s", table.ToString().c_str());
  }

  bench::PrintHeading("Figure 4(c): abort rate (%) vs clients");
  {
    TablePrinter table(header);
    for (const auto& s : series) {
      std::vector<std::string> row = {s.protocol};
      for (const auto& r : s.points) {
        row.push_back(TablePrinter::Num(100.0 * r.avg_abort_rate, 1));
      }
      table.AddRow(std::move(row));
    }
    std::printf("%s", table.ToString().c_str());
  }

  std::printf(
      "\nPaper reference points: Helios peaks between 6000 and 7000 ops/s\n"
      "(Helios-0/1 converge by ~195 clients, Helios-2/B by ~255); 2PC/Paxos\n"
      "cannot exceed ~1700 ops/s and thrashes past 195 clients; abort rates\n"
      "grow ~0.7%% per 30 clients for the log-based protocols.\n");
  return 0;
}
