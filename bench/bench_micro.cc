// Micro-benchmarks (google-benchmark) for the hot paths of the library:
// replicated-log append/partial-log/ingest, timetable merge, MVCC store
// reads/writes, conflict checks against the preparing pools, lock table
// operations, and the MAO simplex solve.

#include <benchmark/benchmark.h>

#include <vector>

#include "common/random.h"
#include "lp/mao.h"
#include "rdict/replicated_log.h"
#include "store/lock_table.h"
#include "store/mv_store.h"
#include "txn/pool.h"
#include "txn/transaction.h"

namespace helios {
namespace {

TxnBodyPtr MakeBody(DcId dc, uint64_t seq, int keys, Rng& rng,
                    uint64_t key_space) {
  std::vector<ReadEntry> reads;
  std::vector<WriteEntry> writes;
  for (int i = 0; i < keys; ++i) {
    const Key k = "user" + std::to_string(rng.Uniform(key_space));
    if (i % 2 == 0 && !std::any_of(writes.begin(), writes.end(),
                                   [&](const WriteEntry& w) {
                                     return w.key == k;
                                   })) {
      writes.push_back({k, "value"});
    } else {
      reads.push_back({k, 0, TxnId{}});
    }
  }
  if (writes.empty()) writes.push_back({"user0", "v"});
  return MakeTxnBody(TxnId{dc, seq}, std::move(reads), std::move(writes));
}

void BM_RdictAppend(benchmark::State& state) {
  Rng rng(1);
  rdict::ReplicatedLog log(0, 5);
  Timestamp ts = 1;
  uint64_t seq = 1;
  for (auto _ : state) {
    rdict::LogRecord rec;
    rec.type = rdict::RecordType::kPreparing;
    rec.ts = ts++;
    rec.origin = 0;
    rec.body = MakeBody(0, seq++, 5, rng, 50000);
    benchmark::DoNotOptimize(log.AppendLocal(rec));
    if (log.live_records() > 10000) {
      state.PauseTiming();
      log = rdict::ReplicatedLog(0, 5);
      state.ResumeTiming();
    }
  }
}
BENCHMARK(BM_RdictAppend);

void BM_RdictExchangeRoundTrip(benchmark::State& state) {
  const int records = static_cast<int>(state.range(0));
  Rng rng(2);
  for (auto _ : state) {
    state.PauseTiming();
    rdict::ReplicatedLog a(0, 3);
    rdict::ReplicatedLog b(1, 3);
    for (int i = 0; i < records; ++i) {
      rdict::LogRecord rec;
      rec.type = rdict::RecordType::kPreparing;
      rec.ts = i + 1;
      rec.origin = 0;
      rec.body = MakeBody(0, static_cast<uint64_t>(i), 5, rng, 50000);
      (void)a.AppendLocal(rec);
    }
    state.ResumeTiming();
    auto msg = a.BuildMessageFor(1);
    benchmark::DoNotOptimize(b.Ingest(msg));
    auto back = b.BuildMessageFor(0);
    benchmark::DoNotOptimize(a.Ingest(back));
  }
  state.SetItemsProcessed(state.iterations() * records);
}
BENCHMARK(BM_RdictExchangeRoundTrip)->Arg(16)->Arg(256)->Arg(2048);

void BM_TimetableMerge(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  rdict::Timetable a(n);
  rdict::Timetable b(n);
  Rng rng(3);
  for (DcId i = 0; i < n; ++i) {
    for (DcId j = 0; j < n; ++j) {
      a.Set(i, j, static_cast<Timestamp>(rng.Uniform(1000)));
      b.Set(i, j, static_cast<Timestamp>(rng.Uniform(1000)));
    }
  }
  for (auto _ : state) {
    a.MergeFrom(b, 0, 1);
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_TimetableMerge)->Arg(5)->Arg(16)->Arg(64);

void BM_MvStoreWrite(benchmark::State& state) {
  MvStore store;
  Rng rng(4);
  Timestamp ts = 1;
  for (auto _ : state) {
    const Key k = "user" + std::to_string(rng.Uniform(50000));
    store.ApplyWrite(k, "value", ts++, TxnId{0, static_cast<uint64_t>(ts)});
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MvStoreWrite);

void BM_MvStoreRead(benchmark::State& state) {
  MvStore store;
  Rng rng(5);
  for (int i = 0; i < 50000; ++i) {
    store.ApplyWrite("user" + std::to_string(i), "value", i + 1,
                     TxnId{0, static_cast<uint64_t>(i)});
  }
  for (auto _ : state) {
    const Key k = "user" + std::to_string(rng.Uniform(50000));
    benchmark::DoNotOptimize(store.Read(k));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MvStoreRead);

void BM_PoolConflictCheck(benchmark::State& state) {
  const int pool_size = static_cast<int>(state.range(0));
  Rng rng(6);
  TxnPool pool;
  for (int i = 0; i < pool_size; ++i) {
    pool.Add(MakeBody(0, static_cast<uint64_t>(i), 5, rng, 50000));
  }
  uint64_t seq = 1000000;
  for (auto _ : state) {
    auto probe = MakeBody(1, seq++, 5, rng, 50000);
    benchmark::DoNotOptimize(pool.ConflictingWriters(*probe));
    benchmark::DoNotOptimize(pool.Victims(*probe));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PoolConflictCheck)->Arg(16)->Arg(256)->Arg(4096);

void BM_LockTableAcquireRelease(benchmark::State& state) {
  LockTable table(LockPolicy::kNoWait);
  Rng rng(7);
  uint64_t seq = 1;
  for (auto _ : state) {
    const TxnId txn{0, seq++};
    for (int i = 0; i < 5; ++i) {
      const Key k = "user" + std::to_string(rng.Uniform(50000));
      table.Acquire(k, i % 2 ? LockMode::kShared : LockMode::kExclusive, txn,
                    static_cast<Timestamp>(seq), [](Status) {});
    }
    table.ReleaseAll(txn);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LockTableAcquireRelease);

void BM_MaoSolve(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(8);
  lp::RttMatrix rtt(n);
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      rtt.Set(a, b, 20.0 + static_cast<double>(rng.Uniform(250)));
    }
  }
  for (auto _ : state) {
    auto sol = lp::SolveMao(rtt);
    benchmark::DoNotOptimize(sol);
  }
}
BENCHMARK(BM_MaoSolve)->Arg(5)->Arg(10)->Arg(20);

}  // namespace
}  // namespace helios

BENCHMARK_MAIN();
