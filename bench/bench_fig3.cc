// Reproduces Figure 3: per-datacenter commit latency (a), throughput (b),
// and abort rate (c) for Helios-0/1/2, Helios-B, Message Futures,
// Replicated Commit, and 2PC/Paxos with 60 clients on the Table 2
// five-datacenter topology, alongside the calculated optimal (MAO)
// latencies.
//
// Also prints the Lemma 1 check: for every pair of datacenters the sum of
// measured Helios commit latencies must be at least the RTT between them
// (it exceeds it by the compute/network overheads).

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "common/table.h"
#include "harness/experiment.h"

int main(int argc, char** argv) {
  using helios::TablePrinter;
  namespace harness = helios::harness;
  namespace bench = helios::bench;

  const auto args = bench::ParseBenchArgsOrDie(argc, argv);
  const auto topo = harness::Table2Topology();
  const int n = topo.size();

  std::vector<harness::ExperimentSpec> specs;
  for (harness::Protocol p : bench::AllProtocols()) {
    specs.push_back(bench::Fig3Spec(p));
  }
  const std::vector<harness::ExperimentResult> results =
      bench::RunSweepOrDie(specs, args);

  std::vector<std::string> header = {"Protocol"};
  for (const auto& name : topo.names) header.push_back(name);
  header.push_back("Avg");

  // --- (a) commit latency ---------------------------------------------------
  bench::PrintHeading(
      "Figure 3(a): commit latency, ms (60 clients, 5 datacenters)");
  {
    TablePrinter table(header);
    const auto& optimal = results.front().optimal_latency_ms;
    std::vector<std::string> opt_row = {"Optimal (MAO)"};
    for (double l : optimal) opt_row.push_back(TablePrinter::Num(l, 0));
    opt_row.push_back(
        TablePrinter::Num(results.front().optimal_avg_latency_ms, 1));
    table.AddRow(std::move(opt_row));
    table.AddSeparator();
    for (const auto& r : results) {
      std::vector<std::string> row = {r.protocol};
      for (const auto& dc : r.per_dc) {
        row.push_back(TablePrinter::MeanStd(dc.latency_mean_ms,
                                            dc.latency_stddev_ms));
      }
      row.push_back(TablePrinter::Num(r.avg_latency_ms, 1));
      table.AddRow(std::move(row));
    }
    std::printf("%s", table.ToString().c_str());
  }

  // --- (b) throughput ---------------------------------------------------------
  bench::PrintHeading("Figure 3(b): throughput, operations/sec");
  {
    TablePrinter table(header);
    for (const auto& r : results) {
      std::vector<std::string> row = {r.protocol};
      for (const auto& dc : r.per_dc) {
        row.push_back(TablePrinter::Num(dc.throughput_ops_s, 0));
      }
      row.push_back(TablePrinter::Num(r.total_throughput_ops_s, 0));
      table.AddRow(std::move(row));
    }
    std::printf("%s", table.ToString().c_str());
  }

  // --- (c) abort rate ----------------------------------------------------------
  bench::PrintHeading("Figure 3(c): abort rate, %");
  {
    TablePrinter table(header);
    for (const auto& r : results) {
      std::vector<std::string> row = {r.protocol};
      for (const auto& dc : r.per_dc) {
        row.push_back(TablePrinter::Num(100.0 * dc.abort_rate, 2));
      }
      row.push_back(TablePrinter::Num(100.0 * r.avg_abort_rate, 2));
      table.AddRow(std::move(row));
    }
    std::printf("%s", table.ToString().c_str());
  }

  // --- Lemma 1 sanity over the measured Helios-0 latencies ---------------------
  bench::PrintHeading("Lemma 1 check on measured Helios-0 latencies");
  {
    const auto& h0 = results.front();
    bool ok = true;
    for (int a = 0; a < n; ++a) {
      for (int b = a + 1; b < n; ++b) {
        const double sum = h0.per_dc[a].latency_mean_ms +
                           h0.per_dc[b].latency_mean_ms;
        const double rtt = topo.rtt_ms.Get(a, b);
        if (sum < rtt) {
          ok = false;
          std::printf("VIOLATION: L(%s)+L(%s) = %.1f < RTT %.1f\n",
                      topo.names[a].c_str(), topo.names[b].c_str(), sum, rtt);
        }
      }
    }
    if (ok) {
      std::printf(
          "OK: L_a + L_b >= RTT(a, b) for all 10 datacenter pairs (the "
          "measured\nlatencies respect the lower bound, as Lemma 1 "
          "requires of any correct protocol).\n");
    }
  }

  std::printf(
      "\nPaper reference points: optimal latencies 69/10/10/166/200 "
      "(avg 91);\nHelios-0 within 7-54ms of optimal; Message Futures "
      "overhead +17ms (I) to +181ms (S);\n2PC/Paxos avg +99ms over "
      "Helios-2; Helios-B avg +12.2ms over Helios-0;\nHelios-2 throughput "
      "37%% below Helios-0; RC/2PC throughput 56-57%% below Helios-2.\n");
  return 0;
}
