// Shared plumbing for the figure/table benches: experiment durations
// (overridable through HELIOS_BENCH_SCALE for quick runs), the standard
// protocol lineup, and table formatting helpers.
//
// Every bench prints the rows/series of one table or figure of the paper;
// EXPERIMENTS.md records the paper-reported values next to ours.

#ifndef HELIOS_BENCH_BENCH_COMMON_H_
#define HELIOS_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/table.h"
#include "harness/experiment.h"

namespace helios::bench {

/// Scale factor for measurement windows. HELIOS_BENCH_SCALE=0.2 runs ~5x
/// faster (noisier); default 1.0.
inline double BenchScale() {
  const char* env = std::getenv("HELIOS_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  const double v = std::atof(env);
  return v > 0.0 ? v : 1.0;
}

inline Duration Scaled(Duration d) {
  return static_cast<Duration>(static_cast<double>(d) * BenchScale());
}

/// The paper's Figure 3/4 lineup.
inline std::vector<harness::Protocol> AllProtocols() {
  return {harness::Protocol::kHelios0,      harness::Protocol::kHelios1,
          harness::Protocol::kHelios2,      harness::Protocol::kHeliosB,
          harness::Protocol::kMessageFutures,
          harness::Protocol::kReplicatedCommit,
          harness::Protocol::kTwoPcPaxos};
}

/// Standard Figure 3 configuration: Table 2 topology, 60 clients.
inline harness::ExperimentConfig Fig3Config(harness::Protocol p) {
  harness::ExperimentConfig cfg;
  cfg.protocol = p;
  cfg.total_clients = 60;
  cfg.warmup = Scaled(Seconds(4));
  cfg.measure = Scaled(Seconds(20));
  return cfg;
}

inline void PrintHeading(const std::string& title) {
  std::printf("\n=== %s ===\n\n", title.c_str());
}

}  // namespace helios::bench

#endif  // HELIOS_BENCH_BENCH_COMMON_H_
