// Shared plumbing for the figure/table benches: experiment durations
// (overridable through HELIOS_BENCH_SCALE for quick runs), the standard
// protocol lineup, table formatting helpers, and the common CLI
// (--jobs=N for the parallel sweep engine, --json_out= for the
// deterministic results document).
//
// Every bench prints the rows/series of one table or figure of the paper;
// EXPERIMENTS.md records the paper-reported values next to ours. The
// experiment grids themselves are declared as harness::ExperimentSpec
// vectors and executed through harness::SweepRunner, so a bench's
// wall-clock is O(longest run x grid/cores) instead of O(sum of runs).

#ifndef HELIOS_BENCH_BENCH_COMMON_H_
#define HELIOS_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/table.h"
#include "harness/cli.h"
#include "harness/experiment.h"
#include "harness/experiment_spec.h"
#include "harness/job_pool.h"
#include "harness/sweep.h"

namespace helios::bench {

/// Parses a HELIOS_BENCH_SCALE value. Returns the parsed scale clamped to
/// [0.01, 100], or `fallback` when `text` is null, empty, not a full
/// number (e.g. the comma-decimal typo "0,2"), or not strictly positive.
/// strtod with end-pointer checking — atof would silently turn garbage
/// into 0 and mask the typo.
inline double ParseBenchScale(const char* text, double fallback = 1.0) {
  if (text == nullptr || *text == '\0') return fallback;
  char* end = nullptr;
  const double v = std::strtod(text, &end);
  if (end == text || *end != '\0' || !(v > 0.0)) {
    std::fprintf(stderr,
                 "warning: ignoring invalid HELIOS_BENCH_SCALE=\"%s\" "
                 "(expected a positive number), using %.2f\n",
                 text, fallback);
    return fallback;
  }
  if (v < 0.01) return 0.01;
  if (v > 100.0) return 100.0;
  return v;
}

/// Scale factor for measurement windows. HELIOS_BENCH_SCALE=0.2 runs ~5x
/// faster (noisier); default 1.0.
inline double BenchScale() {
  return ParseBenchScale(std::getenv("HELIOS_BENCH_SCALE"));
}

inline Duration Scaled(Duration d) {
  return static_cast<Duration>(static_cast<double>(d) * BenchScale());
}

/// The paper's Figure 3/4 lineup.
inline std::vector<harness::Protocol> AllProtocols() {
  return {harness::Protocol::kHelios0,      harness::Protocol::kHelios1,
          harness::Protocol::kHelios2,      harness::Protocol::kHeliosB,
          harness::Protocol::kMessageFutures,
          harness::Protocol::kReplicatedCommit,
          harness::Protocol::kTwoPcPaxos};
}

/// Standard Figure 3 configuration: Table 2 topology, 60 clients.
inline harness::ExperimentSpec Fig3Spec(harness::Protocol p) {
  return harness::ExperimentSpec()
      .WithProtocol(p)
      .WithClients(60)
      .WithWarmup(Scaled(Seconds(4)))
      .WithMeasure(Scaled(Seconds(20)))
      .WithLabel(harness::ProtocolName(p));
}

inline void PrintHeading(const std::string& title) {
  std::printf("\n=== %s ===\n\n", title.c_str());
}

/// Common bench CLI: --jobs=N and --json_out=PATH.
struct BenchArgs {
  int jobs = 1;
  std::string json_out;
};

/// Parses the common flags (harness::cli spellings: --jobs, --json_out);
/// prints usage and exits on error or --help.
inline BenchArgs ParseBenchArgsOrDie(int argc, char** argv) {
  FlagSet flags;
  harness::cli::AddCommonFlags(&flags, /*default_jobs=*/1);
  harness::cli::ParseOrExit(&flags, argc, argv);
  BenchArgs args;
  args.jobs = static_cast<int>(flags.GetInt("jobs"));
  args.json_out = flags.GetString("json_out");
  return args;
}

/// Runs `specs` through the sweep engine with progress on stderr, writes
/// --json_out if requested, and returns the results in spec order. Exits
/// with a diagnostic if any job fails — benches have no recovery path.
inline std::vector<harness::ExperimentResult> RunSweepOrDie(
    const std::vector<harness::ExperimentSpec>& specs, const BenchArgs& args) {
  harness::SweepOptions options;
  options.jobs = args.jobs;
  options.progress = [](const harness::SweepProgress& p) {
    std::fprintf(stderr, "[%d/%d] %s (%.1fs elapsed, eta %.0fs)\n", p.done,
                 p.total, p.last_label.c_str(), p.elapsed_seconds,
                 p.eta_seconds);
  };
  harness::SweepRunner runner(options);
  const harness::SweepResult sweep = runner.Run(specs);
  std::fprintf(stderr, "sweep (%d thread%s): %s\n",
               harness::ResolveJobCount(args.jobs),
               harness::ResolveJobCount(args.jobs) == 1 ? "" : "s",
               sweep.TimingSummary().c_str());
  if (!args.json_out.empty()) {
    const Status st = sweep.WriteJsonFile(args.json_out);
    if (!st.ok()) {
      std::fprintf(stderr, "failed to write %s: %s\n", args.json_out.c_str(),
                   st.ToString().c_str());
      std::exit(1);
    }
    std::fprintf(stderr, "sweep JSON: %s\n", args.json_out.c_str());
  }
  if (!sweep.status().ok()) {
    std::fprintf(stderr, "sweep failed: %s\n",
                 sweep.status().ToString().c_str());
    std::exit(1);
  }
  std::vector<harness::ExperimentResult> results;
  results.reserve(sweep.jobs.size());
  for (const harness::SweepJobResult& job : sweep.jobs) {
    results.push_back(job.result);
  }
  return results;
}

}  // namespace helios::bench

#endif  // HELIOS_BENCH_BENCH_COMMON_H_
