// Reproduces Figure 6 and the Appendix A.2 liveness trade-off: the cost of
// tolerating f datacenter outages.
//
// Part 1 — the Figure 6 timeline: one transaction, identical conditions,
// committed under Helios-0/1/2. Its commit time only grows with f:
// c(t) <= c1(t) <= c2(t).
//
// Part 2 — per-datacenter latency overhead of Helios-1/2 over Helios-0 on
// the Table 2 topology (the paper: 0-1ms overhead for V/O going 0->1,
// 9-10ms elsewhere; 0 to 27-40ms going 1->2).
//
// Part 3 — an actual outage: Helios-1 keeps committing when Singapore
// fails (after a grace-time lull) while Helios-0 blocks; after recovery,
// latency returns to normal.

#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "bench/bench_common.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/helios_cluster.h"
#include "harness/experiment.h"
#include "harness/topology.h"
#include "sim/network.h"
#include "sim/scheduler.h"

namespace {

using helios::Duration;
using helios::Millis;
using helios::Seconds;
using helios::TablePrinter;
namespace core = helios::core;
namespace sim = helios::sim;
namespace harness = helios::harness;
namespace bench = helios::bench;

// Part 1: commit latency of a single, uncontended transaction under f.
void SingleTransactionTimeline() {
  bench::PrintHeading(
      "Figure 6: one transaction's commit time under Helios-0/1/2 "
      "(3 DCs, RTT 30/20/40)");
  TablePrinter table({"Variant", "commit time (ms after request)"});
  double previous = 0.0;
  for (int f = 0; f <= 2; ++f) {
    sim::Scheduler scheduler;
    sim::Network network(&scheduler, 3, 5);
    const auto topo = harness::PaperExampleTopology();
    harness::ConfigureNetwork(topo, &network);
    core::HeliosConfig cfg;
    cfg.num_datacenters = 3;
    cfg.fault_tolerance = f;
    cfg.log_interval = Millis(2);
    cfg.grace_time = Millis(500);
    core::HeliosCluster cluster(&scheduler, &network, std::move(cfg));
    cluster.Start();

    double latency_ms = -1.0;
    scheduler.At(Millis(100), [&] {
      const sim::SimTime start = scheduler.Now();
      cluster.ClientCommit(0, {}, {{"x", "v"}},
                           [&, start](const helios::CommitOutcome& o) {
                             if (o.committed) {
                               latency_ms =
                                   helios::ToMillis(scheduler.Now() - start);
                             }
                           });
    });
    scheduler.RunUntil(Seconds(5));
    table.AddRow({"Helios-" + std::to_string(f),
                  TablePrinter::Num(latency_ms, 2)});
    if (latency_ms + 1e-9 < previous) {
      std::printf("ERROR: commit time decreased with higher liveness!\n");
    }
    previous = latency_ms;
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("c(t) <= c1(t) <= c2(t), as in Figure 6.\n");
}

// Part 2: liveness overhead on the Table 2 topology.
void LivenessOverheadTable(const bench::BenchArgs& args) {
  bench::PrintHeading(
      "Liveness overhead: per-DC commit latency delta vs Helios-0 (ms)");
  std::vector<harness::ExperimentSpec> specs;
  for (harness::Protocol p :
       {harness::Protocol::kHelios0, harness::Protocol::kHelios1,
        harness::Protocol::kHelios2}) {
    specs.push_back(bench::Fig3Spec(p).WithMeasure(bench::Scaled(Seconds(12))));
  }
  const std::vector<harness::ExperimentResult> results =
      bench::RunSweepOrDie(specs, args);
  const auto topo = harness::Table2Topology();
  std::vector<std::string> header = {"Variant"};
  for (const auto& name : topo.names) header.push_back(name);
  TablePrinter table(header);
  for (size_t i = 0; i < results.size(); ++i) {
    std::vector<std::string> row = {results[i].protocol};
    for (size_t dc = 0; dc < results[i].per_dc.size(); ++dc) {
      const double delta = results[i].per_dc[dc].latency_mean_ms -
                           results[0].per_dc[dc].latency_mean_ms;
      row.push_back(i == 0
                        ? TablePrinter::Num(
                              results[0].per_dc[dc].latency_mean_ms, 1)
                        : ((delta >= 0 ? "+" : "") +
                           TablePrinter::Num(delta, 1)));
    }
    table.AddRow(std::move(row));
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "(Row Helios-0 shows absolute latency; others show the overhead of "
      "waiting for\n1 or 2 grace-time acknowledgments. Datacenters whose "
      "commit latency already\nexceeds the RTT to their nearest peers pay "
      "little — the paper's V/O behaviour.)\n");
}

// Part 3: a real outage, 1-second latency buckets around it.
void OutageTimeline(int f) {
  sim::Scheduler scheduler;
  sim::Network network(&scheduler, 5, 17);
  const auto topo = harness::Table2Topology();
  harness::ConfigureNetwork(topo, &network);
  core::HeliosConfig cfg;
  cfg.num_datacenters = 5;
  cfg.fault_tolerance = f;
  cfg.grace_time = Millis(400);
  cfg.commit_offsets = harness::PlanCommitOffsets(topo, std::nullopt);
  core::HeliosCluster cluster(&scheduler, &network, std::move(cfg));
  for (int k = 0; k < 200; ++k) {
    cluster.LoadInitialAll("k" + std::to_string(k), "v");
  }
  cluster.Start();

  // Per-second buckets of commit latency at Virginia, plus commit counts.
  std::map<int, helios::StatAccumulator> buckets;
  std::map<int, int> commits_per_s;
  auto loop = std::make_shared<std::function<void(int)>>();
  auto rng = std::make_shared<helios::Rng>(23);
  *loop = [&, loop, rng](int client) {
    const sim::SimTime start = scheduler.Now();
    const std::string key =
        "k" + std::to_string(rng->Uniform(200));
    cluster.ClientCommit(0, {}, {{key, "v"}},
                         [&, loop, start, client](const helios::CommitOutcome& o) {
                           const int second =
                               static_cast<int>(start / Seconds(1));
                           if (o.committed) {
                             buckets[second].Add(
                                 helios::ToMillis(scheduler.Now() - start));
                             commits_per_s[second]++;
                           }
                           if (scheduler.Now() < Seconds(30)) {
                             (*loop)(client);
                           }
                         });
  };
  for (int c = 0; c < 4; ++c) {
    scheduler.At(Millis(c), [loop, c] { (*loop)(c); });
  }
  scheduler.At(Seconds(10), [&] { cluster.CrashDatacenter(4); });
  scheduler.At(Seconds(20), [&] { cluster.RecoverDatacenter(4); });
  scheduler.RunUntil(Seconds(33));

  TablePrinter table({"second", "commits", "avg latency (ms)"});
  for (int s = 7; s <= 25; ++s) {
    std::string note;
    if (s == 10) note = "  <- Singapore crashes";
    if (s == 20) note = "  <- Singapore recovers";
    table.AddRow({std::to_string(s), std::to_string(commits_per_s[s]),
                  TablePrinter::Num(buckets[s].mean(), 1) + note});
  }
  std::printf("%s", table.ToString().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::ParseBenchArgsOrDie(argc, argv);
  SingleTransactionTimeline();
  LivenessOverheadTable(args);

  bench::PrintHeading(
      "Outage timeline, Helios-1 @ Virginia (Singapore down 10s-20s)");
  OutageTimeline(1);
  std::printf(
      "\nWith f=1 Virginia stalls for about one grace time when Singapore "
      "dies, then\ncontinues committing using the inferred eta bound "
      "(Rule 3) at a ~GT-higher\nlatency, and returns to normal after "
      "recovery. Helios-0 in the same scenario\nwould block entirely "
      "(see tests/helios_test.cc, Helios0BlocksWhenADatacenterFails).\n");
  return 0;
}
