// Reproduces Appendix A.1: the analytic decomposition of Helios's
// observable commit latency (Eqs. 6-8), validated against the simulator.
//
// For each Figure 5 scenario the bench prints, per datacenter, the
// latency the analytic model predicts (planned latency + clock-skew term +
// half the RTT-estimation error + a calibrated constant overhead) next to
// the latency the full simulation measures.

#include <cstdio>
#include <optional>
#include <vector>

#include "bench/bench_common.h"
#include "common/table.h"
#include "harness/experiment.h"
#include "lp/latency_model.h"

int main(int argc, char** argv) {
  using helios::Duration;
  using helios::Millis;
  using helios::TablePrinter;
  using helios::ToMillis;
  namespace harness = helios::harness;
  namespace bench = helios::bench;
  namespace lp = helios::lp;

  const auto args = bench::ParseBenchArgsOrDie(argc, argv);
  const auto topo = harness::Table2Topology();

  struct Scenario {
    std::string name;
    std::vector<Duration> clock_offsets;
    std::optional<lp::RttMatrix> estimate;
  };
  lp::RttMatrix zero_estimate(topo.size());
  const std::vector<Scenario> scenarios = {
      {"synchronized", {}, std::nullopt},
      {"V +100ms", {Millis(100), 0, 0, 0, 0}, std::nullopt},
      {"skew {+24,-60,+120,-10,+55}",
       {Millis(24), -Millis(60), Millis(120), -Millis(10), Millis(55)},
       std::nullopt},
      {"RTT estimate all-zero", {}, zero_estimate},
  };

  std::vector<harness::ExperimentSpec> specs;
  for (const auto& s : scenarios) {
    harness::ExperimentSpec spec =
        bench::Fig3Spec(harness::Protocol::kHelios0)
            .WithMeasure(bench::Scaled(helios::Seconds(10)))
            .WithClockOffsets(s.clock_offsets)
            .WithLabel("A.1: " + s.name);
    if (s.estimate.has_value()) spec.WithRttEstimate(*s.estimate);
    specs.push_back(std::move(spec));
  }
  const std::vector<harness::ExperimentResult> results =
      bench::RunSweepOrDie(specs, args);

  bench::PrintHeading(
      "Appendix A.1: analytic latency model (Eq. 7) vs simulation, "
      "Helios-0, ms");

  // Calibrate the constant compute/propagation overhead (C_local +
  // C_remote + log-interval quantization) from the synchronized run.
  double overhead_ms = 0.0;

  for (size_t si = 0; si < scenarios.size(); ++si) {
    const auto& s = scenarios[si];
    const auto& measured = results[si];

    std::vector<double> skew_ms;
    for (Duration d : s.clock_offsets) skew_ms.push_back(ToMillis(d));
    const lp::RttMatrix& estimate =
        s.estimate.has_value() ? *s.estimate : topo.rtt_ms;
    if (overhead_ms == 0.0) {
      // First (synchronized) scenario: derive the overhead as the mean gap
      // between measurement and the raw Eq. 7 prediction.
      const auto raw =
          lp::PredictLatenciesFromEstimate(topo.rtt_ms, estimate, skew_ms, 0);
      double gap = 0.0;
      for (size_t dc = 0; dc < 5; ++dc) {
        gap += measured.per_dc[dc].latency_mean_ms - raw.latency_ms[dc];
      }
      overhead_ms = gap / 5.0;
      std::printf("calibrated constant overhead (C_local + C_remote): %.1fms\n\n",
                  overhead_ms);
    }
    const auto pred = lp::PredictLatenciesFromEstimate(
        topo.rtt_ms, estimate, skew_ms, overhead_ms);

    TablePrinter table({"  " + s.name, "V", "O", "C", "I", "S", "Avg"});
    std::vector<std::string> mrow = {"measured"};
    std::vector<std::string> prow = {"predicted (Eq. 7)"};
    std::vector<std::string> drow = {"error"};
    double pred_avg = 0.0;
    for (size_t dc = 0; dc < 5; ++dc) {
      const double m = measured.per_dc[dc].latency_mean_ms;
      const double p = pred.latency_ms[dc];
      pred_avg += p / 5.0;
      mrow.push_back(TablePrinter::Num(m, 1));
      prow.push_back(TablePrinter::Num(p, 1));
      drow.push_back(((m - p) >= 0 ? "+" : "") + TablePrinter::Num(m - p, 1));
    }
    mrow.push_back(TablePrinter::Num(measured.avg_latency_ms, 1));
    prow.push_back(TablePrinter::Num(pred_avg, 1));
    drow.push_back(((measured.avg_latency_ms - pred_avg) >= 0 ? "+" : "") +
                   TablePrinter::Num(measured.avg_latency_ms - pred_avg, 1));
    table.AddRow(std::move(mrow));
    table.AddRow(std::move(prow));
    table.AddRow(std::move(drow));
    std::printf("%s\n", table.ToString().c_str());
  }

  std::printf(
      "The per-datacenter measurements track Eq. 7's prediction: skew "
      "enters through\nmax_B theta(A,B), estimation error through rho/2, "
      "and everything else is a\nroughly constant compute overhead — "
      "Appendix A.1's decomposition.\n");
  return 0;
}
