// Reproduces Table 1: achievable commit latencies for the three-datacenter
// example of Section 3.2 (RTT(A,B)=30, RTT(A,C)=20, RTT(B,C)=40) under
// Master/Slave (A or C master), Majority, and the Minimum Average Optimal
// assignment from the Problem 1 linear program.
//
// Paper values: 16.67 / 20 / 23.33 / 15 (averages).

#include <cstdio>

#include "bench/bench_common.h"
#include "common/table.h"
#include "harness/topology.h"
#include "lp/mao.h"

int main() {
  using helios::TablePrinter;
  namespace lp = helios::lp;

  helios::bench::PrintHeading(
      "Table 1: commit latencies for RTT(A,B)=30, RTT(A,C)=20, RTT(B,C)=40");

  const auto topo = helios::harness::PaperExampleTopology();
  const lp::RttMatrix& rtt = topo.rtt_ms;

  TablePrinter table({"Protocol", "L_A", "L_B", "L_C", "Average"});
  auto add = [&](const std::string& name, const std::vector<double>& l) {
    table.AddRow({name, TablePrinter::Num(l[0], 2), TablePrinter::Num(l[1], 2),
                  TablePrinter::Num(l[2], 2),
                  TablePrinter::Num(lp::AverageLatency(l), 2)});
    if (!lp::SatisfiesLowerBound(rtt, l)) {
      std::printf("ERROR: %s violates the Lemma 1 lower bound!\n",
                  name.c_str());
    }
  };

  add("Master/Slave (A master)", lp::MasterSlaveLatencies(rtt, 0));
  add("Master/Slave (C master)", lp::MasterSlaveLatencies(rtt, 2));
  add("Majority", lp::MajorityLatencies(rtt));
  auto mao = lp::SolveMao(rtt);
  if (!mao.ok()) {
    std::printf("MAO solve failed: %s\n", mao.status().ToString().c_str());
    return 1;
  }
  add("Optimal (MAO)", mao.value());

  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nPaper Table 1 averages: 16.67, 20, 23.33, 15.\n"
      "Every row satisfies Lemma 1 (L_a + L_b >= RTT(a,b) for all pairs).\n");
  return 0;
}
