// Mutation smoke test: proves the fuzzer finds real ordering bugs.
//
// HELIOS_CHECK_MUTATION=skip_commit_wait makes HeliosNode skip the
// Section 3 commit wait — transactions reply to clients before their
// serialization position is stable, which breaks serializability under
// contention. This test arms the mutation, fuzzes a handful of
// high-contention Helios-0 scenarios, and asserts that (a) the oracles
// catch the bug within a bounded scenario budget and (b) the shrinker
// minimizes the failing scenario to a small deterministic repro that
// round-trips through JSON.
//
// This is a separate binary (not part of check_test): the mutation env
// var is latched on first use inside the core, so it must be set before
// any cluster exists in the process.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "check/runner.h"
#include "check/scenario_gen.h"
#include "check/shrink.h"
#include "harness/experiment_spec.h"

namespace helios::check {
namespace {

namespace hns = helios::harness;

class MutationEnv : public ::testing::Environment {
 public:
  void SetUp() override {
    ASSERT_EQ(setenv("HELIOS_CHECK_MUTATION", "skip_commit_wait", 1), 0);
  }
};

const auto* const kEnv =
    ::testing::AddGlobalTestEnvironment(new MutationEnv);

/// High-contention, fault-free Helios-0 scenarios: with f = 0 the commit
/// wait is the ONLY thing ordering concurrent conflicting commits, so the
/// mutation manifests quickly.
GeneratorOptions MutationHuntOptions() {
  GeneratorOptions options;
  options.protocols = {hns::Protocol::kHelios0};
  options.crashes = false;
  options.partitions = false;
  options.message_faults = false;
  options.min_clients = 4;
  options.max_clients = 8;
  options.min_keys = 16;
  options.max_keys = 32;
  options.min_write_fraction = 0.7;
  options.max_write_fraction = 0.9;
  return options;
}

TEST(CheckMutation, FuzzerCatchesSkippedCommitWaitAndShrinksIt) {
  const ScenarioGenerator generator(MutationHuntOptions());

  constexpr uint64_t kBudget = 20;  // Scenario budget; typically hits at 0-2.
  hns::ExperimentSpec failing;
  std::string oracle;
  for (uint64_t i = 0; i < kBudget; ++i) {
    const hns::ExperimentSpec spec = generator.Scenario(i);
    const ScenarioVerdict verdict = RunScenario(spec);
    if (!verdict.ok()) {
      failing = spec;
      oracle = verdict.report.FirstFailureName();
      break;
    }
  }
  ASSERT_FALSE(oracle.empty())
      << "the skip_commit_wait mutation survived " << kBudget
      << " high-contention scenarios — the oracles are blind to it";
  EXPECT_EQ(oracle, "serializability");

  ShrinkOptions options;
  options.max_runs = 40;
  const ShrinkResult shrunk = Shrink(failing, options);
  ASSERT_EQ(shrunk.oracle, oracle);
  EXPECT_LE(shrunk.runs, options.max_runs);
  // The acceptance bar: a repro with at most 3 fault-plan events (this
  // hunt is fault-free, so 0) that still fails deterministically.
  EXPECT_LE(shrunk.fault_events, 3);

  // The shrunk spec round-trips through JSON and still reproduces.
  const auto parsed = hns::ExperimentSpec::FromJson(shrunk.spec.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_TRUE(parsed.value() == shrunk.spec);
  const ScenarioVerdict replay = RunScenario(parsed.value());
  EXPECT_EQ(replay.report.FirstFailureName(), oracle)
      << replay.report.Summary();
}

}  // namespace
}  // namespace helios::check
