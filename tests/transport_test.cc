// Tests for the live deployment stack: the real-time loop, the TCP
// transport, and full LiveDatacenter clusters committing over actual
// sockets with wire-serialized envelopes.

#include <gtest/gtest.h>
#include <fcntl.h>
#include <pthread.h>
#include <signal.h>
#include <sys/socket.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "core/history.h"
#include "transport/io_util.h"
#include "transport/live_datacenter.h"
#include "transport/realtime_loop.h"
#include "transport/tcp_transport.h"

namespace helios::transport {
namespace {

using namespace std::chrono_literals;

TEST(RealtimeLoopTest, PostRunsOnLoopThread) {
  RealtimeLoop loop;
  loop.Start();
  std::atomic<bool> ran{false};
  std::thread::id loop_thread;
  loop.PostAndWait([&]() {
    ran = true;
    loop_thread = std::this_thread::get_id();
  });
  EXPECT_TRUE(ran.load());
  EXPECT_NE(loop_thread, std::this_thread::get_id());
  loop.Stop();
}

TEST(RealtimeLoopTest, ScheduledEventsFireNearWallTime) {
  RealtimeLoop loop;
  loop.Start();
  std::promise<Duration> fired;
  const auto start = std::chrono::steady_clock::now();
  loop.Post([&]() {
    loop.scheduler().After(Millis(50), [&]() {
      fired.set_value(std::chrono::duration_cast<std::chrono::microseconds>(
                          std::chrono::steady_clock::now() - start)
                          .count());
    });
  });
  const Duration elapsed = fired.get_future().get();
  EXPECT_GE(elapsed, Millis(45));
  EXPECT_LE(elapsed, Millis(250));  // Generous: CI machines can stall.
  loop.Stop();
}

TEST(RealtimeLoopTest, StopIsIdempotentAndJoins) {
  RealtimeLoop loop;
  loop.Start();
  loop.Post([]() {});
  loop.Stop();
  loop.Stop();
  SUCCEED();
}

TEST(RealtimeLoopTest, ManyPostsAllRunInOrder) {
  RealtimeLoop loop;
  loop.Start();
  std::vector<int> order;
  for (int i = 0; i < 100; ++i) {
    loop.Post([&order, i]() { order.push_back(i); });
  }
  loop.PostAndWait([]() {});
  ASSERT_EQ(order.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[i], i);
  loop.Stop();
}

TEST(TcpTransportTest, SendReceiveRoundTrip) {
  std::promise<std::vector<uint8_t>> received;
  TcpTransport server([&](std::vector<uint8_t> payload) {
    received.set_value(std::move(payload));
  });
  ASSERT_TRUE(server.Listen(0).ok());
  ASSERT_GT(server.port(), 0);

  TcpTransport client([](std::vector<uint8_t>) {});
  ASSERT_TRUE(client.Connect(0, server.port()).ok());
  const std::vector<uint8_t> msg = {1, 2, 3, 250, 251};
  ASSERT_TRUE(client.Send(0, msg).ok());

  auto future = received.get_future();
  ASSERT_EQ(future.wait_for(5s), std::future_status::ready);
  EXPECT_EQ(future.get(), msg);
  EXPECT_EQ(client.messages_sent(), 1u);
  client.Shutdown();
  server.Shutdown();
}

TEST(TcpTransportTest, ManyMessagesArriveInOrder) {
  std::mutex mu;
  std::vector<uint32_t> got;
  std::promise<void> all;
  TcpTransport server([&](std::vector<uint8_t> payload) {
    ASSERT_EQ(payload.size(), 4u);
    std::lock_guard<std::mutex> lock(mu);
    got.push_back(static_cast<uint32_t>(payload[0]) |
                  static_cast<uint32_t>(payload[1]) << 8 |
                  static_cast<uint32_t>(payload[2]) << 16 |
                  static_cast<uint32_t>(payload[3]) << 24);
    if (got.size() == 500) all.set_value();
  });
  ASSERT_TRUE(server.Listen(0).ok());
  TcpTransport client([](std::vector<uint8_t>) {});
  ASSERT_TRUE(client.Connect(0, server.port()).ok());
  for (uint32_t i = 0; i < 500; ++i) {
    std::vector<uint8_t> msg = {static_cast<uint8_t>(i),
                                static_cast<uint8_t>(i >> 8),
                                static_cast<uint8_t>(i >> 16),
                                static_cast<uint8_t>(i >> 24)};
    ASSERT_TRUE(client.Send(0, msg).ok());
  }
  ASSERT_EQ(all.get_future().wait_for(10s), std::future_status::ready);
  std::lock_guard<std::mutex> lock(mu);
  for (uint32_t i = 0; i < 500; ++i) EXPECT_EQ(got[i], i);
  client.Shutdown();
  server.Shutdown();
}

TEST(TcpTransportTest, SendWithoutConnectionFails) {
  TcpTransport t([](std::vector<uint8_t>) {});
  EXPECT_FALSE(t.Send(3, {1}).ok());
}

TEST(TcpTransportTest, ConnectToClosedPortFailsEventually) {
  TcpTransport t([](std::vector<uint8_t>) {});
  // Port 1 on loopback is essentially never listening; expect a clean
  // failure after the bounded retries.
  const Status s = t.Connect(0, 1);
  EXPECT_FALSE(s.ok());
}

TEST(TcpTransportTest, SendReconnectsAfterPeerRestart) {
  std::promise<void> got_first;
  auto server1 = std::make_unique<TcpTransport>(
      [&](std::vector<uint8_t>) { got_first.set_value(); });
  ASSERT_TRUE(server1->Listen(0).ok());
  const uint16_t port = server1->port();

  TcpTransport client([](std::vector<uint8_t>) {});
  ASSERT_TRUE(client.Connect(0, port).ok());
  ASSERT_TRUE(client.Send(0, {1}).ok());
  ASSERT_EQ(got_first.get_future().wait_for(5s), std::future_status::ready);

  // Kill the peer and bring a new one up on the same port.
  server1->Shutdown();
  server1.reset();
  std::promise<void> got_again;
  std::atomic<bool> got_again_set{false};
  TcpTransport server2([&](std::vector<uint8_t>) {
    if (!got_again_set.exchange(true)) got_again.set_value();
  });
  ASSERT_TRUE(server2.Listen(port).ok());

  // The old connection is dead. Send() notices — possibly only on the
  // second call, since the first write can land in the kernel buffer
  // before the RST comes back — then redials and delivers.
  auto delivered = got_again.get_future();
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  while (delivered.wait_for(0s) != std::future_status::ready &&
         std::chrono::steady_clock::now() < deadline) {
    (void)client.Send(0, {2});
    std::this_thread::sleep_for(20ms);
  }
  ASSERT_EQ(delivered.wait_for(0s), std::future_status::ready)
      << "send never reached the restarted peer";
  EXPECT_GE(client.reconnects(), 1u);
  client.Shutdown();
  server2.Shutdown();
}

TEST(TcpTransportTest, RedialCooldownIsReportedAndReconnectCountsOnce) {
  auto server1 =
      std::make_unique<TcpTransport>([](std::vector<uint8_t>) {});
  ASSERT_TRUE(server1->Listen(0).ok());
  const uint16_t port = server1->port();

  TcpTransport client([](std::vector<uint8_t>) {});
  ASSERT_TRUE(client.Connect(0, port).ok());
  EXPECT_EQ(client.redial_cooldown_remaining_ms(), 0);
  ASSERT_TRUE(client.Send(0, {1}).ok());

  // Kill the peer; nothing re-listens, so every redial is refused.
  server1->Shutdown();
  server1.reset();

  // The first failing Send marks the connection dead and arms the
  // cooldown; its own dial attempt fails before any socket is
  // registered, which must NOT count as a reconnect.
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  while (client.Send(0, {2}).ok() &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(5ms);
  }
  EXPECT_EQ(client.reconnects(), 0u);
  const int64_t remaining = client.redial_cooldown_remaining_ms();
  EXPECT_GT(remaining, 0);
  EXPECT_LE(remaining, 50);

  // Inside the cooldown the next failure returns without redialing.
  EXPECT_FALSE(client.Send(0, {3}).ok());
  EXPECT_EQ(client.reconnects(), 0u);

  // Bring the peer back and let the cooldown lapse: exactly one
  // reconnect is recorded, for the redial that actually installs.
  std::promise<void> got;
  std::atomic<bool> got_set{false};
  TcpTransport server2([&](std::vector<uint8_t>) {
    if (!got_set.exchange(true)) got.set_value();
  });
  ASSERT_TRUE(server2.Listen(port).ok());
  auto delivered = got.get_future();
  const auto deadline2 = std::chrono::steady_clock::now() + 10s;
  while (delivered.wait_for(0s) != std::future_status::ready &&
         std::chrono::steady_clock::now() < deadline2) {
    (void)client.Send(0, {4});
    std::this_thread::sleep_for(20ms);
  }
  ASSERT_EQ(delivered.wait_for(0s), std::future_status::ready)
      << "send never reached the restarted peer";
  EXPECT_EQ(client.reconnects(), 1u);
  EXPECT_EQ(client.redial_cooldown_remaining_ms(), 0);
  client.Shutdown();
  server2.Shutdown();
}

// --- Live clusters over real sockets -----------------------------------------

struct LiveCluster {
  std::vector<std::unique_ptr<LiveDatacenter>> dcs;

  explicit LiveCluster(int n, Duration inbound_delay,
                       int fault_tolerance = 0) {
    core::HeliosConfig cfg;
    cfg.num_datacenters = n;
    cfg.fault_tolerance = fault_tolerance;
    cfg.log_interval = Millis(5);
    cfg.grace_time = Millis(2000);  // Generous: wall-clock jitter is real.
    for (DcId dc = 0; dc < n; ++dc) {
      dcs.push_back(
          std::make_unique<LiveDatacenter>(dc, cfg, inbound_delay));
      EXPECT_TRUE(dcs.back()->Listen(0).ok());
    }
    std::vector<uint16_t> ports;
    for (auto& dc : dcs) ports.push_back(dc->port());
    for (auto& dc : dcs) EXPECT_TRUE(dc->ConnectPeers(ports).ok());
  }

  void Start() {
    for (auto& dc : dcs) dc->Start();
  }
  void Stop() {
    for (auto& dc : dcs) dc->Stop();
  }
};

TEST(LiveDatacenterTest, CommitOverRealSockets) {
  LiveCluster cluster(3, /*inbound_delay=*/Millis(10));
  cluster.Start();

  const auto t0 = std::chrono::steady_clock::now();
  const CommitOutcome outcome = cluster.dcs[0]->CommitSync({}, {{"x", "42"}});
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  EXPECT_TRUE(outcome.committed);
  // Helios-B with a 10ms inbound delay: the wait is one emulated one-way
  // (10ms) plus ticks; allow slack for wall-clock scheduling.
  EXPECT_GE(elapsed, 9);
  EXPECT_LE(elapsed, 1000);

  // Replication: the write becomes visible at the other datacenters.
  for (int attempt = 0; attempt < 100; ++attempt) {
    auto r = cluster.dcs[2]->ReadSync("x");
    if (r.ok()) {
      EXPECT_EQ(r.value().value, "42");
      break;
    }
    std::this_thread::sleep_for(10ms);
    ASSERT_LT(attempt, 99) << "write never replicated";
  }
  cluster.Stop();
}

TEST(LiveDatacenterTest, ConflictingLiveTransactionsNeverBothCommit) {
  LiveCluster cluster(2, /*inbound_delay=*/Millis(20));
  cluster.Start();

  // Fire conflicting commits from both sides nearly simultaneously.
  std::promise<CommitOutcome> p0;
  std::promise<CommitOutcome> p1;
  cluster.dcs[0]->Commit({}, {{"hot", "a"}},
                         [&](const CommitOutcome& o) { p0.set_value(o); });
  cluster.dcs[1]->Commit({}, {{"hot", "b"}},
                         [&](const CommitOutcome& o) { p1.set_value(o); });
  auto f0 = p0.get_future();
  auto f1 = p1.get_future();
  ASSERT_EQ(f0.wait_for(10s), std::future_status::ready);
  ASSERT_EQ(f1.wait_for(10s), std::future_status::ready);
  const CommitOutcome o0 = f0.get();
  const CommitOutcome o1 = f1.get();
  EXPECT_LE(o0.committed + o1.committed, 1)
      << "double commit over the live transport";
  cluster.Stop();
}

TEST(LiveDatacenterTest, ThroughputSmokeOverSockets) {
  LiveCluster cluster(3, /*inbound_delay=*/Millis(5));
  cluster.Start();
  int committed = 0;
  for (int i = 0; i < 30; ++i) {
    const CommitOutcome o = cluster.dcs[i % 3]->CommitSync(
        {}, {{"k" + std::to_string(i), "v"}});
    committed += o.committed;
  }
  EXPECT_EQ(committed, 30);
  const auto counters = cluster.dcs[0]->CountersSnapshot();
  EXPECT_GE(counters.commits, 10u);
  EXPECT_GT(counters.envelopes_sent, 0u);
  cluster.Stop();
}

TEST(LiveDatacenterTest, WalSurvivesRestart) {
  const std::string path = ::testing::TempDir() + "/live_wal_" +
                           std::to_string(::getpid()) + ".wal";
  std::remove(path.c_str());
  // Run a cluster with DC0 journaling; commit; tear everything down.
  {
    LiveCluster cluster(2, Millis(5));
    ASSERT_TRUE(cluster.dcs[0]->EnableWal(path).ok());
    cluster.Start();
    const CommitOutcome o =
        cluster.dcs[0]->CommitSync({}, {{"persist", "me"}});
    ASSERT_TRUE(o.committed);
    cluster.Stop();
  }
  // Restart: a fresh cluster where DC0 recovers from its WAL.
  {
    LiveCluster cluster(2, Millis(5));
    ASSERT_TRUE(cluster.dcs[0]->EnableWal(path).ok());
    cluster.Start();
    // Restore triggers a real catch-up round with the peer, and the node
    // answers "recovering" until it completes — wait for the counters.
    const auto deadline = std::chrono::steady_clock::now() + 10s;
    while (cluster.dcs[0]->recovery_snapshot().recoveries == 0 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(5ms);
    }
    const RecoveryStats rec = cluster.dcs[0]->recovery_snapshot();
    ASSERT_EQ(rec.recoveries, 1u) << "catch-up never completed";
    EXPECT_GT(rec.records_replayed, 0u);
    auto r = cluster.dcs[0]->ReadSync("persist");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().value, "me");
    // And it still commits new transactions.
    EXPECT_TRUE(cluster.dcs[0]->CommitSync({}, {{"again", "1"}}).committed);
    cluster.Stop();
  }
  std::remove(path.c_str());
}

// --- io_util: partial writes, EINTR, dead peers ------------------------------

// A connected stream pair whose writer has a deliberately tiny send
// buffer, so multi-megabyte WriteFull calls are guaranteed to hit partial
// transfers (and EAGAIN when the writer is non-blocking).
struct TinyBufferPair {
  int writer = -1;
  int reader = -1;

  TinyBufferPair() {
    int fds[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    writer = fds[0];
    reader = fds[1];
    // The kernel clamps this upward to its floor, but the result is still
    // a few KB — far below the payloads the tests push through.
    int small = 1;
    EXPECT_EQ(::setsockopt(writer, SOL_SOCKET, SO_SNDBUF, &small,
                           sizeof(small)),
              0);
    EXPECT_EQ(::setsockopt(reader, SOL_SOCKET, SO_RCVBUF, &small,
                           sizeof(small)),
              0);
  }
  ~TinyBufferPair() {
    if (writer >= 0) ::close(writer);
    if (reader >= 0) ::close(reader);
  }
};

std::vector<uint8_t> PatternedBytes(size_t n) {
  std::vector<uint8_t> bytes(n);
  for (size_t i = 0; i < n; ++i) {
    bytes[i] = static_cast<uint8_t>((i * 131) ^ (i >> 8));
  }
  return bytes;
}

TEST(IoUtilTest, WriteFullSurvivesTinySendBufferNonBlocking) {
  TinyBufferPair pair;
  ASSERT_EQ(::fcntl(pair.writer, F_SETFL,
                    ::fcntl(pair.writer, F_GETFL) | O_NONBLOCK),
            0);

  const std::vector<uint8_t> sent = PatternedBytes(2 << 20);
  std::atomic<bool> write_ok{false};
  std::thread writer([&]() {
    write_ok = WriteFull(pair.writer, sent.data(), sent.size());
  });

  // Let the writer saturate both kernel buffers and park in poll(POLLOUT)
  // before draining — the EAGAIN path must actually run.
  std::this_thread::sleep_for(50ms);
  std::vector<uint8_t> got(sent.size());
  EXPECT_TRUE(ReadFull(pair.reader, got.data(), got.size()));
  writer.join();
  EXPECT_TRUE(write_ok.load());
  EXPECT_EQ(got, sent);
}

TEST(IoUtilTest, WriteFullRetriesThroughSignals) {
  // A signal landing mid-send makes a blocking send() return EINTR or a
  // short count; WriteFull must treat both as "keep going", not as a dead
  // connection. Install a no-op SIGUSR1 handler WITHOUT SA_RESTART so the
  // kernel actually interrupts the syscall.
  struct sigaction sa {};
  sa.sa_handler = [](int) {};
  sa.sa_flags = 0;  // No SA_RESTART: let send() fail with EINTR.
  struct sigaction old {};
  ASSERT_EQ(::sigaction(SIGUSR1, &sa, &old), 0);

  TinyBufferPair pair;
  const std::vector<uint8_t> sent = PatternedBytes(2 << 20);
  std::atomic<bool> write_ok{false};
  std::atomic<bool> done{false};
  std::thread writer([&]() {
    write_ok = WriteFull(pair.writer, sent.data(), sent.size());
    done = true;
  });

  // Pepper the blocked writer with signals while slowly draining the
  // reader side, so send() is interrupted many times mid-transfer.
  std::vector<uint8_t> got(sent.size());
  size_t off = 0;
  while (off < got.size()) {
    if (!done.load()) pthread_kill(writer.native_handle(), SIGUSR1);
    const size_t chunk = std::min<size_t>(64 * 1024, got.size() - off);
    ASSERT_TRUE(ReadFull(pair.reader, got.data() + off, chunk));
    off += chunk;
  }
  writer.join();
  ASSERT_EQ(::sigaction(SIGUSR1, &old, nullptr), 0);
  EXPECT_TRUE(write_ok.load());
  EXPECT_EQ(got, sent);
}

TEST(IoUtilTest, WriteFullReportsClosedPeerWithoutSigpipe) {
  TinyBufferPair pair;
  ::close(pair.reader);
  pair.reader = -1;
  // MSG_NOSIGNAL must turn the dead peer into a clean `false` (EPIPE),
  // not a process-killing SIGPIPE. The payload exceeds the send buffer so
  // the failure cannot hide in the kernel buffer.
  const std::vector<uint8_t> sent = PatternedBytes(1 << 20);
  EXPECT_FALSE(WriteFull(pair.writer, sent.data(), sent.size()));
}

TEST(IoUtilTest, ReadFullReportsEofMidFrame) {
  TinyBufferPair pair;
  const std::vector<uint8_t> partial = PatternedBytes(100);
  ASSERT_TRUE(WriteFull(pair.writer, partial.data(), partial.size()));
  ::close(pair.writer);
  pair.writer = -1;
  // The peer died 100 bytes into a 200-byte frame: ReadFull must report
  // failure, not return half a buffer as success.
  std::vector<uint8_t> got(200);
  EXPECT_FALSE(ReadFull(pair.reader, got.data(), got.size()));
}

TEST(TcpTransportTest, LargeFrameSurvivesPartialWrites) {
  // A 4 MB frame dwarfs the default kernel socket buffers, so the send
  // path must go through many partial writes; the frame has to arrive
  // byte-identical on the other side.
  std::promise<std::vector<uint8_t>> received;
  TcpTransport server([&](std::vector<uint8_t> payload) {
    received.set_value(std::move(payload));
  });
  ASSERT_TRUE(server.Listen(0).ok());
  TcpTransport client([](std::vector<uint8_t>) {});
  ASSERT_TRUE(client.Connect(0, server.port()).ok());

  const std::vector<uint8_t> msg = PatternedBytes(4 << 20);
  ASSERT_TRUE(client.Send(0, msg).ok());
  auto future = received.get_future();
  ASSERT_EQ(future.wait_for(30s), std::future_status::ready);
  EXPECT_EQ(future.get(), msg);
  client.Shutdown();
  server.Shutdown();
}

// --- Administrative peer blocking (live chaos partitions) --------------------

TEST(TcpTransportTest, BlockedPeerShedsSendsThenHeals) {
  std::mutex mu;
  uint64_t delivered = 0;
  TcpTransport server([&](std::vector<uint8_t>) {
    std::lock_guard<std::mutex> lock(mu);
    ++delivered;
  });
  ASSERT_TRUE(server.Listen(0).ok());
  TcpTransport client([](std::vector<uint8_t>) {});
  ASSERT_TRUE(client.Connect(0, server.port()).ok());
  ASSERT_TRUE(client.Send(0, {1}).ok());

  client.SetPeerBlocked(0, true);
  // Blocked sends fail fast with Unavailable, count as sends_blocked, and
  // never redial (a partition must not heal itself).
  for (int i = 0; i < 5; ++i) {
    const Status s = client.Send(0, {2});
    EXPECT_FALSE(s.ok());
    EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  }
  EXPECT_EQ(client.sends_blocked(), 5u);
  EXPECT_EQ(client.messages_sent(), 1u);

  client.SetPeerBlocked(0, false);
  // Healing does not resurrect the old socket — the block closed it — but
  // the next sends redial and delivery resumes.
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  bool healed = false;
  while (!healed && std::chrono::steady_clock::now() < deadline) {
    (void)client.Send(0, {3});
    std::this_thread::sleep_for(20ms);
    std::lock_guard<std::mutex> lock(mu);
    healed = delivered >= 2;
  }
  EXPECT_TRUE(healed) << "sends never resumed after the block was lifted";
  EXPECT_GE(client.reconnects(), 1u);
  client.Shutdown();
  server.Shutdown();
}

TEST(TcpTransportTest, BlockBeforeConnectIsRemembered) {
  TcpTransport server([](std::vector<uint8_t>) {});
  ASSERT_TRUE(server.Listen(0).ok());
  TcpTransport client([](std::vector<uint8_t>) {});
  // Block first (the supervisor may apply a partition plan before the
  // relaunched peer ever dialed), then connect: sends must still shed.
  client.SetPeerBlocked(0, true);
  ASSERT_TRUE(client.Connect(0, server.port()).ok());
  EXPECT_FALSE(client.Send(0, {1}).ok());
  EXPECT_GE(client.sends_blocked(), 1u);

  client.SetPeerBlocked(0, false);
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  bool sent = false;
  while (!sent && std::chrono::steady_clock::now() < deadline) {
    sent = client.Send(0, {1}).ok();
    if (!sent) std::this_thread::sleep_for(20ms);
  }
  EXPECT_TRUE(sent);
  client.Shutdown();
  server.Shutdown();
}

TEST(LiveDatacenterTest, InitialDataVisibleBeforeTraffic) {
  LiveCluster cluster(2, Millis(5));
  for (auto& dc : cluster.dcs) dc->LoadInitial("seed", "1");
  cluster.Start();
  auto r = cluster.dcs[1]->ReadSync("seed");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().value, "1");
  cluster.Stop();
}

}  // namespace
}  // namespace helios::transport
