// Crash-recovery tests (docs/RECOVERY.md): WAL-backed amnesia restarts
// must reconstruct exactly the state an uncrashed replica would hold, the
// anti-entropy catch-up must close the gap a crashed replica missed, and
// the client commit timeout must keep closed-loop clients making progress
// while their requests vanish into a crashed datacenter.
//
// Three layers of coverage:
//   - WAL-replay equivalence: for each protocol, crash a replica after
//     traffic quiesces, recover it from its WAL, and compare its store
//     key-for-key against an identical run that never crashed.
//   - Catch-up: traffic continues while the replica is down; after
//     recovery the replica converges with the survivors and the pulled
//     suffix shows up in recovery.catchup_records.
//   - Crash during commit-wait: a full harness experiment with a
//     fault-plan outage and client timeouts — serializability holds,
//     every datacenter's clients keep committing, and the recovery and
//     timeout counters show the machinery actually fired.

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "api/protocol.h"
#include "baselines/replicated_commit.h"
#include "baselines/two_pc_paxos.h"
#include "core/helios_cluster.h"
#include "core/history.h"
#include "harness/experiment.h"
#include "harness/experiment_spec.h"
#include "harness/topology.h"
#include "sim/fault_plan.h"
#include "sim/network.h"
#include "sim/scheduler.h"
#include "wal/wal_sink.h"
#include "workload/client.h"

namespace helios {
namespace {

// ---------------------------------------------------------------------------
// MemoryWal basics.

TEST(MemoryWalTest, AppendsSurviveAndResetDropsEverything) {
  wal::MemoryWal wal;
  rdict::LogRecord rec;
  rec.origin = 1;
  rec.ts = 42;
  ASSERT_TRUE(wal.AppendRecord(rec).ok());
  ASSERT_TRUE(wal.AppendRecord(rec).ok());
  rdict::Timetable table(3);
  table.Set(1, 1, 42);
  ASSERT_TRUE(wal.AppendTimetable(table).ok());
  EXPECT_EQ(wal.entries_appended(), 3u);
  EXPECT_EQ(wal.contents().records.size(), 2u);
  EXPECT_TRUE(wal.contents().has_timetable);
  EXPECT_EQ(wal.contents().timetable.Get(1, 1), 42);
  wal.Reset();
  EXPECT_EQ(wal.entries_appended(), 0u);
  EXPECT_TRUE(wal.contents().records.empty());
  EXPECT_FALSE(wal.contents().has_timetable);
}

// ---------------------------------------------------------------------------
// WAL-replay equivalence: protocol-agnostic rig so one driver can run the
// same scripted traffic against Helios, Replicated Commit and 2PC/Paxos.

struct ProtoRig {
  std::unique_ptr<sim::Scheduler> scheduler;
  std::unique_ptr<sim::Network> network;
  std::unique_ptr<ProtocolCluster> cluster;
  std::function<void(DcId)> crash;    ///< Network + process halves.
  std::function<void(DcId)> recover;
  std::function<Result<VersionedValue>(DcId, const Key&)> read_store;
  std::function<RecoveryStats()> stats;
};

ProtoRig MakeHeliosRig(int f) {
  ProtoRig rig;
  rig.scheduler = std::make_unique<sim::Scheduler>();
  const auto topo = harness::Table2Topology();
  rig.network = std::make_unique<sim::Network>(rig.scheduler.get(),
                                              topo.size(), 7);
  harness::ConfigureNetwork(topo, rig.network.get());
  core::HeliosConfig cfg;
  cfg.num_datacenters = topo.size();
  cfg.fault_tolerance = f;
  cfg.grace_time = Millis(400);
  cfg.log_interval = Millis(5);
  auto cluster = std::make_unique<core::HeliosCluster>(
      rig.scheduler.get(), rig.network.get(), cfg);
  auto* raw = cluster.get();
  rig.crash = [raw](DcId dc) { raw->CrashDatacenter(dc); };
  rig.recover = [raw](DcId dc) { raw->RecoverDatacenter(dc); };
  rig.read_store = [raw](DcId dc, const Key& key) {
    return raw->node(dc).store().Read(key);
  };
  rig.stats = [raw] { return raw->recovery_stats(); };
  rig.cluster = std::move(cluster);
  return rig;
}

ProtoRig MakeBaselineRig(bool two_pc) {
  ProtoRig rig;
  const int n = 3;
  rig.scheduler = std::make_unique<sim::Scheduler>();
  rig.network = std::make_unique<sim::Network>(rig.scheduler.get(), n, 7);
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      rig.network->SetRtt(a, b, Millis(80), 0);
    }
  }
  if (two_pc) {
    baselines::TwoPcPaxosConfig cfg;
    cfg.num_datacenters = n;
    cfg.coordinator = 0;
    auto cluster = std::make_unique<baselines::TwoPcPaxosCluster>(
        rig.scheduler.get(), rig.network.get(), cfg);
    auto* raw = cluster.get();
    rig.crash = [&rig, raw](DcId dc) {
      rig.network->CrashNode(dc);
      raw->SetDatacenterDown(dc, true);
    };
    rig.recover = [&rig, raw](DcId dc) {
      rig.network->RecoverNode(dc);
      raw->SetDatacenterDown(dc, false);
    };
    rig.read_store = [raw](DcId dc, const Key& key) {
      return raw->store(dc).Read(key);
    };
    rig.stats = [raw] { return raw->recovery_stats(); };
    rig.cluster = std::move(cluster);
  } else {
    baselines::ReplicatedCommitConfig cfg;
    cfg.num_datacenters = n;
    auto cluster = std::make_unique<baselines::ReplicatedCommitCluster>(
        rig.scheduler.get(), rig.network.get(), cfg);
    auto* raw = cluster.get();
    rig.crash = [&rig, raw](DcId dc) {
      rig.network->CrashNode(dc);
      raw->SetDatacenterDown(dc, true);
    };
    rig.recover = [&rig, raw](DcId dc) {
      rig.network->RecoverNode(dc);
      raw->SetDatacenterDown(dc, false);
    };
    rig.read_store = [raw](DcId dc, const Key& key) {
      return raw->store(dc).Read(key);
    };
    rig.stats = [raw] { return raw->recovery_stats(); };
    rig.cluster = std::move(cluster);
  }
  return rig;
}

constexpr int kScriptTxns = 30;

Key ScriptKey(int i) { return "k" + std::to_string(i); }

/// Non-conflicting write-only transactions, one every 120 ms, round-robin
/// across datacenters. Deterministic, and identical in every rig built
/// from the same maker — the basis of the crashed-vs-control comparison.
void ScheduleScriptedTraffic(ProtoRig* rig,
                             std::shared_ptr<int> commits) {
  const int n = rig->cluster->num_datacenters();
  for (int i = 0; i < kScriptTxns; ++i) {
    const DcId dc = i % n;
    rig->scheduler->At(Millis(200 + i * 120), [rig, commits, i, dc] {
      rig->cluster->ClientCommit(
          dc, {}, {{ScriptKey(i), "v" + std::to_string(i)}},
          [commits](const CommitOutcome& o) {
            if (o.committed) ++*commits;
          });
    });
  }
}

void RunReplayEquivalence(std::function<ProtoRig()> make, DcId crash_dc) {
  // Rig A crashes `crash_dc` after traffic quiesces and recovers it from
  // its WAL; rig B is the uncrashed control.
  ProtoRig a = make();
  ProtoRig b = make();
  for (int k = 0; k < kScriptTxns; ++k) {
    a.cluster->LoadInitialAll(ScriptKey(k), "init");
    b.cluster->LoadInitialAll(ScriptKey(k), "init");
  }
  a.cluster->Start();
  b.cluster->Start();

  auto commits_a = std::make_shared<int>(0);
  auto commits_b = std::make_shared<int>(0);
  ScheduleScriptedTraffic(&a, commits_a);
  ScheduleScriptedTraffic(&b, commits_b);

  // Traffic ends ~3.8 s; crash well after every decision propagated.
  a.scheduler->At(Seconds(6), [&a, crash_dc] { a.crash(crash_dc); });
  a.scheduler->At(Seconds(8), [&a, crash_dc] { a.recover(crash_dc); });

  a.scheduler->RunUntil(Seconds(12));
  b.scheduler->RunUntil(Seconds(12));

  ASSERT_EQ(*commits_a, kScriptTxns);
  ASSERT_EQ(*commits_b, kScriptTxns);

  // The recovery actually exercised the WAL.
  const RecoveryStats stats = a.stats();
  EXPECT_EQ(stats.recoveries, 1u);
  EXPECT_GT(stats.records_replayed, 0u);

  // Equivalence: at the same sim time, the recovered replica holds
  // exactly the versions the uncrashed control holds — writer identity
  // and value, key for key — and so does every survivor.
  const int n = a.cluster->num_datacenters();
  for (int k = 0; k < kScriptTxns; ++k) {
    const Key key = ScriptKey(k);
    for (DcId dc = 0; dc < n; ++dc) {
      auto va = a.read_store(dc, key);
      auto vb = b.read_store(dc, key);
      ASSERT_TRUE(va.ok()) << key << " dc " << dc;
      ASSERT_TRUE(vb.ok()) << key << " dc " << dc;
      EXPECT_EQ(va.value().writer, vb.value().writer) << key << " dc " << dc;
      EXPECT_EQ(va.value().value, vb.value().value) << key << " dc " << dc;
    }
  }
}

TEST(WalReplayEquivalence, Helios) {
  RunReplayEquivalence([] { return MakeHeliosRig(0); }, 2);
}

TEST(WalReplayEquivalence, ReplicatedCommit) {
  RunReplayEquivalence([] { return MakeBaselineRig(false); }, 2);
}

TEST(WalReplayEquivalence, TwoPcPaxosReplica) {
  RunReplayEquivalence([] { return MakeBaselineRig(true); }, 2);
}

// The recovered Helios node's unique-timestamp floor must exceed every
// timestamp it persisted before the crash (the Restore() contract that
// keeps post-recovery timestamps from colliding with pre-crash ones), and
// the WAL must contain the periodic timetable checkpoint.
TEST(WalReplayEquivalence, HeliosFloorAndTimetableSnapshot) {
  sim::Scheduler scheduler;
  const auto topo = harness::Table2Topology();
  sim::Network network(&scheduler, topo.size(), 7);
  harness::ConfigureNetwork(topo, &network);
  core::HeliosConfig cfg;
  cfg.num_datacenters = topo.size();
  cfg.fault_tolerance = 1;
  cfg.log_interval = Millis(5);
  core::HeliosCluster cluster(&scheduler, &network, cfg);
  cluster.LoadInitialAll("a", "init");
  cluster.Start();
  auto commits = std::make_shared<int>(0);
  for (int i = 0; i < 10; ++i) {
    scheduler.At(Millis(100 + i * 100), [&cluster, commits, i] {
      cluster.ClientCommit(2, {}, {{"a", "v" + std::to_string(i)}},
                           [commits](const CommitOutcome& o) {
                             if (o.committed) ++*commits;
                           });
    });
  }
  scheduler.At(Seconds(4), [&cluster] { cluster.CrashDatacenter(2); });
  scheduler.At(Seconds(5), [&cluster] { cluster.RecoverDatacenter(2); });
  scheduler.RunUntil(Seconds(8));
  ASSERT_GT(*commits, 0);

  const wal::WalContents& contents = cluster.wal(2).contents();
  ASSERT_FALSE(contents.records.empty());
  EXPECT_TRUE(contents.has_timetable)
      << "GC tick never checkpointed the timetable";
  Timestamp max_own = kMinTimestamp;
  for (const auto& rec : contents.records) {
    if (rec.origin == 2 && rec.ts > max_own) max_own = rec.ts;
  }
  ASSERT_GT(max_own, kMinTimestamp);
  EXPECT_GE(cluster.clock(2).floor(), max_own);
}

// ---------------------------------------------------------------------------
// Catch-up: traffic keeps flowing while the replica is down; the pulled
// log suffix closes the gap and every replica converges.

TEST(CatchupTest, HeliosPullsMissedSuffixFromPeers) {
  ProtoRig rig = MakeHeliosRig(1);
  const int keys = 40;
  for (int k = 0; k < keys; ++k) {
    rig.cluster->LoadInitialAll(ScriptKey(k), "init");
  }
  rig.cluster->Start();

  // One write every 100 ms from datacenter 0 for the whole run — many of
  // them land while datacenter 2 is down.
  auto commits = std::make_shared<int>(0);
  for (int i = 0; i < 100; ++i) {
    rig.scheduler->At(Millis(200 + i * 100), [&rig, commits, i, keys] {
      rig.cluster->ClientCommit(0, {},
                                {{ScriptKey(i % keys), "u" + std::to_string(i)}},
                                [commits](const CommitOutcome& o) {
                                  if (o.committed) ++*commits;
                                });
    });
  }

  rig.scheduler->At(Seconds(3), [&rig] { rig.crash(2); });
  rig.scheduler->At(Seconds(7), [&rig] { rig.recover(2); });
  rig.scheduler->RunUntil(Seconds(15));

  EXPECT_GT(*commits, 50);
  const RecoveryStats stats = rig.stats();
  EXPECT_EQ(stats.recoveries, 1u);
  EXPECT_GT(stats.records_replayed, 0u);
  EXPECT_GT(stats.catchup_records, 0u)
      << "nothing pulled from peers despite traffic during the outage";
  EXPECT_GT(stats.duration_us, 0u);

  // Convergence: the recovered replica agrees with every survivor.
  const int n = rig.cluster->num_datacenters();
  for (int k = 0; k < keys; ++k) {
    const Key key = ScriptKey(k);
    auto v0 = rig.read_store(0, key);
    ASSERT_TRUE(v0.ok()) << key;
    for (DcId dc = 1; dc < n; ++dc) {
      auto v = rig.read_store(dc, key);
      ASSERT_TRUE(v.ok()) << key << " dc " << dc;
      EXPECT_EQ(v.value().writer, v0.value().writer) << key << " dc " << dc;
    }
  }
}

TEST(CatchupTest, BaselinesPullMissedDecisions) {
  for (const bool two_pc : {false, true}) {
    SCOPED_TRACE(two_pc ? "2pc" : "rc");
    ProtoRig rig = MakeBaselineRig(two_pc);
    const int keys = 40;
    for (int k = 0; k < keys; ++k) {
      rig.cluster->LoadInitialAll(ScriptKey(k), "init");
    }
    rig.cluster->Start();

    auto commits = std::make_shared<int>(0);
    for (int i = 0; i < 80; ++i) {
      rig.scheduler->At(Millis(200 + i * 100), [&rig, commits, i, keys] {
        rig.cluster->ClientCommit(
            0, {}, {{ScriptKey(i % keys), "u" + std::to_string(i)}},
            [commits](const CommitOutcome& o) {
              if (o.committed) ++*commits;
            });
      });
    }

    // Crash a non-coordinator replica; commits continue on the majority.
    rig.scheduler->At(Seconds(3), [&rig] { rig.crash(2); });
    rig.scheduler->At(Seconds(6), [&rig] { rig.recover(2); });
    rig.scheduler->RunUntil(Seconds(12));

    EXPECT_GT(*commits, 40);
    const RecoveryStats stats = rig.stats();
    EXPECT_EQ(stats.recoveries, 1u);
    EXPECT_GT(stats.catchup_records, 0u)
        << "no decisions pulled during catch-up";

    for (int k = 0; k < keys; ++k) {
      const Key key = ScriptKey(k);
      auto v0 = rig.read_store(0, key);
      ASSERT_TRUE(v0.ok()) << key;
      auto v2 = rig.read_store(2, key);
      ASSERT_TRUE(v2.ok()) << key;
      EXPECT_EQ(v2.value().writer, v0.value().writer) << key;
    }
  }
}

// ---------------------------------------------------------------------------
// Client commit timeout: unit test against a stub protocol that swallows
// the first commit request of every transaction — exactly what a crashed
// datacenter does — and answers the retry.

class SwallowFirstCommitCluster : public ProtocolCluster {
 public:
  explicit SwallowFirstCommitCluster(sim::Scheduler* scheduler)
      : scheduler_(scheduler) {}

  void Start() override {}
  void LoadInitialAll(const Key&, const Value&) override {}
  void ClientRead(DcId, const Key& key, ReadCallback done) override {
    scheduler_->After(Millis(1), [key, done = std::move(done)] {
      VersionedValue v;
      v.value = "stub";
      v.ts = 1;
      done(v);
    });
  }
  void ClientCommit(DcId, std::vector<ReadEntry>, std::vector<WriteEntry>,
                    CommitCallback done) override {
    ++commit_requests_;
    if (swallow_next_) {
      swallow_next_ = false;  // The retry of this txn gets an answer.
      ++swallowed_;
      return;
    }
    swallow_next_ = true;
    scheduler_->After(Millis(1), [done = std::move(done)] {
      done(CommitOutcome{TxnId{0, 1}, true, ""});
    });
  }
  void ClientReadOnly(DcId, std::vector<Key> keys,
                      ReadOnlyCallback done) override {
    std::vector<Result<VersionedValue>> out(keys.size(),
                                            Result<VersionedValue>(
                                                VersionedValue{}));
    scheduler_->After(Millis(1), [out = std::move(out),
                                  done = std::move(done)]() mutable {
      done(std::move(out));
    });
  }
  void TxnAbandon(DcId, const TxnId&) override { ++abandons_; }
  std::string name() const override { return "SwallowFirst"; }
  int num_datacenters() const override { return 1; }

  uint64_t commit_requests() const { return commit_requests_; }
  uint64_t swallowed() const { return swallowed_; }
  uint64_t abandons() const { return abandons_; }

 private:
  sim::Scheduler* scheduler_;
  bool swallow_next_ = true;
  uint64_t commit_requests_ = 0;
  uint64_t swallowed_ = 0;
  uint64_t abandons_ = 0;
};

TEST(ClientTimeoutTest, RetriesSwallowedCommitAndMakesProgress) {
  sim::Scheduler scheduler;
  SwallowFirstCommitCluster cluster(&scheduler);
  workload::WorkloadConfig wl;
  wl.ops_per_txn = 2;
  wl.write_fraction = 1.0;  // Write-only plans: no read phase needed.
  wl.num_keys = 100;
  workload::ClosedLoopClient client(/*id=*/0, /*home=*/0, &cluster, &scheduler,
                                    wl, /*seed=*/7, /*measure_from=*/0,
                                    /*measure_until=*/Seconds(5),
                                    /*stop_at=*/Seconds(5));
  client.SetCommitTimeout(Millis(100), /*max_retries=*/3,
                          /*backoff=*/Millis(10));
  client.Start();
  scheduler.RunUntil(Seconds(6));

  const workload::ClientMetrics& m = client.metrics();
  // Every transaction: first attempt swallowed -> timeout -> retry
  // committed. The client never wedges.
  EXPECT_GT(m.committed, 10u);
  EXPECT_EQ(m.timeouts, cluster.swallowed());
  // A timeout that fires at/after stop_at gives up instead of retrying,
  // so the final transaction may count aborted rather than retried.
  EXPECT_LE(m.timeouts - m.retries, 1u);
  EXPECT_LE(m.aborted, 1u);
  // Abandon released the (stub) server-side state for each timed-out
  // attempt.
  EXPECT_EQ(cluster.abandons(), m.timeouts);
}

TEST(ClientTimeoutTest, ZeroTimeoutNeverRetries) {
  sim::Scheduler scheduler;
  SwallowFirstCommitCluster cluster(&scheduler);
  workload::WorkloadConfig wl;
  wl.ops_per_txn = 2;
  wl.write_fraction = 1.0;
  wl.num_keys = 100;
  workload::ClosedLoopClient client(0, 0, &cluster, &scheduler, wl, 7, 0,
                                    Seconds(5), Seconds(5));
  client.Start();  // No SetCommitTimeout: the first swallow wedges it.
  scheduler.RunUntil(Seconds(6));
  EXPECT_EQ(client.metrics().committed, 0u);
  EXPECT_EQ(client.metrics().timeouts, 0u);
  EXPECT_EQ(cluster.commit_requests(), 1u);
}

// ---------------------------------------------------------------------------
// Crash during commit-wait, end to end through the harness: a datacenter
// dies mid-run with transactions waiting on their commit offsets (Helios)
// or on votes/decisions (the baselines). With client timeouts armed the
// run must stay serializable, make progress at every datacenter, and
// surface the recovery + timeout counters.

class CrashDuringCommitWait
    : public ::testing::TestWithParam<harness::Protocol> {};

TEST_P(CrashDuringCommitWait, SerializableAndLiveThroughOutage) {
  harness::ExperimentSpec spec;
  sim::FaultPlan plan;
  // For 2PC the crashed datacenter is the coordinator — the worst case:
  // every in-flight commit loses its locks and every client in the system
  // depends on the timeout until recovery.
  const int victim = GetParam() == harness::Protocol::kTwoPcPaxos ? 0 : 1;
  plan.AddCrash(Seconds(2), victim).AddRecover(Seconds(4), victim);
  spec.WithProtocol(GetParam())
      .WithTopology("table2")
      .WithClients(10)
      .WithWarmup(Seconds(1))
      .WithMeasure(Seconds(8))
      .WithDrain(Seconds(10))
      .WithSeed(42)
      .WithNumKeys(500)
      .WithFaultPlan(plan)
      // Wide enough that Singapore's fault-free 2PC round trips through
      // the Virginia coordinator never trip it; only the outage does.
      .WithClientTimeout(Seconds(2), /*retries=*/10)
      .WithSerializabilityCheck();
  ASSERT_TRUE(spec.Validate().ok());

  auto cfg_or = spec.ToConfig();
  ASSERT_TRUE(cfg_or.ok()) << cfg_or.status().ToString();
  harness::ExperimentConfig cfg = std::move(cfg_or).value();
  cfg.trace.enabled = true;  // For the metrics snapshot.
  const harness::ExperimentResult r = harness::RunExperiment(cfg);

  // Safety.
  ASSERT_TRUE(r.serializability.has_value());
  EXPECT_TRUE(r.serializability->ok()) << r.serializability->ToString();

  // Progress: no datacenter's clients wedged — even the crashed one's
  // clients resume after recovery, and everyone else rides out the
  // outage on timeout-retry.
  for (const harness::DcResult& dc : r.per_dc) {
    EXPECT_GT(dc.committed, 0u) << dc.name;
  }

  // The outage actually bit (clients timed out) and recovery actually
  // ran (WAL replayed, counters exported).
  EXPECT_GT(r.client_timeouts, 0u);
  const auto* recoveries = r.metrics.FindCounter("recovery.recoveries");
  ASSERT_NE(recoveries, nullptr) << "recovery counters not exported";
  EXPECT_GT(recoveries->value, 0u);
  const auto* replayed = r.metrics.FindCounter("recovery.records_replayed");
  ASSERT_NE(replayed, nullptr);
  EXPECT_GT(replayed->value, 0u);
  const auto* timeouts = r.metrics.FindCounter("client.timeouts");
  ASSERT_NE(timeouts, nullptr);
  EXPECT_EQ(timeouts->value, r.client_timeouts);
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, CrashDuringCommitWait,
    ::testing::Values(harness::Protocol::kHelios1,
                      harness::Protocol::kHelios2,
                      harness::Protocol::kReplicatedCommit,
                      harness::Protocol::kTwoPcPaxos),
    [](const ::testing::TestParamInfo<harness::Protocol>& info) {
      std::string name = harness::ProtocolToken(info.param);
      for (char& c : name) {
        if (c == '-' || c == '/') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace helios
