// Unit tests for the storage layer: the multi-version store and the
// shared/exclusive lock manager with its two conflict policies.

#include <gtest/gtest.h>

#include <vector>

#include "store/lock_table.h"
#include "store/mv_store.h"

namespace helios {
namespace {

TxnId Id(DcId dc, uint64_t seq) { return TxnId{dc, seq}; }

TEST(MvStoreTest, ReadMissingKeyIsNotFound) {
  MvStore store;
  auto r = store.Read("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(store.LatestVersionTs("nope"), kMinTimestamp);
}

TEST(MvStoreTest, LatestVersionWins) {
  MvStore store;
  store.ApplyWrite("k", "v1", 10, Id(0, 1));
  store.ApplyWrite("k", "v2", 20, Id(1, 1));
  auto r = store.Read("k");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().value, "v2");
  EXPECT_EQ(r.value().ts, 20);
  EXPECT_EQ(r.value().writer, Id(1, 1));
}

TEST(MvStoreTest, OutOfOrderApplyConverges) {
  // Replicas may apply the same committed writes in different orders; the
  // (timestamp, writer) version order must make the final state identical.
  MvStore a;
  MvStore b;
  a.ApplyWrite("k", "v1", 10, Id(0, 1));
  a.ApplyWrite("k", "v2", 20, Id(1, 1));
  b.ApplyWrite("k", "v2", 20, Id(1, 1));
  b.ApplyWrite("k", "v1", 10, Id(0, 1));
  EXPECT_EQ(a.Read("k").value().value, b.Read("k").value().value);
  EXPECT_EQ(a.Read("k").value().writer, b.Read("k").value().writer);
}

TEST(MvStoreTest, TimestampTiesBrokenByWriter) {
  MvStore store;
  store.ApplyWrite("k", "from0", 10, Id(0, 5));
  store.ApplyWrite("k", "from2", 10, Id(2, 3));
  EXPECT_EQ(store.Read("k").value().writer, Id(2, 3));
}

TEST(MvStoreTest, SnapshotReads) {
  MvStore store;
  store.ApplyWrite("k", "v1", 10, Id(0, 1));
  store.ApplyWrite("k", "v2", 20, Id(0, 2));
  store.ApplyWrite("k", "v3", 30, Id(0, 3));
  EXPECT_EQ(store.ReadAt("k", 25).value().value, "v2");
  EXPECT_EQ(store.ReadAt("k", 20).value().value, "v2");
  EXPECT_EQ(store.ReadAt("k", 19).value().value, "v1");
  EXPECT_EQ(store.ReadAt("k", 100).value().value, "v3");
  EXPECT_FALSE(store.ReadAt("k", 5).ok());
}

TEST(MvStoreTest, ApplyTxnInstallsWholeWriteSet) {
  MvStore store;
  auto body = MakeTxnBody(Id(0, 1), {}, {{"a", "1"}, {"b", "2"}});
  store.ApplyTxn(*body, 42);
  EXPECT_EQ(store.Read("a").value().value, "1");
  EXPECT_EQ(store.Read("b").value().value, "2");
  EXPECT_EQ(store.Read("a").value().ts, 42);
  EXPECT_EQ(store.key_count(), 2u);
}

TEST(MvStoreTest, MaxVersionTsOfCoversReadAndWriteSets) {
  MvStore store;
  store.ApplyWrite("r", "x", 50, Id(0, 1));
  store.ApplyWrite("w", "y", 70, Id(0, 2));
  auto body = MakeTxnBody(Id(1, 1), {{"r", 50, Id(0, 1)}}, {{"w", "z"}});
  EXPECT_EQ(store.MaxVersionTsOf(*body), 70);
}

TEST(MvStoreTest, TruncationKeepsNewestVisibleVersion) {
  MvStore store;
  store.ApplyWrite("k", "v1", 10, Id(0, 1));
  store.ApplyWrite("k", "v2", 20, Id(0, 2));
  store.ApplyWrite("k", "v3", 30, Id(0, 3));
  const size_t dropped = store.TruncateVersionsBefore(25);
  EXPECT_EQ(dropped, 1u);  // v1 dropped; v2 is still visible at ts 25.
  EXPECT_EQ(store.ReadAt("k", 25).value().value, "v2");
  EXPECT_EQ(store.Read("k").value().value, "v3");
  EXPECT_EQ(store.version_count(), 2u);
}

TEST(MvStoreTest, TruncationNeverEmptiesAKey) {
  MvStore store;
  store.ApplyWrite("k", "v1", 10, Id(0, 1));
  EXPECT_EQ(store.TruncateVersionsBefore(1000), 0u);
  EXPECT_TRUE(store.Read("k").ok());
}

// --- LockTable: no-wait policy ------------------------------------------------

TEST(LockTableNoWaitTest, SharedLocksCoexist) {
  LockTable t(LockPolicy::kNoWait);
  Status s1 = Status::Internal("unset");
  Status s2 = Status::Internal("unset");
  t.Acquire("k", LockMode::kShared, Id(0, 1), 10, [&](Status s) { s1 = s; });
  t.Acquire("k", LockMode::kShared, Id(0, 2), 20, [&](Status s) { s2 = s; });
  EXPECT_TRUE(s1.ok());
  EXPECT_TRUE(s2.ok());
  EXPECT_TRUE(t.Holds("k", Id(0, 1), LockMode::kShared));
  EXPECT_TRUE(t.Holds("k", Id(0, 2), LockMode::kShared));
}

TEST(LockTableNoWaitTest, ExclusiveConflictRefusedImmediately) {
  LockTable t(LockPolicy::kNoWait);
  Status s1 = Status::Internal("unset");
  Status s2 = Status::Internal("unset");
  t.Acquire("k", LockMode::kExclusive, Id(0, 1), 10, [&](Status s) { s1 = s; });
  t.Acquire("k", LockMode::kShared, Id(0, 2), 20, [&](Status s) { s2 = s; });
  EXPECT_TRUE(s1.ok());
  EXPECT_EQ(s2.code(), StatusCode::kAborted);
  EXPECT_EQ(t.immediate_refusals(), 1u);
}

TEST(LockTableNoWaitTest, UpgradeSoleHolder) {
  LockTable t(LockPolicy::kNoWait);
  Status s = Status::Internal("unset");
  t.Acquire("k", LockMode::kShared, Id(0, 1), 10, [&](Status) {});
  t.Acquire("k", LockMode::kExclusive, Id(0, 1), 10, [&](Status st) { s = st; });
  EXPECT_TRUE(s.ok());
  EXPECT_TRUE(t.Holds("k", Id(0, 1), LockMode::kExclusive));
}

TEST(LockTableNoWaitTest, UpgradeBlockedByOtherReader) {
  LockTable t(LockPolicy::kNoWait);
  Status s = Status::Internal("unset");
  t.Acquire("k", LockMode::kShared, Id(0, 1), 10, [&](Status) {});
  t.Acquire("k", LockMode::kShared, Id(0, 2), 20, [&](Status) {});
  t.Acquire("k", LockMode::kExclusive, Id(0, 1), 10, [&](Status st) { s = st; });
  EXPECT_EQ(s.code(), StatusCode::kAborted);
}

TEST(LockTableNoWaitTest, ReacquisitionIsIdempotent) {
  LockTable t(LockPolicy::kNoWait);
  int grants = 0;
  t.Acquire("k", LockMode::kExclusive, Id(0, 1), 10,
            [&](Status s) { grants += s.ok(); });
  t.Acquire("k", LockMode::kExclusive, Id(0, 1), 10,
            [&](Status s) { grants += s.ok(); });
  t.Acquire("k", LockMode::kShared, Id(0, 1), 10,
            [&](Status s) { grants += s.ok(); });  // Weaker: still held.
  EXPECT_EQ(grants, 3);
}

TEST(LockTableNoWaitTest, ReleaseAllFreesEverything) {
  LockTable t(LockPolicy::kNoWait);
  t.Acquire("a", LockMode::kExclusive, Id(0, 1), 10, [](Status) {});
  t.Acquire("b", LockMode::kExclusive, Id(0, 1), 10, [](Status) {});
  EXPECT_EQ(t.locked_keys(), 2u);
  t.ReleaseAll(Id(0, 1));
  EXPECT_EQ(t.locked_keys(), 0u);
  Status s = Status::Internal("unset");
  t.Acquire("a", LockMode::kExclusive, Id(0, 2), 20, [&](Status st) { s = st; });
  EXPECT_TRUE(s.ok());
}

// --- LockTable: wound-wait policy ----------------------------------------------

TEST(LockTableWoundWaitTest, YoungerWaitsForOlder) {
  LockTable t(LockPolicy::kWoundWait);
  Status young = Status::Internal("unset");
  bool young_granted = false;
  t.Acquire("k", LockMode::kExclusive, Id(0, 1), 10, [](Status) {});
  t.Acquire("k", LockMode::kExclusive, Id(0, 2), 20, [&](Status s) {
    young = s;
    young_granted = s.ok();
  });
  EXPECT_EQ(young.message(), "unset");  // Queued, not yet decided.
  t.ReleaseAll(Id(0, 1));
  EXPECT_TRUE(young_granted);
  EXPECT_TRUE(t.Holds("k", Id(0, 2), LockMode::kExclusive));
}

TEST(LockTableWoundWaitTest, OlderWoundsYoungerHolder) {
  LockTable t(LockPolicy::kWoundWait);
  std::vector<TxnId> wounded;
  t.set_wound_handler([&](TxnId v) { wounded.push_back(v); });
  t.Acquire("k", LockMode::kExclusive, Id(0, 2), 20, [](Status) {});
  Status old_status = Status::Internal("unset");
  t.Acquire("k", LockMode::kExclusive, Id(0, 1), 10,
            [&](Status s) { old_status = s; });
  EXPECT_TRUE(old_status.ok());  // Older transaction took the lock.
  ASSERT_EQ(wounded.size(), 1u);
  EXPECT_EQ(wounded[0], Id(0, 2));
  EXPECT_EQ(t.wounds(), 1u);
  EXPECT_FALSE(t.Holds("k", Id(0, 2), LockMode::kExclusive));
}

TEST(LockTableWoundWaitTest, WoundCancelsVictimsQueuedRequests) {
  LockTable t(LockPolicy::kWoundWait);
  t.set_wound_handler([](TxnId) {});
  // Txn 30 holds "a"; txn 20 queues on "a"; txn 10 wounds... setup:
  t.Acquire("a", LockMode::kExclusive, Id(0, 3), 30, [](Status) {});
  Status waiter = Status::Internal("unset");
  t.Acquire("a", LockMode::kExclusive, Id(0, 2), 31,
            [&](Status s) { waiter = s; });  // Younger: waits.
  EXPECT_EQ(waiter.message(), "unset");
  // Now wound txn (0,2) indirectly: it holds "b", an older txn wants it.
  t.Acquire("b", LockMode::kExclusive, Id(0, 2), 31, [](Status) {});
  t.Acquire("b", LockMode::kExclusive, Id(0, 1), 5, [](Status) {});
  // The wound released everything txn (0,2) had, including its queued
  // request on "a".
  EXPECT_EQ(waiter.code(), StatusCode::kAborted);
}

TEST(LockTableWoundWaitTest, SharedQueueGrantsInOrder) {
  LockTable t(LockPolicy::kWoundWait);
  t.Acquire("k", LockMode::kExclusive, Id(0, 1), 10, [](Status) {});
  int granted = 0;
  t.Acquire("k", LockMode::kShared, Id(0, 2), 20,
            [&](Status s) { granted += s.ok(); });
  t.Acquire("k", LockMode::kShared, Id(0, 3), 30,
            [&](Status s) { granted += s.ok(); });
  EXPECT_EQ(granted, 0);
  t.ReleaseAll(Id(0, 1));
  EXPECT_EQ(granted, 2);  // Both shared waiters grant together.
}

TEST(LockTableWoundWaitTest, NoDeadlockUnderCrossingRequests) {
  // Classic deadlock shape: T1 holds a wants b, T2 holds b wants a.
  // Wound-wait resolves it: the older transaction wounds the younger.
  LockTable t(LockPolicy::kWoundWait);
  std::vector<TxnId> wounded;
  t.set_wound_handler([&](TxnId v) { wounded.push_back(v); });
  Status t1_b = Status::Internal("unset");
  t.Acquire("a", LockMode::kExclusive, Id(0, 1), 10, [](Status) {});
  t.Acquire("b", LockMode::kExclusive, Id(0, 2), 20, [](Status) {});
  t.Acquire("b", LockMode::kExclusive, Id(0, 1), 10,
            [&](Status s) { t1_b = s; });  // Older: wounds T2.
  EXPECT_TRUE(t1_b.ok());
  ASSERT_EQ(wounded.size(), 1u);
  EXPECT_EQ(wounded[0], Id(0, 2));
  // T2's request for "a" never happens (it was wounded), so T1 proceeds.
  EXPECT_TRUE(t.Holds("a", Id(0, 1), LockMode::kExclusive));
  EXPECT_TRUE(t.Holds("b", Id(0, 1), LockMode::kExclusive));
}

}  // namespace
}  // namespace helios
