// Gray-failure resilience, end to end in the simulator: a sustained
// slow-but-alive fault at one datacenter must not inflate commit latency
// at the others once the phi-accrual detector suspects it and degraded
// commit excludes it from the conclusive-commit wait.
//
// The headline experiment (the acceptance criterion of the gray-failure
// work): stall one datacenter's event loop for the whole measurement
// window of the paper's Table 2 topology under Helios f=1.
//   - Detector off: every other datacenter's Rule-2 wait blocks on the
//     straggler's frozen knowledge timestamps — commits wedge for as long
//     as the stall lasts (unbounded inflation).
//   - Detector on: suspicion triggers within a few heartbeat intervals,
//     commits skip the suspect under the n-f quorum, and p50 at the
//     unaffected datacenters stays within 1.2x of the fault-free run.
//     (The degraded wait binds on the healthy quorum's clock records;
//     with the suspect being the far datacenter "S", those arrive sooner
//     than S's own knowledge ever did, so the bound holds with margin.)
// A second experiment ends the stall mid-run and checks the suspect is
// re-admitted cleanly (suspicion retracts, the history still serializes).

#include <gtest/gtest.h>

#include <cstdint>

#include "harness/experiment.h"
#include "harness/experiment_spec.h"
#include "obs/metrics.h"

namespace helios {
namespace {

using harness::ExperimentResult;
using harness::ExperimentSpec;

/// Example 3, Helios f=1, long enough for phi history + a stable window.
ExperimentSpec GraySpec() {
  ExperimentSpec spec;
  spec.WithProtocol(harness::Protocol::kHelios1)
      .WithTopology("example3")
      .WithClients(12)
      .WithWarmup(Millis(1200))
      .WithMeasure(Millis(4000))
      .WithDrain(Millis(2500))
      .WithNumKeys(2000)  // Low contention: latency is commit-wait bound.
      .WithZipfTheta(0.0)
      .WithSeed(7)
      .WithSerializabilityCheck(true);
  return spec;
}

ExperimentResult RunSpec(ExperimentSpec spec) {
  spec.WithTrace(true);  // Captures the metrics snapshot.
  auto cfg = spec.ToConfig();
  EXPECT_TRUE(cfg.ok()) << cfg.status().ToString();
  return harness::RunExperiment(cfg.value());
}

uint64_t Counter(const ExperimentResult& r, const std::string& name) {
  const obs::MetricsSnapshot::CounterValue* c = r.metrics.FindCounter(name);
  return c == nullptr ? 0 : c->value;
}

TEST(GrayFailureTest, DegradedCommitKeepsUnaffectedP50NearFaultFree) {
  ExperimentSpec base_spec = GraySpec();
  base_spec.WithTopology("table2").WithClients(20);
  const ExperimentResult fault_free = RunSpec(base_spec);

  // Stall DC 4 ("S", the far datacenter) from before the measure window
  // through the end of the run: its knowledge timestamps freeze, so
  // without detection every Rule-2 wait at DCs 0-3 blocks on it forever.
  ExperimentSpec faulty = base_spec;
  faulty.fault_plan.AddProcessStall(Millis(600), Millis(60000), 4);

  ExperimentSpec detected = faulty;
  detected.WithHealth(true);
  const ExperimentResult with_health = RunSpec(detected);
  const ExperimentResult without_health = RunSpec(faulty);

  for (int dc = 0; dc < 4; ++dc) {
    const auto& base = fault_free.per_dc[static_cast<size_t>(dc)];
    const auto& on = with_health.per_dc[static_cast<size_t>(dc)];
    const auto& off = without_health.per_dc[static_cast<size_t>(dc)];

    ASSERT_GT(base.committed, 20u) << "fault-free run made no progress";
    ASSERT_GT(base.latency_p50_ms, 0.0);

    // The acceptance bound: suspicion + degraded commit keep the
    // unaffected datacenters at fault-free latency (within 1.2x).
    EXPECT_GT(on.committed, base.committed / 2)
        << "dc " << dc << " starved despite degraded commit";
    EXPECT_LE(on.latency_p50_ms, 1.2 * base.latency_p50_ms)
        << "dc " << dc << " p50 inflated under suspicion: "
        << on.latency_p50_ms << " ms vs fault-free " << base.latency_p50_ms
        << " ms";

    // The contrast: with the detector off the same fault pushes every
    // commit into the Rule-3 grace-time fallback — p50 inflates to
    // WAN-scale (5-17x here, ~grace_time per transaction) and the
    // closed-loop throughput collapses with it.
    EXPECT_GT(off.latency_p50_ms, 2.0 * base.latency_p50_ms)
        << "dc " << dc
        << " was expected to inflate without detection (p50 "
        << off.latency_p50_ms << " ms vs fault-free " << base.latency_p50_ms
        << " ms)";
    EXPECT_LT(off.committed, on.committed / 2)
        << "dc " << dc
        << " was expected to slow down without detection (committed "
        << off.committed << " vs " << on.committed << " with health on)";
  }

  // The reaction actually engaged: both healthy datacenters suspected the
  // straggler and committed in degraded mode.
  EXPECT_GE(Counter(with_health, "health.suspicions"), 2u);
  EXPECT_GT(Counter(with_health, "health.degraded_commits"), 0u);
  EXPECT_GT(Counter(with_health, "health.suspicion_refusals"), 0u);

  ASSERT_TRUE(with_health.serializability.has_value());
  EXPECT_TRUE(with_health.serializability->ok())
      << with_health.serializability->ToString();
}

TEST(GrayFailureTest, SuspectIsReadmittedAfterStallEnds) {
  // Stall DC 2 for 1.2s mid-run, then let it thaw with 3s of run left:
  // suspicion must trigger, then retract, and the full history (including
  // post-readmission commits at DC 2) must still serialize.
  ExperimentSpec spec = GraySpec();
  spec.WithHealth(true);
  spec.fault_plan.AddProcessStall(Millis(1000), Millis(2200), 2);
  const ExperimentResult r = RunSpec(spec);

  EXPECT_GE(Counter(r, "health.suspicions"), 2u);
  EXPECT_GE(Counter(r, "health.readmissions"), 2u)
      << "suspicion never retracted after the stall ended";

  // The thawed datacenter rejoins commit processing: it decides
  // transactions again after re-admission (the stall covered only 1.2s
  // of a 4s measure window, so a wedged DC 2 would show almost nothing).
  EXPECT_GT(r.per_dc[2].committed, 10u);

  ASSERT_TRUE(r.serializability.has_value());
  EXPECT_TRUE(r.serializability->ok()) << r.serializability->ToString();
}

TEST(GrayFailureTest, SlowLinkAndFsyncStallRunCleanWithHealthOn) {
  // The other two gray kinds under the full client workload with the
  // health subsystem armed: no latency claim (a pipelined slow link keeps
  // its cadence, so phi-on-arrivals need not fire), but the runs must
  // make progress and the history must serialize.
  {
    ExperimentSpec spec = GraySpec();
    spec.WithHealth(true);
    spec.fault_plan.AddSlowLink(Millis(800), Millis(3500), 2, 0,
                                /*factor=*/6.0, /*extra_delay=*/Millis(2));
    const ExperimentResult r = RunSpec(spec);
    uint64_t committed = 0;
    for (const auto& dc : r.per_dc) committed += dc.committed;
    EXPECT_GT(committed, 30u);
    ASSERT_TRUE(r.serializability.has_value());
    EXPECT_TRUE(r.serializability->ok()) << r.serializability->ToString();
  }
  {
    ExperimentSpec spec = GraySpec();
    spec.WithHealth(true);
    spec.fault_plan.AddFsyncStall(Millis(800), Millis(3500), 2,
                                  /*per_record=*/Millis(3));
    const ExperimentResult r = RunSpec(spec);
    uint64_t committed = 0;
    for (const auto& dc : r.per_dc) committed += dc.committed;
    EXPECT_GT(committed, 30u);
    ASSERT_TRUE(r.serializability.has_value());
    EXPECT_TRUE(r.serializability->ok()) << r.serializability->ToString();
  }
}

}  // namespace
}  // namespace helios
