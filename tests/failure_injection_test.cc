// Randomized failure injection: datacenters crash and recover at random
// times while contended traffic runs — optionally with probabilistic
// message loss and duplication layered on every WAN link (the chaos
// layer's FaultPlan plus the ReliableMesh session underneath). Whatever
// the schedule, the committed history must stay conflict-serializable,
// surviving replicas must agree, and the cluster must make progress
// whenever at most f datacenters are down.

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <tuple>

#include "common/random.h"
#include "core/helios_cluster.h"
#include "core/history.h"
#include "harness/topology.h"
#include "sim/fault_plan.h"
#include "sim/network.h"
#include "sim/reliable.h"
#include "sim/scheduler.h"

namespace helios::core {
namespace {

/// (fault tolerance f, seed, per-message loss probability; duplication
/// rides along at loss/2).
class FailureInjectionSweep
    : public ::testing::TestWithParam<std::tuple<int, uint64_t, double>> {};

TEST_P(FailureInjectionSweep, SerializableThroughRandomOutages) {
  const auto [f, seed, loss] = GetParam();
  const int n = 5;
  const int keys = 200;

  sim::Scheduler scheduler;
  sim::Network network(&scheduler, n, seed);
  const auto topo = harness::Table2Topology();
  harness::ConfigureNetwork(topo, &network);
  if (loss > 0.0) {
    // Message faults end before the quiesce window so replicas converge.
    sim::FaultPlan plan;
    sim::LinkFault lf;
    lf.loss = loss;
    lf.duplicate = loss / 2;
    lf.active_until = Seconds(30);
    plan.AddLinkFault(lf);
    ASSERT_TRUE(network.InstallMessageFaults(plan, seed ^ 0xFA171).ok());
  }
  HeliosConfig cfg;
  cfg.num_datacenters = n;
  cfg.fault_tolerance = f;
  cfg.grace_time = Millis(400);
  cfg.log_interval = Millis(5);
  HeliosCluster cluster(&scheduler, &network, cfg);
  sim::ReliableMesh mesh(&scheduler, &network);
  if (loss > 0.0) cluster.SetReliableMesh(&mesh);
  for (int k = 0; k < keys; ++k) {
    cluster.LoadInitialAll("key" + std::to_string(k), "init");
  }
  cluster.Start();

  // Closed-loop clients at every datacenter. Clients at a crashed
  // datacenter stall (their requests are dropped); a watchdog restarts
  // their loop after recovery.
  auto rng = std::make_shared<Rng>(seed ^ 0xF00D);
  auto commits = std::make_shared<uint64_t>(0);
  auto commits_during_outage = std::make_shared<uint64_t>(0);
  auto down = std::make_shared<std::vector<bool>>(n, false);
  auto loop = std::make_shared<std::function<void(DcId, int)>>();
  *loop = [&, rng, commits, commits_during_outage, down, loop](DcId dc,
                                                               int gen) {
    if (scheduler.Now() > Seconds(25)) return;
    if ((*down)[dc]) return;  // Watchdog restarts us after recovery.
    const std::string k1 = "key" + std::to_string(rng->Uniform(keys));
    const std::string k2 = "key" + std::to_string(rng->Uniform(keys));
    std::vector<WriteEntry> writes{{k1, "v"}};
    if (k2 != k1) writes.push_back({k2, "w"});
    cluster.ClientCommit(dc, {}, std::move(writes),
                         [&, commits, commits_during_outage, down, loop, dc,
                          gen](const CommitOutcome& o) {
                           if (o.committed) {
                             ++*commits;
                             for (bool d : *down) {
                               if (d) {
                                 ++*commits_during_outage;
                                 break;
                               }
                             }
                           }
                           (*loop)(dc, gen);
                         });
  };
  for (DcId dc = 0; dc < n; ++dc) {
    scheduler.At(Millis(dc + 1), [loop, dc] { (*loop)(dc, 0); });
  }

  // Random outage schedule: up to f datacenters down at any time; each
  // outage lasts 1.5-4 seconds.
  auto down_count = std::make_shared<int>(0);
  auto inject = std::make_shared<std::function<void()>>();
  *inject = [&, rng, down, down_count, inject, loop]() {
    if (scheduler.Now() > Seconds(18)) return;
    if (*down_count < f) {
      DcId victim = static_cast<DcId>(rng->Uniform(n));
      if (!(*down)[victim]) {
        (*down)[victim] = true;
        ++*down_count;
        cluster.CrashDatacenter(victim);
        const Duration outage = Millis(1500) + Millis(rng->Uniform(2500));
        scheduler.After(outage, [&, down, down_count, loop, victim]() {
          cluster.RecoverDatacenter(victim);
          (*down)[victim] = false;
          --*down_count;
          // Restart the victim's client loop.
          scheduler.After(Millis(50), [loop, victim]() {
            (*loop)(victim, 1);
          });
        });
      }
    }
    scheduler.After(Millis(800) + Millis(rng->Uniform(1200)), *inject);
  };
  scheduler.At(Seconds(2), *inject);

  // Run traffic, then let everything recover and quiesce.
  scheduler.RunUntil(Seconds(45));

  // Lossy cells commit far less: every dropped log record head-of-line
  // blocks its channel for an RTO (~2x RTT), so the bar is progress, not
  // throughput.
  EXPECT_GT(*commits, loss > 0.0 ? 20u : 200u)
      << "cluster made too little progress";
  if (loss > 0.0) {
    EXPECT_GT(network.fault_drops(), 0u);
    EXPECT_GT(network.fault_duplicates(), 0u);
    EXPECT_GT(mesh.duplicates_suppressed(), 0u);
  }
  if (f > 0) {
    EXPECT_GT(*commits_during_outage, 0u)
        << "no commits while a datacenter was down (liveness failed)";
  }

  // Safety: the full committed history is conflict-serializable.
  const Status ser = CheckSerializable(cluster.history().commits());
  EXPECT_TRUE(ser.ok()) << ser.ToString();

  // Convergence: after quiescing, every replica agrees on every key.
  for (int k = 0; k < keys; ++k) {
    const std::string key = "key" + std::to_string(k);
    auto v0 = cluster.node(0).store().Read(key);
    ASSERT_TRUE(v0.ok());
    for (DcId dc = 1; dc < n; ++dc) {
      auto v = cluster.node(dc).store().Read(key);
      ASSERT_TRUE(v.ok()) << key << " dc " << dc;
      EXPECT_EQ(v.value().writer, v0.value().writer) << key << " dc " << dc;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FailureInjectionSweep,
    ::testing::Combine(::testing::Values(1, 2),
                       ::testing::Values(41u, 42u, 43u),
                       ::testing::Values(0.0)),
    [](const ::testing::TestParamInfo<std::tuple<int, uint64_t, double>>&
           info) {
      return "f" + std::to_string(std::get<0>(info.param)) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

// Lossy links on top of the outages: a smaller seed set, since each cell
// also exercises the retransmission machinery.
INSTANTIATE_TEST_SUITE_P(
    LossyGrid, FailureInjectionSweep,
    ::testing::Combine(::testing::Values(1, 2), ::testing::Values(42u),
                       ::testing::Values(0.08)),
    [](const ::testing::TestParamInfo<std::tuple<int, uint64_t, double>>&
           info) {
      return "f" + std::to_string(std::get<0>(info.param)) + "_seed" +
             std::to_string(std::get<1>(info.param)) + "_lossy";
    });

}  // namespace
}  // namespace helios::core
