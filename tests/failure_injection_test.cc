// Randomized failure injection: datacenters crash and recover at random
// times while contended traffic runs. Whatever the schedule, the committed
// history must stay conflict-serializable, surviving replicas must agree,
// and the cluster must make progress whenever at most f datacenters are
// down.

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <tuple>

#include "common/random.h"
#include "core/helios_cluster.h"
#include "core/history.h"
#include "harness/topology.h"
#include "sim/network.h"
#include "sim/scheduler.h"

namespace helios::core {
namespace {

class FailureInjectionSweep
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(FailureInjectionSweep, SerializableThroughRandomOutages) {
  const auto [f, seed] = GetParam();
  const int n = 5;
  const int keys = 200;

  sim::Scheduler scheduler;
  sim::Network network(&scheduler, n, seed);
  const auto topo = harness::Table2Topology();
  harness::ConfigureNetwork(topo, &network);
  HeliosConfig cfg;
  cfg.num_datacenters = n;
  cfg.fault_tolerance = f;
  cfg.grace_time = Millis(400);
  cfg.log_interval = Millis(5);
  HeliosCluster cluster(&scheduler, &network, cfg);
  for (int k = 0; k < keys; ++k) {
    cluster.LoadInitialAll("key" + std::to_string(k), "init");
  }
  cluster.Start();

  // Closed-loop clients at every datacenter. Clients at a crashed
  // datacenter stall (their requests are dropped); a watchdog restarts
  // their loop after recovery.
  auto rng = std::make_shared<Rng>(seed ^ 0xF00D);
  auto commits = std::make_shared<uint64_t>(0);
  auto commits_during_outage = std::make_shared<uint64_t>(0);
  auto down = std::make_shared<std::vector<bool>>(n, false);
  auto loop = std::make_shared<std::function<void(DcId, int)>>();
  *loop = [&, rng, commits, commits_during_outage, down, loop](DcId dc,
                                                               int gen) {
    if (scheduler.Now() > Seconds(25)) return;
    if ((*down)[dc]) return;  // Watchdog restarts us after recovery.
    const std::string k1 = "key" + std::to_string(rng->Uniform(keys));
    const std::string k2 = "key" + std::to_string(rng->Uniform(keys));
    std::vector<WriteEntry> writes{{k1, "v"}};
    if (k2 != k1) writes.push_back({k2, "w"});
    cluster.ClientCommit(dc, {}, std::move(writes),
                         [&, commits, commits_during_outage, down, loop, dc,
                          gen](const CommitOutcome& o) {
                           if (o.committed) {
                             ++*commits;
                             for (bool d : *down) {
                               if (d) {
                                 ++*commits_during_outage;
                                 break;
                               }
                             }
                           }
                           (*loop)(dc, gen);
                         });
  };
  for (DcId dc = 0; dc < n; ++dc) {
    scheduler.At(Millis(dc + 1), [loop, dc] { (*loop)(dc, 0); });
  }

  // Random outage schedule: up to f datacenters down at any time; each
  // outage lasts 1.5-4 seconds.
  auto down_count = std::make_shared<int>(0);
  auto inject = std::make_shared<std::function<void()>>();
  *inject = [&, rng, down, down_count, inject, loop]() {
    if (scheduler.Now() > Seconds(18)) return;
    if (*down_count < f) {
      DcId victim = static_cast<DcId>(rng->Uniform(n));
      if (!(*down)[victim]) {
        (*down)[victim] = true;
        ++*down_count;
        cluster.CrashDatacenter(victim);
        const Duration outage = Millis(1500) + Millis(rng->Uniform(2500));
        scheduler.After(outage, [&, down, down_count, loop, victim]() {
          cluster.RecoverDatacenter(victim);
          (*down)[victim] = false;
          --*down_count;
          // Restart the victim's client loop.
          scheduler.After(Millis(50), [loop, victim]() {
            (*loop)(victim, 1);
          });
        });
      }
    }
    scheduler.After(Millis(800) + Millis(rng->Uniform(1200)), *inject);
  };
  scheduler.At(Seconds(2), *inject);

  // Run traffic, then let everything recover and quiesce.
  scheduler.RunUntil(Seconds(45));

  EXPECT_GT(*commits, 200u) << "cluster made too little progress";
  if (f > 0) {
    EXPECT_GT(*commits_during_outage, 0u)
        << "no commits while a datacenter was down (liveness failed)";
  }

  // Safety: the full committed history is conflict-serializable.
  const Status ser = CheckSerializable(cluster.history().commits());
  EXPECT_TRUE(ser.ok()) << ser.ToString();

  // Convergence: after quiescing, every replica agrees on every key.
  for (int k = 0; k < keys; ++k) {
    const std::string key = "key" + std::to_string(k);
    auto v0 = cluster.node(0).store().Read(key);
    ASSERT_TRUE(v0.ok());
    for (DcId dc = 1; dc < n; ++dc) {
      auto v = cluster.node(dc).store().Read(key);
      ASSERT_TRUE(v.ok()) << key << " dc " << dc;
      EXPECT_EQ(v.value().writer, v0.value().writer) << key << " dc " << dc;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FailureInjectionSweep,
    ::testing::Combine(::testing::Values(1, 2),
                       ::testing::Values(41u, 42u, 43u)),
    [](const ::testing::TestParamInfo<std::tuple<int, uint64_t>>& info) {
      return "f" + std::to_string(std::get<0>(info.param)) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace helios::core
