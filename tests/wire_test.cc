// Tests for the wire codec and message serialization: round trips for
// every message type, malformed-input rejection, frame/CRC validation, and
// randomized robustness (no decode path may crash or over-allocate on
// corrupted bytes).

#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"
#include "wire/codec.h"
#include "wire/serialization.h"

namespace helios::wire {
namespace {

TEST(CodecTest, VarintRoundTrip) {
  Encoder enc;
  const std::vector<uint64_t> values = {0, 1, 127, 128, 300, 16383, 16384,
                                        UINT64_MAX / 2, UINT64_MAX};
  for (uint64_t v : values) enc.PutVarint(v);
  Decoder dec(enc.bytes());
  for (uint64_t v : values) {
    uint64_t out = 0;
    ASSERT_TRUE(dec.GetVarint(&out).ok());
    EXPECT_EQ(out, v);
  }
  EXPECT_TRUE(dec.exhausted());
}

TEST(CodecTest, VarintIsCompactForSmallValues) {
  Encoder enc;
  enc.PutVarint(5);
  EXPECT_EQ(enc.size(), 1u);
  enc.PutVarint(300);
  EXPECT_EQ(enc.size(), 3u);  // 1 + 2.
}

TEST(CodecTest, SignedVarintRoundTrip) {
  Encoder enc;
  const std::vector<int64_t> values = {0,         -1,       1,
                                       -64,       64,       INT64_MIN,
                                       INT64_MAX, -1234567, 7654321};
  for (int64_t v : values) enc.PutSignedVarint(v);
  Decoder dec(enc.bytes());
  for (int64_t v : values) {
    int64_t out = 0;
    ASSERT_TRUE(dec.GetSignedVarint(&out).ok());
    EXPECT_EQ(out, v);
  }
}

TEST(CodecTest, ZigZagKeepsSmallNegativesSmall) {
  Encoder enc;
  enc.PutSignedVarint(-3);
  EXPECT_EQ(enc.size(), 1u);
}

TEST(CodecTest, FixedWidthRoundTrip) {
  Encoder enc;
  enc.PutFixed32(0xDEADBEEFu);
  enc.PutFixed64(0x0123456789ABCDEFull);
  Decoder dec(enc.bytes());
  uint32_t a = 0;
  uint64_t b = 0;
  ASSERT_TRUE(dec.GetFixed32(&a).ok());
  ASSERT_TRUE(dec.GetFixed64(&b).ok());
  EXPECT_EQ(a, 0xDEADBEEFu);
  EXPECT_EQ(b, 0x0123456789ABCDEFull);
}

TEST(CodecTest, StringRoundTrip) {
  Encoder enc;
  enc.PutString("");
  enc.PutString("hello");
  enc.PutString(std::string(1000, 'x'));
  Decoder dec(enc.bytes());
  std::string out;
  ASSERT_TRUE(dec.GetString(&out).ok());
  EXPECT_EQ(out, "");
  ASSERT_TRUE(dec.GetString(&out).ok());
  EXPECT_EQ(out, "hello");
  ASSERT_TRUE(dec.GetString(&out).ok());
  EXPECT_EQ(out.size(), 1000u);
}

TEST(CodecTest, DecodePastEndFails) {
  Encoder enc;
  enc.PutU8(0x80);  // Unterminated varint.
  Decoder dec(enc.bytes());
  uint64_t out = 0;
  EXPECT_FALSE(dec.GetVarint(&out).ok());

  Decoder empty(nullptr, 0);
  uint8_t b = 0;
  EXPECT_FALSE(empty.GetU8(&b).ok());
  uint32_t f = 0;
  EXPECT_FALSE(empty.GetFixed32(&f).ok());
}

TEST(CodecTest, StringLengthBeyondBufferFails) {
  Encoder enc;
  enc.PutVarint(1000);  // Claims 1000 bytes, provides none.
  Decoder dec(enc.bytes());
  std::string out;
  EXPECT_FALSE(dec.GetString(&out).ok());
}

TEST(CodecTest, BoolRejectsOutOfRange) {
  Encoder enc;
  enc.PutU8(2);
  Decoder dec(enc.bytes());
  bool out = false;
  EXPECT_FALSE(dec.GetBool(&out).ok());
}

TEST(Crc32Test, KnownVector) {
  // CRC-32("123456789") = 0xCBF43926, the classic check value.
  const char* data = "123456789";
  EXPECT_EQ(Crc32(reinterpret_cast<const uint8_t*>(data), 9), 0xCBF43926u);
}

TEST(Crc32Test, DetectsBitFlips) {
  std::vector<uint8_t> data(64, 0xAB);
  const uint32_t original = Crc32(data);
  data[17] ^= 0x01;
  EXPECT_NE(Crc32(data), original);
}

// --- Message round trips -----------------------------------------------------

TxnBodyPtr SampleBody() {
  return MakeTxnBody(
      TxnId{3, 42},
      {{"alpha", 123456, TxnId{1, 7}}, {"beta", kMinTimestamp, TxnId{}}},
      {{"gamma", "value-1"}, {"delta", std::string(100, 'z')}});
}

TEST(SerializationTest, TxnBodyRoundTrip) {
  Encoder enc;
  EncodeTxnBody(*SampleBody(), &enc);
  Decoder dec(enc.bytes());
  TxnBodyPtr out;
  ASSERT_TRUE(DecodeTxnBody(&dec, &out).ok());
  EXPECT_EQ(out->id, (TxnId{3, 42}));
  ASSERT_EQ(out->read_set.size(), 2u);
  EXPECT_EQ(out->read_set[0].key, "alpha");
  EXPECT_EQ(out->read_set[0].version_ts, 123456);
  EXPECT_EQ(out->read_set[0].version_writer, (TxnId{1, 7}));
  EXPECT_EQ(out->read_set[1].version_ts, kMinTimestamp);
  ASSERT_EQ(out->write_set.size(), 2u);
  EXPECT_EQ(out->write_set[1].value, std::string(100, 'z'));
}

TEST(SerializationTest, LogRecordRoundTrip) {
  rdict::LogRecord rec;
  rec.type = rdict::RecordType::kFinished;
  rec.committed = true;
  rec.ts = 987654321;
  rec.version_ts = 987654400;
  rec.origin = 4;
  rec.body = SampleBody();
  Encoder enc;
  EncodeLogRecord(rec, &enc);
  Decoder dec(enc.bytes());
  rdict::LogRecord out;
  ASSERT_TRUE(DecodeLogRecord(&dec, &out).ok());
  EXPECT_EQ(out.type, rdict::RecordType::kFinished);
  EXPECT_TRUE(out.committed);
  EXPECT_EQ(out.ts, 987654321);
  EXPECT_EQ(out.version_ts, 987654400);
  EXPECT_EQ(out.origin, 4);
  EXPECT_EQ(out.body->id, rec.body->id);
}

TEST(SerializationTest, TimetableRoundTrip) {
  rdict::Timetable table(4);
  Rng rng(3);
  for (DcId i = 0; i < 4; ++i) {
    for (DcId j = 0; j < 4; ++j) {
      table.Set(i, j, static_cast<Timestamp>(rng.Uniform(1u << 30)));
    }
  }
  Encoder enc;
  EncodeTimetable(table, &enc);
  Decoder dec(enc.bytes());
  rdict::Timetable out(1);
  ASSERT_TRUE(DecodeTimetable(&dec, &out).ok());
  EXPECT_EQ(out, table);
}

core::Envelope SampleEnvelope() {
  core::Envelope env(3);
  env.log.from = 2;
  env.log.table.Set(0, 1, 100);
  env.log.table.Set(2, 2, 777);
  rdict::LogRecord rec;
  rec.type = rdict::RecordType::kPreparing;
  rec.ts = 555;
  rec.origin = 2;
  rec.body = SampleBody();
  env.log.records.push_back(rec);
  env.refusals.push_back(core::Refusal{1, TxnId{0, 9}, 444});
  return env;
}

TEST(SerializationTest, EnvelopeEstimationFieldsRoundTrip) {
  core::Envelope env = SampleEnvelope();
  env.ping_id = 42;
  env.pong_for = 17;
  env.pong_hold_us = 12345;
  env.rtt_row_us = {0, 66000, 78000};
  Encoder enc;
  EncodeEnvelope(env, &enc);
  Decoder dec(enc.bytes());
  core::Envelope out(1);
  ASSERT_TRUE(DecodeEnvelope(&dec, &out).ok());
  EXPECT_EQ(out.ping_id, 42u);
  EXPECT_EQ(out.pong_for, 17u);
  EXPECT_EQ(out.pong_hold_us, 12345);
  EXPECT_EQ(out.rtt_row_us, env.rtt_row_us);
}

TEST(SerializationTest, EnvelopeRoundTrip) {
  const core::Envelope env = SampleEnvelope();
  Encoder enc;
  EncodeEnvelope(env, &enc);
  Decoder dec(enc.bytes());
  core::Envelope out(1);
  ASSERT_TRUE(DecodeEnvelope(&dec, &out).ok());
  EXPECT_EQ(out.log.from, 2);
  EXPECT_EQ(out.log.table, env.log.table);
  ASSERT_EQ(out.log.records.size(), 1u);
  EXPECT_EQ(out.log.records[0].ts, 555);
  ASSERT_EQ(out.refusals.size(), 1u);
  EXPECT_EQ(out.refusals[0], env.refusals[0]);
  EXPECT_TRUE(dec.exhausted());
}

TEST(SerializationTest, FrameRoundTrip) {
  const auto bytes = FrameEnvelope(SampleEnvelope());
  auto result = UnframeEnvelope(bytes);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().log.from, 2);
}

TEST(SerializationTest, FrameRejectsBadMagic) {
  auto bytes = FrameEnvelope(SampleEnvelope());
  bytes[0] ^= 0xFF;
  EXPECT_FALSE(UnframeEnvelope(bytes).ok());
}

TEST(SerializationTest, FrameRejectsCorruptedPayload) {
  auto bytes = FrameEnvelope(SampleEnvelope());
  bytes[bytes.size() / 2] ^= 0x10;
  const auto result = UnframeEnvelope(bytes);
  ASSERT_FALSE(result.ok());
}

TEST(SerializationTest, FrameRejectsTruncation) {
  auto bytes = FrameEnvelope(SampleEnvelope());
  for (size_t cut : {bytes.size() - 1, bytes.size() / 2, size_t{3}}) {
    std::vector<uint8_t> truncated(bytes.begin(), bytes.begin() + cut);
    EXPECT_FALSE(UnframeEnvelope(truncated).ok()) << "cut at " << cut;
  }
}

TEST(SerializationTest, FrameRejectsWrongVersion) {
  auto bytes = FrameEnvelope(SampleEnvelope());
  bytes[4] = kWireVersion + 1;
  EXPECT_FALSE(UnframeEnvelope(bytes).ok());
}

TEST(SerializationTest, EncodedSizeMatchesEncoder) {
  const core::Envelope env = SampleEnvelope();
  Encoder enc;
  EncodeEnvelope(env, &enc);
  EXPECT_EQ(EncodedEnvelopeSize(env), enc.size());
}

// Robustness: random byte soup must never crash the decoder or make it
// succeed with the frame checksum intact.
TEST(SerializationTest, RandomBytesNeverCrashDecoder) {
  Rng rng(1234);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<uint8_t> junk(rng.Uniform(200));
    for (auto& b : junk) b = static_cast<uint8_t>(rng.Next());
    const auto result = UnframeEnvelope(junk);
    // Overwhelmingly this fails; success would require a valid CRC over a
    // valid payload, which random bytes do not produce.
    EXPECT_FALSE(result.ok());
  }
}

// Robustness: corrupting the *payload portion* of a real frame either
// fails the CRC or (if we bypass framing) fails structured decoding
// without crashing.
TEST(SerializationTest, CorruptedPayloadDecodeIsSafe) {
  Encoder enc;
  EncodeEnvelope(SampleEnvelope(), &enc);
  Rng rng(77);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<uint8_t> bytes = enc.bytes();
    const size_t flips = 1 + rng.Uniform(4);
    for (size_t i = 0; i < flips; ++i) {
      bytes[rng.Uniform(bytes.size())] ^= static_cast<uint8_t>(
          1u << rng.Uniform(8));
    }
    Decoder dec(bytes);
    core::Envelope out(1);
    // May succeed (the flip hit a value byte) or fail; must not crash.
    (void)DecodeEnvelope(&dec, &out);
  }
}

}  // namespace
}  // namespace helios::wire
