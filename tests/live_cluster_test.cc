// Live-cluster integration tests (ctest label "live", serial): real
// heliosd processes on fixed loopback ports driven by helios_supervisor,
// plus in-process overload tests against a LiveDatacenter.
//
// These fork whole daemons, SIGKILL them mid-load, and measure wall-clock
// throughput — deliberately not tier1. CI runs them in the dedicated
// live-smoke job (`ctest -L live`).

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "core/helios_config.h"
#include "transport/cluster_spec.h"
#include "transport/live_datacenter.h"
#include "workload/open_loop.h"

namespace helios {
namespace {

std::string TempDirFor(const std::string& tag) {
  const std::string dir =
      ::testing::TempDir() + "/helios_live_" + tag + "_" +
      std::to_string(::getpid());
  (void)std::system(("mkdir -p " + dir).c_str());
  return dir;
}

void WriteFileOrDie(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  ASSERT_TRUE(out.good()) << path;
  out << content;
}

int RunCommand(const std::string& cmd) {
  const int status = std::system(cmd.c_str());
  if (status < 0) return -1;
  return WIFEXITED(status) ? WEXITSTATUS(status) : -2;
}

// --- Supervised chaos: SIGKILL + relaunch + partition, must converge ------

TEST(LiveClusterTest, SupervisedKillRestartConverges) {
  const std::string dir = TempDirFor("chaos");
  const std::string cluster_path = dir + "/cluster.json";
  const std::string plan_path = dir + "/plan.json";

  transport::ClusterSpec spec;
  spec.datacenters = {{7441, dir + "/dc0.wal"},
                      {7442, dir + "/dc1.wal"},
                      {7443, dir + "/dc2.wal"}};
  spec.grace_time = Millis(2000);
  spec.log_interval = Millis(5);
  spec.wal_options.policy = wal::SyncPolicy::kGroupCommit;
  ASSERT_TRUE(spec.Validate().ok());
  WriteFileOrDie(cluster_path, spec.ToJson());

  // 2s of load. At 0.6s DC 1 dies (SIGKILL: no shutdown path runs); at
  // 0.7s the 0<->2 link partitions and heals at 1.2s; at 1.4s DC 1
  // relaunches, replays its WAL, and catches up from the survivors.
  WriteFileOrDie(plan_path,
                 "{\"node_events\":["
                 "{\"at_us\":600000,\"node\":1,\"up\":false},"
                 "{\"at_us\":1400000,\"node\":1,\"up\":true}],"
                 "\"partition_events\":["
                 "{\"at_us\":700000,\"a\":0,\"b\":2,\"partitioned\":true},"
                 "{\"at_us\":1200000,\"a\":0,\"b\":2,\"partitioned\":false}"
                 "]}");

  const std::string cmd = std::string(HELIOS_SUPERVISOR_BIN) +
                          " --cluster=" + cluster_path +
                          " --plan=" + plan_path +
                          " --heliosd=" HELIOS_HELIOSD_BIN
                          " --out_dir=" + dir +
                          " --load_rate=150 --load_duration_s=2"
                          " --settle_s=4 --seed=11";
  EXPECT_EQ(RunCommand(cmd), 0)
      << "supervisor reported divergence or a crashed daemon; artifacts in "
      << dir;
}

// --- Overload: graceful degradation under far-beyond-capacity load --------

core::HeliosConfig SoloConfig() {
  core::HeliosConfig config;
  config.num_datacenters = 1;
  config.log_interval = Millis(5);
  config.grace_time = Millis(1000);
  return config;
}

workload::OpenLoopStats OfferLoad(double rate_per_sec, int duration_ms,
                                  uint64_t max_inflight) {
  transport::LiveDatacenter dc(0, SoloConfig());
  transport::AdmissionConfig admission;
  admission.max_inflight = max_inflight;
  dc.SetAdmissionControl(admission);
  EXPECT_TRUE(dc.Listen(0).ok());
  EXPECT_TRUE(dc.ConnectPeers({dc.port()}).ok());
  dc.Start();

  workload::OpenLoopOptions opts;
  opts.rate_per_sec = rate_per_sec;
  opts.duration = std::chrono::milliseconds(duration_ms);
  opts.seed = 42;
  opts.backoff.max_retries = 4;
  workload::OpenLoopLoadGen gen(
      opts, [&dc](std::vector<WriteEntry> writes, CommitCallback done) {
        dc.Commit({}, std::move(writes), std::move(done));
      });
  workload::OpenLoopStats stats = gen.Run();

  const transport::OverloadStats overload = dc.overload_snapshot();
  if (max_inflight > 0) {
    EXPECT_EQ(overload.admitted + overload.shed, stats.issued)
        << "every issue is either admitted or shed";
    // The generator's busy count is the server's shed count.
    EXPECT_EQ(overload.shed, stats.busy_rejected);
  }
  dc.Stop();
  return stats;
}

TEST(LiveClusterTest, OverloadShedsInsteadOfCollapsing) {
  // Moderate load: everything admitted, nothing shed.
  const workload::OpenLoopStats calm = OfferLoad(
      /*rate_per_sec=*/60, /*duration_ms=*/1200, /*max_inflight=*/32);
  EXPECT_GT(calm.committed, 0u);
  EXPECT_EQ(calm.busy_rejected, 0u);

  // Far-beyond-capacity load against the same admission budget: the
  // server must shed (BUSY) rather than queue without bound, keep
  // admitted latency bounded, and keep goodput at least at the calm
  // level — the knee flattens, it does not collapse.
  const workload::OpenLoopStats storm = OfferLoad(
      /*rate_per_sec=*/4000, /*duration_ms=*/1500, /*max_inflight=*/32);
  EXPECT_GT(storm.busy_rejected, 0u) << "overload never tripped admission";
  EXPECT_GT(storm.committed, 0u);
  EXPECT_GE(storm.goodput_per_sec(), 0.8 * calm.goodput_per_sec())
      << "goodput collapsed under overload: storm="
      << storm.goodput_per_sec() << "/s calm=" << calm.goodput_per_sec()
      << "/s";
  ASSERT_GT(storm.commit_latency_ms.count(), 0u);
  // Admitted work rides a bounded queue: p99 stays within the same order
  // as the uncontended commit path (seconds would mean unbounded queue).
  EXPECT_LT(storm.commit_latency_ms.Percentile(99.0), 1000.0);
  // Retry storms are bounded: every arrival reached a terminal state.
  EXPECT_EQ(storm.undrained, 0u);
  EXPECT_EQ(storm.committed + storm.aborted + storm.dropped,
            storm.arrivals);
}

TEST(LiveClusterTest, AdmissionDisabledNeverSheds) {
  const workload::OpenLoopStats stats = OfferLoad(
      /*rate_per_sec=*/100, /*duration_ms=*/600, /*max_inflight=*/0);
  EXPECT_GT(stats.committed, 0u);
  EXPECT_EQ(stats.busy_rejected, 0u);
  EXPECT_EQ(stats.dropped, 0u);
}

}  // namespace
}  // namespace helios
