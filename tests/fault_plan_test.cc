// Tests for the chaos layer's building blocks: FaultPlan validation and
// JSON round-trips, probabilistic fault injection inside sim::Network
// (determinism, loss, duplication, reordering, delay spikes), and the
// ReliableMesh session layer (delivery under loss, in-order delivery,
// duplicate suppression, and the strict passthrough contract when off).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/fault_plan.h"
#include "sim/network.h"
#include "sim/reliable.h"
#include "sim/scheduler.h"

namespace helios::sim {
namespace {

// --- FaultPlan JSON -----------------------------------------------------------

TEST(FaultPlanTest, EmptyPlanRendersAsEmptyObject) {
  FaultPlan plan;
  EXPECT_EQ(plan.ToJson(), "{}");
  auto parsed = FaultPlan::FromJson("{}");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().empty());
  EXPECT_TRUE(parsed.value() == plan);
}

TEST(FaultPlanTest, JsonRoundTripPreservesEveryField) {
  FaultPlan plan;
  LinkFault f;
  f.from = 1;
  f.to = 3;
  f.loss = 0.1;
  f.duplicate = 0.05;
  f.reorder = 0.2;
  f.reorder_window = Millis(30);
  f.delay = Millis(7);
  f.active_from = Seconds(2);
  f.active_until = Seconds(9);
  plan.AddLinkFault(f)
      .WithLoss(0.02)
      .AddCrash(Seconds(3), 2)
      .AddRecover(Seconds(5), 2)
      .AddPartition(Seconds(1), 0, 4)
      .AddHeal(Seconds(4), 0, 4);

  const std::string json = plan.ToJson();
  auto parsed = FaultPlan::FromJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed.value() == plan);
  // Deterministic rendering: re-serializing gives the same bytes.
  EXPECT_EQ(parsed.value().ToJson(), json);
}

TEST(FaultPlanTest, FromJsonRejectsUnknownKeys) {
  auto parsed = FaultPlan::FromJson("{\"link_fautls\": []}");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().ToString().find("unknown fault-plan field"),
            std::string::npos);
}

TEST(FaultPlanTest, ValidateChecksRangesAndIndices) {
  {
    FaultPlan plan;
    plan.WithLoss(1.5);
    EXPECT_FALSE(plan.Validate(5).ok());
  }
  {
    FaultPlan plan;
    LinkFault f;
    f.from = 7;  // Out of range for a 5-DC deployment.
    f.loss = 0.1;
    plan.AddLinkFault(f);
    EXPECT_FALSE(plan.Validate(5).ok());
  }
  {
    FaultPlan plan;
    LinkFault f;
    f.from = 2;
    f.to = 2;  // Self-link.
    f.loss = 0.1;
    plan.AddLinkFault(f);
    EXPECT_FALSE(plan.Validate(5).ok());
  }
  {
    FaultPlan plan;
    LinkFault f;
    f.reorder = 0.5;  // Reordering needs a positive window.
    plan.AddLinkFault(f);
    EXPECT_FALSE(plan.Validate(5).ok());
  }
  {
    FaultPlan plan;
    plan.AddCrash(Seconds(1), 9);  // Bad node index.
    const Status s = plan.Validate(5);
    ASSERT_FALSE(s.ok());
    // The message must name the dimension: node indices run along the
    // datacenter axis, never the shard axis (src/shard deployments crash
    // all of a datacenter's shards together).
    EXPECT_NE(s.ToString().find("datacenter axis"), std::string::npos)
        << s.ToString();
    EXPECT_NE(s.ToString().find("shard"), std::string::npos) << s.ToString();
  }
  {
    FaultPlan plan;
    LinkFault f;
    f.loss = 0.3;
    f.active_from = Seconds(5);
    f.active_until = Seconds(2);  // Inverted window.
    plan.AddLinkFault(f);
    EXPECT_FALSE(plan.Validate(5).ok());
  }
  {
    FaultPlan plan;
    plan.WithLoss(0.1).WithDuplication(0.05).AddCrash(Seconds(1), 0);
    EXPECT_TRUE(plan.Validate(5).ok());
  }
}

TEST(FaultPlanTest, HasMessageFaultsIgnoresTimedEvents) {
  FaultPlan plan;
  plan.AddCrash(Seconds(1), 0).AddPartition(Seconds(2), 0, 1);
  EXPECT_FALSE(plan.HasMessageFaults());
  plan.WithLoss(0.1);
  EXPECT_TRUE(plan.HasMessageFaults());
}

Network MakePair(Scheduler* scheduler, uint64_t seed = 7) {
  Network network(scheduler, 2, seed);
  network.SetLink(0, 1, LinkSpec{Millis(10), 0});
  return network;
}

// --- Gray faults --------------------------------------------------------------

TEST(GrayFaultTest, JsonRoundTripPreservesEveryKind) {
  FaultPlan plan;
  plan.AddSlowLink(Seconds(1), Seconds(5), 0, 2, 4.0, Millis(3))
      .AddAsymPartition(Seconds(2), Seconds(6), 1, 0)
      .AddProcessStall(Seconds(3), Seconds(4), 2)
      .AddFsyncStall(Seconds(1), Seconds(7), 0, Millis(20));
  ASSERT_TRUE(plan.Validate(3).ok()) << plan.Validate(3).ToString();
  const std::string json = plan.ToJson();
  auto parsed = FaultPlan::FromJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed.value() == plan);
  EXPECT_EQ(parsed.value().ToJson(), json);
}

TEST(GrayFaultTest, GrayFaultsDoNotCountAsMessageFaults) {
  // Gray degradations are deterministic: they must neither engage the
  // fault RNG nor flip auto-mode reliable delivery on.
  FaultPlan plan;
  plan.AddSlowLink(0, kMaxSimTime, 0, 1, 10.0);
  EXPECT_FALSE(plan.HasMessageFaults());
  EXPECT_TRUE(plan.HasGrayFaults());
  EXPECT_TRUE(plan.HasGrayLinkFaults());
  FaultPlan stalls;
  stalls.AddProcessStall(Seconds(1), Seconds(2), 0);
  EXPECT_TRUE(stalls.HasGrayFaults());
  EXPECT_FALSE(stalls.HasGrayLinkFaults());
  EXPECT_FALSE(stalls.empty());
}

TEST(GrayFaultTest, ValidateChecksKindSpecificFields) {
  {
    FaultPlan plan;
    plan.AddSlowLink(0, Seconds(1), 0, 1, 0.5);  // Factor < 1.
    EXPECT_FALSE(plan.Validate(3).ok());
  }
  {
    FaultPlan plan;
    plan.AddSlowLink(0, Seconds(1), 0, 1, 1.0);  // No effect at all.
    EXPECT_FALSE(plan.Validate(3).ok());
  }
  {
    FaultPlan plan;
    plan.AddSlowLink(0, Seconds(1), 2, 2, 3.0);  // Self-link.
    EXPECT_FALSE(plan.Validate(3).ok());
  }
  {
    FaultPlan plan;
    plan.AddProcessStall(0, kMaxSimTime, 1);  // Unbounded stall.
    EXPECT_FALSE(plan.Validate(3).ok());
  }
  {
    FaultPlan plan;
    plan.AddFsyncStall(0, Seconds(1), 1, 0);  // No penalty.
    EXPECT_FALSE(plan.Validate(3).ok());
  }
  {
    FaultPlan plan;
    plan.AddProcessStall(0, Seconds(1), 9);  // Bad node index.
    EXPECT_FALSE(plan.Validate(3).ok());
  }
  {
    FaultPlan plan;
    plan.AddAsymPartition(0, Seconds(1), 0, 1)
        .AddProcessStall(Seconds(1), Seconds(2), 2)
        .AddFsyncStall(0, Seconds(3), 1, Millis(5))
        .AddSlowLink(0, Seconds(4), kAnyDc, 2, 2.0);
    EXPECT_TRUE(plan.Validate(3).ok()) << plan.Validate(3).ToString();
  }
}

TEST(GrayNetworkTest, SlowLinkMultipliesLatencyAndPreservesFifo) {
  Scheduler scheduler;
  Network network = MakePair(&scheduler);
  FaultPlan plan;
  plan.AddSlowLink(0, kMaxSimTime, 0, 1, 5.0, Millis(2));
  ASSERT_TRUE(network.InstallGrayFaults(plan).ok());
  std::vector<SimTime> arrivals;
  network.Send(0, 1, [&] { arrivals.push_back(scheduler.Now()); });
  network.Send(1, 0, [&] { arrivals.push_back(scheduler.Now()); });
  scheduler.RunUntil(Seconds(1));
  ASSERT_EQ(arrivals.size(), 2u);
  // Reverse direction is untouched (10 ms); forward is 10*5 + 2 = 52 ms.
  EXPECT_EQ(arrivals[0], Millis(10));
  EXPECT_EQ(arrivals[1], Millis(52));
  EXPECT_EQ(network.gray_slowed(), 1u);
}

TEST(GrayNetworkTest, AsymPartitionDropsOneDirectionOnly) {
  Scheduler scheduler;
  Network network = MakePair(&scheduler);
  FaultPlan plan;
  plan.AddAsymPartition(0, kMaxSimTime, 0, 1);
  ASSERT_TRUE(network.InstallGrayFaults(plan).ok());
  int forward = 0;
  int backward = 0;
  for (int i = 0; i < 10; ++i) {
    network.Send(0, 1, [&] { ++forward; });
    network.Send(1, 0, [&] { ++backward; });
  }
  scheduler.RunUntil(Seconds(1));
  EXPECT_EQ(forward, 0);
  EXPECT_EQ(backward, 10);
  EXPECT_EQ(network.gray_asym_drops(), 10u);
}

TEST(GrayNetworkTest, WindowedSlowLinkRelents) {
  Scheduler scheduler;
  Network network = MakePair(&scheduler);
  FaultPlan plan;
  plan.AddSlowLink(Seconds(1), Seconds(2), 0, 1, 10.0);
  ASSERT_TRUE(network.InstallGrayFaults(plan).ok());
  std::vector<SimTime> arrivals;
  auto probe = [&](SimTime at) {
    scheduler.At(at, [&] {
      network.Send(0, 1, [&] { arrivals.push_back(scheduler.Now()); });
    });
  };
  probe(Millis(500));   // Before: 10 ms.
  probe(Millis(1500));  // During: 100 ms.
  probe(Millis(2500));  // After: 10 ms again.
  scheduler.RunUntil(Seconds(10));
  ASSERT_EQ(arrivals.size(), 3u);
  EXPECT_EQ(arrivals[0], Millis(510));
  EXPECT_EQ(arrivals[1], Millis(1600));
  EXPECT_EQ(arrivals[2], Millis(2510));
}

TEST(GrayNetworkTest, InstallingGrayFaultsConsumesNoRandomness) {
  // The latency stream must be bit-identical with and without an installed
  // (but inactive-window) gray plan, and identical on unaffected links even
  // while one is active.
  std::vector<SimTime> bare;
  std::vector<SimTime> gray;
  for (int run = 0; run < 2; ++run) {
    Scheduler scheduler;
    Network network(&scheduler, 3, 7);
    network.SetLink(0, 1, LinkSpec{Millis(10), Millis(2)});
    network.SetLink(0, 2, LinkSpec{Millis(10), Millis(2)});
    network.SetLink(1, 2, LinkSpec{Millis(10), Millis(2)});
    if (run == 1) {
      FaultPlan plan;
      plan.AddSlowLink(0, kMaxSimTime, 0, 1, 3.0);
      ASSERT_TRUE(network.InstallGrayFaults(plan).ok());
    }
    auto& out = run == 0 ? bare : gray;
    for (int i = 0; i < 50; ++i) {
      network.Send(1, 2, [&] { out.push_back(scheduler.Now()); });
      network.Send(0, 1, [] {});  // Affected link: keeps the RNG in step.
    }
    scheduler.RunUntil(Seconds(10));
  }
  EXPECT_EQ(bare, gray);
}

// --- Network fault injection --------------------------------------------------

TEST(NetworkFaultTest, FullLossDropsEverything) {
  Scheduler scheduler;
  Network network = MakePair(&scheduler);
  FaultPlan plan;
  plan.WithLoss(1.0);
  ASSERT_TRUE(network.InstallMessageFaults(plan, 1).ok());
  int delivered = 0;
  for (int i = 0; i < 50; ++i) {
    network.Send(0, 1, [&] { ++delivered; });
  }
  scheduler.RunUntil(Seconds(10));
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(network.fault_drops(), 50u);
}

TEST(NetworkFaultTest, FullDuplicationDeliversTwice) {
  Scheduler scheduler;
  Network network = MakePair(&scheduler);
  FaultPlan plan;
  plan.WithDuplication(1.0);
  ASSERT_TRUE(network.InstallMessageFaults(plan, 1).ok());
  int delivered = 0;
  for (int i = 0; i < 20; ++i) {
    network.Send(0, 1, [&] { ++delivered; });
  }
  scheduler.RunUntil(Seconds(10));
  EXPECT_EQ(delivered, 40);
  EXPECT_EQ(network.fault_duplicates(), 20u);
}

TEST(NetworkFaultTest, DelaySpikeAddsDeterministicLatency) {
  Scheduler scheduler;
  Network network = MakePair(&scheduler);
  FaultPlan plan;
  LinkFault f;
  f.delay = Millis(100);
  plan.AddLinkFault(f);
  ASSERT_TRUE(network.InstallMessageFaults(plan, 1).ok());
  SimTime arrival = 0;
  network.Send(0, 1, [&] { arrival = scheduler.Now(); });
  scheduler.RunUntil(Seconds(1));
  // Zero-stddev link: exactly one-way mean + spike.
  EXPECT_EQ(arrival, Millis(110));
}

TEST(NetworkFaultTest, SameSeedSameDrops) {
  std::vector<int> delivered_order[2];
  for (int run = 0; run < 2; ++run) {
    Scheduler scheduler;
    Network network(&scheduler, 2, 7);
    network.SetLink(0, 1, LinkSpec{Millis(10), Millis(2)});
    FaultPlan plan;
    plan.WithLoss(0.3);
    ASSERT_TRUE(network.InstallMessageFaults(plan, 99).ok());
    for (int i = 0; i < 100; ++i) {
      network.Send(0, 1, [&, i] { delivered_order[run].push_back(i); });
    }
    scheduler.RunUntil(Seconds(10));
  }
  EXPECT_FALSE(delivered_order[0].empty());
  EXPECT_LT(delivered_order[0].size(), 100u);
  EXPECT_EQ(delivered_order[0], delivered_order[1]);
}

TEST(NetworkFaultTest, ReorderingLetsMessagesOvertake) {
  Scheduler scheduler;
  Network network = MakePair(&scheduler);
  FaultPlan plan;
  LinkFault f;
  f.reorder = 0.5;
  f.reorder_window = Millis(200);
  plan.AddLinkFault(f);
  ASSERT_TRUE(network.InstallMessageFaults(plan, 3).ok());
  std::vector<int> order;
  for (int i = 0; i < 100; ++i) {
    network.Send(0, 1, [&, i] { order.push_back(i); });
  }
  scheduler.RunUntil(Seconds(10));
  ASSERT_EQ(order.size(), 100u);
  EXPECT_GT(network.fault_reorders(), 0u);
  // At least one message overtook an earlier one.
  bool out_of_order = false;
  for (size_t i = 1; i < order.size(); ++i) {
    if (order[i] < order[i - 1]) out_of_order = true;
  }
  EXPECT_TRUE(out_of_order);
}

TEST(NetworkFaultTest, WindowedFaultOnlyFiresInsideWindow) {
  Scheduler scheduler;
  Network network = MakePair(&scheduler);
  FaultPlan plan;
  LinkFault f;
  f.loss = 1.0;
  f.active_from = Seconds(1);
  f.active_until = Seconds(2);
  plan.AddLinkFault(f);
  ASSERT_TRUE(network.InstallMessageFaults(plan, 1).ok());
  int delivered = 0;
  scheduler.At(Millis(500), [&] { network.Send(0, 1, [&] { ++delivered; }); });
  scheduler.At(Millis(1500), [&] { network.Send(0, 1, [&] { ++delivered; }); });
  scheduler.At(Millis(2500), [&] { network.Send(0, 1, [&] { ++delivered; }); });
  scheduler.RunUntil(Seconds(10));
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(network.fault_drops(), 1u);
}

// --- ReliableMesh -------------------------------------------------------------

TEST(ReliableMeshTest, DeliversEverythingUnderHeavyLoss) {
  Scheduler scheduler;
  Network network = MakePair(&scheduler);
  FaultPlan plan;
  LinkFault f;
  f.loss = 0.5;
  f.active_until = Seconds(30);  // Faults relent eventually.
  plan.AddLinkFault(f);
  ASSERT_TRUE(network.InstallMessageFaults(plan, 11).ok());
  ReliableMesh mesh(&scheduler, &network);
  int delivered = 0;
  for (int i = 0; i < 100; ++i) {
    mesh.Send(0, 1, [&] { ++delivered; });
  }
  scheduler.RunUntil(Seconds(120));
  EXPECT_EQ(delivered, 100);
  EXPECT_GT(mesh.retransmits(), 0u);
  EXPECT_EQ(mesh.gave_up(), 0u);
}

TEST(ReliableMeshTest, DeliversInOrderUnderReordering) {
  Scheduler scheduler;
  Network network = MakePair(&scheduler);
  FaultPlan plan;
  LinkFault f;
  f.reorder = 0.5;
  f.reorder_window = Millis(200);
  plan.AddLinkFault(f);
  ASSERT_TRUE(network.InstallMessageFaults(plan, 3).ok());
  ReliableMesh mesh(&scheduler, &network);
  std::vector<int> order;
  for (int i = 0; i < 100; ++i) {
    mesh.Send(0, 1, [&, i] { order.push_back(i); });
  }
  scheduler.RunUntil(Seconds(60));
  ASSERT_EQ(order.size(), 100u);
  for (size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(order[i], static_cast<int>(i));
  }
}

TEST(ReliableMeshTest, SuppressesNetworkDuplicates) {
  Scheduler scheduler;
  Network network = MakePair(&scheduler);
  FaultPlan plan;
  plan.WithDuplication(1.0);
  ASSERT_TRUE(network.InstallMessageFaults(plan, 5).ok());
  ReliableMesh mesh(&scheduler, &network);
  int delivered = 0;
  for (int i = 0; i < 20; ++i) {
    mesh.Send(0, 1, [&] { ++delivered; });
  }
  scheduler.RunUntil(Seconds(60));
  EXPECT_EQ(delivered, 20);  // Exactly once despite 100% duplication.
  EXPECT_GT(mesh.duplicates_suppressed(), 0u);
}

TEST(ReliableMeshTest, DisabledMeshIsStrictPassthrough) {
  // The determinism contract: with the mesh disabled, the event stream is
  // identical to not having a mesh at all — same event count, same
  // delivery times, zero protocol overhead (no acks, no timers).
  SimTime direct_arrival = 0;
  uint64_t direct_events = 0;
  {
    Scheduler scheduler;
    Network network(&scheduler, 2, 7);
    network.SetLink(0, 1, LinkSpec{Millis(10), Millis(3)});
    SimTime arrival = 0;
    for (int i = 0; i < 50; ++i) {
      network.Send(0, 1, [&] { arrival = scheduler.Now(); });
    }
    scheduler.RunUntil(Seconds(5));
    direct_arrival = arrival;
    direct_events = scheduler.events_processed();
  }
  {
    Scheduler scheduler;
    Network network(&scheduler, 2, 7);
    network.SetLink(0, 1, LinkSpec{Millis(10), Millis(3)});
    ReliableConfig config;
    config.enabled = false;
    ReliableMesh mesh(&scheduler, &network, config);
    SimTime arrival = 0;
    for (int i = 0; i < 50; ++i) {
      mesh.Send(0, 1, [&] { arrival = scheduler.Now(); });
    }
    scheduler.RunUntil(Seconds(5));
    EXPECT_EQ(arrival, direct_arrival);
    EXPECT_EQ(scheduler.events_processed(), direct_events);
    EXPECT_EQ(mesh.retransmits(), 0u);
    EXPECT_EQ(mesh.acks_sent(), 0u);
  }
}

TEST(ReliableMeshTest, BoundedAttemptsGiveUpOnBlackhole) {
  Scheduler scheduler;
  Network network = MakePair(&scheduler);
  FaultPlan plan;
  plan.WithLoss(1.0);  // Permanent blackhole.
  ASSERT_TRUE(network.InstallMessageFaults(plan, 1).ok());
  ReliableConfig config;
  config.max_attempts = 3;
  ReliableMesh mesh(&scheduler, &network, config);
  int delivered = 0;
  mesh.Send(0, 1, [&] { ++delivered; });
  scheduler.RunUntil(Seconds(120));
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(mesh.gave_up(), 1u);
}

// --- Network failure-injection validation (crash/partition) -------------------

TEST(NetworkValidationTest, RejectsBadIndicesWithCrispErrors) {
  Scheduler scheduler;
  Network network(&scheduler, 3, 7);
  {
    const Status s = network.CrashNode(7);
    ASSERT_FALSE(s.ok());
    EXPECT_NE(s.ToString().find("does not exist"), std::string::npos);
    EXPECT_NE(s.ToString().find("0..2"), std::string::npos);
  }
  EXPECT_FALSE(network.RecoverNode(-1).ok());
  EXPECT_FALSE(network.SetPartitioned(0, 3, true).ok());
  EXPECT_FALSE(network.SetPartitioned(-1, 1, true).ok());
  {
    const Status s = network.SetPartitioned(1, 1, true);
    ASSERT_FALSE(s.ok());
    EXPECT_NE(s.ToString().find("itself"), std::string::npos);
  }
  EXPECT_TRUE(network.CrashNode(2).ok());
  EXPECT_FALSE(network.IsUp(2));
  EXPECT_TRUE(network.RecoverNode(2).ok());
  EXPECT_TRUE(network.IsUp(2));
  EXPECT_TRUE(network.SetPartitioned(0, 1, true).ok());
  EXPECT_TRUE(network.IsPartitioned(0, 1));
}

}  // namespace
}  // namespace helios::sim
