// Chaos sweep: every protocol family survives a lossy, duplicating WAN.
//
// Each grid cell runs a full harness experiment on the paper's Table 2
// topology with a FaultPlan losing and duplicating messages on every
// link and (in auto mode) the ReliableMesh session layer underneath, then
// asserts the three invariants the chaos layer must preserve:
//   - safety: the committed history stays conflict-serializable;
//   - progress: every datacenter's clients keep committing;
//   - visibility: the metrics snapshot shows the faults actually fired
//     (drops, duplicates) and the session layer actually worked
//     (retransmits, suppressed duplicates).
// A final test locks in the sweep engine's determinism under chaos: the
// aggregated JSON of a loss grid is bit-identical at --jobs=1 and
// --jobs=4.

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "harness/experiment.h"
#include "harness/experiment_spec.h"
#include "harness/sweep.h"
#include "sim/fault_plan.h"

namespace helios::harness {
namespace {

uint64_t CounterOr0(const obs::MetricsSnapshot& m, const std::string& name) {
  const auto* c = m.FindCounter(name);
  return c == nullptr ? 0 : c->value;
}

/// (protocol, loss, duplication): the loss x duplication x f grid, with f
/// varied through the Helios protocol family (f = 0, 1, 2).
class ChaosSweep : public ::testing::TestWithParam<
                       std::tuple<Protocol, double, double>> {};

TEST_P(ChaosSweep, SerializableWithProgressUnderLossAndDuplication) {
  const auto [protocol, loss, dup] = GetParam();

  ExperimentSpec spec;
  spec.WithProtocol(protocol)
      .WithTopology("table2")
      .WithClients(10)
      .WithWarmup(Seconds(1))
      .WithMeasure(Seconds(4))
      .WithDrain(Seconds(10))
      .WithSeed(42)
      .WithNumKeys(500)
      .WithLoss(loss)
      .WithSerializabilityCheck();
  if (dup > 0.0) spec.WithDuplication(dup);
  ASSERT_TRUE(spec.Validate().ok());

  auto cfg_or = spec.ToConfig();
  ASSERT_TRUE(cfg_or.ok()) << cfg_or.status().ToString();
  ExperimentConfig cfg = std::move(cfg_or).value();
  cfg.trace.enabled = true;  // For the metrics snapshot.
  const ExperimentResult r = RunExperiment(cfg);

  // Safety.
  ASSERT_TRUE(r.serializability.has_value());
  EXPECT_TRUE(r.serializability->ok()) << r.serializability->ToString();

  // Progress: every datacenter's clients committed transactions despite
  // the faults (a wedged request/reply protocol would flatline here).
  for (const DcResult& dc : r.per_dc) {
    EXPECT_GT(dc.committed, 0u) << dc.name;
  }

  // Visibility: faults fired and the session layer handled them.
  EXPECT_GT(CounterOr0(r.metrics, "net.fault_drops"), 0u);
  EXPECT_GT(CounterOr0(r.metrics, "reliable.retransmits"), 0u);
  EXPECT_EQ(CounterOr0(r.metrics, "reliable.gave_up"), 0u);
  if (dup > 0.0) {
    EXPECT_GT(CounterOr0(r.metrics, "net.fault_duplicates"), 0u);
    EXPECT_GT(CounterOr0(r.metrics, "reliable.duplicates_suppressed"), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ChaosSweep,
    ::testing::Values(
        std::make_tuple(Protocol::kHelios0, 0.10, 0.05),
        std::make_tuple(Protocol::kHelios1, 0.10, 0.05),
        std::make_tuple(Protocol::kHelios2, 0.05, 0.0),
        std::make_tuple(Protocol::kReplicatedCommit, 0.10, 0.05),
        std::make_tuple(Protocol::kTwoPcPaxos, 0.10, 0.05)),
    [](const ::testing::TestParamInfo<std::tuple<Protocol, double, double>>&
           info) {
      std::string name = ProtocolToken(std::get<0>(info.param));
      for (char& c : name) {
        if (c == '-' || c == '/') c = '_';
      }
      name += "_loss" +
              std::to_string(static_cast<int>(std::get<1>(info.param) * 100));
      name += "_dup" +
              std::to_string(static_cast<int>(std::get<2>(info.param) * 100));
      return name;
    });

// Timed chaos through the spec: a crash/recover and a partition/heal
// scheduled by the fault plan, plus a loss window that ends mid-run.
// After everything heals the cluster keeps committing at every DC. The
// crash is a real amnesia restart (docs/RECOVERY.md), so the crashed
// datacenter's clients need the commit timeout to ride out requests the
// outage swallowed.
TEST(ChaosTest, TimedCrashPartitionAndLossWindowThroughSpec) {
  sim::FaultPlan plan;
  sim::LinkFault lf;
  lf.loss = 0.15;
  lf.active_until = Seconds(6);  // Faults relent.
  plan.AddLinkFault(lf);
  plan.AddCrash(Seconds(2), 4).AddRecover(Seconds(4), 4);
  plan.AddPartition(Seconds(3), 0, 1).AddHeal(Seconds(5), 0, 1);

  ExperimentSpec spec;
  spec.WithProtocol(Protocol::kHelios1)
      .WithClients(10)
      .WithWarmup(Seconds(1))
      .WithMeasure(Seconds(8))
      .WithDrain(Seconds(10))
      .WithSeed(7)
      .WithNumKeys(500)
      .WithFaultPlan(plan)
      .WithClientTimeout(Seconds(2), /*retries=*/10)
      .WithSerializabilityCheck();
  ASSERT_TRUE(spec.Validate().ok());

  auto cfg_or = spec.ToConfig();
  ASSERT_TRUE(cfg_or.ok());
  ExperimentConfig cfg = std::move(cfg_or).value();
  cfg.trace.enabled = true;
  const ExperimentResult r = RunExperiment(cfg);

  ASSERT_TRUE(r.serializability.has_value());
  EXPECT_TRUE(r.serializability->ok()) << r.serializability->ToString();
  for (const DcResult& dc : r.per_dc) {
    EXPECT_GT(dc.committed, 0u) << dc.name;
  }
  EXPECT_GT(CounterOr0(r.metrics, "net.fault_drops"), 0u);
}

// The spec JSON round-trips the whole chaos configuration, so sweep
// documents echo exactly what ran.
TEST(ChaosTest, SpecJsonRoundTripsFaultPlanAndReliable) {
  ExperimentSpec spec;
  spec.WithProtocol(Protocol::kHelios1)
      .WithLoss(0.1)
      .WithDuplication(0.05)
      .WithReliable("on");
  spec.fault_plan.AddCrash(Seconds(2), 1);
  const std::string json = spec.ToJson();
  EXPECT_NE(json.find("\"fault_plan\""), std::string::npos);
  EXPECT_NE(json.find("\"reliable\""), std::string::npos);
  auto parsed = ExperimentSpec::FromJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed.value() == spec);
  // Defaults are omitted: a spec without chaos mentions neither key.
  ExperimentSpec plain;
  EXPECT_EQ(plain.ToJson().find("fault_plan"), std::string::npos);
  EXPECT_EQ(plain.ToJson().find("reliable"), std::string::npos);
}

// Sweep determinism under chaos: the aggregated JSON of a loss-grid sweep
// is bit-identical however many worker threads ran it.
TEST(ChaosTest, LossGridSweepJsonIsBitIdenticalAcrossJobCounts) {
  std::vector<ExperimentSpec> specs;
  for (double loss : {0.0, 0.05, 0.10}) {
    ExperimentSpec spec;
    spec.WithProtocol(Protocol::kHelios0)
        .WithClients(5)
        .WithWarmup(Seconds(1))
        .WithMeasure(Seconds(2))
        .WithDrain(Seconds(5))
        .WithSeed(3)
        .WithNumKeys(200)
        .WithLabel("loss " + std::to_string(loss));
    if (loss > 0.0) spec.WithLoss(loss);
    specs.push_back(std::move(spec));
  }

  SweepOptions serial;
  serial.jobs = 1;
  const std::string json1 = SweepRunner(serial).Run(specs).ToJson();
  SweepOptions parallel;
  parallel.jobs = 4;
  const std::string json4 = SweepRunner(parallel).Run(specs).ToJson();
  EXPECT_EQ(json1, json4);
}

}  // namespace
}  // namespace helios::harness
