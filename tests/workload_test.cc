// Tests for the T-YCSB workload generator and the closed-loop client.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>

#include "core/helios_cluster.h"
#include "harness/topology.h"
#include "sim/network.h"
#include "sim/scheduler.h"
#include "workload/client.h"
#include "workload/tycsb.h"

namespace helios::workload {
namespace {

TEST(TYcsbTest, PlansHaveConfiguredShape) {
  WorkloadConfig cfg;
  cfg.ops_per_txn = 5;
  TYcsbGenerator gen(cfg, 1);
  for (int i = 0; i < 500; ++i) {
    const TxnPlan plan = gen.NextTxn();
    EXPECT_EQ(plan.reads.size() + plan.writes.size(), 5u);
    EXPECT_GE(plan.writes.size(), 1u);  // At least one write, per the model.
    EXPECT_FALSE(plan.read_only);
  }
}

TEST(TYcsbTest, KeysWithinTransactionAreDistinct) {
  WorkloadConfig cfg;
  cfg.num_keys = 20;  // Small pool: collisions would be likely.
  cfg.zipf_theta = 0.9;
  TYcsbGenerator gen(cfg, 2);
  for (int i = 0; i < 200; ++i) {
    const TxnPlan plan = gen.NextTxn();
    std::set<Key> keys(plan.reads.begin(), plan.reads.end());
    keys.insert(plan.writes.begin(), plan.writes.end());
    EXPECT_EQ(keys.size(), plan.reads.size() + plan.writes.size());
  }
}

TEST(TYcsbTest, HalfReadsHalfWritesOnAverage) {
  WorkloadConfig cfg;
  TYcsbGenerator gen(cfg, 3);
  uint64_t reads = 0;
  uint64_t writes = 0;
  for (int i = 0; i < 2000; ++i) {
    const TxnPlan plan = gen.NextTxn();
    reads += plan.reads.size();
    writes += plan.writes.size();
  }
  const double write_fraction =
      static_cast<double>(writes) / static_cast<double>(reads + writes);
  EXPECT_NEAR(write_fraction, 0.5, 0.03);
}

TEST(TYcsbTest, KeysStayInPool) {
  WorkloadConfig cfg;
  cfg.num_keys = 100;
  TYcsbGenerator gen(cfg, 4);
  for (int i = 0; i < 200; ++i) {
    const TxnPlan plan = gen.NextTxn();
    for (const Key& k : plan.reads) {
      EXPECT_GE(k, TYcsbGenerator::KeyName(0));
      EXPECT_LT(k, TYcsbGenerator::KeyName(100));
    }
  }
}

TEST(TYcsbTest, DeterministicGivenSeed) {
  WorkloadConfig cfg;
  TYcsbGenerator a(cfg, 42);
  TYcsbGenerator b(cfg, 42);
  for (int i = 0; i < 100; ++i) {
    const TxnPlan pa = a.NextTxn();
    const TxnPlan pb = b.NextTxn();
    EXPECT_EQ(pa.reads, pb.reads);
    EXPECT_EQ(pa.writes, pb.writes);
  }
}

TEST(TYcsbTest, ReadOnlyFractionHonored) {
  WorkloadConfig cfg;
  cfg.read_only_fraction = 0.3;
  TYcsbGenerator gen(cfg, 5);
  int read_only = 0;
  const int total = 3000;
  for (int i = 0; i < total; ++i) {
    const TxnPlan plan = gen.NextTxn();
    if (plan.read_only) {
      ++read_only;
      EXPECT_TRUE(plan.writes.empty());
      EXPECT_EQ(plan.reads.size(), 5u);
    }
  }
  EXPECT_NEAR(static_cast<double>(read_only) / total, 0.3, 0.03);
}

TEST(TYcsbTest, ZipfSkewShowsInKeyFrequencies) {
  WorkloadConfig cfg;
  cfg.zipf_theta = 0.9;
  cfg.num_keys = 1000;
  TYcsbGenerator gen(cfg, 6);
  std::map<Key, int> counts;
  for (int i = 0; i < 3000; ++i) {
    for (const Key& k : gen.NextTxn().writes) counts[k]++;
  }
  // The hottest key must be much more frequent than the median.
  int max_count = 0;
  for (const auto& [k, c] : counts) max_count = std::max(max_count, c);
  EXPECT_GT(max_count, 30);
}

TEST(TYcsbTest, ValueSizeRespected) {
  WorkloadConfig cfg;
  cfg.value_size = 64;
  TYcsbGenerator gen(cfg, 7);
  EXPECT_EQ(gen.NextValue().size(), 64u);
}

TEST(ClientMetricsTest, MergeAccumulates) {
  ClientMetrics a;
  ClientMetrics b;
  a.committed = 3;
  a.aborted = 1;
  a.ops_committed = 15;
  a.commit_latency_ms.Add(10.0);
  b.committed = 2;
  b.aborted = 2;
  b.ops_committed = 10;
  b.commit_latency_ms.Add(20.0);
  a.Merge(b);
  EXPECT_EQ(a.committed, 5u);
  EXPECT_EQ(a.aborted, 3u);
  EXPECT_EQ(a.ops_committed, 25u);
  EXPECT_EQ(a.commit_latency_ms.count(), 2u);
  EXPECT_NEAR(a.abort_rate(), 3.0 / 8.0, 1e-9);
}

class ClientLoopTest : public ::testing::Test {
 protected:
  void SetUp() override {
    network_ = std::make_unique<sim::Network>(&scheduler_, 2, 1);
    const auto topo = harness::UniformTopology(2, 40.0);
    harness::ConfigureNetwork(topo, network_.get());
    core::HeliosConfig cfg;
    cfg.num_datacenters = 2;
    cluster_ = std::make_unique<core::HeliosCluster>(&scheduler_,
                                                     network_.get(), cfg);
    workload_.num_keys = 100;
    for (uint64_t i = 0; i < workload_.num_keys; ++i) {
      cluster_->LoadInitialAll(TYcsbGenerator::KeyName(i), "init");
    }
    cluster_->Start();
  }

  sim::Scheduler scheduler_;
  std::unique_ptr<sim::Network> network_;
  std::unique_ptr<core::HeliosCluster> cluster_;
  WorkloadConfig workload_;
};

TEST_F(ClientLoopTest, ClosedLoopIssuesSequentially) {
  ClosedLoopClient client(1, 0, cluster_.get(), &scheduler_, workload_, 11,
                          /*measure_from=*/0, /*measure_until=*/Seconds(5),
                          /*stop_at=*/Seconds(5));
  client.Start();
  scheduler_.RunUntil(Seconds(6));
  // One outstanding transaction at a time; with ~25-30ms commits and local
  // reads, expect on the order of 100+ transactions in 5 seconds.
  EXPECT_GT(client.metrics().committed, 50u);
  EXPECT_EQ(client.metrics().committed + client.metrics().aborted,
            client.txns_issued());
  EXPECT_GT(client.metrics().ops_committed,
            client.metrics().committed * 4);  // ~5 ops each.
}

TEST_F(ClientLoopTest, MeasurementWindowFiltersSamples) {
  ClosedLoopClient client(1, 0, cluster_.get(), &scheduler_, workload_, 11,
                          /*measure_from=*/Seconds(2),
                          /*measure_until=*/Seconds(4),
                          /*stop_at=*/Seconds(6));
  client.Start();
  scheduler_.RunUntil(Seconds(7));
  // Issued over ~6s but measured over 2s: committed counter must be well
  // below the total issued.
  EXPECT_GT(client.txns_issued(), client.metrics().committed * 2);
  EXPECT_GT(client.metrics().committed, 10u);
}

TEST_F(ClientLoopTest, StopsAtDeadline) {
  ClosedLoopClient client(1, 0, cluster_.get(), &scheduler_, workload_, 11, 0,
                          Seconds(1), /*stop_at=*/Seconds(1));
  client.Start();
  scheduler_.RunUntil(Seconds(10));
  const uint64_t issued = client.txns_issued();
  scheduler_.RunUntil(Seconds(12));
  EXPECT_EQ(client.txns_issued(), issued);
}

TEST_F(ClientLoopTest, ReadOnlyTransactionsCounted) {
  workload_.read_only_fraction = 0.5;
  ClosedLoopClient client(1, 0, cluster_.get(), &scheduler_, workload_, 11, 0,
                          Seconds(5), Seconds(5));
  client.Start();
  scheduler_.RunUntil(Seconds(6));
  EXPECT_GT(client.metrics().read_only_done, 10u);
}

}  // namespace
}  // namespace helios::workload
