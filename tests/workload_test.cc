// Tests for the T-YCSB workload generator and the closed-loop client.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>

#include "core/helios_cluster.h"
#include "harness/topology.h"
#include "sim/network.h"
#include "sim/scheduler.h"
#include "workload/backoff.h"
#include "workload/client.h"
#include "workload/open_loop.h"
#include "workload/tycsb.h"

namespace helios::workload {
namespace {

TEST(TYcsbTest, PlansHaveConfiguredShape) {
  WorkloadConfig cfg;
  cfg.ops_per_txn = 5;
  TYcsbGenerator gen(cfg, 1);
  for (int i = 0; i < 500; ++i) {
    const TxnPlan plan = gen.NextTxn();
    EXPECT_EQ(plan.reads.size() + plan.writes.size(), 5u);
    EXPECT_GE(plan.writes.size(), 1u);  // At least one write, per the model.
    EXPECT_FALSE(plan.read_only);
  }
}

TEST(TYcsbTest, KeysWithinTransactionAreDistinct) {
  WorkloadConfig cfg;
  cfg.num_keys = 20;  // Small pool: collisions would be likely.
  cfg.zipf_theta = 0.9;
  TYcsbGenerator gen(cfg, 2);
  for (int i = 0; i < 200; ++i) {
    const TxnPlan plan = gen.NextTxn();
    std::set<Key> keys(plan.reads.begin(), plan.reads.end());
    keys.insert(plan.writes.begin(), plan.writes.end());
    EXPECT_EQ(keys.size(), plan.reads.size() + plan.writes.size());
  }
}

TEST(TYcsbTest, HalfReadsHalfWritesOnAverage) {
  WorkloadConfig cfg;
  TYcsbGenerator gen(cfg, 3);
  uint64_t reads = 0;
  uint64_t writes = 0;
  for (int i = 0; i < 2000; ++i) {
    const TxnPlan plan = gen.NextTxn();
    reads += plan.reads.size();
    writes += plan.writes.size();
  }
  const double write_fraction =
      static_cast<double>(writes) / static_cast<double>(reads + writes);
  EXPECT_NEAR(write_fraction, 0.5, 0.03);
}

TEST(TYcsbTest, KeysStayInPool) {
  WorkloadConfig cfg;
  cfg.num_keys = 100;
  TYcsbGenerator gen(cfg, 4);
  for (int i = 0; i < 200; ++i) {
    const TxnPlan plan = gen.NextTxn();
    for (const Key& k : plan.reads) {
      EXPECT_GE(k, TYcsbGenerator::KeyName(0));
      EXPECT_LT(k, TYcsbGenerator::KeyName(100));
    }
  }
}

TEST(TYcsbTest, DeterministicGivenSeed) {
  WorkloadConfig cfg;
  TYcsbGenerator a(cfg, 42);
  TYcsbGenerator b(cfg, 42);
  for (int i = 0; i < 100; ++i) {
    const TxnPlan pa = a.NextTxn();
    const TxnPlan pb = b.NextTxn();
    EXPECT_EQ(pa.reads, pb.reads);
    EXPECT_EQ(pa.writes, pb.writes);
  }
}

TEST(TYcsbTest, ReadOnlyFractionHonored) {
  WorkloadConfig cfg;
  cfg.read_only_fraction = 0.3;
  TYcsbGenerator gen(cfg, 5);
  int read_only = 0;
  const int total = 3000;
  for (int i = 0; i < total; ++i) {
    const TxnPlan plan = gen.NextTxn();
    if (plan.read_only) {
      ++read_only;
      EXPECT_TRUE(plan.writes.empty());
      EXPECT_EQ(plan.reads.size(), 5u);
    }
  }
  EXPECT_NEAR(static_cast<double>(read_only) / total, 0.3, 0.03);
}

TEST(TYcsbTest, ZipfSkewShowsInKeyFrequencies) {
  WorkloadConfig cfg;
  cfg.zipf_theta = 0.9;
  cfg.num_keys = 1000;
  TYcsbGenerator gen(cfg, 6);
  std::map<Key, int> counts;
  for (int i = 0; i < 3000; ++i) {
    for (const Key& k : gen.NextTxn().writes) counts[k]++;
  }
  // The hottest key must be much more frequent than the median.
  int max_count = 0;
  for (const auto& [k, c] : counts) max_count = std::max(max_count, c);
  EXPECT_GT(max_count, 30);
}

TEST(TYcsbTest, ValueSizeRespected) {
  WorkloadConfig cfg;
  cfg.value_size = 64;
  TYcsbGenerator gen(cfg, 7);
  EXPECT_EQ(gen.NextValue().size(), 64u);
}

TEST(ClientMetricsTest, MergeAccumulates) {
  ClientMetrics a;
  ClientMetrics b;
  a.committed = 3;
  a.aborted = 1;
  a.ops_committed = 15;
  a.commit_latency_ms.Add(10.0);
  b.committed = 2;
  b.aborted = 2;
  b.ops_committed = 10;
  b.commit_latency_ms.Add(20.0);
  a.Merge(b);
  EXPECT_EQ(a.committed, 5u);
  EXPECT_EQ(a.aborted, 3u);
  EXPECT_EQ(a.ops_committed, 25u);
  EXPECT_EQ(a.commit_latency_ms.count(), 2u);
  EXPECT_NEAR(a.abort_rate(), 3.0 / 8.0, 1e-9);
}

class ClientLoopTest : public ::testing::Test {
 protected:
  void SetUp() override {
    network_ = std::make_unique<sim::Network>(&scheduler_, 2, 1);
    const auto topo = harness::UniformTopology(2, 40.0);
    harness::ConfigureNetwork(topo, network_.get());
    core::HeliosConfig cfg;
    cfg.num_datacenters = 2;
    cluster_ = std::make_unique<core::HeliosCluster>(&scheduler_,
                                                     network_.get(), cfg);
    workload_.num_keys = 100;
    for (uint64_t i = 0; i < workload_.num_keys; ++i) {
      cluster_->LoadInitialAll(TYcsbGenerator::KeyName(i), "init");
    }
    cluster_->Start();
  }

  sim::Scheduler scheduler_;
  std::unique_ptr<sim::Network> network_;
  std::unique_ptr<core::HeliosCluster> cluster_;
  WorkloadConfig workload_;
};

TEST_F(ClientLoopTest, ClosedLoopIssuesSequentially) {
  ClosedLoopClient client(1, 0, cluster_.get(), &scheduler_, workload_, 11,
                          /*measure_from=*/0, /*measure_until=*/Seconds(5),
                          /*stop_at=*/Seconds(5));
  client.Start();
  scheduler_.RunUntil(Seconds(6));
  // One outstanding transaction at a time; with ~25-30ms commits and local
  // reads, expect on the order of 100+ transactions in 5 seconds.
  EXPECT_GT(client.metrics().committed, 50u);
  EXPECT_EQ(client.metrics().committed + client.metrics().aborted,
            client.txns_issued());
  EXPECT_GT(client.metrics().ops_committed,
            client.metrics().committed * 4);  // ~5 ops each.
}

TEST_F(ClientLoopTest, MeasurementWindowFiltersSamples) {
  ClosedLoopClient client(1, 0, cluster_.get(), &scheduler_, workload_, 11,
                          /*measure_from=*/Seconds(2),
                          /*measure_until=*/Seconds(4),
                          /*stop_at=*/Seconds(6));
  client.Start();
  scheduler_.RunUntil(Seconds(7));
  // Issued over ~6s but measured over 2s: committed counter must be well
  // below the total issued.
  EXPECT_GT(client.txns_issued(), client.metrics().committed * 2);
  EXPECT_GT(client.metrics().committed, 10u);
}

TEST_F(ClientLoopTest, StopsAtDeadline) {
  ClosedLoopClient client(1, 0, cluster_.get(), &scheduler_, workload_, 11, 0,
                          Seconds(1), /*stop_at=*/Seconds(1));
  client.Start();
  scheduler_.RunUntil(Seconds(10));
  const uint64_t issued = client.txns_issued();
  scheduler_.RunUntil(Seconds(12));
  EXPECT_EQ(client.txns_issued(), issued);
}

TEST_F(ClientLoopTest, ReadOnlyTransactionsCounted) {
  workload_.read_only_fraction = 0.5;
  ClosedLoopClient client(1, 0, cluster_.get(), &scheduler_, workload_, 11, 0,
                          Seconds(5), Seconds(5));
  client.Start();
  scheduler_.RunUntil(Seconds(6));
  EXPECT_GT(client.metrics().read_only_done, 10u);
}

// --- BackoffPolicy: the jittered exponential schedule ------------------------

TEST(BackoffPolicyTest, DelaysAreJitteredDoublingAndCapped) {
  BackoffPolicy policy;
  policy.base = Millis(2);
  policy.cap = Millis(200);
  policy.max_retries = 10;
  Rng rng(123);
  for (int attempt = 0; attempt < 64; ++attempt) {
    const int shift = attempt < 20 ? attempt : 20;
    Duration nominal = policy.base * (Duration{1} << shift);
    if (nominal > policy.cap || nominal <= 0) nominal = policy.cap;
    const Duration delay = policy.NextDelay(attempt, &rng);
    EXPECT_GE(delay, nominal / 2) << "attempt " << attempt;
    EXPECT_LE(delay, nominal) << "attempt " << attempt;
  }
}

TEST(BackoffPolicyTest, DelayNeverUnderflowsToZero) {
  BackoffPolicy policy;
  policy.base = 1;  // 1 microsecond: jitter would round to 0.
  policy.cap = 2;
  policy.max_retries = 1;
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_GE(policy.NextDelay(0, &rng), 1);
  }
}

TEST(BackoffPolicyTest, RetryableRejectionsAreExactlyBusyAndRecovering) {
  EXPECT_TRUE(IsRetryableRejection({TxnId{}, false, kBusyAbortReason}));
  EXPECT_TRUE(IsRetryableRejection({TxnId{}, false, kRecoveringAbortReason}));
  EXPECT_FALSE(IsRetryableRejection({TxnId{}, false, "conflict:pool"}));
  // A committed outcome is never retryable, whatever the reason says.
  EXPECT_FALSE(IsRetryableRejection({TxnId{}, true, kBusyAbortReason}));
}

// --- Busy backoff on the closed-loop client: bounded retry storms ------------

// Stub cluster whose commits are rejected with `reason` for the first
// `reject_first` requests and committed afterwards; every response arrives
// after one simulated round trip.
class SheddingStubCluster : public ProtocolCluster {
 public:
  SheddingStubCluster(sim::Scheduler* sched, uint64_t reject_first,
                      std::string reason = kBusyAbortReason)
      : sched_(sched),
        reject_first_(reject_first),
        reason_(std::move(reason)) {}

  void Start() override {}
  void LoadInitialAll(const Key&, const Value&) override {}
  void ClientRead(DcId, const Key&, ReadCallback done) override {
    sched_->After(kRtt, [done = std::move(done)]() {
      done(VersionedValue{"v", 1, TxnId{}});
    });
  }
  void ClientCommit(DcId, std::vector<ReadEntry>, std::vector<WriteEntry>,
                    CommitCallback done) override {
    const uint64_t n = ++commit_requests_;
    sched_->After(kRtt, [this, n, done = std::move(done)]() {
      CommitOutcome out;
      out.committed = n > reject_first_;
      if (!out.committed) out.abort_reason = reason_;
      done(out);
    });
  }
  void ClientReadOnly(DcId, std::vector<Key> keys,
                      ReadOnlyCallback done) override {
    sched_->After(kRtt, [keys, done = std::move(done)]() {
      std::vector<Result<VersionedValue>> results;
      for (size_t i = 0; i < keys.size(); ++i) {
        results.emplace_back(VersionedValue{"v", 1, TxnId{}});
      }
      done(std::move(results));
    });
  }

  std::string name() const override { return "shedding-stub"; }
  int num_datacenters() const override { return 1; }

  uint64_t commit_requests() const { return commit_requests_; }

 private:
  static constexpr Duration kRtt = Millis(1);
  sim::Scheduler* sched_;
  uint64_t reject_first_;
  std::string reason_;
  uint64_t commit_requests_ = 0;
};

WorkloadConfig SmallWorkload() {
  WorkloadConfig workload;
  workload.num_keys = 100;
  return workload;
}

TEST(BusyBackoffTest, AlwaysBusyRetryStormIsBounded) {
  sim::Scheduler sched;
  SheddingStubCluster cluster(&sched, /*reject_first=*/~uint64_t{0});
  const sim::SimTime stop = Millis(2000);
  ClosedLoopClient client(1, 0, &cluster, &sched, SmallWorkload(),
                          /*seed=*/7, 0, stop, stop);
  BackoffPolicy policy;
  policy.base = Millis(2);
  policy.cap = Millis(16);
  policy.max_retries = 3;
  client.SetBusyBackoff(policy, /*seed=*/99);
  client.Start();
  sched.Run();

  const ClientMetrics& m = client.metrics();
  EXPECT_EQ(m.committed, 0u);
  EXPECT_GT(client.txns_issued(), 10u);
  // Every transaction abandons after at most 1 + max_retries attempts: the
  // request count the server saw is exactly first attempts plus retries,
  // and retries are bounded per transaction.
  EXPECT_EQ(cluster.commit_requests(), client.txns_issued() + m.retries);
  EXPECT_LE(m.retries,
            client.txns_issued() * static_cast<uint64_t>(policy.max_retries));
  // Every response was a shed and every shed was observed.
  EXPECT_EQ(m.busy_rejections, cluster.commit_requests());
  // All transactions end aborted (the final one may fall past the
  // measurement window's edge).
  EXPECT_GE(m.aborted + 1, client.txns_issued());
  EXPECT_EQ(m.timeouts, 0u);
}

TEST(BusyBackoffTest, TransientBusySucceedsAfterBackoff) {
  sim::Scheduler sched;
  SheddingStubCluster cluster(&sched, /*reject_first=*/2);
  const sim::SimTime stop = Millis(500);
  ClosedLoopClient client(1, 0, &cluster, &sched, SmallWorkload(),
                          /*seed=*/7, 0, stop, stop);
  BackoffPolicy policy;
  policy.base = Millis(2);
  policy.cap = Millis(16);
  policy.max_retries = 5;
  client.SetBusyBackoff(policy, /*seed=*/99);
  client.Start();
  sched.Run();

  const ClientMetrics& m = client.metrics();
  // The first transaction ate both rejections, retried, and committed;
  // everything after sailed through. No aborts anywhere.
  EXPECT_GT(m.committed, 1u);
  EXPECT_EQ(m.aborted, 0u);
  EXPECT_EQ(m.busy_rejections, 2u);
  EXPECT_EQ(m.retries, 2u);
  EXPECT_EQ(cluster.commit_requests(), client.txns_issued() + 2);
}

TEST(BusyBackoffTest, RecoveringOutcomeIsRetriedToo) {
  sim::Scheduler sched;
  SheddingStubCluster cluster(&sched, /*reject_first=*/1,
                              kRecoveringAbortReason);
  const sim::SimTime stop = Millis(200);
  ClosedLoopClient client(1, 0, &cluster, &sched, SmallWorkload(),
                          /*seed=*/7, 0, stop, stop);
  BackoffPolicy policy;
  policy.max_retries = 3;
  client.SetBusyBackoff(policy, /*seed=*/5);
  client.Start();
  sched.Run();

  EXPECT_GT(client.metrics().committed, 0u);
  EXPECT_EQ(client.metrics().aborted, 0u);
  EXPECT_EQ(client.metrics().busy_rejections, 1u);
  EXPECT_EQ(client.metrics().retries, 1u);
}

TEST(BusyBackoffTest, DisabledPolicyAbortsWithoutRetrying) {
  sim::Scheduler sched;
  SheddingStubCluster cluster(&sched, /*reject_first=*/~uint64_t{0});
  const sim::SimTime stop = Millis(200);
  ClosedLoopClient client(1, 0, &cluster, &sched, SmallWorkload(),
                          /*seed=*/7, 0, stop, stop);
  // No SetBusyBackoff: busy outcomes are plain aborts, and the default
  // must not silently change simulation accounting.
  client.Start();
  sched.Run();

  const ClientMetrics& m = client.metrics();
  EXPECT_EQ(m.committed, 0u);
  EXPECT_EQ(m.retries, 0u);
  EXPECT_EQ(m.busy_rejections, 0u);
  EXPECT_EQ(cluster.commit_requests(), client.txns_issued());
}

// --- Open-loop generator: retry arithmetic against an in-process fake --------

TEST(OpenLoopTest, TransientBusyRetriesThenCommits) {
  // Fake server: rejects the first five requests with BUSY, then commits
  // everything, synchronously on the caller's thread.
  uint64_t requests = 0;
  OpenLoopOptions opts;
  opts.rate_per_sec = 400;
  opts.duration = std::chrono::milliseconds(300);
  opts.seed = 3;
  opts.backoff.base = Millis(1);
  opts.backoff.cap = Millis(4);
  // One early arrival may absorb several of the five global rejections
  // (its quick retries race the next arrivals); a budget larger than the
  // rejection count guarantees every arrival eventually commits.
  opts.backoff.max_retries = 8;
  OpenLoopLoadGen gen(opts, [&requests](std::vector<WriteEntry>,
                                        CommitCallback done) {
    ++requests;
    CommitOutcome out;
    out.committed = requests > 5;
    if (!out.committed) out.abort_reason = kBusyAbortReason;
    done(out);
  });
  const OpenLoopStats stats = gen.Run();

  EXPECT_GT(stats.arrivals, 20u);
  EXPECT_EQ(stats.busy_rejected, 5u);
  EXPECT_EQ(stats.retries, 5u);
  EXPECT_EQ(stats.issued, stats.arrivals + stats.retries);
  EXPECT_EQ(stats.committed, stats.arrivals);
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_EQ(stats.undrained, 0u);
  EXPECT_EQ(stats.committed + stats.aborted + stats.dropped, stats.arrivals);
}

TEST(OpenLoopTest, AlwaysBusyDropsAfterBoundedRetries) {
  OpenLoopOptions opts;
  opts.rate_per_sec = 400;
  opts.duration = std::chrono::milliseconds(300);
  opts.seed = 3;
  opts.backoff.base = Millis(1);
  opts.backoff.cap = Millis(4);
  opts.backoff.max_retries = 2;
  OpenLoopLoadGen gen(opts, [](std::vector<WriteEntry>, CommitCallback done) {
    done(CommitOutcome{TxnId{}, false, kBusyAbortReason});
  });
  const OpenLoopStats stats = gen.Run();

  // Exactly 1 + max_retries attempts per arrival, then the arrival is
  // dropped — the retry storm is bounded and fully drains.
  EXPECT_GT(stats.arrivals, 20u);
  EXPECT_EQ(stats.issued, stats.arrivals * 3);
  EXPECT_EQ(stats.retries, stats.arrivals * 2);
  EXPECT_EQ(stats.busy_rejected, stats.issued);
  EXPECT_EQ(stats.dropped, stats.arrivals);
  EXPECT_EQ(stats.committed, 0u);
  EXPECT_EQ(stats.undrained, 0u);
}

TEST(OpenLoopTest, NonRetryableAbortIsTerminal) {
  OpenLoopOptions opts;
  opts.rate_per_sec = 400;
  opts.duration = std::chrono::milliseconds(200);
  opts.backoff.max_retries = 4;
  OpenLoopLoadGen gen(opts, [](std::vector<WriteEntry>, CommitCallback done) {
    done(CommitOutcome{TxnId{}, false, "conflict:pool"});
  });
  const OpenLoopStats stats = gen.Run();
  EXPECT_EQ(stats.aborted, stats.arrivals);
  EXPECT_EQ(stats.retries, 0u);
  EXPECT_EQ(stats.busy_rejected, 0u);
  EXPECT_EQ(stats.issued, stats.arrivals);
}

}  // namespace
}  // namespace helios::workload
