// Unit tests for the common utilities: status/result, RNG, Zipfian,
// statistics, and table rendering.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "common/random.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/table.h"
#include "common/types.h"

namespace helios {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing key");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing key");
  EXPECT_EQ(s.ToString(), "not_found: missing key");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kNotFound, StatusCode::kAlreadyExists,
        StatusCode::kInvalidArgument, StatusCode::kFailedPrecondition,
        StatusCode::kAborted, StatusCode::kUnavailable,
        StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeName(code), "unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::Aborted("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kAborted);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(TxnIdTest, OrderingAndEquality) {
  TxnId a{0, 1};
  TxnId b{0, 2};
  TxnId c{1, 1};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(a, (TxnId{0, 1}));
  EXPECT_NE(a, b);
  EXPECT_TRUE(a.valid());
  EXPECT_FALSE(TxnId{}.valid());
  EXPECT_EQ(a.ToString(), "0:1");
}

TEST(TimeTest, Conversions) {
  EXPECT_EQ(Millis(5), 5000);
  EXPECT_EQ(Seconds(2), 2000000);
  EXPECT_DOUBLE_EQ(ToMillis(1500), 1.5);
}

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(11);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(RngTest, NormalScalesMeanAndStddev) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.Normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ForkIsIndependentStream) {
  Rng a(21);
  Rng child = a.Fork();
  EXPECT_NE(a.Next(), child.Next());
}

TEST(ZipfianTest, InRangeAndSkewed) {
  Rng rng(23);
  ZipfianGenerator zipf(1000, 0.99);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 100000; ++i) {
    const uint64_t v = zipf.Next(rng);
    ASSERT_LT(v, 1000u);
    counts[v]++;
  }
  // Item 0 must be far more popular than the median item.
  EXPECT_GT(counts[0], 100);
  EXPECT_GT(counts[0], counts[500] * 5);
}

TEST(ZipfianTest, ThetaZeroIsNearlyUniform) {
  Rng rng(29);
  ZipfianGenerator zipf(10, 1e-9);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 100000; ++i) counts[zipf.Next(rng)]++;
  for (int c : counts) EXPECT_NEAR(c, 10000, 1500);
}

TEST(UniformKeyGeneratorTest, CoversRange) {
  Rng rng(31);
  UniformKeyGenerator gen(5);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 5000; ++i) counts[gen.Next(rng)]++;
  for (int c : counts) EXPECT_GT(c, 0);
}

TEST(StatAccumulatorTest, BasicMoments) {
  StatAccumulator acc;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.Add(v);
  EXPECT_EQ(acc.count(), 8u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_NEAR(acc.stddev(), std::sqrt(32.0 / 7.0), 1e-9);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
  EXPECT_GT(acc.ci95_half_width(), 0.0);
}

TEST(StatAccumulatorTest, EmptyIsZero) {
  StatAccumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.stddev(), 0.0);
  EXPECT_EQ(acc.ci95_half_width(), 0.0);
}

TEST(StatAccumulatorTest, MergeMatchesCombinedStream) {
  StatAccumulator a;
  StatAccumulator b;
  StatAccumulator all;
  Rng rng(37);
  for (int i = 0; i < 500; ++i) {
    const double v = rng.Normal(3.0, 1.5);
    (i % 2 == 0 ? a : b).Add(v);
    all.Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.stddev(), all.stddev(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(DistributionTest, Percentiles) {
  Distribution d;
  for (int i = 1; i <= 100; ++i) d.Add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(d.min(), 1.0);
  EXPECT_DOUBLE_EQ(d.max(), 100.0);
  EXPECT_NEAR(d.Median(), 50.5, 1e-9);
  EXPECT_NEAR(d.Percentile(99), 99.01, 0.1);
  EXPECT_NEAR(d.mean(), 50.5, 1e-9);
}

TEST(DistributionTest, EmptySafe) {
  Distribution d;
  EXPECT_EQ(d.Percentile(50), 0.0);
  EXPECT_EQ(d.mean(), 0.0);
  EXPECT_EQ(d.Median(), 0.0);
  EXPECT_EQ(d.Percentile(0), 0.0);
  EXPECT_EQ(d.Percentile(100), 0.0);
  EXPECT_EQ(d.stddev(), 0.0);
}

TEST(DistributionTest, SingleSample) {
  Distribution d;
  d.Add(7.5);
  EXPECT_DOUBLE_EQ(d.Percentile(0), 7.5);
  EXPECT_DOUBLE_EQ(d.Median(), 7.5);
  EXPECT_DOUBLE_EQ(d.Percentile(99), 7.5);
  EXPECT_DOUBLE_EQ(d.Percentile(100), 7.5);
  EXPECT_DOUBLE_EQ(d.mean(), 7.5);
  EXPECT_DOUBLE_EQ(d.stddev(), 0.0);
}

TEST(DistributionTest, PercentileBoundsClampToExtremes) {
  Distribution d;
  for (int i = 1; i <= 10; ++i) d.Add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(d.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(d.Percentile(-5), 1.0);
  EXPECT_DOUBLE_EQ(d.Percentile(100), 10.0);
  EXPECT_DOUBLE_EQ(d.Percentile(250), 10.0);
}

TEST(DistributionTest, UnsortedAddsInterpolateCorrectly) {
  Distribution d;
  for (double x : {30.0, 10.0, 40.0, 20.0}) d.Add(x);
  // Sorted: 10 20 30 40. Median rank 1.5 -> midway between 20 and 30.
  EXPECT_DOUBLE_EQ(d.Median(), 25.0);
  EXPECT_DOUBLE_EQ(d.Percentile(25), 17.5);
  // Percentile sorting must not break later mixed use.
  d.Add(0.0);
  EXPECT_DOUBLE_EQ(d.Percentile(0), 0.0);
  EXPECT_DOUBLE_EQ(d.min(), 0.0);
  EXPECT_DOUBLE_EQ(d.max(), 40.0);
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"Protocol", "V", "O"});
  t.AddRow({"Helios-0", "76", "14"});
  t.AddRow({"2PC/Paxos", "230", "178"});
  const std::string out = t.ToString();
  EXPECT_NE(out.find("Protocol"), std::string::npos);
  EXPECT_NE(out.find("Helios-0"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  // Right-aligned numeric column: "230" appears after spaces on its row.
  EXPECT_NE(out.find("2PC/Paxos"), std::string::npos);
}

TEST(TablePrinterTest, Formatters) {
  EXPECT_EQ(TablePrinter::Num(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::MeanStd(66.0, 10.0), "66 (10.0)");
}

}  // namespace
}  // namespace helios
