// Integration tests for the Helios commit protocol: commit waits, conflict
// detection (the Figure 2 scenarios), serializability under contention and
// clock skew, liveness under datacenter outages (Rule 3), replica
// convergence, and read-only transactions.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/helios_cluster.h"
#include "core/history.h"
#include "sim/network.h"
#include "sim/scheduler.h"

namespace helios::core {
namespace {

struct TestRig {
  sim::Scheduler scheduler;
  std::unique_ptr<sim::Network> network;
  std::unique_ptr<HeliosCluster> cluster;
};

HeliosConfig BaseConfig(int n) {
  HeliosConfig cfg;
  cfg.num_datacenters = n;
  cfg.log_interval = Millis(5);
  cfg.client_link_one_way = Micros(500);
  cfg.grace_time = Millis(500);
  return cfg;
}

/// Builds an n-datacenter rig with uniform RTT between every pair.
std::unique_ptr<TestRig> MakeUniformRig(int n, Duration rtt,
                                        HeliosConfig cfg,
                                        LogProtocolKind kind =
                                            LogProtocolKind::kHelios,
                                        uint64_t seed = 1) {
  auto rig = std::make_unique<TestRig>();
  rig->network = std::make_unique<sim::Network>(&rig->scheduler, n, seed);
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      rig->network->SetRtt(a, b, rtt, 0);
    }
  }
  rig->cluster = std::make_unique<HeliosCluster>(
      &rig->scheduler, rig->network.get(), std::move(cfg), kind);
  return rig;
}

/// Commits one write transaction synchronously-in-sim; returns the outcome
/// and the client-observed latency.
struct CommitResult {
  CommitOutcome outcome;
  Duration latency = -1;
  bool done = false;
};

void AsyncCommit(TestRig& rig, DcId dc, std::vector<ReadEntry> reads,
                 std::vector<WriteEntry> writes, CommitResult* out) {
  const sim::SimTime start = rig.scheduler.Now();
  rig.cluster->ClientCommit(dc, std::move(reads), std::move(writes),
                            [out, start, &rig](const CommitOutcome& o) {
                              out->outcome = o;
                              out->latency = rig.scheduler.Now() - start;
                              out->done = true;
                            });
}

TEST(HeliosBasicTest, SingleTransactionCommits) {
  auto rig = MakeUniformRig(3, Millis(80), BaseConfig(3));
  rig->cluster->Start();
  CommitResult result;
  rig->scheduler.At(Millis(100), [&] {
    AsyncCommit(*rig, 0, {}, {{"x", "1"}}, &result);
  });
  rig->scheduler.RunUntil(Seconds(2));
  ASSERT_TRUE(result.done);
  EXPECT_TRUE(result.outcome.committed);
  // Helios-B on a symmetric topology: roughly one-way (40ms) plus the log
  // interval, service time and client links.
  EXPECT_GE(result.latency, Millis(40));
  EXPECT_LE(result.latency, Millis(60));
}

TEST(HeliosBasicTest, CommitAppliesWritesEverywhere) {
  auto rig = MakeUniformRig(3, Millis(40), BaseConfig(3));
  rig->cluster->Start();
  CommitResult result;
  rig->scheduler.At(Millis(10), [&] {
    AsyncCommit(*rig, 1, {}, {{"x", "42"}}, &result);
  });
  rig->scheduler.RunUntil(Seconds(2));
  ASSERT_TRUE(result.done && result.outcome.committed);
  for (DcId dc = 0; dc < 3; ++dc) {
    auto v = rig->cluster->node(dc).store().Read("x");
    ASSERT_TRUE(v.ok()) << "dc " << dc;
    EXPECT_EQ(v.value().value, "42");
    EXPECT_EQ(v.value().writer, result.outcome.id);
  }
}

TEST(HeliosBasicTest, ReadReturnsVersionInfo) {
  auto rig = MakeUniformRig(2, Millis(20), BaseConfig(2));
  rig->cluster->LoadInitialAll("k", "v0");
  rig->cluster->Start();
  Result<VersionedValue> got = Status::Internal("unset");
  rig->scheduler.At(Millis(5), [&] {
    rig->cluster->ClientRead(0, "k", [&](Result<VersionedValue> r) {
      got = std::move(r);
    });
  });
  rig->scheduler.RunUntil(Millis(100));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value().value, "v0");
}

TEST(HeliosBasicTest, ReadOfMissingKeyIsNotFound) {
  auto rig = MakeUniformRig(2, Millis(20), BaseConfig(2));
  rig->cluster->Start();
  bool got_not_found = false;
  rig->scheduler.At(Millis(5), [&] {
    rig->cluster->ClientRead(0, "nope", [&](Result<VersionedValue> r) {
      got_not_found = !r.ok() && r.status().code() == StatusCode::kNotFound;
    });
  });
  rig->scheduler.RunUntil(Millis(100));
  EXPECT_TRUE(got_not_found);
}

TEST(HeliosBasicTest, OverwrittenReadAborts) {
  auto rig = MakeUniformRig(2, Millis(20), BaseConfig(2));
  rig->cluster->LoadInitialAll("k", "v0");
  rig->cluster->Start();

  // First transaction overwrites k; the second then tries to commit with
  // the stale read.
  CommitResult first;
  CommitResult second;
  ReadEntry stale;
  rig->scheduler.At(Millis(5), [&] {
    rig->cluster->ClientRead(0, "k", [&](Result<VersionedValue> r) {
      ASSERT_TRUE(r.ok());
      stale = ReadEntry{"k", r.value().ts, r.value().writer};
    });
  });
  rig->scheduler.At(Millis(20), [&] {
    AsyncCommit(*rig, 0, {}, {{"k", "v1"}}, &first);
  });
  rig->scheduler.At(Millis(400), [&] {
    ASSERT_TRUE(first.done && first.outcome.committed);
    AsyncCommit(*rig, 0, {stale}, {{"other", "x"}}, &second);
  });
  rig->scheduler.RunUntil(Seconds(2));
  ASSERT_TRUE(second.done);
  EXPECT_FALSE(second.outcome.committed);
  EXPECT_EQ(second.outcome.abort_reason.rfind("overwritten", 0), 0u);
}

TEST(HeliosConflictTest, ConcurrentWriteWriteConflictAtMostOneCommits) {
  auto rig = MakeUniformRig(2, Millis(100), BaseConfig(2));
  rig->cluster->Start();
  CommitResult at_a;
  CommitResult at_b;
  // Both issued at the same instant at different datacenters; with 100ms
  // RTT neither can know about the other at request time.
  rig->scheduler.At(Millis(50), [&] {
    AsyncCommit(*rig, 0, {}, {{"x", "a"}}, &at_a);
    AsyncCommit(*rig, 1, {}, {{"x", "b"}}, &at_b);
  });
  rig->scheduler.RunUntil(Seconds(3));
  ASSERT_TRUE(at_a.done && at_b.done);
  EXPECT_LE((at_a.outcome.committed ? 1 : 0) + (at_b.outcome.committed ? 1 : 0),
            1)
      << "two conflicting concurrent transactions both committed";
  // With symmetric offsets (Helios-B) at least one must survive: the one
  // whose knowledge wait completes after it has seen the other's abort...
  // actually both may abort (mutual kill) only if each sees the other
  // before committing; Helios aborts the local preparing txn when a
  // conflicting remote record arrives, so both aborting is possible and
  // correct. We only require: never two commits, and both get decisions.
}

TEST(HeliosConflictTest, SecondRequestAbortsImmediatelyOnLocalConflict) {
  auto rig = MakeUniformRig(2, Millis(100), BaseConfig(2));
  rig->cluster->Start();
  CommitResult first;
  CommitResult second;
  rig->scheduler.At(Millis(10), [&] {
    AsyncCommit(*rig, 0, {}, {{"x", "1"}}, &first);
  });
  rig->scheduler.At(Millis(15), [&] {
    // Conflicts with the still-preparing first transaction: Algorithm 1
    // aborts it immediately, well before any network round trip.
    AsyncCommit(*rig, 0, {}, {{"x", "2"}}, &second);
  });
  rig->scheduler.RunUntil(Seconds(2));
  ASSERT_TRUE(second.done);
  EXPECT_FALSE(second.outcome.committed);
  EXPECT_EQ(second.outcome.abort_reason, "conflict:preparing");
  EXPECT_LT(second.latency, Millis(10));
  ASSERT_TRUE(first.done);
  EXPECT_TRUE(first.outcome.committed);
}

// The Figure 2 example: commit offsets -1ms / +1ms between two
// datacenters, conflicting transactions detect each other.
TEST(HeliosConflictTest, RemoteConflictAbortsPreparingTransaction) {
  HeliosConfig cfg = BaseConfig(2);
  cfg.commit_offsets = {{0, -Millis(1)}, {Millis(1), 0}};
  auto rig = MakeUniformRig(2, Millis(80), std::move(cfg));
  rig->cluster->Start();

  CommitResult at_a;
  CommitResult at_b;
  rig->scheduler.At(Millis(10), [&] {
    AsyncCommit(*rig, 0, {}, {{"x", "a"}}, &at_a);
  });
  // B starts a conflicting transaction while A's record is in flight; B
  // has a larger commit offset so it waits longer and must see A's record
  // and abort.
  rig->scheduler.At(Millis(30), [&] {
    AsyncCommit(*rig, 1, {ReadEntry{"x", kMinTimestamp, TxnId{}}},
                {{"x", "b"}}, &at_b);
  });
  rig->scheduler.RunUntil(Seconds(3));
  ASSERT_TRUE(at_a.done && at_b.done);
  EXPECT_TRUE(at_a.outcome.committed);
  EXPECT_FALSE(at_b.outcome.committed);
  EXPECT_EQ(at_b.outcome.abort_reason, "conflict:remote");
}

TEST(HeliosOffsetsTest, NegativeOffsetsShortenTheWait) {
  // Asymmetric offsets within Rule 1: A gets -30ms, B gets +30ms.
  // A's commit wait needs B's history only up to q(t)-30ms, which is
  // usually already known, so A commits almost immediately; B waits
  // correspondingly longer.
  HeliosConfig cfg = BaseConfig(2);
  cfg.commit_offsets = {{0, -Millis(30)}, {Millis(30), 0}};
  auto rig = MakeUniformRig(2, Millis(60), std::move(cfg));
  rig->cluster->Start();

  CommitResult at_a;
  CommitResult at_b;
  rig->scheduler.At(Millis(200), [&] {
    AsyncCommit(*rig, 0, {}, {{"a_key", "1"}}, &at_a);
    AsyncCommit(*rig, 1, {}, {{"b_key", "1"}}, &at_b);
  });
  rig->scheduler.RunUntil(Seconds(3));
  ASSERT_TRUE(at_a.done && at_b.done);
  ASSERT_TRUE(at_a.outcome.committed);
  ASSERT_TRUE(at_b.outcome.committed);
  // Estimated latencies (Eq. 4): L_A = -30 + 30 = ~0ms (plus log interval
  // and overheads), L_B = 30 + 30 = 60ms.
  EXPECT_LT(at_a.latency, Millis(15));
  EXPECT_GT(at_b.latency, Millis(55));
  EXPECT_LT(at_b.latency, Millis(80));
  // Lemma 1: the sum of the two commit latencies >= RTT.
  EXPECT_GE(at_a.latency + at_b.latency, Millis(60));
}

// Randomized closed-loop clients on a small key space; the committed
// history must be conflict-serializable and replicas must converge.
struct ContentionOptions {
  int num_dcs = 3;
  int clients_per_dc = 4;
  int keys = 40;
  Duration rtt = Millis(60);
  Duration run_for = Seconds(20);
  LogProtocolKind kind = LogProtocolKind::kHelios;
  std::vector<Duration> clock_offsets;
  std::vector<std::vector<Duration>> commit_offsets;
  int fault_tolerance = 0;
  uint64_t seed = 99;
};

struct ContentionOutcome {
  uint64_t commits = 0;
  uint64_t aborts = 0;
};

ContentionOutcome RunContentionWorkload(TestRig& rig,
                                        const ContentionOptions& opt) {
  auto& cluster = *rig.cluster;
  for (int k = 0; k < opt.keys; ++k) {
    cluster.LoadInitialAll("key" + std::to_string(k), "init");
  }
  cluster.Start();

  auto outcome = std::make_shared<ContentionOutcome>();
  auto rng = std::make_shared<Rng>(opt.seed);

  // A tiny closed-loop client: read two keys, write one of them plus
  // another, commit, repeat.
  struct Client {
    DcId dc;
  };
  auto step = std::make_shared<std::function<void(DcId)>>();
  *step = [&rig, &cluster, outcome, rng, opt, step](DcId dc) {
    const std::string k1 = "key" + std::to_string(rng->Uniform(opt.keys));
    const std::string k2 = "key" + std::to_string(rng->Uniform(opt.keys));
    cluster.ClientRead(dc, k1, [&rig, &cluster, outcome, rng, opt, step, dc,
                                k1, k2](Result<VersionedValue> r1) {
      if (!r1.ok()) return;
      ReadEntry read1{k1, r1.value().ts, r1.value().writer};
      std::vector<WriteEntry> writes;
      writes.push_back({k1, "v" + std::to_string(rng->Next() % 1000)});
      if (k2 != k1) writes.push_back({k2, "w"});
      cluster.ClientCommit(
          dc, {read1}, std::move(writes),
          [&rig, outcome, opt, step, dc](const CommitOutcome& o) {
            if (o.committed) {
              ++outcome->commits;
            } else {
              ++outcome->aborts;
            }
            if (rig.scheduler.Now() < opt.run_for) {
              (*step)(dc);
            }
          });
    });
  };

  for (DcId dc = 0; dc < opt.num_dcs; ++dc) {
    for (int c = 0; c < opt.clients_per_dc; ++c) {
      rig.scheduler.At(Millis(1) * (c + 1), [step, dc] { (*step)(dc); });
    }
  }
  // Run the workload then let everything quiesce (in-flight transactions
  // decide, logs fully propagate).
  rig.scheduler.RunUntil(opt.run_for + Seconds(30));
  return *outcome;
}

void ExpectSerializableAndConvergent(TestRig& rig, int num_dcs, int keys) {
  const Status ser = CheckSerializable(rig.cluster->history().commits());
  EXPECT_TRUE(ser.ok()) << ser.ToString();
  // All replicas converge to identical visible state.
  for (int k = 0; k < keys; ++k) {
    const std::string key = "key" + std::to_string(k);
    auto v0 = rig.cluster->node(0).store().Read(key);
    ASSERT_TRUE(v0.ok());
    for (DcId dc = 1; dc < num_dcs; ++dc) {
      auto v = rig.cluster->node(dc).store().Read(key);
      ASSERT_TRUE(v.ok());
      EXPECT_EQ(v.value().value, v0.value().value) << key << " dc " << dc;
      EXPECT_EQ(v.value().writer, v0.value().writer) << key << " dc " << dc;
    }
  }
}

TEST(HeliosSerializabilityTest, ContendedWorkloadIsSerializable) {
  ContentionOptions opt;
  HeliosConfig cfg = BaseConfig(opt.num_dcs);
  auto rig = MakeUniformRig(opt.num_dcs, opt.rtt, std::move(cfg), opt.kind);
  const ContentionOutcome out = RunContentionWorkload(*rig, opt);
  EXPECT_GT(out.commits, 100u);
  EXPECT_GT(out.aborts, 0u);  // Contention must actually occur.
  ExpectSerializableAndConvergent(*rig, opt.num_dcs, opt.keys);
}

TEST(HeliosSerializabilityTest, SerializableUnderSevereClockSkew) {
  ContentionOptions opt;
  opt.seed = 101;
  HeliosConfig cfg = BaseConfig(opt.num_dcs);
  // 150ms of skew: larger than the RTT; correctness must not depend on it.
  cfg.clock_offsets = {Millis(150), -Millis(80), 0};
  auto rig = MakeUniformRig(opt.num_dcs, opt.rtt, std::move(cfg), opt.kind);
  const ContentionOutcome out = RunContentionWorkload(*rig, opt);
  EXPECT_GT(out.commits, 100u);
  ExpectSerializableAndConvergent(*rig, opt.num_dcs, opt.keys);
}

TEST(HeliosSerializabilityTest, SerializableWithMaoStyleOffsets) {
  ContentionOptions opt;
  opt.seed = 103;
  HeliosConfig cfg = BaseConfig(opt.num_dcs);
  // Asymmetric offsets satisfying Rule 1 (sum >= 0 per pair).
  cfg.commit_offsets = {{0, -Millis(25), Millis(5)},
                        {Millis(25), 0, -Millis(10)},
                        {-Millis(5), Millis(10), 0}};
  auto rig = MakeUniformRig(opt.num_dcs, opt.rtt, std::move(cfg), opt.kind);
  const ContentionOutcome out = RunContentionWorkload(*rig, opt);
  EXPECT_GT(out.commits, 100u);
  ExpectSerializableAndConvergent(*rig, opt.num_dcs, opt.keys);
}

TEST(HeliosSerializabilityTest, MessageFuturesIsSerializable) {
  ContentionOptions opt;
  opt.seed = 107;
  opt.kind = LogProtocolKind::kMessageFutures;
  HeliosConfig cfg = BaseConfig(opt.num_dcs);
  auto rig = MakeUniformRig(opt.num_dcs, opt.rtt, std::move(cfg), opt.kind);
  const ContentionOutcome out = RunContentionWorkload(*rig, opt);
  EXPECT_GT(out.commits, 100u);
  ExpectSerializableAndConvergent(*rig, opt.num_dcs, opt.keys);
}

TEST(HeliosSerializabilityTest, SerializableWithFaultToleranceOn) {
  ContentionOptions opt;
  opt.seed = 109;
  HeliosConfig cfg = BaseConfig(opt.num_dcs);
  cfg.fault_tolerance = 1;
  auto rig = MakeUniformRig(opt.num_dcs, opt.rtt, std::move(cfg), opt.kind);
  const ContentionOutcome out = RunContentionWorkload(*rig, opt);
  EXPECT_GT(out.commits, 100u);
  ExpectSerializableAndConvergent(*rig, opt.num_dcs, opt.keys);
}

TEST(HeliosLatencyTest, MessageFuturesWaitsAFullRoundTrip) {
  auto rig = MakeUniformRig(2, Millis(100), BaseConfig(2),
                            LogProtocolKind::kMessageFutures);
  rig->cluster->Start();
  CommitResult result;
  rig->scheduler.At(Millis(50), [&] {
    AsyncCommit(*rig, 0, {}, {{"x", "1"}}, &result);
  });
  rig->scheduler.RunUntil(Seconds(2));
  ASSERT_TRUE(result.done && result.outcome.committed);
  EXPECT_GE(result.latency, Millis(100));  // Full RTT at minimum.
  EXPECT_LE(result.latency, Millis(125));
}

TEST(HeliosLivenessTest, FaultToleranceOneWaitsForAnAck) {
  HeliosConfig cfg = BaseConfig(3);
  cfg.fault_tolerance = 1;
  // Zero offsets: the knowledge wait is ~RTT/2; the ack wait is a full
  // RTT, which dominates.
  auto rig = MakeUniformRig(3, Millis(80), std::move(cfg));
  rig->cluster->Start();
  CommitResult result;
  rig->scheduler.At(Millis(50), [&] {
    AsyncCommit(*rig, 0, {}, {{"x", "1"}}, &result);
  });
  rig->scheduler.RunUntil(Seconds(2));
  ASSERT_TRUE(result.done && result.outcome.committed);
  EXPECT_GE(result.latency, Millis(80));
  EXPECT_LE(result.latency, Millis(105));
}

TEST(HeliosLivenessTest, Helios0BlocksWhenADatacenterFails) {
  HeliosConfig cfg = BaseConfig(3);
  auto rig = MakeUniformRig(3, Millis(40), std::move(cfg));
  rig->cluster->Start();
  rig->scheduler.At(Millis(100), [&] { rig->cluster->CrashDatacenter(2); });
  CommitResult result;
  rig->scheduler.At(Millis(300), [&] {
    AsyncCommit(*rig, 0, {}, {{"x", "1"}}, &result);
  });
  rig->scheduler.RunUntil(Seconds(10));
  // Helios-0 cannot commit without DC2's log: the transaction stays
  // pending forever.
  EXPECT_FALSE(result.done);
  EXPECT_EQ(rig->cluster->node(0).pt_pool_size(), 1u);
}

TEST(HeliosLivenessTest, Helios1CommitsThroughAnOutage) {
  HeliosConfig cfg = BaseConfig(3);
  cfg.fault_tolerance = 1;
  cfg.grace_time = Millis(300);
  auto rig = MakeUniformRig(3, Millis(40), std::move(cfg));
  rig->cluster->Start();
  rig->scheduler.At(Millis(100), [&] { rig->cluster->CrashDatacenter(2); });
  CommitResult result;
  rig->scheduler.At(Millis(500), [&] {
    AsyncCommit(*rig, 0, {}, {{"x", "1"}}, &result);
  });
  rig->scheduler.RunUntil(Seconds(10));
  ASSERT_TRUE(result.done) << "Helios-1 must keep committing with one DC down";
  EXPECT_TRUE(result.outcome.committed);
  // The commit had to wait out the grace time for the eta bound (the
  // paper: "a datacenter has to wait for an additional duration of GT").
  EXPECT_GE(result.latency, Millis(250));
}

TEST(HeliosLivenessTest, RecoveredDatacenterCatchesUp) {
  HeliosConfig cfg = BaseConfig(3);
  cfg.fault_tolerance = 1;
  cfg.grace_time = Millis(300);
  auto rig = MakeUniformRig(3, Millis(40), std::move(cfg));
  rig->cluster->Start();
  rig->scheduler.At(Millis(100), [&] { rig->cluster->CrashDatacenter(2); });
  CommitResult during;
  rig->scheduler.At(Millis(500), [&] {
    AsyncCommit(*rig, 0, {}, {{"x", "during-outage"}}, &during);
  });
  rig->scheduler.At(Seconds(3), [&] { rig->cluster->RecoverDatacenter(2); });
  rig->scheduler.RunUntil(Seconds(8));
  ASSERT_TRUE(during.done && during.outcome.committed);
  // After recovery the log exchange must deliver the missed write.
  auto v = rig->cluster->node(2).store().Read("x");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value().value, "during-outage");
  // And commits at the recovered cluster get fast again.
  CommitResult after;
  rig->scheduler.At(rig->scheduler.Now(), [&] {
    AsyncCommit(*rig, 0, {}, {{"y", "post"}}, &after);
  });
  rig->scheduler.RunUntil(rig->scheduler.Now() + Seconds(2));
  ASSERT_TRUE(after.done && after.outcome.committed);
  EXPECT_LT(after.latency, Millis(120));
}

TEST(HeliosReadOnlyTest, SnapshotReadsSeeCommittedData) {
  auto rig = MakeUniformRig(2, Millis(30), BaseConfig(2));
  rig->cluster->LoadInitialAll("a", "0");
  rig->cluster->LoadInitialAll("b", "0");
  rig->cluster->Start();
  CommitResult w;
  rig->scheduler.At(Millis(10), [&] {
    AsyncCommit(*rig, 0, {}, {{"a", "1"}, {"b", "1"}}, &w);
  });
  std::vector<Result<VersionedValue>> snapshot;
  rig->scheduler.At(Millis(500), [&] {
    rig->cluster->ClientReadOnly(1, {"a", "b"},
                                 [&](std::vector<Result<VersionedValue>> r) {
                                   snapshot = std::move(r);
                                 });
  });
  rig->scheduler.RunUntil(Seconds(2));
  ASSERT_TRUE(w.done && w.outcome.committed);
  ASSERT_EQ(snapshot.size(), 2u);
  ASSERT_TRUE(snapshot[0].ok() && snapshot[1].ok());
  // Atomic snapshot: both writes of the transaction visible together.
  EXPECT_EQ(snapshot[0].value().value, "1");
  EXPECT_EQ(snapshot[1].value().value, "1");
  EXPECT_GT(rig->cluster->node(1).counters().read_only_txns, 0u);
}

TEST(HeliosGcTest, LogsAndRefusalsDoNotGrowUnboundedly) {
  ContentionOptions opt;
  opt.run_for = Seconds(10);
  HeliosConfig cfg = BaseConfig(opt.num_dcs);
  cfg.gc_interval = Millis(200);
  auto rig = MakeUniformRig(opt.num_dcs, opt.rtt, std::move(cfg));
  RunContentionWorkload(*rig, opt);
  for (DcId dc = 0; dc < opt.num_dcs; ++dc) {
    // After quiescing, everything is universally known and GC'd.
    EXPECT_LT(rig->cluster->node(dc).log().live_records(), 10u) << dc;
  }
}

TEST(HeliosCountersTest, CountersAreConsistent) {
  ContentionOptions opt;
  opt.run_for = Seconds(5);
  auto rig =
      MakeUniformRig(opt.num_dcs, opt.rtt, BaseConfig(opt.num_dcs), opt.kind);
  const ContentionOutcome out = RunContentionWorkload(*rig, opt);
  const NodeCounters total = rig->cluster->AggregateCounters();
  EXPECT_EQ(total.commits, out.commits);
  EXPECT_EQ(total.total_aborts(), out.aborts);
  EXPECT_EQ(total.commits, rig->cluster->history().size());
  EXPECT_EQ(total.commit_requests, total.commits + total.total_aborts());
}

}  // namespace
}  // namespace helios::core
