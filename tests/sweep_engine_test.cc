// Tests for the parallel sweep engine and its declarative front-end:
// JobPool semantics, ExperimentSpec validation and JSON round-trips, the
// SweepRunner determinism contract (jobs=1 and jobs=8 must be
// bit-identical), cancellation on first failure, progress/metrics
// reporting, and the bench-scale env parsing.

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "harness/experiment_spec.h"
#include "harness/job_pool.h"
#include "harness/sweep.h"
#include "obs/metrics.h"
#include "json_check.h"

namespace helios::harness {
namespace {

using helios::testing::IsValidJson;

// --- JobPool -----------------------------------------------------------

TEST(JobPoolTest, RunsEverySubmittedJob) {
  JobPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(JobPoolTest, CancelDropsQueuedJobs) {
  JobPool pool(1);
  std::atomic<int> count{0};
  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  // First job occupies the single worker so the rest stay queued.
  pool.Submit([&] {
    started.store(true);
    while (!release.load()) std::this_thread::yield();
    count.fetch_add(1);
  });
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  while (!started.load()) std::this_thread::yield();
  pool.Cancel();
  release.store(true);
  pool.Wait();
  EXPECT_TRUE(pool.cancelled());
  // The running job finished; everything queued was dropped.
  EXPECT_EQ(count.load(), 1);
}

TEST(JobPoolTest, ResolveJobCount) {
  EXPECT_EQ(ResolveJobCount(3), 3);
  EXPECT_EQ(ResolveJobCount(1), 1);
  EXPECT_GE(ResolveJobCount(0), 1);
  EXPECT_GE(ResolveJobCount(-5), 1);
}

// --- Protocol tokens and seeds -----------------------------------------

TEST(SpecTest, ProtocolTokenRoundTrip) {
  for (Protocol p :
       {Protocol::kHelios0, Protocol::kHelios1, Protocol::kHelios2,
        Protocol::kHeliosB, Protocol::kMessageFutures,
        Protocol::kReplicatedCommit, Protocol::kTwoPcPaxos}) {
    const auto parsed = ParseProtocolToken(ProtocolToken(p));
    ASSERT_TRUE(parsed.ok()) << ProtocolToken(p);
    EXPECT_EQ(parsed.value(), p);
    // Display names parse too.
    const auto display = ParseProtocolToken(ProtocolName(p));
    ASSERT_TRUE(display.ok()) << ProtocolName(p);
    EXPECT_EQ(display.value(), p);
  }
  EXPECT_FALSE(ParseProtocolToken("paxos9000").ok());
  EXPECT_FALSE(ParseProtocolToken("").ok());
}

TEST(SpecTest, DeriveSeedIsDeterministicAndDecorrelated) {
  EXPECT_EQ(DeriveSeed(42, 3), DeriveSeed(42, 3));
  EXPECT_NE(DeriveSeed(42, 0), DeriveSeed(42, 1));
  EXPECT_NE(DeriveSeed(42, 0), DeriveSeed(43, 0));
}

// --- Spec JSON ---------------------------------------------------------

ExperimentSpec FancySpec() {
  lp::RttMatrix estimate(5);
  for (int a = 0; a < 5; ++a) {
    for (int b = a + 1; b < 5; ++b) {
      estimate.Set(a, b, 10.0 * a + b + 0.5);
    }
  }
  return ExperimentSpec()
      .WithLabel("fancy")
      .WithProtocol(Protocol::kHelios2)
      .WithClients(24)
      .WithWarmup(Millis(1500))
      .WithMeasure(Seconds(7))
      .WithDrain(Millis(250))
      .WithSeed(987654321)
      .WithOpsPerTxn(3)
      .WithWriteFraction(0.25)
      .WithNumKeys(1234)
      .WithZipfTheta(0.6)
      .WithValueSize(32)
      .WithReadOnlyFraction(0.125)
      .WithLogInterval(Millis(4))
      .WithGraceTime(Millis(321))
      .WithClientLinkOneWay(Micros(750))
      .WithClockOffsets({Millis(10), -Millis(20), 0, Millis(5), -Millis(1)})
      .WithRttEstimate(estimate)
      .WithTwoPcCoordinator(2)
      .WithPreload(true)
      .WithSerializabilityCheck();
}

TEST(SpecJsonTest, RoundTripPreservesEverySpec) {
  const ExperimentSpec original = FancySpec();
  const std::string json = original.ToJson();
  EXPECT_TRUE(IsValidJson(json)) << json;

  const auto reparsed = ExperimentSpec::FromJson(json);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_TRUE(reparsed.value() == original);
  // Byte-stable: serializing again yields the identical document.
  EXPECT_EQ(reparsed.value().ToJson(), json);
}

TEST(SpecJsonTest, DefaultSpecRoundTrips) {
  const ExperimentSpec original;
  const auto reparsed = ExperimentSpec::FromJson(original.ToJson());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_TRUE(reparsed.value() == original);
}

TEST(SpecJsonTest, MissingKeysKeepDefaults) {
  const auto spec = ExperimentSpec::FromJson(R"({"clients": 7})");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec.value().clients, 7);
  EXPECT_EQ(spec.value().protocol, Protocol::kHelios0);
  EXPECT_EQ(spec.value().measure, Seconds(30));
}

TEST(SpecJsonTest, UnknownKeysAreRejected) {
  const auto spec = ExperimentSpec::FromJson(R"({"cleints": 7})");
  ASSERT_FALSE(spec.ok());
  EXPECT_NE(spec.status().ToString().find("unknown spec field"),
            std::string::npos);
}

TEST(SpecJsonTest, GarbageIsRejected) {
  EXPECT_FALSE(ExperimentSpec::FromJson("").ok());
  EXPECT_FALSE(ExperimentSpec::FromJson("{").ok());
  EXPECT_FALSE(ExperimentSpec::FromJson("[1,2,3]").ok());
  EXPECT_FALSE(ExperimentSpec::FromJson(R"({"clients": "sixty"})").ok());
}

// --- Validation --------------------------------------------------------

TEST(SpecValidateTest, DefaultSpecIsValid) {
  EXPECT_TRUE(ExperimentSpec().Validate().ok());
}

TEST(SpecValidateTest, RejectsBadRanges) {
  EXPECT_FALSE(ExperimentSpec().WithClients(0).Validate().ok());
  EXPECT_FALSE(ExperimentSpec().WithClients(-3).Validate().ok());
  EXPECT_FALSE(ExperimentSpec().WithMeasure(0).Validate().ok());
  EXPECT_FALSE(ExperimentSpec().WithWarmup(-Seconds(1)).Validate().ok());
  EXPECT_FALSE(ExperimentSpec().WithZipfTheta(1.0).Validate().ok());
  EXPECT_FALSE(ExperimentSpec().WithWriteFraction(1.5).Validate().ok());
  EXPECT_FALSE(ExperimentSpec().WithNumKeys(0).Validate().ok());
  EXPECT_FALSE(ExperimentSpec().WithTopology("moon_base").Validate().ok());
  EXPECT_FALSE(
      ExperimentSpec().WithUniformTopology(1, 100.0).Validate().ok());
  EXPECT_FALSE(ExperimentSpec().WithTwoPcCoordinator(17).Validate().ok());
}

TEST(SpecValidateTest, RejectsMismatchedVectorSizes) {
  // Table 2 has five datacenters; three offsets cannot be right.
  EXPECT_FALSE(ExperimentSpec()
                   .WithClockOffsets({Millis(1), Millis(2), Millis(3)})
                   .Validate()
                   .ok());
  EXPECT_FALSE(
      ExperimentSpec().WithRttEstimate(lp::RttMatrix(3)).Validate().ok());
}

TEST(SpecValidateTest, ToConfigMaterializesFields) {
  const auto cfg = FancySpec().WithSerializabilityCheck(false).ToConfig();
  ASSERT_TRUE(cfg.ok()) << cfg.status().ToString();
  EXPECT_EQ(cfg.value().total_clients, 24);
  EXPECT_EQ(cfg.value().seed, 987654321u);
  EXPECT_EQ(cfg.value().workload.num_keys, 1234u);
  EXPECT_DOUBLE_EQ(cfg.value().workload.zipf_theta, 0.6);
  EXPECT_EQ(cfg.value().log_interval, Millis(4));
  EXPECT_EQ(cfg.value().clock_offsets.size(), 5u);
  ASSERT_TRUE(cfg.value().rtt_estimate_ms.has_value());
}

TEST(SpecValidateTest, ToConfigFailsOnInvalidSpec) {
  EXPECT_FALSE(ExperimentSpec().WithClients(0).ToConfig().ok());
}

// --- Sweep determinism -------------------------------------------------

std::vector<ExperimentSpec> SmallGrid() {
  // 2 protocols x 2 client counts x 2 seeds = 8 tiny experiments.
  std::vector<ExperimentSpec> specs;
  uint64_t index = 0;
  for (Protocol p : {Protocol::kHelios0, Protocol::kTwoPcPaxos}) {
    for (int clients : {5, 10}) {
      for (uint64_t seed_axis = 0; seed_axis < 2; ++seed_axis) {
        specs.push_back(ExperimentSpec()
                            .WithProtocol(p)
                            .WithClients(clients)
                            .WithWarmup(Millis(200))
                            .WithMeasure(Seconds(1))
                            .WithDrain(Millis(500))
                            .WithNumKeys(400)
                            .WithSeed(DeriveSeed(7, index++)));
      }
    }
  }
  return specs;
}

void ExpectResultsIdentical(const ExperimentResult& a,
                            const ExperimentResult& b) {
  EXPECT_EQ(a.protocol, b.protocol);
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_EQ(a.avg_latency_ms, b.avg_latency_ms);
  EXPECT_EQ(a.total_throughput_ops_s, b.total_throughput_ops_s);
  EXPECT_EQ(a.avg_abort_rate, b.avg_abort_rate);
  EXPECT_EQ(a.optimal_avg_latency_ms, b.optimal_avg_latency_ms);
  EXPECT_EQ(a.optimal_latency_ms, b.optimal_latency_ms);
  ASSERT_EQ(a.per_dc.size(), b.per_dc.size());
  for (size_t i = 0; i < a.per_dc.size(); ++i) {
    EXPECT_EQ(a.per_dc[i].name, b.per_dc[i].name);
    EXPECT_EQ(a.per_dc[i].committed, b.per_dc[i].committed);
    EXPECT_EQ(a.per_dc[i].aborted, b.per_dc[i].aborted);
    EXPECT_EQ(a.per_dc[i].latency_mean_ms, b.per_dc[i].latency_mean_ms);
    EXPECT_EQ(a.per_dc[i].latency_stddev_ms, b.per_dc[i].latency_stddev_ms);
    EXPECT_EQ(a.per_dc[i].latency_p50_ms, b.per_dc[i].latency_p50_ms);
    EXPECT_EQ(a.per_dc[i].latency_p99_ms, b.per_dc[i].latency_p99_ms);
    EXPECT_EQ(a.per_dc[i].throughput_ops_s, b.per_dc[i].throughput_ops_s);
    EXPECT_EQ(a.per_dc[i].abort_rate, b.per_dc[i].abort_rate);
  }
}

TEST(SweepRunnerTest, SerialAndParallelRunsAreBitIdentical) {
  const std::vector<ExperimentSpec> specs = SmallGrid();

  SweepOptions serial;
  serial.jobs = 1;
  const SweepResult a = SweepRunner(serial).Run(specs);

  SweepOptions parallel;
  parallel.jobs = 8;
  const SweepResult b = SweepRunner(parallel).Run(specs);

  ASSERT_TRUE(a.status().ok()) << a.status().ToString();
  ASSERT_TRUE(b.status().ok()) << b.status().ToString();
  ASSERT_EQ(a.jobs.size(), specs.size());
  ASSERT_EQ(b.jobs.size(), specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    EXPECT_TRUE(a.jobs[i].spec == specs[i]);
    ExpectResultsIdentical(a.jobs[i].result, b.jobs[i].result);
  }
  // The aggregated documents are byte-identical (timing is excluded).
  EXPECT_EQ(a.ToJson(), b.ToJson());
  EXPECT_TRUE(IsValidJson(a.ToJson()));
}

TEST(SweepRunnerTest, JsonEchoesSpecsInOrder) {
  std::vector<ExperimentSpec> specs = {
      ExperimentSpec()
          .WithClients(5)
          .WithWarmup(Millis(100))
          .WithMeasure(Millis(500))
          .WithDrain(Millis(200))
          .WithNumKeys(100)
          .WithLabel("only job")};
  const SweepResult r = SweepRunner().Run(specs);
  ASSERT_TRUE(r.status().ok()) << r.status().ToString();
  const std::string json = r.ToJson();
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"schema\":\"helios.sweep.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"label\":\"only job\""), std::string::npos);
  EXPECT_NE(json.find("\"per_dc\""), std::string::npos);
}

// --- Failure handling --------------------------------------------------

TEST(SweepRunnerTest, FirstFailureCancelsQueuedJobs) {
  // jobs=1 makes the schedule deterministic: the invalid spec runs first,
  // so everything behind it must be cancelled without running.
  std::vector<ExperimentSpec> specs;
  specs.push_back(ExperimentSpec().WithClients(0).WithLabel("bad"));
  for (int i = 0; i < 3; ++i) {
    specs.push_back(ExperimentSpec()
                        .WithClients(5)
                        .WithMeasure(Seconds(1))
                        .WithLabel("good " + std::to_string(i)));
  }
  SweepOptions options;
  options.jobs = 1;
  const SweepResult r = SweepRunner(options).Run(specs);
  EXPECT_FALSE(r.status().ok());
  EXPECT_TRUE(r.cancelled);
  EXPECT_TRUE(r.jobs[0].ran);
  EXPECT_FALSE(r.jobs[0].status.ok());
  for (size_t i = 1; i < r.jobs.size(); ++i) {
    EXPECT_FALSE(r.jobs[i].ran) << i;
    EXPECT_FALSE(r.jobs[i].status.ok()) << i;
  }
  // status() surfaces the root cause, not a cancellation placeholder.
  EXPECT_NE(r.status().ToString().find("clients"), std::string::npos)
      << r.status().ToString();
}

TEST(SweepRunnerTest, CancelOnFailureCanBeDisabled) {
  std::vector<ExperimentSpec> specs;
  specs.push_back(ExperimentSpec().WithClients(0).WithLabel("bad"));
  specs.push_back(ExperimentSpec()
                      .WithClients(5)
                      .WithWarmup(Millis(100))
                      .WithMeasure(Millis(500))
                      .WithDrain(Millis(200))
                      .WithNumKeys(100)
                      .WithLabel("good"));
  SweepOptions options;
  options.jobs = 1;
  options.cancel_on_failure = false;
  const SweepResult r = SweepRunner(options).Run(specs);
  EXPECT_FALSE(r.status().ok());
  EXPECT_FALSE(r.cancelled);
  EXPECT_TRUE(r.jobs[0].ran);
  EXPECT_FALSE(r.jobs[0].status.ok());
  EXPECT_TRUE(r.jobs[1].ran);
  EXPECT_TRUE(r.jobs[1].status.ok());
}

// --- Progress and metrics ----------------------------------------------

TEST(SweepRunnerTest, ProgressAndMetricsReportEveryJob) {
  std::vector<ExperimentSpec> specs;
  for (int i = 0; i < 4; ++i) {
    specs.push_back(ExperimentSpec()
                        .WithClients(5)
                        .WithWarmup(Millis(100))
                        .WithMeasure(Millis(500))
                        .WithDrain(Millis(200))
                        .WithNumKeys(100)
                        .WithSeed(DeriveSeed(1, i)));
  }
  obs::MetricsRegistry metrics;
  std::mutex mu;
  std::vector<int> done_values;
  SweepOptions options;
  options.jobs = 2;
  options.metrics = &metrics;
  options.progress = [&](const SweepProgress& p) {
    std::lock_guard<std::mutex> lock(mu);
    done_values.push_back(p.done);
    EXPECT_EQ(p.total, 4);
    EXPECT_TRUE(p.last_status.ok());
  };
  const SweepResult r = SweepRunner(options).Run(specs);
  ASSERT_TRUE(r.status().ok()) << r.status().ToString();
  ASSERT_EQ(done_values.size(), 4u);
  // The callback is serialized, so `done` counts straight up 1..4.
  for (int i = 0; i < 4; ++i) EXPECT_EQ(done_values[i], i + 1);
  EXPECT_EQ(metrics.gauge("sweep.jobs_total").value(), 4.0);
  EXPECT_EQ(metrics.gauge("sweep.jobs_done").value(), 4.0);
  EXPECT_EQ(metrics.gauge("sweep.jobs_failed").value(), 0.0);
  EXPECT_GE(metrics.gauge("sweep.elapsed_seconds").value(), 0.0);
}

// --- Bench scale parsing -----------------------------------------------

TEST(BenchScaleTest, ParsesValidValues) {
  EXPECT_DOUBLE_EQ(bench::ParseBenchScale("0.2"), 0.2);
  EXPECT_DOUBLE_EQ(bench::ParseBenchScale("1"), 1.0);
  EXPECT_DOUBLE_EQ(bench::ParseBenchScale("2.5"), 2.5);
}

TEST(BenchScaleTest, FallsBackOnGarbage) {
  EXPECT_DOUBLE_EQ(bench::ParseBenchScale(nullptr), 1.0);
  EXPECT_DOUBLE_EQ(bench::ParseBenchScale(""), 1.0);
  EXPECT_DOUBLE_EQ(bench::ParseBenchScale("0,2"), 1.0);  // Comma decimal.
  EXPECT_DOUBLE_EQ(bench::ParseBenchScale("fast"), 1.0);
  EXPECT_DOUBLE_EQ(bench::ParseBenchScale("0.5x"), 1.0);  // Trailing junk.
  EXPECT_DOUBLE_EQ(bench::ParseBenchScale("0"), 1.0);
  EXPECT_DOUBLE_EQ(bench::ParseBenchScale("-3"), 1.0);
  EXPECT_DOUBLE_EQ(bench::ParseBenchScale("nan"), 1.0);
}

TEST(BenchScaleTest, ClampsExtremes) {
  EXPECT_DOUBLE_EQ(bench::ParseBenchScale("0.0001"), 0.01);
  EXPECT_DOUBLE_EQ(bench::ParseBenchScale("1e6"), 100.0);
}

}  // namespace
}  // namespace helios::harness
