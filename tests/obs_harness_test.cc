// Harness-level observability tests: run a small Helios-0 deployment with
// tracing enabled and check that the recorded trace agrees with the
// client-observed measurements, that the metrics snapshot carries the
// per-stage histograms, and that the exported Chrome trace is valid JSON.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <vector>

#include "core/helios_cluster.h"
#include "harness/experiment.h"
#include "harness/topology.h"
#include "json_check.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/network.h"
#include "sim/scheduler.h"
#include "workload/client.h"

namespace helios {
namespace {

constexpr sim::SimTime kWarmup = Millis(500);
constexpr sim::SimTime kMeasure = Seconds(2);
constexpr sim::SimTime kDrain = Seconds(2);

struct TracedRun {
  obs::TraceRecorder trace;
  obs::MetricsRegistry metrics;
  std::vector<double> client_latency_ms;  // In-window committed samples.
  uint64_t committed = 0;
  uint64_t aborted = 0;
};

// A hand-built miniature of harness::RunExperiment, kept separate so the
// test can reach the raw per-client latency samples (the harness result
// only exposes aggregates).
std::unique_ptr<TracedRun> RunTracedHelios0() {
  auto run = std::make_unique<TracedRun>();
  const harness::Topology topology = harness::Table2Topology();
  const int n = topology.size();

  sim::Scheduler scheduler;
  sim::Network network(&scheduler, n, /*seed=*/42);
  ConfigureNetwork(topology, &network);
  network.set_trace_recorder(&run->trace);

  core::HeliosConfig hc;
  hc.num_datacenters = n;
  hc.commit_offsets = harness::PlanCommitOffsets(topology, std::nullopt);
  core::HeliosCluster cluster(&scheduler, &network, std::move(hc),
                              core::LogProtocolKind::kHelios, "Helios-0");
  workload::WorkloadConfig workload;
  workload.num_keys = 500;
  for (uint64_t i = 0; i < workload.num_keys; ++i) {
    cluster.LoadInitialAll(workload::TYcsbGenerator::KeyName(i), "init");
  }
  cluster.SetObservability(&run->trace, &run->metrics);
  cluster.Start();

  const sim::SimTime until = kWarmup + kMeasure;
  std::vector<std::unique_ptr<workload::ClosedLoopClient>> clients;
  for (int c = 0; c < 2 * n; ++c) {
    clients.push_back(std::make_unique<workload::ClosedLoopClient>(
        static_cast<uint64_t>(c), /*home=*/c % n, &cluster, &scheduler,
        workload, /*seed=*/1000003, kWarmup, until, /*stop_at=*/until));
    clients.back()->SetObservability(&run->trace, &run->metrics);
    clients.back()->Start();
  }
  scheduler.RunUntil(until + kDrain);

  for (const auto& client : clients) {
    const workload::ClientMetrics& m = client->metrics();
    run->committed += m.committed;
    run->aborted += m.aborted;
    for (double s : m.commit_latency_ms.samples()) {
      run->client_latency_ms.push_back(s);
    }
  }
  return run;
}

const TracedRun& SharedRun() {
  static const std::unique_ptr<TracedRun> run = RunTracedHelios0();
  return *run;
}

bool InWindow(int64_t ts_us) {
  return ts_us >= static_cast<int64_t>(kWarmup) &&
         ts_us < static_cast<int64_t>(kWarmup + kMeasure);
}

TEST(ObsHarnessTest, RunCommitsTransactions) {
  const TracedRun& run = SharedRun();
  EXPECT_GT(run.committed, 100u);
  EXPECT_EQ(run.trace.dropped(), 0u) << "ring too small for this run";
}

TEST(ObsHarnessTest, ClientCommitSpansMatchClientLatencies) {
  const TracedRun& run = SharedRun();
  // The committed in-window client.commit spans are exactly the samples
  // the clients aggregated: same count, same durations.
  std::vector<double> span_ms;
  for (const obs::TraceEvent& e : run.trace.Events()) {
    if (e.kind == obs::EventKind::kClientCommit && e.detail == "committed" &&
        InWindow(e.ts_us)) {
      span_ms.push_back(ToMillis(e.dur_us));
    }
  }
  std::vector<double> client_ms = run.client_latency_ms;
  ASSERT_EQ(span_ms.size(), client_ms.size());
  ASSERT_EQ(span_ms.size(), run.committed);
  std::sort(span_ms.begin(), span_ms.end());
  std::sort(client_ms.begin(), client_ms.end());
  for (size_t i = 0; i < span_ms.size(); ++i) {
    EXPECT_DOUBLE_EQ(span_ms[i], client_ms[i]);
  }
}

TEST(ObsHarnessTest, LifecycleEventsArePresentAndOrdered) {
  const TracedRun& run = SharedRun();
  uint64_t commit_waits = 0;
  uint64_t net_hops = 0;
  uint64_t commits = 0;
  uint64_t appends = 0;
  for (const obs::TraceEvent& e : run.trace.Events()) {
    switch (e.kind) {
      case obs::EventKind::kCommitWait:
        ++commit_waits;
        EXPECT_GE(e.dur_us, 0);
        break;
      case obs::EventKind::kNetHop:
        ++net_hops;
        EXPECT_GT(e.dur_us, 0);  // WAN flight always takes time.
        EXPECT_NE(e.peer, kInvalidDc);
        EXPECT_NE(e.dc, e.peer);
        break;
      case obs::EventKind::kTxnCommit:
        ++commits;
        break;
      case obs::EventKind::kTxnAppend:
        ++appends;
        break;
      default:
        break;
    }
  }
  EXPECT_GT(commit_waits, 0u);
  EXPECT_GT(net_hops, 0u);
  EXPECT_GT(appends, 0u);
  // Every commit decision went through a commit wait (Rule 2/3).
  EXPECT_GE(commit_waits, commits);
  EXPECT_GT(commits, 0u);
}

TEST(ObsHarnessTest, MetricsSnapshotHasStageHistograms) {
  const TracedRun& run = SharedRun();
  const obs::MetricsSnapshot snap = run.metrics.Snapshot();
  for (const char* name :
       {"txn.queue_wait_us", "txn.commit_wait_us", "txn.commit_total_us",
        "client.commit_latency_us"}) {
    const auto* h = snap.FindHistogram(name);
    ASSERT_NE(h, nullptr) << name;
    EXPECT_GT(h->count, 0u) << name;
    EXPECT_GE(h->p99, h->p50) << name;
  }
  EXPECT_EQ(snap.FindHistogram("client.commit_latency_us")->count,
            run.committed);
  EXPECT_TRUE(helios::testing::IsValidJson(snap.ToJson()));
}

TEST(ObsHarnessTest, ExportedChromeTraceIsValidJson) {
  const TracedRun& run = SharedRun();
  std::ostringstream os;
  run.trace.ExportChromeTrace(os);
  EXPECT_TRUE(helios::testing::IsValidJson(os.str()));
}

TEST(ObsHarnessTest, RunExperimentWiresObservability) {
  harness::ExperimentConfig cfg;
  cfg.protocol = harness::Protocol::kHelios0;
  cfg.total_clients = 5;
  cfg.warmup = Millis(500);
  cfg.measure = Seconds(1);
  cfg.drain = Seconds(1);
  cfg.workload.num_keys = 200;
  cfg.trace.enabled = true;
  const harness::ExperimentResult r = harness::RunExperiment(cfg);
  ASSERT_NE(r.trace, nullptr);
  EXPECT_GT(r.trace->size(), 0u);
  ASSERT_FALSE(r.metrics.empty());
  EXPECT_NE(r.metrics.FindHistogram("txn.commit_total_us"), nullptr);
  ASSERT_NE(r.metrics.FindCounter("protocol.commits"), nullptr);
  EXPECT_GT(r.metrics.FindCounter("protocol.commits")->value, 0u);
  EXPECT_NE(r.metrics.FindCounter("net.messages_sent"), nullptr);
}

TEST(ObsHarnessTest, RunExperimentDisabledByDefault) {
  harness::ExperimentConfig cfg;
  cfg.protocol = harness::Protocol::kHelios0;
  cfg.total_clients = 3;
  cfg.warmup = Millis(200);
  cfg.measure = Millis(500);
  cfg.drain = Millis(500);
  cfg.workload.num_keys = 100;
  const harness::ExperimentResult r = harness::RunExperiment(cfg);
  EXPECT_EQ(r.trace, nullptr);
  EXPECT_EQ(r.metrics_registry, nullptr);
  EXPECT_TRUE(r.metrics.empty());
}

}  // namespace
}  // namespace helios
