// Unit tests for the conflict-serializability checker: hand-constructed
// histories with known wr / ww / rw dependency structure, both acyclic and
// cyclic.

#include <gtest/gtest.h>

#include "core/history.h"

namespace helios::core {
namespace {

TxnId Id(DcId dc, uint64_t seq) { return TxnId{dc, seq}; }

struct HistoryBuilder {
  std::vector<CommittedTxn> commits;

  void Add(TxnId id, Timestamp version_ts, std::vector<ReadEntry> reads,
           std::vector<Key> writes) {
    std::vector<WriteEntry> ws;
    for (auto& k : writes) ws.push_back({k, "v"});
    commits.push_back(CommittedTxn{
        id, id.origin, version_ts,
        MakeTxnBody(id, std::move(reads), std::move(ws))});
  }
};

TEST(SerializabilityCheckerTest, EmptyHistoryIsSerializable) {
  EXPECT_TRUE(CheckSerializable({}).ok());
}

TEST(SerializabilityCheckerTest, SingleTransaction) {
  HistoryBuilder h;
  h.Add(Id(0, 1), 10, {}, {"x"});
  EXPECT_TRUE(CheckSerializable(h.commits).ok());
}

TEST(SerializabilityCheckerTest, SimpleChainIsSerializable) {
  HistoryBuilder h;
  // t1 writes x; t2 reads t1's x and writes y; t3 reads y.
  h.Add(Id(0, 1), 10, {}, {"x"});
  h.Add(Id(0, 2), 20, {{"x", 10, Id(0, 1)}}, {"y"});
  h.Add(Id(0, 3), 30, {{"y", 20, Id(0, 2)}}, {"z"});
  EXPECT_TRUE(CheckSerializable(h.commits).ok());
}

TEST(SerializabilityCheckerTest, WriteSkewStyleCycleDetected) {
  HistoryBuilder h;
  // Classic rw-rw cycle: t1 reads x(initial) writes y; t2 reads y(initial)
  // writes x. Each read missed the other's write -> not serializable.
  h.Add(Id(0, 1), 10, {{"x", kMinTimestamp, TxnId{}}}, {"y"});
  h.Add(Id(1, 1), 11, {{"y", kMinTimestamp, TxnId{}}}, {"x"});
  const Status s = CheckSerializable(h.commits);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("cycle"), std::string::npos);
}

TEST(SerializabilityCheckerTest, LostUpdateCycleDetected) {
  HistoryBuilder h;
  // Both read the initial x, both write x: whoever is second in version
  // order overwrote without reading the first -> rw + ww cycle.
  h.Add(Id(0, 1), 10, {{"x", kMinTimestamp, TxnId{}}}, {"x"});
  h.Add(Id(1, 1), 20, {{"x", kMinTimestamp, TxnId{}}}, {"x"});
  EXPECT_FALSE(CheckSerializable(h.commits).ok());
}

TEST(SerializabilityCheckerTest, ReadModifyWriteChainIsSerializable) {
  HistoryBuilder h;
  h.Add(Id(0, 1), 10, {{"x", kMinTimestamp, TxnId{}}}, {"x"});
  h.Add(Id(1, 1), 20, {{"x", 10, Id(0, 1)}}, {"x"});
  h.Add(Id(2, 1), 30, {{"x", 20, Id(1, 1)}}, {"x"});
  EXPECT_TRUE(CheckSerializable(h.commits).ok());
}

TEST(SerializabilityCheckerTest, StaleReadAgainstNewerVersionDetected) {
  HistoryBuilder h;
  // t1, t2 write x in version order. t3 reads t1's version but its own
  // version timestamp places it after t2, and t3 also writes x:
  // ww: t2 -> t3 and rw: t3 -> t2. Cycle.
  h.Add(Id(0, 1), 10, {}, {"x"});
  h.Add(Id(0, 2), 20, {}, {"x"});
  h.Add(Id(1, 1), 30, {{"x", 10, Id(0, 1)}}, {"x"});
  EXPECT_FALSE(CheckSerializable(h.commits).ok());
}

TEST(SerializabilityCheckerTest, StaleReadWithoutWriteStillCyclesViaWr) {
  HistoryBuilder h;
  // t_r reads t1's x; the next version of x is t2's; t2 reads something
  // t_r wrote. rw: t_r -> t2; wr: t2 would need an edge back... build it:
  // t2 reads t_r's y.
  h.Add(Id(0, 1), 10, {}, {"x"});                      // t1
  h.Add(Id(2, 1), 15, {{"x", 10, Id(0, 1)}}, {"y"});   // t_r: reads x, writes y
  h.Add(Id(0, 2), 20, {{"y", 15, Id(2, 1)}}, {"x"});   // t2: reads y, writes x
  // Edges: t1->t_r (wr), t_r->t2 (rw on x), t_r->t2 (wr on y): acyclic.
  EXPECT_TRUE(CheckSerializable(h.commits).ok());
}

TEST(SerializabilityCheckerTest, ThreeWayCycleDetected) {
  HistoryBuilder h;
  // t1 reads a(init) writes b; t2 reads b(init) writes c; t3 reads c(init)
  // writes a. Three rw anti-dependencies form a cycle.
  h.Add(Id(0, 1), 10, {{"a", kMinTimestamp, TxnId{}}}, {"b"});
  h.Add(Id(1, 1), 11, {{"b", kMinTimestamp, TxnId{}}}, {"c"});
  h.Add(Id(2, 1), 12, {{"c", kMinTimestamp, TxnId{}}}, {"a"});
  EXPECT_FALSE(CheckSerializable(h.commits).ok());
}

TEST(SerializabilityCheckerTest, DisjointTransactionsAlwaysSerializable) {
  HistoryBuilder h;
  for (uint64_t i = 0; i < 50; ++i) {
    h.Add(Id(static_cast<DcId>(i % 3), i), static_cast<Timestamp>(100 - i),
          {}, {"key" + std::to_string(i)});
  }
  EXPECT_TRUE(CheckSerializable(h.commits).ok());
}

TEST(SerializabilityCheckerTest, ReadOfUnknownWriterTreatedAsInitial) {
  HistoryBuilder h;
  // The read's writer id is valid but not in the recorded history (e.g.
  // data loaded by the experiment loader): reader precedes all writers.
  h.Add(Id(0, 1), 10, {{"x", 5, Id(-2, 77)}}, {"y"});
  h.Add(Id(1, 1), 20, {}, {"x"});
  EXPECT_TRUE(CheckSerializable(h.commits).ok());
}

TEST(SerializabilityCheckerTest, BlindWritesOrderedByVersionTs) {
  HistoryBuilder h;
  h.Add(Id(0, 1), 30, {}, {"x"});
  h.Add(Id(1, 1), 20, {}, {"x"});
  h.Add(Id(2, 1), 10, {}, {"x"});
  EXPECT_TRUE(CheckSerializable(h.commits).ok());
}

TEST(SerializabilityCheckerTest, ConcurrentlyOverwrittenReadIsAcyclic) {
  HistoryBuilder h;
  // t_r reads t1's version of x while t2 concurrently installs a newer
  // one. t_r writes nothing x-related, so the only extra edge is the
  // anti-dependency t_r -> t2: a DAG, the history serializes as
  // t1, t_r, t2.
  h.Add(Id(0, 1), 10, {}, {"x"});
  h.Add(Id(0, 2), 20, {}, {"x"});
  h.Add(Id(1, 1), 30, {{"x", 10, Id(0, 1)}}, {"y"});
  EXPECT_TRUE(CheckSerializable(h.commits).ok());
}

TEST(SerializabilityCheckerTest, ThreeTxnCycleMessageNamesEveryParticipant) {
  HistoryBuilder h;
  // The ThreeWayCycleDetected shape, but pinning the failure report: the
  // fuzzer's repro quality depends on the message naming the exact
  // transactions on the cycle.
  h.Add(Id(0, 11), 10, {{"a", kMinTimestamp, TxnId{}}}, {"b"});
  h.Add(Id(1, 22), 11, {{"b", kMinTimestamp, TxnId{}}}, {"c"});
  h.Add(Id(2, 33), 12, {{"c", kMinTimestamp, TxnId{}}}, {"a"});
  const Status s = CheckSerializable(h.commits);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("cycle"), std::string::npos);
  EXPECT_NE(s.message().find("0:11"), std::string::npos);
  EXPECT_NE(s.message().find("1:22"), std::string::npos);
  EXPECT_NE(s.message().find("2:33"), std::string::npos);
}

TEST(SerializabilityCheckerTest, CycleMessageNamesTransactions) {
  HistoryBuilder h;
  h.Add(Id(0, 7), 10, {{"x", kMinTimestamp, TxnId{}}}, {"y"});
  h.Add(Id(1, 9), 11, {{"y", kMinTimestamp, TxnId{}}}, {"x"});
  const Status s = CheckSerializable(h.commits);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("0:7"), std::string::npos);
  EXPECT_NE(s.message().find("1:9"), std::string::npos);
}

TEST(HistoryRecorderTest, RecordsAndClears) {
  HistoryRecorder rec;
  EXPECT_EQ(rec.size(), 0u);
  rec.RecordCommit(CommittedTxn{Id(0, 1), 0, 10,
                                MakeTxnBody(Id(0, 1), {}, {{"x", "v"}})});
  EXPECT_EQ(rec.size(), 1u);
  rec.Clear();
  EXPECT_EQ(rec.size(), 0u);
}

}  // namespace
}  // namespace helios::core
