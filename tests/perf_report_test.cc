// Tests for the helios-bench-perf-v1 performance document: deterministic
// JSON shape, strict parsing (the same validation json_verify
// --schema=bench applies to committed BENCH_*.json files), regression
// direction rules, and the tolerance-band comparison bench_compare runs
// in CI.

#include <gtest/gtest.h>

#include <string>

#include "harness/perf_report.h"

namespace helios::harness {
namespace {

PerfReport SampleReport() {
  PerfReport report;
  PerfEntry& sim = report.Add("sim.events.helios0");
  sim.Set("events_per_sec", 150000.0);
  sim.Set("wall_s", 1.25);
  PerfEntry& live = report.Add("live.tcp");
  live.Set("p99_us", 40.0);
  live.Set("ops_per_sec", 50000.0);
  return report;
}

TEST(PerfReportTest, ToJsonIsDeterministicAndSorted) {
  // Entries keep emission order; metric keys are alphabetized (ops before
  // p99 even though Set() ran the other way); schema tag is present.
  const std::string json = SampleReport().ToJson();
  EXPECT_EQ(json,
            "{\"entries\":[{\"id\":\"sim.events.helios0\",\"metrics\":"
            "{\"events_per_sec\":150000,\"wall_s\":1.25}},"
            "{\"id\":\"live.tcp\",\"metrics\":"
            "{\"ops_per_sec\":50000,\"p99_us\":40}}],"
            "\"schema\":\"helios-bench-perf-v1\"}");
}

TEST(PerfReportTest, RoundTripPreservesEverything) {
  const PerfReport report = SampleReport();
  auto parsed = PerfReport::FromJson(report.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed.value().entries.size(), 2u);
  const PerfEntry* sim = parsed.value().Find("sim.events.helios0");
  ASSERT_NE(sim, nullptr);
  const double* wall = sim->Find("wall_s");
  ASSERT_NE(wall, nullptr);
  EXPECT_DOUBLE_EQ(*wall, 1.25);
  // Re-serializing the parse yields the identical document.
  EXPECT_EQ(parsed.value().ToJson(), report.ToJson());
}

TEST(PerfReportTest, FromJsonRejectsMalformedDocuments) {
  // Wrong schema tag.
  EXPECT_FALSE(
      PerfReport::FromJson("{\"entries\":[],\"schema\":\"v0\"}").ok());
  // Missing schema.
  EXPECT_FALSE(PerfReport::FromJson("{\"entries\":[]}").ok());
  // Unknown top-level key.
  EXPECT_FALSE(PerfReport::FromJson(
                   "{\"entries\":[],\"extra\":1,"
                   "\"schema\":\"helios-bench-perf-v1\"}")
                   .ok());
  // Unknown entry key.
  EXPECT_FALSE(PerfReport::FromJson(
                   "{\"entries\":[{\"id\":\"x\",\"metrics\":{},\"note\":1}],"
                   "\"schema\":\"helios-bench-perf-v1\"}")
                   .ok());
  // Empty id.
  EXPECT_FALSE(PerfReport::FromJson(
                   "{\"entries\":[{\"id\":\"\",\"metrics\":{}}],"
                   "\"schema\":\"helios-bench-perf-v1\"}")
                   .ok());
  // Non-numeric metric value.
  EXPECT_FALSE(PerfReport::FromJson(
                   "{\"entries\":[{\"id\":\"x\",\"metrics\":{\"m\":\"hi\"}}],"
                   "\"schema\":\"helios-bench-perf-v1\"}")
                   .ok());
  // Not JSON at all.
  EXPECT_FALSE(PerfReport::FromJson("not json").ok());
}

TEST(PerfReportTest, MetricDirectionFollowsNameSuffix) {
  EXPECT_TRUE(MetricLowerIsBetter("p99_us"));
  EXPECT_TRUE(MetricLowerIsBetter("latency_ms"));
  EXPECT_TRUE(MetricLowerIsBetter("wall_s"));
  EXPECT_FALSE(MetricLowerIsBetter("ops_per_sec"));
  EXPECT_FALSE(MetricLowerIsBetter("events_per_sec"));
  EXPECT_FALSE(MetricLowerIsBetter("speedup_vs_legacy"));
  EXPECT_FALSE(MetricLowerIsBetter("us"));  // Suffix needs the underscore.
}

TEST(ComparePerfReportsTest, FlagsOnlyChangesBeyondTolerance) {
  PerfReport base;
  base.Add("bench").Set("ops_per_sec", 1000.0);
  base.Find("bench");

  // 1.4x slower with 0.5 tolerance: inside the band.
  PerfReport ok;
  ok.Add("bench").Set("ops_per_sec", 714.0);
  EXPECT_TRUE(ComparePerfReports(base, ok, 0.5).empty());

  // 2x slower: flagged, with direction-aware worse_by (base/cur for a
  // higher-is-better rate).
  PerfReport bad;
  bad.Add("bench").Set("ops_per_sec", 500.0);
  auto regressions = ComparePerfReports(base, bad, 0.5);
  ASSERT_EQ(regressions.size(), 1u);
  EXPECT_EQ(regressions[0].entry, "bench");
  EXPECT_EQ(regressions[0].metric, "ops_per_sec");
  EXPECT_DOUBLE_EQ(regressions[0].worse_by, 2.0);

  // Tighter tolerance flags the 1.4x case too.
  EXPECT_EQ(ComparePerfReports(base, ok, 0.1).size(), 1u);
}

TEST(ComparePerfReportsTest, LatencyMetricsRegressUpward) {
  PerfReport base;
  base.Add("live").Set("p99_us", 40.0);

  PerfReport faster;
  faster.Add("live").Set("p99_us", 10.0);  // Improvement: never flagged.
  EXPECT_TRUE(ComparePerfReports(base, faster, 0.5).empty());

  PerfReport slower;
  slower.Add("live").Set("p99_us", 100.0);  // 2.5x worse.
  auto regressions = ComparePerfReports(base, slower, 0.5);
  ASSERT_EQ(regressions.size(), 1u);
  EXPECT_DOUBLE_EQ(regressions[0].worse_by, 2.5);
}

TEST(ComparePerfReportsTest, SkipsMetricsPresentOnOneSideOnly) {
  // Benches gain entries and metrics over time; the gate only compares
  // what both reports measured.
  PerfReport base;
  base.Add("old_bench").Set("ops_per_sec", 1000.0);
  PerfReport current;
  current.Add("new_bench").Set("ops_per_sec", 1.0);
  PerfEntry& shared = current.Add("old_bench");
  shared.Set("brand_new_metric", 0.001);
  EXPECT_TRUE(ComparePerfReports(base, current, 0.5).empty());
}

TEST(ComparePerfReportsTest, SkipsNonPositiveValues) {
  PerfReport base;
  base.Add("bench").Set("ops_per_sec", 0.0);
  PerfReport current;
  current.Add("bench").Set("ops_per_sec", -5.0);
  EXPECT_TRUE(ComparePerfReports(base, current, 0.5).empty());
}

}  // namespace
}  // namespace helios::harness
