// Unit tests for the discrete-event simulation substrate: scheduler,
// clocks, WAN model, and the service queue.

#include <gtest/gtest.h>

#include <vector>

#include "sim/clock.h"
#include "sim/network.h"
#include "sim/scheduler.h"
#include "sim/service_queue.h"

namespace helios::sim {
namespace {

TEST(SchedulerTest, RunsEventsInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.At(30, [&] { order.push_back(3); });
  s.At(10, [&] { order.push_back(1); });
  s.At(20, [&] { order.push_back(2); });
  s.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.Now(), 30);
}

TEST(SchedulerTest, SimultaneousEventsRunInScheduleOrder) {
  Scheduler s;
  std::vector<int> order;
  s.At(5, [&] { order.push_back(1); });
  s.At(5, [&] { order.push_back(2); });
  s.At(5, [&] { order.push_back(3); });
  s.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SchedulerTest, AfterIsRelative) {
  Scheduler s;
  SimTime fired = -1;
  s.At(100, [&] {
    s.After(50, [&] { fired = s.Now(); });
  });
  s.Run();
  EXPECT_EQ(fired, 150);
}

TEST(SchedulerTest, PastEventsClampToNow) {
  Scheduler s;
  SimTime fired = -1;
  s.At(100, [&] {
    s.At(10, [&] { fired = s.Now(); });  // In the past: runs "now".
  });
  s.Run();
  EXPECT_EQ(fired, 100);
}

TEST(SchedulerTest, RunUntilStopsAtBoundary) {
  Scheduler s;
  int count = 0;
  for (SimTime t = 10; t <= 100; t += 10) {
    s.At(t, [&] { ++count; });
  }
  s.RunUntil(50);
  EXPECT_EQ(count, 5);
  EXPECT_EQ(s.Now(), 50);
  s.Run();
  EXPECT_EQ(count, 10);
}

TEST(SchedulerTest, NestedSchedulingWorks) {
  Scheduler s;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) s.After(1, recurse);
  };
  s.After(1, recurse);
  s.Run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(s.Now(), 5);
}

TEST(ClockTest, OffsetApplied) {
  Scheduler s;
  Clock c(&s, Millis(100));
  s.At(Millis(50), [&] { EXPECT_EQ(c.Now(), Millis(150)); });
  s.Run();
}

TEST(ClockTest, NegativeOffset) {
  Scheduler s;
  Clock c(&s, -Millis(20));
  s.At(Millis(50), [&] { EXPECT_EQ(c.Now(), Millis(30)); });
  s.Run();
}

TEST(ClockTest, NowUniqueStrictlyIncreasing) {
  Scheduler s;
  Clock c(&s, 0);
  Timestamp prev = kMinTimestamp;
  for (int i = 0; i < 10; ++i) {
    const Timestamp t = c.NowUnique();  // Time not advancing: still unique.
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(ClockTest, DriftAccumulates) {
  Scheduler s;
  Clock c(&s, 0, /*drift_ppm=*/100.0);  // 100us per second.
  s.At(Seconds(10), [&] {
    EXPECT_NEAR(static_cast<double>(c.Now() - s.Now()), 1000.0, 1.0);
  });
  s.Run();
}

TEST(NetworkTest, DeliversWithConfiguredLatency) {
  Scheduler s;
  Network net(&s, 2, /*seed=*/1);
  net.SetRtt(0, 1, Millis(80), 0);
  SimTime arrived = -1;
  net.Send(0, 1, [&] { arrived = s.Now(); });
  s.Run();
  EXPECT_EQ(arrived, Millis(40));  // One way = RTT/2.
  EXPECT_EQ(net.MeanRtt(0, 1), Millis(80));
}

TEST(NetworkTest, FifoPerChannel) {
  Scheduler s;
  Network net(&s, 2, /*seed=*/2);
  net.SetRtt(0, 1, Millis(50), Millis(30));  // Heavy jitter.
  std::vector<int> arrivals;
  for (int i = 0; i < 50; ++i) {
    s.At(i * Millis(1), [&net, &arrivals, i] {
      net.Send(0, 1, [&arrivals, i] { arrivals.push_back(i); });
    });
  }
  s.Run();
  ASSERT_EQ(arrivals.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(arrivals[i], i);
}

TEST(NetworkTest, JitterVariesLatency) {
  Scheduler s;
  Network net(&s, 2, /*seed=*/3);
  net.SetRtt(0, 1, Millis(100), Millis(20));
  Duration lo = Seconds(10);
  Duration hi = 0;
  for (int i = 0; i < 200; ++i) {
    const Duration rtt = net.SampleRtt(0, 1);
    lo = std::min(lo, rtt);
    hi = std::max(hi, rtt);
  }
  EXPECT_LT(lo, Millis(95));
  EXPECT_GT(hi, Millis(105));
  EXPECT_GE(lo, Millis(50));  // Propagation floor: one-way >= mean / 2.
}

TEST(NetworkTest, CrashedReceiverDropsMessages) {
  Scheduler s;
  Network net(&s, 2, /*seed=*/4);
  net.SetRtt(0, 1, Millis(10), 0);
  int delivered = 0;
  net.CrashNode(1);
  net.Send(0, 1, [&] { ++delivered; });
  s.Run();
  EXPECT_EQ(delivered, 0);
  EXPECT_GE(net.messages_dropped(), 1u);

  net.RecoverNode(1);
  net.Send(0, 1, [&] { ++delivered; });
  s.Run();
  EXPECT_EQ(delivered, 1);
}

TEST(NetworkTest, CrashedSenderDropsMessages) {
  Scheduler s;
  Network net(&s, 2, /*seed=*/5);
  net.SetRtt(0, 1, Millis(10), 0);
  int delivered = 0;
  net.CrashNode(0);
  net.Send(0, 1, [&] { ++delivered; });
  s.Run();
  EXPECT_EQ(delivered, 0);
}

TEST(NetworkTest, PartitionCutsBothDirections) {
  Scheduler s;
  Network net(&s, 3, /*seed=*/6);
  net.SetRtt(0, 1, Millis(10), 0);
  net.SetRtt(0, 2, Millis(10), 0);
  net.SetRtt(1, 2, Millis(10), 0);
  net.SetPartitioned(0, 1, true);
  EXPECT_TRUE(net.IsPartitioned(0, 1));
  int delivered = 0;
  net.Send(0, 1, [&] { ++delivered; });
  net.Send(1, 0, [&] { ++delivered; });
  net.Send(0, 2, [&] { ++delivered; });  // Unaffected link.
  s.Run();
  EXPECT_EQ(delivered, 1);

  net.SetPartitioned(0, 1, false);
  net.Send(0, 1, [&] { ++delivered; });
  s.Run();
  EXPECT_EQ(delivered, 2);
}

TEST(ServiceQueueTest, SerializesWork) {
  Scheduler s;
  ServiceQueue q(&s);
  std::vector<SimTime> done;
  s.At(0, [&] {
    q.Submit(Millis(10), [&] { done.push_back(s.Now()); });
    q.Submit(Millis(10), [&] { done.push_back(s.Now()); });
    q.Submit(Millis(10), [&] { done.push_back(s.Now()); });
  });
  s.Run();
  ASSERT_EQ(done.size(), 3u);
  EXPECT_EQ(done[0], Millis(10));
  EXPECT_EQ(done[1], Millis(20));
  EXPECT_EQ(done[2], Millis(30));
  EXPECT_EQ(q.total_busy(), Millis(30));
}

TEST(ServiceQueueTest, IdleServerStartsImmediately) {
  Scheduler s;
  ServiceQueue q(&s);
  SimTime done = -1;
  s.At(Millis(100), [&] { q.Submit(Millis(5), [&] { done = s.Now(); }); });
  s.Run();
  EXPECT_EQ(done, Millis(105));
}

TEST(ServiceQueueTest, ChargeDelaysLaterWork) {
  Scheduler s;
  ServiceQueue q(&s);
  SimTime done = -1;
  s.At(0, [&] {
    q.Charge(Millis(50));
    q.Submit(Millis(10), [&] { done = s.Now(); });
  });
  s.Run();
  EXPECT_EQ(done, Millis(60));
}

TEST(ServiceQueueTest, BacklogReflectsQueuedWork) {
  Scheduler s;
  ServiceQueue q(&s);
  s.At(0, [&] {
    EXPECT_EQ(q.backlog(), 0);
    q.Charge(Millis(30));
    EXPECT_EQ(q.backlog(), Millis(30));
  });
  s.Run();
}

}  // namespace
}  // namespace helios::sim
