// Tests for the copy-free encode surface introduced by the wire API
// redesign: wire::Buffer reuse semantics, Writer/Encoder byte
// equivalence on every primitive, Framer vs legacy FrameEnvelope
// equivalence over a message corpus, reuse-after-clear stability, and a
// truncation-prefix sweep (no proper prefix of a framed message may
// decode). The legacy Encoder path stays alive precisely so these
// equivalence checks can keep pinning the new path to it.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random.h"
#include "wire/buffer.h"
#include "wire/codec.h"
#include "wire/serialization.h"

namespace helios::wire {
namespace {

// --- Buffer semantics -------------------------------------------------------

TEST(BufferTest, ClearKeepsCapacity) {
  Buffer buf;
  for (int i = 0; i < 1000; ++i) buf.PushBack(static_cast<uint8_t>(i));
  ASSERT_EQ(buf.size(), 1000u);
  const size_t high_water = buf.capacity();
  ASSERT_GE(high_water, 1000u);
  buf.Clear();
  EXPECT_EQ(buf.size(), 0u);
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.capacity(), high_water);  // The reuse contract.
}

TEST(BufferTest, ExtendReturnsWritableTail) {
  Buffer buf;
  buf.PushBack(0xAA);
  uint8_t* tail = buf.Extend(4);
  tail[0] = 1;
  tail[1] = 2;
  tail[2] = 3;
  tail[3] = 4;
  ASSERT_EQ(buf.size(), 5u);
  EXPECT_EQ(buf.data()[0], 0xAA);
  EXPECT_EQ(buf.data()[4], 4);
}

TEST(BufferTest, AssignAndCopyOut) {
  const uint8_t raw[] = {9, 8, 7};
  Buffer buf;
  buf.Assign(raw, sizeof(raw));
  EXPECT_EQ(buf.ToVector(), (std::vector<uint8_t>{9, 8, 7}));
  std::vector<uint8_t> released = buf.ReleaseVector();
  EXPECT_EQ(released, (std::vector<uint8_t>{9, 8, 7}));
  EXPECT_TRUE(buf.empty());
}

// --- Writer vs legacy Encoder: identical bytes by construction --------------

TEST(WriterTest, PrimitivesMatchEncoderBytes) {
  Rng rng(11);
  for (int round = 0; round < 50; ++round) {
    Buffer buf;
    Writer w(&buf);
    Encoder enc;
    for (int op = 0; op < 40; ++op) {
      const uint64_t v = rng.Uniform(1u << 30);
      switch (rng.Uniform(7)) {
        case 0:
          w.PutU8(static_cast<uint8_t>(v));
          enc.PutU8(static_cast<uint8_t>(v));
          break;
        case 1:
          w.PutFixed32(static_cast<uint32_t>(v));
          enc.PutFixed32(static_cast<uint32_t>(v));
          break;
        case 2:
          w.PutFixed64(v * v);
          enc.PutFixed64(v * v);
          break;
        case 3:
          w.PutVarint(v);
          enc.PutVarint(v);
          break;
        case 4:
          w.PutSignedVarint(static_cast<int64_t>(v) - (1 << 29));
          enc.PutSignedVarint(static_cast<int64_t>(v) - (1 << 29));
          break;
        case 5: {
          const std::string s(v % 60, 'x');
          w.PutString(s);
          enc.PutString(s);
          break;
        }
        default:
          w.PutBool((v & 1) != 0);
          enc.PutBool((v & 1) != 0);
          break;
      }
    }
    ASSERT_EQ(buf.vec(), enc.bytes());
  }
}

TEST(WriterTest, PatchFixed32BackfillsPlaceholder) {
  Buffer buf;
  Writer w(&buf);
  w.PutU8(0x5A);
  const size_t at = w.offset();
  w.PutFixed32(0);  // Placeholder.
  w.PutString("payload");
  w.PatchFixed32(at, 0xDEADBEEFu);
  Reader r(buf);
  uint8_t lead = 0;
  uint32_t patched = 0;
  std::string s;
  ASSERT_TRUE(r.GetU8(&lead).ok());
  ASSERT_TRUE(r.GetFixed32(&patched).ok());
  ASSERT_TRUE(r.GetString(&s).ok());
  EXPECT_EQ(lead, 0x5A);
  EXPECT_EQ(patched, 0xDEADBEEFu);
  EXPECT_EQ(s, "payload");
  EXPECT_TRUE(r.exhausted());
}

TEST(WriterTest, SequentialWritersShareOneBuffer) {
  Buffer buf;
  {
    Writer a(&buf);
    a.PutVarint(300);
  }
  {
    Writer b(&buf);
    b.PutString("tail");
  }
  Reader r(buf);
  uint64_t v = 0;
  std::string s;
  ASSERT_TRUE(r.GetVarint(&v).ok());
  ASSERT_TRUE(r.GetString(&s).ok());
  EXPECT_EQ(v, 300u);
  EXPECT_EQ(s, "tail");
}

// --- Envelope corpus: new path == legacy path, reuse is stable --------------

/// Deterministic corpus spanning the envelope feature space: records with
/// read/write sets, refusals, estimation fields, catch-up kinds, and the
/// degenerate empty-heartbeat shape.
std::vector<core::Envelope> CorpusEnvelopes() {
  std::vector<core::Envelope> corpus;
  Rng rng(7);
  for (int i = 0; i < 12; ++i) {
    core::Envelope env(4);
    env.log.from = static_cast<DcId>(i % 4);
    for (DcId a = 0; a < 4; ++a) {
      for (DcId b = 0; b < 4; ++b) {
        env.log.table.Set(a, b, static_cast<Timestamp>(rng.Uniform(1u << 24)));
      }
    }
    const int records = i % 4;  // Includes record-free heartbeats.
    for (int rec_i = 0; rec_i < records; ++rec_i) {
      rdict::LogRecord rec;
      rec.type = (rec_i % 2 == 0) ? rdict::RecordType::kPreparing
                                  : rdict::RecordType::kFinished;
      rec.ts = static_cast<Timestamp>(1000 * i + rec_i);
      rec.origin = env.log.from;
      std::vector<ReadEntry> reads;
      std::vector<WriteEntry> writes;
      for (int j = 0; j < 3; ++j) {
        const std::string key = "user" + std::to_string(rng.Uniform(500));
        reads.push_back({key, static_cast<Timestamp>(rng.Uniform(1 << 20)),
                         TxnId{static_cast<DcId>(j % 4), rng.Uniform(100)}});
        writes.push_back({key, std::string(1 + rng.Uniform(40), 'v')});
      }
      rec.body = MakeTxnBody(TxnId{env.log.from, 10 * i + rec_i},
                             std::move(reads), std::move(writes));
      env.log.records.push_back(rec);
    }
    if (i % 3 == 0) {
      env.refusals.push_back(
          core::Refusal{static_cast<DcId>((i + 1) % 4),
                        TxnId{static_cast<DcId>(i % 4), 77}, 1234});
    }
    env.ping_id = static_cast<uint32_t>(i + 1);
    env.pong_for = static_cast<uint32_t>(i);
    env.pong_hold_us = 250 * i;
    if (i % 2 == 0) env.rtt_row_us = {0, 45000, 81000, 120000};
    if (i == 5) env.kind = core::EnvelopeKind::kCatchupRequest;
    if (i == 9) env.kind = core::EnvelopeKind::kCatchupResponse;
    corpus.push_back(std::move(env));
  }
  return corpus;
}

TEST(WriterEquivalenceTest, EncodeEnvelopeMatchesLegacyEncoderOnCorpus) {
  Buffer buf;
  for (const core::Envelope& env : CorpusEnvelopes()) {
    buf.Clear();
    Writer w(&buf);
    EncodeEnvelope(env, &w);
    Encoder legacy;
    EncodeEnvelope(env, &legacy);
    ASSERT_EQ(buf.vec(), legacy.bytes());
    ASSERT_EQ(buf.size(), EncodedEnvelopeSize(env));
  }
}

TEST(WriterEquivalenceTest, FramerMatchesLegacyFrameEnvelopeOnCorpus) {
  Framer framer;
  for (const core::Envelope& env : CorpusEnvelopes()) {
    const Buffer& framed = framer.Frame(env);
    ASSERT_EQ(framed.vec(), FrameEnvelope(env));
    auto round = UnframeEnvelope(framed);
    ASSERT_TRUE(round.ok()) << round.status().ToString();
    EXPECT_EQ(round.value().log.from, env.log.from);
    EXPECT_EQ(round.value().log.records.size(), env.log.records.size());
    EXPECT_EQ(round.value().kind, env.kind);
  }
}

TEST(WriterEquivalenceTest, ReuseAfterClearIsByteStable) {
  // Encoding the same message into a reused Buffer must yield identical
  // bytes every time — stale tail bytes from a larger earlier message
  // must never leak into a later encode.
  const auto corpus = CorpusEnvelopes();
  // Encode the biggest message first so the reused buffer's capacity
  // exceeds every later message.
  Buffer buf;
  Writer w(&buf);
  EncodeEnvelope(corpus.back(), &w);
  for (const core::Envelope& env : corpus) {
    Encoder fresh;
    EncodeEnvelope(env, &fresh);
    for (int repeat = 0; repeat < 3; ++repeat) {
      buf.Clear();
      Writer reuse(&buf);
      EncodeEnvelope(env, &reuse);
      ASSERT_EQ(buf.vec(), fresh.bytes());
    }
  }
}

TEST(WriterEquivalenceTest, FramerReuseShrinksAndGrowsCorrectly) {
  // Alternate big and tiny envelopes through one Framer: each frame must
  // be exactly the one-shot frame for that envelope, regardless of what
  // the scratch buffers held before.
  const auto corpus = CorpusEnvelopes();
  Framer framer;
  for (size_t i = 0; i < corpus.size(); ++i) {
    const core::Envelope& env = corpus[i % 2 == 0 ? corpus.size() - 1 - i / 2
                                                  : i / 2];
    ASSERT_EQ(framer.Frame(env).vec(), FrameEnvelope(env));
  }
}

// --- Truncation: no proper prefix may decode --------------------------------

TEST(TruncationTest, EveryProperPrefixOfFrameFailsToUnframe) {
  for (const core::Envelope& env : CorpusEnvelopes()) {
    const std::vector<uint8_t> bytes = FrameEnvelope(env);
    // Dense sweep over the frame header and record boundaries; sparse over
    // the payload interior to keep the test fast.
    for (size_t len = 0; len < bytes.size();
         len += (len < 64 || len + 64 >= bytes.size()) ? 1 : 7) {
      auto result = UnframeEnvelope(bytes.data(), len);
      ASSERT_FALSE(result.ok())
          << "prefix of length " << len << "/" << bytes.size() << " decoded";
    }
  }
}

TEST(TruncationTest, EveryProperPrefixOfPayloadFailsToDecode) {
  Buffer buf;
  Writer w(&buf);
  const auto corpus = CorpusEnvelopes();
  EncodeEnvelope(corpus[3], &w);  // A record-carrying envelope.
  for (size_t len = 0; len < buf.size(); ++len) {
    Reader r(buf.data(), len);
    core::Envelope out(1);
    ASSERT_FALSE(DecodeEnvelope(&r, &out).ok())
        << "payload prefix of length " << len << " decoded";
  }
}

}  // namespace
}  // namespace helios::wire
