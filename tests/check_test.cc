// Unit tests for the simulation fuzzer (src/check): scenario generation,
// the invariant oracles over hand-built run artifacts, and the shrinker
// with an injected (cheap) evaluator. End-to-end suites that run whole
// simulations live in corpus_replay_test.cc and check_mutation_test.cc.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "check/oracles.h"
#include "check/scenario_gen.h"
#include "check/shrink.h"
#include "harness/experiment.h"
#include "harness/experiment_spec.h"

namespace helios::check {
namespace {

namespace hns = helios::harness;

// --- generator --------------------------------------------------------------

TEST(ScenarioGenerator, DeterministicPerIndex) {
  const ScenarioGenerator a;
  const ScenarioGenerator b;
  for (uint64_t i = 0; i < 10; ++i) {
    const hns::ExperimentSpec sa = a.Scenario(i);
    const hns::ExperimentSpec sb = b.Scenario(i);
    EXPECT_TRUE(sa == sb) << "scenario " << i;
    EXPECT_EQ(sa.ToJson(), sb.ToJson()) << "scenario " << i;
  }
  // Different indices explore different points.
  EXPECT_FALSE(a.Scenario(0) == a.Scenario(1));
}

TEST(ScenarioGenerator, DifferentMasterSeedsDiffer) {
  GeneratorOptions other;
  other.master_seed = 99;
  const ScenarioGenerator a;
  const ScenarioGenerator b(other);
  EXPECT_FALSE(a.Scenario(0) == b.Scenario(0));
}

TEST(ScenarioGenerator, SpecsAreValidAndLabeled) {
  const ScenarioGenerator gen;
  const auto& protocols = gen.options().protocols;
  for (uint64_t i = 0; i < 30; ++i) {
    const hns::ExperimentSpec spec = gen.Scenario(i);
    EXPECT_TRUE(spec.Validate().ok())
        << "scenario " << i << ": " << spec.Validate().ToString();
    EXPECT_EQ(spec.label, "fuzz-" + std::to_string(i));
    EXPECT_TRUE(spec.check_serializability);
    EXPECT_NE(std::find(protocols.begin(), protocols.end(), spec.protocol),
              protocols.end());
    // Any fault arms the client timeout so closed-loop clients cannot
    // wedge on a swallowed request.
    if (!spec.fault_plan.empty()) {
      EXPECT_GT(spec.client_timeout, 0) << "scenario " << i;
    }
  }
}

TEST(ScenarioGenerator, RespectsOptions) {
  GeneratorOptions options;
  options.protocols = {hns::Protocol::kHelios0};
  options.crashes = false;
  options.partitions = false;
  options.message_faults = false;
  options.clock_skew = false;
  options.gray_faults = false;
  options.min_clients = 3;
  options.max_clients = 5;
  const ScenarioGenerator gen(options);
  for (uint64_t i = 0; i < 30; ++i) {
    const hns::ExperimentSpec spec = gen.Scenario(i);
    EXPECT_EQ(spec.protocol, hns::Protocol::kHelios0);
    EXPECT_TRUE(spec.fault_plan.empty()) << "scenario " << i;
    EXPECT_TRUE(spec.clock_offsets.empty()) << "scenario " << i;
    EXPECT_GE(spec.clients, 3);
    EXPECT_LE(spec.clients, 5);
  }
}

TEST(ScenarioGenerator, SamplesGrayFaultsWithHealthEnabled) {
  GeneratorOptions options;
  options.crashes = false;
  options.partitions = false;
  options.message_faults = false;
  const ScenarioGenerator gen(options);
  int with_gray = 0;
  for (uint64_t i = 0; i < 40; ++i) {
    const hns::ExperimentSpec spec = gen.Scenario(i);
    if (spec.fault_plan.gray_faults.empty()) continue;
    ++with_gray;
    // A gray scenario always brings the detector (so the reaction path is
    // exercised, not just the injection) and the client timeout (so a
    // stalled datacenter cannot wedge its closed-loop clients).
    EXPECT_TRUE(spec.health_enabled) << "scenario " << i;
    EXPECT_GT(spec.client_timeout, 0) << "scenario " << i;
    EXPECT_TRUE(spec.Validate().ok()) << "scenario " << i;
  }
  EXPECT_GT(with_gray, 0);
}

// --- oracle fixtures --------------------------------------------------------

constexpr int kDcs = 3;

hns::ExperimentSpec BaseSpec() {
  hns::ExperimentSpec spec;
  spec.WithProtocol(hns::Protocol::kHelios1)
      .WithTopology("example3")
      .WithClients(2)
      .WithWarmup(Millis(200))
      .WithMeasure(Millis(500))  // Below the liveness oracle's 1s floor.
      .WithDrain(Millis(500));
  return spec;
}

/// A result whose capture and metrics pass every oracle for BaseSpec();
/// tests then break one artifact at a time.
hns::ExperimentResult BaseResult() {
  hns::ExperimentResult r;
  r.serializability = Status::Ok();
  r.capture = std::make_shared<hns::RunCapture>();
  hns::RunCapture& cap = *r.capture;
  cap.wals.resize(kDcs);
  cap.wal_present.assign(kDcs, true);
  cap.stores.resize(kDcs);
  cap.dc_down.assign(kDcs, false);
  r.per_dc.resize(kDcs);
  r.metrics.counters.push_back({"client.committed", 0});
  r.metrics.counters.push_back({"sim.events_processed", 1});
  return r;
}

TxnBodyPtr Body(TxnId id, std::vector<ReadEntry> reads,
                std::vector<WriteEntry> writes) {
  return MakeTxnBody(id, std::move(reads), std::move(writes));
}

rdict::LogRecord Finished(TxnBodyPtr body, Timestamp version_ts) {
  rdict::LogRecord r;
  r.type = rdict::RecordType::kFinished;
  r.committed = true;
  r.ts = version_ts;
  r.version_ts = version_ts;
  r.origin = body->id.origin;
  r.body = std::move(body);
  return r;
}

/// Commits `body` everywhere: history, every WAL, every live store.
void CommitEverywhere(hns::RunCapture* cap, TxnBodyPtr body,
                      Timestamp version_ts) {
  cap->history.push_back({body->id, body->id.origin, version_ts, body});
  for (int dc = 0; dc < kDcs; ++dc) {
    cap->wals[static_cast<size_t>(dc)].records.push_back(
        Finished(body, version_ts));
    for (const WriteEntry& w : body->write_set) {
      cap->stores[static_cast<size_t>(dc)][w.key] =
          VersionedValue{w.value, version_ts, body->id};
    }
  }
}

std::string FailureOf(const OracleReport& report) {
  return report.FirstFailureName();
}

// --- oracles: crisp failures on missing inputs ------------------------------

TEST(Oracles, MissingArtifactsFailEveryOracle) {
  const hns::ExperimentResult empty;  // No capture, no metrics, no check.
  const OracleReport report = RunOracles(BaseSpec(), empty);
  ASSERT_EQ(report.verdicts.size(), 7u);
  for (const OracleVerdict& v : report.verdicts) {
    EXPECT_FALSE(v.status.ok()) << v.name << " passed vacuously";
  }
}

TEST(Oracles, CleanHandBuiltRunPasses) {
  auto spec = BaseSpec();
  auto result = BaseResult();
  CommitEverywhere(result.capture.get(),
                   Body({0, 1}, {}, {{"k", "v"}}), 100);
  const OracleReport report = RunOracles(spec, result);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_EQ(report.Summary().find("FAILED"), std::string::npos);
}

// --- serializability --------------------------------------------------------

TEST(Oracles, SerializabilityUsesTheRunsOwnCheck) {
  auto result = BaseResult();
  result.serializability = Status::FailedPrecondition("cycle: 0:1 <- 0:2");
  OracleOptions only;
  only.sessions = only.exactly_once = only.wal_replay = only.metrics = false;
  const OracleReport report = RunOracles(BaseSpec(), result, only);
  EXPECT_EQ(FailureOf(report), "serializability");
}

// --- sessions ---------------------------------------------------------------

TEST(Oracles, SessionsCatchReadYourWritesViolation) {
  auto result = BaseResult();
  const TxnId writer{0, 1};
  CommitEverywhere(result.capture.get(), Body(writer, {}, {{"k", "new"}}),
                   100);
  workload::SessionLog session;
  session.client_id = 7;
  workload::SessionEvent commit;
  commit.kind = workload::SessionEvent::Kind::kCommit;
  commit.txn = writer;
  commit.committed = true;
  session.events.push_back(commit);
  workload::SessionEvent read;  // Sees a version older than the own write.
  read.kind = workload::SessionEvent::Kind::kRead;
  read.key = "k";
  read.version_ts = 50;
  read.version_writer = TxnId{1, 9};
  session.events.push_back(read);
  result.capture->sessions.push_back(session);

  const OracleReport report = RunOracles(BaseSpec(), result);
  EXPECT_EQ(FailureOf(report), "sessions");
  EXPECT_NE(report.status().ToString().find("read-your-writes"),
            std::string::npos);

  // The identical log is fine for Replicated Commit (majority reads do
  // not promise session order) ...
  auto rc_spec = BaseSpec().WithProtocol(hns::Protocol::kReplicatedCommit);
  EXPECT_TRUE(RunOracles(rc_spec, result).ok());

  // ... and for read-only snapshot reads, which may serve old versions.
  result.capture->sessions[0].events[1].read_only = true;
  EXPECT_TRUE(RunOracles(BaseSpec(), result).ok());
}

TEST(Oracles, SessionsCatchMonotonicReadsViolation) {
  auto result = BaseResult();
  CommitEverywhere(result.capture.get(), Body({0, 1}, {}, {{"k", "v"}}), 100);
  workload::SessionLog session;
  workload::SessionEvent newer;
  newer.kind = workload::SessionEvent::Kind::kRead;
  newer.key = "k";
  newer.version_ts = 100;
  newer.version_writer = TxnId{0, 1};
  workload::SessionEvent older = newer;
  older.version_ts = 40;
  older.version_writer = TxnId{2, 3};
  session.events = {newer, older};
  result.capture->sessions.push_back(session);

  const OracleReport report = RunOracles(BaseSpec(), result);
  EXPECT_EQ(FailureOf(report), "sessions");
  EXPECT_NE(report.status().ToString().find("monotonic-reads"),
            std::string::npos);

  // NotFound after an observed version is also a regression.
  workload::SessionEvent gone = older;
  gone.not_found = true;
  result.capture->sessions[0].events = {newer, gone};
  EXPECT_EQ(FailureOf(RunOracles(BaseSpec(), result)), "sessions");
}

// --- exactly_once -----------------------------------------------------------

TEST(Oracles, ExactlyOnceCatchesDuplicateJournalRecord) {
  auto result = BaseResult();
  auto body = Body({0, 1}, {}, {{"k", "v"}});
  CommitEverywhere(result.capture.get(), body, 100);
  // The same decision journaled twice at datacenter 2.
  result.capture->wals[2].records.push_back(Finished(body, 100));
  const OracleReport report = RunOracles(BaseSpec(), result);
  EXPECT_EQ(FailureOf(report), "exactly_once");
  EXPECT_NE(report.status().ToString().find("two committed records"),
            std::string::npos);
}

TEST(Oracles, ExactlyOnceCatchesVersionDisagreement) {
  auto result = BaseResult();
  auto body = Body({0, 1}, {}, {{"k", "v"}});
  CommitEverywhere(result.capture.get(), body, 100);
  // Datacenter 2 installed the writes under a different version.
  result.capture->wals[2].records.back().version_ts = 101;
  const OracleReport report = RunOracles(BaseSpec(), result);
  EXPECT_EQ(FailureOf(report), "exactly_once");
  EXPECT_NE(report.status().ToString().find("divergence"), std::string::npos);
}

TEST(Oracles, ExactlyOnceCatchesLostAndUnjournaledCommits) {
  auto result = BaseResult();
  workload::SessionLog session;
  workload::SessionEvent commit;
  commit.kind = workload::SessionEvent::Kind::kCommit;
  commit.txn = TxnId{0, 5};
  commit.committed = true;
  session.events.push_back(commit);
  result.capture->sessions.push_back(session);

  // Client saw a commit the history never recorded.
  OracleReport report = RunOracles(BaseSpec(), result);
  EXPECT_EQ(FailureOf(report), "exactly_once");
  EXPECT_NE(report.status().ToString().find("lost commit"),
            std::string::npos);

  // In the history but missing from the origin's durable journal.
  auto body = Body({0, 5}, {}, {{"k", "v"}});
  result.capture->history.push_back({body->id, 0, 100, body});
  report = RunOracles(BaseSpec(), result);
  EXPECT_EQ(FailureOf(report), "exactly_once");
  EXPECT_NE(report.status().ToString().find("durability"), std::string::npos);
}

// --- wal_replay -------------------------------------------------------------

TEST(Oracles, WalReplayCatchesUnjournaledStoreVersion) {
  auto result = BaseResult();
  // A committed-looking version (non-negative origin) with no record.
  result.capture->stores[1]["k"] = VersionedValue{"v", 100, TxnId{0, 1}};
  const OracleReport report = RunOracles(BaseSpec(), result);
  EXPECT_EQ(FailureOf(report), "wal_replay");

  // Preloaded keys (loader origin -2, ts 0) are expected to bypass the log.
  result.capture->stores[1]["k"] = VersionedValue{"v", 0, TxnId{-2, 1}};
  EXPECT_TRUE(RunOracles(BaseSpec(), result).ok());
}

TEST(Oracles, WalReplayCatchesDivergentStore) {
  auto result = BaseResult();
  auto body = Body({0, 1}, {}, {{"k", "v"}});
  CommitEverywhere(result.capture.get(), body, 100);
  // Datacenter 1's store lost the write.
  result.capture->stores[1].erase("k");
  EXPECT_EQ(FailureOf(RunOracles(BaseSpec(), result)), "wal_replay");

  // ... unless that datacenter is still down (amnesia before recovery).
  result.capture->dc_down[1] = true;
  EXPECT_TRUE(RunOracles(BaseSpec(), result).ok());
}

// --- metrics ----------------------------------------------------------------

TEST(Oracles, MetricsRequireRecoveryCounterExactlyWhenScheduled) {
  auto spec = BaseSpec();
  spec.fault_plan.AddCrash(Millis(300), 1).AddRecover(Millis(400), 1);
  spec.WithClientTimeout(Millis(100), 5);
  auto result = BaseResult();
  result.metrics.counters.push_back({"client.timeouts", 0});

  // Crash scheduled but no recovery recorded.
  OracleReport report = RunOracles(spec, result);
  EXPECT_EQ(FailureOf(report), "metrics");

  result.metrics.counters.push_back({"recovery.recoveries", 1});
  EXPECT_TRUE(RunOracles(spec, result).ok())
      << RunOracles(spec, result).Summary();

  // Conversely: a recovery reported with nothing scheduled.
  EXPECT_EQ(FailureOf(RunOracles(BaseSpec(), result)), "metrics");
}

TEST(Oracles, MetricsCatchLivenessViolation) {
  auto spec = BaseSpec().WithMeasure(Seconds(2));  // Above the 1s floor.
  auto result = BaseResult();  // client.committed == 0, no faults.
  const OracleReport report = RunOracles(spec, result);
  EXPECT_EQ(FailureOf(report), "metrics");
  EXPECT_NE(report.status().ToString().find("liveness"), std::string::npos);
}

TEST(Oracles, MetricsCatchFaultCounterGatingMismatch) {
  auto spec = BaseSpec();
  auto result = BaseResult();
  result.metrics.counters.push_back({"net.fault_drops", 3});
  EXPECT_EQ(FailureOf(RunOracles(spec, result)), "metrics");
}

// --- shrinker ---------------------------------------------------------------

TEST(Shrinker, PassingSpecIsReturnedUntouched) {
  const auto spec = BaseSpec();
  int evals = 0;
  const ShrinkResult out =
      Shrink(spec, {}, [&](const hns::ExperimentSpec&) {
        ++evals;
        return std::string();
      });
  EXPECT_EQ(out.oracle, "");
  EXPECT_EQ(out.runs, 1);
  EXPECT_EQ(evals, 1);
  EXPECT_TRUE(out.spec == spec);
}

TEST(Shrinker, MinimizesToTheLoadBearingFaultEvent) {
  auto spec = BaseSpec();
  spec.WithClients(16)
      .WithMeasure(Seconds(8))
      .WithZipfTheta(0.5)
      .WithReadOnlyFraction(0.2)
      .WithClockOffsets({Millis(5), Millis(-5), 0});
  sim::LinkFault lossy;
  lossy.loss = 0.05;
  spec.fault_plan.AddLinkFault(lossy)
      .AddCrash(Millis(1000), 1)
      .AddRecover(Millis(2000), 1)
      .AddPartition(Millis(1500), 0, 2)
      .AddHeal(Millis(2500), 0, 2);
  spec.WithClientTimeout(Millis(2000), 10);
  ASSERT_TRUE(spec.Validate().ok()) << spec.Validate().ToString();

  // The "bug" fires exactly when datacenter 1 crashes.
  int evals = 0;
  const auto evaluate = [&](const hns::ExperimentSpec& s) {
    ++evals;
    for (const sim::NodeEvent& e : s.fault_plan.node_events) {
      if (!e.up && e.node == 1) return std::string("serializability");
    }
    return std::string();
  };

  ShrinkOptions options;
  options.max_runs = 120;
  const ShrinkResult out = Shrink(spec, options, evaluate);
  EXPECT_EQ(out.oracle, "serializability");
  EXPECT_LE(out.runs, options.max_runs);
  EXPECT_EQ(evals, out.runs);
  EXPECT_EQ(out.fault_events, 1);
  ASSERT_EQ(out.spec.fault_plan.node_events.size(), 1u);
  EXPECT_FALSE(out.spec.fault_plan.node_events[0].up);
  EXPECT_EQ(out.spec.fault_plan.node_events[0].node, 1);
  EXPECT_TRUE(out.spec.fault_plan.link_faults.empty());
  EXPECT_TRUE(out.spec.fault_plan.partition_events.empty());
  EXPECT_EQ(out.spec.clients, 2);
  EXPECT_EQ(out.spec.measure, Millis(1500));
  EXPECT_EQ(out.spec.zipf_theta, 0.0);
  EXPECT_EQ(out.spec.read_only_fraction, 0.0);
  EXPECT_TRUE(out.spec.clock_offsets.empty());
  EXPECT_TRUE(out.spec.Validate().ok());
  // The minimized spec still reproduces via the same evaluator.
  EXPECT_EQ(evaluate(out.spec), "serializability");
}

TEST(Shrinker, CountsFaultEvents) {
  auto spec = BaseSpec();
  EXPECT_EQ(CountFaultEvents(spec), 0);
  spec.fault_plan.AddCrash(Millis(1), 0).AddPartition(Millis(2), 0, 1);
  sim::LinkFault f;
  f.loss = 0.1;
  spec.fault_plan.AddLinkFault(f);
  EXPECT_EQ(CountFaultEvents(spec), 3);
}

}  // namespace
}  // namespace helios::check
