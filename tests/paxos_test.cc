// Tests for the Paxos substrate: acceptor safety rules, leader-lease
// replication over a simulated network, value recovery through phase 1,
// and the single-chosen-value safety property under dueling proposers.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "paxos/paxos.h"
#include "sim/network.h"
#include "sim/scheduler.h"

namespace helios::paxos {
namespace {

TEST(AcceptorTest, PromisesHigherProposalsOnly) {
  Acceptor a;
  auto r1 = a.OnPrepare({0, {5, 0}});
  EXPECT_TRUE(r1.promised);
  auto r2 = a.OnPrepare({0, {3, 0}});  // Lower round.
  EXPECT_FALSE(r2.promised);
  auto r3 = a.OnPrepare({0, {5, 1}});  // Same round, higher proposer.
  EXPECT_TRUE(r3.promised);
}

TEST(AcceptorTest, AcceptRespectsPromise) {
  Acceptor a;
  a.OnPrepare({0, {10, 0}});
  EXPECT_FALSE(a.OnAccept({0, {5, 0}, "old"}).accepted);
  EXPECT_TRUE(a.OnAccept({0, {10, 0}, "new"}).accepted);
  EXPECT_EQ(a.AcceptedValue(0).value(), "new");
}

TEST(AcceptorTest, PromiseReportsPriorAccept) {
  Acceptor a;
  a.OnAccept({0, {1, 0}, "v1"});
  auto r = a.OnPrepare({0, {2, 1}});
  ASSERT_TRUE(r.promised);
  ASSERT_TRUE(r.has_accepted);
  EXPECT_EQ(r.accepted_value, "v1");
  EXPECT_EQ(r.accepted_id, (ProposalId{1, 0}));
}

TEST(AcceptorTest, SlotsAreIndependent) {
  Acceptor a;
  a.OnAccept({0, {1, 0}, "slot0"});
  EXPECT_FALSE(a.HasAccepted(1));
  a.OnAccept({1, {1, 0}, "slot1"});
  EXPECT_EQ(a.AcceptedValue(0).value(), "slot0");
  EXPECT_EQ(a.AcceptedValue(1).value(), "slot1");
}

// A little harness wiring one Replicator plus n acceptors over the WAN.
struct PaxosRig {
  sim::Scheduler scheduler;
  std::unique_ptr<sim::Network> network;
  std::vector<Acceptor> acceptors;
  std::unique_ptr<Replicator> replicator;

  PaxosRig(int n, DcId leader, bool lease, Duration rtt) {
    network = std::make_unique<sim::Network>(&scheduler, n, 7);
    for (int a = 0; a < n; ++a) {
      for (int b = a + 1; b < n; ++b) network->SetRtt(a, b, rtt, 0);
    }
    acceptors.resize(n);
    replicator = std::make_unique<Replicator>(
        leader, n, lease, &acceptors[leader],
        [this, leader](DcId peer, const PrepareRequest& req) {
          network->Send(leader, peer, [this, peer, leader, req] {
            const PrepareReply reply = acceptors[peer].OnPrepare(req);
            network->Send(peer, leader, [this, peer, reply] {
              replicator->OnPrepareReply(peer, reply);
            });
          });
        },
        [this, leader](DcId peer, const AcceptRequest& req) {
          network->Send(leader, peer, [this, peer, leader, req] {
            const AcceptReply reply = acceptors[peer].OnAccept(req);
            network->Send(peer, leader, [this, peer, reply] {
              replicator->OnAcceptReply(peer, reply);
            });
          });
        });
  }
};

TEST(ReplicatorTest, LeaseReplicationTakesOneRoundTrip) {
  PaxosRig rig(5, 0, /*lease=*/true, Millis(80));
  sim::SimTime chosen_at = -1;
  std::string chosen_value;
  rig.scheduler.At(0, [&] {
    rig.replicator->Replicate("txn-1", [&](SlotId, const PaxosValue& v) {
      chosen_at = rig.scheduler.Now();
      chosen_value = v;
    });
  });
  rig.scheduler.Run();
  EXPECT_EQ(chosen_value, "txn-1");
  EXPECT_EQ(chosen_at, Millis(80));  // Accept out + accepted back.
}

TEST(ReplicatorTest, WithoutLeaseTwoRoundTrips) {
  PaxosRig rig(3, 0, /*lease=*/false, Millis(60));
  sim::SimTime chosen_at = -1;
  rig.scheduler.At(0, [&] {
    rig.replicator->Replicate("v", [&](SlotId, const PaxosValue&) {
      chosen_at = rig.scheduler.Now();
    });
  });
  rig.scheduler.Run();
  EXPECT_EQ(chosen_at, Millis(120));  // Prepare RTT + Accept RTT.
}

TEST(ReplicatorTest, MajoritySufficesUnderCrash) {
  PaxosRig rig(5, 0, /*lease=*/true, Millis(50));
  rig.network->CrashNode(3);
  rig.network->CrashNode(4);
  bool chosen = false;
  rig.scheduler.At(0, [&] {
    rig.replicator->Replicate("v", [&](SlotId, const PaxosValue&) {
      chosen = true;
    });
  });
  rig.scheduler.Run();
  EXPECT_TRUE(chosen);  // Leader + 2 peers = majority of 5.
}

TEST(ReplicatorTest, BlocksWithoutMajority) {
  PaxosRig rig(5, 0, /*lease=*/true, Millis(50));
  rig.network->CrashNode(2);
  rig.network->CrashNode(3);
  rig.network->CrashNode(4);
  bool chosen = false;
  rig.scheduler.At(0, [&] {
    rig.replicator->Replicate("v", [&](SlotId, const PaxosValue&) {
      chosen = true;
    });
  });
  rig.scheduler.Run();
  EXPECT_FALSE(chosen);
}

TEST(ReplicatorTest, SlotsAssignedSequentially) {
  PaxosRig rig(3, 0, /*lease=*/true, Millis(10));
  std::vector<SlotId> chosen;
  rig.scheduler.At(0, [&] {
    for (int i = 0; i < 5; ++i) {
      rig.replicator->Replicate("v" + std::to_string(i),
                                [&](SlotId s, const PaxosValue&) {
                                  chosen.push_back(s);
                                });
    }
  });
  rig.scheduler.Run();
  ASSERT_EQ(chosen.size(), 5u);
  for (SlotId s = 0; s < 5; ++s) EXPECT_EQ(chosen[s], s);
}

// Safety: if a value was already accepted by a majority under an earlier
// proposal, a later proposer running phase 1 must adopt it, not its own.
TEST(ReplicatorTest, Phase1AdoptsPreviouslyAcceptedValue) {
  PaxosRig rig(3, 0, /*lease=*/false, Millis(10));
  // Seed slot 0: acceptors 1 and 2 already accepted "winner" under (1, 2).
  rig.acceptors[1].OnAccept({0, {1, 2}, "winner"});
  rig.acceptors[2].OnAccept({0, {1, 2}, "winner"});
  std::string chosen_value;
  rig.scheduler.At(0, [&] {
    rig.replicator->Replicate("loser", [&](SlotId, const PaxosValue& v) {
      chosen_value = v;
    });
  });
  rig.scheduler.Run();
  EXPECT_EQ(chosen_value, "winner");
}

// Safety under dueling proposers: two replicators contending for the same
// slot may each believe a value chosen, but it must be the SAME value.
TEST(ReplicatorTest, DuelingProposersAgreeOnOneValue) {
  sim::Scheduler scheduler;
  sim::Network network(&scheduler, 3, 11);
  for (int a = 0; a < 3; ++a) {
    for (int b = a + 1; b < 3; ++b) network.SetRtt(a, b, Millis(20), Millis(6));
  }
  std::vector<Acceptor> acceptors(3);
  auto wire = [&](DcId self, Replicator*& slot) {
    return std::make_unique<Replicator>(
        self, 3, /*lease=*/false, &acceptors[self],
        [&, self](DcId peer, const PrepareRequest& req) {
          network.Send(self, peer, [&, peer, req] {
            const PrepareReply reply = acceptors[peer].OnPrepare(req);
            network.Send(peer, self, [&, peer, reply] {
              slot->OnPrepareReply(peer, reply);
            });
          });
        },
        [&, self](DcId peer, const AcceptRequest& req) {
          network.Send(self, peer, [&, peer, req] {
            const AcceptReply reply = acceptors[peer].OnAccept(req);
            network.Send(peer, self, [&, peer, reply] {
              slot->OnAcceptReply(peer, reply);
            });
          });
        });
  };
  Replicator* r0 = nullptr;
  Replicator* r1 = nullptr;
  auto rep0 = wire(0, r0);
  auto rep1 = wire(1, r1);
  r0 = rep0.get();
  r1 = rep1.get();

  std::vector<std::string> chosen;
  scheduler.At(0, [&] {
    r0->Replicate("from-0",
                  [&](SlotId, const PaxosValue& v) { chosen.push_back(v); });
  });
  scheduler.At(Millis(3), [&] {
    r1->Replicate("from-1",
                  [&](SlotId, const PaxosValue& v) { chosen.push_back(v); });
  });
  scheduler.RunUntil(Seconds(30));
  // Both proposers used slot 0 of their own sequence — which is the same
  // shared slot 0 — so whatever each reports chosen must agree.
  ASSERT_GE(chosen.size(), 1u);
  for (const auto& v : chosen) EXPECT_EQ(v, chosen[0]);
}

}  // namespace
}  // namespace helios::paxos
