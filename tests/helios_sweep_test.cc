// Parameterized correctness sweep: every protocol variant is run under a
// grid of seeds and adverse conditions (clock skew, jitter, contention),
// and each run's committed history must be conflict-serializable with
// convergent replicas. This is the repository's broadest safety net.

#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "core/history.h"
#include "harness/experiment.h"

namespace helios::harness {
namespace {

struct SweepCase {
  Protocol protocol;
  uint64_t seed;
  bool skewed;
  double theta;
};

class SerializabilitySweep
    : public ::testing::TestWithParam<std::tuple<Protocol, uint64_t, bool>> {};

TEST_P(SerializabilitySweep, HistoryIsSerializable) {
  const auto [protocol, seed, skewed] = GetParam();
  ExperimentConfig cfg;
  cfg.protocol = protocol;
  cfg.topology = Table2Topology();
  cfg.total_clients = 20;
  cfg.warmup = Seconds(1);
  cfg.measure = Seconds(4);
  cfg.seed = seed;
  cfg.workload.num_keys = 300;    // High contention on purpose.
  cfg.workload.zipf_theta = 0.5;
  cfg.check_serializability = true;
  if (skewed) {
    // Skew larger than several link RTTs; lock-based baselines use the
    // clocks only for wound-wait priorities and version stamps, Helios for
    // its knowledge timestamps — correctness must survive either way.
    cfg.clock_offsets = {Millis(120), -Millis(90), Millis(40), 0,
                         -Millis(25)};
  }
  const ExperimentResult r = RunExperiment(cfg);
  uint64_t committed = 0;
  uint64_t aborted = 0;
  for (const auto& dc : r.per_dc) {
    committed += dc.committed;
    aborted += dc.aborted;
  }
  EXPECT_GT(committed, 30u) << "no progress";
  EXPECT_GT(aborted, 0u) << "sweep is supposed to generate conflicts";
  ASSERT_TRUE(r.serializability.has_value());
  EXPECT_TRUE(r.serializability->ok()) << r.serializability->ToString();
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SerializabilitySweep,
    ::testing::Combine(
        ::testing::Values(Protocol::kHelios0, Protocol::kHelios1,
                          Protocol::kHelios2, Protocol::kHeliosB,
                          Protocol::kMessageFutures,
                          Protocol::kReplicatedCommit,
                          Protocol::kTwoPcPaxos),
        ::testing::Values(7u, 1234u),
        ::testing::Bool()),
    [](const ::testing::TestParamInfo<std::tuple<Protocol, uint64_t, bool>>&
           info) {
      std::string name = ProtocolName(std::get<0>(info.param));
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      name += "_seed" + std::to_string(std::get<1>(info.param));
      name += std::get<2>(info.param) ? "_skewed" : "_synced";
      return name;
    });

}  // namespace
}  // namespace helios::harness
