// Tests for src/shard: ShardMap routing and JSON strictness, the
// cross-shard parallel-commit happy path, and the coordinator-crash
// recovery grid (crash during STAGED vs an uncrashed control) judged by
// the full oracle suite — including the shard_atomicity and
// staged_resolution oracles this subsystem ships with.

#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include <memory>

#include "check/oracles.h"
#include "check/runner.h"
#include "core/helios_cluster.h"
#include "harness/experiment.h"
#include "harness/experiment_spec.h"
#include "shard/shard_map.h"
#include "shard/sharded_cluster.h"
#include "sim/network.h"
#include "sim/scheduler.h"

namespace helios::shard {
namespace {

namespace hns = helios::harness;

Key WorkloadKey(uint64_t i) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "user%08llu",
                static_cast<unsigned long long>(i));
  return buf;
}

// --- ShardMap ---------------------------------------------------------------

TEST(ShardMap, HashRoutingIsDeterministicAndCoversAllShards) {
  const ShardMap a = ShardMap::Hash(4);
  const ShardMap b = ShardMap::Hash(4);
  ASSERT_TRUE(a.Validate().ok());
  std::set<int> hit;
  for (uint64_t i = 0; i < 1000; ++i) {
    const Key key = WorkloadKey(i);
    const int s = a.ShardOf(key);
    ASSERT_GE(s, 0);
    ASSERT_LT(s, 4);
    // Pure function of the key: a second instance agrees, forever.
    EXPECT_EQ(s, b.ShardOf(key));
    hit.insert(s);
  }
  EXPECT_EQ(hit.size(), 4u) << "1000 keys left a hash shard empty";

  // The single-shard map routes everything to 0.
  const ShardMap one = ShardMap::Hash(1);
  ASSERT_TRUE(one.Validate().ok());
  EXPECT_EQ(one.ShardOf("anything"), 0);
}

TEST(ShardMap, RangeRoutingRespectsBoundaries) {
  const ShardMap map = ShardMap::Range({"b", "d"});
  ASSERT_TRUE(map.Validate().ok());
  EXPECT_EQ(map.num_shards(), 3);
  EXPECT_EQ(map.ShardOf("a"), 0);
  EXPECT_EQ(map.ShardOf("b"), 1);  // Boundary key belongs to the right side.
  EXPECT_EQ(map.ShardOf("c"), 1);
  EXPECT_EQ(map.ShardOf("d"), 2);
  EXPECT_EQ(map.ShardOf("z"), 2);
}

TEST(ShardMap, RangeOverWorkloadKeysPartitionsTheKeyspace) {
  constexpr int kShards = 4;
  constexpr uint64_t kKeys = 1000;
  const ShardMap map = ShardMap::RangeOverWorkloadKeys(kShards, kKeys);
  ASSERT_TRUE(map.Validate().ok()) << map.Validate().ToString();
  std::vector<uint64_t> owned(kShards, 0);
  int prev = 0;
  for (uint64_t i = 0; i < kKeys; ++i) {
    const int s = map.ShardOf(WorkloadKey(i));
    ASSERT_GE(s, 0);
    ASSERT_LT(s, kShards);
    // Contiguity: keys in generator order never move to a lower shard.
    ASSERT_GE(s, prev) << "key " << i << " broke range contiguity";
    prev = s;
    ++owned[static_cast<size_t>(s)];
  }
  for (int s = 0; s < kShards; ++s) {
    EXPECT_EQ(owned[static_cast<size_t>(s)], kKeys / kShards)
        << "shard " << s << " owns an uneven slice";
  }
}

TEST(ShardMap, JsonRoundTripIsStrict) {
  for (const ShardMap& map :
       {ShardMap::Hash(4), ShardMap::Range({"b", "d"}),
        ShardMap::RangeOverWorkloadKeys(3, 300)}) {
    const std::string json = map.ToJson();
    const auto parsed = ShardMap::FromJson(json);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_TRUE(parsed.value() == map) << json;
    EXPECT_EQ(parsed.value().ToJson(), json);
  }
  // Unknown keys are an error, not a shrug.
  EXPECT_FALSE(ShardMap::FromJson(R"({"kind":"hash","shards":2,"x":1})").ok());
  // A hash map must not carry boundaries.
  EXPECT_FALSE(
      ShardMap::FromJson(R"({"boundaries":["m"],"kind":"hash","shards":2})")
          .ok());
  // A range map needs exactly shards - 1 split points.
  EXPECT_FALSE(
      ShardMap::FromJson(R"({"boundaries":["m"],"kind":"range","shards":3})")
          .ok());
}

TEST(ShardMap, RangeOverWorkloadKeysClampsShardsToKeys) {
  // More shards than keys would otherwise emit duplicate boundary strings
  // (an overlapping map); the generator clamps so every shard owns >= 1
  // key and the result always validates.
  const ShardMap clamped = ShardMap::RangeOverWorkloadKeys(8, 3);
  ASSERT_TRUE(clamped.Validate().ok()) << clamped.Validate().ToString();
  EXPECT_EQ(clamped.num_shards(), 3);
  for (uint64_t i = 0; i < 3; ++i) {
    EXPECT_EQ(clamped.ShardOf(WorkloadKey(i)), static_cast<int>(i));
  }
  // Degenerate corners collapse to the single-shard map.
  EXPECT_EQ(ShardMap::RangeOverWorkloadKeys(4, 0).num_shards(), 1);
  EXPECT_EQ(ShardMap::RangeOverWorkloadKeys(0, 100).num_shards(), 1);
  // Exactly one key per shard is the tightest valid split.
  const ShardMap tight = ShardMap::RangeOverWorkloadKeys(5, 5);
  ASSERT_TRUE(tight.Validate().ok()) << tight.Validate().ToString();
  EXPECT_EQ(tight.num_shards(), 5);
}

TEST(ShardMap, RejectsEmptyAndOverlappingPartitions) {
  {
    const Status s = ShardMap::Range({"", "b"}).Validate();
    ASSERT_FALSE(s.ok());
    EXPECT_NE(s.ToString().find("empty"), std::string::npos) << s.ToString();
  }
  {
    // Equal neighbours: the middle shard would own [b, b) = nothing.
    const Status s = ShardMap::Range({"b", "b"}).Validate();
    ASSERT_FALSE(s.ok());
    EXPECT_NE(s.ToString().find("overlapping"), std::string::npos)
        << s.ToString();
  }
  {
    const Status s = ShardMap::Range({"d", "b"}).Validate();
    ASSERT_FALSE(s.ok());
  }
}

// --- ExperimentSpec plumbing ------------------------------------------------

TEST(ShardSpec, ShardFieldsRoundTripAndDefaultsAreOmitted) {
  hns::ExperimentSpec plain;
  EXPECT_EQ(plain.ToJson().find("\"shards\""), std::string::npos)
      << "default spec JSON must stay byte-identical to pre-sharding specs";
  EXPECT_EQ(plain.ToJson().find("\"shard_by\""), std::string::npos);

  hns::ExperimentSpec spec;
  spec.WithProtocol(hns::Protocol::kHelios1).WithShards(2).WithShardBy(
      "range");
  ASSERT_TRUE(spec.Validate().ok()) << spec.Validate().ToString();
  const auto parsed = hns::ExperimentSpec::FromJson(spec.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed.value() == spec);

  // Baselines cannot shard: the cross-shard wait-base coupling leans on
  // the Helios commit rules.
  hns::ExperimentSpec bad = spec;
  bad.WithProtocol(hns::Protocol::kReplicatedCommit);
  EXPECT_FALSE(bad.Validate().ok());
  bad.WithProtocol(hns::Protocol::kMessageFutures);
  EXPECT_FALSE(bad.Validate().ok());
}

// --- Cross-shard commit, end to end -----------------------------------------

/// A small contended multi-shard deployment: most transactions touch both
/// shards, so the parallel-commit path carries real traffic.
hns::ExperimentSpec CrossShardBase(hns::Protocol protocol) {
  hns::ExperimentSpec spec;
  spec.WithProtocol(protocol)
      .WithTopology("example3")
      .WithClients(8)
      .WithWarmup(Millis(500))
      .WithMeasure(Millis(2500))
      .WithDrain(Millis(1500))
      .WithNumKeys(2000)
      .WithSeed(7)
      .WithShards(2)
      .WithSerializabilityCheck();
  return spec;
}

TEST(CrossShardCommit, HappyPathCommitsAndPassesEveryOracle) {
  const hns::ExperimentSpec spec = CrossShardBase(hns::Protocol::kHelios1);
  ASSERT_TRUE(spec.Validate().ok()) << spec.Validate().ToString();
  auto cfg = spec.ToConfig();
  ASSERT_TRUE(cfg.ok()) << cfg.status().ToString();
  hns::ExperimentConfig config = std::move(cfg).value();
  check::ConfigureForChecking(&config);
  const hns::ExperimentResult result = hns::RunExperiment(config);

  const check::OracleReport report = check::RunOracles(spec, result);
  EXPECT_TRUE(report.ok()) << report.Summary();

  // The run must exercise BOTH commit paths: single-shard fast path and
  // staged cross-shard commits.
  const auto* committed = result.metrics.FindCounter("xshard.committed");
  ASSERT_NE(committed, nullptr);
  EXPECT_GT(committed->value, 0u);
  const auto* single = result.metrics.FindCounter("xshard.single_shard");
  ASSERT_NE(single, nullptr);
  EXPECT_GT(single->value, 0u);
  const auto* staged = result.metrics.FindCounter("xshard.staged");
  ASSERT_NE(staged, nullptr);
  EXPECT_GE(staged->value, committed->value);

  // Sharded captures route durability through per-shard journals.
  ASSERT_NE(result.capture, nullptr);
  EXPECT_EQ(result.capture->shards, 2);
  EXPECT_EQ(result.capture->shard_wals.size(), 3u * 2u);
}

TEST(CrossShardCommit, RangeShardingPassesEveryOracle) {
  hns::ExperimentSpec spec = CrossShardBase(hns::Protocol::kHelios1);
  spec.WithShardBy("range").WithSeed(11);
  const check::ScenarioVerdict verdict = check::RunScenario(spec);
  EXPECT_TRUE(verdict.ok()) << verdict.report.Summary();
}

// --- Liveness under extreme contention ---------------------------------------

/// Regression for the fuzzer-found cross-shard livelock: a tiny keyspace
/// over many range shards makes nearly every transaction cross-shard and
/// mutually conflicting, and before wait-die + the waiter fence + client
/// abort backoff every interleaving aborted symmetrically — zero commits
/// over the whole window. The protocol must keep committing (and stay
/// serializable) even at this adversarial point.
TEST(CrossShardCommit, ContendedTinyKeyspaceStillCommits) {
  hns::ExperimentSpec spec;
  spec.WithProtocol(hns::Protocol::kHelios2)
      .WithUniformTopology(5, 33.5)
      .WithClients(8)
      .WithWarmup(Millis(500))
      .WithMeasure(Millis(2500))
      .WithDrain(Millis(1500))
      .WithNumKeys(31)
      .WithZipfTheta(0.0)
      .WithSeed(7)
      .WithShards(4)
      .WithShardBy("range")
      .WithSerializabilityCheck();
  ASSERT_TRUE(spec.Validate().ok()) << spec.Validate().ToString();
  auto cfg = spec.ToConfig();
  ASSERT_TRUE(cfg.ok()) << cfg.status().ToString();
  hns::ExperimentConfig config = std::move(cfg).value();
  check::ConfigureForChecking(&config);
  const hns::ExperimentResult result = hns::RunExperiment(config);

  const check::OracleReport report = check::RunOracles(spec, result);
  EXPECT_TRUE(report.ok()) << report.Summary();

  const auto* committed = result.metrics.FindCounter("protocol.commits");
  ASSERT_NE(committed, nullptr);
  EXPECT_GT(committed->value, 0u) << "cross-shard livelock: nothing committed";
  // The wait arm must actually engage at this contention level.
  const auto* waited = result.metrics.FindCounter("xshard.slices_waited");
  ASSERT_NE(waited, nullptr);
  EXPECT_GT(waited->value, 0u);
}

// --- Wait-die parked slices vs the coordinator's finalize --------------------

/// A single-datacenter Helios rig driven through the staged-slice node
/// API directly, so the park/finalize interleavings are deterministic.
/// txn_seq_start/stride mimic a shard plane: plain transactions mint even
/// sequence numbers, leaving odd ones for injected "coordinator" ids.
struct SliceRig {
  sim::Scheduler scheduler;
  std::unique_ptr<sim::Network> network;
  std::unique_ptr<core::HeliosCluster> cluster;
};

std::unique_ptr<SliceRig> MakeSliceRig() {
  auto rig = std::make_unique<SliceRig>();
  core::HeliosConfig cfg;
  cfg.num_datacenters = 1;
  cfg.log_interval = Millis(5);
  cfg.client_link_one_way = Micros(500);
  cfg.txn_seq_start = 2;
  cfg.txn_seq_stride = 2;
  rig->network = std::make_unique<sim::Network>(&rig->scheduler, 1, 1);
  rig->cluster = std::make_unique<core::HeliosCluster>(
      &rig->scheduler, rig->network.get(), std::move(cfg),
      core::LogProtocolKind::kHelios);
  rig->cluster->Start();
  return rig;
}

/// Regression for the parked-slice liveness wedge: a finalize-abort used
/// to be a no-op for a slice parked in wait-die (it is in neither
/// pending_ nor staged_holds_), so its off-queue retry would later admit
/// into a transaction the coordinator had already forgotten — an intent
/// nobody finalizes, aborting every conflicting admission on its keys
/// forever. The finalize must doom the parked waiter instead.
TEST(CrossShardSlice, FinalizeAbortCancelsParkedWaiter) {
  auto rig = MakeSliceRig();
  core::HeliosNode& node = rig->cluster->node(0);

  const TxnId older{0, 1};     // The transaction that parks.
  const TxnId younger{0, 101};  // Its younger conflicting blocker.
  core::StagedAdmitOutcome older_admit;
  bool older_admit_seen = false;
  bool any_prepared = false;

  rig->scheduler.At(Millis(10), [&] {
    node.HandleStagedCommit(
        younger, {}, {{"k", "1"}},
        [](const core::StagedAdmitOutcome&) {},
        [&](const core::StagedCommitOutcome& out) {
          any_prepared = any_prepared || out.prepared;
        });
  });
  // The older slice conflicts with the still-pending younger one and
  // every blocker is younger, so wait-die parks it instead of aborting.
  rig->scheduler.At(Millis(11), [&] {
    node.HandleStagedCommit(
        older, {}, {{"k", "2"}},
        [&](const core::StagedAdmitOutcome& out) {
          older_admit = out;
          older_admit_seen = true;
        },
        [&](const core::StagedCommitOutcome& out) {
          any_prepared = any_prepared || out.prepared;
        });
  });
  // The coordinator gives up (a sibling shard failed admission) and
  // finalize-aborts both slices while the older one is parked.
  rig->scheduler.At(Millis(12), [&] {
    EXPECT_FALSE(older_admit_seen) << "older slice should be parked";
    EXPECT_EQ(node.staged_waiting_count(), 1u);
    node.HandleFinalizeStaged(older, false, kMinTimestamp);
    node.HandleFinalizeStaged(younger, false, kMinTimestamp);
  });
  rig->scheduler.RunUntil(Seconds(1));

  // The parked slice's retry aborted on the doomed marker instead of
  // admitting into the forgotten transaction.
  ASSERT_TRUE(older_admit_seen);
  EXPECT_FALSE(older_admit.admitted);
  EXPECT_EQ(older_admit.abort_reason, "xshard:abort");
  EXPECT_FALSE(any_prepared);
  EXPECT_EQ(node.pt_pool_size(), 0u);
  EXPECT_EQ(node.staged_hold_count(), 0u);
  EXPECT_EQ(node.staged_waiting_count(), 0u);

  // The keys are free again: a plain transaction on "k" commits.
  CommitOutcome plain;
  bool plain_done = false;
  rig->cluster->ClientCommit(0, {}, {{"k", "3"}},
                             [&](const CommitOutcome& o) {
                               plain = o;
                               plain_done = true;
                             });
  rig->scheduler.RunUntil(Seconds(2));
  ASSERT_TRUE(plain_done);
  EXPECT_TRUE(plain.committed) << plain.abort_reason;
}

/// The waiter fence must guard plain admissions too: without it, a
/// stream of single-shard transactions on a parked slice's keys occupies
/// the pools at every wait-die poll and starves the older waiter through
/// its whole retry budget.
TEST(CrossShardSlice, PlainAdmissionRespectsWaiterFence) {
  auto rig = MakeSliceRig();
  core::HeliosNode& node = rig->cluster->node(0);

  const TxnId older{0, 1};
  const TxnId younger{0, 101};
  rig->scheduler.At(Millis(10), [&] {
    node.HandleStagedCommit(younger, {}, {{"k", "1"}},
                            [](const core::StagedAdmitOutcome&) {},
                            [](const core::StagedCommitOutcome&) {});
  });
  // The older slice writes {k, j}: it parks on the k-conflict, and while
  // parked its whole footprint — including j, which no pool entry holds —
  // is fenced against younger admissions.
  rig->scheduler.At(Millis(11), [&] {
    node.HandleStagedCommit(older, {}, {{"k", "2"}, {"j", "2"}},
                            [](const core::StagedAdmitOutcome&) {},
                            [](const core::StagedCommitOutcome&) {});
  });
  CommitOutcome plain;
  bool plain_done = false;
  rig->scheduler.At(Millis(12), [&] {
    rig->cluster->ClientCommit(0, {}, {{"j", "9"}},
                               [&](const CommitOutcome& o) {
                                 plain = o;
                                 plain_done = true;
                               });
  });
  rig->scheduler.RunUntil(Millis(30));
  ASSERT_TRUE(plain_done);
  EXPECT_FALSE(plain.committed) << "plain admission streamed past the fence";
  EXPECT_EQ(plain.abort_reason, "conflict:waiting");

  // Once the coordinator resolves both slices the fence lifts.
  node.HandleFinalizeStaged(older, false, kMinTimestamp);
  node.HandleFinalizeStaged(younger, false, kMinTimestamp);
  CommitOutcome after;
  bool after_done = false;
  rig->scheduler.At(Millis(40), [&] {
    rig->cluster->ClientCommit(0, {}, {{"j", "10"}},
                               [&](const CommitOutcome& o) {
                                 after = o;
                                 after_done = true;
                               });
  });
  rig->scheduler.RunUntil(Seconds(2));
  ASSERT_TRUE(after_done);
  EXPECT_TRUE(after.committed) << after.abort_reason;
}

#if GTEST_HAS_DEATH_TEST
TEST(ShardedClusterDeathTest, InvalidMapAbortsEvenWithoutAsserts) {
  core::HeliosConfig cfg;
  cfg.num_datacenters = 1;
  EXPECT_DEATH(
      {
        sim::Scheduler scheduler;
        sim::Network network(&scheduler, 1, 1);
        ShardedCluster cluster(&scheduler, &network, cfg,
                               ShardMap::Range({"b", "b"}));
      },
      "invalid shard map");
}
#endif

// --- Coordinator crash during STAGED ----------------------------------------

/// Crash the coordinator datacenter mid-window (cross-shard transactions
/// in flight are mid-STAGED), recover it, and let the resolution path
/// finish the abandoned intents. The oracle suite — shard_atomicity,
/// staged_resolution, exactly_once, wal_replay — judges the outcome
/// against an uncrashed control of the same spec.
TEST(CoordinatorCrash, StagedRecoveryGridVsControl) {
  for (const hns::Protocol protocol :
       {hns::Protocol::kHelios1, hns::Protocol::kHelios2}) {
    SCOPED_TRACE(hns::ProtocolName(protocol));

    hns::ExperimentSpec crashed = CrossShardBase(protocol);
    crashed.WithMeasure(Millis(4000))
        .WithDrain(Millis(2500))
        .WithNumKeys(500)
        .WithClientTimeout(Millis(1500), /*retries=*/10);
    crashed.fault_plan.AddCrash(Millis(1500), /*node=*/0);
    crashed.fault_plan.AddRecover(Millis(3500), /*node=*/0);
    ASSERT_TRUE(crashed.Validate().ok()) << crashed.Validate().ToString();

    hns::ExperimentSpec control = CrossShardBase(protocol);
    control.WithMeasure(Millis(4000)).WithDrain(Millis(2500)).WithNumKeys(
        500);

    const check::ScenarioVerdict crashed_verdict =
        check::RunScenario(crashed);
    EXPECT_TRUE(crashed_verdict.ok()) << crashed_verdict.report.Summary();
    const check::ScenarioVerdict control_verdict =
        check::RunScenario(control);
    EXPECT_TRUE(control_verdict.ok()) << control_verdict.report.Summary();
  }
}

}  // namespace
}  // namespace helios::shard
