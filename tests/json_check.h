// Minimal recursive-descent JSON syntax checker for tests: validates that
// exporter output is well-formed without pulling a JSON library into the
// build. Accepts exactly RFC 8259 JSON (objects, arrays, strings with
// escapes, numbers, true/false/null).

#ifndef HELIOS_TESTS_JSON_CHECK_H_
#define HELIOS_TESTS_JSON_CHECK_H_

#include <cctype>
#include <string>

namespace helios::testing {

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  /// True iff the whole input is one valid JSON value (plus whitespace).
  bool Valid() {
    pos_ = 0;
    if (!Value()) return false;
    SkipWs();
    return pos_ == s_.size();
  }

  /// Byte offset of the first error after a failed Valid() call.
  size_t error_pos() const { return pos_; }

 private:
  void SkipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Literal(const char* word) {
    const size_t len = std::string(word).size();
    if (s_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  bool String() {
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const unsigned char c = static_cast<unsigned char>(s_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) return false;  // Control characters must be escaped.
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= s_.size() || !std::isxdigit(static_cast<unsigned char>(
                                         s_[pos_]))) {
              return false;
            }
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' &&
                   e != 'n' && e != 'r' && e != 't') {
          return false;
        }
      }
      ++pos_;
    }
    return false;  // Unterminated.
  }

  bool Number() {
    const size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    if (pos_ >= s_.size() || !std::isdigit(static_cast<unsigned char>(s_[pos_])))
      return false;
    if (s_[pos_] == '0') {
      ++pos_;
    } else {
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < s_.size() && s_[pos_] == '.') {
      ++pos_;
      if (pos_ >= s_.size() ||
          !std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        return false;
      }
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) ++pos_;
      if (pos_ >= s_.size() ||
          !std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        return false;
      }
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        ++pos_;
      }
    }
    return pos_ > start;
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (pos_ >= s_.size() || s_[pos_] != ':') return false;
      ++pos_;
      if (!Value()) return false;
      SkipWs();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == '}') {
        ++pos_;
        return true;
      }
      if (s_[pos_] != ',') return false;
      ++pos_;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      if (!Value()) return false;
      SkipWs();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ']') {
        ++pos_;
        return true;
      }
      if (s_[pos_] != ',') return false;
      ++pos_;
    }
  }

  bool Value() {
    SkipWs();
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  const std::string& s_;
  size_t pos_ = 0;
};

inline bool IsValidJson(const std::string& text) {
  return JsonChecker(text).Valid();
}

}  // namespace helios::testing

#endif  // HELIOS_TESTS_JSON_CHECK_H_
