// Randomized property tests for the Replicated Dictionary: under arbitrary
// gossip schedules (random pairs, random timing, random appends, with and
// without interleaved garbage collection), all replicas converge to
// identical knowledge, no record is ever lost or duplicated into the
// engine, and garbage collection never discards a record before every
// datacenter has it.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "common/random.h"
#include "rdict/replicated_log.h"
#include "txn/transaction.h"

namespace helios::rdict {
namespace {

struct GossipSim {
  int n;
  Rng rng;
  std::vector<ReplicatedLog> logs;
  std::vector<Timestamp> clocks;
  // Every record each node has *ingested as fresh*, by (origin, ts) —
  // used to check exactly-once delivery into the engine.
  std::vector<std::set<std::pair<DcId, Timestamp>>> delivered;
  std::set<std::pair<DcId, Timestamp>> appended;
  uint64_t next_seq = 1;

  GossipSim(int n_, uint64_t seed) : n(n_), rng(seed) {
    for (int i = 0; i < n; ++i) {
      logs.emplace_back(i, n);
      clocks.push_back(1000 * (i + 1));  // Skewed starting clocks.
      delivered.emplace_back();
    }
  }

  void Append(DcId dc) {
    clocks[dc] += 1 + static_cast<Timestamp>(rng.Uniform(50));
    LogRecord rec;
    rec.type = RecordType::kPreparing;
    rec.ts = clocks[dc];
    rec.origin = dc;
    rec.body = MakeTxnBody(TxnId{dc, next_seq++}, {},
                           {{"k" + std::to_string(rng.Uniform(10)), "v"}});
    ASSERT_TRUE(logs[dc].AppendLocal(rec).ok());
    appended.insert({dc, rec.ts});
    delivered[dc].insert({dc, rec.ts});
  }

  void Gossip(DcId from, DcId to) {
    const LogMessage msg = logs[from].BuildMessageFor(to);
    const auto fresh = logs[to].Ingest(msg);
    for (const LogRecord& rec : fresh) {
      const bool inserted =
          delivered[to].insert({rec.origin, rec.ts}).second;
      EXPECT_TRUE(inserted) << "record delivered twice as fresh";
    }
  }

  void RandomStep(bool with_gc) {
    const uint64_t action = rng.Uniform(10);
    if (action < 4) {
      Append(static_cast<DcId>(rng.Uniform(n)));
    } else if (action < 9 || !with_gc) {
      const DcId from = static_cast<DcId>(rng.Uniform(n));
      DcId to = static_cast<DcId>(rng.Uniform(n));
      if (to == from) to = (to + 1) % n;
      Gossip(from, to);
    } else {
      logs[rng.Uniform(n)].GarbageCollect();
    }
  }

  void FullyConverge() {
    // Enough all-pairs rounds to flush every record and every timetable.
    for (int round = 0; round < n + 2; ++round) {
      for (int a = 0; a < n; ++a) {
        for (int b = 0; b < n; ++b) {
          if (a != b) Gossip(a, b);
        }
      }
    }
  }
};

class RdictGossipTest
    : public ::testing::TestWithParam<std::tuple<int, uint64_t, bool>> {};

TEST_P(RdictGossipTest, RandomGossipConvergesExactlyOnce) {
  const auto [n, seed, with_gc] = GetParam();
  GossipSim sim(n, seed);
  for (int step = 0; step < 800; ++step) {
    sim.RandomStep(with_gc);
    if (::testing::Test::HasFatalFailure()) return;
  }
  sim.FullyConverge();

  // 1. Every node delivered every appended record exactly once.
  for (int dc = 0; dc < n; ++dc) {
    EXPECT_EQ(sim.delivered[dc], sim.appended) << "node " << dc;
  }
  // 2. Knowledge converged: every node knows every origin to the same
  //    bound, equal to the origin's own clock.
  for (int dc = 0; dc < n; ++dc) {
    for (int origin = 0; origin < n; ++origin) {
      EXPECT_EQ(sim.logs[dc].KnownUpTo(origin),
                sim.logs[origin].KnownUpTo(origin))
          << dc << " about " << origin;
    }
  }
  // 3. After convergence everything is garbage-collectable everywhere.
  for (int dc = 0; dc < n; ++dc) {
    sim.logs[dc].GarbageCollect();
    EXPECT_EQ(sim.logs[dc].live_records(), 0u) << dc;
  }
}

TEST_P(RdictGossipTest, GcNeverDropsAnUnknownRecord) {
  const auto [n, seed, with_gc] = GetParam();
  (void)with_gc;
  GossipSim sim(n, seed ^ 0xBEEF);
  for (int step = 0; step < 400; ++step) {
    sim.RandomStep(/*with_gc=*/true);
    if (::testing::Test::HasFatalFailure()) return;
    // Invariant after every step: for every record any node appended but
    // some node has not yet delivered, SOME live copy must still exist.
    if (step % 37 != 0) continue;
    for (const auto& id : sim.appended) {
      bool everyone_has_it = true;
      for (int dc = 0; dc < n; ++dc) {
        if (sim.delivered[dc].count(id) == 0) {
          everyone_has_it = false;
          break;
        }
      }
      if (everyone_has_it) continue;
      bool live_somewhere = false;
      for (int dc = 0; dc < n && !live_somewhere; ++dc) {
        for (const LogRecord& rec : sim.logs[dc].Snapshot()) {
          if (rec.origin == id.first && rec.ts == id.second) {
            live_somewhere = true;
            break;
          }
        }
      }
      EXPECT_TRUE(live_somewhere)
          << "record (" << id.first << "," << id.second
          << ") was GC'd before reaching every node";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RdictGossipTest,
    ::testing::Combine(::testing::Values(2, 3, 5, 8),
                       ::testing::Values(11u, 22u, 33u),
                       ::testing::Bool()),
    [](const ::testing::TestParamInfo<std::tuple<int, uint64_t, bool>>& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_seed" +
             std::to_string(std::get<1>(info.param)) +
             (std::get<2>(info.param) ? "_gc" : "_nogc");
    });

}  // namespace
}  // namespace helios::rdict
