// Tests for the command-line flag parser used by the CLI tools.

#include <gtest/gtest.h>

#include "common/flags.h"

namespace helios {
namespace {

FlagSet MakeSet() {
  FlagSet flags;
  flags.DefineString("name", "default", "a string");
  flags.DefineInt("count", 7, "an int");
  flags.DefineDouble("ratio", 0.5, "a double");
  flags.DefineBool("verbose", false, "a bool");
  return flags;
}

Status Parse(FlagSet& flags, std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return flags.Parse(static_cast<int>(args.size()), args.data());
}

TEST(FlagsTest, DefaultsApply) {
  FlagSet flags = MakeSet();
  ASSERT_TRUE(Parse(flags, {}).ok());
  EXPECT_EQ(flags.GetString("name"), "default");
  EXPECT_EQ(flags.GetInt("count"), 7);
  EXPECT_DOUBLE_EQ(flags.GetDouble("ratio"), 0.5);
  EXPECT_FALSE(flags.GetBool("verbose"));
  EXPECT_FALSE(flags.IsSet("name"));
}

TEST(FlagsTest, EqualsSyntax) {
  FlagSet flags = MakeSet();
  ASSERT_TRUE(
      Parse(flags, {"--name=helios", "--count=42", "--ratio=1.25"}).ok());
  EXPECT_EQ(flags.GetString("name"), "helios");
  EXPECT_EQ(flags.GetInt("count"), 42);
  EXPECT_DOUBLE_EQ(flags.GetDouble("ratio"), 1.25);
  EXPECT_TRUE(flags.IsSet("count"));
}

TEST(FlagsTest, SpaceSyntax) {
  FlagSet flags = MakeSet();
  ASSERT_TRUE(Parse(flags, {"--name", "x", "--count", "-3"}).ok());
  EXPECT_EQ(flags.GetString("name"), "x");
  EXPECT_EQ(flags.GetInt("count"), -3);
}

TEST(FlagsTest, BareBooleanSetsTrue) {
  FlagSet flags = MakeSet();
  ASSERT_TRUE(Parse(flags, {"--verbose"}).ok());
  EXPECT_TRUE(flags.GetBool("verbose"));
}

TEST(FlagsTest, BooleanExplicitValues) {
  FlagSet flags = MakeSet();
  ASSERT_TRUE(Parse(flags, {"--verbose=true"}).ok());
  EXPECT_TRUE(flags.GetBool("verbose"));
  FlagSet flags2 = MakeSet();
  ASSERT_TRUE(Parse(flags2, {"--verbose=0"}).ok());
  EXPECT_FALSE(flags2.GetBool("verbose"));
}

TEST(FlagsTest, UnknownFlagFails) {
  FlagSet flags = MakeSet();
  const Status s = Parse(flags, {"--nope=1"});
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("nope"), std::string::npos);
}

TEST(FlagsTest, MalformedNumbersFail) {
  FlagSet flags = MakeSet();
  EXPECT_FALSE(Parse(flags, {"--count=abc"}).ok());
  FlagSet flags2 = MakeSet();
  EXPECT_FALSE(Parse(flags2, {"--ratio=1.2.3"}).ok());
  FlagSet flags3 = MakeSet();
  EXPECT_FALSE(Parse(flags3, {"--verbose=maybe"}).ok());
}

TEST(FlagsTest, MissingValueFails) {
  FlagSet flags = MakeSet();
  EXPECT_FALSE(Parse(flags, {"--count"}).ok());
}

TEST(FlagsTest, PositionalArgumentsCollected) {
  FlagSet flags = MakeSet();
  ASSERT_TRUE(Parse(flags, {"input.txt", "--count=1", "more"}).ok());
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "input.txt");
  EXPECT_EQ(flags.positional()[1], "more");
}

TEST(FlagsTest, HelpListsFlags) {
  FlagSet flags = MakeSet();
  const std::string help = flags.Help();
  EXPECT_NE(help.find("--name"), std::string::npos);
  EXPECT_NE(help.find("a bool"), std::string::npos);
  EXPECT_NE(help.find("default: 7"), std::string::npos);
}

}  // namespace
}  // namespace helios
