// Tests for online RTT estimation and runtime offset replanning: accuracy
// against the configured topology, skew immunity, matrix gossip, and the
// end-to-end adaptation loop (an RTT shift degrades latency; replanning
// recovers it; serializability holds throughout).

#include <gtest/gtest.h>

#include <memory>

#include "core/helios_cluster.h"
#include "core/history.h"
#include "core/rtt_estimator.h"
#include "harness/topology.h"
#include "sim/network.h"
#include "sim/scheduler.h"

namespace helios::core {
namespace {

TEST(RttEstimatorUnitTest, SingleExchangeProducesSample) {
  RttEstimator a(0, 2);
  RttEstimator b(1, 2);
  Envelope ping(2);
  ping.log.from = 0;
  a.StampOutgoing(1, /*now=*/1000, &ping);
  EXPECT_GT(ping.ping_id, 0u);

  // B receives 20ms later, holds 7ms, replies.
  b.OnIncoming(0, /*now=*/21000, ping);
  Envelope pong(2);
  pong.log.from = 1;
  b.StampOutgoing(0, /*now=*/28000, &pong);
  EXPECT_EQ(pong.pong_for, ping.ping_id);
  EXPECT_EQ(pong.pong_hold_us, 7000);

  // A receives the pong another 20ms later: sample = 47ms - 7ms = 40ms.
  a.OnIncoming(1, /*now=*/48000, pong);
  EXPECT_EQ(a.EstimatedRttTo(1), 40000);
  EXPECT_EQ(a.samples(), 1u);
}

TEST(RttEstimatorUnitTest, EwmaSmoothsSamples) {
  RttEstimator a(0, 2);
  RttEstimator b(1, 2);
  Timestamp now_a = 0;
  Timestamp now_b = 0;
  Duration rtt = 40000;
  for (int i = 0; i < 30; ++i) {
    Envelope ping(2);
    a.StampOutgoing(1, now_a, &ping);
    now_b = now_a + rtt / 2;
    b.OnIncoming(0, now_b, ping);
    Envelope pong(2);
    b.StampOutgoing(0, now_b, &pong);
    now_a = now_b + rtt / 2;
    a.OnIncoming(1, now_a, pong);
    if (i == 15) rtt = 80000;  // The link degrades.
  }
  // Converged toward the new value.
  EXPECT_GT(a.EstimatedRttTo(1), 60000);
  EXPECT_LE(a.EstimatedRttTo(1), 81000);
}

TEST(RttEstimatorUnitTest, RowGossipCompletesTheMatrix) {
  RttEstimator a(0, 3);
  Envelope env(3);
  env.log.from = 1;
  env.ping_id = 5;
  env.rtt_row_us = {33000, 0, 44000};  // B's estimates to A and C.
  a.OnIncoming(1, 1000, env);
  Envelope env2(3);
  env2.log.from = 2;
  env2.ping_id = 9;
  env2.rtt_row_us = {55000, 44500, 0};
  a.OnIncoming(2, 2000, env2);
  EXPECT_FALSE(a.MatrixComplete());  // Own row still empty.
  // Fake own samples via a full exchange with each peer.
  for (DcId peer : {1, 2}) {
    Envelope ping(3);
    a.StampOutgoing(peer, 10000, &ping);
    Envelope pong(3);
    pong.log.from = peer;
    pong.pong_for = ping.ping_id;
    pong.pong_hold_us = 0;
    a.OnIncoming(peer, 10000 + 30000, pong);
  }
  ASSERT_TRUE(a.MatrixComplete());
  const lp::RttMatrix m = a.MatrixMs();
  // Pair (1,2) comes purely from gossip: average of 44 and 44.5.
  EXPECT_NEAR(m.Get(1, 2), 44.25, 0.01);
  // Pair (0,1): average of our 30ms sample and B's advertised 33ms.
  EXPECT_NEAR(m.Get(0, 1), 31.5, 0.1);
}

struct EstimationRig {
  sim::Scheduler scheduler;
  std::unique_ptr<sim::Network> network;
  std::unique_ptr<HeliosCluster> cluster;

  explicit EstimationRig(const harness::Topology& topo,
                         std::vector<Duration> clock_offsets = {}) {
    network = std::make_unique<sim::Network>(&scheduler, topo.size(), 9);
    harness::ConfigureNetwork(topo, network.get());
    HeliosConfig cfg;
    cfg.num_datacenters = topo.size();
    cfg.estimate_rtts = true;
    cfg.log_interval = Millis(5);
    cfg.clock_offsets = std::move(clock_offsets);
    cluster = std::make_unique<HeliosCluster>(&scheduler, network.get(),
                                              std::move(cfg));
    cluster->Start();
  }
};

TEST(RttEstimationIntegrationTest, EstimatesMatchConfiguredTopology) {
  const auto topo = harness::Table2Topology();
  EstimationRig rig(topo);
  rig.scheduler.RunUntil(Seconds(5));
  for (DcId dc = 0; dc < topo.size(); ++dc) {
    const RttEstimator* est = rig.cluster->node(dc).rtt_estimator();
    ASSERT_NE(est, nullptr);
    ASSERT_TRUE(est->MatrixComplete()) << "dc " << dc;
    const lp::RttMatrix m = est->MatrixMs();
    for (int a = 0; a < topo.size(); ++a) {
      for (int b = a + 1; b < topo.size(); ++b) {
        // Within 15% of the configured mean despite the link jitter and
        // tick-hold correction.
        EXPECT_NEAR(m.Get(a, b), topo.rtt_ms.Get(a, b),
                    topo.rtt_ms.Get(a, b) * 0.15 + 2.0)
            << "pair " << a << "," << b << " at dc " << dc;
      }
    }
  }
}

TEST(RttEstimationIntegrationTest, SkewDoesNotBiasEstimates) {
  const auto topo = harness::UniformTopology(3, 60.0);
  EstimationRig rig(topo, {Millis(150), -Millis(120), 0});
  rig.scheduler.RunUntil(Seconds(4));
  const RttEstimator* est = rig.cluster->node(0).rtt_estimator();
  ASSERT_TRUE(est->MatrixComplete());
  const lp::RttMatrix m = est->MatrixMs();
  EXPECT_NEAR(m.Get(0, 1), 60.0, 6.0);
  EXPECT_NEAR(m.Get(0, 2), 60.0, 6.0);
}

TEST(RttEstimationIntegrationTest, ReplanAdaptsToRttShift) {
  // Start with Helios-B (no offsets) on Table 2; once estimates converge,
  // replanning should roughly reproduce the static MAO plan's latencies.
  const auto topo = harness::Table2Topology();
  EstimationRig rig(topo);

  auto commit_latency_at = [&](DcId dc) {
    Duration latency = -1;
    const sim::SimTime start = rig.scheduler.Now();
    rig.cluster->ClientCommit(dc, {},
                              {{"probe" + std::to_string(start), "v"}},
                              [&](const CommitOutcome& o) {
                                if (o.committed) {
                                  latency = rig.scheduler.Now() - start;
                                }
                              });
    rig.scheduler.RunUntil(rig.scheduler.Now() + Seconds(3));
    return latency;
  };

  rig.scheduler.RunUntil(Seconds(4));  // Let estimates converge.
  const Duration before = commit_latency_at(1);  // Oregon, Helios-B.
  ASSERT_GT(before, 0);

  auto replanned = rig.cluster->ReplanOffsetsFromEstimates();
  ASSERT_TRUE(replanned.ok()) << replanned.status().ToString();
  EXPECT_NEAR(replanned.value(), 90.6, 8.0);  // Near the true MAO average.

  const Duration after = commit_latency_at(1);
  ASSERT_GT(after, 0);
  // Helios-B put Oregon at ~max one-way (105ms); MAO plans ~10ms.
  EXPECT_LT(after, before / 2);
  EXPECT_LT(after, Millis(40));
}

TEST(RttEstimationIntegrationTest, ReplanKeepsHistorySerializable) {
  const auto topo = harness::UniformTopology(3, 50.0);
  EstimationRig rig(topo);
  auto rng = std::make_shared<Rng>(77);
  auto step = std::make_shared<std::function<void(DcId)>>();
  *step = [&, rng, step](DcId dc) {
    if (rig.scheduler.Now() > Seconds(12)) return;
    rig.cluster->ClientCommit(
        dc, {}, {{"k" + std::to_string(rng->Uniform(30)), "v"}},
        [step, dc](const CommitOutcome&) { (*step)(dc); });
  };
  for (DcId dc = 0; dc < 3; ++dc) {
    rig.scheduler.At(Millis(dc + 1), [step, dc] { (*step)(dc); });
    rig.scheduler.At(Millis(dc + 2), [step, dc] { (*step)(dc); });
  }
  // Replan mid-run, twice.
  rig.scheduler.At(Seconds(5), [&] {
    (void)rig.cluster->ReplanOffsetsFromEstimates();
  });
  rig.scheduler.At(Seconds(8), [&] {
    (void)rig.cluster->ReplanOffsetsFromEstimates(1);
  });
  rig.scheduler.RunUntil(Seconds(20));
  EXPECT_GT(rig.cluster->history().size(), 200u);
  const Status ser = CheckSerializable(rig.cluster->history().commits());
  EXPECT_TRUE(ser.ok()) << ser.ToString();
}

TEST(RttEstimationIntegrationTest, ReplanFailsCleanlyWithoutEstimation) {
  sim::Scheduler scheduler;
  sim::Network network(&scheduler, 2, 1);
  harness::ConfigureNetwork(harness::UniformTopology(2, 40.0), &network);
  HeliosConfig cfg;
  cfg.num_datacenters = 2;
  HeliosCluster cluster(&scheduler, &network, std::move(cfg));
  auto result = cluster.ReplanOffsetsFromEstimates();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace helios::core
