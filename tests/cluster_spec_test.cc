// Tests for the live-deployment cluster spec: JSON round trip, strict
// unknown-key rejection, and validation.

#include <gtest/gtest.h>

#include <string>

#include "transport/cluster_spec.h"

namespace helios::transport {
namespace {

ClusterSpec MakeSpec() {
  ClusterSpec spec;
  spec.datacenters = {{7101, "/tmp/dc0.wal"}, {7102, ""}, {7103, "/t/2.wal"}};
  spec.fault_tolerance = 1;
  spec.grace_time = Millis(500);
  spec.log_interval = Millis(5);
  spec.inbound_delay = Millis(12);
  spec.wal_options.policy = wal::SyncPolicy::kEveryRecord;
  spec.wal_options.group_commit_interval = std::chrono::microseconds(2500);
  return spec;
}

TEST(ClusterSpecTest, JsonRoundTrip) {
  const ClusterSpec spec = MakeSpec();
  ASSERT_TRUE(spec.Validate().ok());
  const std::string json = spec.ToJson();
  auto parsed = ClusterSpec::FromJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const ClusterSpec& got = parsed.value();
  ASSERT_EQ(got.num_datacenters(), 3);
  EXPECT_EQ(got.datacenters[0].port, 7101);
  EXPECT_EQ(got.datacenters[0].wal_path, "/tmp/dc0.wal");
  EXPECT_EQ(got.datacenters[1].wal_path, "");
  EXPECT_EQ(got.fault_tolerance, 1);
  EXPECT_EQ(got.grace_time, Millis(500));
  EXPECT_EQ(got.log_interval, Millis(5));
  EXPECT_EQ(got.inbound_delay, Millis(12));
  EXPECT_EQ(got.wal_options.policy, wal::SyncPolicy::kEveryRecord);
  EXPECT_EQ(got.wal_options.group_commit_interval.count(), 2500);
  // Determinism: re-emission is byte-identical.
  EXPECT_EQ(got.ToJson(), json);
}

TEST(ClusterSpecTest, MakeConfigMirrorsSpec) {
  const core::HeliosConfig config = MakeSpec().MakeConfig();
  EXPECT_EQ(config.num_datacenters, 3);
  EXPECT_EQ(config.fault_tolerance, 1);
  EXPECT_EQ(config.grace_time, Millis(500));
  EXPECT_EQ(config.log_interval, Millis(5));
  EXPECT_TRUE(config.commit_offsets.empty());
}

TEST(ClusterSpecTest, HealthEnabledRoundTripsAndReachesConfig) {
  // Default off: the key is omitted, old spec files stay byte-identical.
  const ClusterSpec plain = MakeSpec();
  EXPECT_EQ(plain.ToJson().find("health_enabled"), std::string::npos);
  EXPECT_FALSE(plain.MakeConfig().health.enabled);

  ClusterSpec armed = MakeSpec();
  armed.health_enabled = true;
  const std::string json = armed.ToJson();
  EXPECT_NE(json.find("\"health_enabled\":true"), std::string::npos);
  auto parsed = ClusterSpec::FromJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed.value().health_enabled);
  EXPECT_TRUE(parsed.value().MakeConfig().health.enabled);
  EXPECT_EQ(parsed.value().ToJson(), json);
}

TEST(ClusterSpecTest, PortsIndexedByDc) {
  const std::vector<uint16_t> ports = MakeSpec().ports();
  ASSERT_EQ(ports.size(), 3u);
  EXPECT_EQ(ports[0], 7101);
  EXPECT_EQ(ports[2], 7103);
}

TEST(ClusterSpecTest, UnknownKeysRejected) {
  EXPECT_FALSE(ClusterSpec::FromJson("{\"datacentres\":[]}").ok());
  EXPECT_FALSE(
      ClusterSpec::FromJson(
          "{\"datacenters\":[{\"port\":1,\"walpath\":\"x\"}]}")
          .ok());
}

TEST(ClusterSpecTest, ValidationCatchesBadSpecs) {
  ClusterSpec empty;
  EXPECT_FALSE(empty.Validate().ok());

  ClusterSpec dup = MakeSpec();
  dup.datacenters[2].port = dup.datacenters[0].port;
  EXPECT_FALSE(dup.Validate().ok());

  ClusterSpec zero_port = MakeSpec();
  zero_port.datacenters[1].port = 0;
  EXPECT_FALSE(zero_port.Validate().ok());

  ClusterSpec bad_f = MakeSpec();
  bad_f.fault_tolerance = 3;
  EXPECT_FALSE(bad_f.Validate().ok());

  ClusterSpec bad_grace = MakeSpec();
  bad_grace.grace_time = 0;
  EXPECT_FALSE(bad_grace.Validate().ok());
}

TEST(ClusterSpecTest, ShardedSpecDerivesPortsAndWalPaths) {
  // Default off: the key is omitted, old spec files stay byte-identical,
  // and derived paths/ports are the plain per-DC ones.
  const ClusterSpec plain = MakeSpec();
  EXPECT_EQ(plain.ToJson().find("\"shards\""), std::string::npos);
  EXPECT_EQ(plain.PortOf(0, 0), 7101);
  EXPECT_EQ(plain.WalPathFor(0, 0), "/tmp/dc0.wal");

  ClusterSpec sharded = MakeSpec();
  sharded.shards = 2;
  ASSERT_TRUE(sharded.Validate().ok()) << sharded.Validate().ToString();
  const std::string json = sharded.ToJson();
  EXPECT_NE(json.find("\"shards\":2"), std::string::npos);
  auto parsed = ClusterSpec::FromJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().shards, 2);
  EXPECT_EQ(parsed.value().ToJson(), json);

  // Port plane stride is num_datacenters: 7101..7103 then 7104..7106.
  EXPECT_EQ(sharded.PortOf(0, 1), 7104);
  EXPECT_EQ(sharded.PortOf(2, 1), 7106);
  const std::vector<uint16_t> plane1 = sharded.ports(1);
  ASSERT_EQ(plane1.size(), 3u);
  EXPECT_EQ(plane1[0], 7104);
  EXPECT_EQ(plane1[2], 7106);

  // WAL paths gain a shard suffix; an empty (WAL-less) path stays empty.
  EXPECT_EQ(sharded.WalPathFor(0, 0), "/tmp/dc0.wal.s0");
  EXPECT_EQ(sharded.WalPathFor(0, 1), "/tmp/dc0.wal.s1");
  EXPECT_EQ(sharded.WalPathFor(1, 1), "");
}

TEST(ClusterSpecTest, ShardedValidationCatchesPortCollisionsAndBadCounts) {
  ClusterSpec zero = MakeSpec();
  zero.shards = 0;
  EXPECT_FALSE(zero.Validate().ok());

  // dc1's base port sits exactly one plane-stride above dc0's, so dc0
  // shard 1 lands on dc1 shard 0.
  ClusterSpec collide;
  collide.datacenters = {{7101, ""}, {7103, ""}};
  collide.shards = 2;
  const Status st = collide.Validate();
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("collides"), std::string::npos) << st.ToString();

  ClusterSpec overflow;
  overflow.datacenters = {{65535, ""}};
  overflow.shards = 2;
  EXPECT_FALSE(overflow.Validate().ok());
}

TEST(ClusterSpecTest, BadFsyncSpellingRejected) {
  EXPECT_FALSE(
      ClusterSpec::FromJson("{\"datacenters\":[],\"fsync\":\"always\"}")
          .ok());
}

}  // namespace
}  // namespace helios::transport
