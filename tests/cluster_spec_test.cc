// Tests for the live-deployment cluster spec: JSON round trip, strict
// unknown-key rejection, and validation.

#include <gtest/gtest.h>

#include <string>

#include "transport/cluster_spec.h"

namespace helios::transport {
namespace {

ClusterSpec MakeSpec() {
  ClusterSpec spec;
  spec.datacenters = {{7101, "/tmp/dc0.wal"}, {7102, ""}, {7103, "/t/2.wal"}};
  spec.fault_tolerance = 1;
  spec.grace_time = Millis(500);
  spec.log_interval = Millis(5);
  spec.inbound_delay = Millis(12);
  spec.wal_options.policy = wal::SyncPolicy::kEveryRecord;
  spec.wal_options.group_commit_interval = std::chrono::microseconds(2500);
  return spec;
}

TEST(ClusterSpecTest, JsonRoundTrip) {
  const ClusterSpec spec = MakeSpec();
  ASSERT_TRUE(spec.Validate().ok());
  const std::string json = spec.ToJson();
  auto parsed = ClusterSpec::FromJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const ClusterSpec& got = parsed.value();
  ASSERT_EQ(got.num_datacenters(), 3);
  EXPECT_EQ(got.datacenters[0].port, 7101);
  EXPECT_EQ(got.datacenters[0].wal_path, "/tmp/dc0.wal");
  EXPECT_EQ(got.datacenters[1].wal_path, "");
  EXPECT_EQ(got.fault_tolerance, 1);
  EXPECT_EQ(got.grace_time, Millis(500));
  EXPECT_EQ(got.log_interval, Millis(5));
  EXPECT_EQ(got.inbound_delay, Millis(12));
  EXPECT_EQ(got.wal_options.policy, wal::SyncPolicy::kEveryRecord);
  EXPECT_EQ(got.wal_options.group_commit_interval.count(), 2500);
  // Determinism: re-emission is byte-identical.
  EXPECT_EQ(got.ToJson(), json);
}

TEST(ClusterSpecTest, MakeConfigMirrorsSpec) {
  const core::HeliosConfig config = MakeSpec().MakeConfig();
  EXPECT_EQ(config.num_datacenters, 3);
  EXPECT_EQ(config.fault_tolerance, 1);
  EXPECT_EQ(config.grace_time, Millis(500));
  EXPECT_EQ(config.log_interval, Millis(5));
  EXPECT_TRUE(config.commit_offsets.empty());
}

TEST(ClusterSpecTest, HealthEnabledRoundTripsAndReachesConfig) {
  // Default off: the key is omitted, old spec files stay byte-identical.
  const ClusterSpec plain = MakeSpec();
  EXPECT_EQ(plain.ToJson().find("health_enabled"), std::string::npos);
  EXPECT_FALSE(plain.MakeConfig().health.enabled);

  ClusterSpec armed = MakeSpec();
  armed.health_enabled = true;
  const std::string json = armed.ToJson();
  EXPECT_NE(json.find("\"health_enabled\":true"), std::string::npos);
  auto parsed = ClusterSpec::FromJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed.value().health_enabled);
  EXPECT_TRUE(parsed.value().MakeConfig().health.enabled);
  EXPECT_EQ(parsed.value().ToJson(), json);
}

TEST(ClusterSpecTest, PortsIndexedByDc) {
  const std::vector<uint16_t> ports = MakeSpec().ports();
  ASSERT_EQ(ports.size(), 3u);
  EXPECT_EQ(ports[0], 7101);
  EXPECT_EQ(ports[2], 7103);
}

TEST(ClusterSpecTest, UnknownKeysRejected) {
  EXPECT_FALSE(ClusterSpec::FromJson("{\"datacentres\":[]}").ok());
  EXPECT_FALSE(
      ClusterSpec::FromJson(
          "{\"datacenters\":[{\"port\":1,\"walpath\":\"x\"}]}")
          .ok());
}

TEST(ClusterSpecTest, ValidationCatchesBadSpecs) {
  ClusterSpec empty;
  EXPECT_FALSE(empty.Validate().ok());

  ClusterSpec dup = MakeSpec();
  dup.datacenters[2].port = dup.datacenters[0].port;
  EXPECT_FALSE(dup.Validate().ok());

  ClusterSpec zero_port = MakeSpec();
  zero_port.datacenters[1].port = 0;
  EXPECT_FALSE(zero_port.Validate().ok());

  ClusterSpec bad_f = MakeSpec();
  bad_f.fault_tolerance = 3;
  EXPECT_FALSE(bad_f.Validate().ok());

  ClusterSpec bad_grace = MakeSpec();
  bad_grace.grace_time = 0;
  EXPECT_FALSE(bad_grace.Validate().ok());
}

TEST(ClusterSpecTest, BadFsyncSpellingRejected) {
  EXPECT_FALSE(
      ClusterSpec::FromJson("{\"datacenters\":[],\"fsync\":\"always\"}")
          .ok());
}

}  // namespace
}  // namespace helios::transport
