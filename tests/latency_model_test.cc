// Tests for the Appendix A.1 analytic latency model (Eqs. 6-8) and its
// agreement with the simulator.

#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "harness/topology.h"
#include "lp/latency_model.h"

namespace helios::lp {
namespace {

RttMatrix Table2Rtt() { return harness::Table2Topology().rtt_ms; }

TEST(LatencyModelTest, NoErrorsReproducesPlannedLatencies) {
  const RttMatrix rtt = Table2Rtt();
  const auto planned = SolveMao(rtt).value();
  const auto pred = PredictLatencies(rtt, rtt, planned, {}, 0.0);
  ASSERT_EQ(pred.latency_ms.size(), planned.size());
  for (size_t i = 0; i < planned.size(); ++i) {
    EXPECT_NEAR(pred.latency_ms[i], planned[i], 1e-9) << i;
    EXPECT_GE(pred.binding_peer[i], 0);
  }
}

TEST(LatencyModelTest, ClockAheadPaysItsOwnSkew) {
  // Eq. 6: with A's clock ahead by s and no other errors, A's latency
  // grows by exactly s (theta(A, B) = +s for every B), and peers whose
  // binding wait is on A can only get faster, never slower.
  const RttMatrix rtt = Table2Rtt();
  const auto planned = SolveMao(rtt).value();
  const std::vector<double> skew = {100.0, 0.0, 0.0, 0.0, 0.0};
  const auto base = PredictLatencies(rtt, rtt, planned, {}, 0.0);
  const auto pred = PredictLatencies(rtt, rtt, planned, skew, 0.0);
  EXPECT_NEAR(pred.latency_ms[0], base.latency_ms[0] + 100.0, 1e-9);
  for (size_t i = 1; i < pred.latency_ms.size(); ++i) {
    EXPECT_LE(pred.latency_ms[i], base.latency_ms[i] + 1e-9) << i;
  }
}

TEST(LatencyModelTest, ClockBehindHelpsItself) {
  const RttMatrix rtt = Table2Rtt();
  const auto planned = SolveMao(rtt).value();
  const std::vector<double> skew = {-100.0, 0.0, 0.0, 0.0, 0.0};
  const auto pred = PredictLatencies(rtt, rtt, planned, skew, 0.0);
  const auto base = PredictLatencies(rtt, rtt, planned, {}, 0.0);
  // V's own wait shrinks (floored at 0); everyone whose binding peer is V
  // waits up to 100ms longer.
  EXPECT_LT(pred.latency_ms[0], base.latency_ms[0]);
  EXPECT_GE(pred.latency_ms[0], 0.0);
}

TEST(LatencyModelTest, RttUnderestimateAddsHalfTheErrorPerEq7) {
  RttMatrix rtt(2);
  rtt.Set(0, 1, 100.0);
  RttMatrix estimate(2);
  estimate.Set(0, 1, 60.0);  // rho = +40.
  // (Any split summing to 60 is MAO-optimal for two datacenters; pin the
  // symmetric one explicitly.)
  const std::vector<double> planned = {30.0, 30.0};
  const auto pred = PredictLatencies(rtt, estimate, planned, {}, 0.0);
  EXPECT_NEAR(pred.latency_ms[0], 30.0 + 20.0, 1e-9);
  EXPECT_NEAR(pred.latency_ms[1], 30.0 + 20.0, 1e-9);
}

TEST(LatencyModelTest, OverestimateNeverGoesNegative) {
  RttMatrix rtt(2);
  rtt.Set(0, 1, 20.0);
  RttMatrix estimate(2);
  estimate.Set(0, 1, 500.0);
  const auto pred = PredictLatenciesFromEstimate(rtt, estimate, {}, 0.0);
  for (double l : pred.latency_ms) EXPECT_GE(l, 0.0);
}

TEST(LatencyModelTest, OverheadIsAdditive) {
  const RttMatrix rtt = Table2Rtt();
  const auto a = PredictLatenciesFromEstimate(rtt, rtt, {}, 0.0);
  const auto b = PredictLatenciesFromEstimate(rtt, rtt, {}, 12.5);
  for (size_t i = 0; i < a.latency_ms.size(); ++i) {
    EXPECT_NEAR(b.latency_ms[i], a.latency_ms[i] + 12.5, 1e-9);
  }
}

// End-to-end agreement: the analytic model must predict the simulator's
// measured per-datacenter latency within a modest tolerance, including
// under skew — the Appendix A.1 claim made quantitative.
TEST(LatencyModelTest, PredictionMatchesSimulation) {
  harness::ExperimentConfig cfg;
  cfg.protocol = harness::Protocol::kHelios0;
  cfg.total_clients = 15;
  cfg.warmup = Seconds(2);
  cfg.measure = Seconds(6);
  cfg.workload.num_keys = 5000;
  cfg.clock_offsets = {Millis(40), -Millis(30), 0, 0, Millis(10)};

  const auto r = harness::RunExperiment(cfg);

  const RttMatrix rtt = Table2Rtt();
  std::vector<double> skew_ms;
  for (Duration d : cfg.clock_offsets) skew_ms.push_back(ToMillis(d));
  // Calibrate the constant overhead from the synchronized baseline:
  // ~log interval + client links + service times.
  const double overhead_ms = 14.0;
  const auto pred =
      PredictLatenciesFromEstimate(rtt, rtt, skew_ms, overhead_ms);
  for (size_t dc = 0; dc < 5; ++dc) {
    EXPECT_NEAR(r.per_dc[dc].latency_mean_ms, pred.latency_ms[dc], 15.0)
        << "datacenter " << dc;
  }
}

}  // namespace
}  // namespace helios::lp
