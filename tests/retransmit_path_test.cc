// Proves the retransmission path never re-encodes: the cluster's
// envelope sizer (the stand-in for wire encoding on the simulated WAN)
// runs exactly once per logical send, even when a lossy network forces
// the ReliableMesh to retransmit many of those sends. Before the
// cached-buffer fix, every retransmission re-measured (and a deployment
// would have re-encoded) its message.

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/helios_cluster.h"
#include "sim/fault_plan.h"
#include "sim/network.h"
#include "sim/reliable.h"
#include "sim/scheduler.h"
#include "wire/serialization.h"

namespace helios::core {
namespace {

TEST(RetransmitPathTest, SizerRunsOncePerLogicalSendDespiteRetransmits) {
  const int n = 3;
  const uint64_t seed = 424242;

  sim::Scheduler scheduler;
  sim::Network network(&scheduler, n, seed);
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      network.SetRtt(a, b, Millis(30), Millis(2));
    }
  }

  // Heavy loss for the whole run: plenty of retransmissions.
  sim::FaultPlan plan;
  sim::LinkFault lf;
  lf.loss = 0.30;
  lf.active_until = Seconds(60);
  plan.AddLinkFault(lf);
  ASSERT_TRUE(network.InstallMessageFaults(plan, seed ^ 0xFA171).ok());

  HeliosConfig cfg;
  cfg.num_datacenters = n;
  cfg.log_interval = Millis(5);
  HeliosCluster cluster(&scheduler, &network, cfg);
  sim::ReliableMesh mesh(&scheduler, &network);
  cluster.SetReliableMesh(&mesh);

  uint64_t sizer_calls = 0;
  cluster.set_envelope_sizer([&sizer_calls](const Envelope& env) {
    ++sizer_calls;
    return wire::EncodedEnvelopeSize(env);
  });

  for (int k = 0; k < 10; ++k) {
    cluster.LoadInitialAll("key" + std::to_string(k), "init");
  }
  cluster.Start();

  // Closed-loop writers at every datacenter keep log records (not just
  // heartbeats) flowing through the lossy links.
  auto commits = std::make_shared<uint64_t>(0);
  auto loop = std::make_shared<std::function<void(DcId, int)>>();
  *loop = [&, commits, loop](DcId dc, int i) {
    if (scheduler.Now() > Seconds(8)) return;
    cluster.ClientCommit(dc, {},
                         {{"key" + std::to_string((dc + i) % 10), "v"}},
                         [&, commits, loop, dc, i](const CommitOutcome& o) {
                           if (o.committed) ++*commits;
                           (*loop)(dc, i + 1);
                         });
  };
  for (DcId dc = 0; dc < n; ++dc) {
    scheduler.At(Millis(dc + 1), [loop, dc] { (*loop)(dc, 0); });
  }
  scheduler.RunUntil(Seconds(10));

  // The run must actually have exercised the retransmission machinery
  // and committed through it.
  EXPECT_GT(*commits, 0u);
  ASSERT_GT(mesh.retransmits(), 0u);

  // The invariant under test: sizing (== encoding in a deployment)
  // happened once per logical envelope send. Retransmissions reuse the
  // cached size and shared EnvelopePtr, so the counts match exactly even
  // though the wire carried far more transmissions.
  EXPECT_EQ(sizer_calls, cluster.AggregateCounters().envelopes_sent);
}

}  // namespace
}  // namespace helios::core
