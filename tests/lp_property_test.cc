// Property tests for the LP layer: the simplex solver is validated against
// brute-force vertex enumeration on random MAO instances, and the
// planning pipeline's invariants are checked across random topologies.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/random.h"
#include "lp/mao.h"
#include "lp/simplex.h"

namespace helios::lp {
namespace {

RttMatrix RandomRtt(Rng& rng, int n, double max_rtt) {
  // Build a metric-ish random matrix: embed datacenters on a line segment
  // and add noise, keeping the triangle inequality approximately true (the
  // paper's model assumes it; MAO itself does not need it).
  std::vector<double> pos;
  for (int i = 0; i < n; ++i) {
    pos.push_back(rng.NextDouble() * max_rtt / 2.0);
  }
  RttMatrix rtt(n);
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      const double base = std::fabs(pos[a] - pos[b]) + 5.0;
      rtt.Set(a, b, base + rng.NextDouble() * 4.0);
    }
  }
  return rtt;
}

// Brute-force MAO for small n: the optimum of a linear program lies at a
// vertex, i.e. at a point where n linearly independent constraints are
// tight (from L_a + L_b = RTT(a,b) and L_a = 0). Enumerate all subsets of
// n constraints, solve the linear system by Gaussian elimination, keep
// feasible solutions, return the best average.
double BruteForceMaoAverage(const RttMatrix& rtt) {
  const int n = rtt.size();
  struct Con {
    std::vector<double> coeffs;
    double rhs;
  };
  std::vector<Con> cons;
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      std::vector<double> c(n, 0.0);
      c[a] = 1.0;
      c[b] = 1.0;
      cons.push_back({c, rtt.Get(a, b)});
    }
  }
  for (int a = 0; a < n; ++a) {
    std::vector<double> c(n, 0.0);
    c[a] = 1.0;
    cons.push_back({c, 0.0});
  }

  double best = 1e18;
  const int m = static_cast<int>(cons.size());
  std::vector<int> idx(n);
  // Enumerate n-subsets of constraints.
  std::function<void(int, int)> recurse = [&](int start, int depth) {
    if (depth == n) {
      // Solve the tight system.
      std::vector<std::vector<double>> a(n, std::vector<double>(n + 1, 0.0));
      for (int r = 0; r < n; ++r) {
        for (int c = 0; c < n; ++c) a[r][c] = cons[idx[r]].coeffs[c];
        a[r][n] = cons[idx[r]].rhs;
      }
      // Gaussian elimination with partial pivoting.
      for (int col = 0; col < n; ++col) {
        int pivot = -1;
        double best_abs = 1e-9;
        for (int r = col; r < n; ++r) {
          if (std::fabs(a[r][col]) > best_abs) {
            best_abs = std::fabs(a[r][col]);
            pivot = r;
          }
        }
        if (pivot < 0) return;  // Singular: not a vertex.
        std::swap(a[col], a[pivot]);
        for (int r = 0; r < n; ++r) {
          if (r == col) continue;
          const double f = a[r][col] / a[col][col];
          for (int c = col; c <= n; ++c) a[r][c] -= f * a[col][c];
        }
      }
      std::vector<double> x(n);
      for (int r = 0; r < n; ++r) x[r] = a[r][n] / a[r][r];
      // Feasibility.
      for (double v : x) {
        if (v < -1e-7) return;
      }
      for (const Con& con : cons) {
        double lhs = 0.0;
        for (int c = 0; c < n; ++c) lhs += con.coeffs[c] * x[c];
        if (lhs < con.rhs - 1e-6) return;
      }
      best = std::min(best, AverageLatency(x));
      return;
    }
    for (int i = start; i <= m - (n - depth); ++i) {
      idx[depth] = i;
      recurse(i + 1, depth + 1);
    }
  };
  recurse(0, 0);
  return best;
}

class MaoPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MaoPropertyTest, SimplexMatchesBruteForceVertexEnumeration) {
  Rng rng(GetParam());
  for (int n : {2, 3, 4}) {
    const RttMatrix rtt = RandomRtt(rng, n, 200.0);
    auto sol = SolveMao(rtt);
    ASSERT_TRUE(sol.ok());
    EXPECT_TRUE(SatisfiesLowerBound(rtt, sol.value()));
    const double brute = BruteForceMaoAverage(rtt);
    EXPECT_NEAR(AverageLatency(sol.value()), brute, 1e-5)
        << "n=" << n << " seed=" << GetParam();
  }
}

TEST_P(MaoPropertyTest, MaoNeverWorseThanAnalyticBaselines) {
  Rng rng(GetParam() ^ 0xABCD);
  for (int n : {3, 5, 8}) {
    const RttMatrix rtt = RandomRtt(rng, n, 300.0);
    const double mao = AverageLatency(SolveMao(rtt).value());
    for (int master = 0; master < n; ++master) {
      EXPECT_LE(mao, AverageLatency(MasterSlaveLatencies(rtt, master)) + 1e-6);
    }
    EXPECT_LE(mao, AverageLatency(MajorityLatencies(rtt)) + 1e-6);
  }
}

TEST_P(MaoPropertyTest, OffsetsAlwaysSatisfyRule1AndInvertThroughEq4) {
  Rng rng(GetParam() ^ 0x1234);
  for (int n : {3, 5, 7}) {
    const RttMatrix rtt = RandomRtt(rng, n, 250.0);
    const auto latencies = SolveMao(rtt).value();
    const auto offsets = CommitOffsetsFromLatencies(rtt, latencies);
    EXPECT_TRUE(ValidateOffsets(offsets).ok());
    const auto estimated = EstimateLatencies(rtt, offsets);
    for (int a = 0; a < n; ++a) {
      // Eq. 4 recovers at most the planned latency (exactly, when the
      // binding constraint is tight; never more).
      EXPECT_LE(estimated[a], latencies[a] + 1e-6);
      EXPECT_GE(estimated[a], -1e-9);
    }
  }
}

TEST_P(MaoPropertyTest, ThroughputOptimizerStaysFeasibleAndBeatsNothingWorse) {
  Rng rng(GetParam() ^ 0x7777);
  const RttMatrix rtt = RandomRtt(rng, 4, 150.0);
  const auto plan = OptimizeThroughput(rtt, 1.0);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(SatisfiesLowerBound(rtt, plan.value().latencies));
  const auto mao = SolveMao(rtt).value();
  EXPECT_GE(plan.value().rate_per_client, ThroughputRate(mao, 1.0) - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaoPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

TEST(SimplexPropertyTest, RandomFeasibleProblemsSolve) {
  Rng rng(4242);
  for (int trial = 0; trial < 50; ++trial) {
    const int n = 2 + static_cast<int>(rng.Uniform(4));
    LpProblem p;
    p.num_vars = n;
    for (int i = 0; i < n; ++i) {
      p.objective.push_back(0.1 + rng.NextDouble());
    }
    const int m = 1 + static_cast<int>(rng.Uniform(6));
    for (int c = 0; c < m; ++c) {
      std::vector<double> coeffs;
      for (int i = 0; i < n; ++i) coeffs.push_back(rng.NextDouble());
      p.AddGe(std::move(coeffs), rng.NextDouble() * 10.0);
    }
    auto sol = SolveLp(p);
    ASSERT_TRUE(sol.ok()) << "trial " << trial;
    // Verify feasibility of the reported solution.
    for (const auto& con : p.constraints) {
      double lhs = 0.0;
      for (int i = 0; i < n; ++i) lhs += con.coeffs[i] * sol.value().x[i];
      EXPECT_GE(lhs, con.rhs - 1e-6);
    }
    for (double x : sol.value().x) EXPECT_GE(x, -1e-9);
  }
}

}  // namespace
}  // namespace helios::lp
