// Tests for the file-backed production WAL (wal::FileWal): fsync-policy
// behavior, torn-tail repair on a real file, crisp interior-corruption
// errors, recovery equivalence across durability policies, and a random
// bit-flip/truncation sweep against RecoverFileWal on disk.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include "txn/transaction.h"
#include "wal/file_wal.h"
#include "wal/wal.h"

namespace helios::wal {
namespace {

std::string TempPath(const std::string& tag) {
  return ::testing::TempDir() + "/helios_file_wal_" + tag + "_" +
         std::to_string(::getpid()) + ".wal";
}

rdict::LogRecord MakeRecord(DcId origin, uint64_t seq, Timestamp ts) {
  rdict::LogRecord rec;
  rec.type = rdict::RecordType::kFinished;
  rec.committed = true;
  rec.ts = ts;
  rec.version_ts = ts + 1;
  rec.origin = origin;
  rec.body = MakeTxnBody(TxnId{origin, seq}, {},
                         {{"k" + std::to_string(seq), "v"}});
  return rec;
}

size_t FileSize(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return 0;
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  return size < 0 ? 0 : static_cast<size_t>(size);
}

std::vector<uint8_t> ReadAll(const std::string& path) {
  std::vector<uint8_t> bytes(FileSize(path));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  if (!bytes.empty()) {
    EXPECT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
  }
  std::fclose(f);
  return bytes;
}

void WriteAll(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  if (!bytes.empty()) {
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  }
  std::fclose(f);
}

/// Appends `records` frames (and one timetable) under `policy` and returns
/// what RecoverFileWal read back.
FileWalRecovery WriteAndRecover(const std::string& path, SyncPolicy policy,
                                uint64_t records) {
  std::remove(path.c_str());
  FileWalOptions options;
  options.policy = policy;
  {
    FileWal wal;
    EXPECT_TRUE(wal.Open(path, options).ok());
    for (uint64_t i = 1; i <= records; ++i) {
      EXPECT_TRUE(wal.AppendRecord(MakeRecord(i % 3, i, 10 * i)).ok());
    }
    rdict::Timetable table(3);
    table.Set(1, 2, 99);
    EXPECT_TRUE(wal.AppendTimetable(table).ok());
    wal.Close();
  }
  auto recovered = RecoverFileWal(path);
  EXPECT_TRUE(recovered.ok());
  return recovered.value();
}

TEST(FileWalTest, ParseSyncPolicySpellings) {
  EXPECT_EQ(ParseSyncPolicy("os").value(), SyncPolicy::kOsBuffered);
  EXPECT_EQ(ParseSyncPolicy("every").value(), SyncPolicy::kEveryRecord);
  EXPECT_EQ(ParseSyncPolicy("group").value(), SyncPolicy::kGroupCommit);
  EXPECT_FALSE(ParseSyncPolicy("always").ok());
  for (SyncPolicy p : {SyncPolicy::kOsBuffered, SyncPolicy::kEveryRecord,
                       SyncPolicy::kGroupCommit}) {
    EXPECT_EQ(ParseSyncPolicy(SyncPolicyName(p)).value(), p);
  }
}

TEST(FileWalTest, RecoveryIsEquivalentAcrossSyncPolicies) {
  // The durability policy decides when bytes reach the platter, never what
  // a clean-shutdown file replays to: all three policies must recover the
  // identical contents (fsync-every vs group-commit equivalence).
  constexpr uint64_t kRecords = 25;
  const FileWalRecovery every =
      WriteAndRecover(TempPath("eq_every"), SyncPolicy::kEveryRecord,
                      kRecords);
  const FileWalRecovery group =
      WriteAndRecover(TempPath("eq_group"), SyncPolicy::kGroupCommit,
                      kRecords);
  const FileWalRecovery os =
      WriteAndRecover(TempPath("eq_os"), SyncPolicy::kOsBuffered, kRecords);

  for (const FileWalRecovery* r : {&every, &group, &os}) {
    ASSERT_EQ(r->contents.records.size(), kRecords);
    EXPECT_TRUE(r->contents.has_timetable);
    EXPECT_FALSE(r->contents.truncated_tail);
    EXPECT_EQ(r->truncated_bytes, 0u);
    for (uint64_t i = 0; i < kRecords; ++i) {
      EXPECT_EQ(r->contents.records[i].ts,
                static_cast<Timestamp>(10 * (i + 1)));
      EXPECT_EQ(r->contents.records[i].body->id.seq, i + 1);
    }
  }
  EXPECT_EQ(every.valid_bytes, group.valid_bytes);
  EXPECT_EQ(every.valid_bytes, os.valid_bytes);
}

TEST(FileWalTest, EveryRecordPolicyFsyncsPerAppend) {
  const std::string path = TempPath("fsync_every");
  std::remove(path.c_str());
  FileWalOptions options;
  options.policy = SyncPolicy::kEveryRecord;
  FileWal wal;
  ASSERT_TRUE(wal.Open(path, options).ok());
  for (uint64_t i = 1; i <= 8; ++i) {
    ASSERT_TRUE(wal.AppendRecord(MakeRecord(0, i, i)).ok());
  }
  EXPECT_EQ(wal.fsyncs(), 8u);
  wal.Close();
}

TEST(FileWalTest, GroupCommitBatchesFsyncs) {
  const std::string path = TempPath("fsync_group");
  std::remove(path.c_str());
  FileWalOptions options;
  options.policy = SyncPolicy::kGroupCommit;
  options.group_commit_interval = std::chrono::seconds(3600);  // Never due.
  FileWal wal;
  ASSERT_TRUE(wal.Open(path, options).ok());
  for (uint64_t i = 1; i <= 100; ++i) {
    ASSERT_TRUE(wal.AppendRecord(MakeRecord(0, i, i)).ok());
  }
  EXPECT_EQ(wal.fsyncs(), 0u) << "interval never elapsed";
  ASSERT_TRUE(wal.SyncToDisk().ok());
  EXPECT_EQ(wal.fsyncs(), 1u);
  wal.Close();
  EXPECT_EQ(wal.fsyncs(), 1u) << "Close() after SyncToDisk has no dirt";
}

TEST(FileWalTest, TornTailIsPhysicallyTruncatedAndAppendable) {
  const std::string path = TempPath("torn");
  constexpr uint64_t kRecords = 10;
  (void)WriteAndRecover(path, SyncPolicy::kOsBuffered, kRecords);
  const size_t clean_size = FileSize(path);

  // Simulate a crash mid-append: a full header promising more payload
  // than the file holds.
  std::vector<uint8_t> bytes = ReadAll(path);
  const std::vector<uint8_t> torn = {0x31, 0x4C, 0x41, 0x57,  // kEntryMagic.
                                     0x01, 0xFF, 0x00, 0x00, 0x00,
                                     0xAA, 0xBB};
  bytes.insert(bytes.end(), torn.begin(), torn.end());
  WriteAll(path, bytes);

  auto recovered = RecoverFileWal(path);
  ASSERT_TRUE(recovered.ok());
  EXPECT_TRUE(recovered.value().contents.truncated_tail);
  EXPECT_EQ(recovered.value().contents.records.size(), kRecords);
  EXPECT_EQ(recovered.value().truncated_bytes, torn.size());
  EXPECT_EQ(recovered.value().valid_bytes, clean_size);
  // The repair is physical: the partial frame is gone from disk.
  EXPECT_EQ(FileSize(path), clean_size);

  // And the repaired file accepts appends on a clean frame boundary.
  {
    FileWal wal;
    ASSERT_TRUE(wal.Open(path, FileWalOptions{}).ok());
    ASSERT_TRUE(wal.AppendRecord(MakeRecord(1, 777, 12345)).ok());
    wal.Close();
  }
  auto again = RecoverFileWal(path);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again.value().contents.truncated_tail);
  ASSERT_EQ(again.value().contents.records.size(), kRecords + 1);
  EXPECT_EQ(again.value().contents.records.back().body->id.seq, 777u);
}

TEST(FileWalTest, InteriorCorruptionIsACrispErrorNamingTheOffset) {
  const std::string path = TempPath("interior");
  (void)WriteAndRecover(path, SyncPolicy::kOsBuffered, 10);
  std::vector<uint8_t> bytes = ReadAll(path);
  // Flip one payload byte in the middle of the file: a fully present
  // frame whose CRC no longer matches.
  bytes[bytes.size() / 2] ^= 0x40;
  WriteAll(path, bytes);

  auto recovered = RecoverFileWal(path);
  ASSERT_FALSE(recovered.ok());
  EXPECT_NE(recovered.status().message().find("WAL corrupt at offset"),
            std::string::npos)
      << recovered.status().ToString();
  // Forensics: the file must not be silently repaired.
  EXPECT_EQ(FileSize(path), bytes.size());
}

TEST(FileWalTest, MissingFileRecoversEmpty) {
  const std::string path = TempPath("missing");
  std::remove(path.c_str());
  auto recovered = RecoverFileWal(path);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered.value().contents.records.size(), 0u);
  EXPECT_FALSE(recovered.value().contents.truncated_tail);
}

TEST(FileWalTest, RandomCorruptionSweepOnDisk) {
  const std::string ref_path = TempPath("sweep_ref");
  constexpr uint64_t kRecords = 20;
  (void)WriteAndRecover(ref_path, SyncPolicy::kOsBuffered, kRecords);
  const std::vector<uint8_t> pristine = ReadAll(ref_path);
  std::remove(ref_path.c_str());

  const std::string path = TempPath("sweep");
  uint64_t rng = 0x5EEDull;
  auto next = [&rng]() {
    rng = rng * 6364136223846793005ull + 1442695040888963407ull;
    return rng >> 33;
  };
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<uint8_t> bytes = pristine;
    const bool truncated_trial = trial % 2 == 1;
    if (truncated_trial) {
      bytes.resize(next() % (bytes.size() + 1));
    } else {
      const uint64_t flips = 1 + next() % 4;
      for (uint64_t i = 0; i < flips; ++i) {
        bytes[next() % bytes.size()] ^=
            static_cast<uint8_t>(1u << (next() % 8));
      }
    }
    WriteAll(path, bytes);

    auto recovered = RecoverFileWal(path);
    if (!recovered.ok()) {
      // Only interior corruption may fail, and only crisply.
      EXPECT_FALSE(truncated_trial) << "trial " << trial;
      EXPECT_NE(
          recovered.status().message().find("WAL corrupt at offset"),
          std::string::npos)
          << "trial " << trial << ": " << recovered.status().ToString();
      continue;
    }
    const WalContents& c = recovered.value().contents;
    ASSERT_LE(c.records.size(), kRecords) << "trial " << trial;
    // Whatever survived must be an intact prefix-by-content: CRC-valid
    // frames decode to exactly what was written.
    for (size_t i = 0; i < c.records.size(); ++i) {
      if (truncated_trial) {
        EXPECT_EQ(c.records[i].ts, static_cast<Timestamp>(10 * (i + 1)))
            << "trial " << trial;
      }
    }
    if (truncated_trial) {
      // A truncation-only defect is always a torn tail; after the repair
      // a second recovery must be clean and identical.
      auto again = RecoverFileWal(path);
      ASSERT_TRUE(again.ok()) << "trial " << trial;
      EXPECT_FALSE(again.value().contents.truncated_tail)
          << "trial " << trial;
      EXPECT_EQ(again.value().contents.records.size(), c.records.size())
          << "trial " << trial;
    }
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace helios::wal
