// Tests for the experiment harness: topology construction, protocol
// factory coverage, determinism, metric sanity, and cross-protocol
// serializability through the full pipeline. Uses parameterized tests to
// sweep the protocol lineup.

#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "harness/topology.h"

namespace helios::harness {
namespace {

ExperimentConfig SmallConfig(Protocol p) {
  ExperimentConfig cfg;
  cfg.protocol = p;
  cfg.topology = Table2Topology();
  cfg.total_clients = 15;
  cfg.warmup = Seconds(2);
  cfg.measure = Seconds(5);
  cfg.workload.num_keys = 2000;
  cfg.check_serializability = true;
  return cfg;
}

TEST(TopologyTest, Table2MatchesPaper) {
  const Topology t = Table2Topology();
  ASSERT_EQ(t.size(), 5);
  EXPECT_EQ(t.names[0], "V");
  EXPECT_EQ(t.names[4], "S");
  EXPECT_DOUBLE_EQ(t.rtt_ms.Get(0, 4), 268.0);
  EXPECT_DOUBLE_EQ(t.rtt_ms.Get(1, 2), 19.0);
  EXPECT_DOUBLE_EQ(t.rtt_ms.Get(4, 0), 268.0);  // Symmetric.
}

TEST(TopologyTest, UniformTopology) {
  const Topology t = UniformTopology(4, 55.0, 3.0);
  for (int a = 0; a < 4; ++a) {
    for (int b = a + 1; b < 4; ++b) {
      EXPECT_DOUBLE_EQ(t.rtt_ms.Get(a, b), 55.0);
      EXPECT_DOUBLE_EQ(t.rtt_stddev_ms.Get(a, b), 3.0);
    }
  }
}

TEST(TopologyTest, ConfigureNetworkAppliesRtts) {
  sim::Scheduler scheduler;
  sim::Network network(&scheduler, 5, 1);
  ConfigureNetwork(Table2Topology(), &network);
  EXPECT_EQ(network.MeanRtt(0, 4), Millis(268));
  EXPECT_EQ(network.MeanRtt(1, 2), Millis(19));
}

TEST(ProtocolNameTest, AllNamed) {
  for (Protocol p :
       {Protocol::kHelios0, Protocol::kHelios1, Protocol::kHelios2,
        Protocol::kHeliosB, Protocol::kMessageFutures,
        Protocol::kReplicatedCommit, Protocol::kTwoPcPaxos}) {
    EXPECT_STRNE(ProtocolName(p), "?");
  }
}

TEST(PlanCommitOffsetsTest, SatisfiesRule1AndMatchesMao) {
  const Topology topo = Table2Topology();
  const auto offsets = PlanCommitOffsets(topo, std::nullopt);
  ASSERT_EQ(offsets.size(), 5u);
  for (int a = 0; a < 5; ++a) {
    EXPECT_EQ(offsets[a][a], 0);
    for (int b = a + 1; b < 5; ++b) {
      EXPECT_GE(offsets[a][b] + offsets[b][a], -1000)  // >= 0 modulo us rounding
          << a << "," << b;
    }
  }
}

class ProtocolSweepTest : public ::testing::TestWithParam<Protocol> {};

TEST_P(ProtocolSweepTest, RunsAndIsSerializable) {
  const ExperimentResult r = RunExperiment(SmallConfig(GetParam()));
  EXPECT_EQ(r.protocol, ProtocolName(GetParam()));
  ASSERT_EQ(r.per_dc.size(), 5u);
  uint64_t committed = 0;
  for (const auto& dc : r.per_dc) {
    committed += dc.committed;
    EXPECT_GE(dc.abort_rate, 0.0);
    EXPECT_LE(dc.abort_rate, 1.0);
  }
  EXPECT_GT(committed, 100u) << "protocol made no progress";
  EXPECT_GT(r.total_throughput_ops_s, 0.0);
  EXPECT_GT(r.avg_latency_ms, 0.0);
  ASSERT_TRUE(r.serializability.has_value());
  EXPECT_TRUE(r.serializability->ok()) << r.serializability->ToString();
}

TEST_P(ProtocolSweepTest, DeterministicGivenSeed) {
  ExperimentConfig cfg = SmallConfig(GetParam());
  cfg.measure = Seconds(3);
  cfg.check_serializability = false;
  const ExperimentResult a = RunExperiment(cfg);
  const ExperimentResult b = RunExperiment(cfg);
  EXPECT_EQ(a.total_throughput_ops_s, b.total_throughput_ops_s);
  EXPECT_EQ(a.avg_latency_ms, b.avg_latency_ms);
  EXPECT_EQ(a.events_processed, b.events_processed);
  for (size_t dc = 0; dc < a.per_dc.size(); ++dc) {
    EXPECT_EQ(a.per_dc[dc].committed, b.per_dc[dc].committed);
    EXPECT_EQ(a.per_dc[dc].aborted, b.per_dc[dc].aborted);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, ProtocolSweepTest,
    ::testing::Values(Protocol::kHelios0, Protocol::kHelios1,
                      Protocol::kHelios2, Protocol::kHeliosB,
                      Protocol::kMessageFutures, Protocol::kReplicatedCommit,
                      Protocol::kTwoPcPaxos),
    [](const ::testing::TestParamInfo<Protocol>& info) {
      std::string name = ProtocolName(info.param);
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(ExperimentTest, OptimalLatenciesReported) {
  ExperimentConfig cfg = SmallConfig(Protocol::kHelios0);
  cfg.measure = Seconds(3);
  cfg.check_serializability = false;
  const ExperimentResult r = RunExperiment(cfg);
  ASSERT_EQ(r.optimal_latency_ms.size(), 5u);
  EXPECT_NEAR(r.optimal_avg_latency_ms, 90.6, 0.01);
}

TEST(ExperimentTest, HeliosLatencyTracksOptimalShape) {
  ExperimentConfig cfg = SmallConfig(Protocol::kHelios0);
  cfg.check_serializability = false;
  const ExperimentResult r = RunExperiment(cfg);
  // Measured latency exceeds the optimum (overheads) but stays within a
  // small margin per datacenter, and the per-DC ordering follows the
  // optimal assignment: O and C fastest, S slowest.
  for (size_t dc = 0; dc < 5; ++dc) {
    EXPECT_GT(r.per_dc[dc].latency_mean_ms, r.optimal_latency_ms[dc] - 1.0);
    EXPECT_LT(r.per_dc[dc].latency_mean_ms, r.optimal_latency_ms[dc] + 40.0);
  }
  EXPECT_LT(r.per_dc[1].latency_mean_ms, r.per_dc[0].latency_mean_ms);
  EXPECT_LT(r.per_dc[2].latency_mean_ms, r.per_dc[0].latency_mean_ms);
  EXPECT_GT(r.per_dc[4].latency_mean_ms, r.per_dc[0].latency_mean_ms);
}

TEST(ExperimentTest, MeasuredLatenciesRespectLemma1) {
  // Lemma 1 applied to the measured system: for every pair, the sum of
  // measured Helios-0 latencies must be at least the RTT between them.
  ExperimentConfig cfg = SmallConfig(Protocol::kHelios0);
  cfg.check_serializability = false;
  const ExperimentResult r = RunExperiment(cfg);
  const Topology topo = Table2Topology();
  for (int a = 0; a < 5; ++a) {
    for (int b = a + 1; b < 5; ++b) {
      EXPECT_GE(r.per_dc[a].latency_mean_ms + r.per_dc[b].latency_mean_ms,
                topo.rtt_ms.Get(a, b))
          << topo.names[a] << "+" << topo.names[b];
    }
  }
}

TEST(ExperimentTest, SkewInjectionShiftsLatency) {
  ExperimentConfig base = SmallConfig(Protocol::kHelios0);
  base.check_serializability = false;
  const ExperimentResult synced = RunExperiment(base);

  ExperimentConfig skewed = base;
  skewed.clock_offsets = {Millis(100), 0, 0, 0, 0};
  const ExperimentResult ahead = RunExperiment(skewed);
  // Virginia's clock ahead: its own latency rises by roughly the skew
  // (Eq. 6), while the farthest peers are largely unaffected.
  EXPECT_GT(ahead.per_dc[0].latency_mean_ms,
            synced.per_dc[0].latency_mean_ms + 50.0);
}

TEST(ExperimentTest, RttEstimateOverrideChangesPlan) {
  ExperimentConfig cfg = SmallConfig(Protocol::kHelios0);
  cfg.check_serializability = false;
  cfg.measure = Seconds(4);
  lp::RttMatrix zero(5);
  cfg.rtt_estimate_ms = zero;  // "RTT estimation 2": all latencies planned 0.
  const ExperimentResult r = RunExperiment(cfg);
  // With zero offsets everywhere the commit wait becomes ~max one-way RTT,
  // so Oregon/California can no longer commit in ~15-30ms.
  EXPECT_GT(r.per_dc[1].latency_mean_ms, 80.0);
  EXPECT_GT(r.per_dc[2].latency_mean_ms, 80.0);
  // Serializability is preserved regardless of the estimate (Rule 1 holds
  // by construction).
}

}  // namespace
}  // namespace helios::harness
