// Regression corpus: every JSON spec under tests/corpus/ replays through
// the full fuzz pipeline (check::RunScenario) and must satisfy every
// invariant oracle. When the fuzzer finds and shrinks a new failure, the
// fix lands together with the repro JSON as a new corpus entry — the
// corpus is the fuzzer's long-term memory (docs/TESTING.md).

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "check/runner.h"
#include "harness/experiment_spec.h"

namespace helios::check {
namespace {

namespace fs = std::filesystem;

std::vector<fs::path> CorpusFiles() {
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(HELIOS_CORPUS_DIR)) {
    if (entry.path().extension() == ".json") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(CorpusReplay, CorpusIsNotEmpty) {
  EXPECT_GE(CorpusFiles().size(), 5u)
      << "tests/corpus/ lost its regression scenarios";
}

TEST(CorpusReplay, EveryEntryParsesValidatesAndPassesAllOracles) {
  for (const fs::path& path : CorpusFiles()) {
    SCOPED_TRACE(path.filename().string());
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good());
    std::ostringstream text;
    text << in.rdbuf();

    auto spec = harness::ExperimentSpec::FromJson(text.str());
    ASSERT_TRUE(spec.ok()) << spec.status().ToString();
    ASSERT_TRUE(spec.value().Validate().ok())
        << spec.value().Validate().ToString();

    const ScenarioVerdict verdict = RunScenario(spec.value());
    EXPECT_TRUE(verdict.ok()) << verdict.report.Summary();
  }
}

}  // namespace
}  // namespace helios::check
