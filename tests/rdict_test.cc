// Unit tests for the Replicated Dictionary substrate: timetable semantics,
// partial-log exchange, transitive propagation, and garbage collection.

#include <gtest/gtest.h>

#include <vector>

#include "rdict/replicated_log.h"
#include "rdict/timetable.h"
#include "txn/transaction.h"

namespace helios::rdict {
namespace {

TxnBodyPtr Body(DcId origin, uint64_t seq) {
  return MakeTxnBody(TxnId{origin, seq}, {}, {{"k" + std::to_string(seq), "v"}});
}

LogRecord Prep(DcId origin, uint64_t seq, Timestamp ts) {
  LogRecord rec;
  rec.type = RecordType::kPreparing;
  rec.ts = ts;
  rec.origin = origin;
  rec.body = Body(origin, seq);
  return rec;
}

TEST(TimetableTest, StartsAtMinimum) {
  Timetable t(3);
  for (DcId i = 0; i < 3; ++i) {
    for (DcId j = 0; j < 3; ++j) {
      EXPECT_EQ(t.Get(i, j), kMinTimestamp);
    }
  }
}

TEST(TimetableTest, AdvanceIsMonotone) {
  Timetable t(2);
  t.Advance(0, 1, 100);
  EXPECT_EQ(t.Get(0, 1), 100);
  t.Advance(0, 1, 50);  // Lower value never regresses the entry.
  EXPECT_EQ(t.Get(0, 1), 100);
  t.Advance(0, 1, 200);
  EXPECT_EQ(t.Get(0, 1), 200);
}

TEST(TimetableTest, MergeTakesElementwiseMaxAndAbsorbsSenderRow) {
  Timetable mine(3);
  mine.Set(0, 0, 10);
  Timetable theirs(3);
  theirs.Set(1, 1, 50);   // Sender's own knowledge.
  theirs.Set(1, 2, 30);   // Sender knows DC2 up to 30.
  theirs.Set(2, 2, 40);   // Sender's (stale) view of DC2's row.

  mine.MergeFrom(theirs, /*self=*/0, /*sender=*/1);
  EXPECT_EQ(mine.Get(0, 0), 10);   // Unchanged.
  EXPECT_EQ(mine.Get(0, 1), 50);   // Self row absorbed sender row.
  EXPECT_EQ(mine.Get(0, 2), 30);
  EXPECT_EQ(mine.Get(1, 1), 50);   // Element-wise max.
  EXPECT_EQ(mine.Get(2, 2), 40);
}

TEST(TimetableTest, MinColumnIsGcHorizon) {
  Timetable t(3);
  t.Set(0, 1, 100);
  t.Set(1, 1, 70);
  t.Set(2, 1, 90);
  EXPECT_EQ(t.MinColumn(1), 70);
}

TEST(TimetableTest, HasRecordUsesBound) {
  Timetable t(2);
  t.Set(1, 0, 25);
  EXPECT_TRUE(t.HasRecord(1, 0, 25));
  EXPECT_TRUE(t.HasRecord(1, 0, 10));
  EXPECT_FALSE(t.HasRecord(1, 0, 26));
}

TEST(ReplicatedLogTest, AppendRequiresIncreasingTimestamps) {
  ReplicatedLog log(0, 2);
  EXPECT_TRUE(log.AppendLocal(Prep(0, 1, 10)).ok());
  EXPECT_FALSE(log.AppendLocal(Prep(0, 2, 10)).ok());  // Not increasing.
  EXPECT_FALSE(log.AppendLocal(Prep(0, 2, 5)).ok());
  EXPECT_TRUE(log.AppendLocal(Prep(0, 2, 11)).ok());
  EXPECT_EQ(log.KnownUpTo(0), 11);
}

TEST(ReplicatedLogTest, RejectsForeignAppend) {
  ReplicatedLog log(0, 2);
  EXPECT_FALSE(log.AppendLocal(Prep(1, 1, 10)).ok());
}

TEST(ReplicatedLogTest, ExchangeDeliversRecordsOnce) {
  ReplicatedLog a(0, 2);
  ReplicatedLog b(1, 2);
  ASSERT_TRUE(a.AppendLocal(Prep(0, 1, 10)).ok());
  ASSERT_TRUE(a.AppendLocal(Prep(0, 2, 20)).ok());

  LogMessage msg = a.BuildMessageFor(1);
  EXPECT_EQ(msg.records.size(), 2u);
  std::vector<LogRecord> fresh = b.Ingest(msg);
  EXPECT_EQ(fresh.size(), 2u);
  EXPECT_EQ(b.KnownUpTo(0), 20);

  // Re-delivery of the same message is idempotent.
  fresh = b.Ingest(msg);
  EXPECT_TRUE(fresh.empty());

  // A does not know yet that B has the records, so it resends them...
  EXPECT_EQ(a.BuildMessageFor(1).records.size(), 2u);
  // ...until B's table (piggybacked on B's next message) reaches A.
  a.Ingest(b.BuildMessageFor(0));
  EXPECT_TRUE(a.BuildMessageFor(1).records.empty());
}

TEST(ReplicatedLogTest, IngestReturnsRecordsInOrder) {
  ReplicatedLog a(0, 3);
  ReplicatedLog c(2, 3);
  ASSERT_TRUE(a.AppendLocal(Prep(0, 1, 30)).ok());
  ASSERT_TRUE(a.AppendLocal(Prep(0, 2, 10)).ok() == false);  // Must increase.
  ASSERT_TRUE(a.AppendLocal(Prep(0, 2, 40)).ok());

  LogMessage msg = a.BuildMessageFor(2);
  std::vector<LogRecord> fresh = c.Ingest(msg);
  ASSERT_EQ(fresh.size(), 2u);
  EXPECT_LT(fresh[0].ts, fresh[1].ts);
}

TEST(ReplicatedLogTest, TransitivePropagation) {
  // A -> B -> C: C learns A's records without ever talking to A.
  ReplicatedLog a(0, 3);
  ReplicatedLog b(1, 3);
  ReplicatedLog c(2, 3);
  ASSERT_TRUE(a.AppendLocal(Prep(0, 1, 10)).ok());

  b.Ingest(a.BuildMessageFor(1));
  EXPECT_EQ(b.KnownUpTo(0), 10);

  std::vector<LogRecord> fresh = c.Ingest(b.BuildMessageFor(2));
  ASSERT_EQ(fresh.size(), 1u);
  EXPECT_EQ(fresh[0].origin, 0);
  EXPECT_EQ(c.KnownUpTo(0), 10);
  // And C's table knows that B knows A's record.
  EXPECT_TRUE(c.table().HasRecord(1, 0, 10));
}

TEST(ReplicatedLogTest, GarbageCollectionDropsUniversallyKnownRecords) {
  ReplicatedLog a(0, 2);
  ReplicatedLog b(1, 2);
  ASSERT_TRUE(a.AppendLocal(Prep(0, 1, 10)).ok());

  // Round trip: B learns the record, then A learns that B knows it.
  b.Ingest(a.BuildMessageFor(1));
  a.Ingest(b.BuildMessageFor(0));

  EXPECT_EQ(a.live_records(), 1u);
  EXPECT_EQ(a.GarbageCollect(), 1u);
  EXPECT_EQ(a.live_records(), 0u);

  // B learned from A's own table (piggybacked on the first message) that A
  // knows the record, so B can GC too.
  EXPECT_EQ(b.GarbageCollect(), 1u);
}

TEST(ReplicatedLogTest, GcPreservesUnknownRecords) {
  ReplicatedLog a(0, 3);
  ReplicatedLog b(1, 3);
  ASSERT_TRUE(a.AppendLocal(Prep(0, 1, 10)).ok());
  b.Ingest(a.BuildMessageFor(1));
  a.Ingest(b.BuildMessageFor(0));
  // Datacenter 2 has not seen the record: nobody may GC it.
  EXPECT_EQ(a.GarbageCollect(), 0u);
  EXPECT_EQ(a.live_records(), 1u);
}

TEST(ReplicatedLogTest, SnapshotIsOrdered) {
  ReplicatedLog a(0, 2);
  ASSERT_TRUE(a.AppendLocal(Prep(0, 1, 5)).ok());
  ASSERT_TRUE(a.AppendLocal(Prep(0, 2, 8)).ok());
  auto snap = a.Snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].ts, 5);
  EXPECT_EQ(snap[1].ts, 8);
}

// Property: after enough all-pairs exchange rounds, every log converges to
// the same record set and full mutual knowledge, regardless of append
// pattern.
TEST(ReplicatedLogTest, AllPairsExchangeConverges) {
  const int n = 4;
  std::vector<ReplicatedLog> logs;
  for (int i = 0; i < n; ++i) logs.emplace_back(i, n);

  Timestamp ts = 1;
  uint64_t seq = 1;
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < n; ++i) {
      ASSERT_TRUE(logs[i].AppendLocal(Prep(i, seq++, ts)).ok());
      ++ts;
    }
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        if (i != j) logs[j].Ingest(logs[i].BuildMessageFor(j));
      }
    }
  }
  // Two more gossip rounds to spread final tables.
  for (int round = 0; round < 2; ++round) {
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        if (i != j) logs[j].Ingest(logs[i].BuildMessageFor(j));
      }
    }
  }
  for (int i = 0; i < n; ++i) {
    for (int origin = 0; origin < n; ++origin) {
      EXPECT_EQ(logs[i].KnownUpTo(origin), logs[origin].KnownUpTo(origin));
    }
    // Everyone can GC everything.
    logs[i].GarbageCollect();
    EXPECT_EQ(logs[i].live_records(), 0u);
  }
}

}  // namespace
}  // namespace helios::rdict
