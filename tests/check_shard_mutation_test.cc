// Mutation smoke test for the multi-shard oracles: proves the fuzzer
// catches cross-shard atomicity bugs.
//
// HELIOS_CHECK_MUTATION=skip_staged_resolution makes the recovery-time
// status resolver skip the durable coordinator lookup and blindly
// re-finalize every staged intent as committed. A crash that lands while
// cross-shard transactions are mid-STAGED then commits slices whose
// coordinator aborted (or never decided) — exactly the bug class the
// shard_atomicity and staged_resolution oracles exist for. This test arms
// the mutation, fuzzes crash scenarios over a 2-shard Helios-1
// deployment, and asserts that (a) an oracle catches the bug within a
// bounded scenario budget and (b) the shrinker minimizes the repro while
// the same oracle keeps failing.
//
// Separate binary (not part of check_test or check_mutation_test): the
// mutation env var is latched on first use inside the shard layer, so it
// must be set before any sharded cluster exists in the process — and it
// must NOT leak into the other suites' processes.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "check/runner.h"
#include "check/scenario_gen.h"
#include "check/shrink.h"
#include "harness/experiment_spec.h"

namespace helios::check {
namespace {

namespace hns = helios::harness;

class MutationEnv : public ::testing::Environment {
 public:
  void SetUp() override {
    ASSERT_EQ(setenv("HELIOS_CHECK_MUTATION", "skip_staged_resolution", 1),
              0);
  }
};

const auto* const kEnv =
    ::testing::AddGlobalTestEnvironment(new MutationEnv);

/// Crash-heavy 2-shard Helios-1 scenarios: the mutation only fires on the
/// recovery path, so every scenario class except crashes is switched off
/// and the contention knobs keep enough cross-shard commits in flight
/// that a crash reliably lands on STAGED intents.
GeneratorOptions MutationHuntOptions() {
  GeneratorOptions options;
  options.protocols = {hns::Protocol::kHelios1};
  options.shard_counts = {2};
  options.crashes = true;
  options.partitions = false;
  options.message_faults = false;
  options.clock_skew = false;
  options.gray_faults = false;
  options.min_clients = 4;
  options.max_clients = 8;
  options.min_keys = 16;
  options.max_keys = 64;
  options.min_write_fraction = 0.7;
  options.max_write_fraction = 0.9;
  return options;
}

TEST(CheckShardMutation, FuzzerCatchesSkippedStagedResolutionAndShrinksIt) {
  const ScenarioGenerator generator(MutationHuntOptions());

  constexpr uint64_t kBudget = 30;  // Only ~40% of scenarios draw a crash.
  hns::ExperimentSpec failing;
  std::string oracle;
  for (uint64_t i = 0; i < kBudget; ++i) {
    const hns::ExperimentSpec spec = generator.Scenario(i);
    if (spec.fault_plan.node_events.empty()) continue;  // No crash, no bug.
    const ScenarioVerdict verdict = RunScenario(spec);
    if (!verdict.ok()) {
      failing = spec;
      oracle = verdict.report.FirstFailureName();
      break;
    }
  }
  ASSERT_FALSE(oracle.empty())
      << "the skip_staged_resolution mutation survived " << kBudget
      << " crash scenarios — the multi-shard oracles are blind to it";
  // Either multi-shard oracle may see it first: a blindly committed slice
  // next to an aborted sibling trips shard_atomicity, one next to a
  // STAGED/ABORTED status record trips staged_resolution.
  EXPECT_TRUE(oracle == "shard_atomicity" || oracle == "staged_resolution")
      << "unexpected first failure: " << oracle;

  ShrinkOptions options;
  options.max_runs = 60;
  const ShrinkResult shrunk = Shrink(failing, options);
  ASSERT_EQ(shrunk.oracle, oracle);
  EXPECT_LE(shrunk.runs, options.max_runs);
  // The crash/recover pair is load-bearing; everything else should boil
  // away. Two node events + maybe a leftover is an acceptable floor.
  EXPECT_LE(shrunk.fault_events, 3);
  EXPECT_GT(shrunk.spec.shards, 1)
      << "the shrinker unsharded the repro yet it still failed — the "
         "failure cannot be about cross-shard commit";

  // The shrunk spec round-trips through JSON and still reproduces.
  const auto parsed = hns::ExperimentSpec::FromJson(shrunk.spec.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_TRUE(parsed.value() == shrunk.spec);
  const ScenarioVerdict replay = RunScenario(parsed.value());
  EXPECT_EQ(replay.report.FirstFailureName(), oracle)
      << replay.report.Summary();
}

}  // namespace
}  // namespace helios::check
