// Unit suite for the phi-accrual math in src/health: monotone phi under
// silence, no false positives under jittered-but-regular heartbeats, and
// bit-for-bit determinism given seeded arrival sequences.

#include "health/phi_detector.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/types.h"

namespace helios::health {
namespace {

// Feeds `count` arrivals at a fixed cadence starting at t=0; returns the
// time of the last arrival.
int64_t FeedRegular(PhiDetector* d, int64_t period, int count) {
  int64_t t = 0;
  for (int i = 0; i < count; ++i) {
    d->Arrival(t);
    t += period;
  }
  return t - period;
}

TEST(PhiDetector, SilentBeforeFirstArrival) {
  PhiDetector d;
  EXPECT_EQ(d.Phi(0), 0.0);
  EXPECT_EQ(d.Phi(Seconds(100)), 0.0);
  EXPECT_FALSE(d.Suspected(Seconds(100)));
}

TEST(PhiDetector, PhiIsMonotoneUnderSilence) {
  PhiDetector d;
  const int64_t last = FeedRegular(&d, Millis(10), 40);
  double prev = d.Phi(last);
  for (int64_t t = last; t <= last + Seconds(2); t += Millis(5)) {
    const double phi = d.Phi(t);
    EXPECT_GE(phi, prev) << "phi regressed at t=" << t;
    prev = phi;
  }
  // Two seconds of silence after a steady 10 ms heartbeat is overwhelming
  // evidence, far beyond any sane threshold.
  EXPECT_GT(prev, 16.0);
}

TEST(PhiDetector, FreshArrivalResetsSuspicion) {
  PhiOptions opt;
  PhiDetector d(opt);
  const int64_t last = FeedRegular(&d, Millis(10), 40);
  ASSERT_TRUE(d.Suspected(last + Seconds(1)));
  d.Arrival(last + Seconds(1));
  EXPECT_FALSE(d.Suspected(last + Seconds(1) + Millis(1)));
  EXPECT_LT(d.Phi(last + Seconds(1) + Millis(1)), 1.0);
}

TEST(PhiDetector, NoFalsePositiveUnderJitteredHeartbeats) {
  // Heartbeats every 10 ms +- up to 40% jitter: the detector must ride
  // through the jitter without ever reaching the suspicion threshold when
  // queried right before each (late) arrival.
  PhiOptions opt;
  PhiDetector d(opt);
  Rng rng(1234);
  int64_t t = 0;
  double max_phi = 0.0;
  for (int i = 0; i < 2000; ++i) {
    const int64_t jitter =
        static_cast<int64_t>(rng.Uniform(8000)) - 4000;  // [-4ms, +4ms)
    const int64_t next = t + Millis(10) + jitter;
    if (i > 50) max_phi = std::max(max_phi, d.Phi(next));
    d.Arrival(next);
    t = next;
  }
  EXPECT_LT(max_phi, opt.threshold);
}

TEST(PhiDetector, SlowerCadenceNeedsProportionallyLongerSilence) {
  // The detector adapts to the observed cadence: the silence needed to
  // reach a given phi scales with the link's real heartbeat period.
  PhiDetector fast;
  PhiDetector slow;
  const int64_t f_last = FeedRegular(&fast, Millis(10), 64);
  const int64_t s_last = FeedRegular(&slow, Millis(100), 64);
  // 300 ms of silence: many periods for the fast link, three for the slow.
  EXPECT_GT(fast.Phi(f_last + Millis(300)), slow.Phi(s_last + Millis(300)));
  EXPECT_FALSE(slow.Suspected(s_last + Millis(150)));
}

TEST(PhiDetector, DeterministicGivenSeededArrivalSequence) {
  // Identical arrival sequences produce bit-identical phi trajectories —
  // the property the simulator's reproducibility discipline rests on.
  auto run = [](uint64_t seed) {
    PhiDetector d;
    Rng rng(seed);
    std::vector<double> phis;
    int64_t t = 0;
    for (int i = 0; i < 500; ++i) {
      t += Millis(5) + static_cast<int64_t>(rng.Uniform(10000));
      phis.push_back(d.Phi(t));
      d.Arrival(t);
    }
    phis.push_back(d.Phi(t + Seconds(1)));
    return phis;
  };
  const std::vector<double> a = run(99);
  const std::vector<double> b = run(99);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "diverged at sample " << i;
  }
  // A different seed must actually change the trajectory (the test above
  // would pass vacuously if phi ignored the arrivals).
  EXPECT_NE(run(99), run(100));
}

TEST(PhiDetector, BootstrapBeforeMinSamples) {
  PhiOptions opt;
  opt.bootstrap_interval = Millis(50);
  PhiDetector d(opt);
  d.Arrival(0);
  // One arrival = zero intervals: the bootstrap mean governs, so a silence
  // of a few bootstrap periods is already suspicious but a short one is not.
  EXPECT_EQ(d.MeanInterval(), static_cast<double>(Millis(50)));
  EXPECT_LT(d.Phi(Millis(20)), 1.0);
  EXPECT_GT(d.Phi(Seconds(2)), opt.threshold);
}

TEST(PhiDetector, WindowEvictsOldSamples) {
  PhiOptions opt;
  opt.window = 8;
  PhiDetector d(opt);
  // Old slow cadence fully evicted by a newer fast one.
  int64_t t = 0;
  for (int i = 0; i < 8; ++i) {
    d.Arrival(t);
    t += Millis(100);
  }
  for (int i = 0; i < 9; ++i) {
    d.Arrival(t);
    t += Millis(10);
  }
  EXPECT_EQ(d.samples(), 8);
  EXPECT_NEAR(d.MeanInterval(), static_cast<double>(Millis(10)), 1.0);
}

TEST(PeerHealth, TracksPeersIndependentlyAndIgnoresSelf) {
  PeerHealth h(3, /*self=*/0);
  for (int i = 0; i < 40; ++i) {
    h.OnArrival(1, Millis(10) * i);
    h.OnArrival(2, Millis(10) * i);
  }
  const int64_t now = Millis(10) * 39;
  // Peer 1 goes silent; peer 2 keeps talking.
  for (int i = 40; i < 140; ++i) h.OnArrival(2, Millis(10) * i);
  const int64_t later = Millis(10) * 139;
  EXPECT_TRUE(h.Suspected(1, later));
  EXPECT_FALSE(h.Suspected(2, later));
  EXPECT_EQ(h.Phi(0, later), 0.0);  // Never suspects itself.
  EXPECT_GT(h.Phi(1, later), h.Phi(1, now));
}

}  // namespace
}  // namespace helios::health
