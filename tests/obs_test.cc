// Unit tests for the observability subsystem (src/obs): the trace
// recorder's ring-buffer semantics and Chrome-trace export, lane
// assignment, histograms, and registry snapshots.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "json_check.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace helios::obs {
namespace {

using helios::testing::IsValidJson;

TxnId Txn(uint64_t seq) { return TxnId{0, seq}; }

// ---------------------------------------------------------------- Trace --

TEST(TraceRecorderTest, RecordsInOrder) {
  TraceRecorder rec(16);
  rec.Instant(EventKind::kClientIssue, 0, Txn(1), 100);
  rec.Span(EventKind::kTxnQueue, 1, Txn(1), 150, 250);
  rec.Instant(EventKind::kTxnCommit, 1, Txn(1), 300);

  const auto events = rec.Events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, EventKind::kClientIssue);
  EXPECT_EQ(events[0].ts_us, 100);
  EXPECT_LT(events[0].dur_us, 0);  // Instants carry no duration.
  EXPECT_EQ(events[1].kind, EventKind::kTxnQueue);
  EXPECT_EQ(events[1].ts_us, 150);
  EXPECT_EQ(events[1].dur_us, 100);
  EXPECT_EQ(events[2].ts_us, 300);
  EXPECT_EQ(rec.total_recorded(), 3u);
  EXPECT_EQ(rec.dropped(), 0u);
}

TEST(TraceRecorderTest, SpanClampsNegativeDuration) {
  TraceRecorder rec(4);
  rec.Span(EventKind::kNetHop, 0, Txn(1), 500, 400);  // end < start
  const auto events = rec.Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].dur_us, 0);
}

TEST(TraceRecorderTest, RingEvictsOldestBeyondCapacity) {
  TraceRecorder rec(4);
  for (int i = 0; i < 6; ++i) {
    rec.Instant(EventKind::kTxnRequest, 0, Txn(static_cast<uint64_t>(i)),
                i * 10);
  }
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.capacity(), 4u);
  EXPECT_EQ(rec.total_recorded(), 6u);
  EXPECT_EQ(rec.dropped(), 2u);

  // The newest 4 survive, oldest first.
  const auto events = rec.Events();
  ASSERT_EQ(events.size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].txn.seq, i + 2);
    EXPECT_EQ(events[i].ts_us, static_cast<int64_t>((i + 2) * 10));
  }
}

TEST(TraceRecorderTest, ClearResetsRetainedButNotTotals) {
  TraceRecorder rec(4);
  rec.Instant(EventKind::kTxnRequest, 0, Txn(1), 10);
  rec.Clear();
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_TRUE(rec.Events().empty());
  // Further recording works after a clear.
  rec.Instant(EventKind::kTxnRequest, 0, Txn(2), 20);
  EXPECT_EQ(rec.size(), 1u);
}

TEST(TraceRecorderTest, KindNamesAreStableAndDistinct) {
  std::vector<std::string> names;
  for (int k = static_cast<int>(EventKind::kClientIssue);
       k <= static_cast<int>(EventKind::kNetDrop); ++k) {
    names.emplace_back(KindName(static_cast<EventKind>(k)));
  }
  for (size_t i = 0; i < names.size(); ++i) {
    EXPECT_FALSE(names[i].empty());
    for (size_t j = i + 1; j < names.size(); ++j) {
      EXPECT_NE(names[i], names[j]);
    }
  }
  EXPECT_STREQ(KindName(EventKind::kCommitWait), "txn.commit_wait");
  EXPECT_TRUE(IsSpanKind(EventKind::kCommitWait));
  EXPECT_FALSE(IsSpanKind(EventKind::kTxnCommit));
}

TEST(AssignLanesTest, NonOverlappingSpansShareLaneZero) {
  TraceEvent a, b;
  a.ts_us = 0;
  a.dur_us = 10;
  b.ts_us = 20;
  b.dur_us = 10;
  const std::vector<const TraceEvent*> spans = {&a, &b};
  EXPECT_EQ(AssignLanes(spans), (std::vector<int>{0, 0}));
}

TEST(AssignLanesTest, OverlappingSpansGetDistinctLanes) {
  // Three mutually overlapping spans need three lanes; a fourth starting
  // after the first ends reuses lane 0.
  TraceEvent a, b, c, d;
  a.ts_us = 0;
  a.dur_us = 100;
  b.ts_us = 10;
  b.dur_us = 100;
  c.ts_us = 20;
  c.dur_us = 100;
  d.ts_us = 150;
  d.dur_us = 10;
  const std::vector<const TraceEvent*> spans = {&a, &b, &c, &d};
  const auto lanes = AssignLanes(spans);
  ASSERT_EQ(lanes.size(), 4u);
  EXPECT_EQ(lanes[0], 0);
  EXPECT_EQ(lanes[1], 1);
  EXPECT_EQ(lanes[2], 2);
  EXPECT_EQ(lanes[3], 0);
}

TEST(TraceRecorderTest, ExportsValidChromeTraceJson) {
  TraceRecorder rec(64);
  rec.Instant(EventKind::kClientIssue, 0, Txn(1), 100);
  rec.Span(EventKind::kClientCommit, 0, Txn(1), 100, 900, kInvalidDc,
           "committed");
  rec.Span(EventKind::kNetHop, 0, Txn(1), 120, 220, /*peer=*/2);
  // Detail with every character class the escaper must handle.
  rec.Instant(EventKind::kTxnAbort, 2, Txn(2), 500, kInvalidDc,
              "quote\" slash\\ newline\n tab\t ctrl\x01");

  std::ostringstream os;
  rec.ExportChromeTrace(os);
  const std::string json = os.str();

  EXPECT_TRUE(IsValidJson(json));
  // Structural spot checks: the trace_event envelope, one complete event
  // per span, one instant event, and process metadata.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("client.commit"), std::string::npos);
  EXPECT_NE(json.find("net.hop"), std::string::npos);
  EXPECT_NE(json.find("\\u0001"), std::string::npos);
}

TEST(TraceRecorderTest, EmptyExportIsValidJson) {
  TraceRecorder rec(4);
  std::ostringstream os;
  rec.ExportChromeTrace(os);
  EXPECT_TRUE(IsValidJson(os.str()));
}

// -------------------------------------------------------------- Metrics --

TEST(HistogramTest, BucketsAndStats) {
  Histogram h({10.0, 20.0, 40.0});
  h.Observe(5.0);    // bucket 0 (<= 10)
  h.Observe(10.0);   // bucket 0 (inclusive upper bound)
  h.Observe(15.0);   // bucket 1
  h.Observe(100.0);  // overflow

  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 130.0);
  EXPECT_DOUBLE_EQ(h.mean(), 32.5);
  EXPECT_DOUBLE_EQ(h.min(), 5.0);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  ASSERT_EQ(h.buckets().size(), 4u);
  EXPECT_EQ(h.buckets()[0], 2u);
  EXPECT_EQ(h.buckets()[1], 1u);
  EXPECT_EQ(h.buckets()[2], 0u);
  EXPECT_EQ(h.buckets()[3], 1u);
}

TEST(HistogramTest, EmptyHistogramIsAllZero) {
  Histogram h(DefaultLatencyBucketsUs());
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
}

TEST(HistogramTest, QuantileIsMonotoneAndWithinRange) {
  Histogram h(DefaultLatencyBucketsUs());
  for (int i = 1; i <= 1000; ++i) h.Observe(i * 100.0);  // 100us .. 100ms
  double prev = 0.0;
  for (double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    const double v = h.Quantile(q);
    EXPECT_GE(v, prev);
    EXPECT_GE(v, h.min());
    EXPECT_LE(v, h.max());
    prev = v;
  }
  // The median of a uniform 100..100000 spread lands mid-range (bucket
  // interpolation, so allow a loose factor-of-two window).
  EXPECT_GT(h.Quantile(0.5), 25'000.0);
  EXPECT_LT(h.Quantile(0.5), 100'000.0);
}

TEST(MetricsRegistryTest, LookupCreatesAndReturnsStableRefs) {
  MetricsRegistry reg;
  Counter& c = reg.counter("x");
  c.Inc();
  reg.counter("x").Inc(2);
  EXPECT_EQ(reg.counter("x").value(), 3u);
  reg.gauge("g").Set(1.5);
  EXPECT_DOUBLE_EQ(reg.gauge("g").value(), 1.5);
  Histogram& h = reg.histogram("h", {1.0, 2.0});
  h.Observe(1.0);
  // Bounds apply only on first creation.
  EXPECT_EQ(reg.histogram("h", {99.0}).bounds().size(), 2u);
}

TEST(MetricsRegistryTest, SnapshotIsInsertionOrderIndependent) {
  MetricsRegistry a;
  a.counter("one").Set(1);
  a.counter("two").Set(2);
  a.gauge("g1").Set(0.5);
  a.histogram("h1", {10.0}).Observe(3.0);

  MetricsRegistry b;  // Same content, reversed insertion order.
  b.histogram("h1", {10.0}).Observe(3.0);
  b.gauge("g1").Set(0.5);
  b.counter("two").Set(2);
  b.counter("one").Set(1);

  EXPECT_EQ(a.Snapshot().ToJson(), b.Snapshot().ToJson());
  EXPECT_EQ(a.Snapshot().ToCsv(), b.Snapshot().ToCsv());
}

TEST(MetricsSnapshotTest, JsonValidAndCsvHasAllScalars) {
  MetricsRegistry reg;
  reg.counter("commits").Set(42);
  reg.gauge("pool").Set(7.25);
  reg.histogram("lat_us", {100.0, 200.0}).Observe(150.0);
  const MetricsSnapshot snap = reg.Snapshot();

  EXPECT_FALSE(snap.empty());
  ASSERT_NE(snap.FindCounter("commits"), nullptr);
  EXPECT_EQ(snap.FindCounter("commits")->value, 42u);
  EXPECT_EQ(snap.FindCounter("missing"), nullptr);
  ASSERT_NE(snap.FindHistogram("lat_us"), nullptr);
  EXPECT_EQ(snap.FindHistogram("lat_us")->count, 1u);

  EXPECT_TRUE(IsValidJson(snap.ToJson()));
  const std::string csv = snap.ToCsv();
  EXPECT_NE(csv.find("counter,commits"), std::string::npos);
  EXPECT_NE(csv.find("gauge,pool"), std::string::npos);
  EXPECT_NE(csv.find("histogram,lat_us"), std::string::npos);
}

}  // namespace
}  // namespace helios::obs
