// Tests for deployment-configuration validation, plus an end-to-end
// demonstration of WHY Rule 1 matters: a configuration that violates it
// lets two conflicting concurrent transactions both commit.

#include <gtest/gtest.h>

#include <memory>

#include "core/config_validation.h"
#include "core/helios_cluster.h"
#include "core/history.h"
#include "harness/experiment.h"
#include "harness/topology.h"
#include "sim/network.h"
#include "sim/scheduler.h"

namespace helios::core {
namespace {

HeliosConfig GoodConfig() {
  HeliosConfig cfg;
  cfg.num_datacenters = 3;
  cfg.commit_offsets = {{0, Millis(5), -Millis(3)},
                        {-Millis(5), 0, Millis(10)},
                        {Millis(3), -Millis(10), 0}};
  return cfg;
}

TEST(ConfigValidationTest, GoodConfigPasses) {
  EXPECT_TRUE(ValidateHeliosConfig(GoodConfig()).ok());
}

TEST(ConfigValidationTest, EmptyOffsetsAreFine) {
  HeliosConfig cfg;
  cfg.num_datacenters = 4;
  EXPECT_TRUE(ValidateHeliosConfig(cfg).ok());  // Helios-B.
}

TEST(ConfigValidationTest, TooFewDatacenters) {
  HeliosConfig cfg;
  cfg.num_datacenters = 1;
  EXPECT_FALSE(ValidateHeliosConfig(cfg).ok());
}

TEST(ConfigValidationTest, BadIntervals) {
  HeliosConfig cfg = GoodConfig();
  cfg.log_interval = 0;
  EXPECT_FALSE(ValidateHeliosConfig(cfg).ok());
  cfg = GoodConfig();
  cfg.client_link_one_way = -1;
  EXPECT_FALSE(ValidateHeliosConfig(cfg).ok());
}

TEST(ConfigValidationTest, FaultToleranceBounds) {
  HeliosConfig cfg = GoodConfig();
  cfg.fault_tolerance = 3;  // == n: impossible.
  EXPECT_FALSE(ValidateHeliosConfig(cfg).ok());
  cfg.fault_tolerance = -1;
  EXPECT_FALSE(ValidateHeliosConfig(cfg).ok());
  cfg.fault_tolerance = 2;
  EXPECT_TRUE(ValidateHeliosConfig(cfg).ok());
  cfg.grace_time = 0;
  EXPECT_FALSE(ValidateHeliosConfig(cfg).ok());
}

TEST(ConfigValidationTest, OffsetShapeErrors) {
  HeliosConfig cfg = GoodConfig();
  cfg.commit_offsets.pop_back();
  EXPECT_FALSE(ValidateHeliosConfig(cfg).ok());
  cfg = GoodConfig();
  cfg.commit_offsets[1].pop_back();
  EXPECT_FALSE(ValidateHeliosConfig(cfg).ok());
  cfg = GoodConfig();
  cfg.commit_offsets[2][2] = Millis(1);
  EXPECT_FALSE(ValidateHeliosConfig(cfg).ok());
}

TEST(ConfigValidationTest, ClockOffsetSize) {
  HeliosConfig cfg = GoodConfig();
  cfg.clock_offsets = {0, 0};  // Needs 3.
  EXPECT_FALSE(ValidateHeliosConfig(cfg).ok());
  cfg.clock_offsets = {0, Millis(5), -Millis(5)};
  EXPECT_TRUE(ValidateHeliosConfig(cfg).ok());
}

TEST(ConfigValidationTest, Rule1ViolationDetected) {
  HeliosConfig cfg = GoodConfig();
  cfg.commit_offsets[0][1] = -Millis(20);
  cfg.commit_offsets[1][0] = Millis(10);  // Sum -10ms < 0.
  const Status s = ValidateHeliosConfig(cfg);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(s.message().find("Rule 1"), std::string::npos);
  EXPECT_NE(s.message().find("UNSAFE"), std::string::npos);
}

TEST(ConfigValidationTest, MaoPlannedOffsetsAlwaysValidate) {
  HeliosConfig cfg;
  cfg.num_datacenters = 5;
  cfg.commit_offsets = harness::PlanCommitOffsets(
      harness::Table2Topology(), std::nullopt);
  EXPECT_TRUE(ValidateHeliosConfig(cfg).ok());
}

// The demonstration: run a deliberately Rule-1-violating configuration and
// show that conflicting concurrent transactions CAN both commit — the
// exact anomaly the validator exists to prevent. (This is the only test
// in the repository that is allowed to produce a non-serializable
// history.)
TEST(ConfigValidationTest, Rule1ViolationActuallyBreaksSafety) {
  sim::Scheduler scheduler;
  sim::Network network(&scheduler, 2, 1);
  harness::ConfigureNetwork(harness::UniformTopology(2, 100.0), &network);
  HeliosConfig cfg;
  cfg.num_datacenters = 2;
  cfg.log_interval = Millis(5);
  // Both sides assume the other will wait — neither does. Sum = -80ms.
  cfg.commit_offsets = {{0, -Millis(40)}, {-Millis(40), 0}};
  ASSERT_FALSE(ValidateHeliosConfig(cfg).ok());

  HeliosCluster cluster(&scheduler, &network, std::move(cfg));
  cluster.Start();
  int commits = 0;
  scheduler.At(Millis(200), [&] {
    // Concurrent conflicting blind writes from both datacenters. With
    // co = -40ms each side's knowledge wait is satisfiable from history
    // it already has, so both commit before either sees the other.
    cluster.ClientCommit(0, {}, {{"x", "a"}},
                         [&](const CommitOutcome& o) { commits += o.committed; });
    cluster.ClientCommit(1, {}, {{"x", "b"}},
                         [&](const CommitOutcome& o) { commits += o.committed; });
  });
  scheduler.RunUntil(Seconds(3));
  EXPECT_EQ(commits, 2) << "expected the misconfiguration to double-commit "
                           "(if this fails, the scenario needs retuning, "
                           "not the protocol)";
}

}  // namespace
}  // namespace helios::core
