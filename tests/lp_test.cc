// Tests for the simplex solver and the commit-latency planning layer:
// MAO (Problem 1), commit offsets (Eq. 4/5), the Table 1 analytic models,
// and the Appendix A.2 throughput optimizer.

#include <gtest/gtest.h>

#include <cmath>

#include "lp/mao.h"
#include "lp/simplex.h"

namespace helios::lp {
namespace {

TEST(SimplexTest, SimpleTwoVariableProblem) {
  // minimize x + y  s.t.  x + y >= 10, x >= 2  ->  objective 10.
  LpProblem p;
  p.num_vars = 2;
  p.objective = {1.0, 1.0};
  p.AddGe({1.0, 1.0}, 10.0);
  p.AddGe({1.0, 0.0}, 2.0);
  auto sol = SolveLp(p);
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();
  EXPECT_NEAR(sol.value().objective_value, 10.0, 1e-6);
  EXPECT_GE(sol.value().x[0], 2.0 - 1e-9);
}

TEST(SimplexTest, DegenerateAndRedundantConstraints) {
  LpProblem p;
  p.num_vars = 2;
  p.objective = {1.0, 2.0};
  p.AddGe({1.0, 0.0}, 5.0);
  p.AddGe({1.0, 0.0}, 5.0);  // Duplicate.
  p.AddGe({2.0, 0.0}, 10.0);  // Redundant multiple.
  auto sol = SolveLp(p);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol.value().objective_value, 5.0, 1e-6);
  EXPECT_NEAR(sol.value().x[1], 0.0, 1e-9);
}

TEST(SimplexTest, UnboundedDetected) {
  // minimize -x  s.t. x >= 1: pushing x up forever.
  LpProblem p;
  p.num_vars = 1;
  p.objective = {-1.0};
  p.AddGe({1.0}, 1.0);
  auto sol = SolveLp(p);
  ASSERT_FALSE(sol.ok());
  EXPECT_EQ(sol.status().code(), StatusCode::kAborted);
}

TEST(SimplexTest, NoConstraintsMinimizesAtZero) {
  LpProblem p;
  p.num_vars = 3;
  p.objective = {1.0, 2.0, 3.0};
  auto sol = SolveLp(p);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol.value().objective_value, 0.0, 1e-9);
}

TEST(SimplexTest, ShapeValidation) {
  LpProblem p;
  p.num_vars = 2;
  p.objective = {1.0};  // Wrong size.
  EXPECT_FALSE(SolveLp(p).ok());
}

TEST(SimplexTest, LargerRandomlyStructuredProblem) {
  // minimize sum x_i subject to x_i + x_j >= i + j for a clique of 8:
  // the optimum is x_i = i (verified: tight on adjacent pairs).
  LpProblem p;
  const int n = 8;
  p.num_vars = n;
  p.objective.assign(n, 1.0);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      std::vector<double> c(n, 0.0);
      c[i] = 1.0;
      c[j] = 1.0;
      p.AddGe(std::move(c), static_cast<double>(i + j));
    }
  }
  auto sol = SolveLp(p);
  ASSERT_TRUE(sol.ok());
  double expected = 0.0;
  for (int i = 0; i < n; ++i) expected += i;
  EXPECT_NEAR(sol.value().objective_value, expected, 1e-6);
}

// --- MAO ----------------------------------------------------------------------

RttMatrix PaperExampleRtt() {
  // Section 3.2 example: RTT(A,B)=30, RTT(A,C)=20, RTT(B,C)=40.
  RttMatrix rtt(3);
  rtt.Set(0, 1, 30);
  rtt.Set(0, 2, 20);
  rtt.Set(1, 2, 40);
  return rtt;
}

RttMatrix Table2Rtt() {
  // Table 2, order V O C I S.
  RttMatrix rtt(5);
  rtt.Set(0, 1, 66);
  rtt.Set(0, 2, 78);
  rtt.Set(0, 3, 84);
  rtt.Set(0, 4, 268);
  rtt.Set(1, 2, 19);
  rtt.Set(1, 3, 175);
  rtt.Set(1, 4, 210);
  rtt.Set(2, 3, 175);
  rtt.Set(2, 4, 182);
  rtt.Set(3, 4, 194);
  return rtt;
}

TEST(MaoTest, PaperThreeDatacenterExample) {
  // Table 1's MAO row: latencies 5 / 25 / 15, average 15.
  auto mao = SolveMao(PaperExampleRtt());
  ASSERT_TRUE(mao.ok());
  const auto& l = mao.value();
  EXPECT_NEAR(l[0], 5.0, 1e-6);
  EXPECT_NEAR(l[1], 25.0, 1e-6);
  EXPECT_NEAR(l[2], 15.0, 1e-6);
  EXPECT_NEAR(AverageLatency(l), 15.0, 1e-6);
  EXPECT_TRUE(SatisfiesLowerBound(PaperExampleRtt(), l));
}

TEST(MaoTest, Table2OptimalLatencies) {
  // Section 5.1 reports optimal latencies 69/10/10/166/200 (V O C I S),
  // average 91ms. The true optimum of that LP is in fact avg 90.6ms
  // (e.g. 68/10/10/165/200 satisfies every pair constraint), so the
  // paper's published assignment is feasible but ~0.4ms off optimal —
  // see EXPERIMENTS.md. We assert our solution is feasible and at least
  // as good as the paper's.
  auto mao = SolveMao(Table2Rtt());
  ASSERT_TRUE(mao.ok());
  const auto& l = mao.value();
  EXPECT_TRUE(SatisfiesLowerBound(Table2Rtt(), l));
  EXPECT_LE(AverageLatency(l), 91.0 + 1e-6);
  EXPECT_NEAR(AverageLatency(l), 90.6, 1e-6);
  // The paper's own assignment is feasible (sanity check on the data).
  EXPECT_TRUE(SatisfiesLowerBound(Table2Rtt(), {69, 10, 10, 166, 200}));
}

TEST(MaoTest, TwoDatacentersSplitTheRtt) {
  RttMatrix rtt(2);
  rtt.Set(0, 1, 100);
  auto mao = SolveMao(rtt);
  ASSERT_TRUE(mao.ok());
  EXPECT_NEAR(mao.value()[0] + mao.value()[1], 100.0, 1e-6);
  EXPECT_NEAR(AverageLatency(mao.value()), 50.0, 1e-6);
}

TEST(MaoTest, MasterSlaveMatchesTable1) {
  const auto a_master = MasterSlaveLatencies(PaperExampleRtt(), 0);
  EXPECT_NEAR(AverageLatency(a_master), 50.0 / 3.0, 1e-6);  // 16.67
  const auto c_master = MasterSlaveLatencies(PaperExampleRtt(), 2);
  EXPECT_NEAR(AverageLatency(c_master), 20.0, 1e-6);
  EXPECT_TRUE(SatisfiesLowerBound(PaperExampleRtt(), a_master));
  EXPECT_TRUE(SatisfiesLowerBound(PaperExampleRtt(), c_master));
}

TEST(MaoTest, MajorityMatchesTable1) {
  const auto l = MajorityLatencies(PaperExampleRtt());
  // Paper Table 1: 20 / 30 / 20, average 23.33.
  EXPECT_NEAR(l[0], 20.0, 1e-6);
  EXPECT_NEAR(l[1], 30.0, 1e-6);
  EXPECT_NEAR(l[2], 20.0, 1e-6);
  EXPECT_NEAR(AverageLatency(l), 70.0 / 3.0, 1e-6);
}

TEST(MaoTest, MaoBeatsEveryTable1Alternative) {
  const auto rtt = PaperExampleRtt();
  const double mao = AverageLatency(SolveMao(rtt).value());
  EXPECT_LT(mao, AverageLatency(MasterSlaveLatencies(rtt, 0)));
  EXPECT_LT(mao, AverageLatency(MasterSlaveLatencies(rtt, 1)));
  EXPECT_LT(mao, AverageLatency(MasterSlaveLatencies(rtt, 2)));
  EXPECT_LT(mao, AverageLatency(MajorityLatencies(rtt)));
}

TEST(OffsetsTest, RoundTripThroughEquations4And5) {
  const auto rtt = Table2Rtt();
  const auto latencies = SolveMao(rtt).value();
  const auto offsets = CommitOffsetsFromLatencies(rtt, latencies);
  // Rule 1 must hold by construction (Section 4.5 "Correctness").
  EXPECT_TRUE(ValidateOffsets(offsets).ok());
  // Eq. 4 recovers the latencies from the offsets.
  const auto estimated = EstimateLatencies(rtt, offsets);
  for (size_t i = 0; i < latencies.size(); ++i) {
    EXPECT_NEAR(estimated[i], latencies[i], 1e-6) << i;
  }
}

TEST(OffsetsTest, Rule1ViolationDetected) {
  std::vector<std::vector<double>> offsets = {{0, -5}, {3, 0}};  // Sum -2.
  EXPECT_FALSE(ValidateOffsets(offsets).ok());
  offsets[1][0] = 5.0;
  EXPECT_TRUE(ValidateOffsets(offsets).ok());
}

TEST(OffsetsTest, ZeroRttEstimateGivesZeroLatencyOffsets) {
  // Figure 5's "RTT estimation 2": assuming zero RTTs assigns everyone a
  // commit latency of zero, i.e. offsets equal to -RTT/2 under the truth.
  RttMatrix zero(3);
  const auto latencies = SolveMao(zero).value();
  for (double l : latencies) EXPECT_NEAR(l, 0.0, 1e-9);
  const auto offsets = CommitOffsetsFromLatencies(zero, latencies);
  EXPECT_TRUE(ValidateOffsets(offsets).ok());
}

// --- Appendix A.2 throughput optimization ---------------------------------------

TEST(ThroughputTest, RateFormula) {
  // Paper: assignment 5/25/15 yields 1000*(1/5+1/25+1/15) = 306.66 txns/s
  // per client (with zero execution overhead; we use the same numbers with
  // overhead folded into the latencies for the check).
  const double rate = ThroughputRate({5.0, 25.0, 15.0}, 0.0 + 1e-12);
  EXPECT_NEAR(rate, 306.66, 0.1);
  const double alt = ThroughputRate({1.0, 29.0, 19.0}, 1e-12);
  EXPECT_NEAR(alt, 1087.11, 0.1);
}

TEST(ThroughputTest, OptimizerBeatsMaoOnPaperExample) {
  auto plan = OptimizeThroughput(PaperExampleRtt(), /*overhead_ms=*/1.0);
  ASSERT_TRUE(plan.ok());
  const auto mao = SolveMao(PaperExampleRtt()).value();
  EXPECT_GT(plan.value().rate_per_client, ThroughputRate(mao, 1.0));
  EXPECT_TRUE(SatisfiesLowerBound(PaperExampleRtt(), plan.value().latencies));
}

TEST(ThroughputTest, RejectsZeroOverhead) {
  EXPECT_FALSE(OptimizeThroughput(PaperExampleRtt(), 0.0).ok());
}

TEST(RttMatrixTest, MapTransformsEntries) {
  auto rtt = PaperExampleRtt();
  auto doubled = rtt.Map([](int, int, double v) { return v * 2.0; });
  EXPECT_NEAR(doubled.Get(0, 1), 60.0, 1e-9);
  EXPECT_NEAR(doubled.Get(1, 2), 80.0, 1e-9);
  EXPECT_NEAR(rtt.Get(0, 1), 30.0, 1e-9);  // Original untouched.
}

}  // namespace
}  // namespace helios::lp
