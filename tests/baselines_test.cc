// Integration tests for the comparison baselines of Section 5.2:
// Replicated Commit (majority locking + accept round) and 2PC/Paxos
// (coordinator 2PL + leader-lease Paxos replication).

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "baselines/replicated_commit.h"
#include "baselines/two_pc_paxos.h"
#include "common/random.h"
#include "core/history.h"
#include "sim/network.h"
#include "sim/scheduler.h"

namespace helios::baselines {
namespace {

struct Rig {
  sim::Scheduler scheduler;
  std::unique_ptr<sim::Network> network;
  std::unique_ptr<ProtocolCluster> cluster;

  ReplicatedCommitCluster& rc() {
    return *static_cast<ReplicatedCommitCluster*>(cluster.get());
  }
  TwoPcPaxosCluster& tp() {
    return *static_cast<TwoPcPaxosCluster*>(cluster.get());
  }
};

std::unique_ptr<Rig> MakeRig(int n, Duration rtt, bool two_pc,
                             DcId coordinator = 0) {
  auto rig = std::make_unique<Rig>();
  rig->network = std::make_unique<sim::Network>(&rig->scheduler, n, 13);
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) rig->network->SetRtt(a, b, rtt, 0);
  }
  if (two_pc) {
    TwoPcPaxosConfig cfg;
    cfg.num_datacenters = n;
    cfg.coordinator = coordinator;
    rig->cluster = std::make_unique<TwoPcPaxosCluster>(
        &rig->scheduler, rig->network.get(), cfg);
  } else {
    ReplicatedCommitConfig cfg;
    cfg.num_datacenters = n;
    rig->cluster = std::make_unique<ReplicatedCommitCluster>(
        &rig->scheduler, rig->network.get(), cfg);
  }
  rig->cluster->Start();
  return rig;
}

struct TxnDriver {
  Rig* rig;
  DcId home;
  TxnId id;
  std::vector<ReadEntry> reads;
  bool read_failed = false;
  CommitOutcome outcome;
  Duration commit_latency = -1;
  bool done = false;

  explicit TxnDriver(Rig* r, DcId dc) : rig(r), home(dc) {
    id = rig->cluster->BeginTxn(dc);
  }

  void Read(const Key& key, std::function<void()> then) {
    rig->cluster->TxnRead(home, id, key, [this, key, then](auto r) {
      if (r.ok()) {
        reads.push_back({key, r.value().ts, r.value().writer});
      } else if (r.status().code() == StatusCode::kNotFound) {
        reads.push_back({key, kMinTimestamp, TxnId{}});
      } else {
        read_failed = true;
        rig->cluster->TxnAbandon(home, id);
      }
      then();
    });
  }

  void Commit(std::vector<WriteEntry> writes) {
    const sim::SimTime start = rig->scheduler.Now();
    rig->cluster->TxnCommit(home, id, reads, std::move(writes),
                            [this, start](const CommitOutcome& o) {
                              outcome = o;
                              commit_latency = rig->scheduler.Now() - start;
                              done = true;
                            });
  }
};

// --- Replicated Commit ---------------------------------------------------------

TEST(ReplicatedCommitTest, SimpleCommitAppliesEverywhere) {
  auto rig = MakeRig(5, Millis(80), /*two_pc=*/false);
  auto txn = std::make_shared<TxnDriver>(rig.get(), 1);
  rig->scheduler.At(Millis(10), [txn] {
    txn->Read("x", [txn] { txn->Commit({{"x", "v"}}); });
  });
  rig->scheduler.RunUntil(Seconds(10));
  ASSERT_TRUE(txn->done);
  EXPECT_TRUE(txn->outcome.committed);
  // Commit latency ~ one RTT to the closest majority (symmetric: 80ms).
  EXPECT_GE(txn->commit_latency, Millis(80));
  EXPECT_LE(txn->commit_latency, Millis(95));
  for (DcId dc = 0; dc < 5; ++dc) {
    auto v = rig->rc().store(dc).Read("x");
    ASSERT_TRUE(v.ok()) << dc;
    EXPECT_EQ(v.value().value, "v");
  }
  // All locks released after the decision propagates.
  for (DcId dc = 0; dc < 5; ++dc) {
    EXPECT_EQ(rig->rc().locks(dc).locked_keys(), 0u) << dc;
  }
}

TEST(ReplicatedCommitTest, ReadLatencyIsMajorityRtt) {
  auto rig = MakeRig(5, Millis(100), /*two_pc=*/false);
  auto txn = std::make_shared<TxnDriver>(rig.get(), 0);
  sim::SimTime read_done = -1;
  rig->scheduler.At(0, [&, txn] {
    txn->Read("x", [&, txn] { read_done = rig->scheduler.Now(); });
  });
  rig->scheduler.RunUntil(Seconds(5));
  // Majority = 3 of 5: home (client link) + 2 peers, RTT 100ms.
  EXPECT_GE(read_done, Millis(100));
  EXPECT_LE(read_done, Millis(110));
}

TEST(ReplicatedCommitTest, WriteWriteConflictAborts) {
  auto rig = MakeRig(3, Millis(60), /*two_pc=*/false);
  auto t1 = std::make_shared<TxnDriver>(rig.get(), 0);
  auto t2 = std::make_shared<TxnDriver>(rig.get(), 1);
  rig->scheduler.At(Millis(5), [t1] { t1->Commit({{"x", "a"}}); });
  rig->scheduler.At(Millis(6), [t2] { t2->Commit({{"x", "b"}}); });
  rig->scheduler.RunUntil(Seconds(10));
  ASSERT_TRUE(t1->done && t2->done);
  // Write locks conflict at every datacenter: they cannot both get a
  // majority of yes votes.
  EXPECT_LE(t1->outcome.committed + t2->outcome.committed, 1);
}

TEST(ReplicatedCommitTest, ReadLockBlocksConflictingWriter) {
  auto rig = MakeRig(3, Millis(60), /*two_pc=*/false);
  auto reader = std::make_shared<TxnDriver>(rig.get(), 0);
  auto writer = std::make_shared<TxnDriver>(rig.get(), 1);
  rig->scheduler.At(Millis(5), [reader] {
    reader->Read("x", [] {});  // Holds shared locks, never commits yet.
  });
  rig->scheduler.At(Millis(200), [writer] { writer->Commit({{"x", "w"}}); });
  rig->scheduler.RunUntil(Seconds(10));
  ASSERT_TRUE(writer->done);
  EXPECT_FALSE(writer->outcome.committed);
}

TEST(ReplicatedCommitTest, StaleReadValidationFails) {
  auto rig = MakeRig(3, Millis(40), /*two_pc=*/false);
  auto t1 = std::make_shared<TxnDriver>(rig.get(), 0);
  auto t2 = std::make_shared<TxnDriver>(rig.get(), 1);
  // t1 writes x; then t2 commits with a fabricated stale read of x.
  rig->scheduler.At(Millis(5), [t1] { t1->Commit({{"x", "new"}}); });
  rig->scheduler.At(Seconds(2), [t2] {
    t2->reads.push_back({"x", kMinTimestamp, TxnId{}});  // "Never written".
    t2->Commit({{"y", "z"}});
  });
  rig->scheduler.RunUntil(Seconds(10));
  ASSERT_TRUE(t1->done && t2->done);
  EXPECT_TRUE(t1->outcome.committed);
  EXPECT_FALSE(t2->outcome.committed);
}

TEST(ReplicatedCommitTest, ToleratesTwoOutagesOfFive) {
  auto rig = MakeRig(5, Millis(50), /*two_pc=*/false);
  rig->network->CrashNode(3);
  rig->network->CrashNode(4);
  auto txn = std::make_shared<TxnDriver>(rig.get(), 0);
  rig->scheduler.At(Millis(10), [txn] {
    txn->Read("x", [txn] { txn->Commit({{"x", "v"}}); });
  });
  rig->scheduler.RunUntil(Seconds(20));
  ASSERT_TRUE(txn->done);
  EXPECT_TRUE(txn->outcome.committed);
}

TEST(ReplicatedCommitTest, AbortsWhenMajorityUnreachable) {
  auto rig = MakeRig(5, Millis(50), /*two_pc=*/false);
  rig->network->CrashNode(2);
  rig->network->CrashNode(3);
  rig->network->CrashNode(4);
  auto txn = std::make_shared<TxnDriver>(rig.get(), 0);
  rig->scheduler.At(Millis(10), [txn] { txn->Commit({{"x", "v"}}); });
  rig->scheduler.RunUntil(Seconds(20));
  ASSERT_TRUE(txn->done);  // The decision timeout fires.
  EXPECT_FALSE(txn->outcome.committed);
}

// --- 2PC/Paxos -----------------------------------------------------------------

TEST(TwoPcPaxosTest, CommitLatencyIncludesCoordinatorAndPaxos) {
  auto rig = MakeRig(5, Millis(100), /*two_pc=*/true, /*coordinator=*/0);
  auto txn = std::make_shared<TxnDriver>(rig.get(), 2);
  rig->scheduler.At(Millis(10), [txn] { txn->Commit({{"x", "v"}}); });
  rig->scheduler.RunUntil(Seconds(10));
  ASSERT_TRUE(txn->done);
  EXPECT_TRUE(txn->outcome.committed);
  // Client->coordinator (50) + Paxos majority RTT (100) + back (50).
  EXPECT_GE(txn->commit_latency, Millis(200));
  EXPECT_LE(txn->commit_latency, Millis(215));
}

TEST(TwoPcPaxosTest, CoordinatorLocalClientIsFast) {
  auto rig = MakeRig(5, Millis(100), /*two_pc=*/true, /*coordinator=*/0);
  auto txn = std::make_shared<TxnDriver>(rig.get(), 0);
  rig->scheduler.At(Millis(10), [txn] { txn->Commit({{"x", "v"}}); });
  rig->scheduler.RunUntil(Seconds(10));
  ASSERT_TRUE(txn->done && txn->outcome.committed);
  EXPECT_LE(txn->commit_latency, Millis(110));  // Just the Paxos round.
}

TEST(TwoPcPaxosTest, ReadsRouteToCoordinator) {
  auto rig = MakeRig(3, Millis(80), /*two_pc=*/true, /*coordinator=*/0);
  auto txn = std::make_shared<TxnDriver>(rig.get(), 1);
  sim::SimTime read_done = -1;
  rig->scheduler.At(0, [&, txn] {
    txn->Read("x", [&] { read_done = rig->scheduler.Now(); });
  });
  rig->scheduler.RunUntil(Seconds(5));
  EXPECT_GE(read_done, Millis(80));  // Full RTT to the coordinator.
}

TEST(TwoPcPaxosTest, CommittedWritesReachAllReplicas) {
  auto rig = MakeRig(3, Millis(40), /*two_pc=*/true);
  auto txn = std::make_shared<TxnDriver>(rig.get(), 1);
  rig->scheduler.At(Millis(10), [txn] { txn->Commit({{"x", "42"}}); });
  rig->scheduler.RunUntil(Seconds(5));
  ASSERT_TRUE(txn->done && txn->outcome.committed);
  for (DcId dc = 0; dc < 3; ++dc) {
    auto v = rig->tp().store(dc).Read("x");
    ASSERT_TRUE(v.ok()) << dc;
    EXPECT_EQ(v.value().value, "42");
  }
}

TEST(TwoPcPaxosTest, StaleReadValidationAborts) {
  auto rig = MakeRig(3, Millis(40), /*two_pc=*/true);
  auto t1 = std::make_shared<TxnDriver>(rig.get(), 0);
  auto t2 = std::make_shared<TxnDriver>(rig.get(), 1);
  rig->scheduler.At(Millis(5), [t1] { t1->Commit({{"x", "new"}}); });
  rig->scheduler.At(Seconds(1), [t2] {
    t2->reads.push_back({"x", kMinTimestamp, TxnId{}});
    t2->Commit({{"y", "z"}});
  });
  rig->scheduler.RunUntil(Seconds(10));
  ASSERT_TRUE(t1->done && t2->done);
  EXPECT_TRUE(t1->outcome.committed);
  EXPECT_FALSE(t2->outcome.committed);
}

TEST(TwoPcPaxosTest, WoundWaitResolvesConflicts) {
  auto rig = MakeRig(3, Millis(40), /*two_pc=*/true);
  auto t1 = std::make_shared<TxnDriver>(rig.get(), 1);
  auto t2 = std::make_shared<TxnDriver>(rig.get(), 2);
  // Both read-modify-write the same key concurrently.
  rig->scheduler.At(Millis(5), [t1] {
    t1->Read("x", [t1] { t1->Commit({{"x", "t1"}}); });
  });
  rig->scheduler.At(Millis(6), [t2] {
    t2->Read("x", [t2] {
      if (!t2->read_failed) t2->Commit({{"x", "t2"}});
    });
  });
  rig->scheduler.RunUntil(Seconds(20));
  ASSERT_TRUE(t1->done);
  // No deadlock: everything decides; at most one commits.
  const int commits =
      (t1->done && t1->outcome.committed) + (t2->done && t2->outcome.committed);
  EXPECT_LE(commits, 1);
  EXPECT_GE(commits, 1) << "wound-wait should let one transaction through";
}

// Randomized contention for both baselines: history must stay
// conflict-serializable and replicas converge.
template <typename GetHistory, typename GetStore>
void RunContention(Rig& rig, int n, int keys, GetHistory get_history,
                   GetStore get_store) {
  auto rng = std::make_shared<Rng>(31);
  auto step = std::make_shared<std::function<void(DcId)>>();
  auto active = std::make_shared<int>(0);
  *step = [&rig, rng, keys, step, n](DcId dc) {
    if (rig.scheduler.Now() > Seconds(15)) return;
    auto txn = std::make_shared<TxnDriver>(&rig, dc);
    const std::string k1 = "key" + std::to_string(rng->Uniform(keys));
    const std::string k2 = "key" + std::to_string(rng->Uniform(keys));
    txn->Read(k1, [&rig, txn, k1, k2, step, dc] {
      if (txn->read_failed) {
        rig.scheduler.After(Millis(5), [step, dc] { (*step)(dc); });
        return;
      }
      std::vector<WriteEntry> writes{{k1, "v"}};
      if (k2 != k1) writes.push_back({k2, "w"});
      txn->Commit(std::move(writes));
      // Poll for completion (commit callback sets done).
      auto wait = std::make_shared<std::function<void()>>();
      *wait = [&rig, txn, step, dc, wait] {
        if (txn->done) {
          (*step)(dc);
        } else {
          rig.scheduler.After(Millis(5), *wait);
        }
      };
      rig.scheduler.After(Millis(5), *wait);
    });
  };
  for (DcId dc = 0; dc < n; ++dc) {
    rig.scheduler.At(Millis(dc + 1), [step, dc] { (*step)(dc); });
    rig.scheduler.At(Millis(dc + 2), [step, dc] { (*step)(dc); });
  }
  rig.scheduler.RunUntil(Seconds(40));

  const auto& commits = get_history().commits();
  ASSERT_GT(commits.size(), 50u);
  const Status ser = core::CheckSerializable(commits);
  EXPECT_TRUE(ser.ok()) << ser.ToString();
  // Convergence across replicas for every key someone committed to.
  for (int k = 0; k < keys; ++k) {
    const std::string key = "key" + std::to_string(k);
    auto v0 = get_store(0).Read(key);
    if (!v0.ok()) continue;
    for (DcId dc = 1; dc < n; ++dc) {
      auto v = get_store(dc).Read(key);
      ASSERT_TRUE(v.ok()) << key << " dc " << dc;
      EXPECT_EQ(v.value().writer, v0.value().writer) << key << " dc " << dc;
    }
  }
}

TEST(ReplicatedCommitTest, ContendedHistoryIsSerializable) {
  auto rig = MakeRig(3, Millis(50), /*two_pc=*/false);
  RunContention(
      *rig, 3, 25, [&]() -> core::HistoryRecorder& { return rig->rc().history(); },
      [&](DcId dc) -> const MvStore& { return rig->rc().store(dc); });
  EXPECT_GT(rig->rc().aborts(), 0u);
}

TEST(TwoPcPaxosTest, ContendedHistoryIsSerializable) {
  auto rig = MakeRig(3, Millis(50), /*two_pc=*/true);
  RunContention(
      *rig, 3, 25, [&]() -> core::HistoryRecorder& { return rig->tp().history(); },
      [&](DcId dc) -> const MvStore& { return rig->tp().store(dc); });
}

}  // namespace
}  // namespace helios::baselines
