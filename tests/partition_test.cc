// Network-partition scenarios for Helios's liveness layer (Section 4.4).
//
// The paper's key case: "a network partition makes information from B
// unable to be delivered to other datacenters. Given that no information
// is received at A from B, datacenter A consults C for information about
// B's finished transactions. Datacenter A can commit transactions since it
// knows that B cannot commit any transactions without getting an
// acknowledgment of its receipt from either B or C."
//
// These tests check both halves: the connected majority keeps committing
// through the eta bound, and the isolated datacenter CANNOT commit —
// neither during the partition (no acknowledgments) nor after it heals
// (its stale transactions arrive past the grace time and are refused).

#include <gtest/gtest.h>

#include <memory>

#include "core/helios_cluster.h"
#include "core/history.h"
#include "harness/topology.h"
#include "sim/network.h"
#include "sim/scheduler.h"

namespace helios::core {
namespace {

struct PartitionRig {
  sim::Scheduler scheduler;
  std::unique_ptr<sim::Network> network;
  std::unique_ptr<HeliosCluster> cluster;

  PartitionRig(int n, Duration rtt, int fault_tolerance, Duration grace) {
    network = std::make_unique<sim::Network>(&scheduler, n, 3);
    for (int a = 0; a < n; ++a) {
      for (int b = a + 1; b < n; ++b) network->SetRtt(a, b, rtt, 0);
    }
    HeliosConfig cfg;
    cfg.num_datacenters = n;
    cfg.fault_tolerance = fault_tolerance;
    cfg.grace_time = grace;
    cfg.log_interval = Millis(5);
    cluster = std::make_unique<HeliosCluster>(&scheduler, network.get(),
                                              std::move(cfg));
    cluster->Start();
  }

  /// Cuts every link between `dc` and the rest (the node itself stays up).
  void Isolate(DcId dc) {
    for (DcId other = 0; other < network->size(); ++other) {
      if (other != dc) network->SetPartitioned(dc, other, true);
    }
  }
  void Heal(DcId dc) {
    for (DcId other = 0; other < network->size(); ++other) {
      if (other != dc) network->SetPartitioned(dc, other, false);
    }
  }
};

struct Outcome {
  bool done = false;
  bool committed = false;
  Duration latency = 0;
};

void Commit(PartitionRig& rig, DcId dc, const Key& key, Outcome* out) {
  const sim::SimTime start = rig.scheduler.Now();
  rig.cluster->ClientCommit(dc, {}, {{key, "v"}},
                            [out, start, &rig](const CommitOutcome& o) {
                              out->done = true;
                              out->committed = o.committed;
                              out->latency = rig.scheduler.Now() - start;
                            });
}

TEST(PartitionTest, MajorityProceedsWhileMinorityBlocks) {
  PartitionRig rig(3, Millis(40), /*f=*/1, /*grace=*/Millis(300));
  rig.scheduler.At(Millis(200), [&] { rig.Isolate(2); });

  Outcome at_majority;
  Outcome at_isolated;
  rig.scheduler.At(Millis(600), [&] {
    Commit(rig, 0, "x", &at_majority);
    Commit(rig, 2, "y", &at_isolated);
  });
  rig.scheduler.RunUntil(Seconds(15));

  // The connected side commits (via the eta bound, paying about the grace
  // time); the isolated side cannot get an acknowledgment and must not
  // commit.
  ASSERT_TRUE(at_majority.done);
  EXPECT_TRUE(at_majority.committed);
  EXPECT_GE(at_majority.latency, Millis(250));
  EXPECT_FALSE(at_isolated.done && at_isolated.committed)
      << "an isolated datacenter must never commit under f=1";
}

TEST(PartitionTest, StaleTransactionRefusedAfterHeal) {
  PartitionRig rig(3, Millis(40), /*f=*/1, /*grace=*/Millis(300));
  rig.scheduler.At(Millis(200), [&] { rig.Isolate(2); });

  // Issued while isolated; its preparing record reaches the peers only
  // after the heal, far beyond q(t) + GT, so they refuse to acknowledge
  // it and it is invalidated (grace-time invalidation).
  Outcome stale;
  rig.scheduler.At(Millis(600), [&] { Commit(rig, 2, "z", &stale); });
  rig.scheduler.At(Seconds(5), [&] { rig.Heal(2); });
  rig.scheduler.RunUntil(Seconds(20));

  ASSERT_TRUE(stale.done) << "the healed partition must resolve the txn";
  EXPECT_FALSE(stale.committed);
  // It was killed by the liveness layer specifically.
  EXPECT_GE(rig.cluster->node(2).counters().aborts_liveness +
                rig.cluster->node(2).counters().aborts_by_remote,
            1u);
  uint64_t refusals = 0;
  for (DcId dc = 0; dc < 3; ++dc) {
    refusals += rig.cluster->node(dc).counters().refusals_issued;
  }
  EXPECT_GE(refusals, 1u);
}

TEST(PartitionTest, ConflictNeverDoubleCommitsAcrossPartition) {
  // The safety crux: A (majority side) and B (isolated) submit CONFLICTING
  // transactions concurrently during the partition. At most one may ever
  // commit, and since B cannot gather acknowledgments, it must be A's.
  PartitionRig rig(3, Millis(40), /*f=*/1, /*grace=*/Millis(300));
  rig.scheduler.At(Millis(200), [&] { rig.Isolate(2); });

  Outcome at_a;
  Outcome at_b;
  rig.scheduler.At(Millis(600), [&] {
    Commit(rig, 0, "contested", &at_a);
    Commit(rig, 2, "contested", &at_b);
  });
  rig.scheduler.At(Seconds(5), [&] { rig.Heal(2); });
  rig.scheduler.RunUntil(Seconds(25));

  ASSERT_TRUE(at_a.done);
  EXPECT_TRUE(at_a.committed);
  ASSERT_TRUE(at_b.done);
  EXPECT_FALSE(at_b.committed) << "double commit across a partition!";

  // After healing, all replicas converge on A's write.
  for (DcId dc = 0; dc < 3; ++dc) {
    auto v = rig.cluster->node(dc).store().Read("contested");
    ASSERT_TRUE(v.ok()) << dc;
    EXPECT_EQ(v.value().writer.origin, 0) << dc;
  }
  // And the combined history is serializable.
  const Status ser = CheckSerializable(rig.cluster->history().commits());
  EXPECT_TRUE(ser.ok()) << ser.ToString();
}

TEST(PartitionTest, IsolatedMinorityCatchesUpAfterHeal) {
  PartitionRig rig(3, Millis(40), /*f=*/1, /*grace=*/Millis(300));
  rig.scheduler.At(Millis(200), [&] { rig.Isolate(2); });

  Outcome during;
  rig.scheduler.At(Seconds(1), [&] { Commit(rig, 0, "k", &during); });
  rig.scheduler.At(Seconds(4), [&] { rig.Heal(2); });
  rig.scheduler.RunUntil(Seconds(10));

  ASSERT_TRUE(during.done && during.committed);
  auto v = rig.cluster->node(2).store().Read("k");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value().value, "v");

  // And the previously isolated node commits normally again.
  Outcome after;
  rig.scheduler.At(rig.scheduler.Now(), [&] { Commit(rig, 2, "post", &after); });
  rig.scheduler.RunUntil(rig.scheduler.Now() + Seconds(5));
  ASSERT_TRUE(after.done);
  EXPECT_TRUE(after.committed);
  EXPECT_LT(after.latency, Millis(200));
}

TEST(PartitionTest, Helios0BlocksOnBothSides) {
  // Without fault tolerance there is no eta bound: a partition stalls
  // everyone who needs the unreachable datacenter's log.
  PartitionRig rig(3, Millis(40), /*f=*/0, /*grace=*/Millis(300));
  rig.scheduler.At(Millis(200), [&] { rig.Isolate(2); });
  Outcome at_majority;
  rig.scheduler.At(Millis(600), [&] { Commit(rig, 0, "x", &at_majority); });
  rig.scheduler.RunUntil(Seconds(10));
  EXPECT_FALSE(at_majority.done);
  // Healing unblocks it.
  rig.Heal(2);
  rig.scheduler.RunUntil(Seconds(12));
  EXPECT_TRUE(at_majority.done);
  EXPECT_TRUE(at_majority.committed);
}

TEST(PartitionTest, LinkPartitionWithRelayStillCommits) {
  // Only the A<->B link is cut; C relays both directions (transitive
  // propagation), so even Helios-0 keeps committing — just slower, via
  // the relay path.
  PartitionRig rig(3, Millis(40), /*f=*/0, /*grace=*/Millis(300));
  rig.scheduler.At(Millis(200),
                   [&] { rig.network->SetPartitioned(0, 1, true); });
  Outcome at_a;
  rig.scheduler.At(Millis(600), [&] { Commit(rig, 0, "x", &at_a); });
  rig.scheduler.RunUntil(Seconds(10));
  ASSERT_TRUE(at_a.done);
  EXPECT_TRUE(at_a.committed);
  // Helios-B wait is ~one-way (20ms) direct; via the relay it is about
  // two hops plus log-interval quantization.
  EXPECT_GE(at_a.latency, Millis(35));
}

}  // namespace
}  // namespace helios::core
