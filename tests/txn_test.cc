// Unit tests for transaction bodies, the conflict predicates of
// Algorithms 1-2, and the indexed preparing-transaction pools.

#include <gtest/gtest.h>

#include "txn/pool.h"
#include "txn/transaction.h"

namespace helios {
namespace {

TxnBodyPtr RwTxn(DcId dc, uint64_t seq, std::vector<Key> reads,
                 std::vector<Key> writes) {
  std::vector<ReadEntry> rs;
  for (auto& k : reads) rs.push_back({k, 0, TxnId{}});
  std::vector<WriteEntry> ws;
  for (auto& k : writes) ws.push_back({k, "v"});
  return MakeTxnBody(TxnId{dc, seq}, std::move(rs), std::move(ws));
}

TEST(TxnBodyTest, KeyMembership) {
  auto t = RwTxn(0, 1, {"a", "b"}, {"b", "c"});
  EXPECT_TRUE(t->ReadsKey("a"));
  EXPECT_TRUE(t->ReadsKey("b"));
  EXPECT_FALSE(t->ReadsKey("c"));
  EXPECT_TRUE(t->WritesKey("b"));
  EXPECT_TRUE(t->WritesKey("c"));
  EXPECT_FALSE(t->WritesKey("a"));
}

TEST(ConflictTest, ReadWriteConflict) {
  auto reader = RwTxn(0, 1, {"x"}, {"y"});
  auto writer = RwTxn(1, 1, {}, {"x"});
  EXPECT_TRUE(ConflictsWithWritesOf(*reader, *writer));
  // The reverse direction: writer's read/write sets vs reader's writes.
  EXPECT_FALSE(ConflictsWithWritesOf(*writer, *reader));
}

TEST(ConflictTest, WriteWriteConflict) {
  auto a = RwTxn(0, 1, {}, {"x"});
  auto b = RwTxn(1, 1, {}, {"x"});
  EXPECT_TRUE(ConflictsWithWritesOf(*a, *b));
  EXPECT_TRUE(ConflictsWithWritesOf(*b, *a));
  EXPECT_TRUE(WriteSetsIntersect(*a, *b));
}

TEST(ConflictTest, ReadReadIsNotAConflict) {
  auto a = RwTxn(0, 1, {"x"}, {"p"});
  auto b = RwTxn(1, 1, {"x"}, {"q"});
  EXPECT_FALSE(ConflictsWithWritesOf(*a, *b));
  EXPECT_FALSE(ConflictsWithWritesOf(*b, *a));
  EXPECT_FALSE(WriteSetsIntersect(*a, *b));
}

TEST(ConflictTest, DisjointTxnsDoNotConflict) {
  auto a = RwTxn(0, 1, {"a"}, {"b"});
  auto b = RwTxn(1, 1, {"c"}, {"d"});
  EXPECT_FALSE(ConflictsWithWritesOf(*a, *b));
  EXPECT_FALSE(ConflictsWithWritesOf(*b, *a));
}

TEST(TxnPoolTest, AddRemoveContains) {
  TxnPool pool;
  auto t = RwTxn(0, 1, {"a"}, {"b"});
  pool.Add(t);
  EXPECT_TRUE(pool.Contains(t->id));
  EXPECT_EQ(pool.size(), 1u);
  ASSERT_NE(pool.Find(t->id), nullptr);
  EXPECT_TRUE(pool.Remove(t->id));
  EXPECT_FALSE(pool.Contains(t->id));
  EXPECT_FALSE(pool.Remove(t->id));
  EXPECT_TRUE(pool.empty());
}

TEST(TxnPoolTest, DuplicateAddIgnored) {
  TxnPool pool;
  auto t = RwTxn(0, 1, {"a"}, {"b"});
  pool.Add(t);
  pool.Add(t);
  EXPECT_EQ(pool.size(), 1u);
  pool.Remove(t->id);
  // Indexes must be fully cleaned: a probe touching "b" finds nothing.
  auto probe = RwTxn(1, 1, {"b"}, {"z"});
  EXPECT_TRUE(pool.ConflictingWriters(*probe).empty());
}

TEST(TxnPoolTest, ConflictingWritersMatchesAlgorithm1) {
  TxnPool pool;
  pool.Add(RwTxn(0, 1, {}, {"x"}));       // Writes x.
  pool.Add(RwTxn(0, 2, {"x"}, {"y"}));    // Reads x, writes y.
  pool.Add(RwTxn(0, 3, {"p"}, {"q"}));    // Unrelated.

  // Probe reads x: conflicts with the writer of x only.
  auto probe1 = RwTxn(1, 1, {"x"}, {"z"});
  auto hits1 = pool.ConflictingWriters(*probe1);
  ASSERT_EQ(hits1.size(), 1u);
  EXPECT_EQ(hits1[0]->id, (TxnId{0, 1}));

  // Probe writes y: conflicts with the writer of y.
  auto probe2 = RwTxn(1, 2, {}, {"y"});
  auto hits2 = pool.ConflictingWriters(*probe2);
  ASSERT_EQ(hits2.size(), 1u);
  EXPECT_EQ(hits2[0]->id, (TxnId{0, 2}));

  // Probe touching nothing pooled: no conflicts.
  auto probe3 = RwTxn(1, 3, {"m"}, {"n"});
  EXPECT_TRUE(pool.ConflictingWriters(*probe3).empty());
}

TEST(TxnPoolTest, VictimsMatchesAlgorithm2) {
  TxnPool pool;
  pool.Add(RwTxn(0, 1, {"x"}, {"a"}));   // Reads x.
  pool.Add(RwTxn(0, 2, {}, {"x"}));      // Writes x.
  pool.Add(RwTxn(0, 3, {"p"}, {"q"}));   // Unrelated.

  // Incoming remote transaction writes x: both the reader and the writer
  // of x are invalidated.
  auto incoming = RwTxn(1, 1, {"whatever"}, {"x"});
  auto victims = pool.Victims(*incoming);
  EXPECT_EQ(victims.size(), 2u);
}

TEST(TxnPoolTest, VictimsDeduplicated) {
  TxnPool pool;
  pool.Add(RwTxn(0, 1, {"x"}, {"y"}));  // Reads x AND writes y.
  auto incoming = RwTxn(1, 1, {}, {"x", "y"});  // Hits it twice.
  EXPECT_EQ(pool.Victims(*incoming).size(), 1u);
}

TEST(TxnPoolTest, SelfIsNeverAConflict) {
  TxnPool pool;
  auto t = RwTxn(0, 1, {"x"}, {"x"});
  pool.Add(t);
  EXPECT_TRUE(pool.ConflictingWriters(*t).empty());
  EXPECT_TRUE(pool.Victims(*t).empty());
}

TEST(TxnPoolTest, AllReturnsEverything) {
  TxnPool pool;
  pool.Add(RwTxn(0, 1, {}, {"a"}));
  pool.Add(RwTxn(0, 2, {}, {"b"}));
  EXPECT_EQ(pool.All().size(), 2u);
}

TEST(TxnPoolTest, BlindWriteConflictsDetected) {
  TxnPool pool;
  pool.Add(RwTxn(0, 1, {}, {"x"}));  // Blind write of x.
  auto probe = RwTxn(1, 1, {}, {"x"});  // Another blind write.
  EXPECT_EQ(pool.ConflictingWriters(*probe).size(), 1u);
  EXPECT_EQ(pool.Victims(*probe).size(), 1u);
}

}  // namespace
}  // namespace helios
