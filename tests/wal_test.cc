// Tests for the write-ahead log: append/replay round trips, torn-tail and
// corruption handling, and full node recovery — a restarted HeliosNode
// rebuilt from its WAL rejoins the cluster with its data intact, aborts
// its own in-flight transactions (presumed abort), and never reuses a
// timestamp.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/helios_cluster.h"
#include "harness/topology.h"
#include "sim/network.h"
#include "sim/scheduler.h"
#include "wal/wal.h"

namespace helios::wal {
namespace {

std::string TempWalPath(const std::string& tag) {
  return ::testing::TempDir() + "/helios_wal_" + tag + "_" +
         std::to_string(::getpid()) + ".wal";
}

rdict::LogRecord MakeRecord(DcId origin, uint64_t seq, Timestamp ts,
                            bool finished, bool committed = true) {
  rdict::LogRecord rec;
  rec.type = finished ? rdict::RecordType::kFinished
                      : rdict::RecordType::kPreparing;
  rec.committed = finished && committed;
  rec.ts = ts;
  rec.version_ts = ts + 1;
  rec.origin = origin;
  rec.body = MakeTxnBody(TxnId{origin, seq}, {},
                         {{"k" + std::to_string(seq), "v"}});
  return rec;
}

TEST(WalTest, MissingFileIsFreshNode) {
  auto contents = ReplayWal(TempWalPath("missing"));
  ASSERT_TRUE(contents.ok());
  EXPECT_TRUE(contents.value().records.empty());
  EXPECT_FALSE(contents.value().has_timetable);
  EXPECT_FALSE(contents.value().truncated_tail);
}

TEST(WalTest, AppendReplayRoundTrip) {
  const std::string path = TempWalPath("roundtrip");
  std::remove(path.c_str());
  {
    WalWriter writer;
    ASSERT_TRUE(writer.Open(path).ok());
    ASSERT_TRUE(writer.AppendRecord(MakeRecord(0, 1, 10, false)).ok());
    ASSERT_TRUE(writer.AppendRecord(MakeRecord(0, 1, 20, true)).ok());
    rdict::Timetable table(3);
    table.Set(0, 0, 20);
    table.Set(0, 1, 15);
    ASSERT_TRUE(writer.AppendTimetable(table).ok());
    ASSERT_TRUE(writer.AppendRecord(MakeRecord(1, 7, 30, false)).ok());
    ASSERT_TRUE(writer.Sync().ok());
    EXPECT_EQ(writer.entries_appended(), 4u);
  }
  auto contents = ReplayWal(path);
  ASSERT_TRUE(contents.ok());
  const WalContents& c = contents.value();
  EXPECT_FALSE(c.truncated_tail);
  ASSERT_EQ(c.records.size(), 3u);
  EXPECT_EQ(c.records[0].ts, 10);
  EXPECT_EQ(c.records[1].ts, 20);
  EXPECT_TRUE(c.records[1].committed);
  EXPECT_EQ(c.records[2].origin, 1);
  ASSERT_TRUE(c.has_timetable);
  EXPECT_EQ(c.timetable.Get(0, 1), 15);
  std::remove(path.c_str());
}

TEST(WalTest, ReopenAppendsInsteadOfTruncating) {
  const std::string path = TempWalPath("reopen");
  std::remove(path.c_str());
  {
    WalWriter writer;
    ASSERT_TRUE(writer.Open(path).ok());
    ASSERT_TRUE(writer.AppendRecord(MakeRecord(0, 1, 10, false)).ok());
  }
  {
    WalWriter writer;
    ASSERT_TRUE(writer.Open(path).ok());
    ASSERT_TRUE(writer.AppendRecord(MakeRecord(0, 2, 20, false)).ok());
  }
  auto contents = ReplayWal(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents.value().records.size(), 2u);
  std::remove(path.c_str());
}

TEST(WalTest, TornTailIsTruncatedNotFatal) {
  const std::string path = TempWalPath("torn");
  std::remove(path.c_str());
  {
    WalWriter writer;
    ASSERT_TRUE(writer.Open(path).ok());
    ASSERT_TRUE(writer.AppendRecord(MakeRecord(0, 1, 10, false)).ok());
    ASSERT_TRUE(writer.AppendRecord(MakeRecord(0, 2, 20, false)).ok());
    ASSERT_TRUE(writer.Sync().ok());
  }
  // Chop bytes off the end, emulating a crash mid-write.
  {
    std::FILE* f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    ASSERT_EQ(::ftruncate(::fileno(f), size - 7), 0);
    std::fclose(f);
  }
  auto contents = ReplayWal(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_TRUE(contents.value().truncated_tail);
  ASSERT_EQ(contents.value().records.size(), 1u);
  EXPECT_EQ(contents.value().records[0].ts, 10);
  std::remove(path.c_str());
}

TEST(WalTest, CorruptedMiddleStopsAtLastValidEntry) {
  const std::string path = TempWalPath("corrupt");
  std::remove(path.c_str());
  {
    WalWriter writer;
    ASSERT_TRUE(writer.Open(path).ok());
    ASSERT_TRUE(writer.AppendRecord(MakeRecord(0, 1, 10, false)).ok());
    ASSERT_TRUE(writer.AppendRecord(MakeRecord(0, 2, 20, false)).ok());
    ASSERT_TRUE(writer.Sync().ok());
  }
  {
    std::FILE* f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fseek(f, size / 2 + 6, SEEK_SET);  // Inside the second entry.
    std::fputc(0xEE, f);
    std::fclose(f);
  }
  auto contents = ReplayWal(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_TRUE(contents.value().truncated_tail);
  EXPECT_LE(contents.value().records.size(), 1u);
  std::remove(path.c_str());
}

// Seeded corruption sweep: random bit-flips and truncations anywhere in
// the file must never crash ReplayWal. Replay stops at the first bad
// frame, and because every surviving frame passed its CRC, the surviving
// records are a verbatim prefix of what was appended.
TEST(WalTest, RandomCorruptionSweepNeverCrashesReplay) {
  const std::string ref_path = TempWalPath("corrupt_sweep_ref");
  std::remove(ref_path.c_str());
  constexpr uint64_t kRecords = 20;
  {
    WalWriter writer;
    ASSERT_TRUE(writer.Open(ref_path).ok());
    for (uint64_t i = 1; i <= kRecords; ++i) {
      ASSERT_TRUE(
          writer.AppendRecord(MakeRecord(i % 3, i, 10 * i, i % 2 == 0)).ok());
    }
    rdict::Timetable table(3);
    table.Set(1, 2, 99);
    ASSERT_TRUE(writer.AppendTimetable(table).ok());
    ASSERT_TRUE(writer.Sync().ok());
  }
  std::vector<uint8_t> pristine;
  {
    std::FILE* f = std::fopen(ref_path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    pristine.resize(static_cast<size_t>(std::ftell(f)));
    std::fseek(f, 0, SEEK_SET);
    ASSERT_EQ(std::fread(pristine.data(), 1, pristine.size(), f),
              pristine.size());
    std::fclose(f);
  }
  std::remove(ref_path.c_str());

  const std::string path = TempWalPath("corrupt_sweep");
  uint64_t rng = 0x5EEDull;
  auto next = [&rng]() {
    rng = rng * 6364136223846793005ull + 1442695040888963407ull;
    return rng >> 33;
  };
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<uint8_t> bytes = pristine;
    if (trial % 2 == 0) {
      const uint64_t flips = 1 + next() % 4;
      for (uint64_t i = 0; i < flips; ++i) {
        bytes[next() % bytes.size()] ^=
            static_cast<uint8_t>(1u << (next() % 8));
      }
    } else {
      bytes.resize(next() % (bytes.size() + 1));
    }
    {
      std::FILE* f = std::fopen(path.c_str(), "wb");
      ASSERT_NE(f, nullptr);
      if (!bytes.empty()) {
        ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f),
                  bytes.size());
      }
      std::fclose(f);
    }
    auto contents = ReplayWal(path);
    ASSERT_TRUE(contents.ok()) << "trial " << trial;
    const WalContents& c = contents.value();
    ASSERT_LE(c.records.size(), kRecords) << "trial " << trial;
    for (size_t i = 0; i < c.records.size(); ++i) {
      EXPECT_EQ(c.records[i].ts, static_cast<Timestamp>(10 * (i + 1)))
          << "trial " << trial << " record " << i;
    }
  }
  std::remove(path.c_str());
}

// --- Full node recovery -------------------------------------------------------

TEST(WalRecoveryTest, NodeRestoresAndRejoinsCluster) {
  const std::string path = TempWalPath("recover");
  std::remove(path.c_str());

  // Phase 1: a 3-DC cluster with node 0 journaling into the WAL. Run some
  // traffic, including a transaction that is still preparing when we
  // "crash".
  {
    sim::Scheduler scheduler;
    sim::Network network(&scheduler, 3, 5);
    harness::ConfigureNetwork(harness::UniformTopology(3, 40.0), &network);
    core::HeliosConfig cfg;
    cfg.num_datacenters = 3;
    core::HeliosCluster cluster(&scheduler, &network, cfg);
    WalWriter writer;
    ASSERT_TRUE(writer.Open(path).ok());
    cluster.node(0).set_record_sink([&writer](const rdict::LogRecord& rec) {
      ASSERT_TRUE(writer.AppendRecord(rec).ok());
    });
    cluster.Start();

    bool committed = false;
    scheduler.At(Millis(10), [&] {
      cluster.ClientCommit(0, {}, {{"durable", "yes"}},
                           [&](const CommitOutcome& o) {
                             committed = o.committed;
                           });
    });
    scheduler.At(Millis(200), [&] {
      cluster.ClientCommit(1, {}, {{"from-peer", "1"}},
                           [](const CommitOutcome&) {});
    });
    scheduler.RunUntil(Millis(500));
    ASSERT_TRUE(committed);
    // An in-flight transaction at the moment of the crash.
    scheduler.At(scheduler.Now(), [&] {
      cluster.ClientCommit(0, {}, {{"in-flight", "lost"}},
                           [](const CommitOutcome&) {});
    });
    scheduler.RunUntil(scheduler.Now() + Millis(5));
    ASSERT_TRUE(writer.AppendTimetable(cluster.node(0).log().table()).ok());
    ASSERT_TRUE(writer.Sync().ok());
    // "Crash": everything goes out of scope; only the WAL survives.
  }

  // Phase 2: a fresh world; node 0 restores from the WAL.
  auto contents = ReplayWal(path);
  ASSERT_TRUE(contents.ok());
  ASSERT_GT(contents.value().records.size(), 2u);
  ASSERT_TRUE(contents.value().has_timetable);

  sim::Scheduler scheduler;
  sim::Network network(&scheduler, 3, 6);
  harness::ConfigureNetwork(harness::UniformTopology(3, 40.0), &network);
  core::HeliosConfig cfg;
  cfg.num_datacenters = 3;
  core::HeliosCluster cluster(&scheduler, &network, cfg);
  // Restore WITHOUT the timetable snapshot: in this scenario the peers are
  // also fresh, so node 0 must not believe they already hold its records.
  // (With surviving peers one would pass the snapshot and skip the
  // resends; the snapshot round trip itself is covered above.)
  ASSERT_TRUE(
      cluster.node(0).Restore(contents.value().records, nullptr).ok());

  // Recovered data is visible immediately.
  auto v = cluster.node(0).store().Read("durable");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value().value, "yes");
  auto peer_write = cluster.node(0).store().Read("from-peer");
  ASSERT_TRUE(peer_write.ok());

  // The in-flight transaction was presumed aborted.
  auto lost = cluster.node(0).store().Read("in-flight");
  EXPECT_FALSE(lost.ok());
  EXPECT_GE(cluster.node(0).counters().aborts_liveness, 1u);

  // And the node operates normally afterwards (fresh peers learn
  // everything from it through the log exchange).
  cluster.Start();
  bool committed_after = false;
  scheduler.At(Millis(10), [&] {
    cluster.ClientCommit(0, {}, {{"post-recovery", "ok"}},
                         [&](const CommitOutcome& o) {
                           committed_after = o.committed;
                         });
  });
  scheduler.RunUntil(Seconds(3));
  EXPECT_TRUE(committed_after);
  // Peers received both the recovered and the new writes.
  EXPECT_TRUE(cluster.node(1).store().Read("durable").ok());
  EXPECT_TRUE(cluster.node(1).store().Read("post-recovery").ok());
  std::remove(path.c_str());
}

TEST(WalRecoveryTest, RestoredNodeNeverReusesTimestamps) {
  const std::string path = TempWalPath("ts");
  std::remove(path.c_str());
  std::vector<rdict::LogRecord> records;
  Timestamp max_ts = 0;
  {
    sim::Scheduler scheduler;
    sim::Network network(&scheduler, 2, 7);
    harness::ConfigureNetwork(harness::UniformTopology(2, 30.0), &network);
    core::HeliosConfig cfg;
    cfg.num_datacenters = 2;
    core::HeliosCluster cluster(&scheduler, &network, cfg);
    cluster.node(0).set_record_sink([&](const rdict::LogRecord& rec) {
      records.push_back(rec);
      if (rec.origin == 0) max_ts = std::max(max_ts, rec.ts);
    });
    cluster.Start();
    scheduler.At(Seconds(2), [&] {  // Late: timestamps well above zero.
      cluster.ClientCommit(0, {}, {{"x", "1"}}, [](const CommitOutcome&) {});
    });
    scheduler.RunUntil(Seconds(3));
    ASSERT_GT(max_ts, Seconds(1));
  }
  // New world starts at simulated time 0 — without the floor, the node
  // would mint timestamps below what it already persisted.
  sim::Scheduler scheduler;
  sim::Network network(&scheduler, 2, 8);
  harness::ConfigureNetwork(harness::UniformTopology(2, 30.0), &network);
  core::HeliosConfig cfg;
  cfg.num_datacenters = 2;
  core::HeliosCluster cluster(&scheduler, &network, cfg);
  ASSERT_TRUE(cluster.node(0).Restore(records, nullptr).ok());
  cluster.Start();
  Timestamp new_ts = 0;
  cluster.node(0).set_record_sink([&](const rdict::LogRecord& rec) {
    if (rec.origin == 0 && rec.type == rdict::RecordType::kPreparing) {
      new_ts = rec.ts;
    }
  });
  scheduler.At(Millis(5), [&] {
    cluster.ClientCommit(0, {}, {{"y", "2"}}, [](const CommitOutcome&) {});
  });
  scheduler.RunUntil(Seconds(2));
  ASSERT_GT(new_ts, 0);
  EXPECT_GT(new_ts, max_ts) << "recovered node reused a timestamp";
}

}  // namespace
}  // namespace helios::wal
