// Tests for the free-list ObjectPool behind the pooled envelope send
// path: recycled objects keep their state (capacity retention is the
// point), the weak-reference deleter survives the pool dying with
// objects still in flight, and the created/reused counters account for
// every acquisition.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/object_pool.h"
#include "core/envelope.h"

namespace helios::common {
namespace {

struct Payload {
  std::vector<int> data;
  int generation = 0;
};

TEST(ObjectPoolTest, RecyclesReleasedObjects) {
  ObjectPool<Payload> pool;
  Payload* first_raw = nullptr;
  {
    std::shared_ptr<Payload> p = pool.Acquire();
    first_raw = p.get();
    p->data.assign(100, 7);
    p->generation = 1;
  }
  EXPECT_EQ(pool.idle(), 1u);
  std::shared_ptr<Payload> again = pool.Acquire();
  // Same object, state intact: callers must reset what they care about,
  // and in exchange keep the vector's allocation.
  EXPECT_EQ(again.get(), first_raw);
  EXPECT_EQ(again->generation, 1);
  EXPECT_EQ(again->data.size(), 100u);
  EXPECT_EQ(pool.idle(), 0u);
  EXPECT_EQ(pool.created(), 1u);
  EXPECT_EQ(pool.reused(), 1u);
}

TEST(ObjectPoolTest, AllocatesWhenFreeListIsEmpty) {
  ObjectPool<Payload> pool;
  std::vector<std::shared_ptr<Payload>> live;
  for (int i = 0; i < 5; ++i) live.push_back(pool.Acquire());
  EXPECT_EQ(pool.created(), 5u);
  EXPECT_EQ(pool.reused(), 0u);
  live.clear();
  EXPECT_EQ(pool.idle(), 5u);
  for (int i = 0; i < 5; ++i) live.push_back(pool.Acquire());
  EXPECT_EQ(pool.created(), 5u);
  EXPECT_EQ(pool.reused(), 5u);
}

TEST(ObjectPoolTest, InFlightObjectsOutliveThePool) {
  // A simulated datacenter crash destroys the node's pool while the
  // network still holds its envelopes; the deleter must fall back to
  // plain delete instead of touching the dead free list.
  std::shared_ptr<Payload> survivor;
  {
    ObjectPool<Payload> pool;
    survivor = pool.Acquire();
    survivor->generation = 42;
  }
  EXPECT_EQ(survivor->generation, 42);
  survivor.reset();  // Must not crash or leak (ASan-checked in CI).
}

TEST(ObjectPoolTest, PooledEnvelopeResetKeepsCapacity) {
  // The contract the cluster send path relies on: ResetForReuse blanks
  // the gossip state but the vectors keep their high-water capacity.
  ObjectPool<core::Envelope> pool;
  core::Envelope* raw = nullptr;
  {
    std::shared_ptr<core::Envelope> env = pool.Acquire(4);
    raw = env.get();
    env->log.from = 2;
    env->refusals.resize(8);
    env->rtt_row_us.assign(4, 1000);
    env->ping_id = 9;
    env->kind = core::EnvelopeKind::kCatchupResponse;
  }
  std::shared_ptr<core::Envelope> env = pool.Acquire(4);
  ASSERT_EQ(env.get(), raw);
  const size_t refusal_capacity = env->refusals.capacity();
  env->ResetForReuse();
  EXPECT_EQ(env->log.from, kInvalidDc);
  EXPECT_TRUE(env->refusals.empty());
  EXPECT_TRUE(env->rtt_row_us.empty());
  EXPECT_EQ(env->ping_id, 0u);
  EXPECT_EQ(env->kind, core::EnvelopeKind::kGossip);
  EXPECT_GE(refusal_capacity, 8u);
  EXPECT_EQ(env->refusals.capacity(), refusal_capacity);
}

}  // namespace
}  // namespace helios::common
