// Shrinker: greedy minimization of a failing fuzz scenario.
//
// Given a spec on which some oracle fails, the shrinker repeatedly tries
// simplifying edits — drop the whole fault plan, drop individual fault
// events, halve the client count and window durations, reset workload
// skew and clock offsets to defaults — and keeps an edit only when the
// simplified scenario still fails the SAME oracle (determinism makes
// "still fails" a pure function of the spec). It loops to a fixpoint or
// until the run budget is spent. The result is the small, self-contained
// repro the fuzz driver writes as JSON on failure.

#ifndef HELIOS_CHECK_SHRINK_H_
#define HELIOS_CHECK_SHRINK_H_

#include <functional>
#include <string>

#include "check/oracles.h"
#include "harness/experiment_spec.h"

namespace helios::check {

/// Judges one candidate spec: returns the name of the failing oracle
/// ("serializability", ...), or "" if the scenario passes. The default
/// evaluator wraps check::RunScenario; tests inject cheap predicates.
using ScenarioEvaluator =
    std::function<std::string(const harness::ExperimentSpec&)>;

struct ShrinkOptions {
  /// Budget: total candidate evaluations (each one a full simulation with
  /// the default evaluator).
  int max_runs = 250;
  /// Oracles the default evaluator runs. Ignored with a custom evaluator.
  OracleOptions oracles;
};

struct ShrinkResult {
  /// The minimized spec — still failing `oracle`, Validate()-clean.
  harness::ExperimentSpec spec;
  /// The oracle the original spec failed (shrinking preserves it).
  std::string oracle;
  /// Candidate evaluations spent (including the initial confirmation run).
  int runs = 0;
  /// Fault-plan events remaining in the minimized spec.
  int fault_events = 0;
};

/// Counts link faults + node events + partition events of a plan.
int CountFaultEvents(const harness::ExperimentSpec& spec);

/// Minimizes `spec`. Requires that `spec` currently fails (the first
/// evaluation confirms it; if it passes, the original spec is returned
/// with an empty `oracle`). The returned spec is always valid and always
/// reproduces the failure via the same evaluator.
ShrinkResult Shrink(const harness::ExperimentSpec& spec,
                    const ShrinkOptions& options = {},
                    ScenarioEvaluator evaluate = nullptr);

}  // namespace helios::check

#endif  // HELIOS_CHECK_SHRINK_H_
