#include "check/oracles.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/history.h"
#include "rdict/record.h"
#include "shard/txn_status_store.h"
#include "wal/wal_sink.h"
#include "workload/client.h"

namespace helios::check {

namespace {

using harness::ExperimentResult;
using harness::ExperimentSpec;
using harness::RunCapture;
using workload::SessionEvent;
using workload::SessionLog;

/// Versions compare in (version_ts, writer) order — the same total order
/// MvStore's chains use, so "older/newer" here matches what replicas
/// installed.
using Version = std::pair<Timestamp, TxnId>;

bool VersionLess(const Version& a, const Version& b) {
  if (a.first != b.first) return a.first < b.first;
  return a.second < b.second;
}

std::string VersionStr(const Version& v) {
  return "ts=" + std::to_string(v.first) + " writer=" + v.second.ToString();
}

const RunCapture* Capture(const ExperimentResult& result) {
  return result.capture.get();
}

// --- serializability --------------------------------------------------------

Status CheckSerializabilityOracle(const ExperimentResult& result) {
  // RunExperiment already ran the check when the spec asked for it; fall
  // back to the captured history otherwise.
  if (result.serializability.has_value()) return *result.serializability;
  const RunCapture* cap = Capture(result);
  if (cap == nullptr) {
    return Status::FailedPrecondition(
        "no serializability result and no captured history "
        "(run with capture_artifacts)");
  }
  return core::CheckSerializable(cap->history);
}

// --- sessions ---------------------------------------------------------------

Status CheckSessionsOracle(const ExperimentSpec& spec,
                           const ExperimentResult& result) {
  if (spec.protocol == harness::Protocol::kReplicatedCommit) {
    // Majority reads answer from whichever majority replies first; two
    // majorities only overlap, so a later read can legitimately miss a
    // version an earlier read (or the session's own commit) observed.
    return Status::Ok();
  }
  const RunCapture* cap = Capture(result);
  if (cap == nullptr) {
    return Status::FailedPrecondition("no captured session logs");
  }

  // Join key: the server-assigned TxnId each commit outcome carries.
  struct Committed {
    Version version;
    const TxnBody* body;
  };
  std::unordered_map<TxnId, Committed, TxnIdHash> committed;
  committed.reserve(cap->history.size());
  for (const core::CommittedTxn& t : cap->history) {
    committed.emplace(t.id, Committed{{t.version_ts, t.id}, t.body.get()});
  }

  for (const SessionLog& session : cap->sessions) {
    // Floor from the session's own committed writes (read-your-writes) and
    // from its previous reads (monotonic reads), per key.
    std::map<Key, Version> own_writes;
    std::map<Key, Version> last_read;
    for (const SessionEvent& ev : session.events) {
      if (ev.kind == SessionEvent::Kind::kCommit) {
        if (!ev.committed) continue;
        auto it = committed.find(ev.txn);
        // A committed outcome missing from the history is exactly-once's
        // business; sessions just cannot derive a floor from it.
        if (it == committed.end()) continue;
        for (const WriteEntry& w : it->second.body->write_set) {
          auto [fit, inserted] = own_writes.emplace(w.key, it->second.version);
          if (!inserted && VersionLess(fit->second, it->second.version)) {
            fit->second = it->second.version;
          }
        }
        continue;
      }
      // Reads from read-only snapshot transactions may legitimately
      // observe older versions (Appendix B); only read-write reads are
      // covered by the guarantees.
      if (ev.read_only) continue;
      const auto own = own_writes.find(ev.key);
      const auto prev = last_read.find(ev.key);
      if (ev.not_found) {
        if (own != own_writes.end()) {
          return Status::FailedPrecondition(
              "read-your-writes violation: client " +
              std::to_string(session.client_id) + " key '" + ev.key +
              "' read NotFound after own committed write (" +
              VersionStr(own->second) + ")");
        }
        if (prev != last_read.end()) {
          return Status::FailedPrecondition(
              "monotonic-reads violation: client " +
              std::to_string(session.client_id) + " key '" + ev.key +
              "' read NotFound after observing " + VersionStr(prev->second));
        }
        continue;
      }
      const Version v{ev.version_ts, ev.version_writer};
      if (own != own_writes.end() && VersionLess(v, own->second)) {
        return Status::FailedPrecondition(
            "read-your-writes violation: client " +
            std::to_string(session.client_id) + " key '" + ev.key +
            "' read " + VersionStr(v) + " older than own committed write (" +
            VersionStr(own->second) + ")");
      }
      if (prev != last_read.end() && VersionLess(v, prev->second)) {
        return Status::FailedPrecondition(
            "monotonic-reads violation: client " +
            std::to_string(session.client_id) + " key '" + ev.key +
            "' read " + VersionStr(v) + " older than earlier read (" +
            VersionStr(prev->second) + ")");
      }
      last_read[ev.key] = v;
    }
  }
  return Status::Ok();
}

// --- shard_atomicity / staged_resolution ------------------------------------

/// Finalize outcomes observed for one TxnId: which shard (1-based, 0 =
/// none yet) journaled a committed and an aborted finished record.
struct ShardOutcome {
  int committed_shard = 0;
  int aborted_shard = 0;
};

Status CheckShardAtomicityOracle(const ExperimentResult& result) {
  const RunCapture* cap = Capture(result);
  if (cap == nullptr) {
    return Status::FailedPrecondition("no captured WAL journals");
  }
  if (cap->shards <= 1) return Status::Ok();

  // Within one datacenter, every shard that finalizes a transaction must
  // finalize it the same way. Single-shard transactions can only appear
  // in one shard's journal (the TxnId residue scheme keeps id spaces
  // disjoint), so any id seen by two shards is a cross-shard commit.
  const int n = static_cast<int>(cap->stores.size());
  for (int dc = 0; dc < n; ++dc) {
    std::unordered_map<TxnId, ShardOutcome, TxnIdHash> outcomes;
    for (int s = 0; s < cap->shards; ++s) {
      const size_t j = static_cast<size_t>(dc * cap->shards + s);
      if (j >= cap->shard_wals.size() || !cap->shard_wal_present[j]) continue;
      for (const rdict::LogRecord& r : cap->shard_wals[j].records) {
        if (r.type != rdict::RecordType::kFinished || r.body == nullptr) {
          continue;
        }
        ShardOutcome& o = outcomes[r.body->id];
        if (r.committed) {
          if (o.aborted_shard != 0) {
            return Status::FailedPrecondition(
                "shard-atomicity violation: txn " + r.body->id.ToString() +
                " committed on shard " + std::to_string(s) +
                " but aborted on shard " +
                std::to_string(o.aborted_shard - 1) + " at datacenter " +
                std::to_string(dc));
          }
          o.committed_shard = s + 1;
        } else {
          if (o.committed_shard != 0) {
            return Status::FailedPrecondition(
                "shard-atomicity violation: txn " + r.body->id.ToString() +
                " aborted on shard " + std::to_string(s) +
                " but committed on shard " +
                std::to_string(o.committed_shard - 1) + " at datacenter " +
                std::to_string(dc));
          }
          o.aborted_shard = s + 1;
        }
      }
    }
  }
  return Status::Ok();
}

Status CheckStagedResolutionOracle(const ExperimentResult& result) {
  const RunCapture* cap = Capture(result);
  if (cap == nullptr) {
    return Status::FailedPrecondition("no captured coordinator status");
  }
  if (cap->shards <= 1) return Status::Ok();

  // Global view of finalize outcomes across every (datacenter, shard)
  // journal — slice records replicate, and a remote replica finalizing
  // against the coordinator's durable decision is just as much a bug.
  std::unordered_map<TxnId, ShardOutcome, TxnIdHash> outcomes;
  const int n = static_cast<int>(cap->stores.size());
  for (int dc = 0; dc < n; ++dc) {
    for (int s = 0; s < cap->shards; ++s) {
      const size_t j = static_cast<size_t>(dc * cap->shards + s);
      if (j >= cap->shard_wals.size() || !cap->shard_wal_present[j]) continue;
      for (const rdict::LogRecord& r : cap->shard_wals[j].records) {
        if (r.type != rdict::RecordType::kFinished || r.body == nullptr) {
          continue;
        }
        ShardOutcome& o = outcomes[r.body->id];
        if (r.committed) {
          o.committed_shard = s + 1;
        } else {
          o.aborted_shard = s + 1;
        }
      }
    }
  }

  // The durable status table is the source of truth for parallel commits.
  for (size_t dc = 0; dc < cap->txn_status.size(); ++dc) {
    for (const auto& [id, rec] : cap->txn_status[dc]) {
      const auto it = outcomes.find(id);
      const bool committed =
          it != outcomes.end() && it->second.committed_shard != 0;
      const bool aborted =
          it != outcomes.end() && it->second.aborted_shard != 0;
      switch (rec.status) {
        case shard::TxnStatus::kCommitted:
          if (aborted) {
            return Status::FailedPrecondition(
                "staged-resolution violation: txn " + id.ToString() +
                " is COMMITTED in datacenter " + std::to_string(dc) +
                "'s status table but a shard journaled an aborted finalize");
          }
          break;
        case shard::TxnStatus::kAborted:
          if (committed) {
            return Status::FailedPrecondition(
                "staged-resolution violation: txn " + id.ToString() +
                " is ABORTED in datacenter " + std::to_string(dc) +
                "'s status table but a shard journaled a committed "
                "finalize");
          }
          break;
        case shard::TxnStatus::kStaged:
          // Still undecided at end of run: a committed finalize without
          // the durable COMMITTED flip is exactly the bug the
          // skip_staged_resolution mutation seeds.
          if (committed) {
            return Status::FailedPrecondition(
                "staged-resolution violation: txn " + id.ToString() +
                " never left STAGED in datacenter " + std::to_string(dc) +
                "'s status table yet a shard journaled a committed "
                "finalize");
          }
          break;
      }
    }
  }

  // Every client-observed cross-shard commit (TxnId residue 0 in the
  // seq-partition scheme) must have reached COMMITTED at its origin — the
  // durable flip happens before the client reply.
  const uint64_t stride = static_cast<uint64_t>(cap->shards) + 1;
  for (const SessionLog& session : cap->sessions) {
    for (const SessionEvent& ev : session.events) {
      if (ev.kind != SessionEvent::Kind::kCommit || !ev.committed) continue;
      if (ev.txn.seq % stride != 0) continue;  // Single-shard fast path.
      const size_t origin = static_cast<size_t>(ev.txn.origin);
      if (origin >= cap->txn_status.size()) continue;
      const auto& table = cap->txn_status[origin];
      const auto it = table.find(ev.txn);
      if (it == table.end() ||
          it->second.status != shard::TxnStatus::kCommitted) {
        return Status::FailedPrecondition(
            "staged-resolution violation: client " +
            std::to_string(session.client_id) + " observed cross-shard txn " +
            ev.txn.ToString() +
            " as committed but its origin's status table says " +
            (it == table.end() ? "nothing"
                               : shard::TxnStatusName(it->second.status)));
      }
    }
  }
  return Status::Ok();
}

// --- exactly_once -----------------------------------------------------------

bool IsCommittedFinished(const rdict::LogRecord& r) {
  return r.type == rdict::RecordType::kFinished && r.committed &&
         r.body != nullptr;
}

/// The durable journals of one datacenter: the flat per-DC journal for
/// unsharded captures, or the datacenter's per-shard journals (indexed
/// dc * shards + s) for sharded ones. Exactly one of the two sources is
/// populated per capture, so no journal is ever double-counted.
std::vector<const wal::WalContents*> JournalsFor(const RunCapture& cap,
                                                 int dc) {
  std::vector<const wal::WalContents*> out;
  const size_t i = static_cast<size_t>(dc);
  if (i < cap.wals.size() && cap.wal_present[i]) out.push_back(&cap.wals[i]);
  for (int s = 0; s < cap.shards; ++s) {
    const size_t j = static_cast<size_t>(dc * cap.shards + s);
    if (j < cap.shard_wals.size() && cap.shard_wal_present[j]) {
      out.push_back(&cap.shard_wals[j]);
    }
  }
  return out;
}

Status CheckExactlyOnceOracle(const ExperimentSpec& spec,
                              const ExperimentResult& result) {
  const RunCapture* cap = Capture(result);
  if (cap == nullptr) {
    return Status::FailedPrecondition("no captured WAL journals");
  }

  // Per-journal: every committed transaction journaled at most once (PR
  // 4's journal-then-apply dedup is what makes redelivery of the same
  // decision idempotent). The dedup scope is one journal, not one
  // datacenter: a cross-shard transaction legitimately has one committed
  // slice record in each participating shard's journal, always with the
  // same version_ts — which the cross-journal agreement check enforces.
  const int n = static_cast<int>(cap->wals.size());
  std::vector<std::vector<const wal::WalContents*>> journals(
      static_cast<size_t>(n));
  std::vector<std::unordered_set<TxnId, TxnIdHash>> journaled(
      static_cast<size_t>(n));
  std::unordered_map<TxnId, std::pair<Timestamp, int>, TxnIdHash> agreed;
  for (int dc = 0; dc < n; ++dc) {
    const size_t i = static_cast<size_t>(dc);
    journals[i] = JournalsFor(*cap, dc);
    for (const wal::WalContents* wal : journals[i]) {
      std::unordered_set<TxnId, TxnIdHash> in_this_journal;
      for (const rdict::LogRecord& r : wal->records) {
        if (!IsCommittedFinished(r)) continue;
        if (!in_this_journal.insert(r.body->id).second) {
          return Status::FailedPrecondition(
              "exactly-once violation: txn " + r.body->id.ToString() +
              " has two committed records in one of datacenter " +
              std::to_string(dc) + "'s journals");
        }
        journaled[i].insert(r.body->id);
        auto [ait, fresh] = agreed.emplace(r.body->id,
                                           std::make_pair(r.version_ts, dc));
        if (!fresh && ait->second.first != r.version_ts) {
          return Status::FailedPrecondition(
              "divergence: txn " + r.body->id.ToString() +
              " journaled with version_ts " + std::to_string(r.version_ts) +
              " at datacenter " + std::to_string(dc) + " but " +
              std::to_string(ait->second.first) + " at datacenter " +
              std::to_string(ait->second.second));
        }
      }
    }
  }

  // The history commits each id once.
  std::unordered_set<TxnId, TxnIdHash> in_history;
  in_history.reserve(cap->history.size());
  for (const core::CommittedTxn& t : cap->history) {
    if (!in_history.insert(t.id).second) {
      return Status::FailedPrecondition(
          "exactly-once violation: txn " + t.id.ToString() +
          " recorded twice in the committed history");
    }
  }

  // Every client-observed commit is in the history and durably journaled
  // at its authoritative datacenter — the one that applies the decision
  // before replying (the origin; the coordinator for 2PC). That journal
  // survives crashes, so no down-skip is needed.
  const bool two_pc = spec.protocol == harness::Protocol::kTwoPcPaxos;
  for (const SessionLog& session : cap->sessions) {
    for (const SessionEvent& ev : session.events) {
      if (ev.kind != SessionEvent::Kind::kCommit || !ev.committed) continue;
      if (in_history.count(ev.txn) == 0) {
        return Status::FailedPrecondition(
            "lost commit: client " + std::to_string(session.client_id) +
            " observed txn " + ev.txn.ToString() +
            " as committed but the history has no record of it");
      }
      const DcId authority =
          two_pc ? spec.two_pc_coordinator : ev.txn.origin;
      const size_t ai = static_cast<size_t>(authority);
      if (authority < 0 || authority >= n || journals[ai].empty()) continue;
      if (journaled[ai].count(ev.txn) == 0) {
        return Status::FailedPrecondition(
            "durability violation: committed txn " + ev.txn.ToString() +
            " is missing from datacenter " + std::to_string(authority) +
            "'s journal");
      }
    }
  }
  return Status::Ok();
}

// --- wal_replay -------------------------------------------------------------

Status CheckWalReplayOracle(const ExperimentResult& result) {
  const RunCapture* cap = Capture(result);
  if (cap == nullptr) {
    return Status::FailedPrecondition("no captured WAL journals");
  }
  const int n = static_cast<int>(cap->wals.size());
  for (int dc = 0; dc < n; ++dc) {
    const size_t i = static_cast<size_t>(dc);
    const std::vector<const wal::WalContents*> journals =
        JournalsFor(*cap, dc);
    if (journals.empty()) continue;
    if (cap->dc_down[i]) continue;  // Crashed at end: store is amnesiac.

    // Replay: the latest journaled version of every key, merged across
    // the datacenter's journals. Shard key partitions are disjoint, so
    // for sharded captures the merge is a plain union.
    struct Latest {
      Version version{kMinTimestamp, TxnId{}};
      const Value* value = nullptr;
    };
    std::map<Key, Latest> replay;
    for (const wal::WalContents* wal : journals) {
      for (const rdict::LogRecord& r : wal->records) {
        if (!IsCommittedFinished(r)) continue;
        const Version v{r.version_ts, r.body->id};
        for (const WriteEntry& w : r.body->write_set) {
          Latest& slot = replay[w.key];
          if (slot.value == nullptr || VersionLess(slot.version, v)) {
            slot.version = v;
            slot.value = &w.value;
          }
        }
      }
    }

    const std::map<Key, VersionedValue>& live = cap->stores[i];
    for (const auto& [key, want] : replay) {
      auto it = live.find(key);
      if (it == live.end()) {
        return Status::FailedPrecondition(
            "wal-replay divergence at datacenter " + std::to_string(dc) +
            ": journaled key '" + key + "' (" + VersionStr(want.version) +
            ") is absent from the live store");
      }
      const Version got{it->second.ts, it->second.writer};
      if (got != want.version || it->second.value != *want.value) {
        return Status::FailedPrecondition(
            "wal-replay divergence at datacenter " + std::to_string(dc) +
            ": key '" + key + "' journal says " + VersionStr(want.version) +
            " but live store has " + VersionStr(got));
      }
    }
    for (const auto& [key, v] : live) {
      // Keys the journal never saw must be untouched initial loads
      // (LoadInitialAll bypasses the log; loaders stamp a negative origin).
      if (replay.count(key) > 0) continue;
      if (v.writer.origin >= 0) {
        return Status::FailedPrecondition(
            "wal-replay divergence at datacenter " + std::to_string(dc) +
            ": live store key '" + key + "' has committed version " +
            VersionStr({v.ts, v.writer}) + " that was never journaled");
      }
    }
  }
  return Status::Ok();
}

// --- metrics ----------------------------------------------------------------

Status CheckMetricsOracle(const ExperimentSpec& spec,
                          const ExperimentResult& result) {
  const obs::MetricsSnapshot& m = result.metrics;
  if (m.FindCounter("sim.events_processed") == nullptr) {
    return Status::FailedPrecondition(
        "metrics snapshot missing (run with tracing enabled)");
  }

  // recovery.recoveries is exported (and nonzero) iff a scheduled recover
  // event actually revived a crashed datacenter.
  uint64_t expected_recoveries = 0;
  {
    std::vector<sim::NodeEvent> events = spec.fault_plan.node_events;
    std::sort(events.begin(), events.end(),
              [](const sim::NodeEvent& a, const sim::NodeEvent& b) {
                return a.at < b.at;
              });
    std::set<int> down;
    for (const sim::NodeEvent& e : events) {
      if (!e.up) {
        down.insert(e.node);
      } else if (down.erase(e.node) > 0) {
        ++expected_recoveries;
      }
    }
  }
  const auto* recoveries = m.FindCounter("recovery.recoveries");
  if (expected_recoveries > 0) {
    if (recoveries == nullptr || recoveries->value != expected_recoveries) {
      return Status::FailedPrecondition(
          "metrics mismatch: scheduled " +
          std::to_string(expected_recoveries) +
          " recoveries but recovery.recoveries is " +
          (recoveries == nullptr ? std::string("absent")
                                 : std::to_string(recoveries->value)));
    }
  } else if (recoveries != nullptr && recoveries->value != 0) {
    return Status::FailedPrecondition(
        "metrics mismatch: no crash/recover scheduled but "
        "recovery.recoveries = " +
        std::to_string(recoveries->value));
  }

  // Fault counters are exported exactly when the plan has message faults
  // (the export gating that keeps fault-free snapshots byte-stable).
  const bool has_message_faults = spec.fault_plan.HasMessageFaults();
  const bool has_fault_counters = m.FindCounter("net.fault_drops") != nullptr;
  if (has_message_faults != has_fault_counters) {
    return Status::FailedPrecondition(
        has_message_faults
            ? "metrics mismatch: message faults scheduled but net.fault_* "
              "counters absent"
            : "metrics mismatch: net.fault_* counters exported without "
              "message faults");
  }

  // Same gating contract for the deterministic gray-fault counters.
  const bool has_gray_link = spec.fault_plan.HasGrayLinkFaults();
  const bool has_gray_counters = m.FindCounter("net.gray_slowed") != nullptr;
  if (has_gray_link != has_gray_counters) {
    return Status::FailedPrecondition(
        has_gray_link
            ? "metrics mismatch: gray link faults scheduled but net.gray_* "
              "counters absent"
            : "metrics mismatch: net.gray_* counters exported without gray "
              "link faults");
  }

  uint64_t committed = 0;
  for (const harness::DcResult& dc : result.per_dc) committed += dc.committed;
  const auto* committed_counter = m.FindCounter("client.committed");
  if (committed_counter == nullptr || committed_counter->value != committed) {
    return Status::FailedPrecondition(
        "metrics mismatch: client.committed counter disagrees with the "
        "per-datacenter totals");
  }

  // Liveness: a measurement window this long must commit something —
  // unless the plan can wedge clients (crashes/partitions) while no
  // timeout is armed to unwedge them.
  const bool can_wedge = !spec.fault_plan.node_events.empty() ||
                         !spec.fault_plan.partition_events.empty() ||
                         !spec.fault_plan.gray_faults.empty();
  // Message faults can blank a window without any protocol bug: every
  // swallowed reply parks its client for a full commit timeout. The
  // scenario generator keeps crash/partition/gray faults quiet for the
  // last 2s of the window precisely so this check stays sound, but link
  // faults are allowed to run to the end of time; when one does, only
  // claim liveness if the window dwarfs the per-client parking budget —
  // below 4x the timeout the check would be flagging bad luck.
  const sim::SimTime lossy_quiet_from =
      spec.warmup + spec.measure - Millis(2000);
  const bool lossy_thin_window =
      spec.fault_plan.HasMessageFaultsActiveAfter(lossy_quiet_from) &&
      spec.client_timeout > 0 && spec.measure < 4 * spec.client_timeout;
  if (spec.measure >= Seconds(1) && (!can_wedge || spec.client_timeout > 0) &&
      !lossy_thin_window && committed == 0) {
    return Status::FailedPrecondition(
        "liveness violation: nothing committed in a " +
        std::to_string(spec.measure / 1000) + "ms measurement window");
  }

  if (spec.client_timeout > 0) {
    const auto* timeouts = m.FindCounter("client.timeouts");
    if (timeouts == nullptr || timeouts->value != result.client_timeouts) {
      return Status::FailedPrecondition(
          "metrics mismatch: client.timeouts counter disagrees with the "
          "client totals");
    }
  }
  return Status::Ok();
}

}  // namespace

bool OracleReport::ok() const {
  for (const OracleVerdict& v : verdicts) {
    if (!v.status.ok()) return false;
  }
  return true;
}

Status OracleReport::status() const {
  for (const OracleVerdict& v : verdicts) {
    if (!v.status.ok()) return v.status;
  }
  return Status::Ok();
}

std::string OracleReport::FirstFailureName() const {
  for (const OracleVerdict& v : verdicts) {
    if (!v.status.ok()) return v.name;
  }
  return "";
}

std::string OracleReport::Summary() const {
  std::string out;
  for (const OracleVerdict& v : verdicts) {
    out += v.name;
    out += v.status.ok() ? ": ok" : ": FAILED " + v.status.ToString();
    out += '\n';
  }
  return out;
}

OracleReport RunOracles(const ExperimentSpec& spec,
                        const ExperimentResult& result,
                        const OracleOptions& options) {
  OracleReport report;
  if (options.serializability) {
    report.verdicts.push_back(
        {"serializability", CheckSerializabilityOracle(result)});
  }
  if (options.sessions) {
    report.verdicts.push_back({"sessions", CheckSessionsOracle(spec, result)});
  }
  if (options.shard_atomicity) {
    report.verdicts.push_back(
        {"shard_atomicity", CheckShardAtomicityOracle(result)});
  }
  if (options.staged_resolution) {
    report.verdicts.push_back(
        {"staged_resolution", CheckStagedResolutionOracle(result)});
  }
  if (options.exactly_once) {
    report.verdicts.push_back(
        {"exactly_once", CheckExactlyOnceOracle(spec, result)});
  }
  if (options.wal_replay) {
    report.verdicts.push_back({"wal_replay", CheckWalReplayOracle(result)});
  }
  if (options.metrics) {
    report.verdicts.push_back({"metrics", CheckMetricsOracle(spec, result)});
  }
  return report;
}

}  // namespace helios::check
