// OracleSuite: per-scenario invariant checks over a run's captured
// artifacts (harness::RunCapture), in the style of Jepsen's black-box
// history checkers.
//
// Oracles and what each one leans on:
//
//  * "serializability" — conflict serializability of the committed
//    history via core::CheckSerializable (the paper's Section 3 claim).
//  * "sessions" — read-your-writes and monotonic reads per client session,
//    replayed from the client-side SessionLogs against the history.
//    Versions compare in (version_ts, writer) order, the same total order
//    MvStore installs. Skipped for Replicated Commit: its majority reads
//    answer from whichever majority replies first, and two majorities only
//    overlap — the protocol never promised session guarantees, so checking
//    them would be a false alarm, not a bug.
//  * "exactly_once" — no TxnId committed twice: per-datacenter WAL
//    journals contain at most one committed finished record per TxnId
//    (PR 4's journal-then-apply dedup), every datacenter that journaled a
//    transaction agrees on its version timestamp, the history commits each
//    id once, and every client-observed commit is durably journaled at its
//    authoritative datacenter (origin; the coordinator for 2PC).
//  * "wal_replay" — replaying each datacenter's journal reproduces the
//    latest version of every key in its live store (skipping datacenters
//    still down at the end). This is the durability half of crash
//    recovery: the store must never hold a committed version the journal
//    cannot rebuild, and vice versa.
//  * "shard_atomicity" — sharded runs only (src/shard): a cross-shard
//    transaction must finalize the same way on every shard. Within one
//    datacenter, no TxnId may have a committed finished record in one
//    shard's journal and an aborted one in another's.
//  * "staged_resolution" — sharded runs only: the durable coordinator
//    status table is the single source of truth for parallel commits. A
//    COMMITTED entry forbids aborted finalizes, an ABORTED or
//    still-STAGED entry forbids committed finalizes, and every
//    client-observed cross-shard commit must have a COMMITTED entry at
//    its origin.
//  * "metrics" — exported counters match the scenario: recovery.recoveries
//    is nonzero iff a crash/recover pair was scheduled, fault counters are
//    exported iff the plan has message faults, and runs whose fault plan
//    cannot wedge clients (or whose clients have timeouts armed) actually
//    committed work.
//
// RunOracles never runs a simulation; it only inspects spec + result.
// Callers produce the inputs with check::RunScenario (runner.h).

#ifndef HELIOS_CHECK_ORACLES_H_
#define HELIOS_CHECK_ORACLES_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "harness/experiment.h"
#include "harness/experiment_spec.h"

namespace helios::check {

struct OracleOptions {
  bool serializability = true;
  bool sessions = true;
  /// Sharded captures only; pass trivially when capture->shards == 1.
  bool shard_atomicity = true;
  bool staged_resolution = true;
  bool exactly_once = true;
  bool wal_replay = true;
  bool metrics = true;
};

struct OracleVerdict {
  std::string name;
  Status status;
};

struct OracleReport {
  std::vector<OracleVerdict> verdicts;

  bool ok() const;
  /// First failing verdict's status (OK when all passed).
  Status status() const;
  /// First failing oracle's name, or "" when all passed. The Shrinker keys
  /// on this so a candidate only counts as "still failing" when the SAME
  /// invariant breaks.
  std::string FirstFailureName() const;
  /// One line per oracle: "serializability: ok" / "sessions: FAILED ...".
  std::string Summary() const;
};

/// Runs every enabled oracle over one finished experiment. `result` must
/// come from a run with capture_artifacts and tracing enabled (see
/// check::RunScenario); oracles whose inputs are missing fail crisply
/// rather than vacuously passing.
OracleReport RunOracles(const harness::ExperimentSpec& spec,
                        const harness::ExperimentResult& result,
                        const OracleOptions& options = {});

}  // namespace helios::check

#endif  // HELIOS_CHECK_ORACLES_H_
