#include "check/scenario_gen.h"

#include <algorithm>
#include <cassert>
#include <string>

#include "common/random.h"
#include "sim/fault_plan.h"

namespace helios::check {

namespace {

/// Number of datacenters each named topology deploys.
int TopologySize(const harness::ExperimentSpec& spec) {
  if (spec.topology == "table2") return 5;
  if (spec.topology == "example3") return 3;
  return spec.uniform_dcs;
}

Duration UniformDuration(Rng& rng, Duration lo, Duration hi) {
  return static_cast<Duration>(rng.UniformRange(lo, hi));
}

}  // namespace

ScenarioGenerator::ScenarioGenerator(GeneratorOptions options)
    : options_(std::move(options)) {
  assert(!options_.protocols.empty());
  assert(options_.min_clients >= 1 &&
         options_.min_clients <= options_.max_clients);
  assert(options_.min_keys >= 1 && options_.min_keys <= options_.max_keys);
}

harness::ExperimentSpec ScenarioGenerator::Scenario(uint64_t index) const {
  Rng rng(harness::DeriveSeed(options_.master_seed, index));

  // Rejection sampling: some combinations (e.g. a large clock-skew vector
  // against a small commit offset) fail validation; keep drawing from the
  // same stream until one passes. The stream depends only on
  // (master_seed, index), so the result is still deterministic.
  for (int attempt = 0; attempt < 100; ++attempt) {
    harness::ExperimentSpec spec;
    spec.label = "fuzz-" + std::to_string(index);
    spec.protocol =
        options_.protocols[rng.Uniform(options_.protocols.size())];
    spec.seed = rng.Next();

    // Topology: mostly the small deployments (fast), occasionally the
    // paper's five-datacenter Table 2 one.
    const uint64_t topo = rng.Uniform(5);
    if (topo < 2) {
      spec.topology = "example3";
    } else if (topo < 4) {
      spec.WithUniformTopology(
          static_cast<int>(3 + rng.Uniform(3)),           // 3-5 DCs
          30.0 + rng.NextDouble() * 120.0,                // 30-150ms RTT
          rng.Bernoulli(0.5) ? rng.NextDouble() * 10.0 : 0.0);
    } else {
      spec.topology = "table2";
    }
    const int n = TopologySize(spec);

    spec.clients = static_cast<int>(
        rng.UniformRange(options_.min_clients, options_.max_clients));
    spec.ops_per_txn = static_cast<int>(rng.UniformRange(2, 4));
    spec.write_fraction =
        options_.min_write_fraction +
        rng.NextDouble() *
            (options_.max_write_fraction - options_.min_write_fraction);
    spec.num_keys = static_cast<uint64_t>(rng.UniformRange(
        static_cast<int64_t>(options_.min_keys),
        static_cast<int64_t>(options_.max_keys)));
    spec.zipf_theta = rng.NextDouble() * 0.9;
    spec.value_size = static_cast<int>(rng.UniformRange(8, 64));
    spec.read_only_fraction =
        rng.Bernoulli(0.2) ? rng.NextDouble() * 0.3 : 0.0;
    spec.two_pc_coordinator = static_cast<DcId>(rng.Uniform(
        static_cast<uint64_t>(n)));
    spec.check_serializability = true;

    // Sharding (src/shard). The draw happens ONLY when shard_counts can
    // produce something other than 1 — the default options consume zero
    // RNG values here, which is what keeps pre-sharding scenario streams
    // bit-identical. Baselines cannot shard (spec validation rejects it),
    // so their scenarios stay at 1 without consuming draws either.
    const bool shards_enabled =
        options_.shard_counts.size() > 1 || (!options_.shard_counts.empty() &&
                                             options_.shard_counts[0] != 1);
    const bool helios_family =
        spec.protocol != harness::Protocol::kMessageFutures &&
        spec.protocol != harness::Protocol::kReplicatedCommit &&
        spec.protocol != harness::Protocol::kTwoPcPaxos;
    if (shards_enabled && helios_family) {
      spec.shards =
          options_.shard_counts[rng.Uniform(options_.shard_counts.size())];
      if (spec.shards > 1) {
        spec.shard_by = rng.Bernoulli(0.5) ? "range" : "hash";
      }
    }

    // Decide the fault classes first: a crash needs a longer measurement
    // window (commits before the crash, a recovery, and a quiet tail).
    const bool with_crash = options_.crashes && rng.Bernoulli(0.4);
    const bool with_partition = options_.partitions && rng.Bernoulli(0.3);
    const bool with_messages = options_.message_faults && rng.Bernoulli(0.5);
    const bool with_gray = options_.gray_faults && rng.Bernoulli(0.35);

    spec.warmup = UniformDuration(rng, Millis(200), Millis(500));
    spec.measure = with_crash ? UniformDuration(rng, Millis(4000), Millis(6000))
                              : UniformDuration(rng, Millis(2000), Millis(5000));
    const bool any_fault =
        with_crash || with_partition || with_messages || with_gray;
    spec.drain = any_fault ? UniformDuration(rng, Millis(2000), Millis(3000))
                           : UniformDuration(rng, Millis(1000), Millis(3000));

    if (options_.clock_skew && rng.Bernoulli(0.5)) {
      spec.clock_offsets.clear();
      for (int dc = 0; dc < n; ++dc) {
        spec.clock_offsets.push_back(
            UniformDuration(rng, -Millis(30), Millis(30)));
      }
    }

    const sim::SimTime measure_until = spec.warmup + spec.measure;
    // Faults must go quiet at least this long before the window closes so
    // the liveness oracle ("some transactions committed") stays sound.
    const sim::SimTime quiet_from = measure_until - Millis(2000);

    if (with_messages) {
      const uint64_t count = 1 + rng.Uniform(2);
      for (uint64_t i = 0; i < count; ++i) {
        sim::LinkFault f;
        if (!rng.Bernoulli(0.5)) {
          f.from = static_cast<int>(rng.Uniform(static_cast<uint64_t>(n)));
          do {
            f.to = static_cast<int>(rng.Uniform(static_cast<uint64_t>(n)));
          } while (f.to == f.from);
        }
        f.loss = rng.Bernoulli(0.7) ? rng.NextDouble() * 0.12 : 0.0;
        f.duplicate = rng.Bernoulli(0.4) ? rng.NextDouble() * 0.08 : 0.0;
        if (rng.Bernoulli(0.5)) {
          f.reorder = rng.NextDouble() * 0.3;
          f.reorder_window = UniformDuration(rng, Millis(1), Millis(20));
        }
        if (rng.Bernoulli(0.3)) f.delay = UniformDuration(rng, Millis(2), Millis(30));
        if (rng.Bernoulli(0.5)) {
          f.active_from = UniformDuration(rng, 0, spec.warmup + spec.measure / 2);
          f.active_until =
              f.active_from + UniformDuration(rng, Millis(500), spec.measure / 2);
        }
        if (f.HasEffect()) spec.fault_plan.AddLinkFault(std::move(f));
      }
    }

    if (with_crash) {
      const int victim = static_cast<int>(rng.Uniform(static_cast<uint64_t>(n)));
      // Leave room for commits before the crash and a quiet recovery tail.
      const sim::SimTime crash_at =
          spec.warmup + Millis(800) + UniformDuration(rng, 0, spec.measure / 3);
      sim::SimTime recover_at =
          crash_at + Millis(500) + UniformDuration(rng, 0, spec.measure / 3);
      recover_at = std::min(recover_at, quiet_from);
      if (recover_at > crash_at) {
        spec.fault_plan.AddCrash(crash_at, victim);
        spec.fault_plan.AddRecover(recover_at, victim);
      }
    }

    if (with_partition && n >= 2) {
      const int a = static_cast<int>(rng.Uniform(static_cast<uint64_t>(n)));
      int b;
      do {
        b = static_cast<int>(rng.Uniform(static_cast<uint64_t>(n)));
      } while (b == a);
      const sim::SimTime cut_at =
          spec.warmup + Millis(500) + UniformDuration(rng, 0, spec.measure / 3);
      sim::SimTime heal_at =
          cut_at + Millis(300) + UniformDuration(rng, 0, spec.measure / 3);
      heal_at = std::min(heal_at, quiet_from);
      if (heal_at > cut_at) {
        spec.fault_plan.AddPartition(cut_at, a, b);
        spec.fault_plan.AddHeal(heal_at, a, b);
      }
    }

    if (with_gray && n >= 2) {
      // One gray fault, plus the health subsystem so the sweep exercises
      // suspicion, degraded commit, and re-admission (not just injection).
      spec.WithHealth(true);
      const sim::SimTime gray_from =
          spec.warmup + Millis(300) + UniformDuration(rng, 0, spec.measure / 3);
      sim::SimTime gray_until = gray_from + Millis(400) +
                                UniformDuration(rng, 0, spec.measure / 3);
      gray_until = std::min(gray_until, quiet_from);
      const int ga = static_cast<int>(rng.Uniform(static_cast<uint64_t>(n)));
      int gb;
      do {
        gb = static_cast<int>(rng.Uniform(static_cast<uint64_t>(n)));
      } while (gb == ga);
      const double factor = 2.0 + rng.NextDouble() * 10.0;
      const Duration extra =
          rng.Bernoulli(0.5) ? UniformDuration(rng, 0, Millis(10)) : 0;
      const Duration per_record = UniformDuration(rng, Millis(1), Millis(8));
      if (gray_until > gray_from) {
        switch (rng.Uniform(4)) {
          case 0:
            spec.fault_plan.AddSlowLink(gray_from, gray_until, ga, gb, factor,
                                        extra);
            break;
          case 1:
            spec.fault_plan.AddAsymPartition(gray_from, gray_until, ga, gb);
            break;
          case 2:
            spec.fault_plan.AddProcessStall(gray_from, gray_until, ga);
            break;
          default:
            spec.fault_plan.AddFsyncStall(gray_from, gray_until, ga,
                                          per_record);
            break;
        }
      }
    }

    if (!spec.fault_plan.empty()) {
      // Any fault can swallow a request; without the timeout a closed-loop
      // client wedges forever and the liveness oracle fires spuriously.
      spec.WithClientTimeout(UniformDuration(rng, Millis(1500), Millis(2500)),
                             /*retries=*/10);
    }

    if (spec.Validate().ok()) return spec;
  }
  assert(false && "scenario sampling failed to find a valid spec");
  return harness::ExperimentSpec{};
}

}  // namespace helios::check
