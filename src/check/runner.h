// RunScenario: executes one fuzz scenario end to end — materialize the
// spec, run the deterministic simulation with artifact capture + tracing
// enabled, then judge the run with the oracle suite. This is the single
// evaluation function shared by the fuzz driver (tools/helios_fuzz), the
// shrinker, the corpus replay test, and the mutation smoke test, so a
// repro JSON replays through exactly the code path that found it.

#ifndef HELIOS_CHECK_RUNNER_H_
#define HELIOS_CHECK_RUNNER_H_

#include "check/oracles.h"
#include "common/status.h"
#include "harness/experiment.h"
#include "harness/experiment_spec.h"

namespace helios::check {

/// Turns the oracles' required instrumentation on: tracing (for the
/// metrics snapshot) and artifact capture (history, session logs, WALs,
/// store snapshots). The fuzz driver's SweepRunner configure hook applies
/// this to every job.
void ConfigureForChecking(harness::ExperimentConfig* config);

struct ScenarioVerdict {
  harness::ExperimentSpec spec;
  /// Spec validation / config materialization outcome. The oracle report
  /// is only meaningful when this is OK.
  Status run_status;
  OracleReport report;

  bool ok() const { return run_status.ok() && report.ok(); }
  /// run_status if it failed, else the first failing oracle's status.
  Status status() const {
    return run_status.ok() ? report.status() : run_status;
  }
};

/// Runs `spec` and checks every enabled oracle. Deterministic: the same
/// spec always produces the same verdict.
ScenarioVerdict RunScenario(const harness::ExperimentSpec& spec,
                            const OracleOptions& options = {});

}  // namespace helios::check

#endif  // HELIOS_CHECK_RUNNER_H_
