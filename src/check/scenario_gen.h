// ScenarioGenerator: samples random but always-valid ExperimentSpecs for
// the simulation fuzzer (tools/helios_fuzz, docs/TESTING.md).
//
// The deterministic DES is the precondition for FoundationDB-style
// simulation testing: a scenario is fully described by one ExperimentSpec,
// and the spec is fully described by (GeneratorOptions, index). The
// generator draws every knob the harness exposes — protocol, topology and
// its jitter, client count, workload contention, clock-skew vectors, fault
// plans (loss/duplication/reordering/delay, timed crashes, partitions) and
// the client commit timeout — from an Rng seeded with
// DeriveSeed(master_seed, index), then keeps only specs that pass
// ExperimentSpec::Validate() (which reuses core::ValidateHeliosConfig,
// including the Rule 1 offset check). Same options + same index = same
// scenario, forever; a failing index is a complete repro.

#ifndef HELIOS_CHECK_SCENARIO_GEN_H_
#define HELIOS_CHECK_SCENARIO_GEN_H_

#include <cstdint>
#include <vector>

#include "harness/experiment_spec.h"

namespace helios::check {

struct GeneratorOptions {
  uint64_t master_seed = 1;

  /// Protocols to draw from. Defaults to the four the acceptance gate
  /// sweeps: both fault-tolerant Helios configurations and both lock-based
  /// baselines.
  std::vector<harness::Protocol> protocols = {
      harness::Protocol::kHelios1, harness::Protocol::kHelios2,
      harness::Protocol::kReplicatedCommit, harness::Protocol::kTwoPcPaxos};

  // Fault classes to explore. Any scheduled fault arms the client commit
  // timeout so closed-loop clients cannot wedge on swallowed requests.
  bool crashes = true;
  bool partitions = true;
  bool message_faults = true;
  bool clock_skew = true;
  /// Gray faults (slow links, asymmetric partitions, process/fsync stalls,
  /// docs/FAULTS.md). Scenarios that draw one also enable the health
  /// subsystem, so the sweep exercises suspicion, degraded commit, and
  /// re-admission under every oracle.
  bool gray_faults = true;

  /// Shard counts to draw from (src/shard). The default {1} draws no RNG
  /// values at all, so pre-sharding scenario streams replay byte for
  /// byte. Counts > 1 are applied only to Helios-family protocols (the
  /// cross-shard commit leans on Rule 2); a draw landing on a baseline
  /// protocol keeps shards = 1.
  std::vector<int> shard_counts = {1};

  // Contention range. The defaults keep scenarios small enough that a
  // fuzz run completes hundreds of them, while contended enough that
  // ordering bugs (see HELIOS_CHECK_MUTATION) actually manifest.
  int min_clients = 2;
  int max_clients = 8;
  uint64_t min_keys = 16;
  uint64_t max_keys = 256;
  double min_write_fraction = 0.3;
  double max_write_fraction = 0.9;
};

class ScenarioGenerator {
 public:
  explicit ScenarioGenerator(GeneratorOptions options = {});

  /// The scenario at `index`: deterministic, validated
  /// (spec.Validate().ok()), labeled "fuzz-<index>".
  harness::ExperimentSpec Scenario(uint64_t index) const;

  const GeneratorOptions& options() const { return options_; }

 private:
  GeneratorOptions options_;
};

}  // namespace helios::check

#endif  // HELIOS_CHECK_SCENARIO_GEN_H_
