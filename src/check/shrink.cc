#include "check/shrink.h"

#include <utility>
#include <vector>

#include "check/runner.h"

namespace helios::check {

namespace {

using harness::ExperimentSpec;

/// One simplification attempt: an edit applied to the current best spec.
using Edit = std::function<bool(ExperimentSpec*)>;  // false = no-op here

/// The candidate edits for one round, most aggressive first (clearing the
/// whole fault plan in one step beats dropping events one by one when the
/// plan is irrelevant to the failure). Event-drop edits are regenerated
/// every round because accepting one renumbers the lists.
std::vector<Edit> EditsFor(const ExperimentSpec& spec) {
  std::vector<Edit> edits;
  if (!spec.fault_plan.empty()) {
    edits.push_back([](ExperimentSpec* s) {
      s->fault_plan = sim::FaultPlan{};
      // The timeout only existed to survive the faults.
      s->client_timeout = 0;
      s->client_retries = 3;
      return true;
    });
    for (size_t i = 0; i < spec.fault_plan.node_events.size(); ++i) {
      edits.push_back([i](ExperimentSpec* s) {
        auto& v = s->fault_plan.node_events;
        if (i >= v.size()) return false;
        v.erase(v.begin() + static_cast<ptrdiff_t>(i));
        return true;
      });
    }
    for (size_t i = 0; i < spec.fault_plan.partition_events.size(); ++i) {
      edits.push_back([i](ExperimentSpec* s) {
        auto& v = s->fault_plan.partition_events;
        if (i >= v.size()) return false;
        v.erase(v.begin() + static_cast<ptrdiff_t>(i));
        return true;
      });
    }
    for (size_t i = 0; i < spec.fault_plan.link_faults.size(); ++i) {
      edits.push_back([i](ExperimentSpec* s) {
        auto& v = s->fault_plan.link_faults;
        if (i >= v.size()) return false;
        v.erase(v.begin() + static_cast<ptrdiff_t>(i));
        return true;
      });
    }
    for (size_t i = 0; i < spec.fault_plan.gray_faults.size(); ++i) {
      edits.push_back([i](ExperimentSpec* s) {
        auto& v = s->fault_plan.gray_faults;
        if (i >= v.size()) return false;
        v.erase(v.begin() + static_cast<ptrdiff_t>(i));
        return true;
      });
    }
  }
  // Unshard: if the failure reproduces on the plain single-deployment
  // cluster, the cross-shard machinery is not part of the story.
  edits.push_back([](ExperimentSpec* s) {
    if (s->shards <= 1) return false;
    s->shards = 1;
    s->shard_by = "hash";
    return true;
  });
  // Health reaction off (detection alone rarely reproduces a failure that
  // degraded commit caused).
  edits.push_back([](ExperimentSpec* s) {
    if (!s->health_enabled) return false;
    s->health_enabled = false;
    return true;
  });
  edits.push_back([](ExperimentSpec* s) {
    if (s->clients <= 2) return false;
    s->clients = std::max(2, s->clients / 2);
    return true;
  });
  edits.push_back([](ExperimentSpec* s) {
    if (s->measure <= Millis(1500)) return false;
    s->measure = std::max<Duration>(Millis(1500), s->measure / 2);
    return true;
  });
  edits.push_back([](ExperimentSpec* s) {
    if (s->drain <= Millis(1000)) return false;
    s->drain = std::max<Duration>(Millis(1000), s->drain / 2);
    return true;
  });
  edits.push_back([](ExperimentSpec* s) {
    if (s->warmup <= Millis(200)) return false;
    s->warmup = Millis(200);
    return true;
  });
  edits.push_back([](ExperimentSpec* s) {
    if (s->zipf_theta == 0.0) return false;
    s->zipf_theta = 0.0;
    return true;
  });
  edits.push_back([](ExperimentSpec* s) {
    if (s->read_only_fraction == 0.0) return false;
    s->read_only_fraction = 0.0;
    return true;
  });
  edits.push_back([](ExperimentSpec* s) {
    if (s->clock_offsets.empty()) return false;
    s->clock_offsets.clear();
    return true;
  });
  edits.push_back([](ExperimentSpec* s) {
    if (!s->rtt_estimate_ms.has_value()) return false;
    s->rtt_estimate_ms.reset();
    return true;
  });
  return edits;
}

}  // namespace

int CountFaultEvents(const ExperimentSpec& spec) {
  return static_cast<int>(spec.fault_plan.link_faults.size() +
                          spec.fault_plan.gray_faults.size() +
                          spec.fault_plan.node_events.size() +
                          spec.fault_plan.partition_events.size());
}

ShrinkResult Shrink(const ExperimentSpec& spec, const ShrinkOptions& options,
                    ScenarioEvaluator evaluate) {
  if (!evaluate) {
    const OracleOptions oracles = options.oracles;
    evaluate = [oracles](const ExperimentSpec& s) -> std::string {
      const ScenarioVerdict v = RunScenario(s, oracles);
      // A spec that no longer runs is not "the same failure".
      if (!v.run_status.ok()) return "";
      return v.report.FirstFailureName();
    };
  }

  ShrinkResult out;
  out.spec = spec;
  out.oracle = evaluate(spec);
  out.runs = 1;
  out.fault_events = CountFaultEvents(spec);
  if (out.oracle.empty()) return out;  // Nothing to shrink: it passes.

  // Greedy fixpoint: accept any edit that keeps the same oracle failing,
  // restart the round after an accept (event indices shift), stop when a
  // full round yields nothing or the budget runs out.
  bool progressed = true;
  while (progressed && out.runs < options.max_runs) {
    progressed = false;
    for (const Edit& edit : EditsFor(out.spec)) {
      if (out.runs >= options.max_runs) break;
      ExperimentSpec candidate = out.spec;
      if (!edit(&candidate)) continue;
      if (!candidate.Validate().ok()) continue;
      ++out.runs;
      if (evaluate(candidate) == out.oracle) {
        out.spec = std::move(candidate);
        progressed = true;
        break;
      }
    }
  }
  out.fault_events = CountFaultEvents(out.spec);
  return out;
}

}  // namespace helios::check
