#include "check/runner.h"

namespace helios::check {

void ConfigureForChecking(harness::ExperimentConfig* config) {
  config->trace.enabled = true;
  config->capture_artifacts = true;
}

ScenarioVerdict RunScenario(const harness::ExperimentSpec& spec,
                            const OracleOptions& options) {
  ScenarioVerdict verdict;
  verdict.spec = spec;
  auto config = spec.ToConfig();
  if (!config.ok()) {
    verdict.run_status = config.status();
    return verdict;
  }
  ConfigureForChecking(&config.value());
  const harness::ExperimentResult result = RunExperiment(config.value());
  verdict.report = RunOracles(spec, result, options);
  return verdict;
}

}  // namespace helios::check
