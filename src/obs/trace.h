// Transaction-lifecycle tracing: structured events and spans recorded per
// transaction and per message hop, with bounded memory and an exporter to
// the Chrome trace_event JSON format (loadable in chrome://tracing or
// https://ui.perfetto.dev).
//
// Every protocol decision in Helios hinges on *when* messages arrive and
// how long a transaction sat in each commit-wait stage (Rule 2 knowledge
// wait, Rule 3 ack quorum, service-queue time). End-to-end aggregates
// (ClientMetrics, NodeCounters) cannot localize a latency regression; this
// recorder can: it captures the timeline
//
//   client.issue -> txn.request -> txn.queue -> txn.append ->
//   txn.commit_wait -> txn.commit / txn.abort
//
// plus every envelope hop over the simulated WAN (env.send, net.hop,
// env.recv), all on the *scheduler* time basis so events from differently
// skewed datacenters line up on one timeline.
//
// Cost model: recording is OFF unless a component has been handed a
// non-null TraceRecorder; every instrumentation site is a single
// pointer-null check on the disabled path, so benches and production runs
// without tracing pay (measurably) nothing. When enabled, events land in a
// fixed-capacity ring buffer: the newest `capacity` events are kept and the
// oldest are evicted, so memory stays bounded no matter how long the run.

#ifndef HELIOS_OBS_TRACE_H_
#define HELIOS_OBS_TRACE_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace helios::obs {

/// What happened. Span kinds carry a duration; instant kinds do not.
enum class EventKind : uint8_t {
  // --- Transaction lifecycle (dc = the datacenter acting) ---------------
  kClientIssue,    ///< Instant: client sent the commit request.
  kClientCommit,   ///< Span: client-observed request -> decision.
  kTxnRequest,     ///< Instant: commit request arrived at the node.
  kTxnQueue,       ///< Span: service-queue wait + request processing.
  kTxnAppend,      ///< Instant: preparing record appended to the log.
  kCommitWait,     ///< Span: q(t) -> commit-wait satisfied (Rule 2/3).
  kTxnServer,      ///< Span: request arrival -> decision at the server.
  kTxnCommit,      ///< Instant: decision = commit.
  kTxnAbort,       ///< Instant: decision = abort (detail = reason).
  // --- Messaging (dc = sender or receiver, peer = the other end) --------
  kEnvelopeSend,   ///< Instant: node handed an envelope to the WAN.
  kEnvelopeRecv,   ///< Instant: envelope arrived at the peer node.
  kNetHop,         ///< Span: one-way WAN flight (dc = from, peer = to).
  kNetDrop,        ///< Instant: message dropped (crash or partition).
  kNetRetransmit,  ///< Span: reliable-layer retransmission wait (dc = from,
                   ///< peer = to) from loss detection to the resend.
  // --- Recovery (dc = the recovering datacenter) ------------------------
  kNodeRecover,    ///< Span: WAL restore begins -> anti-entropy catch-up
                   ///< complete (the node re-enters the commit path).
};

/// Stable short name, e.g. "txn.commit_wait". Used as the Chrome-trace
/// event name and in tests.
const char* KindName(EventKind kind);

/// True for kinds that carry a duration.
bool IsSpanKind(EventKind kind);

/// One recorded event. `ts_us` / `dur_us` are on the scheduler ("true")
/// time basis, in microseconds; `dur_us` is negative for instants.
struct TraceEvent {
  EventKind kind = EventKind::kTxnRequest;
  DcId dc = kInvalidDc;      ///< Acting datacenter (Chrome-trace pid).
  DcId peer = kInvalidDc;    ///< Other end of a hop, if any.
  TxnId txn;                 ///< Associated transaction, if any.
  int64_t ts_us = 0;
  int64_t dur_us = -1;
  std::string detail;        ///< Small free-form note (abort reason, ...).
};

/// Greedy interval-graph lane assignment used by the exporter: spans are
/// given the smallest lane whose previous occupant has ended, so
/// overlapping spans render on separate Chrome-trace threads. `spans` must
/// be sorted by ts_us; returns one lane index per span. Exposed for tests.
std::vector<int> AssignLanes(const std::vector<const TraceEvent*>& spans);

/// Bounded-memory recorder of TraceEvents.
///
/// Single-threaded, like the simulation that feeds it. All recording
/// methods are O(1); the ring keeps the newest `capacity` events.
class TraceRecorder {
 public:
  static constexpr size_t kDefaultCapacity = size_t{1} << 18;  // ~256k events

  explicit TraceRecorder(size_t capacity = kDefaultCapacity);

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Records a fully populated event.
  void Record(TraceEvent event);

  /// Convenience: an instant event.
  void Instant(EventKind kind, DcId dc, const TxnId& txn, int64_t ts_us,
               DcId peer = kInvalidDc, std::string detail = {});

  /// Convenience: a span [start_us, end_us] (clamped to >= 0 duration).
  void Span(EventKind kind, DcId dc, const TxnId& txn, int64_t start_us,
            int64_t end_us, DcId peer = kInvalidDc, std::string detail = {});

  /// Events currently retained, oldest first.
  std::vector<TraceEvent> Events() const;

  size_t size() const { return buffer_.size(); }
  size_t capacity() const { return capacity_; }
  uint64_t total_recorded() const { return total_recorded_; }
  uint64_t dropped() const { return total_recorded_ - buffer_.size(); }
  void Clear();

  /// Writes the retained events as Chrome trace_event JSON (the
  /// {"traceEvents": [...]} object form). Spans become complete ("X")
  /// events; instants become "i" events. pid = datacenter, tid = a lane
  /// chosen so overlapping spans do not collide; process/thread metadata
  /// names the lanes.
  void ExportChromeTrace(std::ostream& os) const;

  /// ExportChromeTrace to a file.
  Status WriteChromeTrace(const std::string& path) const;

 private:
  size_t capacity_;
  size_t next_ = 0;  ///< Ring write position once the buffer is full.
  uint64_t total_recorded_ = 0;
  std::vector<TraceEvent> buffer_;
};

/// Knob block embedded in harness/tool configs.
struct TraceConfig {
  bool enabled = false;
  size_t ring_capacity = TraceRecorder::kDefaultCapacity;
};

}  // namespace helios::obs

#endif  // HELIOS_OBS_TRACE_H_
