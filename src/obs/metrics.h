// Named runtime metrics: counters, gauges, and fixed-bucket latency
// histograms, collected into a MetricsRegistry and dumped as a
// deterministic JSON or CSV snapshot.
//
// Complements the tracing side of src/obs: traces answer "where did THIS
// transaction's latency go", metrics answer "what is the distribution of
// each stage across the whole run". Components record into histograms
// cached by pointer (one map lookup at wiring time, O(1) per observation);
// a component holding no registry records nothing and pays a single null
// check — the same zero-cost-when-disabled contract as TraceRecorder.

#ifndef HELIOS_OBS_METRICS_H_
#define HELIOS_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace helios::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void Inc(uint64_t delta = 1) { value_ += delta; }
  void Set(uint64_t value) { value_ = value; }
  uint64_t value() const { return value_; }

 private:
  uint64_t value_ = 0;
};

/// Last-write-wins point-in-time value.
class Gauge {
 public:
  void Set(double value) { value_ = value; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket histogram: `bounds` are ascending inclusive upper bounds;
/// an implicit overflow bucket catches everything above the last bound.
/// Memory is bounds.size()+1 counters regardless of sample count, unlike
/// the sample-retaining common/stats Distribution.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double x);

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  const std::vector<double>& bounds() const { return bounds_; }
  /// bounds().size() + 1 entries; the last is the overflow bucket.
  const std::vector<uint64_t>& buckets() const { return buckets_; }

  /// Estimated quantile (`q` in [0, 1]) by linear interpolation inside the
  /// containing bucket; 0 on an empty histogram. Clamped to the observed
  /// min/max so estimates never leave the data range.
  double Quantile(double q) const;

 private:
  std::vector<double> bounds_;
  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Default bucket bounds for microsecond latencies: roughly logarithmic
/// from 50us to 60s, 2 buckets per octave.
std::vector<double> DefaultLatencyBucketsUs();

/// One immutable dump of a registry, ordered by metric name (so two
/// registries populated in any order snapshot identically).
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    uint64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    double value = 0.0;
  };
  struct HistogramValue {
    std::string name;
    uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p99 = 0.0;
    std::vector<double> bounds;
    std::vector<uint64_t> buckets;
  };

  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }

  const CounterValue* FindCounter(const std::string& name) const;
  const HistogramValue* FindHistogram(const std::string& name) const;

  std::string ToJson() const;
  /// One line per scalar: "kind,name,field,value".
  std::string ToCsv() const;
  /// Writes ToJson() (or ToCsv() when `path` ends in ".csv").
  Status WriteFile(const std::string& path) const;
};

/// Owner of all named metrics. Lookup creates on first use; returned
/// references stay valid for the registry's lifetime, so call sites cache
/// them and skip the map on the hot path.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `bounds` applies only on first creation; empty = default latency
  /// buckets.
  Histogram& histogram(const std::string& name,
                       std::vector<double> bounds = {});

  MetricsSnapshot Snapshot() const;

 private:
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace helios::obs

#endif  // HELIOS_OBS_METRICS_H_
