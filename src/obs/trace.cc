#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <ostream>
#include <queue>
#include <sstream>

namespace helios::obs {

const char* KindName(EventKind kind) {
  switch (kind) {
    case EventKind::kClientIssue:
      return "client.issue";
    case EventKind::kClientCommit:
      return "client.commit";
    case EventKind::kTxnRequest:
      return "txn.request";
    case EventKind::kTxnQueue:
      return "txn.queue";
    case EventKind::kTxnAppend:
      return "txn.append";
    case EventKind::kCommitWait:
      return "txn.commit_wait";
    case EventKind::kTxnServer:
      return "txn.server";
    case EventKind::kTxnCommit:
      return "txn.commit";
    case EventKind::kTxnAbort:
      return "txn.abort";
    case EventKind::kEnvelopeSend:
      return "env.send";
    case EventKind::kEnvelopeRecv:
      return "env.recv";
    case EventKind::kNetHop:
      return "net.hop";
    case EventKind::kNetDrop:
      return "net.drop";
    case EventKind::kNetRetransmit:
      return "net.retransmit";
    case EventKind::kNodeRecover:
      return "node.recover";
  }
  return "?";
}

bool IsSpanKind(EventKind kind) {
  switch (kind) {
    case EventKind::kClientCommit:
    case EventKind::kTxnQueue:
    case EventKind::kCommitWait:
    case EventKind::kTxnServer:
    case EventKind::kNetHop:
    case EventKind::kNetRetransmit:
    case EventKind::kNodeRecover:
      return true;
    default:
      return false;
  }
}

std::vector<int> AssignLanes(const std::vector<const TraceEvent*>& spans) {
  // Greedy interval partitioning: free lanes ordered by index, busy lanes
  // in a min-heap by end time. A span takes the lowest-numbered lane that
  // has drained; otherwise it opens a new lane.
  std::vector<int> lanes(spans.size(), 0);
  using Busy = std::pair<int64_t, int>;  // (end_us, lane)
  std::priority_queue<Busy, std::vector<Busy>, std::greater<Busy>> busy;
  std::priority_queue<int, std::vector<int>, std::greater<int>> free_lanes;
  int next_lane = 0;
  for (size_t i = 0; i < spans.size(); ++i) {
    const TraceEvent& e = *spans[i];
    while (!busy.empty() && busy.top().first <= e.ts_us) {
      free_lanes.push(busy.top().second);
      busy.pop();
    }
    int lane;
    if (!free_lanes.empty()) {
      lane = free_lanes.top();
      free_lanes.pop();
    } else {
      lane = next_lane++;
    }
    lanes[i] = lane;
    busy.emplace(e.ts_us + std::max<int64_t>(e.dur_us, 0), lane);
  }
  return lanes;
}

TraceRecorder::TraceRecorder(size_t capacity)
    : capacity_(std::max<size_t>(capacity, 1)) {}

void TraceRecorder::Record(TraceEvent event) {
  ++total_recorded_;
  if (buffer_.size() < capacity_) {
    buffer_.push_back(std::move(event));
    return;
  }
  buffer_[next_] = std::move(event);
  next_ = (next_ + 1) % capacity_;
}

void TraceRecorder::Instant(EventKind kind, DcId dc, const TxnId& txn,
                            int64_t ts_us, DcId peer, std::string detail) {
  TraceEvent e;
  e.kind = kind;
  e.dc = dc;
  e.peer = peer;
  e.txn = txn;
  e.ts_us = ts_us;
  e.detail = std::move(detail);
  Record(std::move(e));
}

void TraceRecorder::Span(EventKind kind, DcId dc, const TxnId& txn,
                         int64_t start_us, int64_t end_us, DcId peer,
                         std::string detail) {
  TraceEvent e;
  e.kind = kind;
  e.dc = dc;
  e.peer = peer;
  e.txn = txn;
  e.ts_us = start_us;
  e.dur_us = std::max<int64_t>(end_us - start_us, 0);
  e.detail = std::move(detail);
  Record(std::move(e));
}

std::vector<TraceEvent> TraceRecorder::Events() const {
  std::vector<TraceEvent> out;
  out.reserve(buffer_.size());
  if (buffer_.size() < capacity_) {
    out = buffer_;
    return out;
  }
  // Full ring: next_ is the oldest element.
  out.insert(out.end(), buffer_.begin() + static_cast<ptrdiff_t>(next_),
             buffer_.end());
  out.insert(out.end(), buffer_.begin(),
             buffer_.begin() + static_cast<ptrdiff_t>(next_));
  return out;
}

void TraceRecorder::Clear() {
  buffer_.clear();
  next_ = 0;
  total_recorded_ = 0;
}

namespace {

/// JSON string escaping for the small names/details we emit.
void AppendJsonString(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      case '\r':
        os << "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

/// Lane-group of an event within its datacenter's Chrome-trace process:
/// server-side transaction events, client-observed events, and WAN hops
/// render as separate thread blocks.
enum class LaneGroup { kServer = 0, kClient = 1, kNet = 2 };

LaneGroup GroupOf(EventKind kind) {
  switch (kind) {
    case EventKind::kClientIssue:
    case EventKind::kClientCommit:
      return LaneGroup::kClient;
    case EventKind::kEnvelopeSend:
    case EventKind::kEnvelopeRecv:
    case EventKind::kNetHop:
    case EventKind::kNetDrop:
      return LaneGroup::kNet;
    default:
      return LaneGroup::kServer;
  }
}

const char* GroupName(LaneGroup g) {
  switch (g) {
    case LaneGroup::kServer:
      return "server";
    case LaneGroup::kClient:
      return "client";
    case LaneGroup::kNet:
      return "net";
  }
  return "?";
}

/// Lanes within a group start at group * kGroupStride, so groups never
/// interleave in the Chrome-trace thread list.
constexpr int kGroupStride = 100;

void EmitEvent(std::ostream& os, const TraceEvent& e, int tid, bool* first) {
  if (!*first) os << ",\n";
  *first = false;
  os << "{\"name\":";
  AppendJsonString(os, KindName(e.kind));
  os << ",\"cat\":";
  AppendJsonString(os, GroupName(GroupOf(e.kind)));
  if (e.dur_us >= 0) {
    os << ",\"ph\":\"X\",\"ts\":" << e.ts_us << ",\"dur\":" << e.dur_us;
  } else {
    os << ",\"ph\":\"i\",\"s\":\"t\",\"ts\":" << e.ts_us;
  }
  os << ",\"pid\":" << e.dc << ",\"tid\":" << tid << ",\"args\":{";
  bool first_arg = true;
  if (e.txn.valid()) {
    os << "\"txn\":";
    AppendJsonString(os, e.txn.ToString());
    first_arg = false;
  }
  if (e.peer != kInvalidDc) {
    if (!first_arg) os << ",";
    os << "\"peer\":" << e.peer;
    first_arg = false;
  }
  if (!e.detail.empty()) {
    if (!first_arg) os << ",";
    os << "\"detail\":";
    AppendJsonString(os, e.detail);
  }
  os << "}}";
}

void EmitMetadata(std::ostream& os, const char* name, int pid, int tid,
                  const std::string& value, bool* first) {
  if (!*first) os << ",\n";
  *first = false;
  os << "{\"name\":\"" << name << "\",\"ph\":\"M\",\"pid\":" << pid;
  if (tid >= 0) os << ",\"tid\":" << tid;
  os << ",\"args\":{\"name\":";
  AppendJsonString(os, value);
  os << "}}";
}

}  // namespace

void TraceRecorder::ExportChromeTrace(std::ostream& os) const {
  const std::vector<TraceEvent> events = Events();

  // Bucket span events by (pid, group) and lane-assign each bucket so
  // overlapping spans land on distinct tids. Ring order is record order,
  // which is non-decreasing in ts only per emitting site, so sort each
  // bucket by start time first.
  std::map<std::pair<DcId, LaneGroup>, std::vector<size_t>> span_buckets;
  for (size_t i = 0; i < events.size(); ++i) {
    if (events[i].dur_us >= 0) {
      span_buckets[{events[i].dc, GroupOf(events[i].kind)}].push_back(i);
    }
  }
  std::vector<int> tid(events.size(), 0);
  for (auto& [key, indices] : span_buckets) {
    std::stable_sort(indices.begin(), indices.end(), [&](size_t a, size_t b) {
      return events[a].ts_us < events[b].ts_us;
    });
    std::vector<const TraceEvent*> spans;
    spans.reserve(indices.size());
    for (size_t i : indices) spans.push_back(&events[i]);
    const std::vector<int> lanes = AssignLanes(spans);
    const int base = static_cast<int>(key.second) * kGroupStride;
    for (size_t j = 0; j < indices.size(); ++j) {
      tid[indices[j]] = base + lanes[j];
    }
  }

  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  // Name each datacenter process and each lane group's base thread.
  std::map<DcId, std::vector<bool>> seen_groups;
  for (const TraceEvent& e : events) {
    auto& groups = seen_groups[e.dc];
    if (groups.empty()) {
      groups.assign(3, false);
      EmitMetadata(os, "process_name", e.dc, -1,
                   e.dc == kInvalidDc ? "harness"
                                      : "dc" + std::to_string(e.dc),
                   &first);
    }
    const auto g = static_cast<size_t>(GroupOf(e.kind));
    if (!groups[g]) {
      groups[g] = true;
      EmitMetadata(os, "thread_name", e.dc,
                   static_cast<int>(g) * kGroupStride,
                   GroupName(GroupOf(e.kind)), &first);
    }
  }
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    const int t = e.dur_us >= 0
                      ? tid[i]
                      : static_cast<int>(GroupOf(e.kind)) * kGroupStride;
    EmitEvent(os, e, t, &first);
  }
  os << "\n]}\n";
}

Status TraceRecorder::WriteChromeTrace(const std::string& path) const {
  std::ofstream out(path, std::ios::out | std::ios::trunc);
  if (!out) {
    return Status::InvalidArgument("cannot open trace output file: " + path);
  }
  ExportChromeTrace(out);
  out.flush();
  if (!out) return Status::Internal("failed writing trace to " + path);
  return Status::Ok();
}

}  // namespace helios::obs
