#include "obs/metrics.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <fstream>
#include <sstream>

namespace helios::obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  assert(std::is_sorted(bounds_.begin(), bounds_.end()));
  buckets_.assign(bounds_.size() + 1, 0);
}

void Histogram::Observe(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  ++buckets_[static_cast<size_t>(it - bounds_.begin())];
}

double Histogram::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count_);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    const double before = static_cast<double>(cumulative);
    cumulative += buckets_[i];
    if (static_cast<double>(cumulative) < target) continue;
    // The target rank falls in bucket i: interpolate across its range.
    const double lo = i == 0 ? min_ : bounds_[i - 1];
    const double hi = i < bounds_.size() ? bounds_[i] : max_;
    const double frac =
        (target - before) / static_cast<double>(buckets_[i]);
    const double v = lo + (hi - lo) * frac;
    return std::clamp(v, min_, max_);
  }
  return max_;
}

std::vector<double> DefaultLatencyBucketsUs() {
  // 50us .. 60s, multiplying by ~sqrt(2): 2 buckets per octave keeps the
  // relative quantile error under ~20% with only ~42 buckets.
  std::vector<double> bounds;
  for (double b = 50.0; b <= 60e6; b *= std::sqrt(2.0)) {
    bounds.push_back(std::round(b));
  }
  return bounds;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  auto& slot = histograms_[name];
  if (!slot) {
    slot = std::make_unique<Histogram>(
        bounds.empty() ? DefaultLatencyBucketsUs() : std::move(bounds));
  }
  return *slot;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) {
    snap.counters.push_back({name, c->value()});
  }
  for (const auto& [name, g] : gauges_) {
    snap.gauges.push_back({name, g->value()});
  }
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::HistogramValue v;
    v.name = name;
    v.count = h->count();
    v.sum = h->sum();
    v.min = h->min();
    v.max = h->max();
    v.p50 = h->Quantile(0.50);
    v.p99 = h->Quantile(0.99);
    v.bounds = h->bounds();
    v.buckets = h->buckets();
    snap.histograms.push_back(std::move(v));
  }
  return snap;
}

const MetricsSnapshot::CounterValue* MetricsSnapshot::FindCounter(
    const std::string& name) const {
  for (const auto& c : counters) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

const MetricsSnapshot::HistogramValue* MetricsSnapshot::FindHistogram(
    const std::string& name) const {
  for (const auto& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

namespace {

/// Doubles rendered with enough digits to round-trip, "NN" for integral
/// values so snapshots are stable and diffable.
std::string Num(double v) {
  std::ostringstream os;
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    os << static_cast<long long>(v);
  } else {
    os.precision(17);
    os << v;
  }
  return os.str();
}

void AppendQuoted(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
  out->push_back('"');
}

}  // namespace

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& c : counters) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendQuoted(&out, c.name);
    out += ": " + std::to_string(c.value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& g : gauges) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendQuoted(&out, g.name);
    out += ": " + Num(g.value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& h : histograms) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendQuoted(&out, h.name);
    out += ": {\"count\": " + std::to_string(h.count);
    out += ", \"sum\": " + Num(h.sum);
    out += ", \"min\": " + Num(h.min);
    out += ", \"max\": " + Num(h.max);
    out += ", \"p50\": " + Num(h.p50);
    out += ", \"p99\": " + Num(h.p99);
    out += ", \"bounds\": [";
    for (size_t i = 0; i < h.bounds.size(); ++i) {
      if (i > 0) out += ", ";
      out += Num(h.bounds[i]);
    }
    out += "], \"buckets\": [";
    for (size_t i = 0; i < h.buckets.size(); ++i) {
      if (i > 0) out += ", ";
      out += std::to_string(h.buckets[i]);
    }
    out += "]}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

std::string MetricsSnapshot::ToCsv() const {
  std::string out = "kind,name,field,value\n";
  for (const auto& c : counters) {
    out += "counter," + c.name + ",value," + std::to_string(c.value) + "\n";
  }
  for (const auto& g : gauges) {
    out += "gauge," + g.name + ",value," + Num(g.value) + "\n";
  }
  for (const auto& h : histograms) {
    out += "histogram," + h.name + ",count," + std::to_string(h.count) + "\n";
    out += "histogram," + h.name + ",sum," + Num(h.sum) + "\n";
    out += "histogram," + h.name + ",min," + Num(h.min) + "\n";
    out += "histogram," + h.name + ",max," + Num(h.max) + "\n";
    out += "histogram," + h.name + ",p50," + Num(h.p50) + "\n";
    out += "histogram," + h.name + ",p99," + Num(h.p99) + "\n";
  }
  return out;
}

Status MetricsSnapshot::WriteFile(const std::string& path) const {
  std::ofstream out(path, std::ios::out | std::ios::trunc);
  if (!out) {
    return Status::InvalidArgument("cannot open metrics output file: " + path);
  }
  const bool csv =
      path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0;
  out << (csv ? ToCsv() : ToJson());
  out.flush();
  if (!out) return Status::Internal("failed writing metrics to " + path);
  return Status::Ok();
}

}  // namespace helios::obs
