#include "core/config_validation.h"

#include <string>

namespace helios::core {

namespace {

std::string Pair(int a, int b) {
  return "(" + std::to_string(a) + ", " + std::to_string(b) + ")";
}

}  // namespace

Status ValidateHeliosConfig(const HeliosConfig& config) {
  const int n = config.num_datacenters;
  if (n < 2) {
    return Status::InvalidArgument(
        "num_datacenters must be at least 2 (got " + std::to_string(n) + ")");
  }
  if (config.log_interval <= 0) {
    return Status::InvalidArgument("log_interval must be positive");
  }
  if (config.client_link_one_way < 0) {
    return Status::InvalidArgument("client_link_one_way must be >= 0");
  }
  if (config.fault_tolerance < 0 || config.fault_tolerance >= n) {
    return Status::InvalidArgument(
        "fault_tolerance must be in [0, n-1]; tolerating " +
        std::to_string(config.fault_tolerance) + " of " + std::to_string(n) +
        " datacenters is impossible");
  }
  if (config.fault_tolerance > 0 && config.grace_time <= 0) {
    return Status::InvalidArgument(
        "fault_tolerance > 0 requires a positive grace_time (the "
        "acknowledgment bound of Section 4.4)");
  }
  if (config.txn_seq_start < 1 || config.txn_seq_stride < 1) {
    return Status::InvalidArgument(
        "txn_seq_start and txn_seq_stride must be >= 1 (sequence 0 is the "
        "invalid TxnId)");
  }
  if (!config.clock_offsets.empty() &&
      static_cast<int>(config.clock_offsets.size()) != n) {
    return Status::InvalidArgument(
        "clock_offsets must have one entry per datacenter");
  }

  if (!config.commit_offsets.empty()) {
    if (static_cast<int>(config.commit_offsets.size()) != n) {
      return Status::InvalidArgument("commit_offsets must be n x n");
    }
    for (int a = 0; a < n; ++a) {
      if (static_cast<int>(config.commit_offsets[a].size()) != n) {
        return Status::InvalidArgument("commit_offsets must be n x n (row " +
                                       std::to_string(a) + ")");
      }
      if (config.commit_offsets[a][a] != 0) {
        return Status::InvalidArgument(
            "commit_offsets diagonal must be zero (row " + std::to_string(a) +
            ")");
      }
    }
    // Rule 1: the safety condition. Violating it permits undetected
    // conflicts between concurrent transactions.
    for (int a = 0; a < n; ++a) {
      for (int b = a + 1; b < n; ++b) {
        if (config.commit_offsets[a][b] + config.commit_offsets[b][a] < 0) {
          return Status::FailedPrecondition(
              "Rule 1 violated for pair " + Pair(a, b) +
              ": co[a][b] + co[b][a] = " +
              std::to_string(config.commit_offsets[a][b] +
                             config.commit_offsets[b][a]) +
              "us < 0 — this configuration is UNSAFE (undetected conflicts "
              "become possible)");
        }
      }
    }
  }
  return Status::Ok();
}

}  // namespace helios::core
