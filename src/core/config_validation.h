// Deployment-configuration validation.
//
// Misconfigured commit offsets are the one thing that can silently break
// Helios's safety (Rule 1 is the correctness condition), so a production
// deployment should validate its HeliosConfig before starting nodes.
// HeliosCluster construction asserts the basics; this function returns
// descriptive errors for operator-facing tooling.

#ifndef HELIOS_CORE_CONFIG_VALIDATION_H_
#define HELIOS_CORE_CONFIG_VALIDATION_H_

#include "common/status.h"
#include "core/helios_config.h"

namespace helios::core {

/// Validates `config` for an n-datacenter deployment:
///  - num_datacenters >= 2;
///  - the commit-offset matrix, if present, is n x n with a zero diagonal
///    and satisfies Rule 1 (co[a][b] + co[b][a] >= 0 for every pair);
///  - fault_tolerance is in [0, n-1] and, with f > 0, grace_time > 0;
///  - log_interval > 0, gc_interval != 0 is not required (<= 0 disables);
///  - clock_offsets, if present, has one entry per datacenter.
/// Returns OK or a kInvalidArgument / kFailedPrecondition describing the
/// first problem found.
Status ValidateHeliosConfig(const HeliosConfig& config);

}  // namespace helios::core

#endif  // HELIOS_CORE_CONFIG_VALIDATION_H_
