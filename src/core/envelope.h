// The message Helios datacenters exchange: a Replicated Dictionary partial
// log plus the liveness metadata of Section 4.4.

#ifndef HELIOS_CORE_ENVELOPE_H_
#define HELIOS_CORE_ENVELOPE_H_

#include <memory>
#include <vector>

#include "common/types.h"
#include "rdict/replicated_log.h"

namespace helios::core {

/// A datacenter's declaration that it will NOT acknowledge transaction
/// `txn`: its preparing record arrived later than q(t) + GT (grace-time
/// invalidation). Refusals gossip between datacenters so the transaction's
/// home learns that this peer cannot count toward the f-acknowledgment
/// quorum.
struct Refusal {
  DcId refuser = kInvalidDc;
  TxnId txn;
  /// The transaction's request timestamp q(t); lets receivers garbage-
  /// collect refusals whose transactions are long since decided.
  Timestamp txn_ts = kMinTimestamp;

  friend bool operator==(const Refusal& a, const Refusal& b) {
    return a.refuser == b.refuser && a.txn == b.txn;
  }
};

/// A datacenter's declaration that it currently suspects `target` of a
/// gray failure (phi-accrual threshold crossed, src/health). Suspicions
/// gossip on every envelope while held; absence from an envelope means the
/// sender no longer suspects. Receivers use them to assemble the
/// suspicion quorum that licenses degraded commit: because they ride the
/// same envelope as the sender's partial log, a receiver that processes a
/// suspicion has — by Replicated Dictionary causality — already ingested
/// every record of the suspect the sender acknowledged before suspecting.
struct Suspicion {
  DcId target = kInvalidDc;
  /// The sender's clock when suspicion began (diagnostic; the commit-wait
  /// math uses the timetable, not this field).
  Timestamp since = kMinTimestamp;

  friend bool operator==(const Suspicion& a, const Suspicion& b) {
    return a.target == b.target && a.since == b.since;
  }
};

/// What an envelope is for. Regular gossip carries the periodic partial
/// log; the catch-up kinds implement the anti-entropy phase a recovering
/// datacenter runs after rebuilding from its WAL (it sends its restored
/// timetable to every peer and each peer answers with exactly the log
/// suffix the table proves the requester is missing).
enum class EnvelopeKind : uint8_t {
  kGossip = 0,
  kCatchupRequest = 1,
  kCatchupResponse = 2,
};

/// One Helios-to-Helios message.
struct Envelope {
  rdict::LogMessage log;
  /// All live refusals the sender knows about (rare; garbage-collected
  /// when the transaction finishes).
  std::vector<Refusal> refusals;

  // --- Online RTT estimation (Section 4.5 needs RTT estimates; these
  // fields piggyback a ping/pong on the periodic log exchange) -----------
  /// Identifier of this envelope as a ping (0 = not a ping).
  uint32_t ping_id = 0;
  /// Echo of the latest ping received from the destination (0 = none).
  uint32_t pong_for = 0;
  /// How long the sender held that ping before this reply, in
  /// microseconds — subtracted by the receiver so the sample measures
  /// pure network round trip rather than tick alignment.
  Duration pong_hold_us = 0;
  /// The sender's current smoothed RTT estimates to every datacenter
  /// (microseconds; 0 = unknown). Gossiped so every node can assemble the
  /// full matrix the MAO replanner needs.
  std::vector<Duration> rtt_row_us;

  /// Role of this envelope (gossip vs. recovery catch-up). On the wire
  /// the field is a trailing optional: omitted for kGossip, so regular
  /// traffic's byte layout (and measured message sizes) are unchanged.
  EnvelopeKind kind = EnvelopeKind::kGossip;

  /// Gray-failure suspicions the sender currently holds (src/health).
  /// Also a trailing optional on the wire — empty (the overwhelmingly
  /// common case) costs zero bytes, keeping healthy traffic unchanged.
  std::vector<Suspicion> suspicions;

  explicit Envelope(int n) : log(n) {}

  /// Returns a recycled envelope (common::ObjectPool) to a blank gossip
  /// state while keeping every vector's capacity — the reuse contract of
  /// the pooled send path. The timetable is left as-is; builders
  /// overwrite it (same cluster size, so that assignment is also
  /// allocation-free).
  void ResetForReuse() {
    log.from = kInvalidDc;
    log.records.clear();
    refusals.clear();
    ping_id = 0;
    pong_for = 0;
    pong_hold_us = 0;
    rtt_row_us.clear();
    kind = EnvelopeKind::kGossip;
    suspicions.clear();
  }
};

/// How envelopes travel: built once by the sender (usually from a pool),
/// then shared immutably by the network, retransmission buffers, and the
/// receiver's service queue — no per-hop deep copies.
using EnvelopePtr = std::shared_ptr<const Envelope>;

}  // namespace helios::core

#endif  // HELIOS_CORE_ENVELOPE_H_
