#include "core/helios_cluster.h"

#include <cassert>
#include <utility>

#include "sim/reliable.h"

namespace helios::core {

HeliosCluster::HeliosCluster(sim::Scheduler* scheduler, sim::Network* network,
                             HeliosConfig config, LogProtocolKind kind,
                             std::string name)
    : scheduler_(scheduler),
      network_(network),
      config_(std::move(config)),
      kind_(kind),
      name_(std::move(name)) {
  assert(network_->size() == config_.num_datacenters);
  const int n = config_.num_datacenters;
  clocks_.reserve(static_cast<size_t>(n));
  nodes_.reserve(static_cast<size_t>(n));
  wals_.reserve(static_cast<size_t>(n));
  for (DcId dc = 0; dc < n; ++dc) {
    const Duration offset = config_.clock_offsets.empty()
                                ? 0
                                : config_.clock_offsets[static_cast<size_t>(dc)];
    clocks_.push_back(std::make_unique<sim::Clock>(scheduler_, offset));
    wals_.push_back(std::make_unique<wal::MemoryWal>());
    nodes_.push_back(MakeNode(dc));
  }
}

std::unique_ptr<HeliosNode> HeliosCluster::MakeNode(DcId dc) {
  auto node = std::make_unique<HeliosNode>(
      dc, config_, kind_, scheduler_, clocks_[static_cast<size_t>(dc)].get(),
      [this, dc](DcId to, const EnvelopePtr& env) {
        // Sized once per logical send; retransmissions and duplicate
        // deliveries reuse the cached size and the shared envelope (no
        // re-encode, no deep copies).
        const size_t size = envelope_sizer_ ? envelope_sizer_(*env) : 0;
        auto deliver = [this, to, env]() {
          nodes_[static_cast<size_t>(to)]->HandleEnvelope(env);
        };
        if (mesh_ != nullptr) {
          mesh_->SendSized(dc, to, size, std::move(deliver));
        } else {
          network_->SendSized(dc, to, size, std::move(deliver));
        }
      });
  node->set_history_recorder(history_override_ != nullptr ? history_override_
                                                          : &history_);
  node->SetObservability(trace_, metrics_);
  if (staged_resolver_) {
    node->set_staged_resolver(
        [this, dc](const TxnId& id) { return staged_resolver_(dc, id); });
  }
  // Durability is always on: every append/ingest and every GC-tick
  // timetable snapshot lands in the per-datacenter MemoryWal. The sink is
  // a pure memory side effect — no scheduler events, no RNG — so
  // crash-free runs stay bit-identical.
  wal::MemoryWal* wal = wals_[static_cast<size_t>(dc)].get();
  node->set_record_sink(
      [wal](const rdict::LogRecord& rec) { (void)wal->AppendRecord(rec); });
  node->set_timetable_sink(
      [wal](const rdict::Timetable& t) { (void)wal->AppendTimetable(t); });
  return node;
}

void HeliosCluster::Start() {
  started_ = true;
  for (auto& node : nodes_) node->Start();
}

void HeliosCluster::ClientRead(DcId client_dc, const Key& key,
                               ReadCallback done) {
  const Duration link = config_.client_link_one_way;
  scheduler_->After(link, [this, client_dc, key, done = std::move(done),
                           link]() {
    node(client_dc).HandleRead(
        key, [this, done, link](Result<VersionedValue> result) {
          scheduler_->After(link, [done, result = std::move(result)]() {
            done(result);
          });
        });
  });
}

void HeliosCluster::ClientCommit(DcId client_dc, std::vector<ReadEntry> reads,
                                 std::vector<WriteEntry> writes,
                                 CommitCallback done) {
  const Duration link = config_.client_link_one_way;
  scheduler_->After(link, [this, client_dc, reads = std::move(reads),
                           writes = std::move(writes), done = std::move(done),
                           link]() mutable {
    node(client_dc).HandleCommitRequest(
        std::move(reads), std::move(writes),
        [this, done, link](const CommitOutcome& outcome) {
          scheduler_->After(link, [done, outcome]() { done(outcome); });
        });
  });
}

void HeliosCluster::ClientReadOnly(DcId client_dc, std::vector<Key> keys,
                                   ReadOnlyCallback done) {
  const Duration link = config_.client_link_one_way;
  scheduler_->After(link, [this, client_dc, keys = std::move(keys),
                           done = std::move(done), link]() mutable {
    node(client_dc).HandleReadOnly(
        std::move(keys),
        [this, done, link](std::vector<Result<VersionedValue>> results) {
          scheduler_->After(link, [done, results = std::move(results)]() {
            done(results);
          });
        });
  });
}

void HeliosCluster::LoadInitialAll(const Key& key, const Value& value) {
  initial_loads_.emplace_back(key, value);
  for (auto& node : nodes_) node->LoadInitial(key, value);
}

void HeliosCluster::CrashDatacenter(DcId dc) {
  network_->CrashNode(dc);
  SetDatacenterDown(dc, true);
}

void HeliosCluster::RecoverDatacenter(DcId dc) {
  network_->RecoverNode(dc);
  SetDatacenterDown(dc, false);
}

void HeliosCluster::SetDatacenterDown(DcId dc, bool down) {
  if (down) {
    if (node(dc).down()) return;
    // Crash with amnesia: destroy the node object — log, store, pools,
    // pending transactions, refusal state, clock floor bookkeeping and
    // offset overrides all vanish. A fresh down shell takes its place so
    // deliveries already in flight land on a live object that drops them.
    nodes_[static_cast<size_t>(dc)] = MakeNode(dc);
    node(dc).SetDown(true);
    return;
  }
  if (!node(dc).down()) return;
  // Recovery: replay data loaded outside the protocol, then the WAL
  // (records + latest timetable snapshot), then rejoin and catch up.
  for (const auto& [key, value] : initial_loads_) {
    node(dc).LoadInitial(key, value);
  }
  const wal::WalContents& contents = wals_[static_cast<size_t>(dc)]->contents();
  const Status restored = node(dc).Restore(
      contents.records, contents.has_timetable ? &contents.timetable : nullptr);
  assert(restored.ok());
  (void)restored;
  node(dc).SetDown(false);
  if (!started_) return;  // Crash/recover before Start(): nothing to rejoin.
  node(dc).Start();
  node(dc).BeginCatchup([this](const RecoveryOutcome& out) {
    ++recovery_stats_.recoveries;
    recovery_stats_.records_replayed += out.records_replayed;
    recovery_stats_.catchup_records += out.catchup_records;
    recovery_stats_.duration_us +=
        static_cast<uint64_t>(out.finished_sim - out.started_sim);
  });
}

void HeliosCluster::SetHistoryRecorder(HistoryRecorder* recorder) {
  history_override_ = recorder;
  for (auto& node : nodes_) {
    node->set_history_recorder(recorder != nullptr ? recorder : &history_);
  }
}

void HeliosCluster::SetStagedResolver(StagedResolverFn resolver) {
  staged_resolver_ = std::move(resolver);
  for (DcId dc = 0; dc < config_.num_datacenters; ++dc) {
    if (staged_resolver_) {
      node(dc).set_staged_resolver(
          [this, dc](const TxnId& id) { return staged_resolver_(dc, id); });
    } else {
      node(dc).set_staged_resolver(nullptr);
    }
  }
}

void HeliosCluster::SetObservability(obs::TraceRecorder* trace,
                                     obs::MetricsRegistry* metrics) {
  trace_ = trace;
  metrics_ = metrics;
  for (auto& node : nodes_) node->SetObservability(trace, metrics);
}

void HeliosCluster::ExportMetrics(obs::MetricsRegistry* registry) const {
  const NodeCounters total = AggregateCounters();
  registry->counter("node.read_requests").Set(total.read_requests);
  registry->counter("node.commit_requests").Set(total.commit_requests);
  registry->counter("node.commits").Set(total.commits);
  registry->counter("node.aborts_on_request").Set(total.aborts_on_request);
  registry->counter("node.aborts_by_remote").Set(total.aborts_by_remote);
  registry->counter("node.aborts_liveness").Set(total.aborts_liveness);
  registry->counter("node.records_ingested").Set(total.records_ingested);
  registry->counter("node.envelopes_sent").Set(total.envelopes_sent);
  registry->counter("node.refusals_issued").Set(total.refusals_issued);
  registry->counter("node.read_only_txns").Set(total.read_only_txns);
  // Protocol-neutral aliases so cross-protocol comparisons can key on the
  // same names the baselines export.
  registry->counter("protocol.commits").Set(total.commits);
  registry->counter("protocol.aborts")
      .Set(total.aborts_on_request + total.aborts_by_remote +
           total.aborts_liveness);
  // Gated on an actual recovery so crash-free snapshots keep their
  // pre-existing key set byte for byte.
  if (recovery_stats_.recoveries > 0) {
    registry->counter("recovery.recoveries").Set(recovery_stats_.recoveries);
    registry->counter("recovery.records_replayed")
        .Set(recovery_stats_.records_replayed);
    registry->counter("recovery.catchup_records")
        .Set(recovery_stats_.catchup_records);
    registry->counter("recovery.duration_us")
        .Set(recovery_stats_.duration_us);
  }
  for (DcId dc = 0; dc < config_.num_datacenters; ++dc) {
    const std::string prefix = "node.dc" + std::to_string(dc);
    registry->gauge(prefix + ".pt_pool").Set(
        static_cast<double>(node(dc).pt_pool_size()));
    registry->gauge(prefix + ".ept_pool").Set(
        static_cast<double>(node(dc).ept_pool_size()));
    registry->gauge(prefix + ".service_busy_us")
        .Set(static_cast<double>(node(dc).service_queue().total_busy()));
  }
  // Gated on the health config so runs without the subsystem keep their
  // pre-existing metrics key set byte for byte.
  if (config_.health.enabled) {
    registry->counter("health.suspicions").Set(total.suspicions);
    registry->counter("health.readmissions").Set(total.readmissions);
    registry->counter("health.suspicion_refusals")
        .Set(total.suspicion_refusals);
    registry->counter("health.degraded_commits").Set(total.degraded_commits);
    registry->counter("health.hedged_pulls").Set(total.hedged_pulls);
    for (DcId dc = 0; dc < config_.num_datacenters; ++dc) {
      const std::string prefix = "health.dc" + std::to_string(dc);
      double suspected = 0.0;
      for (DcId peer = 0; peer < config_.num_datacenters; ++peer) {
        if (peer == dc) continue;
        registry->gauge(prefix + ".phi.dc" + std::to_string(peer))
            .Set(node(dc).HealthPhi(peer));
        if (node(dc).Suspects(peer)) suspected += 1.0;
      }
      registry->gauge(prefix + ".suspected").Set(suspected);
    }
  }
}

NodeCounters HeliosCluster::AggregateCounters() const {
  NodeCounters total;
  for (const auto& node : nodes_) {
    const NodeCounters& c = node->counters();
    total.read_requests += c.read_requests;
    total.commit_requests += c.commit_requests;
    total.commits += c.commits;
    total.aborts_on_request += c.aborts_on_request;
    total.aborts_by_remote += c.aborts_by_remote;
    total.aborts_liveness += c.aborts_liveness;
    total.records_ingested += c.records_ingested;
    total.envelopes_sent += c.envelopes_sent;
    total.refusals_issued += c.refusals_issued;
    total.read_only_txns += c.read_only_txns;
    total.suspicions += c.suspicions;
    total.readmissions += c.readmissions;
    total.suspicion_refusals += c.suspicion_refusals;
    total.degraded_commits += c.degraded_commits;
    total.hedged_pulls += c.hedged_pulls;
    total.staged_requests += c.staged_requests;
    total.staged_waits += c.staged_waits;
    total.staged_prepared += c.staged_prepared;
    total.staged_commits += c.staged_commits;
    total.staged_aborts += c.staged_aborts;
    total.staged_resolved += c.staged_resolved;
  }
  return total;
}

Result<double> HeliosCluster::ReplanOffsetsFromEstimates(DcId reference) {
  const RttEstimator* estimator = node(reference).rtt_estimator();
  if (estimator == nullptr) {
    return Status::FailedPrecondition("estimate_rtts is not enabled");
  }
  if (!estimator->MatrixComplete()) {
    return Status::Unavailable("RTT matrix not yet complete");
  }
  const lp::RttMatrix matrix = estimator->MatrixMs();
  auto mao = lp::SolveMao(matrix);
  if (!mao.ok()) return mao.status();
  const auto offsets_ms = lp::CommitOffsetsFromLatencies(matrix, mao.value());
  for (DcId dc = 0; dc < config_.num_datacenters; ++dc) {
    std::vector<Duration> row(static_cast<size_t>(config_.num_datacenters), 0);
    for (DcId x = 0; x < config_.num_datacenters; ++x) {
      if (x != dc) {
        row[static_cast<size_t>(x)] =
            static_cast<Duration>(offsets_ms[dc][x] * 1000.0);
      }
    }
    node(dc).SetCommitOffsetRow(std::move(row));
  }
  return lp::AverageLatency(mao.value());
}

Result<double> HeliosCluster::ReplanOffsetsExcluding(DcId suspect,
                                                     DcId reference) {
  if (suspect < 0 || suspect >= config_.num_datacenters) {
    return Status::InvalidArgument("suspect out of range");
  }
  const RttEstimator* estimator = node(reference).rtt_estimator();
  if (estimator == nullptr) {
    return Status::FailedPrecondition("estimate_rtts is not enabled");
  }
  if (!estimator->MatrixComplete()) {
    return Status::Unavailable("RTT matrix not yet complete");
  }
  const lp::RttMatrix matrix = estimator->MatrixMs();
  auto mao = lp::SolveMaoExcluding(matrix, suspect);
  if (!mao.ok()) return mao.status();
  const auto offsets_ms = lp::CommitOffsetsFromLatencies(matrix, mao.value());
  for (DcId dc = 0; dc < config_.num_datacenters; ++dc) {
    std::vector<Duration> row(static_cast<size_t>(config_.num_datacenters), 0);
    for (DcId x = 0; x < config_.num_datacenters; ++x) {
      if (x != dc) {
        row[static_cast<size_t>(x)] =
            static_cast<Duration>(offsets_ms[dc][x] * 1000.0);
      }
    }
    node(dc).SetCommitOffsetRow(std::move(row));
  }
  // Average over the healthy quorum: the suspect's (feasibility-floor)
  // latency is not a promise anyone is waiting on.
  double sum = 0.0;
  for (DcId dc = 0; dc < config_.num_datacenters; ++dc) {
    if (dc != suspect) sum += mao.value()[static_cast<size_t>(dc)];
  }
  return sum / static_cast<double>(config_.num_datacenters - 1);
}

std::unique_ptr<HeliosCluster> MakeMessageFuturesCluster(
    sim::Scheduler* scheduler, sim::Network* network, HeliosConfig config) {
  config.commit_offsets.clear();
  config.fault_tolerance = 0;
  return std::make_unique<HeliosCluster>(scheduler, network, std::move(config),
                                         LogProtocolKind::kMessageFutures,
                                         "MessageFutures");
}

}  // namespace helios::core
