// Configuration of a Helios deployment.

#ifndef HELIOS_CORE_HELIOS_CONFIG_H_
#define HELIOS_CORE_HELIOS_CONFIG_H_

#include <vector>

#include "common/types.h"
#include "health/phi_detector.h"

namespace helios::core {

/// Service-time model shared by Helios and the baselines: how long the
/// single-threaded server at a datacenter is occupied by each kind of work.
/// This is the paper's "compute overhead" (Appendix A.1) and is what caps
/// peak throughput in Figure 4.
struct ServiceModel {
  Duration read = Micros(60);              ///< Serve one client read.
  Duration commit_request = Micros(100);   ///< Run Algorithm 1.
  Duration log_record = Micros(15);        ///< Process one ingested record.
  Duration log_message = Micros(30);       ///< Fixed cost per log message.
  Duration write_apply = Micros(250);      ///< Install one write (I/O).
  Duration lock_op = Micros(150);          ///< One lock-table operation
                                           ///< (acquire/validate) in the
                                           ///< 2PL baselines.
};

/// Gray-failure health machinery (src/health + the suspicion-driven
/// degraded commit in HeliosNode). Off by default: detection feeds from
/// envelope arrivals and evaluation piggybacks on the gossip tick, so
/// enabling it schedules no new events, but suspicion reactions do change
/// protocol behavior under crashes — experiments opt in explicitly.
struct HealthConfig {
  bool enabled = false;
  /// phi-accrual tuning (threshold, window, floors).
  health::PhiOptions phi;
  /// When a suspicion quorum forms, commit without waiting on the suspect
  /// (safe: the quorum's standing refusals doom every conflicting
  /// transaction the suspect could still commit). Requires f >= 1 and the
  /// Helios rule; silently inert otherwise.
  bool degraded_commit = true;
  /// Minimum spacing of hedged catch-up pulls to the best-informed healthy
  /// peer while any datacenter is suspected.
  Duration hedge_interval = Millis(100);
};

struct HeliosConfig {
  int num_datacenters = 0;

  /// co[a][b], microseconds; co[a][a] must be 0. Empty means all-zero
  /// offsets (the paper's Helios-B baseline).
  std::vector<std::vector<Duration>> commit_offsets;

  /// f: datacenter outages to tolerate (Helios-0 / 1 / 2). With f > 0 a
  /// transaction additionally waits until f peers acknowledged its record
  /// within the grace time (Rule 3).
  int fault_tolerance = 0;

  /// GT of Section 4.4: a peer refuses to acknowledge a transaction whose
  /// preparing record arrives later than its request timestamp plus GT.
  Duration grace_time = Millis(1000);

  /// Period of partial-log transmission to every peer ("the log is
  /// continuously being propagated": the paper's implementation sends at
  /// clock ticks; this is that tick).
  Duration log_interval = Millis(10);

  /// One-way latency between a client and its home datacenter.
  Duration client_link_one_way = Micros(500);

  /// Period of log / store garbage collection. <= 0 disables GC.
  Duration gc_interval = Millis(500);

  /// Recovery catch-up: a recovering node re-requests the missed log
  /// suffix from peers that have not answered after this long, up to
  /// `catchup_max_attempts` rounds; after that, catch-up finishes
  /// partially and regular gossip fills any remaining gap (a peer may
  /// itself be down).
  Duration catchup_retry_interval = Millis(250);
  int catchup_max_attempts = 5;

  ServiceModel service;

  /// Per-datacenter clock offsets (for Figure 5 skew experiments); empty
  /// means perfectly synchronized clocks.
  std::vector<Duration> clock_offsets;

  /// Enables online RTT estimation: envelopes double as ping/pong probes
  /// and gossip smoothed per-pair estimates (core::RttEstimator), from
  /// which commit offsets can be replanned at runtime
  /// (HeliosCluster::ReplanOffsetsFromEstimates).
  bool estimate_rtts = false;

  /// Gray-failure detection and reaction (src/health).
  HealthConfig health;

  /// Transaction-sequence interleaving for sharded deployments (src/shard):
  /// a node mints TxnId sequence numbers start, start+stride, ... so the S
  /// per-shard logs of one datacenter (shard s uses start = s+1, stride =
  /// S+1) and the cross-shard coordinator (residue 0) never collide. The
  /// defaults reproduce the unsharded stream 1, 2, 3, ... exactly.
  uint64_t txn_seq_start = 1;
  uint64_t txn_seq_stride = 1;

  Duration commit_offset(DcId a, DcId b) const {
    if (commit_offsets.empty()) return 0;
    return commit_offsets[static_cast<size_t>(a)][static_cast<size_t>(b)];
  }
};

}  // namespace helios::core

#endif  // HELIOS_CORE_HELIOS_CONFIG_H_
