#include "core/history.h"

#include <algorithm>
#include <map>
#include <unordered_map>

namespace helios::core {

namespace {

struct VersionRef {
  Timestamp version_ts;
  TxnId writer;
  size_t txn_index;  // Index into `commits`.

  bool operator<(const VersionRef& o) const {
    if (version_ts != o.version_ts) return version_ts < o.version_ts;
    return writer < o.writer;
  }
};

}  // namespace

Status CheckSerializable(const std::vector<CommittedTxn>& commits) {
  const size_t n = commits.size();
  std::unordered_map<TxnId, size_t, TxnIdHash> index;
  index.reserve(n);
  for (size_t i = 0; i < n; ++i) index.emplace(commits[i].id, i);

  // Per-key committed version chains, ordered by (version_ts, writer) —
  // the same order MvStore uses, so this matches what replicas installed.
  std::map<Key, std::vector<VersionRef>> chains;
  for (size_t i = 0; i < n; ++i) {
    for (const WriteEntry& w : commits[i].body->write_set) {
      chains[w.key].push_back(
          VersionRef{commits[i].version_ts, commits[i].id, i});
    }
  }
  for (auto& [key, chain] : chains) {
    std::sort(chain.begin(), chain.end());
  }

  std::vector<std::vector<size_t>> adj(n);
  auto add_edge = [&](size_t from, size_t to) {
    if (from != to) adj[from].push_back(to);
  };

  // Write-write edges: consecutive versions of a key.
  for (const auto& [key, chain] : chains) {
    for (size_t i = 0; i + 1 < chain.size(); ++i) {
      add_edge(chain[i].txn_index, chain[i + 1].txn_index);
    }
  }

  // Reads-from (wr) and anti-dependency (rw) edges.
  for (size_t r = 0; r < n; ++r) {
    for (const ReadEntry& read : commits[r].body->read_set) {
      auto chain_it = chains.find(read.key);
      const std::vector<VersionRef>* chain =
          chain_it == chains.end() ? nullptr : &chain_it->second;

      if (read.version_writer.valid()) {
        auto writer_it = index.find(read.version_writer);
        if (writer_it != index.end()) {
          add_edge(writer_it->second, r);  // wr: writer before reader.
          if (chain != nullptr) {
            // rw: reader before the writer of the *next* version.
            const VersionRef probe{read.version_ts, read.version_writer, 0};
            auto next = std::upper_bound(chain->begin(), chain->end(), probe);
            if (next != chain->end()) add_edge(r, next->txn_index);
          }
          continue;
        }
      }
      // Read of the initial state (or of a writer outside the recorded
      // history): the reader precedes every recorded writer of the key.
      if (chain != nullptr && !chain->empty()) {
        add_edge(r, chain->front().txn_index);
      }
    }
  }

  // Cycle detection: iterative three-color DFS.
  enum : uint8_t { kWhite, kGray, kBlack };
  std::vector<uint8_t> color(n, kWhite);
  std::vector<size_t> parent(n, SIZE_MAX);
  for (size_t start = 0; start < n; ++start) {
    if (color[start] != kWhite) continue;
    std::vector<std::pair<size_t, size_t>> stack;  // (node, next-child idx)
    stack.emplace_back(start, 0);
    color[start] = kGray;
    while (!stack.empty()) {
      auto& [node, child] = stack.back();
      if (child < adj[node].size()) {
        const size_t next = adj[node][child++];
        if (color[next] == kGray) {
          // Reconstruct the cycle for the error message.
          std::string cycle = commits[next].id.ToString();
          size_t walk = node;
          cycle += " <- " + commits[walk].id.ToString();
          while (walk != next && parent[walk] != SIZE_MAX) {
            walk = parent[walk];
            cycle += " <- " + commits[walk].id.ToString();
          }
          return Status::FailedPrecondition(
              "serialization graph has a cycle: " + cycle);
        }
        if (color[next] == kWhite) {
          color[next] = kGray;
          parent[next] = node;
          stack.emplace_back(next, 0);
        }
      } else {
        color[node] = kBlack;
        stack.pop_back();
      }
    }
  }
  return Status::Ok();
}

}  // namespace helios::core
