#include "core/helios_node.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <cstring>
#include <utility>

namespace helios::core {

namespace {

/// Origin id used for initial data loaded outside the protocol. Distinct
/// from kInvalidDc so loaded versions validate correctly, and never equal
/// to a real datacenter id.
constexpr DcId kLoaderOrigin = -2;

/// Mutation-testing hook (tests/check_mutation_test.cc): with
/// HELIOS_CHECK_MUTATION=skip_commit_wait in the environment, the Section 3
/// commit wait (Rule 2 / Rule 3 condition 1) is skipped entirely, so
/// transactions commit before learning about concurrent conflicting
/// remote transactions. The src/check oracles must catch the resulting
/// serializability violations — this proves they have teeth. Cached after
/// the first call; never set this in a measurement process.
bool MutationSkipCommitWait() {
  static const bool on = [] {
    const char* m = std::getenv("HELIOS_CHECK_MUTATION");
    return m != nullptr && std::strcmp(m, "skip_commit_wait") == 0;
  }();
  return on;
}

}  // namespace

HeliosNode::HeliosNode(DcId id, const HeliosConfig& config,
                       LogProtocolKind kind, sim::Scheduler* scheduler,
                       sim::Clock* clock, SendFn send)
    : id_(id),
      config_(config),
      kind_(kind),
      scheduler_(scheduler),
      clock_(clock),
      send_(std::move(send)),
      service_queue_(scheduler),
      log_(id, config.num_datacenters) {
  assert(id >= 0 && id < config.num_datacenters);
  next_txn_seq_ = config_.txn_seq_start;
  assert(kind_ != LogProtocolKind::kMessageFutures ||
         config_.fault_tolerance == 0);
  if (config_.estimate_rtts) {
    rtt_estimator_ =
        std::make_unique<RttEstimator>(id_, config_.num_datacenters);
  }
  if (config_.health.enabled) {
    peer_health_ = std::make_unique<health::PeerHealth>(
        config_.num_datacenters, id_, config_.health.phi);
    remote_suspects_.resize(static_cast<size_t>(config_.num_datacenters));
    suspect_watermark_.assign(static_cast<size_t>(config_.num_datacenters),
                              kMinTimestamp);
    fence_.assign(static_cast<size_t>(config_.num_datacenters),
                  kMinTimestamp);
  }
}

void HeliosNode::SetCommitOffsetRow(std::vector<Duration> row) {
  assert(static_cast<int>(row.size()) == config_.num_datacenters);
  offset_row_override_ = std::move(row);
}

void HeliosNode::SetObservability(obs::TraceRecorder* trace,
                                  obs::MetricsRegistry* metrics) {
  trace_ = trace;
  if (metrics != nullptr) {
    h_queue_wait_us_ = &metrics->histogram("txn.queue_wait_us");
    h_commit_wait_us_ = &metrics->histogram("txn.commit_wait_us");
    h_commit_total_us_ = &metrics->histogram("txn.commit_total_us");
    h_abort_total_us_ = &metrics->histogram("txn.abort_total_us");
  } else {
    h_queue_wait_us_ = nullptr;
    h_commit_wait_us_ = nullptr;
    h_commit_total_us_ = nullptr;
    h_abort_total_us_ = nullptr;
  }
}

Duration HeliosNode::OffsetTo(DcId x) const {
  if (!offset_row_override_.empty()) {
    return offset_row_override_[static_cast<size_t>(x)];
  }
  return config_.commit_offset(id_, x);
}

void HeliosNode::Start() {
  if (started_) return;  // A recovered node restarts its loops exactly once.
  started_ = true;
  // Stagger the first transmission so datacenters do not tick in lockstep.
  const Duration stagger =
      config_.log_interval * id_ / std::max(1, config_.num_datacenters);
  scheduler_->After(config_.log_interval + stagger,
                    Guarded([this]() { SendToAllPeers(); }));
  if (config_.gc_interval > 0) {
    scheduler_->After(config_.gc_interval, Guarded([this]() { RunGc(); }));
  }
}

// --- Client-facing handlers -------------------------------------------------

void HeliosNode::HandleRead(const Key& key, ReadCallback reply) {
  service_queue_.Submit(config_.service.read,
                        Guarded([this, key, reply = std::move(reply)]() {
                          if (down_) return;
                          if (recovering_) {
                            reply(Status::Unavailable("recovering"));
                            return;
                          }
                          ++counters_.read_requests;
                          reply(store_.Read(key));
                        }));
}

void HeliosNode::HandleReadOnly(std::vector<Key> keys, ReadOnlyCallback reply) {
  const Duration cost =
      config_.service.read * static_cast<Duration>(keys.size());
  service_queue_.Submit(
      cost, Guarded([this, keys = std::move(keys), reply = std::move(reply)]() {
        if (down_) return;
        if (recovering_) {
          std::vector<Result<VersionedValue>> out(
              keys.size(), Result<VersionedValue>(
                               Status::Unavailable("recovering")));
          reply(std::move(out));
          return;
        }
        ++counters_.read_only_txns;
        // The node is single-threaded, so reading every key's latest
        // applied version within one event *is* a consistent snapshot of
        // this datacenter's applied state — the "snapshot point" of
        // Appendix B. Read-only transactions never contend with
        // read-write transactions and never enter the commit protocol.
        std::vector<Result<VersionedValue>> out;
        out.reserve(keys.size());
        for (const Key& k : keys) out.push_back(store_.Read(k));
        reply(std::move(out));
      }));
}

void HeliosNode::HandleCommitRequest(std::vector<ReadEntry> reads,
                                     std::vector<WriteEntry> writes,
                                     CommitCallback reply) {
  const sim::SimTime arrived = scheduler_->Now();
  if (trace_ != nullptr) {
    trace_->Instant(obs::EventKind::kTxnRequest, id_, TxnId{}, arrived);
  }
  service_queue_.Submit(config_.service.commit_request,
                        Guarded([this, arrived, reads = std::move(reads),
                                 writes = std::move(writes),
                                 reply = std::move(reply)]() mutable {
                          ProcessCommitRequest(std::move(reads),
                                               std::move(writes),
                                               std::move(reply), arrived);
                        }));
}

void HeliosNode::HandleStagedCommit(const TxnId& id,
                                    std::vector<ReadEntry> reads,
                                    std::vector<WriteEntry> writes,
                                    StagedAdmitCallback admitted,
                                    StagedCommitCallback prepared) {
  const sim::SimTime arrived = scheduler_->Now();
  if (trace_ != nullptr) {
    trace_->Instant(obs::EventKind::kTxnRequest, id_, id, arrived);
  }
  service_queue_.Submit(config_.service.commit_request,
                        Guarded([this, id, arrived, reads = std::move(reads),
                                 writes = std::move(writes),
                                 admitted = std::move(admitted),
                                 prepared = std::move(prepared)]() mutable {
                          ProcessStagedCommit(id, std::move(reads),
                                              std::move(writes),
                                              std::move(admitted),
                                              std::move(prepared), arrived);
                        }));
}

void HeliosNode::HandleRaiseStagedWait(const TxnId& id, Timestamp wait_base) {
  service_queue_.Submit(config_.service.log_record,
                        Guarded([this, id, wait_base]() {
                          ProcessRaiseStagedWait(id, wait_base);
                        }));
}

void HeliosNode::HandleFinalizeStaged(const TxnId& id, bool commit,
                                      Timestamp commit_ts) {
  service_queue_.Submit(config_.service.log_record,
                        Guarded([this, id, commit, commit_ts]() {
                          ProcessFinalizeStaged(id, commit, commit_ts);
                        }));
}

void HeliosNode::HandleEnvelope(EnvelopePtr env) {
  if (down_) return;  // A crashed datacenter drops everything.
  if (trace_ != nullptr) {
    trace_->Instant(obs::EventKind::kEnvelopeRecv, id_, TxnId{},
                    scheduler_->Now(), env->log.from);
  }
  if (rtt_estimator_ != nullptr) {
    // Sample at arrival time (scheduler basis, immune to clock offsets).
    rtt_estimator_->OnIncoming(env->log.from, scheduler_->Now(), *env);
  }
  if (peer_health_ != nullptr) {
    // Every envelope is a heartbeat. Fed at arrival (not processing) time
    // so a backlog in our own service queue never indicts a healthy peer.
    peer_health_->OnArrival(env->log.from, scheduler_->Now());
  }
  // Only the fixed per-message cost is known up front; per-record work is
  // charged inside ProcessEnvelope for *fresh* records only (recognizing a
  // retransmitted record is a constant-time timetable lookup).
  service_queue_.Submit(config_.service.log_message,
                        Guarded([this, env = std::move(env)]() {
                          ProcessEnvelope(*env);
                        }));
}

void HeliosNode::LoadInitial(const Key& key, const Value& value) {
  // kMinTimestamp, not 0: skewed client clocks can stamp early commits
  // with negative timestamps, and the initial version must never shadow a
  // committed write in the (ts, writer) version order.
  store_.ApplyWrite(key, value, /*commit_ts=*/kMinTimestamp,
                    TxnId{kLoaderOrigin, next_load_seq_++});
}

// --- Algorithm 1: commit requests -------------------------------------------

bool HeliosNode::ReadStillValid(const ReadEntry& read) const {
  auto latest = store_.Read(read.key);
  if (!latest.ok()) {
    // Key has never been written: valid only if the client saw that too.
    return !read.version_writer.valid();
  }
  return latest.value().writer == read.version_writer;
}

void HeliosNode::ProcessCommitRequest(std::vector<ReadEntry> reads,
                                      std::vector<WriteEntry> writes,
                                      CommitCallback reply,
                                      sim::SimTime arrived_sim) {
  if (down_) return;
  if (recovering_) {
    // Not yet caught up: refuse rather than decide on a stale log. The
    // client's timeout-retry loop (or its next attempt) comes back once
    // catch-up finished.
    reply(CommitOutcome{TxnId{}, false, "recovering"});
    return;
  }
  ++counters_.commit_requests;
  const TxnId id{id_, next_txn_seq_};
  next_txn_seq_ += config_.txn_seq_stride;
  TxnBodyPtr body = MakeTxnBody(id, std::move(reads), std::move(writes));

  PendingTxn pending;
  pending.arrived_sim = arrived_sim;
  pending.reply = std::move(reply);
  // The waiter fence guards plain admissions too: a parked older staged
  // slice holds no pool entry, so a stream of single-shard transactions
  // on its keys would otherwise occupy the pools at every wait-die poll
  // and starve it through its whole retry budget. The empty-map check
  // keeps every unsharded or single-shard deployment on the exact
  // pre-sharding path.
  if (!staged_waiting_.empty() && OlderWaiterConflicts(id, *body)) {
    ++counters_.aborts_on_request;
    RecordDecisionTrace(id, false, "conflict:waiting", arrived_sim,
                        scheduler_->Now());
    pending.reply(CommitOutcome{id, false, "conflict:waiting"});
    return;
  }
  std::string abort_reason;
  if (!AdmitPreparing(id, body, &pending, &abort_reason)) {
    ++counters_.aborts_on_request;
    pending.reply(CommitOutcome{id, false, abort_reason});
    return;
  }

  // With sufficiently negative commit offsets the wait may already be
  // satisfied (the paper's Figure 2 scenario for co < 0).
  TryCommitAll();
}

namespace {

/// Wait-die retry schedule for staged admissions: poll the pools every
/// interval, give up (die) after the budget. The budget must outlast a
/// younger blocker's whole prepared-hold window — commit wait plus the
/// coordinator finalize round — or the oldest transaction aborts right
/// before its blocker would have released.
constexpr Duration kStagedRetryInterval = Micros(500);
constexpr int kStagedRetryBudget = 400;  // x interval = 200ms of patience.

/// Age order for wait-die: coordinator sequence numbers grow over time at
/// every datacenter, so (seq, origin) is a total order that roughly tracks
/// start order; the origin tie-break only arbitrates cross-datacenter ties.
bool MintedAfter(const TxnId& a, const TxnId& b) {
  if (a.seq != b.seq) return a.seq > b.seq;
  return a.origin > b.origin;
}

}  // namespace

void HeliosNode::ProcessStagedCommit(const TxnId& id,
                                     std::vector<ReadEntry> reads,
                                     std::vector<WriteEntry> writes,
                                     StagedAdmitCallback admitted,
                                     StagedCommitCallback prepared,
                                     sim::SimTime arrived_sim) {
  if (down_) return;
  ++counters_.staged_requests;
  TryStagedAdmission(id, MakeTxnBody(id, std::move(reads), std::move(writes)),
                     std::move(admitted), std::move(prepared), arrived_sim,
                     kStagedRetryBudget);
}

bool HeliosNode::StagedConflictsAllYoungerStaged(const TxnId& id,
                                                 const TxnBody& body) const {
  std::vector<TxnBodyPtr> blockers = pt_pool_.ConflictingWriters(body);
  const std::vector<TxnBodyPtr> remote = ept_pool_.ConflictingWriters(body);
  blockers.insert(blockers.end(), remote.begin(), remote.end());
  if (blockers.empty()) return false;  // Overwritten read: waiting can't help.
  for (const TxnBodyPtr& b : blockers) {
    // Every blocker's fate resolves in bounded time — a local pending
    // transaction commits or aborts at decision time, a remote preparing
    // record is cleared by its origin's committed/aborted record within
    // about one RTT — so waiting is safe whenever age order permits it.
    if (!MintedAfter(b->id, id)) return false;
  }
  return true;
}

bool HeliosNode::OlderWaiterConflicts(const TxnId& id,
                                      const TxnBody& body) const {
  for (const auto& [wid, wbody] : staged_waiting_) {
    if (MintedAfter(wid, id)) continue;  // Younger waiters never fence.
    for (const WriteEntry& w : wbody->write_set) {
      if (body.ReadsKey(w.key) || body.WritesKey(w.key)) return true;
    }
    for (const WriteEntry& w : body.write_set) {
      if (wbody->ReadsKey(w.key)) return true;
    }
  }
  return false;
}

void HeliosNode::TryStagedAdmission(const TxnId& id, TxnBodyPtr body,
                                    StagedAdmitCallback admitted,
                                    StagedCommitCallback prepared,
                                    sim::SimTime arrived_sim,
                                    int retries_left) {
  staged_waiting_.erase(id);  // Re-registered below if it parks again.
  const bool doomed = staged_doomed_.erase(id) > 0;
  if (down_) return;
  if (doomed) {
    // The coordinator finalize-aborted this slice while it was parked
    // (see ProcessFinalizeStaged): abort instead of admitting.
    ++counters_.staged_aborts;
    admitted(StagedAdmitOutcome{id, false, "xshard:abort", kMinTimestamp});
    return;
  }
  if (recovering_) {
    ++counters_.staged_aborts;
    admitted(StagedAdmitOutcome{id, false, "recovering", kMinTimestamp});
    return;
  }
  if (OlderWaiterConflicts(id, *body)) {
    ++counters_.staged_aborts;
    admitted(StagedAdmitOutcome{id, false, "conflict:waiting", kMinTimestamp});
    return;
  }
  PendingTxn pending;
  pending.arrived_sim = arrived_sim;
  pending.staged = true;
  pending.wait_armed = false;
  pending.staged_reply = std::move(prepared);
  std::string abort_reason;
  if (!AdmitPreparing(id, body, &pending, &abort_reason)) {
    if (retries_left > 0 && StagedConflictsAllYoungerStaged(id, *body)) {
      // Wait arm of wait-die (see TryStagedAdmission's declaration). The
      // recheck runs off the scheduler, not the service queue: it is a
      // local pool probe, and queueing it would serialize behind the very
      // admissions it yields to.
      ++counters_.staged_waits;
      staged_waiting_[id] = body;
      scheduler_->After(
          kStagedRetryInterval,
          Guarded([this, id, body = std::move(body),
                   admitted = std::move(admitted),
                   prepared = std::move(pending.staged_reply),
                   arrived_sim, retries_left]() mutable {
            TryStagedAdmission(id, std::move(body), std::move(admitted),
                               std::move(prepared), arrived_sim,
                               retries_left - 1);
          }));
      return;
    }
    ++counters_.staged_aborts;
    admitted(StagedAdmitOutcome{id, false, abort_reason, kMinTimestamp});
    return;
  }
  // No TryCommitAll here: the slice cannot prepare before the coordinator
  // raises its wait base, and nothing else changed for other transactions.
  admitted(StagedAdmitOutcome{id, true, "", pending_.at(id).request_ts});
}

void HeliosNode::ProcessRaiseStagedWait(const TxnId& id, Timestamp wait_base) {
  if (down_) return;
  auto it = pending_.find(id);
  if (it == pending_.end()) return;  // Already aborted (victim / doomed).
  PendingTxn& t = it->second;
  if (!t.staged || t.wait_armed) return;
  for (DcId x = 0; x < config_.num_datacenters; ++x) {
    if (x == id_) continue;
    t.kts[static_cast<size_t>(x)] =
        std::max(t.kts[static_cast<size_t>(x)], wait_base + OffsetTo(x));
  }
  t.wait_armed = true;
  TryCommitAll();
}

bool HeliosNode::AdmitPreparing(const TxnId& id, const TxnBodyPtr& body,
                                PendingTxn* pending,
                                std::string* abort_reason) {
  const sim::SimTime arrived_sim = pending->arrived_sim;
  const sim::SimTime processed_sim = scheduler_->Now();
  pending->processed_sim = processed_sim;
  if (trace_ != nullptr) {
    trace_->Span(obs::EventKind::kTxnQueue, id_, id, arrived_sim,
                 processed_sim);
  }
  if (h_queue_wait_us_ != nullptr) {
    h_queue_wait_us_->Observe(
        static_cast<double>(processed_sim - arrived_sim));
  }

  // Lines 2-3: conflict with any preparing transaction, local or remote.
  if (!pt_pool_.ConflictingWriters(*body).empty() ||
      !ept_pool_.ConflictingWriters(*body).empty()) {
    *abort_reason = "conflict:preparing";
    RecordDecisionTrace(id, false, *abort_reason, arrived_sim, processed_sim);
    return false;
  }
  // Lines 4-6: has anything in the read set been overwritten?
  for (const ReadEntry& r : body->read_set) {
    if (!ReadStillValid(r)) {
      *abort_reason = "overwritten:" + r.key;
      RecordDecisionTrace(id, false, *abort_reason, arrived_sim,
                          processed_sim);
      return false;
    }
  }

  // Lines 7-9: timestamp and knowledge timestamps (Eq. 1).
  const Timestamp q = clock_->NowUnique();
  pending->body = body;
  pending->request_ts = q;
  pending->kts.assign(static_cast<size_t>(config_.num_datacenters),
                      kMinTimestamp);
  for (DcId x = 0; x < config_.num_datacenters; ++x) {
    if (x == id_) continue;
    pending->kts[static_cast<size_t>(x)] = q + OffsetTo(x);
  }

  // Line 10: append the preparing record and pool the transaction.
  rdict::LogRecord rec;
  rec.type = rdict::RecordType::kPreparing;
  rec.ts = q;
  rec.origin = id_;
  rec.body = body;
  const Status append = log_.AppendLocal(rec);
  assert(append.ok());
  (void)append;
  if (const Duration p = FsyncPenalty(); p > 0) service_queue_.Charge(p);
  if (record_sink_) record_sink_(rec);
  if (trace_ != nullptr) {
    trace_->Instant(obs::EventKind::kTxnAppend, id_, id, scheduler_->Now());
  }

  pt_pool_.Add(body);
  pending_by_ts_.emplace(std::make_pair(q, id), id);
  pending_.emplace(id, std::move(*pending));
  return true;
}

// --- Algorithm 2: log processing ---------------------------------------------

std::shared_ptr<Envelope> HeliosNode::AcquireEnvelope() {
  auto env = envelope_pool_.Acquire(config_.num_datacenters);
  env->ResetForReuse();
  return env;
}

void HeliosNode::ProcessEnvelope(const Envelope& env) {
  if (down_) return;
  MergeRefusals(env.refusals);

  std::vector<rdict::LogRecord> fresh = log_.Ingest(env.log);
  counters_.records_ingested += fresh.size();
  if (recovering_) catchup_records_ += fresh.size();
  service_queue_.Charge((config_.service.log_record + FsyncPenalty()) *
                        static_cast<Duration>(fresh.size()));

  if (ReactionEnabled() && env.log.from >= 0 &&
      env.log.from < config_.num_datacenters) {
    // The sender's whole current suspicion set rides every envelope;
    // absence is retraction. The sender-clock watermark keeps a reordered
    // (fault-injected) old envelope from reviving retracted suspicions.
    const DcId from = env.log.from;
    const Timestamp sender_clock = env.log.table.Get(from, from);
    if (sender_clock >= suspect_watermark_[static_cast<size_t>(from)]) {
      suspect_watermark_[static_cast<size_t>(from)] = sender_clock;
      std::set<DcId>& targets = remote_suspects_[static_cast<size_t>(from)];
      targets.clear();
      for (const Suspicion& susp : env.suspicions) {
        if (susp.target >= 0 && susp.target < config_.num_datacenters &&
            susp.target != from) {
          targets.insert(susp.target);
        }
      }
    }
  }
  if (record_sink_) {
    for (const rdict::LogRecord& rec : fresh) record_sink_(rec);
  }

  for (const rdict::LogRecord& rec : fresh) {
    if (rec.origin == id_) continue;  // Lines 2-3: skip local records.

    // Lines 4-6: the incoming write set aborts conflicting local
    // preparing transactions. Held cross-shard intents are exempt: they
    // already passed their commit wait, so by Rule 1 a conflicting record
    // ordered before their knowledge point would have arrived while they
    // were still pending (and killed them then); this conflicter is later
    // and aborts at its own origin when our preparing record lands there —
    // the same immunity a plain transaction gains by committing at the
    // instant its wait is satisfied.
    for (const TxnBodyPtr& victim : pt_pool_.Victims(*rec.body)) {
      if (staged_holds_.count(victim->id) > 0) continue;
      AbortPending(victim->id, "conflict:remote",
                   &NodeCounters::aborts_by_remote);
    }

    if (rec.type == rdict::RecordType::kPreparing) {
      // Lines 7-8.
      ept_pool_.Add(rec.body);
      if (config_.fault_tolerance > 0) {
        // Grace-time acknowledgment (Section 4.4): refuse to acknowledge a
        // record that arrived later than q(t) + GT on our clock.
        bool refuse = clock_->Now() > rec.ts + config_.grace_time;
        bool by_suspicion = false;
        if (ReactionEnabled() && rec.origin >= 0 &&
            rec.origin < config_.num_datacenters) {
          ept_prepare_ts_[rec.body->id] = rec.ts;
          // While suspecting the origin, refuse everything it prepares —
          // the standing refusal is what makes skipping its knowledge in
          // the commit wait serializable. After re-admission, the fence
          // keeps refusing records the origin timestamped during its gray
          // episode but only managed to push out afterwards.
          if (suspected_.count(rec.origin) > 0 ||
              rec.ts < fence_[static_cast<size_t>(rec.origin)]) {
            refuse = true;
            by_suspicion = true;
          }
        }
        if (refuse) {
          RefusalState& state = refusals_[rec.body->id];
          state.txn_ts = rec.ts;
          if (state.refusers.insert(id_).second) {
            ++counters_.refusals_issued;
            if (by_suspicion) ++counters_.suspicion_refusals;
          }
        }
      }
    } else {
      // Lines 9-13.
      if (rec.committed) {
        service_queue_.Charge((config_.service.write_apply + FsyncPenalty()) *
                              static_cast<Duration>(rec.body->write_set.size()));
        store_.ApplyTxn(*rec.body, rec.version_ts);
      }
      ept_pool_.Remove(rec.body->id);
      refusals_.erase(rec.body->id);
      ept_prepare_ts_.erase(rec.body->id);
    }
  }

  if (env.kind == EnvelopeKind::kCatchupRequest) {
    // A recovering peer sent us its restored timetable (merged by the
    // Ingest above); BuildMessageFor now computes exactly the suffix it
    // is missing. Answer immediately instead of waiting for the next
    // gossip tick.
    auto resp = AcquireEnvelope();
    log_.BuildMessageInto(env.log.from, &resp->log);
    resp->refusals = RefusalsSnapshot();
    resp->kind = EnvelopeKind::kCatchupResponse;
    service_queue_.Charge(config_.service.log_message);
    ++counters_.envelopes_sent;
    if (trace_ != nullptr) {
      trace_->Instant(obs::EventKind::kEnvelopeSend, id_, TxnId{},
                      scheduler_->Now(), env.log.from);
    }
    send_(env.log.from, resp);
  } else if (env.kind == EnvelopeKind::kCatchupResponse && recovering_) {
    catchup_pending_.erase(env.log.from);
    if (catchup_pending_.empty()) FinishCatchup();
  }

  // Algorithm 3 runs whenever new knowledge arrives.
  TryCommitAll();
}

// --- Algorithm 3: committing preparing transactions ---------------------------

Timestamp HeliosNode::EtaBound(DcId target) const {
  // Eq. 3: eta = min over kappa of T[C][C] - GT, with kappa the n-f
  // best-informed datacenters *excluding the target* (the quorum-
  // intersection argument needs kappa to never contain the datacenter
  // whose knowledge is being inferred).
  const int n = config_.num_datacenters;
  const int f = config_.fault_tolerance;
  if (f <= 0 || n - f > n - 1) return kMinTimestamp;
  std::vector<Timestamp> clocks;
  clocks.reserve(static_cast<size_t>(n) - 1);
  for (DcId c = 0; c < n; ++c) {
    if (c != target) clocks.push_back(log_.table().Get(c, c));
  }
  std::nth_element(clocks.begin(), clocks.begin() + (n - f - 1), clocks.end(),
                   std::greater<Timestamp>());
  const Timestamp kth = clocks[static_cast<size_t>(n - f - 1)];
  if (kth == kMinTimestamp) return kMinTimestamp;
  return kth - config_.grace_time;
}

Timestamp HeliosNode::EffectiveKnowledge(DcId peer) const {
  const Timestamp direct = log_.table().Get(id_, peer);
  if (config_.fault_tolerance <= 0) return direct;
  return std::max(direct, EtaBound(peer));  // Eq. 2.
}

bool HeliosNode::CommitWaitSatisfied(const PendingTxn& t,
                                     bool* degraded) const {
  const int n = config_.num_datacenters;
  if (kind_ == LogProtocolKind::kMessageFutures) {
    // Message Futures: every peer has acknowledged our log up to q(t),
    // i.e. the log carrying t made a full round trip to everyone.
    for (DcId b = 0; b < n; ++b) {
      if (b == id_) continue;
      if (log_.table().Get(b, id_) < t.request_ts) return false;
    }
    return true;
  }
  // Helios Rule 2 / Rule 3 condition (1).
  if (MutationSkipCommitWait()) return true;
  for (DcId b = 0; b < n; ++b) {
    if (b == id_) continue;
    if (EffectiveKnowledge(b) < t.kts[static_cast<size_t>(b)]) {
      if (!DegradedSkipAllowed(b, t.kts[static_cast<size_t>(b)])) {
        return false;
      }
      if (degraded != nullptr) *degraded = true;
    }
  }
  return true;
}

bool HeliosNode::DegradedSkipAllowed(DcId s, Timestamp deadline) const {
  if (!ReactionEnabled() || !config_.health.degraded_commit) return false;
  if (suspected_.count(s) == 0) return false;
  // Safety argument: a skip is licensed only by >= n-f datacenters (this
  // one included, the suspect excluded) that (a) currently suspect s and
  // (b) have clocks past the deadline. Each quorum member refuses every
  // preparing record from s while suspecting (plus retroactively refused
  // s's pooled records at onset, and fences records below its clock after
  // re-admission), so any conflicting transaction of s with q < deadline
  // faces n-f standing refusers — more than the (n-1)-f Rule 3 tolerates —
  // and is doomed. Skipping s's knowledge therefore cannot let a
  // conflicting commit of s slip past this transaction. A member's
  // suspicion arrived on an envelope that, by Replicated Dictionary
  // causality, carried every s-record the member had acknowledged before
  // suspecting, so knowledge of s below the member's clock is already
  // folded into our table.
  const int n = config_.num_datacenters;
  const int f = config_.fault_tolerance;
  int quorum = 0;
  if (clock_->Now() >= deadline) ++quorum;  // This node.
  for (DcId c = 0; c < n; ++c) {
    if (c == id_ || c == s) continue;
    if (remote_suspects_[static_cast<size_t>(c)].count(s) > 0 &&
        log_.table().Get(c, c) >= deadline) {
      ++quorum;
    }
  }
  return quorum >= n - f;
}

bool HeliosNode::AckQuorumSatisfied(const PendingTxn& t, bool* doomed) const {
  *doomed = false;
  const int n = config_.num_datacenters;
  const int f = config_.fault_tolerance;
  if (f <= 0) return true;

  const auto refusal_it = refusals_.find(t.body->id);
  const std::set<DcId>* refusers =
      refusal_it == refusals_.end() ? nullptr : &refusal_it->second.refusers;
  if (refusers != nullptr &&
      static_cast<int>(refusers->size()) > (n - 1) - f) {
    // Too many peers refused within the grace time: the f-acknowledgment
    // quorum can never form; the transaction is invalidated.
    *doomed = true;
    return false;
  }
  int acks = 0;
  for (DcId c = 0; c < n; ++c) {
    if (c == id_) continue;
    if (refusers != nullptr && refusers->count(c) > 0) continue;
    // Rule 3 condition (2): C has received our log up to q(t). Condition
    // (3) — receipt within the grace time — is enforced by C itself, which
    // gossips a refusal instead of counting as an acknowledger.
    if (log_.table().Get(c, id_) >= t.request_ts) ++acks;
  }
  return acks >= f;
}

void HeliosNode::TryCommitAll() {
  // Oldest-first; collect decisions before acting because commit/abort
  // mutate the pending maps.
  std::vector<std::pair<TxnId, bool>> to_commit;  // (txn, degraded?)
  std::vector<TxnId> to_doom;
  for (const auto& [key, id] : pending_by_ts_) {
    const PendingTxn& t = pending_.at(id);
    // A staged slice waits for the coordinator's transaction-wide base
    // before its commit wait means anything (HandleRaiseStagedWait).
    if (t.staged && !t.wait_armed) continue;
    bool doomed = false;
    const bool acks = AckQuorumSatisfied(t, &doomed);
    if (doomed) {
      to_doom.push_back(id);
      continue;
    }
    bool degraded = false;
    if (!CommitWaitSatisfied(t, &degraded)) continue;
    if (!acks) continue;
    to_commit.emplace_back(id, degraded);
  }
  for (const TxnId& id : to_doom) {
    AbortPending(id, "liveness:refused", &NodeCounters::aborts_liveness);
  }
  for (const auto& [id, degraded] : to_commit) {
    if (degraded) ++counters_.degraded_commits;
    CommitPending(id);
  }
}

void HeliosNode::RecordDecisionTrace(const TxnId& id, bool committed,
                                     const std::string& reason,
                                     sim::SimTime arrived_sim,
                                     sim::SimTime wait_start_sim) {
  const sim::SimTime now = scheduler_->Now();
  if (trace_ != nullptr) {
    if (committed) {
      trace_->Span(obs::EventKind::kCommitWait, id_, id, wait_start_sim, now);
      trace_->Instant(obs::EventKind::kTxnCommit, id_, id, now);
    } else {
      trace_->Instant(obs::EventKind::kTxnAbort, id_, id, now, kInvalidDc,
                      reason);
    }
    trace_->Span(obs::EventKind::kTxnServer, id_, id, arrived_sim, now,
                 kInvalidDc, committed ? std::string() : reason);
  }
  if (committed) {
    if (h_commit_wait_us_ != nullptr) {
      h_commit_wait_us_->Observe(static_cast<double>(now - wait_start_sim));
    }
    if (h_commit_total_us_ != nullptr) {
      h_commit_total_us_->Observe(static_cast<double>(now - arrived_sim));
    }
  } else if (h_abort_total_us_ != nullptr) {
    h_abort_total_us_->Observe(static_cast<double>(now - arrived_sim));
  }
}

void HeliosNode::FinishTxn(const TxnId& id) {
  auto it = pending_.find(id);
  assert(it != pending_.end());
  pending_by_ts_.erase(std::make_pair(it->second.request_ts, id));
  pt_pool_.Remove(id);
  refusals_.erase(id);
  pending_.erase(it);
}

Timestamp HeliosNode::DependencyBumpedVersionTs(const TxnBody& body) {
  return std::max(clock_->Now(), store_.MaxVersionTsOf(body) + 1);
}

void HeliosNode::PrepareStaged(const TxnId& id) {
  auto it = pending_.find(id);
  assert(it != pending_.end());
  PendingTxn pending = std::move(it->second);
  // Out of the pending maps (Algorithm 3 is done with it) but NOT out of
  // pt_pool_: the held intent keeps blocking conflicting admissions until
  // the coordinator's decision arrives.
  pending_by_ts_.erase(std::make_pair(pending.request_ts, id));
  refusals_.erase(id);
  pending_.erase(it);

  StagedHold hold;
  hold.body = pending.body;
  hold.proposed_ts = DependencyBumpedVersionTs(*pending.body);
  hold.arrived_sim = pending.arrived_sim;
  hold.processed_sim = pending.processed_sim;
  const Timestamp proposed = hold.proposed_ts;
  staged_holds_.emplace(id, std::move(hold));
  ++counters_.staged_prepared;
  pending.staged_reply(StagedCommitOutcome{id, true, "", proposed});
}

void HeliosNode::ProcessFinalizeStaged(const TxnId& id, bool commit,
                                       Timestamp commit_ts) {
  if (down_) return;
  if (!commit) {
    // The coordinator may abort a slice that is still pending (a sibling
    // shard failed admission before this slice ever prepared).
    auto pit = pending_.find(id);
    if (pit != pending_.end() && pit->second.staged) {
      AbortPending(id, "xshard:abort", &NodeCounters::aborts_liveness);
      return;
    }
    // ... or still parked in wait-die. The retry runs off the scheduler,
    // not this FIFO service queue, so it can fire after this finalize and
    // admit into a transaction the coordinator has already given up on —
    // an intent nobody is left to finalize, wedging its keys forever.
    // Doom it instead: the retry consumes the marker and aborts.
    if (staged_waiting_.erase(id) > 0) {
      staged_doomed_.insert(id);
      return;
    }
  }
  auto it = staged_holds_.find(id);
  if (it == staged_holds_.end()) return;  // Slice already self-aborted.
  StagedHold hold = std::move(it->second);
  staged_holds_.erase(it);
  pt_pool_.Remove(id);

  rdict::LogRecord rec;
  rec.type = rdict::RecordType::kFinished;
  rec.committed = commit;
  rec.origin = id_;
  rec.body = hold.body;
  if (commit) {
    service_queue_.Charge((config_.service.write_apply + FsyncPenalty()) *
                          static_cast<Duration>(hold.body->write_set.size()));
    store_.ApplyTxn(*hold.body, commit_ts);
    rec.version_ts = commit_ts;
    ++counters_.staged_commits;
  } else {
    ++counters_.staged_aborts;
  }
  rec.ts = clock_->NowUnique();
  const Status append = log_.AppendLocal(rec);
  assert(append.ok());
  (void)append;
  if (const Duration p = FsyncPenalty(); p > 0) service_queue_.Charge(p);
  if (record_sink_) record_sink_(rec);
  // No history recording here: the coordinator records the whole
  // cross-shard transaction once, with the full body, at decision time.
  RecordDecisionTrace(id, commit, commit ? std::string() : "xshard:abort",
                      hold.arrived_sim, hold.processed_sim);
}

void HeliosNode::CommitPending(const TxnId& id) {
  auto it = pending_.find(id);
  assert(it != pending_.end());
  if (it->second.staged) {
    // A cross-shard slice does not commit unilaterally: hold the prepared
    // intent and let the coordinator finalize once every shard acked.
    PrepareStaged(id);
    return;
  }
  TxnBodyPtr body = it->second.body;
  CommitCallback reply = std::move(it->second.reply);
  RecordDecisionTrace(id, /*committed=*/true, "", it->second.arrived_sim,
                      it->second.processed_sim);
  FinishTxn(id);

  // The whole state transition — apply, finished record, bookkeeping — is
  // atomic at decision time so no request can observe a committed-but-
  // invisible transaction. The storage I/O cost only delays the reply (and
  // keeps the server busy).
  const Timestamp version_ts = DependencyBumpedVersionTs(*body);
  store_.ApplyTxn(*body, version_ts);

  rdict::LogRecord rec;
  rec.type = rdict::RecordType::kFinished;
  rec.committed = true;
  rec.ts = clock_->NowUnique();
  rec.version_ts = version_ts;
  rec.origin = id_;
  rec.body = body;
  const Status append = log_.AppendLocal(rec);
  assert(append.ok());
  (void)append;
  if (const Duration p = FsyncPenalty(); p > 0) service_queue_.Charge(p);
  if (record_sink_) record_sink_(rec);

  ++counters_.commits;
  if (history_ != nullptr) {
    history_->RecordCommit(CommittedTxn{body->id, id_, version_ts, body});
  }
  const Duration cost = config_.service.write_apply *
                        static_cast<Duration>(body->write_set.size());
  service_queue_.Submit(cost, Guarded([body = std::move(body),
                                       reply = std::move(reply)]() {
    reply(CommitOutcome{body->id, true, ""});
  }));
}

void HeliosNode::AbortPending(const TxnId& id, const std::string& reason,
                              uint64_t NodeCounters::* counter) {
  auto it = pending_.find(id);
  assert(it != pending_.end());
  TxnBodyPtr body = it->second.body;
  const bool staged = it->second.staged;
  CommitCallback reply = std::move(it->second.reply);
  StagedCommitCallback staged_reply = std::move(it->second.staged_reply);
  RecordDecisionTrace(id, /*committed=*/false, reason,
                      it->second.arrived_sim, it->second.processed_sim);
  FinishTxn(id);

  rdict::LogRecord rec;
  rec.type = rdict::RecordType::kFinished;
  rec.committed = false;
  rec.ts = clock_->NowUnique();
  rec.origin = id_;
  rec.body = body;
  const Status append = log_.AppendLocal(rec);
  assert(append.ok());
  (void)append;
  if (const Duration p = FsyncPenalty(); p > 0) service_queue_.Charge(p);
  if (record_sink_) record_sink_(rec);

  if (staged) {
    // A pre-prepare slice may still abort unilaterally (the coordinator
    // has not committed anything until every shard acks).
    ++counters_.staged_aborts;
    staged_reply(StagedCommitOutcome{id, false, reason, kMinTimestamp});
    return;
  }
  counters_.*counter += 1;
  reply(CommitOutcome{id, false, reason});
}

Status HeliosNode::Restore(const std::vector<rdict::LogRecord>& records,
                           const rdict::Timetable* timetable) {
  if (counters_.commit_requests != 0 || counters_.staged_requests != 0 ||
      log_.total_appended() != 0) {
    return Status::FailedPrecondition("Restore must run on a fresh node");
  }
  // Pass 1: rebuild the log and track which transactions finished.
  std::map<TxnId, rdict::LogRecord> preparing;
  for (const rdict::LogRecord& rec : records) {
    log_.RestoreRecord(rec);
    if (rec.type == rdict::RecordType::kPreparing) {
      preparing.emplace(rec.body->id, rec);
    } else {
      preparing.erase(rec.body->id);
      if (rec.committed) {
        store_.ApplyTxn(*rec.body, rec.version_ts);
      }
    }
    // Only records in this node's own residue class advance the sequence:
    // a sharded deployment's coordinator-minted ids (residue 0) pass
    // through this log too and must not derail the local stream.
    if (rec.origin == id_ &&
        rec.body->id.seq % config_.txn_seq_stride ==
            config_.txn_seq_start % config_.txn_seq_stride &&
        rec.body->id.seq >= next_txn_seq_) {
      next_txn_seq_ = rec.body->id.seq + config_.txn_seq_stride;
    }
  }
  if (timetable != nullptr) {
    log_.RestoreTimetable(*timetable);
  }
  // Never reuse a persisted timestamp.
  clock_->AdvanceTo(log_.table().Get(id_, id_));
  records_replayed_ = records.size();
#ifndef NDEBUG
  // The recovered timestamp floor must exceed every timestamp this node
  // itself persisted (peers' timestamps come from their clocks and do not
  // constrain ours).
  for (const rdict::LogRecord& rec : records) {
    assert(rec.origin != id_ || clock_->floor() >= rec.ts);
  }
  assert(clock_->floor() >= log_.table().Get(id_, id_));
#endif

  // Pass 2: transactions still preparing. Remote ones re-enter the
  // EPTPool (their decisions will arrive through the log exchange). Our
  // own are presumed aborted: with a WAL, the finished record is durable
  // before the client sees "committed", so an unfinished own transaction
  // was never acknowledged and may abort safely — EXCEPT a cross-shard
  // intent whose coordinator durably recorded COMMITTED. The coordinator
  // replies to its client only after that durable status write, so a
  // COMMITTED verdict means the client may have observed the commit and
  // the intent must be re-finalized as committed; everything else
  // (STAGED, ABORTED, or no verdict) stays presumed-abort.
  for (const auto& [id, rec] : preparing) {
    if (rec.origin == id_) {
      StagedResolution res;
      if (staged_resolver_) res = staged_resolver_(id);
      if (res.status == StagedStatus::kCommitted) {
        store_.ApplyTxn(*rec.body, res.commit_ts);
        rdict::LogRecord commit_rec;
        commit_rec.type = rdict::RecordType::kFinished;
        commit_rec.committed = true;
        commit_rec.ts = clock_->NowUnique();
        commit_rec.version_ts = res.commit_ts;
        commit_rec.origin = id_;
        commit_rec.body = rec.body;
        const Status append = log_.AppendLocal(commit_rec);
        if (!append.ok()) return append;
        if (record_sink_) record_sink_(commit_rec);
        ++counters_.staged_commits;
        ++counters_.staged_resolved;
        continue;
      }
      rdict::LogRecord abort_rec;
      abort_rec.type = rdict::RecordType::kFinished;
      abort_rec.committed = false;
      abort_rec.ts = clock_->NowUnique();
      abort_rec.origin = id_;
      abort_rec.body = rec.body;
      const Status append = log_.AppendLocal(abort_rec);
      if (!append.ok()) return append;
      if (record_sink_) record_sink_(abort_rec);
      if (res.status != StagedStatus::kNone) {
        ++counters_.staged_aborts;
        ++counters_.staged_resolved;
      } else {
        ++counters_.aborts_liveness;
      }
    } else {
      ept_pool_.Add(rec.body);
      if (ReactionEnabled()) ept_prepare_ts_[id] = rec.ts;
    }
  }
  return Status::Ok();
}

// --- Background tasks ---------------------------------------------------------

void HeliosNode::SendToAllPeers() {
  if (!down_ && !Stalled()) {
    // Suspicion state is (re)evaluated on the gossip tick: detection feeds
    // passively from envelope arrivals, so piggybacking the evaluation here
    // adds no scheduled events (bit-identity of healthy runs).
    EvaluateHealth();
    // Every record this node creates from here on will carry a timestamp
    // greater than this clock reading, so peers may treat our history as
    // complete up to it (essential when we are idle).
    log_.AdvanceOwnClock(clock_->NowUnique());
    const std::vector<Refusal> refusals = RefusalsSnapshot();
    for (DcId peer = 0; peer < config_.num_datacenters; ++peer) {
      if (peer == id_) continue;
      auto env = AcquireEnvelope();
      log_.BuildMessageInto(peer, &env->log);
      env->refusals = refusals;
      StampSuspicions(env.get());
      if (rtt_estimator_ != nullptr) {
        rtt_estimator_->StampOutgoing(peer, scheduler_->Now(), env.get());
      }
      service_queue_.Charge(config_.service.log_message);
      ++counters_.envelopes_sent;
      if (trace_ != nullptr) {
        trace_->Instant(obs::EventKind::kEnvelopeSend, id_, TxnId{},
                        scheduler_->Now(), peer);
      }
      send_(peer, env);
    }
  }
  scheduler_->After(config_.log_interval,
                    Guarded([this]() { SendToAllPeers(); }));
}

void HeliosNode::RunGc() {
  if (!down_ && !Stalled()) {
    log_.GarbageCollect();
    store_.TruncateVersionsBefore(clock_->Now() - Seconds(10));
    // Drop refusal state for transactions that are long decided.
    const Timestamp horizon = clock_->Now() - 10 * config_.grace_time;
    for (auto it = refusals_.begin(); it != refusals_.end();) {
      if (it->second.txn_ts != kMinTimestamp && it->second.txn_ts < horizon &&
          pending_.find(it->first) == pending_.end()) {
        it = refusals_.erase(it);
      } else {
        ++it;
      }
    }
    // Checkpoint knowledge: piggybacking on the GC tick keeps the WAL
    // write off the event schedule (bit-identity of crash-free runs).
    if (timetable_sink_) timetable_sink_(log_.table());
  }
  scheduler_->After(config_.gc_interval, Guarded([this]() { RunGc(); }));
}

void HeliosNode::MergeRefusals(const std::vector<Refusal>& refusals) {
  for (const Refusal& r : refusals) {
    // Only track refusals that can still matter: our own pending
    // transactions or remote transactions we have not seen finish.
    RefusalState& state = refusals_[r.txn];
    state.txn_ts = std::max(state.txn_ts, r.txn_ts);
    state.refusers.insert(r.refuser);
  }
}

// --- Gray-failure health (config.health) --------------------------------------

void HeliosNode::EvaluateHealth() {
  if (peer_health_ == nullptr) return;
  const sim::SimTime now = scheduler_->Now();
  for (DcId peer = 0; peer < config_.num_datacenters; ++peer) {
    if (peer == id_) continue;
    const bool suspect_now = peer_health_->Suspected(peer, now);
    const bool held = suspected_.count(peer) > 0;
    if (suspect_now && !held) {
      suspected_.emplace(peer, clock_->Now());
      ++counters_.suspicions;
      if (ReactionEnabled()) OnSuspicionOnset(peer);
    } else if (!suspect_now && held) {
      suspected_.erase(peer);
      ++counters_.readmissions;
      if (ReactionEnabled()) {
        // Re-admission fence: records the peer timestamped during its gray
        // episode but only pushes out afterwards stay refused, so degraded
        // skips already taken against it remain justified.
        fence_[static_cast<size_t>(peer)] = clock_->Now();
      }
    }
  }
  if (ReactionEnabled() && !suspected_.empty()) MaybeSendHedgedPulls();
}

void HeliosNode::OnSuspicionOnset(DcId peer) {
  // Retroactively refuse the suspect's still-preparing transactions: a
  // degraded skip is safe only while every quorum member stands refusing
  // everything the suspect could still commit below the skipped deadline.
  // (New preparing records from it are refused on ingest.)
  for (const TxnBodyPtr& body : ept_pool_.All()) {
    if (body->id.origin != peer) continue;
    const auto ts_it = ept_prepare_ts_.find(body->id);
    if (ts_it == ept_prepare_ts_.end()) continue;
    RefusalState& state = refusals_[body->id];
    state.txn_ts = ts_it->second;
    if (state.refusers.insert(id_).second) {
      ++counters_.refusals_issued;
      ++counters_.suspicion_refusals;
    }
  }
  last_hedge_ = 0;  // Hedge immediately, not a hedge_interval from now.
}

void HeliosNode::MaybeSendHedgedPulls() {
  const sim::SimTime now = scheduler_->Now();
  if (last_hedge_ > 0 && now < last_hedge_ + config_.health.hedge_interval) {
    return;
  }
  bool sent = false;
  for (const auto& [suspect, since] : suspected_) {
    (void)since;
    // Pull from the healthy peer whose timetable column for the suspect is
    // furthest along: a plain catch-up exchange drains whatever knowledge
    // of the suspect escaped before the gray episode, without waiting out
    // gossip ticks the slow path may be delaying.
    DcId best = kInvalidDc;
    Timestamp best_know = kMinTimestamp;
    for (DcId c = 0; c < config_.num_datacenters; ++c) {
      if (c == id_ || c == suspect) continue;
      if (suspected_.count(c) > 0) continue;
      const Timestamp know = log_.table().Get(c, suspect);
      if (best == kInvalidDc || know > best_know) {
        best = c;
        best_know = know;
      }
    }
    if (best == kInvalidDc) continue;
    if (best_know <= log_.table().Get(id_, suspect)) continue;  // Nothing new.
    auto env = AcquireEnvelope();
    log_.BuildMessageInto(best, &env->log);
    env->kind = EnvelopeKind::kCatchupRequest;
    StampSuspicions(env.get());
    service_queue_.Charge(config_.service.log_message);
    ++counters_.envelopes_sent;
    ++counters_.hedged_pulls;
    if (trace_ != nullptr) {
      trace_->Instant(obs::EventKind::kEnvelopeSend, id_, TxnId{},
                      scheduler_->Now(), best);
    }
    send_(best, env);
    sent = true;
  }
  if (sent) last_hedge_ = now;
}

void HeliosNode::StampSuspicions(Envelope* env) const {
  if (!ReactionEnabled() || suspected_.empty()) return;
  env->suspicions.reserve(suspected_.size());
  for (const auto& [target, since] : suspected_) {
    env->suspicions.push_back(Suspicion{target, since});
  }
}

void HeliosNode::InjectStall(Duration pause) {
  if (down_ || pause <= 0) return;
  stalled_until_ = std::max(stalled_until_, scheduler_->Now() + pause);
  // The single server is wedged for the whole pause: everything already
  // queued or arriving during the stall waits it out.
  service_queue_.Charge(pause);
}

void HeliosNode::InjectFsyncStall(Duration per_record, Duration window) {
  if (down_ || per_record <= 0 || window <= 0) return;
  fsync_stall_until_ =
      std::max(fsync_stall_until_, scheduler_->Now() + window);
  fsync_penalty_ = per_record;
}

double HeliosNode::HealthPhi(DcId peer) const {
  if (peer_health_ == nullptr || peer == id_) return 0.0;
  return peer_health_->Phi(peer, scheduler_->Now());
}

// --- Recovery catch-up --------------------------------------------------------

void HeliosNode::BeginCatchup(
    std::function<void(const RecoveryOutcome&)> done) {
  assert(!down_ && !recovering_);
  recovering_ = true;
  recover_started_sim_ = scheduler_->Now();
  catchup_done_ = std::move(done);
  catchup_attempts_ = 0;
  catchup_records_ = 0;
  catchup_pending_.clear();
  for (DcId peer = 0; peer < config_.num_datacenters; ++peer) {
    if (peer != id_) catchup_pending_.insert(peer);
  }
  if (catchup_pending_.empty()) {
    FinishCatchup();
    return;
  }
  SendCatchupRequests();
}

void HeliosNode::SendCatchupRequests() {
  // The request carries our restored timetable (inside the log message):
  // once the peer merges it, BuildMessageFor on its side computes exactly
  // the suffix we are missing.
  log_.AdvanceOwnClock(clock_->NowUnique());
  for (DcId peer : catchup_pending_) {
    auto env = AcquireEnvelope();
    log_.BuildMessageInto(peer, &env->log);
    env->kind = EnvelopeKind::kCatchupRequest;
    if (rtt_estimator_ != nullptr) {
      rtt_estimator_->StampOutgoing(peer, scheduler_->Now(), env.get());
    }
    service_queue_.Charge(config_.service.log_message);
    ++counters_.envelopes_sent;
    if (trace_ != nullptr) {
      trace_->Instant(obs::EventKind::kEnvelopeSend, id_, TxnId{},
                      scheduler_->Now(), peer);
    }
    send_(peer, env);
  }
  ++catchup_attempts_;
  scheduler_->After(config_.catchup_retry_interval, Guarded([this]() {
                      if (!recovering_ || down_) return;
                      if (catchup_attempts_ >= config_.catchup_max_attempts) {
                        // A peer may itself be down; finish partially and
                        // let regular gossip fill the rest.
                        FinishCatchup();
                        return;
                      }
                      SendCatchupRequests();
                    }));
}

void HeliosNode::FinishCatchup() {
  if (!recovering_) return;
  recovering_ = false;
  RecoveryOutcome out;
  out.records_replayed = records_replayed_;
  out.catchup_records = catchup_records_;
  out.started_sim = recover_started_sim_;
  out.finished_sim = scheduler_->Now();
  if (trace_ != nullptr) {
    trace_->Span(obs::EventKind::kNodeRecover, id_, TxnId{}, out.started_sim,
                 out.finished_sim);
  }
  if (catchup_done_) {
    auto done = std::move(catchup_done_);
    catchup_done_ = nullptr;
    done(out);
  }
}

std::vector<Refusal> HeliosNode::RefusalsSnapshot() const {
  std::vector<Refusal> out;
  for (const auto& [txn, state] : refusals_) {
    for (DcId refuser : state.refusers) {
      out.push_back(Refusal{refuser, txn, state.txn_ts});
    }
  }
  return out;
}

}  // namespace helios::core
