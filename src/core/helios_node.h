// One datacenter's Helios instance: the optimistic concurrency-control
// manager of Section 4.
//
// The node is a transport-agnostic state machine: client requests and peer
// envelopes come in through Handle* methods, outgoing envelopes leave
// through an injected send function, and all computation is paced by a
// single-server ServiceQueue (one Helios machine per datacenter, as in the
// paper's deployment).
//
// The same engine also implements Message Futures (CIDR'13), the paper's
// closest log-based comparator: both protocols share the replicated log,
// pools, and conflict detection, and differ only in the commit-wait rule —
//   Helios (Rule 2):      T[self][B] >= q(t) + co[self][B]  for every B
//   Message Futures:      T[B][self] >= q(t)                for every B
// which isolates the paper's contribution (choosing the earliest usable
// point in the peers' logs) as the only moving part.

#ifndef HELIOS_CORE_HELIOS_NODE_H_
#define HELIOS_CORE_HELIOS_NODE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "api/protocol.h"
#include "common/object_pool.h"
#include "common/status.h"
#include "common/types.h"
#include "core/envelope.h"
#include "core/helios_config.h"
#include "core/history.h"
#include "core/rtt_estimator.h"
#include "health/phi_detector.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rdict/replicated_log.h"
#include "sim/clock.h"
#include "sim/scheduler.h"
#include "sim/service_queue.h"
#include "store/mv_store.h"
#include "txn/pool.h"

namespace helios::core {

/// Which commit-wait rule the node runs.
enum class LogProtocolKind {
  kHelios,
  kMessageFutures,
};

/// Per-node event counters for reporting and tests.
struct NodeCounters {
  uint64_t read_requests = 0;
  uint64_t commit_requests = 0;
  uint64_t commits = 0;
  uint64_t aborts_on_request = 0;   ///< Algorithm 1 conflicts / overwrites.
  uint64_t aborts_by_remote = 0;    ///< Algorithm 2 victims.
  uint64_t aborts_liveness = 0;     ///< Grace-time invalidation (Rule 3).
  uint64_t records_ingested = 0;
  uint64_t envelopes_sent = 0;
  uint64_t refusals_issued = 0;
  uint64_t read_only_txns = 0;
  // Gray-failure health machinery (config.health).
  uint64_t suspicions = 0;           ///< Suspicion onsets (phi crossings).
  uint64_t readmissions = 0;         ///< Suspects welcomed back.
  uint64_t suspicion_refusals = 0;   ///< Refusals issued because of suspicion
                                     ///< or the re-admission fence.
  uint64_t degraded_commits = 0;     ///< Commits that skipped a suspect's
                                     ///< knowledge via the suspicion quorum.
  uint64_t hedged_pulls = 0;         ///< Catch-up pulls sent while suspecting.
  // Cross-shard parallel commit (src/shard). Staged sub-transactions are
  // NOT counted in commits/aborts_*: the coordinator owns the client-facing
  // outcome, these track the shard-local intent lifecycle.
  uint64_t staged_requests = 0;      ///< HandleStagedCommit admissions tried.
  uint64_t staged_waits = 0;         ///< Admissions deferred behind younger
                                     ///< staged conflicts (wait-die).
  uint64_t staged_prepared = 0;      ///< Intents whose commit wait passed.
  uint64_t staged_commits = 0;       ///< Finalized as committed.
  uint64_t staged_aborts = 0;        ///< Aborted (admission, victim, doomed,
                                     ///< or coordinator finalize-abort).
  uint64_t staged_resolved = 0;      ///< Decided by the recovery resolver.

  uint64_t total_aborts() const {
    return aborts_on_request + aborts_by_remote + aborts_liveness;
  }
};

/// What a recovery accomplished: WAL replay volume, the anti-entropy
/// catch-up volume, and the wall-clock (scheduler) window it took. The
/// cluster accumulates these across restarts because the node object
/// itself does not survive the next crash.
struct RecoveryOutcome {
  uint64_t records_replayed = 0;  ///< Records rebuilt from the WAL.
  uint64_t catchup_records = 0;   ///< Fresh records pulled from peers.
  sim::SimTime started_sim = 0;
  sim::SimTime finished_sim = 0;
};

// --- Cross-shard parallel commit (src/shard) --------------------------------
//
// A cross-shard transaction is driven by a per-datacenter coordinator
// (shard::ShardedCluster): it splits the read/write sets by shard, injects
// one globally unique TxnId, and asks every participant shard's node to
// *stage* its slice. Staging runs the full Algorithm 1 admission and commit
// wait; instead of committing at decision time the node holds the prepared
// intent (it keeps blocking conflicting admissions) and acks the
// coordinator, which finalizes everywhere once all shards prepared —
// CockroachDB's parallel-commit shape on top of the Helios wait.

/// Immediate answer to HandleStagedCommit: did Algorithm 1 admit the
/// slice, and at which request timestamp. The coordinator collects every
/// participant's timestamp and raises all slices' commit-wait base to the
/// maximum (HandleRaiseStagedWait) before any slice may prepare: slices of
/// one transaction are timestamped by different per-shard service queues,
/// and without the shared base two conflicting cross-shard transactions
/// could each escape the other's wait window (the Rule 1 algebra needs
/// wait base >= record timestamp for every slice in a shard's log).
struct StagedAdmitOutcome {
  TxnId id;
  bool admitted = false;
  std::string abort_reason;
  Timestamp request_ts = kMinTimestamp;  ///< q of the slice iff admitted.
};
using StagedAdmitCallback = std::function<void(const StagedAdmitOutcome&)>;

/// A shard node's prepared/aborted answer for a staged slice.
struct StagedCommitOutcome {
  TxnId id;
  bool prepared = false;
  std::string abort_reason;
  /// Dependency-bumped version timestamp this shard proposes; the
  /// coordinator's commit timestamp is the max over participants.
  Timestamp proposed_ts = kMinTimestamp;
};
using StagedCommitCallback = std::function<void(const StagedCommitOutcome&)>;

/// Durable coordinator verdict consulted while restoring a crashed node:
/// what happened to a staged transaction this node still holds an intent
/// for. kNone means "not a staged transaction" (plain presumed abort).
enum class StagedStatus { kNone, kStaged, kCommitted, kAborted };
struct StagedResolution {
  StagedStatus status = StagedStatus::kNone;
  Timestamp commit_ts = kMinTimestamp;  ///< Valid iff kCommitted.
};

class HeliosNode {
 public:
  /// Outgoing envelopes are shared immutably (see EnvelopePtr): the
  /// network layer and every delivery hold references to the same object,
  /// which the sender's pool recycles once the last one drops.
  using SendFn = std::function<void(DcId to, const EnvelopePtr& env)>;

  /// All pointers must outlive the node. `send` delivers an envelope to a
  /// peer datacenter (the cluster routes it through the simulated WAN).
  HeliosNode(DcId id, const HeliosConfig& config, LogProtocolKind kind,
             sim::Scheduler* scheduler, sim::Clock* clock, SendFn send);

  HeliosNode(const HeliosNode&) = delete;
  HeliosNode& operator=(const HeliosNode&) = delete;

  /// Schedules periodic log propagation and garbage collection.
  void Start();

  // --- Server-side request handlers (post client-link latency) ----------

  /// Serves a read: latest locally applied version of `key`.
  void HandleRead(const Key& key, ReadCallback reply);

  /// Read-only snapshot transaction (Appendix B): reads every key at one
  /// consistent local snapshot without entering the commit protocol.
  void HandleReadOnly(std::vector<Key> keys, ReadOnlyCallback reply);

  /// Algorithm 1: processes a commit request.
  void HandleCommitRequest(std::vector<ReadEntry> reads,
                           std::vector<WriteEntry> writes,
                           CommitCallback reply);

  /// Stages one shard's slice of a cross-shard transaction under the
  /// coordinator-minted `id` (its sequence number lives in a residue class
  /// no local transaction uses, see HeliosConfig::txn_seq_start). Runs the
  /// normal Algorithm 1 admission and answers `admitted` with the slice's
  /// request timestamp; the commit wait stays unarmed until the
  /// coordinator calls HandleRaiseStagedWait with the transaction-wide
  /// maximum. Once the (raised) wait passes, the intent is *held* — it
  /// stays in the preparing pool, immune to remote victims by the same
  /// Rule 1 argument that protects a transaction at the instant its wait
  /// is satisfied — and `prepared` acks the coordinator, which decides via
  /// HandleFinalizeStaged.
  void HandleStagedCommit(const TxnId& id, std::vector<ReadEntry> reads,
                          std::vector<WriteEntry> writes,
                          StagedAdmitCallback admitted,
                          StagedCommitCallback prepared);

  /// Arms a staged slice's commit wait with the shared base `wait_base`
  /// (the max request timestamp across the transaction's slices): each
  /// kts[x] is raised to max(kts[x], wait_base + co[self][x]). Waiting on
  /// a base >= the record's own timestamp is always safe, and the shared
  /// base restores the pairwise Rule 1 argument across slices that were
  /// timestamped by different per-shard service queues. A no-op for ids
  /// no longer pending (the slice already aborted).
  void HandleRaiseStagedWait(const TxnId& id, Timestamp wait_base);

  /// Coordinator decision for a held intent: apply + append the standard
  /// finished record (commit) or append an abort record. A no-op for ids
  /// this node no longer holds (e.g. the slice already self-aborted).
  void HandleFinalizeStaged(const TxnId& id, bool commit,
                            Timestamp commit_ts);

  /// Installs the durable-status lookup Restore() consults before
  /// presuming its own still-preparing transactions aborted: a staged
  /// transaction whose coordinator durably committed must be re-finalized
  /// as committed, never aborted (the client may have seen the commit).
  using StagedResolver = std::function<StagedResolution(const TxnId&)>;
  void set_staged_resolver(StagedResolver resolver) {
    staged_resolver_ = std::move(resolver);
  }

  /// Algorithm 2 (+ Algorithm 3 afterwards): processes a peer's envelope.
  void HandleEnvelope(EnvelopePtr env);

  /// Convenience for call sites that own a loose Envelope (live-mode
  /// decode, tests): wraps it and forwards to the shared-pointer path.
  void HandleEnvelope(Envelope env) {
    HandleEnvelope(std::make_shared<const Envelope>(std::move(env)));
  }

  // --- Experiment setup / introspection ----------------------------------

  /// Installs initial data directly (outside the protocol), as the
  /// experiment loader does before the measured run.
  void LoadInitial(const Key& key, const Value& value);

  /// Marks the node crashed: it stops sending, and drops client requests
  /// and incoming envelopes. (Network-level drops are handled separately by
  /// sim::Network; use both for a full datacenter outage.)
  void SetDown(bool down) { down_ = down; }
  bool down() const { return down_; }

  DcId id() const { return id_; }
  const rdict::ReplicatedLog& log() const { return log_; }
  const MvStore& store() const { return store_; }
  const NodeCounters& counters() const { return counters_; }
  size_t pt_pool_size() const { return pt_pool_.size(); }
  size_t ept_pool_size() const { return ept_pool_.size(); }
  size_t staged_hold_count() const { return staged_holds_.size(); }
  size_t staged_waiting_count() const { return staged_waiting_.size(); }
  sim::ServiceQueue& service_queue() { return service_queue_; }
  const sim::ServiceQueue& service_queue() const { return service_queue_; }

  /// Optional shared recorder for serializability checking.
  void set_history_recorder(HistoryRecorder* recorder) {
    history_ = recorder;
  }

  /// Optional observability (src/obs): lifecycle trace events and
  /// per-stage latency histograms. Either pointer may be null; with both
  /// null (the default) every instrumentation site reduces to one
  /// pointer check, keeping the disabled path free.
  void SetObservability(obs::TraceRecorder* trace,
                        obs::MetricsRegistry* metrics);

  /// Optional durability hook: invoked with every record this node appends
  /// locally or ingests fresh from a peer, in processing order. A
  /// write-ahead log (src/wal) plugged in here makes the node recoverable
  /// with Restore().
  using RecordSink = std::function<void(const rdict::LogRecord&)>;
  void set_record_sink(RecordSink sink) { record_sink_ = std::move(sink); }

  /// Companion durability hook: invoked with the current timetable on
  /// every GC tick, checkpointing knowledge so recovery does not have to
  /// re-derive it record by record.
  using TimetableSink = std::function<void(const rdict::Timetable&)>;
  void set_timetable_sink(TimetableSink sink) {
    timetable_sink_ = std::move(sink);
  }

  /// Recovery: rebuilds the node's state from the records (and optional
  /// timetable snapshot) replayed from its write-ahead log. Must run
  /// before Start() and before any traffic. Re-applies committed write
  /// sets, repopulates the EPTPool with still-preparing remote
  /// transactions, aborts this node's own in-flight transactions
  /// (presumed abort: their clients never received a commit), and raises
  /// the timestamp floor so no persisted timestamp is ever reused.
  Status Restore(const std::vector<rdict::LogRecord>& records,
                 const rdict::Timetable* timetable);

  /// Anti-entropy catch-up after Restore(): asks every peer for the log
  /// suffix this node missed while down (the peer derives it from the
  /// restored timetable the request carries) and calls `done` once all
  /// peers answered — or after `config.catchup_max_attempts` rounds, in
  /// which case regular gossip fills any remaining gap. While catching
  /// up the node answers client traffic with "recovering" instead of
  /// entering the commit path.
  void BeginCatchup(std::function<void(const RecoveryOutcome&)> done);
  bool recovering() const { return recovering_; }

  /// The effective knowledge bound \hat{T}[self][peer] of Eq. 2 (direct
  /// knowledge, raised by the inferred eta bound when f > 0). Exposed for
  /// tests.
  Timestamp EffectiveKnowledge(DcId peer) const;

  /// Online RTT estimator (non-null only with config.estimate_rtts).
  const RttEstimator* rtt_estimator() const { return rtt_estimator_.get(); }

  /// Replaces this node's commit-offset row co[self][*] (microseconds).
  /// Applies to transactions requested from now on; in-flight waits keep
  /// their original knowledge timestamps. The caller is responsible for
  /// Rule 1 across the deployment (HeliosCluster applies rows derived
  /// from one MAO solve to every node atomically).
  void SetCommitOffsetRow(std::vector<Duration> row);

  /// The currently effective offset co[self][x].
  Duration OffsetTo(DcId x) const;

  // --- Gray-failure health (config.health) --------------------------------

  /// Freezes this node's event loop for `pause`: everything already queued
  /// or arriving waits out the pause, and the node neither gossips nor
  /// GCs until it ends (a GC pause / VM migration / scheduler stall).
  void InjectStall(Duration pause);

  /// Makes record persistence syrup-slow for `window`: every record
  /// appended or ingested costs an extra `per_record` of service time.
  void InjectFsyncStall(Duration per_record, Duration window);

  /// Current suspicion level of `peer` (0 when health is disabled).
  double HealthPhi(DcId peer) const;
  /// True if this node currently suspects `peer`.
  bool Suspects(DcId peer) const { return suspected_.count(peer) > 0; }

 private:
  struct PendingTxn {
    TxnBodyPtr body;
    Timestamp request_ts = kMinTimestamp;      ///< q(t).
    std::vector<Timestamp> kts;                ///< Per peer (Eq. 1).
    CommitCallback reply;
    /// Scheduler-basis instants for tracing: when the request reached the
    /// node and when Algorithm 1 processed it (= commit wait start).
    sim::SimTime arrived_sim = 0;
    sim::SimTime processed_sim = 0;
    /// Cross-shard slice: at decision time the transaction is held and
    /// `staged_reply` acked instead of committing (see HandleStagedCommit).
    /// Algorithm 3 skips a staged slice until the coordinator arms its
    /// wait with the transaction-wide base (HandleRaiseStagedWait).
    bool staged = false;
    bool wait_armed = true;
    StagedCommitCallback staged_reply;
  };

  /// A prepared cross-shard intent awaiting the coordinator's decision.
  /// Still in pt_pool_ (it must keep blocking conflicting admissions —
  /// dropping it would let a later local transaction read around the
  /// not-yet-applied writes) but out of the pending maps.
  struct StagedHold {
    TxnBodyPtr body;
    Timestamp proposed_ts = kMinTimestamp;
    sim::SimTime arrived_sim = 0;
    sim::SimTime processed_sim = 0;
  };

  // Algorithm bodies (run inside the service queue). `arrived_sim` is the
  // scheduler time the request reached the node (for tracing).
  void ProcessCommitRequest(std::vector<ReadEntry> reads,
                            std::vector<WriteEntry> writes,
                            CommitCallback reply, sim::SimTime arrived_sim);
  void ProcessStagedCommit(const TxnId& id, std::vector<ReadEntry> reads,
                           std::vector<WriteEntry> writes,
                           StagedAdmitCallback admitted,
                           StagedCommitCallback prepared,
                           sim::SimTime arrived_sim);

  /// Staged admission with wait-die liveness: on a conflict where every
  /// blocker — local pending or replicated remote preparing — was minted
  /// *after* this transaction (sequence numbers give the age order), the
  /// slice polls the pools again after a short delay instead of aborting.
  /// Two cross-shard transactions that stage their slices in opposite
  /// shard orders would otherwise abort each other symmetrically, and
  /// under contention NO interleaving commits (livelock). Younger slices
  /// still die immediately, so age order is acyclic and the globally
  /// oldest staged transaction always makes progress. Plain (non-staged)
  /// admissions keep Algorithm 1's abort-on-conflict unchanged, but they
  /// die against the waiter fence like everything else (see
  /// OlderWaiterConflicts).
  void TryStagedAdmission(const TxnId& id, TxnBodyPtr body,
                          StagedAdmitCallback admitted,
                          StagedCommitCallback prepared,
                          sim::SimTime arrived_sim, int retries_left);

  /// True iff every pooled transaction conflicting with `body` was minted
  /// after `id` — the wait arm of wait-die.
  bool StagedConflictsAllYoungerStaged(const TxnId& id,
                                       const TxnBody& body) const;

  /// True iff an *older* staged transaction is parked in staged_waiting_
  /// with a read/write overlap against `body`. Waiters hold no pool entry,
  /// so without this fence a stream of younger admissions would occupy the
  /// pools at every poll and starve the waiter forever. Consulted by both
  /// the staged and the plain admission paths: a stream of single-shard
  /// transactions starves a parked waiter exactly as effectively as
  /// younger staged slices do.
  bool OlderWaiterConflicts(const TxnId& id, const TxnBody& body) const;
  void ProcessRaiseStagedWait(const TxnId& id, Timestamp wait_base);
  void ProcessFinalizeStaged(const TxnId& id, bool commit,
                             Timestamp commit_ts);
  void ProcessEnvelope(const Envelope& env);

  /// Shared tail of Algorithm 1 (lines 2-10) for both the local and the
  /// staged admission path: conflict/overwritten checks, timestamping, the
  /// preparing append, and pooling. The caller pre-fills `pending`'s reply
  /// and arrival fields; on success the transaction is pending (`*pending`
  /// moved-from), on failure it is returned untouched with `*abort_reason`
  /// set so the caller can still answer through it.
  bool AdmitPreparing(const TxnId& id, const TxnBodyPtr& body,
                      PendingTxn* pending, std::string* abort_reason);

  /// Decision-time transition of a staged pending transaction: moves it
  /// from the pending maps into staged_holds_ and acks the coordinator.
  void PrepareStaged(const TxnId& id);

  /// Pool-backed envelope for the send paths: recycled storage, reset to
  /// blank gossip state.
  std::shared_ptr<Envelope> AcquireEnvelope();

  /// Algorithm 3: commits every pending transaction whose wait conditions
  /// are now satisfied; aborts the provably unreplicable ones.
  void TryCommitAll();

  /// Rule 2 condition (1) — or the Message Futures wait. Sets `*degraded`
  /// (when non-null) if satisfaction required skipping a suspect via
  /// DegradedSkipAllowed.
  bool CommitWaitSatisfied(const PendingTxn& t,
                           bool* degraded = nullptr) const;

  /// Rule 3 conditions (2) and (3): f peers acknowledged t's record within
  /// the grace time. Sets `*doomed` when too many peers refused for the
  /// quorum to ever form.
  bool AckQuorumSatisfied(const PendingTxn& t, bool* doomed) const;

  /// eta of Eq. 3 for `target`: the knowledge of `target` inferable from
  /// the n-f best-informed other datacenters, minus the grace time.
  Timestamp EtaBound(DcId target) const;

  /// True if `read` still matches the latest locally applied version.
  bool ReadStillValid(const ReadEntry& read) const;

  /// Emits the decision-time trace events and histogram samples for `id`:
  /// commit-wait span (commits only), node-side server span, decision
  /// instant. `wait_start_sim` is when Algorithm 1 pooled the transaction.
  void RecordDecisionTrace(const TxnId& id, bool committed,
                           const std::string& reason,
                           sim::SimTime arrived_sim,
                           sim::SimTime wait_start_sim);

  void AbortPending(const TxnId& id, const std::string& reason,
                    uint64_t NodeCounters::* counter);
  void CommitPending(const TxnId& id);
  void FinishTxn(const TxnId& id);  // Shared pending-bookkeeping removal.

  /// Version timestamp for a commit: local clock, dependency-bumped above
  /// every version the transaction read or overwrites (see MvStore docs).
  Timestamp DependencyBumpedVersionTs(const TxnBody& body);

  void SendToAllPeers();
  void RunGc();
  void MergeRefusals(const std::vector<Refusal>& refusals);
  std::vector<Refusal> RefusalsSnapshot() const;

  // --- Gray-failure health internals --------------------------------------

  /// True when the suspicion *reaction* layer (refusals, degraded commit,
  /// fences) is armed: health on, f >= 1 (the machinery leans on Rule 3's
  /// refusal quorum), and the Helios rule (Message Futures waits on the
  /// suspect's own acknowledgment, which no quorum can stand in for).
  bool ReactionEnabled() const {
    return config_.health.enabled && config_.fault_tolerance > 0 &&
           kind_ == LogProtocolKind::kHelios;
  }

  /// Walks every peer's phi on the gossip tick: records suspicion onsets
  /// (retroactive refusals + an immediate hedged pull) and re-admissions
  /// (the timestamp fence), then paces periodic hedged pulls.
  void EvaluateHealth();
  void OnSuspicionOnset(DcId peer);
  void MaybeSendHedgedPulls();
  /// Copies the current suspicion set into an outgoing envelope.
  void StampSuspicions(Envelope* env) const;

  /// Whether txn deadline `deadline` may be satisfied WITHOUT the
  /// suspect `s`'s knowledge: at least n-f datacenters (self included,
  /// `s` excluded) currently suspect `s` with clocks past the deadline.
  /// Their standing refusals then doom every conflicting transaction `s`
  /// could still be preparing below the deadline, so skipping is safe.
  bool DegradedSkipAllowed(DcId s, Timestamp deadline) const;

  /// True while an injected process stall is pausing this node.
  bool Stalled() const { return scheduler_->Now() < stalled_until_; }
  /// Per-record persistence penalty of an active fsync stall (else 0).
  Duration FsyncPenalty() const {
    return scheduler_->Now() < fsync_stall_until_ ? fsync_penalty_ : 0;
  }

  void SendCatchupRequests();
  void FinishCatchup();

  /// Wraps a deferred callback so it dies with this node object. The
  /// scheduler has no cancellation, and an amnesia restart destroys the
  /// node while its periodic loops and queued service work are still
  /// scheduled — the weak token turns those into no-ops instead of
  /// use-after-free.
  template <typename Fn>
  auto Guarded(Fn fn) {
    return [alive = std::weak_ptr<char>(alive_),
            fn = std::move(fn)]() mutable {
      if (alive.expired()) return;
      fn();
    };
  }

  const DcId id_;
  const HeliosConfig& config_;
  const LogProtocolKind kind_;
  sim::Scheduler* scheduler_;
  sim::Clock* clock_;
  SendFn send_;
  sim::ServiceQueue service_queue_;

  rdict::ReplicatedLog log_;
  MvStore store_;
  TxnPool pt_pool_;   ///< Local preparing transactions.
  TxnPool ept_pool_;  ///< External (remote) preparing transactions.

  /// Local preparing transactions by id, plus an index by q(t) so
  /// Algorithm 3 visits them oldest-first.
  std::map<TxnId, PendingTxn> pending_;
  std::map<std::pair<Timestamp, TxnId>, TxnId> pending_by_ts_;

  /// Datacenters known to have refused to acknowledge a transaction.
  struct RefusalState {
    Timestamp txn_ts = kMinTimestamp;
    std::set<DcId> refusers;
  };
  std::map<TxnId, RefusalState> refusals_;

  /// Prepared cross-shard intents awaiting finalize (see StagedHold).
  std::map<TxnId, StagedHold> staged_holds_;
  /// Staged slices parked by wait-die, by id; their bodies fence younger
  /// overlapping admissions (OlderWaiterConflicts).
  std::map<TxnId, TxnBodyPtr> staged_waiting_;
  /// Parked slices the coordinator finalize-aborted while they waited:
  /// the wait-die retry runs off the scheduler, not the FIFO service
  /// queue, so the finalize cannot intercept it — instead the retry
  /// consumes the marker and aborts rather than admitting into a
  /// transaction nobody is left to finalize. Each entry is consumed by
  /// exactly one retry (or dies with the node object).
  std::set<TxnId> staged_doomed_;
  StagedResolver staged_resolver_;

  uint64_t next_txn_seq_ = 1;
  uint64_t next_load_seq_ = 1;
  bool down_ = false;
  bool started_ = false;
  /// Liveness token for Guarded(): resets implicitly when the node object
  /// is destroyed on an amnesia restart.
  std::shared_ptr<char> alive_ = std::make_shared<char>(0);
  /// Anti-entropy catch-up state (recovery only).
  bool recovering_ = false;
  std::set<DcId> catchup_pending_;
  int catchup_attempts_ = 0;
  uint64_t catchup_records_ = 0;
  uint64_t records_replayed_ = 0;
  sim::SimTime recover_started_sim_ = 0;
  std::function<void(const RecoveryOutcome&)> catchup_done_;
  NodeCounters counters_;
  HistoryRecorder* history_ = nullptr;
  /// Observability (null = disabled). Histograms are resolved once in
  /// SetObservability so the hot path never touches the registry map.
  obs::TraceRecorder* trace_ = nullptr;
  obs::Histogram* h_queue_wait_us_ = nullptr;
  obs::Histogram* h_commit_wait_us_ = nullptr;
  obs::Histogram* h_commit_total_us_ = nullptr;
  obs::Histogram* h_abort_total_us_ = nullptr;
  RecordSink record_sink_;
  TimetableSink timetable_sink_;
  /// Recycles outgoing envelopes; in-flight shared_ptrs survive this
  /// node's destruction (amnesia crash) via the pool's weak deleter.
  common::ObjectPool<Envelope> envelope_pool_;
  std::unique_ptr<RttEstimator> rtt_estimator_;
  /// Runtime override of co[self][*]; empty = use the config's offsets.
  std::vector<Duration> offset_row_override_;

  // --- Gray-failure health state (null/empty unless config.health.enabled;
  // the zero-fault hot path only ever pays pointer/empty checks) ----------
  /// phi-accrual detectors fed from envelope arrivals (scheduler basis).
  std::unique_ptr<health::PeerHealth> peer_health_;
  /// Peers this node currently suspects, with the clock at onset.
  std::map<DcId, Timestamp> suspected_;
  /// Per peer: targets that peer's latest envelope declared suspected.
  std::vector<std::set<DcId>> remote_suspects_;
  /// Sender-clock watermark guarding remote_suspects_ against reordered
  /// envelopes overwriting newer suspicion state with older.
  std::vector<Timestamp> suspect_watermark_;
  /// Re-admission fences: refuse preparing records from peer p with
  /// ts < fence_[p] forever after p's re-admission, so records delayed
  /// inside p during its gray episode cannot undermine the degraded
  /// commits made while it was suspected.
  std::vector<Timestamp> fence_;
  /// q(t) of each still-preparing remote transaction (reaction mode only),
  /// so onset-time retroactive refusals carry the right timestamp.
  std::map<TxnId, Timestamp> ept_prepare_ts_;
  sim::SimTime last_hedge_ = 0;
  /// Injected gray degradations (sim::FaultPlan process/fsync stalls).
  sim::SimTime stalled_until_ = 0;
  sim::SimTime fsync_stall_until_ = 0;
  Duration fsync_penalty_ = 0;
};

}  // namespace helios::core

#endif  // HELIOS_CORE_HELIOS_NODE_H_
