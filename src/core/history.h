// Execution-history capture and conflict-serializability checking.
//
// The paper's claim is serializability (Section 3); this module lets tests
// verify it mechanically. Every committed transaction is recorded with its
// read set (which version of each key it observed) and write set; the
// checker builds the direct serialization graph — write-write, write-read
// (reads-from) and read-write (anti-dependency) edges — and verifies it is
// acyclic, i.e. the history is conflict-serializable.

#ifndef HELIOS_CORE_HISTORY_H_
#define HELIOS_CORE_HISTORY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "txn/transaction.h"

namespace helios::core {

/// One committed transaction as observed at its origin datacenter.
struct CommittedTxn {
  TxnId id;
  DcId origin = kInvalidDc;
  /// Version timestamp of the installed writes (total order per key).
  Timestamp version_ts = kMinTimestamp;
  TxnBodyPtr body;
};

/// Collects the commits of a run. One recorder is shared by all
/// datacenters of a cluster; commits are recorded once, at the origin.
class HistoryRecorder {
 public:
  void RecordCommit(CommittedTxn txn) { commits_.push_back(std::move(txn)); }
  const std::vector<CommittedTxn>& commits() const { return commits_; }
  size_t size() const { return commits_.size(); }
  void Clear() { commits_.clear(); }

 private:
  std::vector<CommittedTxn> commits_;
};

/// Verifies conflict serializability of `commits`. Returns OK if the
/// direct serialization graph is acyclic; kFailedPrecondition with a
/// description of one offending cycle otherwise. Reads of versions written
/// outside the recorded history (initial database state) are treated as
/// reads of a virtual initial transaction ordered before everything.
Status CheckSerializable(const std::vector<CommittedTxn>& commits);

}  // namespace helios::core

#endif  // HELIOS_CORE_HISTORY_H_
