// Online RTT estimation over the log exchange.
//
// Section 4.5 plans commit offsets from "an estimation of the RTT", and
// Figure 5 shows what estimation errors cost. This component produces that
// estimate from live traffic instead of an operator-supplied table: every
// periodic envelope doubles as a ping, the peer's next envelope carries the
// echo together with how long it held the ping (so tick alignment does not
// inflate the sample), and smoothed per-peer RTTs are maintained with an
// EWMA. Each node gossips its own row, so every node eventually holds the
// full matrix the MAO replanner needs.
//
// Clock skew cancels out by construction: both endpoints only ever
// subtract timestamps taken on their own clock.

#ifndef HELIOS_CORE_RTT_ESTIMATOR_H_
#define HELIOS_CORE_RTT_ESTIMATOR_H_

#include <cstdint>
#include <map>
#include <vector>

#include "common/types.h"
#include "core/envelope.h"
#include "lp/mao.h"

namespace helios::core {

class RttEstimator {
 public:
  /// `alpha` is the EWMA weight of a new sample.
  RttEstimator(DcId self, int n, double alpha = 0.2);

  /// Sender side: stamps `env` (about to go to `peer`) with a fresh ping,
  /// the echo of the peer's latest ping, and this node's gossip row.
  /// `now` must be a monotonic local time (the scheduler's, not the
  /// skewed datacenter clock).
  void StampOutgoing(DcId peer, Timestamp now, Envelope* env);

  /// Receiver side: consumes the estimation fields of an envelope that
  /// arrived from `peer` at local time `now`.
  void OnIncoming(DcId peer, Timestamp now, const Envelope& env);

  /// Smoothed RTT to `peer` in microseconds; 0 if no sample yet.
  Duration EstimatedRttTo(DcId peer) const;

  /// True once this node has an estimate for every pair (own samples plus
  /// gossiped rows from every peer).
  bool MatrixComplete() const;

  /// The full estimated matrix in milliseconds. Pairs are symmetrized by
  /// averaging the two directions' estimates. Requires MatrixComplete().
  lp::RttMatrix MatrixMs() const;

  uint64_t samples() const { return samples_; }

 private:
  struct PeerState {
    uint32_t next_ping_id = 1;
    /// Outstanding pings: id -> local send time (bounded FIFO).
    std::map<uint32_t, Timestamp> outstanding;
    uint32_t latest_ping_from_peer = 0;
    Timestamp latest_ping_recv_time = 0;
    double ewma_rtt_us = 0.0;
  };

  DcId self_;
  int n_;
  double alpha_;
  std::vector<PeerState> peers_;
  /// rows_[dc][x] = dc's advertised RTT estimate to x (us; 0 unknown).
  /// Row self_ is maintained from our own EWMAs.
  std::vector<std::vector<Duration>> rows_;
  uint64_t samples_ = 0;
};

}  // namespace helios::core

#endif  // HELIOS_CORE_RTT_ESTIMATOR_H_
