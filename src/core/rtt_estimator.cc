#include "core/rtt_estimator.h"

#include <cassert>

namespace helios::core {

RttEstimator::RttEstimator(DcId self, int n, double alpha)
    : self_(self),
      n_(n),
      alpha_(alpha),
      peers_(static_cast<size_t>(n)),
      rows_(static_cast<size_t>(n),
            std::vector<Duration>(static_cast<size_t>(n), 0)) {
  assert(self >= 0 && self < n);
}

void RttEstimator::StampOutgoing(DcId peer, Timestamp now, Envelope* env) {
  PeerState& state = peers_[static_cast<size_t>(peer)];
  env->ping_id = state.next_ping_id++;
  state.outstanding.emplace(env->ping_id, now);
  // Bound the outstanding window (lost replies just age out).
  while (state.outstanding.size() > 64) {
    state.outstanding.erase(state.outstanding.begin());
  }
  if (state.latest_ping_from_peer != 0) {
    env->pong_for = state.latest_ping_from_peer;
    env->pong_hold_us = now - state.latest_ping_recv_time;
  }
  env->rtt_row_us = rows_[static_cast<size_t>(self_)];
}

void RttEstimator::OnIncoming(DcId peer, Timestamp now, const Envelope& env) {
  PeerState& state = peers_[static_cast<size_t>(peer)];
  if (env.ping_id != 0) {
    state.latest_ping_from_peer = env.ping_id;
    state.latest_ping_recv_time = now;
  }
  if (env.pong_for != 0) {
    auto it = state.outstanding.find(env.pong_for);
    if (it != state.outstanding.end()) {
      const Duration sample = (now - it->second) - env.pong_hold_us;
      // Everything up to and including the echoed ping is resolved or
      // superseded.
      state.outstanding.erase(state.outstanding.begin(), std::next(it));
      if (sample > 0) {
        ++samples_;
        if (state.ewma_rtt_us <= 0.0) {
          state.ewma_rtt_us = static_cast<double>(sample);
        } else {
          state.ewma_rtt_us = (1.0 - alpha_) * state.ewma_rtt_us +
                              alpha_ * static_cast<double>(sample);
        }
        rows_[static_cast<size_t>(self_)][static_cast<size_t>(peer)] =
            static_cast<Duration>(state.ewma_rtt_us);
      }
    }
  }
  if (static_cast<int>(env.rtt_row_us.size()) == n_) {
    rows_[static_cast<size_t>(peer)] = env.rtt_row_us;
  }
}

Duration RttEstimator::EstimatedRttTo(DcId peer) const {
  if (peer == self_) return 0;
  return rows_[static_cast<size_t>(self_)][static_cast<size_t>(peer)];
}

bool RttEstimator::MatrixComplete() const {
  for (DcId a = 0; a < n_; ++a) {
    for (DcId b = 0; b < n_; ++b) {
      if (a == b) continue;
      if (rows_[static_cast<size_t>(a)][static_cast<size_t>(b)] <= 0) {
        return false;
      }
    }
  }
  return true;
}

lp::RttMatrix RttEstimator::MatrixMs() const {
  lp::RttMatrix out(n_);
  for (DcId a = 0; a < n_; ++a) {
    for (DcId b = a + 1; b < n_; ++b) {
      const double ab = static_cast<double>(
          rows_[static_cast<size_t>(a)][static_cast<size_t>(b)]);
      const double ba = static_cast<double>(
          rows_[static_cast<size_t>(b)][static_cast<size_t>(a)]);
      double rtt_us = 0.0;
      if (ab > 0 && ba > 0) {
        rtt_us = (ab + ba) / 2.0;
      } else {
        rtt_us = ab > 0 ? ab : ba;
      }
      out.Set(a, b, rtt_us / 1000.0);
    }
  }
  return out;
}

}  // namespace helios::core
