// Wires N HeliosNodes over the simulated WAN and exposes the
// protocol-agnostic client API. Also used (with the Message Futures commit
// rule) as the Message Futures deployment.

#ifndef HELIOS_CORE_HELIOS_CLUSTER_H_
#define HELIOS_CORE_HELIOS_CLUSTER_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "api/protocol.h"
#include "core/helios_config.h"
#include "core/helios_node.h"
#include "core/history.h"
#include "sim/clock.h"
#include "sim/network.h"
#include "sim/scheduler.h"
#include "wal/wal_sink.h"

namespace helios::core {

class HeliosCluster : public ProtocolCluster {
 public:
  /// `scheduler` and `network` must outlive the cluster; `network` must
  /// have `config.num_datacenters` nodes.
  HeliosCluster(sim::Scheduler* scheduler, sim::Network* network,
                HeliosConfig config,
                LogProtocolKind kind = LogProtocolKind::kHelios,
                std::string name = "Helios");

  void Start() override;
  void ClientRead(DcId client_dc, const Key& key, ReadCallback done) override;
  void ClientCommit(DcId client_dc, std::vector<ReadEntry> reads,
                    std::vector<WriteEntry> writes,
                    CommitCallback done) override;
  void ClientReadOnly(DcId client_dc, std::vector<Key> keys,
                      ReadOnlyCallback done) override;
  std::string name() const override { return name_; }
  int num_datacenters() const override { return config_.num_datacenters; }

  /// Loads the same initial value on every datacenter (call before Start,
  /// and load keys in the same order across runs for deterministic ids).
  void LoadInitialAll(const Key& key, const Value& value) override;

  /// Installs the observability sinks on every node (src/obs).
  void SetObservability(obs::TraceRecorder* trace,
                        obs::MetricsRegistry* metrics) override;

  /// Dumps the aggregated NodeCounters (and pool sizes) into `registry`.
  void ExportMetrics(obs::MetricsRegistry* registry) const override;

  /// Full datacenter outage: the network drops its traffic and the node
  /// process crashes with amnesia (volatile state destroyed; only the WAL
  /// survives). Recovery rebuilds the node from its WAL via Restore(),
  /// then runs the anti-entropy catch-up against the peers.
  void CrashDatacenter(DcId dc);
  void RecoverDatacenter(DcId dc);

  /// Routes peer envelopes through `mesh` (reliable sessions over the
  /// lossy WAN); null restores direct network sends.
  void SetReliableMesh(sim::ReliableMesh* mesh) override { mesh_ = mesh; }

  /// Node-process half of an outage (the harness handles the network
  /// half): `down` destroys the node object — true amnesia — leaving a
  /// fresh down shell that drops in-flight deliveries; `!down` replays
  /// the WAL through Restore() and begins catch-up.
  void SetDatacenterDown(DcId dc, bool down) override;

  /// Gray-fault injection points (forwarded to the node's event loop /
  /// persistence path).
  void InjectStall(DcId dc, Duration pause) override {
    node(dc).InjectStall(pause);
  }
  void InjectFsyncStall(DcId dc, Duration per_record,
                        Duration window) override {
    node(dc).InjectFsyncStall(per_record, window);
  }

  const RecoveryStats& recovery_stats() const { return recovery_stats_; }

  /// The per-datacenter in-memory WAL (the simulated durable disk).
  const wal::MemoryWal& wal(DcId dc) const {
    return *wals_[static_cast<size_t>(dc)];
  }

  // Checker observation points (src/check).
  const wal::MemoryWal* wal_journal(DcId dc) const override {
    return wals_[static_cast<size_t>(dc)].get();
  }
  void SnapshotStore(
      DcId dc, const std::function<void(const Key&, const VersionedValue&)>&
                   fn) const override {
    node(dc).store().ForEachLatest(fn);
  }
  bool datacenter_down(DcId dc) const override { return node(dc).down(); }
  RecoveryStats recovery_snapshot() const override { return recovery_stats_; }

  HeliosNode& node(DcId dc) { return *nodes_[static_cast<size_t>(dc)]; }
  const HeliosNode& node(DcId dc) const {
    return *nodes_[static_cast<size_t>(dc)];
  }
  sim::Clock& clock(DcId dc) { return *clocks_[static_cast<size_t>(dc)]; }
  HistoryRecorder& history() { return history_; }
  const HeliosConfig& config() const { return config_; }

  /// Sum of a counter across datacenters.
  NodeCounters AggregateCounters() const;

  /// Replans commit offsets from the live RTT estimates (requires
  /// config.estimate_rtts and a complete estimated matrix at datacenter
  /// `reference`): solves MAO over the estimate and installs each row on
  /// its node. In the simulator this is atomic across nodes, so Rule 1
  /// holds throughout; a live deployment would stage the change
  /// (raise-offsets first, then lower). Returns the estimated matrix's
  /// MAO average latency (ms).
  Result<double> ReplanOffsetsFromEstimates(DcId reference = 0);

  /// Variant for a suspected gray-failed datacenter: replans with the
  /// suspect's RTT constraints dropped (lp::SolveMaoExcluding), so the
  /// healthy quorum's offsets stop pricing in the straggler while every
  /// pair — suspect included — still satisfies Rule 1. Returns the MAO
  /// average latency (ms) over the healthy datacenters.
  Result<double> ReplanOffsetsExcluding(DcId suspect, DcId reference = 0);

  /// Installs a function that computes an envelope's on-wire size (see
  /// wire::EncodedEnvelopeSize). When set, peer messages go through
  /// Network::SendSized so link bandwidth and byte counters apply.
  using EnvelopeSizer = std::function<size_t(const Envelope&)>;
  void set_envelope_sizer(EnvelopeSizer sizer) {
    envelope_sizer_ = std::move(sizer);
  }

  // --- Sharded-deployment hooks (src/shard) -------------------------------

  /// Redirects commit recording to a shared recorder so a ShardedCluster's
  /// S inner clusters contribute to one serialization history. Applies to
  /// current nodes and every node built later (amnesia restarts). Null
  /// restores the cluster-owned recorder.
  void SetHistoryRecorder(HistoryRecorder* recorder);

  /// Installs the durable staged-transaction status lookup consulted by a
  /// recovering node (see HeliosNode::set_staged_resolver); the DcId names
  /// the datacenter whose node is asking. Survives amnesia restarts.
  using StagedResolverFn =
      std::function<StagedResolution(DcId, const TxnId&)>;
  void SetStagedResolver(StagedResolverFn resolver);

 private:
  /// Builds a fresh node for `dc` with all cluster wiring (WAN send, WAL
  /// sinks, history, observability). Used at construction and for the
  /// amnesia restart on crash.
  std::unique_ptr<HeliosNode> MakeNode(DcId dc);

  sim::Scheduler* scheduler_;
  sim::Network* network_;
  sim::ReliableMesh* mesh_ = nullptr;
  HeliosConfig config_;
  const LogProtocolKind kind_;
  std::string name_;
  HistoryRecorder history_;
  std::vector<std::unique_ptr<sim::Clock>> clocks_;
  std::vector<std::unique_ptr<HeliosNode>> nodes_;
  /// Per-datacenter durable state: survives node destruction, so a crash
  /// wipes everything except what went through the sinks.
  std::vector<std::unique_ptr<wal::MemoryWal>> wals_;
  /// Data loaded outside the protocol (LoadInitialAll bypasses the log,
  /// so recovery must replay it separately before the WAL).
  std::vector<std::pair<Key, Value>> initial_loads_;
  bool started_ = false;
  RecoveryStats recovery_stats_;
  /// Shared-history override for sharded deployments (null = history_).
  HistoryRecorder* history_override_ = nullptr;
  StagedResolverFn staged_resolver_;
  obs::TraceRecorder* trace_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  EnvelopeSizer envelope_sizer_;
};

/// Convenience: a Message Futures deployment is a Helios cluster running
/// the Message Futures commit rule with no commit offsets and f = 0.
std::unique_ptr<HeliosCluster> MakeMessageFuturesCluster(
    sim::Scheduler* scheduler, sim::Network* network, HeliosConfig config);

}  // namespace helios::core

#endif  // HELIOS_CORE_HELIOS_CLUSTER_H_
