// Wires N HeliosNodes over the simulated WAN and exposes the
// protocol-agnostic client API. Also used (with the Message Futures commit
// rule) as the Message Futures deployment.

#ifndef HELIOS_CORE_HELIOS_CLUSTER_H_
#define HELIOS_CORE_HELIOS_CLUSTER_H_

#include <memory>
#include <string>
#include <vector>

#include "api/protocol.h"
#include "core/helios_config.h"
#include "core/helios_node.h"
#include "core/history.h"
#include "sim/clock.h"
#include "sim/network.h"
#include "sim/scheduler.h"

namespace helios::core {

class HeliosCluster : public ProtocolCluster {
 public:
  /// `scheduler` and `network` must outlive the cluster; `network` must
  /// have `config.num_datacenters` nodes.
  HeliosCluster(sim::Scheduler* scheduler, sim::Network* network,
                HeliosConfig config,
                LogProtocolKind kind = LogProtocolKind::kHelios,
                std::string name = "Helios");

  void Start() override;
  void ClientRead(DcId client_dc, const Key& key, ReadCallback done) override;
  void ClientCommit(DcId client_dc, std::vector<ReadEntry> reads,
                    std::vector<WriteEntry> writes,
                    CommitCallback done) override;
  void ClientReadOnly(DcId client_dc, std::vector<Key> keys,
                      ReadOnlyCallback done) override;
  std::string name() const override { return name_; }
  int num_datacenters() const override { return config_.num_datacenters; }

  /// Loads the same initial value on every datacenter (call before Start,
  /// and load keys in the same order across runs for deterministic ids).
  void LoadInitialAll(const Key& key, const Value& value) override;

  /// Installs the observability sinks on every node (src/obs).
  void SetObservability(obs::TraceRecorder* trace,
                        obs::MetricsRegistry* metrics) override;

  /// Dumps the aggregated NodeCounters (and pool sizes) into `registry`.
  void ExportMetrics(obs::MetricsRegistry* registry) const override;

  /// Full datacenter outage: the network drops its traffic and the node
  /// stops processing.
  void CrashDatacenter(DcId dc);
  void RecoverDatacenter(DcId dc);

  /// Routes peer envelopes through `mesh` (reliable sessions over the
  /// lossy WAN); null restores direct network sends.
  void SetReliableMesh(sim::ReliableMesh* mesh) override { mesh_ = mesh; }

  /// Node-process half of an outage; the harness handles the network half.
  void SetDatacenterDown(DcId dc, bool down) override {
    node(dc).SetDown(down);
  }

  HeliosNode& node(DcId dc) { return *nodes_[static_cast<size_t>(dc)]; }
  const HeliosNode& node(DcId dc) const {
    return *nodes_[static_cast<size_t>(dc)];
  }
  sim::Clock& clock(DcId dc) { return *clocks_[static_cast<size_t>(dc)]; }
  HistoryRecorder& history() { return history_; }
  const HeliosConfig& config() const { return config_; }

  /// Sum of a counter across datacenters.
  NodeCounters AggregateCounters() const;

  /// Replans commit offsets from the live RTT estimates (requires
  /// config.estimate_rtts and a complete estimated matrix at datacenter
  /// `reference`): solves MAO over the estimate and installs each row on
  /// its node. In the simulator this is atomic across nodes, so Rule 1
  /// holds throughout; a live deployment would stage the change
  /// (raise-offsets first, then lower). Returns the estimated matrix's
  /// MAO average latency (ms).
  Result<double> ReplanOffsetsFromEstimates(DcId reference = 0);

  /// Installs a function that computes an envelope's on-wire size (see
  /// wire::EncodedEnvelopeSize). When set, peer messages go through
  /// Network::SendSized so link bandwidth and byte counters apply.
  using EnvelopeSizer = std::function<size_t(const Envelope&)>;
  void set_envelope_sizer(EnvelopeSizer sizer) {
    envelope_sizer_ = std::move(sizer);
  }

 private:
  sim::Scheduler* scheduler_;
  sim::Network* network_;
  sim::ReliableMesh* mesh_ = nullptr;
  HeliosConfig config_;
  std::string name_;
  HistoryRecorder history_;
  std::vector<std::unique_ptr<sim::Clock>> clocks_;
  std::vector<std::unique_ptr<HeliosNode>> nodes_;
  EnvelopeSizer envelope_sizer_;
};

/// Convenience: a Message Futures deployment is a Helios cluster running
/// the Message Futures commit rule with no commit offsets and f = 0.
std::unique_ptr<HeliosCluster> MakeMessageFuturesCluster(
    sim::Scheduler* scheduler, sim::Network* network, HeliosConfig config);

}  // namespace helios::core

#endif  // HELIOS_CORE_HELIOS_CLUSTER_H_
