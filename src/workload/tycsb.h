// T-YCSB: the transactional YCSB workload of Section 5.1.
//
// "It issues transactions that consist of a set of read and write
// operations, where each operation accesses a different record of the data
// store. [...] An operation is either a read or a write to a key from a
// pool of 50000 keys. The key is chosen using a Zipfian distribution. Each
// transaction contains five operations. Half of these operations are reads
// and the other half are writes."

#ifndef HELIOS_WORKLOAD_TYCSB_H_
#define HELIOS_WORKLOAD_TYCSB_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/types.h"

namespace helios::workload {

struct WorkloadConfig {
  int ops_per_txn = 5;
  /// Probability an operation is a write. The paper's half/half split of 5
  /// operations rounds per-transaction: ceil/floor alternating around 0.5.
  double write_fraction = 0.5;
  uint64_t num_keys = 50000;
  /// Zipfian skew. Note: YCSB's default theta of 0.99 concentrates ~8% of
  /// accesses on the hottest of 50,000 keys; with 60 concurrent clients
  /// and 100-300ms transactions that forces near-total aborts for every
  /// protocol — far from the paper's reported ~0.7% per 30 clients. The
  /// paper's measured abort rates imply weak effective skew, so the
  /// default here is mild (0.2). See EXPERIMENTS.md ("workload
  /// calibration").
  double zipf_theta = 0.2;
  int value_size = 16;
  /// Partition-local transactions: with P > 1, each transaction first
  /// draws one of P contiguous key-range partitions (boundaries
  /// num_keys*p/P — the same split ShardMap::RangeOverWorkloadKeys uses)
  /// and confines all its keys to it, so a range-sharded deployment with
  /// S == P shards sees only single-shard transactions. P == 1 (the
  /// default) draws no extra randomness and is byte-identical to the
  /// un-partitioned stream.
  int key_partitions = 1;
  /// Fraction of transactions issued as read-only snapshot transactions
  /// (Appendix B); 0 reproduces the paper's main experiments.
  double read_only_fraction = 0.0;
};

/// One planned transaction: distinct keys split into reads and writes.
struct TxnPlan {
  std::vector<Key> reads;
  std::vector<Key> writes;
  bool read_only = false;
};

/// Deterministic per-client workload stream.
class TYcsbGenerator {
 public:
  TYcsbGenerator(const WorkloadConfig& config, uint64_t seed);

  /// Next transaction plan: `ops_per_txn` distinct keys, read/write split
  /// per the configured fraction (at least one write, as the paper's model
  /// requires of read-write transactions).
  TxnPlan NextTxn();

  /// Canonical key name for index `i`, e.g. "user00000042".
  static Key KeyName(uint64_t i);

  /// Random payload of the configured size.
  Value NextValue();

  const WorkloadConfig& config() const { return config_; }

 private:
  WorkloadConfig config_;
  Rng rng_;
  ZipfianGenerator zipf_;
};

}  // namespace helios::workload

#endif  // HELIOS_WORKLOAD_TYCSB_H_
