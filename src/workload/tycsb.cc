#include "workload/tycsb.h"

#include <algorithm>
#include <cstdio>

namespace helios::workload {

TYcsbGenerator::TYcsbGenerator(const WorkloadConfig& config, uint64_t seed)
    : config_(config), rng_(seed), zipf_(config.num_keys, config.zipf_theta) {}

Key TYcsbGenerator::KeyName(uint64_t i) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "user%08llu",
                static_cast<unsigned long long>(i));
  return buf;
}

Value TYcsbGenerator::NextValue() {
  static const char kAlphabet[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
  Value v;
  v.reserve(static_cast<size_t>(config_.value_size));
  for (int i = 0; i < config_.value_size; ++i) {
    v.push_back(kAlphabet[rng_.Uniform(sizeof(kAlphabet) - 1)]);
  }
  return v;
}

TxnPlan TYcsbGenerator::NextTxn() {
  TxnPlan plan;
  // Partition-local draws (key_partitions > 1): pick one contiguous
  // key-range partition for the whole transaction, then fold the zipf
  // index into it. The P == 1 path consumes exactly the original RNG
  // stream (base 0, span num_keys: the fold is the identity).
  uint64_t base = 0;
  uint64_t span = config_.num_keys;
  if (config_.key_partitions > 1) {
    const uint64_t parts = static_cast<uint64_t>(config_.key_partitions);
    const uint64_t p = rng_.Uniform(parts);
    base = config_.num_keys * p / parts;
    span = config_.num_keys * (p + 1) / parts - base;
  }
  // Distinct keys: each operation accesses a different record.
  std::vector<Key> keys;
  keys.reserve(static_cast<size_t>(config_.ops_per_txn));
  while (static_cast<int>(keys.size()) < config_.ops_per_txn) {
    Key k = KeyName(base + zipf_.Next(rng_) % span);
    if (std::find(keys.begin(), keys.end(), k) == keys.end()) {
      keys.push_back(std::move(k));
    }
  }

  if (config_.read_only_fraction > 0.0 &&
      rng_.Bernoulli(config_.read_only_fraction)) {
    plan.read_only = true;
    plan.reads = std::move(keys);
    return plan;
  }

  // Half reads, half writes; with an odd op count the extra op flips
  // between read and write across transactions via the RNG. Read-write
  // transactions always carry at least one write (the theoretical model of
  // Section 3.1 requires it).
  for (Key& k : keys) {
    if (rng_.Bernoulli(config_.write_fraction)) {
      plan.writes.push_back(std::move(k));
    } else {
      plan.reads.push_back(std::move(k));
    }
  }
  if (plan.writes.empty()) {
    plan.writes.push_back(std::move(plan.reads.back()));
    plan.reads.pop_back();
  }
  return plan;
}

}  // namespace helios::workload
