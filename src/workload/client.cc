#include "workload/client.h"

#include <algorithm>
#include <utility>

namespace helios::workload {

void ClientMetrics::Merge(const ClientMetrics& other) {
  for (double s : other.commit_latency_ms.samples()) {
    commit_latency_ms.Add(s);
  }
  committed += other.committed;
  aborted += other.aborted;
  ops_committed += other.ops_committed;
  read_only_done += other.read_only_done;
  timeouts += other.timeouts;
  retries += other.retries;
  busy_rejections += other.busy_rejections;
}

ClosedLoopClient::ClosedLoopClient(uint64_t id, DcId home,
                                   ProtocolCluster* cluster,
                                   sim::Scheduler* scheduler,
                                   const WorkloadConfig& workload,
                                   uint64_t seed, sim::SimTime measure_from,
                                   sim::SimTime measure_until,
                                   sim::SimTime stop_at)
    : id_(id),
      home_(home),
      cluster_(cluster),
      scheduler_(scheduler),
      generator_(workload, seed ^ (id * 0x9E3779B97F4A7C15ULL)),
      measure_from_(measure_from),
      measure_until_(measure_until),
      stop_at_(stop_at) {}

void ClosedLoopClient::Start() {
  scheduler_->After(0, [this]() { NextTxn(); });
}

void ClosedLoopClient::SetObservability(obs::TraceRecorder* trace,
                                        obs::MetricsRegistry* metrics) {
  trace_ = trace;
  h_commit_latency_us_ =
      metrics != nullptr ? &metrics->histogram("client.commit_latency_us")
                         : nullptr;
}

void ClosedLoopClient::EnableSessionLog() {
  session_ = std::make_unique<SessionLog>();
  session_->client_id = id_;
  session_->home = home_;
}

void ClosedLoopClient::SetCommitTimeout(Duration timeout, int max_retries,
                                        Duration backoff) {
  commit_timeout_ = timeout;
  max_retries_ = max_retries;
  retry_backoff_ = backoff;
}

void ClosedLoopClient::SetBusyBackoff(const BackoffPolicy& policy,
                                      uint64_t seed) {
  busy_policy_ = policy;
  busy_rng_ = Rng(seed ^ (id_ * 0xD1B54A32D192ED03ULL));
}

void ClosedLoopClient::SetAbortBackoff(const BackoffPolicy& policy,
                                       uint64_t seed) {
  abort_policy_ = policy;
  abort_rng_ = Rng(seed ^ (id_ * 0x9E3779B97F4A7C15ULL));
}

void ClosedLoopClient::NextTxn() {
  if (scheduler_->Now() >= stop_at_) return;
  ++txns_issued_;
  auto txn = std::make_shared<InFlight>();
  txn->plan = generator_.NextTxn();
  StartAttempt(std::move(txn));
}

void ClosedLoopClient::StartAttempt(std::shared_ptr<InFlight> txn) {
  txn->id = cluster_->BeginTxn(home_);
  txn->reads.clear();
  txn->next_read = 0;
  txn->commit_requested_at = 0;
  txn->attempt_started_at = scheduler_->Now();
  if (commit_timeout_ > 0) {
    scheduler_->After(commit_timeout_, [this, txn, attempt = txn->attempt]() {
      OnTimeout(txn, attempt);
    });
  }

  if (txn->plan.read_only) {
    const bool in_window = InWindow(scheduler_->Now());
    cluster_->ClientReadOnly(
        home_, txn->plan.reads,
        [this, txn, in_window,
         attempt = txn->attempt](std::vector<Result<VersionedValue>> results) {
          if (txn->done || attempt != txn->attempt) return;
          txn->done = true;
          if (session_ != nullptr) {
            for (size_t i = 0; i < results.size(); ++i) {
              SessionEvent ev;
              ev.kind = SessionEvent::Kind::kRead;
              ev.at = scheduler_->Now();
              ev.key = i < txn->plan.reads.size() ? txn->plan.reads[i] : Key();
              ev.read_only = true;
              if (results[i].ok()) {
                ev.version_ts = results[i].value().ts;
                ev.version_writer = results[i].value().writer;
              } else {
                ev.not_found = true;
              }
              session_->events.push_back(std::move(ev));
            }
          }
          if (in_window) ++metrics_.read_only_done;
          NextTxn();
        });
    return;
  }
  ReadPhase(std::move(txn));
}

void ClosedLoopClient::ReadPhase(std::shared_ptr<InFlight> txn) {
  if (txn->next_read >= txn->plan.reads.size()) {
    CommitPhase(std::move(txn));
    return;
  }
  const Key key = txn->plan.reads[txn->next_read++];
  cluster_->TxnRead(
      home_, txn->id, key,
      [this, txn, key, attempt = txn->attempt](Result<VersionedValue> r) {
        if (txn->done || attempt != txn->attempt) return;
        if (session_ != nullptr &&
            (r.ok() || r.status().code() == StatusCode::kNotFound)) {
          SessionEvent ev;
          ev.kind = SessionEvent::Kind::kRead;
          ev.at = scheduler_->Now();
          ev.key = key;
          if (r.ok()) {
            ev.version_ts = r.value().ts;
            ev.version_writer = r.value().writer;
          } else {
            ev.not_found = true;
          }
          session_->events.push_back(std::move(ev));
        }
        if (r.ok()) {
          txn->reads.push_back({key, r.value().ts, r.value().writer});
        } else if (r.status().code() == StatusCode::kNotFound) {
          txn->reads.push_back({key, kMinTimestamp, TxnId{}});
        } else {
          // Read failed (e.g. a lock refusal): the transaction aborts
          // before ever requesting commit.
          txn->done = true;
          cluster_->TxnAbandon(home_, txn->id);
          if (InWindow(scheduler_->Now())) ++metrics_.aborted;
          NextTxn();
          return;
        }
        ReadPhase(txn);
      });
}

void ClosedLoopClient::CommitPhase(std::shared_ptr<InFlight> txn) {
  std::vector<WriteEntry> writes;
  writes.reserve(txn->plan.writes.size());
  for (const Key& key : txn->plan.writes) {
    writes.push_back({key, generator_.NextValue()});
  }
  txn->commit_requested_at = scheduler_->Now();
  if (trace_ != nullptr) {
    trace_->Instant(obs::EventKind::kClientIssue, home_, txn->id,
                    txn->commit_requested_at);
  }
  cluster_->TxnCommit(home_, txn->id, txn->reads, std::move(writes),
                      [this, txn,
                       attempt = txn->attempt](const CommitOutcome& outcome) {
                        if (txn->done || attempt != txn->attempt) return;
                        OnOutcome(txn, outcome);
                      });
}

void ClosedLoopClient::OnOutcome(const std::shared_ptr<InFlight>& txn,
                                 const CommitOutcome& outcome) {
  const sim::SimTime now = scheduler_->Now();
  if (busy_policy_.max_retries > 0 && IsRetryableRejection(outcome)) {
    ++metrics_.busy_rejections;
    // Same superseding dance as a timeout: bump the attempt so late
    // callbacks from this rejected attempt are dropped, then re-run the
    // plan after a jittered delay. The server never admitted the
    // transaction, so retrying it verbatim is safe.
    ++txn->attempt;
    if (txn->attempt <= busy_policy_.max_retries && now < stop_at_) {
      ++metrics_.retries;
      const Duration delay =
          busy_policy_.NextDelay(txn->attempt - 1, &busy_rng_);
      scheduler_->After(delay, [this, txn]() {
        if (txn->done) return;
        StartAttempt(txn);
      });
      return;
    }
    // Retry budget exhausted: fall through and account the rejection as
    // an abort.
  }
  txn->done = true;
  if (session_ != nullptr) {
    SessionEvent ev;
    ev.kind = SessionEvent::Kind::kCommit;
    ev.at = now;
    ev.txn = outcome.id;  // Server-assigned id: joins with the history.
    ev.committed = outcome.committed;
    session_->events.push_back(std::move(ev));
  }
  if (trace_ != nullptr) {
    // Use the outcome's id: some protocols assign the durable TxnId at the
    // server, and that id is what the server-side spans carry.
    trace_->Span(obs::EventKind::kClientCommit, home_, outcome.id,
                 txn->commit_requested_at, now, kInvalidDc,
                 outcome.committed ? "committed" : outcome.abort_reason);
  }
  if (InWindow(txn->commit_requested_at)) {
    if (outcome.committed) {
      ++metrics_.committed;
      metrics_.ops_committed +=
          txn->plan.reads.size() + txn->plan.writes.size();
      metrics_.commit_latency_ms.Add(
          ToMillis(now - txn->commit_requested_at));
      if (h_commit_latency_us_ != nullptr) {
        h_commit_latency_us_->Observe(
            static_cast<double>(now - txn->commit_requested_at));
      }
    } else {
      ++metrics_.aborted;
    }
  }
  if (outcome.committed) {
    consecutive_aborts_ = 0;
  } else if (abort_policy_.max_retries > 0) {
    // Conflict-abort backoff (see SetAbortBackoff): pause before the NEXT
    // transaction so synchronized conflicters desynchronize.
    const int exponent =
        std::min(consecutive_aborts_, abort_policy_.max_retries);
    ++consecutive_aborts_;
    scheduler_->After(abort_policy_.NextDelay(exponent, &abort_rng_),
                      [this]() { NextTxn(); });
    return;
  }
  NextTxn();
}

void ClosedLoopClient::OnTimeout(const std::shared_ptr<InFlight>& txn,
                                 int attempt) {
  if (txn->done || attempt != txn->attempt) return;
  const sim::SimTime now = scheduler_->Now();
  // The attempt is wedged (a crashed or recovering datacenter swallowed a
  // request) or just slow past the deadline: release its server-side
  // locks and supersede it.
  cluster_->TxnAbandon(home_, txn->id);
  ++metrics_.timeouts;
  if (trace_ != nullptr) {
    trace_->Span(obs::EventKind::kClientCommit, home_, txn->id,
                 txn->attempt_started_at, now, kInvalidDc, "timeout");
  }
  ++txn->attempt;
  if (txn->attempt > max_retries_ || now >= stop_at_) {
    txn->done = true;
    if (InWindow(txn->attempt_started_at)) ++metrics_.aborted;
    NextTxn();
    return;
  }
  ++metrics_.retries;
  // Deterministic exponential backoff (no RNG: the schedule must be
  // reproducible across runs); the shift is capped so the delay cannot
  // overflow no matter how max_retries is configured.
  const int shift = txn->attempt - 1 < 20 ? txn->attempt - 1 : 20;
  const Duration delay = retry_backoff_ * (Duration{1} << shift);
  scheduler_->After(delay, [this, txn]() {
    if (txn->done) return;
    StartAttempt(txn);
  });
}

}  // namespace helios::workload
