#include "workload/client.h"

#include <utility>

namespace helios::workload {

void ClientMetrics::Merge(const ClientMetrics& other) {
  for (double s : other.commit_latency_ms.samples()) {
    commit_latency_ms.Add(s);
  }
  committed += other.committed;
  aborted += other.aborted;
  ops_committed += other.ops_committed;
  read_only_done += other.read_only_done;
}

ClosedLoopClient::ClosedLoopClient(uint64_t id, DcId home,
                                   ProtocolCluster* cluster,
                                   sim::Scheduler* scheduler,
                                   const WorkloadConfig& workload,
                                   uint64_t seed, sim::SimTime measure_from,
                                   sim::SimTime measure_until,
                                   sim::SimTime stop_at)
    : id_(id),
      home_(home),
      cluster_(cluster),
      scheduler_(scheduler),
      generator_(workload, seed ^ (id * 0x9E3779B97F4A7C15ULL)),
      measure_from_(measure_from),
      measure_until_(measure_until),
      stop_at_(stop_at) {}

void ClosedLoopClient::Start() {
  scheduler_->After(0, [this]() { NextTxn(); });
}

void ClosedLoopClient::SetObservability(obs::TraceRecorder* trace,
                                        obs::MetricsRegistry* metrics) {
  trace_ = trace;
  h_commit_latency_us_ =
      metrics != nullptr ? &metrics->histogram("client.commit_latency_us")
                         : nullptr;
}

void ClosedLoopClient::NextTxn() {
  if (scheduler_->Now() >= stop_at_) return;
  ++txns_issued_;
  auto txn = std::make_shared<InFlight>();
  txn->plan = generator_.NextTxn();
  txn->id = cluster_->BeginTxn(home_);

  if (txn->plan.read_only) {
    const bool in_window = InWindow(scheduler_->Now());
    cluster_->ClientReadOnly(
        home_, txn->plan.reads,
        [this, in_window](std::vector<Result<VersionedValue>>) {
          if (in_window) ++metrics_.read_only_done;
          NextTxn();
        });
    return;
  }
  ReadPhase(std::move(txn));
}

void ClosedLoopClient::ReadPhase(std::shared_ptr<InFlight> txn) {
  if (txn->next_read >= txn->plan.reads.size()) {
    CommitPhase(std::move(txn));
    return;
  }
  const Key key = txn->plan.reads[txn->next_read++];
  cluster_->TxnRead(
      home_, txn->id, key,
      [this, txn, key](Result<VersionedValue> r) {
        if (r.ok()) {
          txn->reads.push_back({key, r.value().ts, r.value().writer});
        } else if (r.status().code() == StatusCode::kNotFound) {
          txn->reads.push_back({key, kMinTimestamp, TxnId{}});
        } else {
          // Read failed (e.g. a lock refusal): the transaction aborts
          // before ever requesting commit.
          cluster_->TxnAbandon(home_, txn->id);
          if (InWindow(scheduler_->Now())) ++metrics_.aborted;
          NextTxn();
          return;
        }
        ReadPhase(txn);
      });
}

void ClosedLoopClient::CommitPhase(std::shared_ptr<InFlight> txn) {
  std::vector<WriteEntry> writes;
  writes.reserve(txn->plan.writes.size());
  for (const Key& key : txn->plan.writes) {
    writes.push_back({key, generator_.NextValue()});
  }
  txn->commit_requested_at = scheduler_->Now();
  if (trace_ != nullptr) {
    trace_->Instant(obs::EventKind::kClientIssue, home_, txn->id,
                    txn->commit_requested_at);
  }
  cluster_->TxnCommit(home_, txn->id, txn->reads, std::move(writes),
                      [this, txn](const CommitOutcome& outcome) {
                        OnOutcome(txn, outcome);
                      });
}

void ClosedLoopClient::OnOutcome(const std::shared_ptr<InFlight>& txn,
                                 const CommitOutcome& outcome) {
  const sim::SimTime now = scheduler_->Now();
  if (trace_ != nullptr) {
    // Use the outcome's id: some protocols assign the durable TxnId at the
    // server, and that id is what the server-side spans carry.
    trace_->Span(obs::EventKind::kClientCommit, home_, outcome.id,
                 txn->commit_requested_at, now, kInvalidDc,
                 outcome.committed ? "committed" : outcome.abort_reason);
  }
  if (InWindow(txn->commit_requested_at)) {
    if (outcome.committed) {
      ++metrics_.committed;
      metrics_.ops_committed +=
          txn->plan.reads.size() + txn->plan.writes.size();
      metrics_.commit_latency_ms.Add(
          ToMillis(now - txn->commit_requested_at));
      if (h_commit_latency_us_ != nullptr) {
        h_commit_latency_us_->Observe(
            static_cast<double>(now - txn->commit_requested_at));
      }
    } else {
      ++metrics_.aborted;
    }
  }
  NextTxn();
}

}  // namespace helios::workload
