// Open-loop load generator for live deployments.
//
// The simulator's ClosedLoopClient matches the paper's client model (one
// outstanding transaction, issue as fast as decisions arrive) — but a
// closed loop can never overload a server, because its arrival rate is
// throttled by the server's own completions. Measuring overload behavior
// (the knee of the throughput curve, shed rates, admitted-latency bounds)
// needs an *open* loop: arrivals follow a Poisson process at a configured
// rate regardless of how many requests are still in flight, exactly like
// independent real-world clients.
//
// OpenLoopLoadGen runs against wall time on the calling thread: it draws
// exponential inter-arrival gaps, fires one blind-write transaction per
// arrival through a caller-supplied CommitFn (typically
// LiveDatacenter::Commit), and reacts to "busy"/"recovering" rejections
// with the shared jittered-exponential BackoffPolicy so retry storms stay
// bounded. It is deliberately transport-agnostic — tests drive it against
// an in-process fake to assert the retry arithmetic without sockets.

#ifndef HELIOS_WORKLOAD_OPEN_LOOP_H_
#define HELIOS_WORKLOAD_OPEN_LOOP_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <vector>

#include "api/protocol.h"
#include "common/random.h"
#include "common/stats.h"
#include "workload/backoff.h"
#include "workload/tycsb.h"

namespace helios::workload {

struct OpenLoopOptions {
  /// Target offered load, transactions per second (Poisson arrivals).
  double rate_per_sec = 500.0;
  /// How long to keep offering load.
  std::chrono::milliseconds duration{1000};
  /// After the offered-load window, how long to wait for in-flight
  /// transactions (and scheduled retries) to drain before giving up.
  std::chrono::milliseconds drain_timeout{2000};
  /// Key space / write count / value size for the blind-write txns.
  WorkloadConfig workload;
  uint64_t seed = 1;
  /// Retry schedule for busy/recovering rejections (max_retries == 0:
  /// rejections are terminal).
  BackoffPolicy backoff;
};

/// Everything one Run() observed. `committed + aborted + dropped` accounts
/// for every arrival that reached a terminal state.
struct OpenLoopStats {
  uint64_t issued = 0;      ///< Commit attempts sent (arrivals + retries).
  uint64_t arrivals = 0;    ///< Poisson arrivals offered.
  uint64_t committed = 0;
  uint64_t aborted = 0;     ///< Terminal non-retryable rejections.
  uint64_t busy_rejected = 0;  ///< busy/recovering outcomes observed.
  uint64_t retries = 0;     ///< Re-issues scheduled after a rejection.
  uint64_t dropped = 0;     ///< Gave up: retry budget exhausted.
  uint64_t undrained = 0;   ///< Still in flight when drain timed out.
  Distribution commit_latency_ms;  ///< Per committed attempt, issue→decision.
  double elapsed_s = 0.0;   ///< Offered-load window actually run.

  double goodput_per_sec() const {
    return elapsed_s <= 0 ? 0.0 : static_cast<double>(committed) / elapsed_s;
  }
};

class OpenLoopLoadGen {
 public:
  /// The commit transport: must invoke `done` exactly once, from any
  /// thread (LiveDatacenter calls it on the loop thread, or synchronously
  /// for a BUSY rejection).
  using CommitFn = std::function<void(std::vector<WriteEntry>,
                                      CommitCallback)>;

  OpenLoopLoadGen(OpenLoopOptions options, CommitFn commit);

  /// Offers load for `options.duration`, drains, and returns the stats.
  /// Blocking; call from a plain thread (never from the server's loop).
  OpenLoopStats Run();

 private:
  struct Pending {
    std::vector<WriteEntry> writes;
    int attempt = 0;  ///< Retries already consumed.
  };

  void Issue(std::vector<WriteEntry> writes, int attempt);

  const OpenLoopOptions options_;
  const CommitFn commit_;
  TYcsbGenerator generator_;
  Rng rng_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Pending> retry_ready_;  ///< Rejections awaiting re-issue.
  uint64_t inflight_ = 0;
  OpenLoopStats stats_;
};

}  // namespace helios::workload

#endif  // HELIOS_WORKLOAD_OPEN_LOOP_H_
