// Client-side reaction to server load shedding.
//
// A datacenter under admission control rejects commit requests immediately
// with the "busy" outcome (and a restarting one with "recovering") instead
// of queueing them. Those rejections are retryable by construction — the
// transaction never entered the commit path — but naive clients retrying
// in lockstep just re-deliver the same spike. BackoffPolicy is the shared
// jittered-exponential schedule the workload clients use to spread
// retries: doubling per attempt (capped) with a uniform [0.5, 1.0) jitter
// factor so synchronized rejections desynchronize within a round or two.

#ifndef HELIOS_WORKLOAD_BACKOFF_H_
#define HELIOS_WORKLOAD_BACKOFF_H_

#include "api/protocol.h"
#include "common/random.h"
#include "common/types.h"

namespace helios::workload {

/// Abort reason a load-shedding datacenter returns without admitting the
/// transaction (transport::LiveDatacenter's admission controller).
inline constexpr const char* kBusyAbortReason = "busy";
/// Abort reason a node returns while replaying its WAL / catching up.
inline constexpr const char* kRecoveringAbortReason = "recovering";

/// True for rejections that never entered the commit path and are safe to
/// retry verbatim after backing off.
inline bool IsRetryableRejection(const CommitOutcome& outcome) {
  return !outcome.committed && (outcome.abort_reason == kBusyAbortReason ||
                                outcome.abort_reason == kRecoveringAbortReason);
}

/// Jittered exponential backoff: delay for retry attempt `attempt`
/// (0-based) is `min(base * 2^attempt, cap)` scaled by a uniform factor in
/// [0.5, 1.0). `max_retries == 0` disables retrying entirely.
struct BackoffPolicy {
  Duration base = Millis(2);
  Duration cap = Millis(200);
  int max_retries = 0;

  Duration NextDelay(int attempt, Rng* rng) const {
    const int shift = attempt < 0 ? 0 : (attempt < 20 ? attempt : 20);
    Duration delay = base * (Duration{1} << shift);
    if (delay > cap || delay <= 0) delay = cap;
    delay = static_cast<Duration>(static_cast<double>(delay) *
                                  (0.5 + 0.5 * rng->NextDouble()));
    return delay > 0 ? delay : 1;
  }
};

}  // namespace helios::workload

#endif  // HELIOS_WORKLOAD_BACKOFF_H_
