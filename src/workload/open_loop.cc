#include "workload/open_loop.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace helios::workload {

namespace {

using Clock = std::chrono::steady_clock;

double ToMs(Clock::duration d) {
  return std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
             d)
      .count();
}

}  // namespace

OpenLoopLoadGen::OpenLoopLoadGen(OpenLoopOptions options, CommitFn commit)
    : options_(std::move(options)),
      commit_(std::move(commit)),
      generator_(options_.workload, options_.seed),
      rng_(options_.seed ^ 0xA5A5A5A5A5A5A5A5ULL) {}

void OpenLoopLoadGen::Issue(std::vector<WriteEntry> writes, int attempt) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.issued;
    ++inflight_;
  }
  const Clock::time_point issued_at = Clock::now();
  // Keep a copy of the write set: a busy rejection re-offers the same
  // transaction after backing off.
  std::vector<WriteEntry> retained = writes;
  commit_(std::move(writes),
          [this, issued_at, attempt,
           retained = std::move(retained)](const CommitOutcome& o) mutable {
            std::lock_guard<std::mutex> lock(mu_);
            --inflight_;
            if (o.committed) {
              ++stats_.committed;
              stats_.commit_latency_ms.Add(ToMs(Clock::now() - issued_at));
            } else if (IsRetryableRejection(o)) {
              ++stats_.busy_rejected;
              if (attempt < options_.backoff.max_retries) {
                ++stats_.retries;
                retry_ready_.push_back(
                    Pending{std::move(retained), attempt + 1});
              } else {
                ++stats_.dropped;
              }
            } else {
              ++stats_.aborted;
            }
            cv_.notify_all();
          });
}

OpenLoopStats OpenLoopLoadGen::Run() {
  const Clock::time_point start = Clock::now();
  const Clock::time_point load_end = start + options_.duration;
  const double rate =
      options_.rate_per_sec > 0 ? options_.rate_per_sec : 1.0;

  // Draws the next Poisson gap (exponential inter-arrival). Only the loop
  // thread touches rng_ / generator_.
  const auto next_gap = [this, rate]() {
    const double seconds = -std::log(1.0 - rng_.NextDouble()) / rate;
    return std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(seconds));
  };
  const auto make_writes = [this]() {
    TxnPlan plan = generator_.NextTxn();
    std::vector<WriteEntry> writes;
    // Blind writes over the whole plan: the open loop measures admission
    // and commit behavior, not read latency, and blind writes keep every
    // arrival a single request.
    writes.reserve(plan.reads.size() + plan.writes.size());
    for (const Key& key : plan.reads) {
      writes.push_back({key, generator_.NextValue()});
    }
    for (const Key& key : plan.writes) {
      writes.push_back({key, generator_.NextValue()});
    }
    return writes;
  };

  // Retries scheduled for a future due time, min-first.
  struct Scheduled {
    Clock::time_point due;
    Pending pending;
  };
  std::vector<Scheduled> scheduled;
  const auto due_after = [](const Scheduled& a, const Scheduled& b) {
    return a.due > b.due;
  };

  Clock::time_point next_arrival = start + next_gap();
  const Clock::time_point drain_deadline =
      load_end + options_.drain_timeout;

  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    const Clock::time_point now = Clock::now();
    const bool offering = now < load_end;

    // Promote freshly rejected transactions into timed retries (the
    // backoff clock starts when the loop learns of the rejection).
    while (!retry_ready_.empty()) {
      Pending p = std::move(retry_ready_.front());
      retry_ready_.pop_front();
      const Duration delay_us =
          options_.backoff.NextDelay(p.attempt - 1, &rng_);
      scheduled.push_back(
          Scheduled{now + std::chrono::microseconds(delay_us), std::move(p)});
      std::push_heap(scheduled.begin(), scheduled.end(), due_after);
    }

    if (offering && next_arrival <= now) {
      ++stats_.arrivals;
      std::vector<WriteEntry> writes = make_writes();
      next_arrival += next_gap();
      lock.unlock();
      Issue(std::move(writes), /*attempt=*/0);
      lock.lock();
      continue;
    }
    if (!scheduled.empty() && scheduled.front().due <= now) {
      std::pop_heap(scheduled.begin(), scheduled.end(), due_after);
      Pending p = std::move(scheduled.back().pending);
      scheduled.pop_back();
      lock.unlock();
      Issue(std::move(p.writes), p.attempt);
      lock.lock();
      continue;
    }

    if (!offering && inflight_ == 0 && scheduled.empty() &&
        retry_ready_.empty()) {
      break;  // Fully drained.
    }
    if (!offering && now >= drain_deadline) {
      stats_.undrained = inflight_ + scheduled.size() + retry_ready_.size();
      break;
    }

    Clock::time_point wake = offering ? next_arrival : drain_deadline;
    if (!scheduled.empty() && scheduled.front().due < wake) {
      wake = scheduled.front().due;
    }
    if (offering && load_end < wake) wake = load_end;
    cv_.wait_until(lock, wake);
  }
  stats_.elapsed_s =
      std::chrono::duration<double>(std::min(Clock::now(), load_end) - start)
          .count();
  OpenLoopStats out = stats_;
  return out;
}

}  // namespace helios::workload
