// Closed-loop simulated client: the paper's client model ("Each client can
// have one outstanding transaction at a time. Clients issue transactions as
// fast as they can.").
//
// The client performs the reads of its transaction plan sequentially
// through the protocol's transaction-scoped API (so lock-based baselines
// acquire read locks), buffers writes, then issues the commit request. It
// records the client-observed commit latency — exactly the metric the
// paper reports — into its metrics sink, restricted to the measurement
// window.

#ifndef HELIOS_WORKLOAD_CLIENT_H_
#define HELIOS_WORKLOAD_CLIENT_H_

#include <cstdint>
#include <memory>

#include "api/protocol.h"
#include "common/stats.h"
#include "common/types.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/scheduler.h"
#include "workload/backoff.h"
#include "workload/tycsb.h"

namespace helios::workload {

/// Per-client (aggregated per-datacenter by the harness) measurements.
struct ClientMetrics {
  Distribution commit_latency_ms;  ///< Committed transactions only.
  uint64_t committed = 0;
  uint64_t aborted = 0;
  uint64_t ops_committed = 0;
  uint64_t read_only_done = 0;
  uint64_t timeouts = 0;  ///< Attempts abandoned by the commit timeout.
  uint64_t retries = 0;   ///< Attempts re-issued after a timeout or BUSY.
  uint64_t busy_rejections = 0;  ///< busy/recovering outcomes observed.

  void Merge(const ClientMetrics& other);
  double abort_rate() const {
    const uint64_t total = committed + aborted;
    return total == 0 ? 0.0 : static_cast<double>(aborted) / total;
  }
};

/// One client-observed event, in session (wall-clock) order: either a read
/// that completed (with the version it observed) or a commit decision that
/// arrived. The invariant oracles in src/check replay these against the
/// recorded history to verify read-your-writes and monotonic reads.
struct SessionEvent {
  enum class Kind { kRead, kCommit };
  Kind kind = Kind::kRead;
  sim::SimTime at = 0;

  // kRead: the key and the version the client observed. `not_found` marks
  // a read that returned no version (version fields are then meaningless);
  // `read_only` marks reads served by a read-only snapshot transaction,
  // which may legitimately return older versions.
  Key key;
  Timestamp version_ts = kMinTimestamp;
  TxnId version_writer;
  bool not_found = false;
  bool read_only = false;

  // kCommit: the server-assigned transaction id and the decision.
  TxnId txn;
  bool committed = false;
};

/// The full event sequence one client observed.
struct SessionLog {
  uint64_t client_id = 0;
  DcId home = kInvalidDc;
  std::vector<SessionEvent> events;
};

class ClosedLoopClient {
 public:
  /// All pointers must outlive the client. Measurements are recorded only
  /// for transactions whose commit request falls in
  /// [measure_from, measure_until); the client keeps issuing transactions
  /// until `stop_at`.
  ClosedLoopClient(uint64_t id, DcId home, ProtocolCluster* cluster,
                   sim::Scheduler* scheduler, const WorkloadConfig& workload,
                   uint64_t seed, sim::SimTime measure_from,
                   sim::SimTime measure_until, sim::SimTime stop_at);

  /// Begins the closed loop (schedules the first transaction now).
  void Start();

  /// Optional observability (src/obs): records a client.issue instant per
  /// commit request and a client.commit span per decision (the span's txn
  /// id is the server-assigned one from the outcome, so it joins with the
  /// server-side spans), plus a client-observed commit-latency histogram.
  void SetObservability(obs::TraceRecorder* trace,
                        obs::MetricsRegistry* metrics);

  /// Arms a per-attempt timeout spanning the read phase and the commit
  /// wait. On expiry the attempt is abandoned (releasing server-side
  /// locks) and the same plan retries with fresh reads after
  /// `backoff * 2^attempt`, up to `max_retries` retries; after that the
  /// transaction counts as aborted and the loop moves on. A crashed
  /// datacenter drops requests outright, so without this a client homed
  /// there wedges forever. `timeout == 0` (the default) schedules no
  /// timer at all — crash-free runs stay bit-identical.
  void SetCommitTimeout(Duration timeout, int max_retries, Duration backoff);

  /// Arms jittered exponential backoff for load-shed outcomes ("busy" from
  /// an admission controller, "recovering" from a restarting node): the
  /// same plan retries after `policy.NextDelay` instead of counting as
  /// aborted, up to `policy.max_retries` retries. Off by default — the
  /// jitter draws from an RNG, and crash-free simulation runs must stay
  /// bit-identical; live-mode harnesses (heliosd, the overload tests) turn
  /// it on. The RNG is seeded deterministically from `seed`, so simulated
  /// runs that do enable it remain reproducible.
  void SetBusyBackoff(const BackoffPolicy& policy, uint64_t seed);

  /// Arms jittered backoff between transactions after a *conflict* abort
  /// (the next, fresh transaction is delayed — nothing is retried). Sharded
  /// runs need this: cross-shard parallel commit keeps a transaction
  /// vulnerable to conflicting remote records across every participant
  /// shard for the whole staging window, and synchronized closed-loop
  /// clients re-colliding at full rate can abort each other symmetrically
  /// forever (no interleaving commits). The delay grows with consecutive
  /// aborts (`policy.max_retries` caps the exponent) and resets on commit.
  /// Off by default — unsharded runs stay bit-identical.
  void SetAbortBackoff(const BackoffPolicy& policy, uint64_t seed);

  /// Starts recording every observed read and commit decision into a
  /// SessionLog (for the src/check oracles). Off by default: recording
  /// allocates per event, so measurement runs leave it disabled.
  void EnableSessionLog();

  /// The recorded session, or null when EnableSessionLog was never called.
  const SessionLog* session_log() const { return session_.get(); }

  const ClientMetrics& metrics() const { return metrics_; }
  DcId home() const { return home_; }
  uint64_t txns_issued() const { return txns_issued_; }

 private:
  struct InFlight {
    TxnId id;
    TxnPlan plan;
    std::vector<ReadEntry> reads;
    size_t next_read = 0;
    sim::SimTime commit_requested_at = 0;
    sim::SimTime attempt_started_at = 0;
    /// Attempt number; late callbacks from a timed-out attempt carry a
    /// stale copy and are dropped.
    int attempt = 0;
    bool done = false;  ///< Terminal: an outcome arrived or retries ran out.
  };

  void NextTxn();
  void StartAttempt(std::shared_ptr<InFlight> txn);
  void ReadPhase(std::shared_ptr<InFlight> txn);
  void CommitPhase(std::shared_ptr<InFlight> txn);
  void OnOutcome(const std::shared_ptr<InFlight>& txn,
                 const CommitOutcome& outcome);
  void OnTimeout(const std::shared_ptr<InFlight>& txn, int attempt);
  bool InWindow(sim::SimTime t) const {
    return t >= measure_from_ && t < measure_until_;
  }

  uint64_t id_;
  DcId home_;
  ProtocolCluster* cluster_;
  sim::Scheduler* scheduler_;
  TYcsbGenerator generator_;
  sim::SimTime measure_from_;
  sim::SimTime measure_until_;
  sim::SimTime stop_at_;
  ClientMetrics metrics_;
  Duration commit_timeout_ = 0;  ///< 0: no timeout, never retries.
  int max_retries_ = 0;
  Duration retry_backoff_ = Millis(50);
  BackoffPolicy busy_policy_;  ///< max_retries == 0: busy outcomes abort.
  Rng busy_rng_;               ///< Drawn only on busy retries.
  BackoffPolicy abort_policy_;  ///< max_retries == 0: no abort backoff.
  Rng abort_rng_;               ///< Drawn only on conflict-abort backoff.
  int consecutive_aborts_ = 0;
  uint64_t txns_issued_ = 0;
  std::unique_ptr<SessionLog> session_;
  obs::TraceRecorder* trace_ = nullptr;
  obs::Histogram* h_commit_latency_us_ = nullptr;
};

}  // namespace helios::workload

#endif  // HELIOS_WORKLOAD_CLIENT_H_
