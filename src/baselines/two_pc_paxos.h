// 2PC/Paxos: the Spanner-inspired baseline of Section 5.2.
//
// One datacenter (Virginia in the paper's setup) is the 2PC coordinator:
//   - Every read is routed to the coordinator, which takes a shared lock in
//     its lock table and returns the value. Locks are held from the first
//     read until after commit — the long lock spans are what drive this
//     protocol's high abort rate in Figure 3(c).
//   - Commit is routed to the coordinator, which acquires write locks,
//     validates the read locks, then replicates the transaction through
//     leader-lease Paxos to a majority of datacenters before answering.
//   - Deadlocks are prevented with wound-wait (the paper aborts deadlocked
//     transactions immediately).
//
// A client's commit latency is RTT(client, coordinator) plus the Paxos
// round trip from the coordinator to its closest majority — which is why
// clients at or near the coordinator fare so much better than the rest
// (Figure 3(a)). All load concentrates on the coordinator's single server,
// which is what thrashes past ~195 clients in Figure 4.

#ifndef HELIOS_BASELINES_TWO_PC_PAXOS_H_
#define HELIOS_BASELINES_TWO_PC_PAXOS_H_

#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "api/protocol.h"
#include "core/helios_config.h"
#include "core/history.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "paxos/paxos.h"
#include "sim/clock.h"
#include "sim/network.h"
#include "sim/scheduler.h"
#include "sim/service_queue.h"
#include "store/lock_table.h"
#include "store/mv_store.h"
#include "wal/wal_sink.h"

namespace helios::baselines {

struct TwoPcPaxosConfig {
  int num_datacenters = 0;
  DcId coordinator = 0;
  Duration client_link_one_way = Micros(500);
  Duration decision_timeout = Seconds(10);
  core::ServiceModel service;
  std::vector<Duration> clock_offsets;
};

class TwoPcPaxosCluster : public ProtocolCluster {
 public:
  TwoPcPaxosCluster(sim::Scheduler* scheduler, sim::Network* network,
                    TwoPcPaxosConfig config);

  void Start() override {}
  void LoadInitialAll(const Key& key, const Value& value) override;
  void ClientRead(DcId client_dc, const Key& key, ReadCallback done) override;
  void ClientCommit(DcId client_dc, std::vector<ReadEntry> reads,
                    std::vector<WriteEntry> writes,
                    CommitCallback done) override;
  void ClientReadOnly(DcId client_dc, std::vector<Key> keys,
                      ReadOnlyCallback done) override;

  TxnId BeginTxn(DcId client_dc) override;
  void TxnRead(DcId client_dc, const TxnId& txn, const Key& key,
               ReadCallback done) override;
  void TxnCommit(DcId client_dc, const TxnId& txn,
                 std::vector<ReadEntry> reads, std::vector<WriteEntry> writes,
                 CommitCallback done) override;
  void TxnAbandon(DcId client_dc, const TxnId& txn) override;

  std::string name() const override { return "2PC/Paxos"; }
  int num_datacenters() const override { return config_.num_datacenters; }

  /// Observability (src/obs): commit/abort decision events and a total-
  /// latency histogram per outcome, measured client-side around the full
  /// coordinator round (the coordinator is remote for most clients).
  void SetObservability(obs::TraceRecorder* trace,
                        obs::MetricsRegistry* metrics) override;
  void ExportMetrics(obs::MetricsRegistry* registry) const override;

  /// Routes all coordinator/Paxos traffic through `mesh`; a single lost
  /// Paxos reply otherwise wedges a slot forever.
  void SetReliableMesh(sim::ReliableMesh* mesh) override { mesh_ = mesh; }

  /// Node-process half of an outage. `down` crashes the datacenter with
  /// amnesia: the store is cleared and the service queue replaced; at the
  /// coordinator the lock table, wound bookkeeping and replicator go too.
  /// Paxos acceptor state is NOT reset — an acceptor's promises are
  /// durable by the protocol's own contract, exactly like this WAL.
  /// `!down` replays the initial loads plus the local journal of applied
  /// transactions, then pulls the decisions missed during the outage from
  /// the first live peer.
  void SetDatacenterDown(DcId dc, bool down) override;

  const RecoveryStats& recovery_stats() const { return recovery_stats_; }
  bool datacenter_down(DcId dc) const override {
    return dc_state_[static_cast<size_t>(dc)].down;
  }

  // Checker observation points (src/check).
  const wal::MemoryWal* wal_journal(DcId dc) const override {
    return wals_[static_cast<size_t>(dc)].get();
  }
  void SnapshotStore(
      DcId dc, const std::function<void(const Key&, const VersionedValue&)>&
                   fn) const override {
    store(dc).ForEachLatest(fn);
  }
  RecoveryStats recovery_snapshot() const override { return recovery_stats_; }

  const MvStore& store(DcId dc) const { return stores_[dc]; }
  core::HistoryRecorder& history() { return history_; }
  uint64_t commits() const { return commits_; }
  uint64_t aborts() const { return aborts_; }
  uint64_t wounds() const { return lock_table_->wounds(); }
  DcId coordinator() const { return config_.coordinator; }

 private:
  /// Client-to-coordinator routing (client link when co-located).
  void ToCoordinator(DcId home, std::function<void()> fn);
  void FromCoordinator(DcId home, std::function<void()> fn);
  /// One WAN hop, through the reliable mesh when installed.
  void WanSend(DcId from, DcId to, std::function<void()> fn);

  /// Async sequential write-lock acquisition, then validation, then Paxos.
  void CoordinatorCommit(DcId home, const TxnId& txn, TxnBodyPtr body,
                         CommitCallback done);
  void AcquireWriteLocks(const TxnId& txn, Timestamp start_ts, TxnBodyPtr body,
                         size_t index, std::function<void(bool)> then);
  bool ValidateReads(const TxnId& txn, Timestamp start_ts,
                     const TxnBody& body);
  void FinishAtCoordinator(DcId home, const TxnId& txn, TxnBodyPtr body,
                           bool commit, CommitCallback done);

  Timestamp StartTs(DcId home, const TxnId& txn);
  bool Doomed(const TxnId& txn) const { return doomed_.count(txn) > 0; }

  /// Builds the coordinator-side Paxos replicator. Every send closure
  /// snapshots the coordinator's generation so replies raised against a
  /// pre-crash replicator are dropped instead of reaching its successor.
  std::unique_ptr<paxos::Replicator> MakeReplicator();

  /// Persists one applied transaction into `dc`'s WAL journal. Returns
  /// false (journaling nothing) when `txn` is already journaled there, so
  /// learner delivery and catch-up of the same decision stay idempotent.
  bool JournalApply(DcId dc, const TxnId& txn, TxnBodyPtr body,
                    Timestamp version_ts);
  /// Ends `dc`'s catch-up phase and accounts the recovery.
  void FinishRecovery(DcId dc, uint64_t records_replayed,
                      uint64_t catchup_records, sim::SimTime started);

  /// Records the trace events and histogram sample for a decision
  /// delivered at the client at `now` for a request issued at `t0`.
  void RecordDecision(DcId dc, const TxnId& txn, bool commit,
                      sim::SimTime t0, const std::string& reason);

  /// Crash/recovery state per datacenter. `gen` increments on every
  /// amnesia restart so closures queued against the pre-crash volatile
  /// state (store, service queue, lock table, replicator) become no-ops.
  struct DcState {
    bool down = false;
    bool recovering = false;
    uint64_t gen = 0;
  };

  sim::Scheduler* scheduler_;
  sim::Network* network_;
  sim::ReliableMesh* mesh_ = nullptr;
  TwoPcPaxosConfig config_;
  std::vector<std::unique_ptr<sim::Clock>> clocks_;
  std::vector<MvStore> stores_;
  std::vector<std::unique_ptr<sim::ServiceQueue>> services_;
  /// Per-datacenter durable journal of applied transactions, its TxnId
  /// mirror (for exactly-once application), and crash state.
  std::vector<std::unique_ptr<wal::MemoryWal>> wals_;
  std::vector<std::unordered_set<TxnId, TxnIdHash>> journaled_;
  std::vector<DcState> dc_state_;
  std::vector<std::pair<Key, Value>> initial_loads_;
  RecoveryStats recovery_stats_;
  std::unique_ptr<LockTable> lock_table_;        ///< At the coordinator.
  std::vector<paxos::Acceptor> acceptors_;       ///< One per datacenter.
  std::unique_ptr<paxos::Replicator> replicator_;  ///< At the coordinator.
  std::unordered_map<TxnId, Timestamp, TxnIdHash> txn_start_ts_;
  std::unordered_set<TxnId, TxnIdHash> doomed_;  ///< Wounded transactions.
  core::HistoryRecorder history_;
  obs::TraceRecorder* trace_ = nullptr;
  obs::Histogram* h_commit_total_us_ = nullptr;
  obs::Histogram* h_abort_total_us_ = nullptr;
  uint64_t commits_ = 0;
  uint64_t aborts_ = 0;
  uint64_t next_load_seq_ = 1;
};

}  // namespace helios::baselines

#endif  // HELIOS_BASELINES_TWO_PC_PAXOS_H_
