#include "baselines/two_pc_paxos.h"

#include <algorithm>
#include <cassert>

#include "sim/reliable.h"

namespace helios::baselines {

TwoPcPaxosCluster::TwoPcPaxosCluster(sim::Scheduler* scheduler,
                                     sim::Network* network,
                                     TwoPcPaxosConfig config)
    : scheduler_(scheduler),
      network_(network),
      config_(std::move(config)),
      stores_(static_cast<size_t>(config_.num_datacenters)) {
  assert(network_->size() == config_.num_datacenters);
  assert(config_.coordinator >= 0 &&
         config_.coordinator < config_.num_datacenters);
  for (DcId dc = 0; dc < config_.num_datacenters; ++dc) {
    const Duration offset =
        config_.clock_offsets.empty()
            ? 0
            : config_.clock_offsets[static_cast<size_t>(dc)];
    clocks_.push_back(std::make_unique<sim::Clock>(scheduler_, offset));
    services_.push_back(std::make_unique<sim::ServiceQueue>(scheduler_));
    wals_.push_back(std::make_unique<wal::MemoryWal>());
  }
  journaled_.resize(static_cast<size_t>(config_.num_datacenters));
  dc_state_.resize(static_cast<size_t>(config_.num_datacenters));
  acceptors_.resize(static_cast<size_t>(config_.num_datacenters));
  lock_table_ = std::make_unique<LockTable>(LockPolicy::kWoundWait);
  lock_table_->set_wound_handler([this](TxnId victim) {
    // Wound-wait killed the transaction; its pending lock callbacks were
    // cancelled with kAborted by the table. Remember it so later requests
    // from the same client abort fast.
    doomed_.insert(victim);
  });
  replicator_ = MakeReplicator();
}

std::unique_ptr<paxos::Replicator> TwoPcPaxosCluster::MakeReplicator() {
  const DcId coord = config_.coordinator;
  return std::make_unique<paxos::Replicator>(
      coord, config_.num_datacenters, /*lease=*/true, &acceptors_[coord],
      /*send_prepare=*/
      [this, coord](DcId peer, const paxos::PrepareRequest& req) {
        const uint64_t gen = dc_state_[static_cast<size_t>(coord)].gen;
        WanSend(coord, peer, [this, coord, peer, gen, req]() {
          if (dc_state_[static_cast<size_t>(peer)].down) return;
          services_[static_cast<size_t>(peer)]->Submit(
              config_.service.log_message, [this, coord, peer, gen, req]() {
                if (dc_state_[static_cast<size_t>(peer)].down) return;
                // Acceptor state is durable: a recovering datacenter may
                // vote immediately.
                const paxos::PrepareReply reply =
                    acceptors_[static_cast<size_t>(peer)].OnPrepare(req);
                WanSend(peer, coord, [this, coord, gen, peer, reply]() {
                  const DcState& cs = dc_state_[static_cast<size_t>(coord)];
                  if (cs.down || gen != cs.gen) return;
                  replicator_->OnPrepareReply(peer, reply);
                });
              });
        });
      },
      /*send_accept=*/
      [this, coord](DcId peer, const paxos::AcceptRequest& req) {
        const uint64_t gen = dc_state_[static_cast<size_t>(coord)].gen;
        WanSend(coord, peer, [this, coord, peer, gen, req]() {
          if (dc_state_[static_cast<size_t>(peer)].down) return;
          services_[static_cast<size_t>(peer)]->Submit(
              config_.service.log_message, [this, coord, peer, gen, req]() {
                if (dc_state_[static_cast<size_t>(peer)].down) return;
                const paxos::AcceptReply reply =
                    acceptors_[static_cast<size_t>(peer)].OnAccept(req);
                WanSend(peer, coord, [this, coord, gen, peer, reply]() {
                  const DcState& cs = dc_state_[static_cast<size_t>(coord)];
                  if (cs.down || gen != cs.gen) return;
                  // Processing the vote occupies the coordinator.
                  services_[static_cast<size_t>(coord)]->Charge(
                      config_.service.log_message);
                  replicator_->OnAcceptReply(peer, reply);
                });
              });
        });
      });
}

void TwoPcPaxosCluster::WanSend(DcId from, DcId to,
                                std::function<void()> fn) {
  if (mesh_ != nullptr) {
    mesh_->Send(from, to, std::move(fn));
  } else {
    network_->Send(from, to, std::move(fn));
  }
}

void TwoPcPaxosCluster::ToCoordinator(DcId home, std::function<void()> fn) {
  if (home == config_.coordinator) {
    scheduler_->After(config_.client_link_one_way, std::move(fn));
  } else {
    scheduler_->After(config_.client_link_one_way,
                      [this, home, fn = std::move(fn)]() {
                        WanSend(home, config_.coordinator, fn);
                      });
  }
}

void TwoPcPaxosCluster::FromCoordinator(DcId home, std::function<void()> fn) {
  if (home == config_.coordinator) {
    scheduler_->After(config_.client_link_one_way, std::move(fn));
  } else {
    WanSend(config_.coordinator, home, [this, fn = std::move(fn)]() {
      scheduler_->After(config_.client_link_one_way, fn);
    });
  }
}

TxnId TwoPcPaxosCluster::BeginTxn(DcId client_dc) {
  const TxnId id = ProtocolCluster::BeginTxn(client_dc);
  txn_start_ts_[id] = clocks_[static_cast<size_t>(client_dc)]->NowUnique();
  return id;
}

Timestamp TwoPcPaxosCluster::StartTs(DcId home, const TxnId& txn) {
  auto it = txn_start_ts_.find(txn);
  if (it != txn_start_ts_.end()) return it->second;
  return clocks_[static_cast<size_t>(home)]->Now();
}

void TwoPcPaxosCluster::TxnRead(DcId client_dc, const TxnId& txn,
                                const Key& key, ReadCallback done) {
  const Timestamp start_ts = StartTs(client_dc, txn);
  ToCoordinator(client_dc, [this, client_dc, txn, start_ts, key,
                            done = std::move(done)]() {
    const DcState& cs = dc_state_[static_cast<size_t>(config_.coordinator)];
    if (cs.down) return;  // A crashed coordinator drops everything.
    sim::ServiceQueue& svc =
        *services_[static_cast<size_t>(config_.coordinator)];
    svc.Submit(config_.service.read + config_.service.lock_op,
               [this, client_dc, txn, start_ts, key, gen = cs.gen, done]() {
      const DcState& cs = dc_state_[static_cast<size_t>(config_.coordinator)];
      if (cs.down || gen != cs.gen) return;  // Crashed while queued.
      if (cs.recovering) {
        // The store is mid-catch-up; locking against it could validate
        // reads on stale versions.
        FromCoordinator(client_dc, [done]() {
          done(Status::Unavailable("recovering"));
        });
        return;
      }
      if (Doomed(txn)) {
        FromCoordinator(client_dc, [done]() {
          done(Status::Aborted("transaction wounded"));
        });
        return;
      }
      // Wound-wait: this may grant now, later, or cancel with kAborted.
      lock_table_->Acquire(
          key, LockMode::kShared, txn, start_ts,
          [this, client_dc, key, done](Status s) {
            if (!s.ok()) {
              FromCoordinator(client_dc, [done, s]() { done(s); });
              return;
            }
            auto r = stores_[static_cast<size_t>(config_.coordinator)].Read(key);
            FromCoordinator(client_dc,
                            [done, r = std::move(r)]() { done(r); });
          });
    });
  });
}

void TwoPcPaxosCluster::AcquireWriteLocks(const TxnId& txn, Timestamp start_ts,
                                          TxnBodyPtr body, size_t index,
                                          std::function<void(bool)> then) {
  if (index >= body->write_set.size()) {
    then(true);
    return;
  }
  lock_table_->Acquire(
      body->write_set[index].key, LockMode::kExclusive, txn, start_ts,
      [this, txn, start_ts, body, index, then = std::move(then)](Status s) {
        if (!s.ok()) {
          then(false);
          return;
        }
        AcquireWriteLocks(txn, start_ts, body, index + 1, then);
      });
}

bool TwoPcPaxosCluster::ValidateReads(const TxnId& txn, Timestamp start_ts,
                                      const TxnBody& body) {
  const MvStore& store = stores_[static_cast<size_t>(config_.coordinator)];
  for (const ReadEntry& r : body.read_set) {
    if (lock_table_->Holds(r.key, txn, LockMode::kShared)) continue;
    // The read was not performed through TxnRead (or its lock was lost):
    // fall back to version validation under a non-blocking shared lock.
    const bool got =
        lock_table_->TryAcquire(r.key, LockMode::kShared, txn, start_ts);
    auto current = store.Read(r.key);
    const bool matches = current.ok()
                             ? current.value().writer == r.version_writer
                             : !r.version_writer.valid();
    if (!got || !matches) return false;
  }
  return true;
}

void TwoPcPaxosCluster::FinishAtCoordinator(DcId home, const TxnId& txn,
                                            TxnBodyPtr body, bool commit,
                                            CommitCallback done) {
  const DcId coord = config_.coordinator;
  if (dc_state_[static_cast<size_t>(coord)].down) return;
  if (commit) {
    const Timestamp version_ts =
        clocks_[static_cast<size_t>(coord)]->NowUnique();
    services_[static_cast<size_t>(coord)]->Charge(
        config_.service.write_apply *
        static_cast<Duration>(body->write_set.size()));
    // Journal-then-apply; the dedup makes learner delivery, catch-up and
    // replay of the same transaction idempotent.
    if (JournalApply(coord, txn, body, version_ts)) {
      stores_[static_cast<size_t>(coord)].ApplyTxn(*body, version_ts);
    }
    ++commits_;
    history_.RecordCommit(core::CommittedTxn{txn, home, version_ts, body});
    // Learners: ship the decided transaction to every replica. Building
    // and sending each message occupies the coordinator.
    for (DcId dc = 0; dc < config_.num_datacenters; ++dc) {
      if (dc == coord) continue;
      const uint64_t gen = dc_state_[static_cast<size_t>(dc)].gen;
      services_[static_cast<size_t>(coord)]->Charge(
          config_.service.log_message);
      WanSend(coord, dc, [this, dc, gen, txn, body, version_ts]() {
        if (dc_state_[static_cast<size_t>(dc)].down) return;
        services_[static_cast<size_t>(dc)]->Submit(
            config_.service.write_apply *
                static_cast<Duration>(body->write_set.size()),
            [this, dc, gen, txn, body, version_ts]() {
              const DcState& st = dc_state_[static_cast<size_t>(dc)];
              if (st.down || gen != st.gen) return;
              if (JournalApply(dc, txn, body, version_ts)) {
                stores_[static_cast<size_t>(dc)].ApplyTxn(*body, version_ts);
              }
            });
      });
    }
  } else {
    ++aborts_;
  }
  lock_table_->ReleaseAll(txn);
  doomed_.erase(txn);
  txn_start_ts_.erase(txn);
  FromCoordinator(home, [done, txn, commit]() {
    done(CommitOutcome{txn, commit, commit ? "" : "2pc:abort"});
  });
}

void TwoPcPaxosCluster::CoordinatorCommit(DcId home, const TxnId& txn,
                                          TxnBodyPtr body,
                                          CommitCallback done) {
  if (Doomed(txn)) {
    lock_table_->ReleaseAll(txn);
    doomed_.erase(txn);
    FinishAtCoordinator(home, txn, body, false, done);
    return;
  }
  const Timestamp start_ts = StartTs(home, txn);
  AcquireWriteLocks(
      txn, start_ts, body, 0,
      [this, home, txn, start_ts, body, done](bool locked) {
        if (!locked || Doomed(txn) || !ValidateReads(txn, start_ts, *body)) {
          FinishAtCoordinator(home, txn, body, false, done);
          return;
        }
        // Locks held and reads valid: replicate through Paxos to a
        // majority before acknowledging the commit (Spanner-style
        // durability of the commit record).
        auto decided = std::make_shared<bool>(false);
        const uint64_t gen =
            dc_state_[static_cast<size_t>(config_.coordinator)].gen;
        replicator_->Replicate(
            txn.ToString(),
            [this, home, txn, body, done, decided, gen](
                paxos::SlotId, const paxos::PaxosValue&) {
              if (*decided) return;
              *decided = true;
              services_[static_cast<size_t>(config_.coordinator)]->Submit(
                  config_.service.commit_request,
                  [this, home, txn, body, done, gen]() {
                    const DcState& cs =
                        dc_state_[static_cast<size_t>(config_.coordinator)];
                    if (cs.down || gen != cs.gen) return;
                    // The transaction may have been wounded (and its locks
                    // released) while the Paxos round was in flight; it
                    // must abort in that case or a conflicting transaction
                    // could slip through its released locks.
                    FinishAtCoordinator(home, txn, body, !Doomed(txn), done);
                  });
            });
        scheduler_->After(config_.decision_timeout,
                          [this, home, txn, body, done, decided, gen]() {
                            if (*decided) return;
                            *decided = true;
                            const DcState& cs = dc_state_[static_cast<size_t>(
                                config_.coordinator)];
                            if (cs.down || gen != cs.gen) return;
                            FinishAtCoordinator(home, txn, body, false, done);
                          });
      });
}

void TwoPcPaxosCluster::SetObservability(obs::TraceRecorder* trace,
                                         obs::MetricsRegistry* metrics) {
  trace_ = trace;
  h_commit_total_us_ =
      metrics == nullptr ? nullptr : &metrics->histogram("txn.commit_total_us");
  h_abort_total_us_ =
      metrics == nullptr ? nullptr : &metrics->histogram("txn.abort_total_us");
}

void TwoPcPaxosCluster::ExportMetrics(obs::MetricsRegistry* registry) const {
  registry->counter("protocol.commits").Set(commits_);
  registry->counter("protocol.aborts").Set(aborts_);
  registry->counter("protocol.wounds").Set(lock_table_->wounds());
  // Gated on an actual recovery so crash-free snapshots keep their
  // pre-existing key set byte for byte.
  if (recovery_stats_.recoveries > 0) {
    registry->counter("recovery.recoveries").Set(recovery_stats_.recoveries);
    registry->counter("recovery.records_replayed")
        .Set(recovery_stats_.records_replayed);
    registry->counter("recovery.catchup_records")
        .Set(recovery_stats_.catchup_records);
    registry->counter("recovery.duration_us")
        .Set(recovery_stats_.duration_us);
  }
}

void TwoPcPaxosCluster::RecordDecision(DcId dc, const TxnId& txn, bool commit,
                                       sim::SimTime t0,
                                       const std::string& reason) {
  const sim::SimTime now = scheduler_->Now();
  if (trace_ != nullptr) {
    trace_->Span(obs::EventKind::kTxnServer, dc, txn, t0, now, kInvalidDc,
                 reason);
    trace_->Instant(commit ? obs::EventKind::kTxnCommit
                           : obs::EventKind::kTxnAbort,
                    dc, txn, now, kInvalidDc, reason);
  }
  obs::Histogram* h = commit ? h_commit_total_us_ : h_abort_total_us_;
  if (h != nullptr) h->Observe(static_cast<double>(now - t0));
}

void TwoPcPaxosCluster::TxnCommit(DcId client_dc, const TxnId& txn,
                                  std::vector<ReadEntry> reads,
                                  std::vector<WriteEntry> writes,
                                  CommitCallback done) {
  TxnBodyPtr body = MakeTxnBody(txn, std::move(reads), std::move(writes));
  if (trace_ != nullptr || h_commit_total_us_ != nullptr) {
    // The decision point lives deep in the coordinator's async pipeline;
    // wrapping the client callback captures request -> decision-delivery
    // (one client link longer than the coordinator's own processing).
    const sim::SimTime requested_at = scheduler_->Now();
    done = [this, client_dc, requested_at,
            done = std::move(done)](const CommitOutcome& outcome) {
      RecordDecision(client_dc, outcome.id, outcome.committed, requested_at,
                     outcome.abort_reason);
      done(outcome);
    };
  }
  ToCoordinator(client_dc, [this, client_dc, txn, body,
                            done = std::move(done)]() {
    const DcState& cs = dc_state_[static_cast<size_t>(config_.coordinator)];
    if (cs.down) return;
    // Commit processing at the coordinator: the 2PC bookkeeping plus one
    // lock-table operation per write lock and read validation.
    const Duration cost =
        config_.service.commit_request +
        config_.service.lock_op *
            static_cast<Duration>(body->read_set.size() +
                                  body->write_set.size());
    services_[static_cast<size_t>(config_.coordinator)]->Submit(
        cost, [this, client_dc, txn, body, gen = cs.gen, done]() {
          const DcState& cs =
              dc_state_[static_cast<size_t>(config_.coordinator)];
          if (cs.down || gen != cs.gen) return;
          if (cs.recovering) {
            FromCoordinator(client_dc, [txn, done]() {
              done(CommitOutcome{txn, false, "recovering"});
            });
            return;
          }
          CoordinatorCommit(client_dc, txn, body, done);
        });
  });
}

void TwoPcPaxosCluster::LoadInitialAll(const Key& key, const Value& value) {
  // kMinTimestamp, not 0: skewed client clocks can stamp early commits
  // with negative timestamps, and the initial version must never shadow a
  // committed write in the (ts, writer) version order.
  const TxnId loader{-2, next_load_seq_++};
  initial_loads_.emplace_back(key, value);
  for (auto& store : stores_) {
    store.ApplyWrite(key, value, kMinTimestamp, loader);
  }
}

void TwoPcPaxosCluster::TxnAbandon(DcId client_dc, const TxnId& txn) {
  ToCoordinator(client_dc, [this, txn]() {
    if (dc_state_[static_cast<size_t>(config_.coordinator)].down) return;
    lock_table_->ReleaseAll(txn);
    doomed_.erase(txn);
    txn_start_ts_.erase(txn);
  });
}

void TwoPcPaxosCluster::ClientRead(DcId client_dc, const Key& key,
                                   ReadCallback done) {
  // Plain (non-transactional) read: served by the coordinator without
  // locking.
  ToCoordinator(client_dc, [this, client_dc, key, done = std::move(done)]() {
    const DcState& cs = dc_state_[static_cast<size_t>(config_.coordinator)];
    if (cs.down) return;
    services_[static_cast<size_t>(config_.coordinator)]->Submit(
        config_.service.read, [this, client_dc, key, gen = cs.gen, done]() {
          const DcState& cs =
              dc_state_[static_cast<size_t>(config_.coordinator)];
          if (cs.down || gen != cs.gen) return;
          if (cs.recovering) {
            FromCoordinator(client_dc, [done]() {
              done(Status::Unavailable("recovering"));
            });
            return;
          }
          auto r = stores_[static_cast<size_t>(config_.coordinator)].Read(key);
          FromCoordinator(client_dc, [done, r = std::move(r)]() { done(r); });
        });
  });
}

void TwoPcPaxosCluster::ClientCommit(DcId client_dc,
                                     std::vector<ReadEntry> reads,
                                     std::vector<WriteEntry> writes,
                                     CommitCallback done) {
  TxnCommit(client_dc, BeginTxn(client_dc), std::move(reads),
            std::move(writes), std::move(done));
}

void TwoPcPaxosCluster::ClientReadOnly(DcId client_dc, std::vector<Key> keys,
                                       ReadOnlyCallback done) {
  ToCoordinator(client_dc, [this, client_dc, keys = std::move(keys),
                            done = std::move(done)]() {
    const DcState& cs = dc_state_[static_cast<size_t>(config_.coordinator)];
    if (cs.down) return;
    services_[static_cast<size_t>(config_.coordinator)]->Submit(
        config_.service.read * static_cast<Duration>(keys.size()),
        [this, client_dc, keys, gen = cs.gen, done]() {
          const DcState& cs =
              dc_state_[static_cast<size_t>(config_.coordinator)];
          if (cs.down || gen != cs.gen) return;
          std::vector<Result<VersionedValue>> out;
          if (cs.recovering) {
            out.assign(keys.size(), Result<VersionedValue>(
                                        Status::Unavailable("recovering")));
          } else {
            const MvStore& store =
                stores_[static_cast<size_t>(config_.coordinator)];
            out.reserve(keys.size());
            for (const Key& k : keys) out.push_back(store.Read(k));
          }
          FromCoordinator(client_dc,
                          [done, out = std::move(out)]() { done(out); });
        });
  });
}

// --- Crash recovery ------------------------------------------------------------

bool TwoPcPaxosCluster::JournalApply(DcId dc, const TxnId& txn,
                                     TxnBodyPtr body, Timestamp version_ts) {
  if (!journaled_[static_cast<size_t>(dc)].insert(txn).second) return false;
  rdict::LogRecord rec;
  rec.type = rdict::RecordType::kFinished;
  rec.committed = true;
  rec.ts = version_ts;
  rec.version_ts = version_ts;
  rec.origin = txn.origin;
  rec.body = std::move(body);
  (void)wals_[static_cast<size_t>(dc)]->AppendRecord(rec);
  return true;
}

void TwoPcPaxosCluster::SetDatacenterDown(DcId dc, bool down) {
  DcState& st = dc_state_[static_cast<size_t>(dc)];
  if (down) {
    if (st.down) return;
    // Crash with amnesia: volatile state goes — the store and service
    // queue everywhere, plus the lock table, wound bookkeeping and
    // replicator when the coordinator crashes. Paxos acceptor state is
    // deliberately NOT reset: an acceptor's promises are durable by the
    // protocol's own contract (they sit in the same WAL). Fresh
    // replacements are installed immediately so closures queued against
    // the old objects hit the generation guard instead of freed memory.
    ++st.gen;
    st.down = true;
    st.recovering = false;
    stores_[static_cast<size_t>(dc)].Clear();
    services_[static_cast<size_t>(dc)] =
        std::make_unique<sim::ServiceQueue>(scheduler_);
    if (dc == config_.coordinator) {
      lock_table_ = std::make_unique<LockTable>(LockPolicy::kWoundWait);
      lock_table_->set_wound_handler(
          [this](TxnId victim) { doomed_.insert(victim); });
      doomed_.clear();
      txn_start_ts_.clear();
      replicator_ = MakeReplicator();
    }
    return;
  }
  if (!st.down) return;
  st.down = false;
  st.recovering = true;
  const sim::SimTime started = scheduler_->Now();
  const uint64_t gen = st.gen;
  // Restore: data loaded outside the protocol first (same TxnIds as the
  // original loads, since they replay in order from 1), then the journal
  // of every transaction this datacenter had applied before the crash.
  MvStore& store = stores_[static_cast<size_t>(dc)];
  uint64_t load_seq = 1;
  for (const auto& [key, value] : initial_loads_) {
    store.ApplyWrite(key, value, kMinTimestamp, TxnId{-2, load_seq++});
  }
  const auto& journal = wals_[static_cast<size_t>(dc)]->contents().records;
  for (const auto& rec : journal) {
    if (rec.body != nullptr) store.ApplyTxn(*rec.body, rec.version_ts);
  }
  const uint64_t replayed = journal.size();
  // Catch-up: pull the journal of a live peer and apply what the outage
  // missed. The coordinator is the preferred source — it journals every
  // decision at decision time, so its journal is complete; a replica's
  // may trail by in-flight learner messages.
  DcId peer = kInvalidDc;
  if (dc != config_.coordinator &&
      !dc_state_[static_cast<size_t>(config_.coordinator)].down) {
    peer = config_.coordinator;
  } else {
    for (DcId p = 0; p < config_.num_datacenters; ++p) {
      if (p != dc && !dc_state_[static_cast<size_t>(p)].down) {
        peer = p;
        break;
      }
    }
  }
  if (peer == kInvalidDc) {
    FinishRecovery(dc, replayed, 0, started);
    return;
  }
  WanSend(dc, peer, [this, dc, peer, gen, replayed, started]() {
    if (dc_state_[static_cast<size_t>(peer)].down) return;
    services_[static_cast<size_t>(peer)]->Submit(
        config_.service.read, [this, dc, peer, gen, replayed, started]() {
          if (dc_state_[static_cast<size_t>(peer)].down) return;
          auto records = std::make_shared<std::vector<rdict::LogRecord>>(
              wals_[static_cast<size_t>(peer)]->contents().records);
          WanSend(peer, dc, [this, dc, gen, replayed, started, records]() {
            const DcState& st = dc_state_[static_cast<size_t>(dc)];
            if (st.down || gen != st.gen || !st.recovering) return;
            uint64_t fresh = 0;
            for (const auto& rec : *records) {
              if (rec.body == nullptr) continue;
              // JournalApply dedups against everything already applied —
              // the pre-crash journal and learner deliveries since the
              // restart.
              if (!JournalApply(dc, rec.body->id, rec.body,
                                rec.version_ts)) {
                continue;
              }
              stores_[static_cast<size_t>(dc)].ApplyTxn(*rec.body,
                                                        rec.version_ts);
              ++fresh;
            }
            FinishRecovery(dc, replayed, fresh, started);
          });
        });
  });
  // Guard: if the peer crashes before answering, rejoin with the local
  // journal alone rather than staying wedged in the recovering state.
  scheduler_->After(config_.decision_timeout,
                    [this, dc, gen, replayed, started]() {
                      const DcState& st = dc_state_[static_cast<size_t>(dc)];
                      if (st.down || gen != st.gen || !st.recovering) return;
                      FinishRecovery(dc, replayed, 0, started);
                    });
}

void TwoPcPaxosCluster::FinishRecovery(DcId dc, uint64_t records_replayed,
                                       uint64_t catchup_records,
                                       sim::SimTime started) {
  DcState& st = dc_state_[static_cast<size_t>(dc)];
  if (!st.recovering) return;  // Already finished.
  st.recovering = false;
  ++recovery_stats_.recoveries;
  recovery_stats_.records_replayed += records_replayed;
  recovery_stats_.catchup_records += catchup_records;
  const sim::SimTime now = scheduler_->Now();
  recovery_stats_.duration_us += static_cast<uint64_t>(now - started);
  if (trace_ != nullptr) {
    trace_->Span(obs::EventKind::kNodeRecover, dc, TxnId{}, started, now,
                 kInvalidDc, "journal-replay+peer-catchup");
  }
}

}  // namespace helios::baselines
