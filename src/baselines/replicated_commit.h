// Replicated Commit (Mahmoud et al., VLDB'13), the paper's strongest
// baseline (Section 5.2).
//
// The client drives the protocol directly:
//   - Each read tries to shared-lock the key at ALL datacenters and
//     completes once a MAJORITY granted; the answer is the highest-version
//     value among the granting majority. (This majority-read strategy is
//     what costs Replicated Commit its throughput in Figure 3/4.)
//   - Commit sends a vote request to all datacenters — the paper describes
//     this as a Paxos accept round over the transaction. Each datacenter
//     acquires the write locks (no-wait), validates the reads, and votes.
//     A majority of yes-votes commits; the decision is then broadcast,
//     applying write sets and releasing locks.
//
// Commit latency is therefore one round trip to the closest majority,
// matching Helios-2's fault tolerance (2 of 5 datacenter outages).

#ifndef HELIOS_BASELINES_REPLICATED_COMMIT_H_
#define HELIOS_BASELINES_REPLICATED_COMMIT_H_

#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "api/protocol.h"
#include "core/helios_config.h"
#include "core/history.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/clock.h"
#include "sim/network.h"
#include "sim/scheduler.h"
#include "sim/service_queue.h"
#include "store/lock_table.h"
#include "store/mv_store.h"
#include "wal/wal_sink.h"

namespace helios::baselines {

struct ReplicatedCommitConfig {
  int num_datacenters = 0;
  Duration client_link_one_way = Micros(500);
  /// A transaction whose votes cannot complete (e.g. datacenter outages)
  /// aborts after this long.
  Duration decision_timeout = Seconds(5);
  core::ServiceModel service;
  std::vector<Duration> clock_offsets;
};

class ReplicatedCommitCluster : public ProtocolCluster {
 public:
  ReplicatedCommitCluster(sim::Scheduler* scheduler, sim::Network* network,
                          ReplicatedCommitConfig config);

  void Start() override {}
  void LoadInitialAll(const Key& key, const Value& value) override;
  void ClientRead(DcId client_dc, const Key& key, ReadCallback done) override;
  void ClientCommit(DcId client_dc, std::vector<ReadEntry> reads,
                    std::vector<WriteEntry> writes,
                    CommitCallback done) override;
  void ClientReadOnly(DcId client_dc, std::vector<Key> keys,
                      ReadOnlyCallback done) override;

  TxnId BeginTxn(DcId client_dc) override;
  void TxnRead(DcId client_dc, const TxnId& txn, const Key& key,
               ReadCallback done) override;
  void TxnCommit(DcId client_dc, const TxnId& txn,
                 std::vector<ReadEntry> reads, std::vector<WriteEntry> writes,
                 CommitCallback done) override;
  void TxnAbandon(DcId client_dc, const TxnId& txn) override;

  std::string name() const override { return "ReplicatedCommit"; }
  int num_datacenters() const override { return config_.num_datacenters; }

  /// Observability (src/obs): commit/abort decision events and a total-
  /// latency histogram per outcome, measured over the vote round.
  void SetObservability(obs::TraceRecorder* trace,
                        obs::MetricsRegistry* metrics) override;
  void ExportMetrics(obs::MetricsRegistry* registry) const override;

  /// Routes inter-datacenter RPCs through `mesh`; unlike Helios, the vote
  /// rounds here are not loss-tolerant, so chaos runs need this.
  void SetReliableMesh(sim::ReliableMesh* mesh) override { mesh_ = mesh; }

  /// Node-process half of an outage. `down` crashes the datacenter with
  /// amnesia (lock table, store and service queue destroyed; only the WAL
  /// journal of applied decisions survives). `!down` replays the journal,
  /// then pulls the decisions it missed from the first live peer. While
  /// catching up the datacenter refuses lock-reads and votes.
  void SetDatacenterDown(DcId dc, bool down) override;

  const RecoveryStats& recovery_stats() const { return recovery_stats_; }
  bool datacenter_down(DcId dc) const override {
    return dc_state_[static_cast<size_t>(dc)].down;
  }

  // Checker observation points (src/check).
  const wal::MemoryWal* wal_journal(DcId dc) const override {
    return wals_[static_cast<size_t>(dc)].get();
  }
  void SnapshotStore(
      DcId dc, const std::function<void(const Key&, const VersionedValue&)>&
                   fn) const override {
    store(dc).ForEachLatest(fn);
  }
  RecoveryStats recovery_snapshot() const override { return recovery_stats_; }

  const MvStore& store(DcId dc) const { return dcs_[dc]->store; }
  const LockTable& locks(DcId dc) const { return dcs_[dc]->locks; }
  core::HistoryRecorder& history() { return history_; }
  uint64_t commits() const { return commits_; }
  uint64_t aborts() const { return aborts_; }

 private:
  struct Datacenter {
    explicit Datacenter(sim::Scheduler* scheduler)
        : locks(LockPolicy::kNoWait), service(scheduler) {}
    LockTable locks;
    MvStore store;
    sim::ServiceQueue service;
  };

  struct VoteReply {
    bool yes = false;
    Timestamp max_write_version_ts = kMinTimestamp;
  };

  /// Runs `fn` at datacenter `target` after the client's network latency
  /// from `home` (client link only when target is the home datacenter).
  void Route(DcId home, DcId target, std::function<void()> fn);
  /// Runs `fn` back at the client after the reverse latency.
  void RouteBack(DcId target, DcId home, std::function<void()> fn);
  /// One WAN hop, through the reliable mesh when installed.
  void WanSend(DcId from, DcId to, std::function<void()> fn);

  // Server-side handlers; `reply` is routed back to the client by the
  // caller.
  void HandleLockRead(DcId dc, const TxnId& txn, Timestamp start_ts,
                      const Key& key,
                      std::function<void(Result<VersionedValue>)> reply);
  void HandleVote(DcId dc, const TxnId& txn, Timestamp start_ts,
                  const std::vector<ReadEntry>& reads,
                  const std::vector<WriteEntry>& writes,
                  std::function<void(VoteReply)> reply);
  void HandleDecision(DcId dc, const TxnId& txn, bool commit,
                      TxnBodyPtr body, Timestamp version_ts);

  void BroadcastDecision(DcId home, const TxnId& txn, bool commit,
                         TxnBodyPtr body, Timestamp version_ts);

  /// Persists one applied commit decision into `dc`'s WAL journal.
  /// Returns false (and journals nothing) when `txn` is already journaled
  /// there — the apply-side dedup that makes broadcast + catch-up
  /// delivery of the same decision idempotent.
  bool JournalCommit(DcId dc, const TxnId& txn, TxnBodyPtr body,
                     Timestamp version_ts);
  /// Ends `dc`'s catch-up phase and accounts the recovery.
  void FinishRecovery(DcId dc, uint64_t records_replayed,
                      uint64_t catchup_records, sim::SimTime started);

  /// Records the trace events and histogram sample for a decision reached
  /// at `now` for a commit request that entered at `t0`.
  void RecordDecision(DcId dc, const TxnId& txn, bool commit,
                      sim::SimTime t0, const std::string& reason);

  /// Crash/recovery state per datacenter. `gen` increments on every
  /// amnesia restart so closures queued against the destroyed Datacenter
  /// object become no-ops instead of acting on its replacement.
  struct DcState {
    bool down = false;
    bool recovering = false;
    uint64_t gen = 0;
  };

  sim::Scheduler* scheduler_;
  sim::Network* network_;
  sim::ReliableMesh* mesh_ = nullptr;
  ReplicatedCommitConfig config_;
  std::vector<std::unique_ptr<Datacenter>> dcs_;
  std::vector<std::unique_ptr<sim::Clock>> clocks_;
  /// Per-datacenter durable journal of applied commit decisions; survives
  /// the Datacenter object across amnesia restarts.
  std::vector<std::unique_ptr<wal::MemoryWal>> wals_;
  /// Mirror of each WAL's TxnId set (durable, like the WAL itself);
  /// JournalCommit consults it so decisions apply exactly once.
  std::vector<std::unordered_set<TxnId, TxnIdHash>> journaled_;
  std::vector<DcState> dc_state_;
  std::vector<std::pair<Key, Value>> initial_loads_;
  RecoveryStats recovery_stats_;
  std::unordered_map<TxnId, Timestamp, TxnIdHash> txn_start_ts_;
  core::HistoryRecorder history_;
  obs::TraceRecorder* trace_ = nullptr;
  obs::Histogram* h_commit_total_us_ = nullptr;
  obs::Histogram* h_abort_total_us_ = nullptr;
  uint64_t commits_ = 0;
  uint64_t aborts_ = 0;
  uint64_t next_ro_seq_ = 1;
  uint64_t next_load_seq_ = 1;
};

}  // namespace helios::baselines

#endif  // HELIOS_BASELINES_REPLICATED_COMMIT_H_
