#include "baselines/replicated_commit.h"

#include <algorithm>
#include <cassert>

#include "sim/reliable.h"

namespace helios::baselines {

ReplicatedCommitCluster::ReplicatedCommitCluster(sim::Scheduler* scheduler,
                                                 sim::Network* network,
                                                 ReplicatedCommitConfig config)
    : scheduler_(scheduler), network_(network), config_(std::move(config)) {
  assert(network_->size() == config_.num_datacenters);
  for (DcId dc = 0; dc < config_.num_datacenters; ++dc) {
    dcs_.push_back(std::make_unique<Datacenter>(scheduler_));
    const Duration offset =
        config_.clock_offsets.empty()
            ? 0
            : config_.clock_offsets[static_cast<size_t>(dc)];
    clocks_.push_back(std::make_unique<sim::Clock>(scheduler_, offset));
    wals_.push_back(std::make_unique<wal::MemoryWal>());
  }
  dc_state_.resize(static_cast<size_t>(config_.num_datacenters));
  journaled_.resize(static_cast<size_t>(config_.num_datacenters));
}

void ReplicatedCommitCluster::SetObservability(obs::TraceRecorder* trace,
                                               obs::MetricsRegistry* metrics) {
  trace_ = trace;
  h_commit_total_us_ =
      metrics == nullptr ? nullptr : &metrics->histogram("txn.commit_total_us");
  h_abort_total_us_ =
      metrics == nullptr ? nullptr : &metrics->histogram("txn.abort_total_us");
}

void ReplicatedCommitCluster::ExportMetrics(
    obs::MetricsRegistry* registry) const {
  registry->counter("protocol.commits").Set(commits_);
  registry->counter("protocol.aborts").Set(aborts_);
  // Gated on an actual recovery so crash-free snapshots keep their
  // pre-existing key set byte for byte.
  if (recovery_stats_.recoveries > 0) {
    registry->counter("recovery.recoveries").Set(recovery_stats_.recoveries);
    registry->counter("recovery.records_replayed")
        .Set(recovery_stats_.records_replayed);
    registry->counter("recovery.catchup_records")
        .Set(recovery_stats_.catchup_records);
    registry->counter("recovery.duration_us")
        .Set(recovery_stats_.duration_us);
  }
}

void ReplicatedCommitCluster::RecordDecision(DcId dc, const TxnId& txn,
                                             bool commit, sim::SimTime t0,
                                             const std::string& reason) {
  const sim::SimTime now = scheduler_->Now();
  if (trace_ != nullptr) {
    trace_->Span(obs::EventKind::kTxnServer, dc, txn, t0, now, kInvalidDc,
                 reason);
    trace_->Instant(commit ? obs::EventKind::kTxnCommit
                           : obs::EventKind::kTxnAbort,
                    dc, txn, now, kInvalidDc, reason);
  }
  obs::Histogram* h = commit ? h_commit_total_us_ : h_abort_total_us_;
  if (h != nullptr) h->Observe(static_cast<double>(now - t0));
}

void ReplicatedCommitCluster::WanSend(DcId from, DcId to,
                                      std::function<void()> fn) {
  if (mesh_ != nullptr) {
    mesh_->Send(from, to, std::move(fn));
  } else {
    network_->Send(from, to, std::move(fn));
  }
}

void ReplicatedCommitCluster::Route(DcId home, DcId target,
                                    std::function<void()> fn) {
  if (home == target) {
    scheduler_->After(config_.client_link_one_way, std::move(fn));
  } else {
    scheduler_->After(config_.client_link_one_way,
                      [this, home, target, fn = std::move(fn)]() {
                        WanSend(home, target, fn);
                      });
  }
}

void ReplicatedCommitCluster::RouteBack(DcId target, DcId home,
                                        std::function<void()> fn) {
  if (home == target) {
    scheduler_->After(config_.client_link_one_way, std::move(fn));
  } else {
    WanSend(target, home, [this, fn = std::move(fn)]() {
      scheduler_->After(config_.client_link_one_way, fn);
    });
  }
}

TxnId ReplicatedCommitCluster::BeginTxn(DcId client_dc) {
  const TxnId id = ProtocolCluster::BeginTxn(client_dc);
  txn_start_ts_[id] = clocks_[static_cast<size_t>(client_dc)]->NowUnique();
  return id;
}

// --- Server-side handlers -----------------------------------------------------

void ReplicatedCommitCluster::HandleLockRead(
    DcId dc, const TxnId& txn, Timestamp start_ts, const Key& key,
    std::function<void(Result<VersionedValue>)> reply) {
  const DcState& st = dc_state_[static_cast<size_t>(dc)];
  if (st.down) return;  // A crashed datacenter drops everything.
  Datacenter& d = *dcs_[static_cast<size_t>(dc)];
  d.service.Submit(config_.service.read + config_.service.lock_op,
                   [this, dc, gen = st.gen, txn, start_ts, key,
                    reply = std::move(reply)]() {
    const DcState& st = dc_state_[static_cast<size_t>(dc)];
    if (st.down || gen != st.gen) return;  // Crashed while queued.
    if (st.recovering) {
      reply(Status::Unavailable("recovering"));
      return;
    }
    Datacenter& d = *dcs_[static_cast<size_t>(dc)];
    d.locks.Acquire(key, LockMode::kShared, txn, start_ts,
                    [&d, &key, &reply](Status s) {
                      // No-wait: the grant callback runs synchronously.
                      if (!s.ok()) {
                        reply(Status::Aborted("read lock refused"));
                        return;
                      }
                      reply(d.store.Read(key));
                    });
  });
}

void ReplicatedCommitCluster::HandleVote(
    DcId dc, const TxnId& txn, Timestamp start_ts,
    const std::vector<ReadEntry>& reads, const std::vector<WriteEntry>& writes,
    std::function<void(VoteReply)> reply) {
  const DcState& state = dc_state_[static_cast<size_t>(dc)];
  if (state.down) return;
  Datacenter& d = *dcs_[static_cast<size_t>(dc)];
  const Duration vote_cost =
      config_.service.commit_request +
      config_.service.lock_op *
          static_cast<Duration>(reads.size() + writes.size());
  d.service.Submit(
      vote_cost,
      [this, dc, gen = state.gen, txn, start_ts, reads, writes,
       reply = std::move(reply)]() {
        const DcState& st = dc_state_[static_cast<size_t>(dc)];
        if (st.down || gen != st.gen) return;
        if (st.recovering) {
          // A store that has not caught up cannot validate reads; vote no
          // rather than risk validating against stale versions.
          reply(VoteReply{});
          return;
        }
        Datacenter& d = *dcs_[static_cast<size_t>(dc)];
        VoteReply vote;
        vote.yes = true;
        // Acquire write locks (no-wait: grants are synchronous).
        for (const WriteEntry& w : writes) {
          bool got = false;
          d.locks.Acquire(w.key, LockMode::kExclusive, txn, start_ts,
                          [&got](Status s) { got = s.ok(); });
          if (!got) {
            vote.yes = false;
            break;
          }
          vote.max_write_version_ts =
              std::max(vote.max_write_version_ts, d.store.LatestVersionTs(w.key));
        }
        // Validate reads: either the shared lock is still held (the normal
        // path) or the version the client read is still current.
        if (vote.yes) {
          for (const ReadEntry& r : reads) {
            if (d.locks.Holds(r.key, txn, LockMode::kShared)) continue;
            bool got = false;
            d.locks.Acquire(r.key, LockMode::kShared, txn, start_ts,
                            [&got](Status s) { got = s.ok(); });
            auto current = d.store.Read(r.key);
            const bool matches =
                current.ok() ? current.value().writer == r.version_writer
                             : !r.version_writer.valid();
            if (!got || !matches) {
              vote.yes = false;
              break;
            }
          }
        }
        // Locks (granted or partial) stay held until the decision.
        reply(vote);
      });
}

void ReplicatedCommitCluster::HandleDecision(DcId dc, const TxnId& txn,
                                             bool commit, TxnBodyPtr body,
                                             Timestamp version_ts) {
  const DcState& state = dc_state_[static_cast<size_t>(dc)];
  if (state.down) return;
  Datacenter& d = *dcs_[static_cast<size_t>(dc)];
  const Duration cost =
      commit ? config_.service.write_apply *
                   static_cast<Duration>(body ? body->write_set.size() : 0)
             : Micros(10);
  d.service.Submit(cost, [this, dc, gen = state.gen, txn, commit,
                          body = std::move(body), version_ts]() {
    const DcState& st = dc_state_[static_cast<size_t>(dc)];
    if (st.down || gen != st.gen) return;
    Datacenter& d = *dcs_[static_cast<size_t>(dc)];
    // Journal-then-apply; a false return means catch-up already applied
    // this decision, so the broadcast copy must not apply it again.
    if (commit && body != nullptr &&
        JournalCommit(dc, txn, body, version_ts)) {
      d.store.ApplyTxn(*body, version_ts);
    }
    d.locks.ReleaseAll(txn);
  });
}

void ReplicatedCommitCluster::BroadcastDecision(DcId home, const TxnId& txn,
                                                bool commit, TxnBodyPtr body,
                                                Timestamp version_ts) {
  for (DcId dc = 0; dc < config_.num_datacenters; ++dc) {
    Route(home, dc, [this, dc, txn, commit, body, version_ts]() {
      HandleDecision(dc, txn, commit, body, version_ts);
    });
  }
  txn_start_ts_.erase(txn);
}

// --- Client-side protocol ------------------------------------------------------

void ReplicatedCommitCluster::TxnRead(DcId client_dc, const TxnId& txn,
                                      const Key& key, ReadCallback done) {
  const int n = config_.num_datacenters;
  const int majority = n / 2 + 1;
  auto start_it = txn_start_ts_.find(txn);
  const Timestamp start_ts =
      start_it != txn_start_ts_.end()
          ? start_it->second
          : clocks_[static_cast<size_t>(client_dc)]->Now();

  struct ReadState {
    int replies = 0;
    int granted = 0;
    bool answered = false;
    bool have_value = false;
    VersionedValue best;
  };
  auto state = std::make_shared<ReadState>();
  auto on_reply = [this, state, n, majority, done](
                      Result<VersionedValue> r) {
    ++state->replies;
    if (r.ok()) {
      ++state->granted;
      const VersionedValue& v = r.value();
      if (!state->have_value || state->best.ts < v.ts ||
          (state->best.ts == v.ts && state->best.writer < v.writer)) {
        state->have_value = true;
        state->best = v;
      }
    } else if (r.status().code() == StatusCode::kNotFound) {
      // Key absent but lock granted: counts toward the majority.
      ++state->granted;
    }
    if (state->answered) return;
    if (state->granted >= majority) {
      state->answered = true;
      if (state->have_value) {
        done(state->best);
      } else {
        done(Status::NotFound("no replica has the key"));
      }
      return;
    }
    const int refused = state->replies - state->granted;
    if (refused > n - majority) {
      state->answered = true;
      done(Status::Aborted("read lock refused at a majority"));
    }
  };

  for (DcId dc = 0; dc < n; ++dc) {
    Route(client_dc, dc, [this, dc, txn, start_ts, key, client_dc,
                          on_reply]() {
      HandleLockRead(dc, txn, start_ts, key,
                     [this, dc, client_dc, on_reply](Result<VersionedValue> r) {
                       RouteBack(dc, client_dc,
                                 [on_reply, r = std::move(r)]() { on_reply(r); });
                     });
    });
  }
}

void ReplicatedCommitCluster::TxnCommit(DcId client_dc, const TxnId& txn,
                                        std::vector<ReadEntry> reads,
                                        std::vector<WriteEntry> writes,
                                        CommitCallback done) {
  const int n = config_.num_datacenters;
  const int majority = n / 2 + 1;
  auto start_it = txn_start_ts_.find(txn);
  const Timestamp start_ts =
      start_it != txn_start_ts_.end()
          ? start_it->second
          : clocks_[static_cast<size_t>(client_dc)]->Now();
  TxnBodyPtr body = MakeTxnBody(txn, std::move(reads), std::move(writes));
  const sim::SimTime requested_at = scheduler_->Now();

  struct CommitState {
    int yes = 0;
    int no = 0;
    bool decided = false;
    Timestamp max_write_version_ts = kMinTimestamp;
  };
  auto state = std::make_shared<CommitState>();

  auto decide = [this, state, client_dc, txn, body, done,
                 requested_at](bool commit) {
    if (state->decided) return;
    state->decided = true;
    Timestamp version_ts = kMinTimestamp;
    if (commit) {
      // Dependency-bump the version timestamp above everything read or
      // overwritten so the per-key version order matches the lock order.
      version_ts = clocks_[static_cast<size_t>(client_dc)]->NowUnique();
      for (const ReadEntry& r : body->read_set) {
        version_ts = std::max(version_ts, r.version_ts + 1);
      }
      version_ts = std::max(version_ts, state->max_write_version_ts + 1);
      ++commits_;
      history_.RecordCommit(
          core::CommittedTxn{txn, client_dc, version_ts, body});
    } else {
      ++aborts_;
    }
    if (trace_ != nullptr || h_commit_total_us_ != nullptr) {
      RecordDecision(client_dc, txn, commit, requested_at,
                     commit ? "" : "vote:no-majority");
    }
    BroadcastDecision(client_dc, txn, commit, body, version_ts);
    done(CommitOutcome{txn, commit, commit ? "" : "vote:no-majority"});
  };

  auto on_vote = [state, majority, n, decide](const VoteReply& vote) {
    if (state->decided) return;
    if (vote.yes) {
      ++state->yes;
      state->max_write_version_ts =
          std::max(state->max_write_version_ts, vote.max_write_version_ts);
    } else {
      ++state->no;
    }
    if (state->yes >= majority) {
      decide(true);
    } else if (state->no > n - majority) {
      decide(false);
    }
  };

  for (DcId dc = 0; dc < n; ++dc) {
    Route(client_dc, dc, [this, dc, txn, start_ts, body, client_dc,
                          on_vote]() {
      HandleVote(dc, txn, start_ts, body->read_set, body->write_set,
                 [this, dc, client_dc, on_vote](VoteReply vote) {
                   RouteBack(dc, client_dc, [on_vote, vote]() { on_vote(vote); });
                 });
    });
  }

  // Outage guard: if votes can never resolve (crashed datacenters), abort.
  scheduler_->After(config_.decision_timeout, [decide]() { decide(false); });
}

void ReplicatedCommitCluster::LoadInitialAll(const Key& key,
                                             const Value& value) {
  // kMinTimestamp, not 0: skewed client clocks can stamp early commits
  // with negative timestamps, and the initial version must never shadow a
  // committed write in the (ts, writer) version order.
  const TxnId loader{-2, next_load_seq_++};
  initial_loads_.emplace_back(key, value);
  for (auto& dc : dcs_) {
    dc->store.ApplyWrite(key, value, kMinTimestamp, loader);
  }
}

void ReplicatedCommitCluster::TxnAbandon(DcId client_dc, const TxnId& txn) {
  BroadcastDecision(client_dc, txn, false, nullptr, kMinTimestamp);
}

void ReplicatedCommitCluster::ClientRead(DcId client_dc, const Key& key,
                                         ReadCallback done) {
  // Plain read outside a transaction: lock-free local read.
  Route(client_dc, client_dc, [this, client_dc, key, done = std::move(done)]() {
    const DcState& st = dc_state_[static_cast<size_t>(client_dc)];
    if (st.down) return;
    Datacenter& d = *dcs_[static_cast<size_t>(client_dc)];
    d.service.Submit(config_.service.read, [this, key, client_dc,
                                            gen = st.gen,
                                            done = std::move(done)]() {
      const DcState& st = dc_state_[static_cast<size_t>(client_dc)];
      if (st.down || gen != st.gen) return;
      if (st.recovering) {
        RouteBack(client_dc, client_dc, [done]() {
          done(Status::Unavailable("recovering"));
        });
        return;
      }
      auto r = dcs_[static_cast<size_t>(client_dc)]->store.Read(key);
      RouteBack(client_dc, client_dc,
                [done, r = std::move(r)]() { done(r); });
    });
  });
}

void ReplicatedCommitCluster::ClientCommit(DcId client_dc,
                                           std::vector<ReadEntry> reads,
                                           std::vector<WriteEntry> writes,
                                           CommitCallback done) {
  TxnCommit(client_dc, BeginTxn(client_dc), std::move(reads),
            std::move(writes), std::move(done));
}

void ReplicatedCommitCluster::ClientReadOnly(DcId client_dc,
                                             std::vector<Key> keys,
                                             ReadOnlyCallback done) {
  Route(client_dc, client_dc, [this, client_dc, keys = std::move(keys),
                               done = std::move(done)]() {
    const DcState& st = dc_state_[static_cast<size_t>(client_dc)];
    if (st.down) return;
    Datacenter& d = *dcs_[static_cast<size_t>(client_dc)];
    d.service.Submit(
        config_.service.read * static_cast<Duration>(keys.size()),
        [this, keys, client_dc, gen = st.gen, done = std::move(done)]() {
          const DcState& st = dc_state_[static_cast<size_t>(client_dc)];
          if (st.down || gen != st.gen) return;
          std::vector<Result<VersionedValue>> out;
          if (st.recovering) {
            out.assign(keys.size(),
                       Result<VersionedValue>(Status::Unavailable("recovering")));
          } else {
            Datacenter& d = *dcs_[static_cast<size_t>(client_dc)];
            out.reserve(keys.size());
            for (const Key& k : keys) out.push_back(d.store.Read(k));
          }
          RouteBack(client_dc, client_dc,
                    [done, out = std::move(out)]() { done(out); });
        });
  });
}

// --- Crash recovery ------------------------------------------------------------

bool ReplicatedCommitCluster::JournalCommit(DcId dc, const TxnId& txn,
                                            TxnBodyPtr body,
                                            Timestamp version_ts) {
  if (!journaled_[static_cast<size_t>(dc)].insert(txn).second) return false;
  rdict::LogRecord rec;
  rec.type = rdict::RecordType::kFinished;
  rec.committed = true;
  rec.ts = version_ts;
  rec.version_ts = version_ts;
  rec.origin = txn.origin;
  rec.body = std::move(body);
  (void)wals_[static_cast<size_t>(dc)]->AppendRecord(rec);
  return true;
}

void ReplicatedCommitCluster::SetDatacenterDown(DcId dc, bool down) {
  DcState& st = dc_state_[static_cast<size_t>(dc)];
  if (down) {
    if (st.down) return;
    // Crash with amnesia: destroy the Datacenter object — lock table,
    // store and service queue vanish; only the WAL journal (and its
    // TxnId mirror) survives. A fresh shell replaces it so closures
    // queued against the old object hit the generation guard instead of
    // freed memory.
    dcs_[static_cast<size_t>(dc)] = std::make_unique<Datacenter>(scheduler_);
    ++st.gen;
    st.down = true;
    st.recovering = false;
    return;
  }
  if (!st.down) return;
  st.down = false;
  st.recovering = true;
  const sim::SimTime started = scheduler_->Now();
  const uint64_t gen = st.gen;
  // Restore: data loaded outside the protocol first (same TxnIds as the
  // original loads, since they replay in order from 1), then the journal
  // of every decision this datacenter had applied before the crash.
  Datacenter& d = *dcs_[static_cast<size_t>(dc)];
  uint64_t load_seq = 1;
  for (const auto& [key, value] : initial_loads_) {
    d.store.ApplyWrite(key, value, kMinTimestamp, TxnId{-2, load_seq++});
  }
  const auto& journal = wals_[static_cast<size_t>(dc)]->contents().records;
  for (const auto& rec : journal) {
    if (rec.body != nullptr) d.store.ApplyTxn(*rec.body, rec.version_ts);
  }
  const uint64_t replayed = journal.size();
  // Catch-up: pull the journal from the first live peer and apply the
  // decisions missed during the outage. One peer suffices — every peer's
  // journal holds every decision it applied, and any decision a majority
  // committed was applied at every live datacenter.
  DcId peer = kInvalidDc;
  for (DcId p = 0; p < config_.num_datacenters; ++p) {
    if (p != dc && !dc_state_[static_cast<size_t>(p)].down) {
      peer = p;
      break;
    }
  }
  if (peer == kInvalidDc) {
    FinishRecovery(dc, replayed, 0, started);
    return;
  }
  WanSend(dc, peer, [this, dc, peer, gen, replayed, started]() {
    const DcState& ps = dc_state_[static_cast<size_t>(peer)];
    if (ps.down) return;  // Request lost; the guard below finishes.
    dcs_[static_cast<size_t>(peer)]->service.Submit(
        config_.service.read, [this, dc, peer, gen, replayed, started]() {
          if (dc_state_[static_cast<size_t>(peer)].down) return;
          auto records = std::make_shared<std::vector<rdict::LogRecord>>(
              wals_[static_cast<size_t>(peer)]->contents().records);
          WanSend(peer, dc, [this, dc, gen, replayed, started, records]() {
            const DcState& st = dc_state_[static_cast<size_t>(dc)];
            if (st.down || gen != st.gen || !st.recovering) return;
            Datacenter& d = *dcs_[static_cast<size_t>(dc)];
            uint64_t fresh = 0;
            for (const auto& rec : *records) {
              if (rec.body == nullptr) continue;
              // JournalCommit dedups against everything already applied —
              // the pre-crash journal and decisions broadcast since the
              // restart.
              if (!JournalCommit(dc, rec.body->id, rec.body,
                                 rec.version_ts)) {
                continue;
              }
              d.store.ApplyTxn(*rec.body, rec.version_ts);
              ++fresh;
            }
            FinishRecovery(dc, replayed, fresh, started);
          });
        });
  });
  // Guard: if the peer crashes before answering, rejoin with the local
  // journal alone rather than staying wedged in the recovering state.
  scheduler_->After(config_.decision_timeout,
                    [this, dc, gen, replayed, started]() {
                      const DcState& st = dc_state_[static_cast<size_t>(dc)];
                      if (st.down || gen != st.gen || !st.recovering) return;
                      FinishRecovery(dc, replayed, 0, started);
                    });
}

void ReplicatedCommitCluster::FinishRecovery(DcId dc, uint64_t records_replayed,
                                             uint64_t catchup_records,
                                             sim::SimTime started) {
  DcState& st = dc_state_[static_cast<size_t>(dc)];
  if (!st.recovering) return;  // Already finished.
  st.recovering = false;
  ++recovery_stats_.recoveries;
  recovery_stats_.records_replayed += records_replayed;
  recovery_stats_.catchup_records += catchup_records;
  const sim::SimTime now = scheduler_->Now();
  recovery_stats_.duration_us += static_cast<uint64_t>(now - started);
  if (trace_ != nullptr) {
    trace_->Span(obs::EventKind::kNodeRecover, dc, TxnId{}, started, now,
                 kInvalidDc, "journal-replay+peer-catchup");
  }
}

}  // namespace helios::baselines
