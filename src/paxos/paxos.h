// Multi-decree Paxos with a stable-leader lease, used by the paper's
// comparison baselines: 2PC/Paxos replicates the coordinator's commit log
// through it ("the coordinator is assumed to have a lease so that it will
// not need to go through the leader election phase"), and Replicated
// Commit's per-transaction accept round reuses the acceptor machinery.
//
// The implementation is a classic two-phase protocol per slot:
//   phase 1  Prepare(n) / Promise(n, accepted)   — skipped under the lease
//   phase 2  Accept(n, v) / Accepted(n)
// A value is *chosen* once a majority of acceptors accepted it under the
// same proposal. Safety (only one value ever chosen per slot, even with
// dueling proposers) is unit-tested in tests/paxos_test.cc.

#ifndef HELIOS_PAXOS_PAXOS_H_
#define HELIOS_PAXOS_PAXOS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace helios::paxos {

/// Totally ordered proposal number: (round, proposer id).
struct ProposalId {
  uint64_t round = 0;
  DcId proposer = kInvalidDc;

  friend bool operator<(const ProposalId& a, const ProposalId& b) {
    if (a.round != b.round) return a.round < b.round;
    return a.proposer < b.proposer;
  }
  friend bool operator==(const ProposalId& a, const ProposalId& b) {
    return a.round == b.round && a.proposer == b.proposer;
  }
  friend bool operator<=(const ProposalId& a, const ProposalId& b) {
    return a < b || a == b;
  }
};

/// Opaque replicated payload. Baselines serialize their transaction
/// decisions into it.
using PaxosValue = std::string;

using SlotId = uint64_t;

// --- Wire messages ----------------------------------------------------------

struct PrepareRequest {
  SlotId slot = 0;
  ProposalId id;
};

struct PrepareReply {
  SlotId slot = 0;
  ProposalId id;             ///< Echo of the prepared proposal.
  bool promised = false;     ///< False: a higher proposal was seen.
  bool has_accepted = false;
  ProposalId accepted_id;
  PaxosValue accepted_value;
};

struct AcceptRequest {
  SlotId slot = 0;
  ProposalId id;
  PaxosValue value;
};

struct AcceptReply {
  SlotId slot = 0;
  ProposalId id;
  bool accepted = false;
};

// --- Acceptor ---------------------------------------------------------------

/// Per-node acceptor state over all slots.
class Acceptor {
 public:
  PrepareReply OnPrepare(const PrepareRequest& req);
  AcceptReply OnAccept(const AcceptRequest& req);

  /// True if this acceptor has accepted anything in `slot`.
  bool HasAccepted(SlotId slot) const;
  /// Accepted value for `slot`, if any.
  std::optional<PaxosValue> AcceptedValue(SlotId slot) const;

 private:
  struct SlotState {
    ProposalId promised;
    bool has_accepted = false;
    ProposalId accepted_id;
    PaxosValue accepted_value;
  };
  std::unordered_map<SlotId, SlotState> slots_;
};

// --- Proposer / replicator ---------------------------------------------------

/// Drives replication of a sequence of values from one node. Transport is
/// injected: `broadcast(peer, make_request)` must deliver requests to peer
/// acceptors and route replies back via the On*Reply methods.
///
/// With `lease` enabled (the 2PC/Paxos configuration), the proposer owns
/// round 1 for every slot and starts directly with Accept — one WAN round
/// trip to a majority per value. Without the lease it runs both phases.
class Replicator {
 public:
  using SendPrepare = std::function<void(DcId peer, const PrepareRequest&)>;
  using SendAccept = std::function<void(DcId peer, const AcceptRequest&)>;
  /// Called exactly once per slot when its value is chosen.
  using ChosenCallback = std::function<void(SlotId, const PaxosValue&)>;

  /// `self_acceptor` is this node's own acceptor (votes locally for free).
  Replicator(DcId self, int n, bool lease, Acceptor* self_acceptor,
             SendPrepare send_prepare, SendAccept send_accept);

  /// Starts replicating `value` in the next slot; `chosen` fires when a
  /// majority accepted. Returns the slot.
  SlotId Replicate(PaxosValue value, ChosenCallback chosen);

  void OnPrepareReply(DcId from, const PrepareReply& reply);
  void OnAcceptReply(DcId from, const AcceptReply& reply);

  int majority() const { return n_ / 2 + 1; }
  SlotId next_slot() const { return next_slot_; }

 private:
  struct InFlight {
    ProposalId id;
    PaxosValue value;
    ChosenCallback chosen;
    int promises = 0;
    int accepts = 0;
    bool phase2 = false;
    bool done = false;
    // Highest already-accepted value reported during phase 1; Paxos obliges
    // the proposer to adopt it.
    bool saw_accepted = false;
    ProposalId best_accepted_id;
    PaxosValue best_accepted_value;
  };

  void StartPhase1(SlotId slot);
  void StartPhase2(SlotId slot);

  DcId self_;
  int n_;
  bool lease_;
  Acceptor* self_acceptor_;
  SendPrepare send_prepare_;
  SendAccept send_accept_;
  SlotId next_slot_ = 0;
  uint64_t next_round_ = 1;
  std::map<SlotId, InFlight> in_flight_;
};

}  // namespace helios::paxos

#endif  // HELIOS_PAXOS_PAXOS_H_
