#include "paxos/paxos.h"

#include <cassert>
#include <utility>

namespace helios::paxos {

// --- Acceptor ---------------------------------------------------------------

PrepareReply Acceptor::OnPrepare(const PrepareRequest& req) {
  SlotState& s = slots_[req.slot];
  PrepareReply reply;
  reply.slot = req.slot;
  reply.id = req.id;
  if (s.promised < req.id) {
    s.promised = req.id;
    reply.promised = true;
    reply.has_accepted = s.has_accepted;
    reply.accepted_id = s.accepted_id;
    reply.accepted_value = s.accepted_value;
  } else {
    reply.promised = false;
  }
  return reply;
}

AcceptReply Acceptor::OnAccept(const AcceptRequest& req) {
  SlotState& s = slots_[req.slot];
  AcceptReply reply;
  reply.slot = req.slot;
  reply.id = req.id;
  // Accept unless a strictly higher proposal has been promised.
  if (s.promised <= req.id) {
    s.promised = req.id;
    s.has_accepted = true;
    s.accepted_id = req.id;
    s.accepted_value = req.value;
    reply.accepted = true;
  } else {
    reply.accepted = false;
  }
  return reply;
}

bool Acceptor::HasAccepted(SlotId slot) const {
  auto it = slots_.find(slot);
  return it != slots_.end() && it->second.has_accepted;
}

std::optional<PaxosValue> Acceptor::AcceptedValue(SlotId slot) const {
  auto it = slots_.find(slot);
  if (it == slots_.end() || !it->second.has_accepted) return std::nullopt;
  return it->second.accepted_value;
}

// --- Replicator --------------------------------------------------------------

Replicator::Replicator(DcId self, int n, bool lease, Acceptor* self_acceptor,
                       SendPrepare send_prepare, SendAccept send_accept)
    : self_(self),
      n_(n),
      lease_(lease),
      self_acceptor_(self_acceptor),
      send_prepare_(std::move(send_prepare)),
      send_accept_(std::move(send_accept)) {
  assert(n_ > 0 && self_ >= 0 && self_ < n_);
}

SlotId Replicator::Replicate(PaxosValue value, ChosenCallback chosen) {
  const SlotId slot = next_slot_++;
  InFlight& f = in_flight_[slot];
  // Under the lease, round 1 with our proposer id is reserved for us:
  // no other proposer contends, so phase 1 is unnecessary.
  f.id = ProposalId{lease_ ? 1 : next_round_++, self_};
  f.value = std::move(value);
  f.chosen = std::move(chosen);
  if (lease_) {
    StartPhase2(slot);
  } else {
    StartPhase1(slot);
  }
  return slot;
}

void Replicator::StartPhase1(SlotId slot) {
  InFlight& f = in_flight_.at(slot);
  f.phase2 = false;
  f.promises = 0;
  PrepareRequest req{slot, f.id};
  // Our own acceptor votes synchronously.
  OnPrepareReply(self_, self_acceptor_->OnPrepare(req));
  for (DcId peer = 0; peer < n_; ++peer) {
    if (peer != self_) send_prepare_(peer, req);
  }
}

void Replicator::StartPhase2(SlotId slot) {
  InFlight& f = in_flight_.at(slot);
  f.phase2 = true;
  f.accepts = 0;
  // Paxos invariant: adopt the highest value already accepted by anyone.
  const PaxosValue& v = f.saw_accepted ? f.best_accepted_value : f.value;
  AcceptRequest req{slot, f.id, v};
  OnAcceptReply(self_, self_acceptor_->OnAccept(req));
  for (DcId peer = 0; peer < n_; ++peer) {
    if (peer != self_) send_accept_(peer, req);
  }
}

void Replicator::OnPrepareReply(DcId from, const PrepareReply& reply) {
  (void)from;
  auto it = in_flight_.find(reply.slot);
  if (it == in_flight_.end()) return;
  InFlight& f = it->second;
  if (f.done || f.phase2 || !(reply.id == f.id)) return;
  if (!reply.promised) {
    // Outrun by a higher proposal: retry phase 1 with a bigger round.
    f.id = ProposalId{++next_round_, self_};
    StartPhase1(reply.slot);
    return;
  }
  if (reply.has_accepted &&
      (!f.saw_accepted || f.best_accepted_id < reply.accepted_id)) {
    f.saw_accepted = true;
    f.best_accepted_id = reply.accepted_id;
    f.best_accepted_value = reply.accepted_value;
  }
  if (++f.promises >= majority()) StartPhase2(reply.slot);
}

void Replicator::OnAcceptReply(DcId from, const AcceptReply& reply) {
  (void)from;
  auto it = in_flight_.find(reply.slot);
  if (it == in_flight_.end()) return;
  InFlight& f = it->second;
  if (f.done || !f.phase2 || !(reply.id == f.id)) return;
  if (!reply.accepted) {
    // Rejected: a higher proposal intervened. Fall back to a full round.
    f.id = ProposalId{++next_round_, self_};
    f.saw_accepted = false;
    StartPhase1(reply.slot);
    return;
  }
  if (++f.accepts >= majority()) {
    f.done = true;
    const PaxosValue chosen_value =
        f.saw_accepted ? f.best_accepted_value : f.value;
    ChosenCallback cb = std::move(f.chosen);
    // Keep the entry (done) so stray replies are ignored cheaply.
    if (cb) cb(reply.slot, chosen_value);
  }
}

}  // namespace helios::paxos
