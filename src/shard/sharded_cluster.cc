#include "shard/sharded_cluster.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <cstring>
#include <cstdio>

#include "obs/metrics.h"

namespace helios::shard {
namespace {

/// Seeded bug for the src/check mutation-detection test: the recovery
/// resolver skips the durable status lookup and blindly re-finalizes
/// every staged intent as committed — so a transaction whose coordinator
/// never decided (or decided abort) can commit on one shard while a
/// sibling slice aborts, which the shard-atomicity and staged-resolution
/// oracles must catch. Cached after the first call; never set this in a
/// measurement process.
bool MutationSkipStagedResolution() {
  static const bool on = [] {
    const char* m = std::getenv("HELIOS_CHECK_MUTATION");
    return m != nullptr && std::strcmp(m, "skip_staged_resolution") == 0;
  }();
  return on;
}

/// Env-gated diagnostic: set HELIOS_DEBUG_XSHARD=1 to print every
/// cross-shard abort with its reason to stderr (livelock triage).
bool DebugXshard() {
  static const bool on = std::getenv("HELIOS_DEBUG_XSHARD") != nullptr;
  return on;
}

}  // namespace

ShardedCluster::ShardedCluster(sim::Scheduler* scheduler,
                               sim::Network* network,
                               core::HeliosConfig config, ShardMap map,
                               core::LogProtocolKind kind, std::string name)
    : scheduler_(scheduler),
      config_(std::move(config)),
      map_(std::move(map)),
      name_(std::move(name)) {
  // Unconditional (not assert): an invalid map silently misroutes keys —
  // overlapping or empty partitions — and an NDEBUG build would proceed
  // with corrupted placement instead of failing loudly.
  if (const Status map_ok = map_.Validate(); !map_ok.ok()) {
    std::fprintf(stderr, "ShardedCluster(%s): invalid shard map: %s\n",
                 name_.c_str(), map_ok.ToString().c_str());
    std::abort();
  }
  const int num_shards = map_.num_shards();
  shards_.reserve(static_cast<size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    // Interleave the per-shard TxnId sequences: shard s mints residue
    // s+1 (mod S+1), leaving residue 0 to the cross-shard coordinator.
    core::HeliosConfig shard_config = config_;
    shard_config.txn_seq_start = static_cast<uint64_t>(s) + 1;
    shard_config.txn_seq_stride = static_cast<uint64_t>(num_shards) + 1;
    auto cluster = std::make_unique<core::HeliosCluster>(
        scheduler, network, std::move(shard_config), kind,
        name_ + "/s" + std::to_string(s));
    cluster->SetHistoryRecorder(&history_);
    cluster->SetStagedResolver([this](DcId dc, const TxnId& id) {
      return ResolveStaged(dc, id);
    });
    shards_.push_back(std::move(cluster));
  }
  status_.resize(static_cast<size_t>(config_.num_datacenters));
  next_xseq_.assign(static_cast<size_t>(config_.num_datacenters), 0);
}

void ShardedCluster::Start() {
  assert(!started_);
  started_ = true;
  for (const auto& sc : shards_) sc->Start();
}

void ShardedCluster::LoadInitialAll(const Key& key, const Value& value) {
  shards_[static_cast<size_t>(map_.ShardOf(key))]->LoadInitialAll(key, value);
}

void ShardedCluster::ClientRead(DcId client_dc, const Key& key,
                                ReadCallback done) {
  shards_[static_cast<size_t>(map_.ShardOf(key))]->ClientRead(
      client_dc, key, std::move(done));
}

void ShardedCluster::ClientCommit(DcId client_dc,
                                  std::vector<ReadEntry> reads,
                                  std::vector<WriteEntry> writes,
                                  CommitCallback done) {
  SliceMap slices;
  for (const ReadEntry& r : reads) {
    slices[map_.ShardOf(r.key)].first.push_back(r);
  }
  for (const WriteEntry& w : writes) {
    slices[map_.ShardOf(w.key)].second.push_back(w);
  }
  if (slices.size() <= 1) {
    // Unchanged Helios fast path: the owning shard handles everything.
    ++xstats_.single_shard;
    const int s = slices.empty() ? 0 : slices.begin()->first;
    shards_[static_cast<size_t>(s)]->ClientCommit(
        client_dc, std::move(reads), std::move(writes), std::move(done));
    return;
  }
  // Cross-shard: one client link to the coordinator (co-located with the
  // datacenter's shard nodes), which is pure bookkeeping — all service
  // cost is paid by the per-shard admissions it fans out to.
  scheduler_->After(
      config_.client_link_one_way,
      [this, client_dc, slices = std::move(slices),
       reads = std::move(reads), writes = std::move(writes),
       done = std::move(done)]() mutable {
        if (datacenter_down(client_dc)) return;  // Client times out.
        const uint64_t stride = static_cast<uint64_t>(map_.num_shards()) + 1;
        const TxnId id{client_dc,
                       ++next_xseq_[static_cast<size_t>(client_dc)] * stride};
        StartCrossShard(client_dc, std::move(slices),
                        MakeTxnBody(id, std::move(reads), std::move(writes)),
                        std::move(done));
      });
}

void ShardedCluster::StartCrossShard(DcId dc, SliceMap slices, TxnBodyPtr body,
                                     CommitCallback done) {
  const TxnId id = body->id;
  CrossShardTxn x;
  x.dc = dc;
  for (const auto& [s, rw] : slices) x.participants.push_back(s);
  x.body = std::move(body);
  x.done = std::move(done);
  ++xstats_.staged;
  // The durable STAGED record must exist before any slice can write an
  // intent, or a crash could find an intent with no status to resolve.
  status_[static_cast<size_t>(dc)].Stage(id, x.participants);
  inflight_.emplace(id, std::move(x));
  for (auto& [s, rw] : slices) {
    node(s, dc).HandleStagedCommit(
        id, std::move(rw.first), std::move(rw.second),
        [this, s](const core::StagedAdmitOutcome& out) {
          OnSliceAdmitted(s, out);
        },
        [this, s](const core::StagedCommitOutcome& out) {
          OnSlicePrepared(s, out);
        });
  }
}

void ShardedCluster::OnSliceAdmitted(int s,
                                     const core::StagedAdmitOutcome& out) {
  auto it = inflight_.find(out.id);
  if (it == inflight_.end()) {
    // Decided (abort) or crashed — e.g. the slice was parked in wait-die
    // when the decision's finalize swept through, and its retry admitted
    // afterwards. Release the intent now: with the transaction forgotten,
    // nobody is left to finalize it and it would block conflicting
    // admissions on shard s forever. Safe to abort unconditionally — a
    // commit decision consumes every participant's single admitted ack
    // before the transaction leaves inflight_, so a stray admitted=true
    // ack can never belong to a committed transaction.
    if (out.admitted) {
      node(s, out.id.origin).HandleFinalizeStaged(out.id, false,
                                                  kMinTimestamp);
    }
    return;
  }
  CrossShardTxn& x = it->second;
  if (out.admitted) {
    x.admitted[s] = out.request_ts;
  } else {
    x.failed.insert(s);
    if (x.abort_reason.empty()) x.abort_reason = out.abort_reason;
  }
  Advance(out.id);
}

void ShardedCluster::OnSlicePrepared(int s,
                                     const core::StagedCommitOutcome& out) {
  auto it = inflight_.find(out.id);
  if (it == inflight_.end()) {
    // Same reconciliation as OnSliceAdmitted: a commit decision consumes
    // all n prepared acks before erasing the transaction, so a stray
    // prepared=true ack can only be the leftover of an abort/crash race —
    // release the held intent.
    if (out.prepared) {
      node(s, out.id.origin).HandleFinalizeStaged(out.id, false,
                                                  kMinTimestamp);
    }
    return;
  }
  CrossShardTxn& x = it->second;
  if (out.prepared) {
    x.prepared.insert(s);
    x.max_proposed = std::max(x.max_proposed, out.proposed_ts);
  } else {
    x.failed.insert(s);
    x.prepared.erase(s);
    if (x.abort_reason.empty()) x.abort_reason = out.abort_reason;
  }
  Advance(out.id);
}

void ShardedCluster::Advance(const TxnId& id) {
  auto it = inflight_.find(id);
  assert(it != inflight_.end());
  CrossShardTxn& x = it->second;
  const size_t n = x.participants.size();
  const Duration link = config_.client_link_one_way;

  if (!x.failed.empty()) {
    // Abort immediately: slices whose admission is still queued behind us
    // in their shard's service queue are aborted by the finalize (FIFO
    // per node guarantees the admission processes first).
    status_[static_cast<size_t>(x.dc)].Abort(id);
    ++xstats_.aborted;
    for (const int s : x.participants) {
      if (x.failed.count(s) > 0) continue;  // Already aborted itself.
      node(s, x.dc).HandleFinalizeStaged(id, false, kMinTimestamp);
    }
    const std::string reason =
        x.abort_reason.empty() ? "xshard:abort" : x.abort_reason;
    if (DebugXshard()) {
      std::fprintf(stderr, "XABORT %d:%llu %s\n", id.origin,
                   static_cast<unsigned long long>(id.seq), reason.c_str());
    }
    CommitCallback done = std::move(x.done);
    inflight_.erase(it);
    scheduler_->After(link, [done = std::move(done), id, reason]() {
      done(CommitOutcome{id, false, reason});
    });
    return;
  }

  if (!x.floor_sent && x.admitted.size() == n) {
    // Every slice admitted: raise all commit waits to the shared base so
    // the per-slice waits compose (see HandleRaiseStagedWait), then let
    // them run concurrently — the parallel-commit latency win.
    x.floor_sent = true;
    Timestamp base = kMinTimestamp;
    for (const auto& [s, q] : x.admitted) base = std::max(base, q);
    for (const int s : x.participants) {
      node(s, x.dc).HandleRaiseStagedWait(id, base);
    }
    return;
  }

  if (x.prepared.size() == n) {
    // Implicit commit: every intent is durable and its wait passed. Flip
    // the durable status BEFORE the client reply — that write is what
    // recovery trusts — then finalize the slices asynchronously.
    const Timestamp commit_ts = x.max_proposed;
    status_[static_cast<size_t>(x.dc)].Commit(id, commit_ts);
    ++xstats_.committed;
    history_.RecordCommit(core::CommittedTxn{id, x.dc, commit_ts, x.body});
    for (const int s : x.participants) {
      node(s, x.dc).HandleFinalizeStaged(id, true, commit_ts);
    }
    CommitCallback done = std::move(x.done);
    inflight_.erase(it);
    scheduler_->After(link, [done = std::move(done), id]() {
      done(CommitOutcome{id, true, ""});
    });
  }
}

core::StagedResolution ShardedCluster::ResolveStaged(DcId dc,
                                                     const TxnId& id) {
  core::StagedResolution res;
  const TxnStatusRecord* rec = status_[static_cast<size_t>(dc)].Lookup(id);
  if (rec == nullptr) return res;  // Not a cross-shard transaction.
  if (MutationSkipStagedResolution()) {
    // Seeded bug: trust the intent, never the verdict (see above).
    res.status = core::StagedStatus::kCommitted;
    res.commit_ts =
        rec->commit_ts != kMinTimestamp ? rec->commit_ts : Timestamp{0};
    return res;
  }
  switch (rec->status) {
    case TxnStatus::kCommitted:
      res.status = core::StagedStatus::kCommitted;
      res.commit_ts = rec->commit_ts;
      break;
    case TxnStatus::kAborted:
      res.status = core::StagedStatus::kAborted;
      break;
    case TxnStatus::kStaged:
      // The coordinator died mid-commit and never decided: decide abort
      // durably NOW, so every sibling slice — asking at any later
      // recovery — resolves identically. Safe because the client cannot
      // have seen a commit (the reply follows the COMMITTED write).
      status_[static_cast<size_t>(dc)].Abort(id);
      ++xstats_.resolved_aborts;
      res.status = core::StagedStatus::kAborted;
      break;
  }
  return res;
}

void ShardedCluster::ClientReadOnly(DcId client_dc, std::vector<Key> keys,
                                    ReadOnlyCallback done) {
  std::map<int, std::vector<size_t>> by_shard;
  for (size_t i = 0; i < keys.size(); ++i) {
    by_shard[map_.ShardOf(keys[i])].push_back(i);
  }
  if (by_shard.size() <= 1) {
    const int s = by_shard.empty() ? 0 : by_shard.begin()->first;
    shards_[static_cast<size_t>(s)]->ClientReadOnly(client_dc, std::move(keys),
                                                    std::move(done));
    return;
  }
  // Cross-shard read-only: one consistent snapshot per shard, merged in
  // input order. The snapshots are taken at slightly different instants,
  // so the combined result is NOT one atomic snapshot across shards
  // (docs/SHARDING.md documents the tearing).
  struct Merge {
    std::vector<Result<VersionedValue>> results;
    size_t remaining = 0;
  };
  auto merge = std::make_shared<Merge>();
  merge->results.resize(keys.size(),
                        Status::Unavailable("read-only shard never replied"));
  merge->remaining = by_shard.size();
  const Duration link = config_.client_link_one_way;
  scheduler_->After(link, [this, client_dc, keys = std::move(keys),
                           by_shard = std::move(by_shard), merge,
                           done = std::move(done), link]() mutable {
    for (auto& [s, idxs] : by_shard) {
      std::vector<Key> shard_keys;
      shard_keys.reserve(idxs.size());
      for (const size_t i : idxs) shard_keys.push_back(keys[i]);
      node(s, client_dc)
          .HandleReadOnly(
              std::move(shard_keys),
              [this, merge, idxs, done, link](
                  std::vector<Result<VersionedValue>> results) {
                for (size_t j = 0; j < idxs.size(); ++j) {
                  merge->results[idxs[j]] = std::move(results[j]);
                }
                if (--merge->remaining > 0) return;
                scheduler_->After(link, [merge, done]() {
                  done(std::move(merge->results));
                });
              });
    }
  });
}

void ShardedCluster::SetObservability(obs::TraceRecorder* trace,
                                      obs::MetricsRegistry* metrics) {
  for (const auto& sc : shards_) sc->SetObservability(trace, metrics);
}

void ShardedCluster::SetReliableMesh(sim::ReliableMesh* mesh) {
  for (const auto& sc : shards_) sc->SetReliableMesh(mesh);
}

void ShardedCluster::SetDatacenterDown(DcId dc, bool down) {
  if (down) {
    // The coordinator is co-located with the datacenter's shard nodes and
    // shares their fate: its volatile state for transactions it was
    // driving dies with it. The durable status table survives.
    for (auto it = inflight_.begin(); it != inflight_.end();) {
      it = it->first.origin == dc ? inflight_.erase(it) : std::next(it);
    }
  }
  for (const auto& sc : shards_) sc->SetDatacenterDown(dc, down);
}

void ShardedCluster::InjectStall(DcId dc, Duration pause) {
  for (const auto& sc : shards_) sc->InjectStall(dc, pause);
}

void ShardedCluster::InjectFsyncStall(DcId dc, Duration per_record,
                                      Duration window) {
  for (const auto& sc : shards_) sc->InjectFsyncStall(dc, per_record, window);
}

void ShardedCluster::set_envelope_sizer(
    core::HeliosCluster::EnvelopeSizer sizer) {
  for (const auto& sc : shards_) sc->set_envelope_sizer(sizer);
}

RecoveryStats ShardedCluster::recovery_snapshot() const {
  RecoveryStats total;
  for (const auto& sc : shards_) {
    const RecoveryStats& s = sc->recovery_stats();
    total.recoveries = std::max(total.recoveries, s.recoveries);
    total.records_replayed += s.records_replayed;
    total.catchup_records += s.catchup_records;
    total.duration_us += s.duration_us;
  }
  return total;
}

core::NodeCounters ShardedCluster::AggregateCounters() const {
  core::NodeCounters total;
  for (const auto& sc : shards_) {
    const core::NodeCounters c = sc->AggregateCounters();
    total.read_requests += c.read_requests;
    total.commit_requests += c.commit_requests;
    total.commits += c.commits;
    total.aborts_on_request += c.aborts_on_request;
    total.aborts_by_remote += c.aborts_by_remote;
    total.aborts_liveness += c.aborts_liveness;
    total.records_ingested += c.records_ingested;
    total.envelopes_sent += c.envelopes_sent;
    total.refusals_issued += c.refusals_issued;
    total.read_only_txns += c.read_only_txns;
    total.suspicions += c.suspicions;
    total.readmissions += c.readmissions;
    total.suspicion_refusals += c.suspicion_refusals;
    total.degraded_commits += c.degraded_commits;
    total.hedged_pulls += c.hedged_pulls;
    total.staged_requests += c.staged_requests;
    total.staged_waits += c.staged_waits;
    total.staged_prepared += c.staged_prepared;
    total.staged_commits += c.staged_commits;
    total.staged_aborts += c.staged_aborts;
    total.staged_resolved += c.staged_resolved;
  }
  return total;
}

void ShardedCluster::ExportMetrics(obs::MetricsRegistry* registry) const {
  const core::NodeCounters total = AggregateCounters();
  registry->counter("node.read_requests").Set(total.read_requests);
  registry->counter("node.commit_requests").Set(total.commit_requests);
  registry->counter("node.commits").Set(total.commits);
  registry->counter("node.aborts_on_request").Set(total.aborts_on_request);
  registry->counter("node.aborts_by_remote").Set(total.aborts_by_remote);
  registry->counter("node.aborts_liveness").Set(total.aborts_liveness);
  registry->counter("node.records_ingested").Set(total.records_ingested);
  registry->counter("node.envelopes_sent").Set(total.envelopes_sent);
  registry->counter("node.refusals_issued").Set(total.refusals_issued);
  registry->counter("node.read_only_txns").Set(total.read_only_txns);
  // Client-facing totals: fast-path commits decided by shard nodes plus
  // cross-shard transactions decided by the coordinator.
  registry->counter("protocol.commits").Set(total.commits + xstats_.committed);
  registry->counter("protocol.aborts")
      .Set(total.total_aborts() + xstats_.aborted);
  // Cross-shard parallel-commit lifecycle (coordinator + slice views).
  registry->counter("xshard.single_shard").Set(xstats_.single_shard);
  registry->counter("xshard.staged").Set(xstats_.staged);
  registry->counter("xshard.committed").Set(xstats_.committed);
  registry->counter("xshard.aborted").Set(xstats_.aborted);
  registry->counter("xshard.resolved_aborts").Set(xstats_.resolved_aborts);
  registry->counter("xshard.slices_staged").Set(total.staged_requests);
  registry->counter("xshard.slices_waited").Set(total.staged_waits);
  registry->counter("xshard.slices_prepared").Set(total.staged_prepared);
  registry->counter("xshard.slices_committed").Set(total.staged_commits);
  registry->counter("xshard.slices_aborted").Set(total.staged_aborts);
  registry->counter("xshard.slices_resolved").Set(total.staged_resolved);
  const RecoveryStats recovery = recovery_snapshot();
  if (recovery.recoveries > 0) {
    registry->counter("recovery.recoveries").Set(recovery.recoveries);
    registry->counter("recovery.records_replayed")
        .Set(recovery.records_replayed);
    registry->counter("recovery.catchup_records")
        .Set(recovery.catchup_records);
    registry->counter("recovery.duration_us").Set(recovery.duration_us);
  }
  for (DcId dc = 0; dc < config_.num_datacenters; ++dc) {
    const std::string prefix = "node.dc" + std::to_string(dc);
    double pt = 0.0, ept = 0.0, busy = 0.0, held = 0.0;
    for (const auto& sc : shards_) {
      pt += static_cast<double>(sc->node(dc).pt_pool_size());
      ept += static_cast<double>(sc->node(dc).ept_pool_size());
      busy += static_cast<double>(sc->node(dc).service_queue().total_busy());
      held += static_cast<double>(sc->node(dc).staged_hold_count());
    }
    registry->gauge(prefix + ".pt_pool").Set(pt);
    registry->gauge(prefix + ".ept_pool").Set(ept);
    registry->gauge(prefix + ".service_busy_us").Set(busy);
    registry->gauge(prefix + ".staged_holds").Set(held);
  }
  // Per-shard commit volume, so load imbalance across the partition is
  // visible in reports.
  for (int s = 0; s < num_shards(); ++s) {
    const core::NodeCounters c = shards_[static_cast<size_t>(s)]
                                     ->AggregateCounters();
    const std::string prefix = "shard.s" + std::to_string(s);
    registry->counter(prefix + ".commits").Set(c.commits);
    registry->counter(prefix + ".staged_commits").Set(c.staged_commits);
    registry->counter(prefix + ".records_ingested").Set(c.records_ingested);
  }
  if (config_.health.enabled) {
    registry->counter("health.suspicions").Set(total.suspicions);
    registry->counter("health.readmissions").Set(total.readmissions);
    registry->counter("health.suspicion_refusals")
        .Set(total.suspicion_refusals);
    registry->counter("health.degraded_commits").Set(total.degraded_commits);
    registry->counter("health.hedged_pulls").Set(total.hedged_pulls);
    for (DcId dc = 0; dc < config_.num_datacenters; ++dc) {
      const std::string prefix = "health.dc" + std::to_string(dc);
      double suspected = 0.0;
      for (DcId peer = 0; peer < config_.num_datacenters; ++peer) {
        if (peer == dc) continue;
        double phi = 0.0;
        bool suspects = false;
        for (const auto& sc : shards_) {
          phi = std::max(phi, sc->node(dc).HealthPhi(peer));
          suspects = suspects || sc->node(dc).Suspects(peer);
        }
        registry->gauge(prefix + ".phi.dc" + std::to_string(peer)).Set(phi);
        if (suspects) suspected += 1.0;
      }
      registry->gauge(prefix + ".suspected").Set(suspected);
    }
  }
}

}  // namespace helios::shard
